#!/bin/sh
# Rebuilds everything, runs the full test suite, regenerates every paper
# figure/table, and leaves the raw outputs next to this script's repo root
# (test_output.txt, bench_output.txt). See EXPERIMENTS.md for how each
# benchmark maps to a figure in the paper.
#
# Set VBR_TSAN=1 to also run the ThreadSanitizer pass over the concurrency
# tests (scripts/check_tsan.sh) before the benchmarks.
set -eu
cd "$(dirname "$0")/.."
if [ "${VBR_TSAN:-0}" = "1" ]; then
  scripts/check_tsan.sh
fi
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt
{
  for b in build/bench/bench_*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      echo "### $(basename "$b")"
      "$b"
    fi
  done
} 2>&1 | tee bench_output.txt
