#!/bin/sh
# End-to-end smoke of the network front end: builds vbr_server and
# vbr_loadgen, serves the car-loc-part example on ephemeral ports, drives
# it open-loop over the binary protocol, and lets the loadgen's own
# checks gate the result:
#   - every request answered exactly once (lost == duplicated == 0)
#   - service accounting balances (submitted == admitted + rejected, and
#     completed + shed + failed never exceeds admitted), scraped from the
#     HTTP /statz endpoint via --check-statz.
#
# Usage: scripts/check_net_smoke.sh
# The build tree is build/ (shared with the regular build).
set -eu
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target vbr_server vbr_loadgen

PORTS_FILE=$(mktemp)
SERVER_PID=
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -f "$PORTS_FILE"
}
trap cleanup EXIT INT TERM

# Ephemeral ports: the server prints "binary_port=P" / "http_port=P" on
# stdout once both listeners are up.
"$BUILD_DIR"/examples/vbr_server --port 0 --http-port 0 --workers 2 \
  --data examples/data/car_loc_part.facts \
  examples/data/car_loc_part.program > "$PORTS_FILE" &
SERVER_PID=$!

for _ in $(seq 1 50); do
  grep -q '^http_port=' "$PORTS_FILE" 2>/dev/null && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "check_net_smoke: server exited early" >&2
    cat "$PORTS_FILE" >&2
    exit 1
  }
  sleep 0.1
done
BINARY_PORT=$(sed -n 's/^binary_port=//p' "$PORTS_FILE")
HTTP_PORT=$(sed -n 's/^http_port=//p' "$PORTS_FILE")
[ -n "$BINARY_PORT" ] && [ -n "$HTTP_PORT" ] || {
  echo "check_net_smoke: could not scrape ports" >&2
  exit 1
}

# Paced run with deadlines (exercises admission control), then a short
# flood (exercises shedding); both must account for every request.
"$BUILD_DIR"/examples/vbr_loadgen --port "$BINARY_PORT" \
  --queries examples/data/car_loc_part.replay \
  --connections 4 --qps 200 --requests 500 --deadline-ms 100 \
  --check-statz "$HTTP_PORT"
"$BUILD_DIR"/examples/vbr_loadgen --port "$BINARY_PORT" \
  --queries examples/data/car_loc_part.replay \
  --connections 8 --qps 0 --requests 1000 --deadline-ms 50 \
  --check-statz "$HTTP_PORT"

# Handle-caching run: after each query's first response the loadgen sends
# the server-issued handle instead of the text, and byte-compares every
# handle-path response against the text path (exit 4 on divergence).
"$BUILD_DIR"/examples/vbr_loadgen --port "$BINARY_PORT" \
  --queries examples/data/car_loc_part.replay \
  --connections 4 --qps 200 --requests 400 --certificate --handles \
  --check-statz "$HTTP_PORT"

echo "check_net_smoke: wire accounting clean (no lost/duplicated responses)"
