#!/bin/sh
# End-to-end smoke of the persistence layer (planner/snapshot.h):
#
#   1. start vbr_server with --snapshot-path and --request-log, drive it
#      with vbr_loadgen so the plan cache fills and every request lands in
#      the binary request log;
#   2. SIGTERM the server — the drain path saves the final snapshot;
#   3. restart the server on the SAME snapshot, replay the same query mix,
#      and assert from /metricz that the warm cache NEVER missed:
#      planner.cache.misses == 0 with hits >= the request count, i.e. the
#      restarted server was warm from the very first request;
#   4. replay the captured binary request log through `vbr_cli --replay`
#      (each record re-submitted with its recorded options) and require a
#      failure-free run.
#
# Usage: scripts/check_snapshot_smoke.sh
# The build tree is build/ (shared with the regular build).
set -eu
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target vbr_server vbr_loadgen vbr_cli

WORK_DIR=$(mktemp -d)
SNAPSHOT="$WORK_DIR/plans.vbin"
REQUEST_LOG="$WORK_DIR/requests.vbrlog"
PORTS_FILE="$WORK_DIR/ports"
SERVER_PID=
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT INT TERM

start_server() {
  : > "$PORTS_FILE"
  "$BUILD_DIR"/examples/vbr_server --port 0 --http-port 0 --workers 2 \
    --data examples/data/car_loc_part.facts \
    --snapshot-path "$SNAPSHOT" --snapshot-interval-s 0 \
    --request-log "$REQUEST_LOG" \
    examples/data/car_loc_part.program > "$PORTS_FILE" 2> "$WORK_DIR/server.log" &
  SERVER_PID=$!
  for _ in $(seq 1 50); do
    grep -q '^http_port=' "$PORTS_FILE" 2>/dev/null && break
    kill -0 "$SERVER_PID" 2>/dev/null || {
      echo "check_snapshot_smoke: server exited early" >&2
      cat "$WORK_DIR/server.log" >&2
      exit 1
    }
    sleep 0.1
  done
  BINARY_PORT=$(sed -n 's/^binary_port=//p' "$PORTS_FILE")
  HTTP_PORT=$(sed -n 's/^http_port=//p' "$PORTS_FILE")
  [ -n "$BINARY_PORT" ] && [ -n "$HTTP_PORT" ] || {
    echo "check_snapshot_smoke: could not scrape ports" >&2
    exit 1
  }
}

stop_server() {
  kill -TERM "$SERVER_PID"
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=
}

# --- Run 1: cold server fills the cache and the request log ---------------
start_server
"$BUILD_DIR"/examples/vbr_loadgen --port "$BINARY_PORT" \
  --queries examples/data/car_loc_part.replay \
  --connections 2 --qps 200 --requests 60 \
  --check-statz "$HTTP_PORT"
stop_server

[ -s "$SNAPSHOT" ] || {
  echo "check_snapshot_smoke: no snapshot was written" >&2
  cat "$WORK_DIR/server.log" >&2
  exit 1
}
[ -s "$REQUEST_LOG" ] || {
  echo "check_snapshot_smoke: no request log was written" >&2
  exit 1
}

# --- Run 2: restarted server must be warm from request one ----------------
start_server
grep -q 'warm start' "$WORK_DIR/server.log" || {
  echo "check_snapshot_smoke: restarted server did not load the snapshot" >&2
  cat "$WORK_DIR/server.log" >&2
  exit 1
}
"$BUILD_DIR"/examples/vbr_loadgen --port "$BINARY_PORT" \
  --queries examples/data/car_loc_part.replay \
  --connections 2 --qps 200 --requests 60 \
  --check-statz "$HTTP_PORT"

METRICS=$(curl -s "http://127.0.0.1:$HTTP_PORT/metricz?format=text" 2>/dev/null) || {
  # curl may be absent in minimal containers; scrape with the loadgen's
  # host via a tiny python fallback.
  METRICS=$(python3 - "$HTTP_PORT" <<'EOF'
import sys, urllib.request
print(urllib.request.urlopen(
    f"http://127.0.0.1:{sys.argv[1]}/metricz?format=text").read().decode())
EOF
  )
}
MISSES=$(printf '%s\n' "$METRICS" | awk '$1 == "planner.cache.misses" {print $2}')
HITS=$(printf '%s\n' "$METRICS" | awk '$1 == "planner.cache.hits" {print $2}')
echo "check_snapshot_smoke: warm run hits=$HITS misses=$MISSES"
[ "${MISSES:-1}" -eq 0 ] || {
  echo "check_snapshot_smoke: FAIL warm-started server missed the cache" >&2
  exit 1
}
[ "${HITS:-0}" -ge 60 ] || {
  echo "check_snapshot_smoke: FAIL expected >= 60 cache hits, got $HITS" >&2
  exit 1
}
stop_server

# --- Run 3: deterministic replay of the captured binary request log -------
"$BUILD_DIR"/examples/vbr_cli --replay "$REQUEST_LOG" --concurrency 2 \
  examples/data/car_loc_part.program

echo "check_snapshot_smoke: warm start + request-log replay clean"
