#!/bin/sh
# Perf-smoke gate for the containment hot path: runs bench_containment with
# fixed settings and fails when any benchmark's checks/sec regresses by more
# than the tolerance factor against the committed baseline
# (bench/perf_baseline.json). Benchmarks are deterministic fixed-shape
# queries, so run-to-run noise comes only from the machine; the factor is
# deliberately loose (2x) to gate real algorithmic regressions, not CI
# scheduling jitter.
#
# Usage: scripts/check_perf_smoke.sh           # gate against the baseline
#        scripts/check_perf_smoke.sh --update  # rewrite the baseline instead
# The build tree is build-perf/ unless BUILD_DIR is set.
set -eu
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-perf}
BASELINE=bench/perf_baseline.json
MODE=${1:-check}

# Repo-default build type (RelWithDebInfo) — the committed baseline was
# captured under it, so the comparison must use it too.
cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_containment

RESULTS=$(mktemp)
trap 'rm -f "$RESULTS"' EXIT
"$BUILD_DIR"/bench/bench_containment \
  --benchmark_format=json \
  --benchmark_min_time=0.2 \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true >"$RESULTS"

MODE="$MODE" BASELINE="$BASELINE" RESULTS="$RESULTS" python3 - <<'EOF'
import json
import os
import sys

results_path = os.environ["RESULTS"]
baseline_path = os.environ["BASELINE"]
update = os.environ["MODE"] == "--update"

with open(results_path) as f:
    report = json.load(f)

# checks/sec from the median aggregate; every benchmark reports in us.
measured = {}
for bench in report["benchmarks"]:
    if not bench["name"].endswith("_median"):
        continue
    name = bench["name"][: -len("_median")]
    assert bench["time_unit"] == "us", bench
    measured[name] = 1e6 / bench["real_time"]

if not measured:
    sys.exit("no median aggregates in the benchmark report")

with open(baseline_path) as f:
    baseline = json.load(f)

if update:
    baseline["checks_per_second"] = {
        name: round(cps, 1) for name, cps in sorted(measured.items())
    }
    with open(baseline_path, "w") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print(f"updated {baseline_path} with {len(measured)} benchmarks")
    sys.exit(0)

factor = baseline["tolerance_factor"]
expected = baseline["checks_per_second"]
failures = []
for name, want in sorted(expected.items()):
    got = measured.get(name)
    if got is None:
        failures.append(f"{name}: missing from the benchmark report")
        continue
    ratio = want / got
    status = "FAIL" if ratio > factor else "ok"
    print(f"{status:>4}  {name:<34} {got:>12.0f} checks/s"
          f"  (baseline {want:.0f}, {ratio:.2f}x slower allowed {factor}x)")
    if ratio > factor:
        failures.append(f"{name}: {ratio:.2f}x slower than baseline")

if failures:
    sys.exit("perf smoke FAILED:\n  " + "\n  ".join(failures))
print(f"perf smoke passed: {len(expected)} benchmarks within {factor}x")
EOF
