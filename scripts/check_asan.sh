#!/bin/sh
# Builds the library and tests with AddressSanitizer + UndefinedBehavior-
# Sanitizer (-DVBR_SANITIZE=address) and runs the suites that exercise the
# new ownership-heavy machinery: query fingerprints, the sharded plan
# cache, batched planning, and the planner facade. Any report fails the
# run (halt_on_error).
#
# Usage: scripts/check_asan.sh [extra ctest -R regex]
# The build tree is build-asan/ (kept separate from the regular build/).
set -eu
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-asan}
# ctest names gtest cases "<Suite>.<Test>".  FrameTest covers the wire
# codec (bounds-checked reads over hostile payloads), HttpTest the HTTP
# parser, PlanServerTest the full server over real sockets.
FILTER=${1:-'Fingerprint|PlanCache|PlanMany|Planner|BudgetGovernance|FaultMatrix|FuzzSmoke|FrameTest|HttpTest|PlanServer'}

cmake -B "$BUILD_DIR" -S . \
  -DVBR_SANITIZE=address \
  -DVBR_BUILD_BENCHMARKS=OFF \
  -DVBR_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target fingerprint_test plan_cache_test plan_many_test \
  planner_test planner_options_test \
  budget_governance_test fault_matrix_test parser_fuzz json_fuzz \
  frame_test http_test server_integration_test request_options_test

ASAN_OPTIONS="halt_on_error=1 detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
    -R "$FILTER"

echo "check_asan: all fingerprint/cache/planner tests passed under ASan+UBSan"
