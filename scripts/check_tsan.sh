#!/bin/sh
# Builds the library and tests with ThreadSanitizer (-DVBR_SANITIZE=thread)
# and runs the concurrency-sensitive suites: the SymbolTable stress tests,
# the threading determinism suite, and the pre-existing determinism tests.
# Any reported race fails the run (TSAN_OPTIONS halt_on_error).
#
# Usage: scripts/check_tsan.sh [extra ctest -R regex]
# The build tree is build-tsan/ (kept separate from the regular build/).
set -eu
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tsan}
# ctest names gtest cases "<Suite>.<Test>"; this matches the SymbolTable
# stress suite, the determinism suites (including budget determinism), the
# sharded plan cache / batched planning suites, the resource-governance
# fault-injection suites, the containment-memo determinism suite, the
# PlanningService stress harness (worker pool, breaker ladder, concurrent
# ReplaceViews), and the PlanServer integration suite (IO thread vs worker
# completions vs client threads over real sockets).
FILTER=${1:-'SymbolConcurrency|Determinism|PlanCache|PlanMany|BudgetGovernance|FaultMatrix|FaultInjection|StressHarness|CircuitBreaker|PlanServer'}

cmake -B "$BUILD_DIR" -S . \
  -DVBR_SANITIZE=thread \
  -DVBR_BUILD_BENCHMARKS=OFF \
  -DVBR_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target symbol_concurrency_test threading_determinism_test \
  determinism_test plan_cache_test plan_many_test \
  budget_determinism_test budget_governance_test fault_matrix_test \
  fault_injection_test stress_harness_test circuit_breaker_test \
  signature_prefilter_test server_integration_test

TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
    -R "$FILTER"

echo "check_tsan: all concurrency tests passed under ThreadSanitizer"
