#!/bin/sh
# Builds the library and tests with UndefinedBehaviorSanitizer alone
# (-DVBR_SANITIZE=undefined, -fno-sanitize-recover=all so any finding is
# fatal) and runs the resource-governance and fault-injection suites plus
# the fuzz-corpus smoke tests — the paths that chew on adversarial inputs
# and budget-exhausted partial states.
#
# Usage: scripts/check_ubsan.sh [extra ctest -R regex]
# The build tree is build-ubsan/ (kept separate from the regular build/).
set -eu
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-ubsan}
# ctest names gtest cases "<Suite>.<Test>"; FuzzSmoke.* are the corpus
# replay tests from tests/fuzz.
FILTER=${1:-'Budget|FaultMatrix|FaultInjection|ResourceGovernor|ResourceLimits|GovernorScope|FuzzSmoke|Json'}

cmake -B "$BUILD_DIR" -S . \
  -DVBR_SANITIZE=undefined \
  -DVBR_BUILD_BENCHMARKS=OFF \
  -DVBR_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target budget_test fault_injection_test budget_governance_test \
  fault_matrix_test budget_determinism_test json_test \
  parser_fuzz json_fuzz

UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" \
    -R "$FILTER"

echo "check_ubsan: all governance/fault/fuzz tests passed under UBSan"
