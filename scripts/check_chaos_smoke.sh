#!/bin/sh
# End-to-end chaos smoke of the wire path (net/chaos_socket.h +
# server connection hygiene):
#
#   1. start vbr_server with every hygiene limit armed (idle / progress /
#      write-stall deadlines, connection cap) and a tightly rotated binary
#      request log (--request-log-max-mb / --request-log-keep);
#   2. drive it with vbr_loadgen --chaos SEED for several fixed seeds —
#      the seeded client-side fault layer injects short reads/writes,
#      EAGAINs, mid-stream disconnects and connect failures while the
#      resilient driver retries.  Losses (retry budget exhausted) are
#      tolerated; duplicated or misdecoded responses never are;
#   3. a clean (chaos-off) run with the /statz accounting cross-check must
#      still be spotless — chaos must not leak state into the server;
#   4. the captured request log must have rotated, and the rotated SET
#      (path.N .. path.1 + live file) must replay over the wire through
#      `vbr_cli --replay --connect` without a single hard failure;
#   5. SIGTERM the server and require a clean drain.
#
# Usage: scripts/check_chaos_smoke.sh
# The build tree is build/ unless BUILD_DIR is set (so CI can point it at
# a sanitizer tree: BUILD_DIR=build-asan scripts/check_chaos_smoke.sh).
set -eu
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
CHAOS_SEEDS=${CHAOS_SEEDS:-"1 2 3"}

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target vbr_server vbr_loadgen vbr_cli

WORK_DIR=$(mktemp -d)
REQUEST_LOG="$WORK_DIR/requests.vbrlog"
PORTS_FILE="$WORK_DIR/ports"
SERVER_PID=
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT INT TERM

# --- Start: hygiene limits armed, request log rotating at ~8 KiB ----------
: > "$PORTS_FILE"
"$BUILD_DIR"/examples/vbr_server --port 0 --http-port 0 --workers 2 \
  --data examples/data/car_loc_part.facts \
  --request-log "$REQUEST_LOG" \
  --request-log-max-mb 0.008 --request-log-keep 8 \
  --max-connections 64 \
  --idle-timeout-ms 10000 --progress-timeout-ms 5000 \
  --write-stall-timeout-ms 5000 --drain-grace-ms 5000 \
  examples/data/car_loc_part.program > "$PORTS_FILE" 2> "$WORK_DIR/server.log" &
SERVER_PID=$!
for _ in $(seq 1 50); do
  grep -q '^http_port=' "$PORTS_FILE" 2>/dev/null && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "check_chaos_smoke: server exited early" >&2
    cat "$WORK_DIR/server.log" >&2
    exit 1
  }
  sleep 0.1
done
BINARY_PORT=$(sed -n 's/^binary_port=//p' "$PORTS_FILE")
HTTP_PORT=$(sed -n 's/^http_port=//p' "$PORTS_FILE")
[ -n "$BINARY_PORT" ] && [ -n "$HTTP_PORT" ] || {
  echo "check_chaos_smoke: could not scrape ports" >&2
  exit 1
}

# --- Chaos runs: fixed seeds, exact accounting required -------------------
for SEED in $CHAOS_SEEDS; do
  echo "check_chaos_smoke: chaos run seed=$SEED"
  "$BUILD_DIR"/examples/vbr_loadgen --port "$BINARY_PORT" \
    --queries examples/data/car_loc_part.replay \
    --connections 4 --qps 400 --requests 80 \
    --chaos "$SEED" || {
    echo "check_chaos_smoke: FAIL chaos run seed=$SEED" >&2
    cat "$WORK_DIR/server.log" >&2
    exit 1
  }
done

# --- Clean run: chaos off, /statz accounting must balance exactly ---------
"$BUILD_DIR"/examples/vbr_loadgen --port "$BINARY_PORT" \
  --queries examples/data/car_loc_part.replay \
  --connections 2 --qps 200 --requests 60 \
  --check-statz "$HTTP_PORT"

# --- The request log must have rotated under that traffic -----------------
[ -s "$REQUEST_LOG.1" ] || {
  echo "check_chaos_smoke: FAIL request log never rotated" \
       "(no $REQUEST_LOG.1)" >&2
  ls -l "$WORK_DIR" >&2
  exit 1
}

# --- Replay the rotated set over the wire against the live server ---------
"$BUILD_DIR"/examples/vbr_cli --replay "$REQUEST_LOG" \
  --connect "127.0.0.1:$BINARY_PORT" --concurrency 2 \
  examples/data/car_loc_part.program

# --- Graceful shutdown: SIGTERM must drain, not sever ---------------------
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=
grep -q 'drained cleanly' "$WORK_DIR/server.log" || {
  echo "check_chaos_smoke: FAIL server did not drain cleanly on SIGTERM" >&2
  cat "$WORK_DIR/server.log" >&2
  exit 1
}

echo "check_chaos_smoke: chaos runs, rotated-log wire replay, and drain clean"
