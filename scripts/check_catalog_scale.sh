#!/bin/sh
# Catalog-scale smoke gate for the indexed candidate stage: runs
# bench_view_index (planning latency over GenerateMassiveCatalog catalogs)
# at 10^2 and 10^4 views and fails when the indexed planner stops being
# sub-linear — concretely, when the considered/catalog ratio at 10^4 views
# reaches 0.1, i.e. the candidate filter considers 10% or more of the
# catalog per query. The ratio is a COUNT (views the CoreCover run
# actually took past the candidate stage, straight from
# CoreCoverStats::num_candidate_views), so unlike a latency gate it is
# immune to CI machine jitter.
#
# Usage: scripts/check_catalog_scale.sh
# The build tree is build-perf/ unless BUILD_DIR is set (shared with
# check_perf_smoke.sh so CI can reuse one tree).
#
# With VBR_CATALOG_SOAK=1 the gate runs at 10^6 views instead of 10^4 —
# the nightly/manual soak point. Pair it with a sanitizer tree
# (BUILD_DIR=build-asan after configuring with -DVBR_SANITIZE=address) to
# shake allocation bugs out of million-view catalog construction and the
# candidate index; the considered-ratio gate is the same count-based
# invariant, so the sanitizer slowdown cannot flake it.
set -eu
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-perf}
SOAK=${VBR_CATALOG_SOAK:-0}
if [ "$SOAK" = "1" ]; then
  BIG=1000000
else
  BIG=10000
fi

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target bench_view_index

RESULTS=$(mktemp)
trap 'rm -f "$RESULTS"' EXIT
"$BUILD_DIR"/bench/bench_view_index \
  --benchmark_filter="BM_PlanIndexed/(100|$BIG)\$" \
  --benchmark_format=json \
  --benchmark_min_time=0.1 >"$RESULTS"

RESULTS="$RESULTS" BIG="$BIG" python3 - <<'EOF'
import json
import os
import sys

with open(os.environ["RESULTS"]) as f:
    report = json.load(f)
big = int(os.environ["BIG"])

ratios = {}
for bench in report["benchmarks"]:
    name = bench["name"]
    if not name.startswith("BM_PlanIndexed/"):
        continue
    catalog = int(name.split("/")[1])
    ratios[catalog] = bench["considered_ratio"]

missing = [c for c in (100, big) if c not in ratios]
if missing:
    sys.exit(f"catalog-scale smoke: missing benchmark points {missing}")

for catalog in sorted(ratios):
    print(f"  {catalog:>7} views: considered_ratio = {ratios[catalog]:.4f}")

# At 10^2 random views the coverage singletons alone are a large fraction
# of the catalog, so only sanity-check the small point; the sub-linearity
# gate is the big point (10^4 in smoke, 10^6 in the nightly soak).
if not 0 < ratios[100] <= 1:
    sys.exit(f"catalog-scale smoke FAILED: nonsensical ratio {ratios[100]} "
             "at 100 views")
if ratios[big] >= 0.1:
    sys.exit("catalog-scale smoke FAILED: the indexed planner considered "
             f"{ratios[big]:.1%} of a {big}-view catalog (gate: < 10%) — "
             "the candidate index has stopped pruning")
print(f"catalog scale smoke passed: {ratios[big]:.2%} of the catalog "
      f"considered at {big} views (< 10%)")
EOF
