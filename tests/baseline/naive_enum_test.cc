#include "baseline/naive_enum.h"

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "rewrite/core_cover.h"
#include "tests/rewrite/fixtures.h"

namespace vbr {
namespace {

using testing_fixtures::CarLocPartQuery;
using testing_fixtures::CarLocPartViews;
using testing_fixtures::Example41Query;
using testing_fixtures::Example41Views;

TEST(NaiveEnumTest, CarLocPartFindsTheOneSubgoalGmr) {
  const auto result = NaiveEnumerateGmrs(CarLocPartQuery(), CarLocPartViews());
  EXPECT_TRUE(result.has_rewriting);
  EXPECT_EQ(result.min_size, 1u);
  ASSERT_EQ(result.rewritings.size(), 1u);
  EXPECT_EQ(result.rewritings[0].ToString(), "q1(S,C) :- v4(M,a,C,S)");
}

TEST(NaiveEnumTest, Example41MatchesCoreCover) {
  const auto naive = NaiveEnumerateGmrs(Example41Query(), Example41Views());
  const auto cc = CoreCover(Example41Query(), Example41Views());
  EXPECT_EQ(naive.has_rewriting, cc.has_rewriting);
  EXPECT_EQ(naive.min_size, cc.stats.minimum_cover_size);
  EXPECT_EQ(naive.rewritings.size(), cc.rewritings.size());
}

TEST(NaiveEnumTest, NoRewriting) {
  const auto q = MustParseQuery("q(X) :- r(X,Y), s(Y)");
  const auto views = MustParseProgram("v(X) :- r(X,Y)");
  const auto result = NaiveEnumerateGmrs(q, views);
  EXPECT_FALSE(result.has_rewriting);
  EXPECT_TRUE(result.rewritings.empty());
}

TEST(NaiveEnumTest, CombinationCountGrowsWithViewTuples) {
  // With v4 removed, the minimum size becomes 2 and more combinations are
  // tested than CoreCover would need.
  ViewSet views = CarLocPartViews();
  views.erase(views.begin() + 3);  // Drop v4.
  const auto result = NaiveEnumerateGmrs(CarLocPartQuery(), views);
  EXPECT_TRUE(result.has_rewriting);
  EXPECT_EQ(result.min_size, 2u);
  // 4 tuples remain (v1, v2, v3, v5): 4 singletons + C(4,2)=6 pairs.
  EXPECT_EQ(result.combinations_tested, 10u);
}

TEST(NaiveEnumTest, FindsAllGmrsAtMinimumSize) {
  ViewSet views = CarLocPartViews();
  views.erase(views.begin() + 3);  // Drop v4.
  const auto result = NaiveEnumerateGmrs(CarLocPartQuery(), views);
  // {v1,v2} and {v5,v2} both work (v1 ≡ v5).
  EXPECT_EQ(result.rewritings.size(), 2u);
}

TEST(NaiveEnumTest, MaxResultsCaps) {
  ViewSet views = CarLocPartViews();
  views.erase(views.begin() + 3);
  const auto result = NaiveEnumerateGmrs(CarLocPartQuery(), views, 1);
  EXPECT_TRUE(result.has_rewriting);
  EXPECT_EQ(result.rewritings.size(), 1u);
}

}  // namespace
}  // namespace vbr
