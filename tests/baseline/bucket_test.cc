#include "baseline/bucket.h"

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "rewrite/rewriting.h"
#include "tests/rewrite/fixtures.h"

namespace vbr {
namespace {

using testing_fixtures::CarLocPartQuery;
using testing_fixtures::CarLocPartViews;

TEST(BucketTest, CarLocPartBucketsContainCoveringTuples) {
  const auto result = BucketAlgorithm(CarLocPartQuery(), CarLocPartViews());
  ASSERT_EQ(result.buckets.size(), 3u);
  // Subgoal 0 (car) can come from v1, v4, v5 — not from v2; v3 exposes no
  // distinguished match but covers no subgoal anyway (its expansion's C is
  // existential, and car's M is not distinguished... the local test admits
  // what it cannot refute). At minimum the correct providers are present.
  auto has = [](const std::vector<Atom>& bucket, const char* pred) {
    for (const Atom& a : bucket) {
      if (a.predicate_name() == pred) return true;
    }
    return false;
  };
  EXPECT_TRUE(has(result.buckets[0], "v1"));
  EXPECT_TRUE(has(result.buckets[0], "v4"));
  EXPECT_TRUE(has(result.buckets[0], "v5"));
  EXPECT_FALSE(has(result.buckets[0], "v2"));
  EXPECT_TRUE(has(result.buckets[2], "v2"));
  EXPECT_TRUE(has(result.buckets[2], "v4"));
}

TEST(BucketTest, FindsEquivalentRewritings) {
  const auto result = BucketAlgorithm(CarLocPartQuery(), CarLocPartViews());
  EXPECT_FALSE(result.rewritings.empty());
  const auto q = CarLocPartQuery();
  const ViewSet views = CarLocPartViews();
  bool found_v4 = false;
  for (const auto& p : result.rewritings) {
    EXPECT_TRUE(IsEquivalentRewriting(p, q, views)) << p.ToString();
    if (p.ToString() == "q1(S,C) :- v4(M,a,C,S)") found_v4 = true;
  }
  EXPECT_TRUE(found_v4);
}

TEST(BucketTest, EmptyBucketShortCircuits) {
  const auto q = MustParseQuery("q(X) :- r(X,Y), s(Y)");
  const auto views = MustParseProgram("v(X,Y) :- r(X,Y)");
  const auto result = BucketAlgorithm(q, views);
  EXPECT_TRUE(result.rewritings.empty());
  EXPECT_EQ(result.combinations_tested, 0u);
}

TEST(BucketTest, CombinationsAreCartesianProduct) {
  // Two subgoals, each coverable by 2 single-subgoal views: 4 combinations.
  const auto q = MustParseQuery("q(X,Y) :- r(X), s(Y)");
  const auto views = MustParseProgram(R"(
    va(X) :- r(X)
    vb(X) :- r(X)
    vc(Y) :- s(Y)
    vd(Y) :- s(Y)
  )");
  const auto result = BucketAlgorithm(q, views);
  EXPECT_EQ(result.combinations_tested, 4u);
  EXPECT_EQ(result.rewritings.size(), 4u);
}

TEST(BucketTest, TruncationFlag) {
  const auto q = MustParseQuery("q(X,Y) :- r(X), s(Y)");
  const auto views = MustParseProgram(R"(
    va(X) :- r(X)
    vb(X) :- r(X)
    vc(Y) :- s(Y)
    vd(Y) :- s(Y)
  )");
  const auto result = BucketAlgorithm(q, views, /*max_results=*/2);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.rewritings.size(), 2u);
}

TEST(BucketTest, RepeatedTupleCollapsesInBody) {
  // One view covers both subgoals; choosing it from both buckets must not
  // duplicate the literal.
  const auto q = MustParseQuery("q(X,Y) :- r(X), s(Y)");
  const auto views = MustParseProgram("v(X,Y) :- r(X), s(Y)");
  const auto result = BucketAlgorithm(q, views);
  ASSERT_EQ(result.rewritings.size(), 1u);
  EXPECT_EQ(result.rewritings[0].num_subgoals(), 1u);
}

}  // namespace
}  // namespace vbr
