#include "baseline/minicon.h"

#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <string>

#include "cq/parser.h"
#include "rewrite/core_cover.h"
#include "rewrite/rewriting.h"
#include "tests/rewrite/fixtures.h"

namespace vbr {
namespace {

using testing_fixtures::CarLocPartQuery;
using testing_fixtures::CarLocPartViews;

// Example 4.2 with a configurable k.
ConjunctiveQuery Example42Query(int k) {
  std::string body;
  for (int i = 1; i <= k; ++i) {
    if (i > 1) body += ", ";
    body += "a" + std::to_string(i) + "(X,Z" + std::to_string(i) + "), ";
    body += "b" + std::to_string(i) + "(Z" + std::to_string(i) + ",Y)";
  }
  return MustParseQuery("q(X,Y) :- " + body);
}

ViewSet Example42Views(int k) {
  std::string text;
  // The big view V identical to the query.
  text += "v(X,Y) :- ";
  for (int i = 1; i <= k; ++i) {
    if (i > 1) text += ", ";
    text += "a" + std::to_string(i) + "(X,Z" + std::to_string(i) + "), ";
    text += "b" + std::to_string(i) + "(Z" + std::to_string(i) + ",Y)";
  }
  text += "\n";
  // The pairwise views V1..V(k-1).
  for (int i = 1; i <= k - 1; ++i) {
    const std::string s = std::to_string(i);
    text += "v" + s + "(X,Y) :- a" + s + "(X,Z" + s + "), b" + s + "(Z" + s +
            ",Y)\n";
  }
  return MustParseProgram(text);
}

TEST(MiniConTest, Example42McdsAreMinimalPairs) {
  // MiniCon forms k MCDs from V (each covering one a_i/b_i pair) plus one
  // per pairwise view — never a single MCD covering everything.
  const int k = 3;
  const auto result = MiniCon(Example42Query(k), Example42Views(k));
  for (const Mcd& mcd : result.mcds) {
    EXPECT_EQ(std::popcount(mcd.covered_mask), 2)
        << mcd.literal.ToString();
  }
  // k MCDs from V + (k-1) from the small views.
  EXPECT_EQ(result.mcds.size(), static_cast<size_t>(k + (k - 1)));
}

TEST(MiniConTest, Example42RewritingsHaveRedundantSubgoals) {
  // Section 4.3's punchline: every MiniCon rewriting has k subgoals, while
  // CoreCover's GMR has one.
  const int k = 3;
  const auto q = Example42Query(k);
  const auto views = Example42Views(k);
  const auto minicon = MiniCon(q, views);
  ASSERT_FALSE(minicon.equivalent_rewritings.empty());
  for (const auto& p : minicon.equivalent_rewritings) {
    EXPECT_EQ(p.num_subgoals(), static_cast<size_t>(k)) << p.ToString();
  }
  const auto cc = CoreCover(q, views);
  ASSERT_EQ(cc.rewritings.size(), 1u);
  EXPECT_EQ(cc.rewritings[0].num_subgoals(), 1u);
}

TEST(MiniConTest, ContainedRewritingsAreContained) {
  const auto q = CarLocPartQuery();
  const ViewSet views = CarLocPartViews();
  const auto result = MiniCon(q, views);
  for (const auto& p : result.contained_rewritings) {
    EXPECT_TRUE(ExpansionContainedInQuery(p, q, views)) << p.ToString();
  }
}

TEST(MiniConTest, CarLocPartEquivalentRewritingsExist) {
  const auto q = CarLocPartQuery();
  const ViewSet views = CarLocPartViews();
  const auto result = MiniCon(q, views);
  ASSERT_FALSE(result.equivalent_rewritings.empty());
  for (const auto& p : result.equivalent_rewritings) {
    EXPECT_TRUE(IsEquivalentRewriting(p, q, views)) << p.ToString();
  }
}

TEST(MiniConTest, C1RejectsViewsHidingDistinguishedVariables) {
  // The view hides Z which the query head needs: no MCD, no rewriting.
  const auto q = MustParseQuery("q(X,Z) :- a(X,Z)");
  const auto views = MustParseProgram("v(X) :- a(X,Z)");
  const auto result = MiniCon(q, views);
  EXPECT_TRUE(result.mcds.empty());
  EXPECT_TRUE(result.contained_rewritings.empty());
}

TEST(MiniConTest, C2PullsInAllSubgoalsOfExistentialVariable) {
  const auto q = MustParseQuery("q(X) :- a(X,Z), b(Z)");
  const auto views = MustParseProgram("v(X) :- a(X,Z), b(Z)");
  const auto result = MiniCon(q, views);
  ASSERT_EQ(result.mcds.size(), 1u);
  EXPECT_EQ(result.mcds[0].covered_mask, 0b11u);
  ASSERT_EQ(result.equivalent_rewritings.size(), 1u);
  EXPECT_EQ(result.equivalent_rewritings[0].ToString(), "q(X) :- v(X)");
}

TEST(MiniConTest, HeadHomomorphismCollapsesHeadVariables) {
  // Covering e(X,X) with v(A,B) :- e(A,B) needs the head homomorphism
  // A = B.
  const auto q = MustParseQuery("q(X) :- e(X,X)");
  const auto views = MustParseProgram("v(A,B) :- e(A,B)");
  const auto result = MiniCon(q, views);
  ASSERT_EQ(result.mcds.size(), 1u);
  EXPECT_EQ(result.mcds[0].literal.ToString(), "v(X,X)");
  ASSERT_EQ(result.equivalent_rewritings.size(), 1u);
}

TEST(MiniConTest, ConstantSelectionInLiteral) {
  // car(M,a): the view exposes D, so the literal selects D = a.
  const auto q = MustParseQuery("q(M) :- car(M,a)");
  const auto views = MustParseProgram("v(M,D) :- car(M,D)");
  const auto result = MiniCon(q, views);
  ASSERT_EQ(result.mcds.size(), 1u);
  EXPECT_EQ(result.mcds[0].literal.ToString(), "v(M,a)");
}

TEST(MiniConTest, MaximallyContainedRewritingIsContainedAndTight) {
  // The union of all contained rewritings under-approximates the query on
  // every instance, and matches it exactly when an equivalent rewriting is
  // among the disjuncts (closed world).
  const auto q = CarLocPartQuery();
  const ViewSet views = CarLocPartViews();
  const auto result = MiniCon(q, views);
  ASSERT_FALSE(result.contained_rewritings.empty());
  const UnionQuery mcr = MaximallyContainedRewriting(result);
  EXPECT_EQ(mcr.num_disjuncts(), result.contained_rewritings.size());
  // Tightness follows from having an equivalent disjunct.
  ASSERT_FALSE(result.equivalent_rewritings.empty());
  // Symbolically: each disjunct's expansion is contained in Q, and some
  // disjunct is equivalent, so the union is equivalent to Q over the view
  // instances the closed world allows.
  for (const auto& d : mcr.disjuncts()) {
    EXPECT_TRUE(ExpansionContainedInQuery(d, q, views));
  }
}

TEST(MiniConDeathTest, MaximallyContainedNeedsRewritings) {
  MiniConResult empty;
  EXPECT_DEATH(MaximallyContainedRewriting(empty), "no contained");
}

TEST(MiniConTest, DisjointTilingForbidsOverlap) {
  // Two views overlap on subgoal b: MiniCon cannot combine them (their G
  // sets overlap), so only the full view (if any) covers the query. Here
  // no single view covers everything -> no rewriting despite CoreCover's
  // overlapping covers also failing equivalence... use a case where overlap
  // is the only option.
  const auto q = MustParseQuery("q(X,Y) :- a(X,W), b(W,Z), c(Z,Y)");
  const auto views = MustParseProgram(R"(
    v1(X,Z) :- a(X,W), b(W,Z)
    v2(W,Y) :- b(W,Z), c(Z,Y)
  )");
  const auto result = MiniCon(q, views);
  // v1's MCD covers {a,b}; v2's covers {b,c}; they overlap on b, so no
  // disjoint tiling exists.
  EXPECT_TRUE(result.contained_rewritings.empty());
}

}  // namespace
}  // namespace vbr
