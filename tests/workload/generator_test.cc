#include "workload/generator.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <unordered_set>

#include "cq/vbin_codec.h"
#include "rewrite/core_cover.h"

namespace vbr {
namespace {

WorkloadConfig Base(QueryShape shape, uint64_t seed) {
  WorkloadConfig config;
  config.shape = shape;
  config.num_query_subgoals = 8;
  config.num_predicates = 10;
  config.num_views = 30;
  config.seed = seed;
  return config;
}

TEST(GeneratorTest, StarQueryShape) {
  const Workload w = GenerateWorkload(Base(QueryShape::kStar, 1));
  ASSERT_EQ(w.query.num_subgoals(), 8u);
  // All subgoals share the first argument (the center).
  const Term center = w.query.subgoal(0).arg(0);
  for (const Atom& a : w.query.body()) {
    EXPECT_EQ(a.arity(), 2u);
    EXPECT_EQ(a.arg(0), center);
  }
}

TEST(GeneratorTest, ChainQueryShape) {
  const Workload w = GenerateWorkload(Base(QueryShape::kChain, 2));
  ASSERT_EQ(w.query.num_subgoals(), 8u);
  for (size_t i = 0; i + 1 < w.query.num_subgoals(); ++i) {
    EXPECT_EQ(w.query.subgoal(i).arg(1), w.query.subgoal(i + 1).arg(0));
  }
}

TEST(GeneratorTest, RequestedNumberOfViews) {
  const Workload w = GenerateWorkload(Base(QueryShape::kStar, 3));
  EXPECT_EQ(w.views.size(), 30u);
  // Unique head predicates.
  std::unordered_set<Symbol> names;
  for (const View& v : w.views) {
    EXPECT_TRUE(names.insert(v.head().predicate()).second);
  }
}

TEST(GeneratorTest, ViewSubgoalCountsWithinRange) {
  WorkloadConfig config = Base(QueryShape::kChain, 4);
  config.min_view_subgoals = 1;
  config.max_view_subgoals = 3;
  const Workload w = GenerateWorkload(config);
  for (const View& v : w.views) {
    EXPECT_GE(v.num_subgoals(), 1u);
    EXPECT_LE(v.num_subgoals(), 3u);
    EXPECT_TRUE(v.IsSafe());
  }
}

TEST(GeneratorTest, DeterministicInSeed) {
  const Workload a = GenerateWorkload(Base(QueryShape::kStar, 42));
  const Workload b = GenerateWorkload(Base(QueryShape::kStar, 42));
  EXPECT_EQ(a.query, b.query);
  ASSERT_EQ(a.views.size(), b.views.size());
  for (size_t i = 0; i < a.views.size(); ++i) {
    EXPECT_EQ(a.views[i], b.views[i]);
  }
  const Workload c = GenerateWorkload(Base(QueryShape::kStar, 43));
  EXPECT_NE(a.query, c.query);
}

TEST(GeneratorTest, AllDistinguishedByDefault) {
  const Workload w = GenerateWorkload(Base(QueryShape::kStar, 5));
  EXPECT_TRUE(w.query.ExistentialVariables().empty());
}

TEST(GeneratorTest, NondistinguishedQueryVariables) {
  WorkloadConfig config = Base(QueryShape::kStar, 6);
  config.num_nondistinguished_query_vars = 1;
  const Workload w = GenerateWorkload(config);
  EXPECT_EQ(w.query.ExistentialVariables().size(), 1u);
  EXPECT_TRUE(w.query.IsSafe());
}

TEST(GeneratorTest, SingleSubgoalViewsStayFullyDistinguished) {
  WorkloadConfig config = Base(QueryShape::kChain, 7);
  config.num_nondistinguished_view_vars = 1;
  const Workload w = GenerateWorkload(config);
  for (const View& v : w.views) {
    if (v.num_subgoals() == 1) {
      EXPECT_TRUE(v.ExistentialVariables().empty()) << v.ToString();
    }
  }
}

TEST(GeneratorTest, EnsureRewritingExistsDelivers) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    WorkloadConfig config = Base(QueryShape::kStar, seed);
    config.num_views = 20;
    const Workload w = GenerateWorkload(config);
    const auto result = CoreCover(w.query, w.views);
    EXPECT_TRUE(result.has_rewriting) << "seed " << seed;
  }
}

TEST(GeneratorTest, ChainWorkloadsHaveRewritings) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    WorkloadConfig config = Base(QueryShape::kChain, seed);
    const Workload w = GenerateWorkload(config);
    const auto result = CoreCover(w.query, w.views);
    EXPECT_TRUE(result.has_rewriting) << "seed " << seed;
  }
}

TEST(GeneratorTest, ChainEndpointsOnlyConfiguration) {
  WorkloadConfig config = Base(QueryShape::kChain, 12);
  config.chain_endpoints_only = true;
  const Workload w = GenerateWorkload(config);
  // Query head exposes exactly the chain's endpoints.
  ASSERT_EQ(w.query.head().arity(), 2u);
  EXPECT_EQ(w.query.head().arg(0), w.query.subgoal(0).arg(0));
  EXPECT_EQ(w.query.head().arg(1),
            w.query.subgoal(w.query.num_subgoals() - 1).arg(1));
  // Multi-subgoal views expose endpoints only; singletons stay full.
  for (const View& v : w.views) {
    if (v.num_subgoals() > 1) {
      EXPECT_EQ(v.head().arity(), 2u) << v.ToString();
    } else {
      EXPECT_EQ(v.head().arity(), 2u);
      EXPECT_TRUE(v.ExistentialVariables().empty());
    }
  }
  EXPECT_TRUE(w.query.IsSafe());
}

TEST(GeneratorTest, EndpointsOnlyStillHasACoverageRewriting) {
  // The injected per-predicate singleton views keep a rewriting available
  // even in the sparse endpoints-only regime.
  WorkloadConfig config = Base(QueryShape::kChain, 13);
  config.chain_endpoints_only = true;
  const Workload w = GenerateWorkload(config);
  EXPECT_TRUE(CoreCover(w.query, w.views).has_rewriting);
}

TEST(GeneratorTest, RandomShapeIsSafeAndBounded) {
  const Workload w = GenerateWorkload(Base(QueryShape::kRandom, 9));
  EXPECT_TRUE(w.query.IsSafe());
  EXPECT_EQ(w.query.num_subgoals(), 8u);
}

TEST(GeneratorTest, ZeroZipfKeepsLegacyStreamsBitIdentical) {
  // predicate_zipf_s == 0 must take the exact legacy UniformInt path, so
  // existing seeds keep generating the same workloads byte for byte.
  WorkloadConfig legacy = Base(QueryShape::kRandom, 42);
  WorkloadConfig zero = legacy;
  zero.predicate_zipf_s = 0.0;
  const Workload a = GenerateWorkload(legacy);
  const Workload b = GenerateWorkload(zero);
  EXPECT_EQ(a.query, b.query);
  EXPECT_EQ(a.views, b.views);
}

TEST(GeneratorTest, ZipfSkewConcentratesPredicateMass) {
  WorkloadConfig config = Base(QueryShape::kStar, 21);
  config.num_views = 400;
  config.num_predicates = 50;
  config.ensure_rewriting_exists = false;
  config.predicate_zipf_s = 1.5;
  const Workload skewed = GenerateWorkload(config);
  config.predicate_zipf_s = 0.0;
  const Workload uniform = GenerateWorkload(config);

  auto mass_on_hottest_decile = [](const Workload& w, size_t num_predicates) {
    std::map<std::string, size_t> counts;
    size_t total = 0;
    for (const View& v : w.views) {
      for (const Atom& a : v.body()) {
        ++counts[std::string(SymbolTable::Global().NameOf(a.predicate()))];
        ++total;
      }
    }
    // Zipf puts its mass on the LOW-numbered predicates specifically.
    size_t hot = 0;
    for (size_t p = 0; p < num_predicates / 10; ++p) {
      const auto it = counts.find("p" + std::to_string(p));
      if (it != counts.end()) hot += it->second;
    }
    return static_cast<double>(hot) / static_cast<double>(total);
  };

  const double skewed_mass =
      mass_on_hottest_decile(skewed, config.num_predicates);
  const double uniform_mass =
      mass_on_hottest_decile(uniform, config.num_predicates);
  // s = 1.5 over 50 predicates puts the majority of draws on the top 5;
  // uniform puts ~10% there.
  EXPECT_GT(skewed_mass, 0.5);
  EXPECT_LT(uniform_mass, 0.25);
}

// -- Massive catalogs --------------------------------------------------------

MassiveCatalogConfig MassiveBase(uint64_t seed) {
  MassiveCatalogConfig config;
  config.num_views = 500;
  config.num_predicates = 64;
  config.seed = seed;
  return config;
}

TEST(GeneratorTest, MassiveCatalogIsDeterministicAndCounted) {
  const Workload a = GenerateMassiveCatalog(MassiveBase(5));
  const Workload b = GenerateMassiveCatalog(MassiveBase(5));
  EXPECT_EQ(a.query, b.query);
  EXPECT_EQ(a.views, b.views);
  // num_views random views + one coverage singleton per pool predicate.
  EXPECT_EQ(a.views.size(), 500u + 64u);
  const Workload c = GenerateMassiveCatalog(MassiveBase(6));
  EXPECT_NE(a.views, c.views);

  MassiveCatalogConfig uncovered = MassiveBase(5);
  uncovered.cover_all_predicates = false;
  EXPECT_EQ(GenerateMassiveCatalog(uncovered).views.size(), 500u);
}

TEST(GeneratorTest, MassiveCatalogViewsAreSafeUniqueAndBounded) {
  const Workload w = GenerateMassiveCatalog(MassiveBase(7));
  std::unordered_set<Symbol> names;
  for (const View& v : w.views) {
    EXPECT_TRUE(v.IsSafe()) << v.ToString();
    EXPECT_GE(v.num_subgoals(), 1u);
    EXPECT_LE(v.num_subgoals(), 3u);
    EXPECT_TRUE(names.insert(v.head().predicate()).second) << v.ToString();
  }
}

TEST(GeneratorTest, CatalogQueriesAreIndependentAndRewritable) {
  const MassiveCatalogConfig config = MassiveBase(8);
  const Workload w = GenerateMassiveCatalog(config);
  const auto queries = GenerateCatalogQueries(config, 6, /*seed=*/99);
  ASSERT_EQ(queries.size(), 6u);
  // The workload's own query is catalog-query index 0 under the config seed.
  EXPECT_EQ(GenerateCatalogQueries(config, 1, config.seed)[0], w.query);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(queries[i].IsSafe());
    EXPECT_EQ(queries[i].num_subgoals(), config.num_query_subgoals);
    for (size_t j = i + 1; j < queries.size(); ++j) {
      EXPECT_NE(queries[i], queries[j]);
    }
    // Coverage singletons guarantee a rewriting for every query.
    CoreCoverOptions options;
    options.max_rewritings = 4;
    EXPECT_TRUE(CoreCover(queries[i], w.views, options).has_rewriting)
        << queries[i].ToString();
  }
  // A different seed yields a different batch; the same seed repeats it.
  EXPECT_EQ(GenerateCatalogQueries(config, 6, 99), queries);
  EXPECT_NE(GenerateCatalogQueries(config, 6, 100), queries);
}

TEST(GeneratorTest, MassiveCatalogViewsRoundTripThroughVbin) {
  MassiveCatalogConfig config = MassiveBase(9);
  config.num_views = 200;
  const Workload w = GenerateMassiveCatalog(config);
  const std::string bytes = EncodeProgramFile(w.views);
  std::vector<ConjunctiveQuery> back;
  ASSERT_TRUE(DecodeProgramFile(bytes, &back).ok());
  EXPECT_EQ(back, w.views);
  EXPECT_EQ(EncodeProgramFile(back), bytes);
}

}  // namespace
}  // namespace vbr
