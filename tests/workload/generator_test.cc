#include "workload/generator.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "rewrite/core_cover.h"

namespace vbr {
namespace {

WorkloadConfig Base(QueryShape shape, uint64_t seed) {
  WorkloadConfig config;
  config.shape = shape;
  config.num_query_subgoals = 8;
  config.num_predicates = 10;
  config.num_views = 30;
  config.seed = seed;
  return config;
}

TEST(GeneratorTest, StarQueryShape) {
  const Workload w = GenerateWorkload(Base(QueryShape::kStar, 1));
  ASSERT_EQ(w.query.num_subgoals(), 8u);
  // All subgoals share the first argument (the center).
  const Term center = w.query.subgoal(0).arg(0);
  for (const Atom& a : w.query.body()) {
    EXPECT_EQ(a.arity(), 2u);
    EXPECT_EQ(a.arg(0), center);
  }
}

TEST(GeneratorTest, ChainQueryShape) {
  const Workload w = GenerateWorkload(Base(QueryShape::kChain, 2));
  ASSERT_EQ(w.query.num_subgoals(), 8u);
  for (size_t i = 0; i + 1 < w.query.num_subgoals(); ++i) {
    EXPECT_EQ(w.query.subgoal(i).arg(1), w.query.subgoal(i + 1).arg(0));
  }
}

TEST(GeneratorTest, RequestedNumberOfViews) {
  const Workload w = GenerateWorkload(Base(QueryShape::kStar, 3));
  EXPECT_EQ(w.views.size(), 30u);
  // Unique head predicates.
  std::unordered_set<Symbol> names;
  for (const View& v : w.views) {
    EXPECT_TRUE(names.insert(v.head().predicate()).second);
  }
}

TEST(GeneratorTest, ViewSubgoalCountsWithinRange) {
  WorkloadConfig config = Base(QueryShape::kChain, 4);
  config.min_view_subgoals = 1;
  config.max_view_subgoals = 3;
  const Workload w = GenerateWorkload(config);
  for (const View& v : w.views) {
    EXPECT_GE(v.num_subgoals(), 1u);
    EXPECT_LE(v.num_subgoals(), 3u);
    EXPECT_TRUE(v.IsSafe());
  }
}

TEST(GeneratorTest, DeterministicInSeed) {
  const Workload a = GenerateWorkload(Base(QueryShape::kStar, 42));
  const Workload b = GenerateWorkload(Base(QueryShape::kStar, 42));
  EXPECT_EQ(a.query, b.query);
  ASSERT_EQ(a.views.size(), b.views.size());
  for (size_t i = 0; i < a.views.size(); ++i) {
    EXPECT_EQ(a.views[i], b.views[i]);
  }
  const Workload c = GenerateWorkload(Base(QueryShape::kStar, 43));
  EXPECT_NE(a.query, c.query);
}

TEST(GeneratorTest, AllDistinguishedByDefault) {
  const Workload w = GenerateWorkload(Base(QueryShape::kStar, 5));
  EXPECT_TRUE(w.query.ExistentialVariables().empty());
}

TEST(GeneratorTest, NondistinguishedQueryVariables) {
  WorkloadConfig config = Base(QueryShape::kStar, 6);
  config.num_nondistinguished_query_vars = 1;
  const Workload w = GenerateWorkload(config);
  EXPECT_EQ(w.query.ExistentialVariables().size(), 1u);
  EXPECT_TRUE(w.query.IsSafe());
}

TEST(GeneratorTest, SingleSubgoalViewsStayFullyDistinguished) {
  WorkloadConfig config = Base(QueryShape::kChain, 7);
  config.num_nondistinguished_view_vars = 1;
  const Workload w = GenerateWorkload(config);
  for (const View& v : w.views) {
    if (v.num_subgoals() == 1) {
      EXPECT_TRUE(v.ExistentialVariables().empty()) << v.ToString();
    }
  }
}

TEST(GeneratorTest, EnsureRewritingExistsDelivers) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    WorkloadConfig config = Base(QueryShape::kStar, seed);
    config.num_views = 20;
    const Workload w = GenerateWorkload(config);
    const auto result = CoreCover(w.query, w.views);
    EXPECT_TRUE(result.has_rewriting) << "seed " << seed;
  }
}

TEST(GeneratorTest, ChainWorkloadsHaveRewritings) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    WorkloadConfig config = Base(QueryShape::kChain, seed);
    const Workload w = GenerateWorkload(config);
    const auto result = CoreCover(w.query, w.views);
    EXPECT_TRUE(result.has_rewriting) << "seed " << seed;
  }
}

TEST(GeneratorTest, ChainEndpointsOnlyConfiguration) {
  WorkloadConfig config = Base(QueryShape::kChain, 12);
  config.chain_endpoints_only = true;
  const Workload w = GenerateWorkload(config);
  // Query head exposes exactly the chain's endpoints.
  ASSERT_EQ(w.query.head().arity(), 2u);
  EXPECT_EQ(w.query.head().arg(0), w.query.subgoal(0).arg(0));
  EXPECT_EQ(w.query.head().arg(1),
            w.query.subgoal(w.query.num_subgoals() - 1).arg(1));
  // Multi-subgoal views expose endpoints only; singletons stay full.
  for (const View& v : w.views) {
    if (v.num_subgoals() > 1) {
      EXPECT_EQ(v.head().arity(), 2u) << v.ToString();
    } else {
      EXPECT_EQ(v.head().arity(), 2u);
      EXPECT_TRUE(v.ExistentialVariables().empty());
    }
  }
  EXPECT_TRUE(w.query.IsSafe());
}

TEST(GeneratorTest, EndpointsOnlyStillHasACoverageRewriting) {
  // The injected per-predicate singleton views keep a rewriting available
  // even in the sparse endpoints-only regime.
  WorkloadConfig config = Base(QueryShape::kChain, 13);
  config.chain_endpoints_only = true;
  const Workload w = GenerateWorkload(config);
  EXPECT_TRUE(CoreCover(w.query, w.views).has_rewriting);
}

TEST(GeneratorTest, RandomShapeIsSafeAndBounded) {
  const Workload w = GenerateWorkload(Base(QueryShape::kRandom, 9));
  EXPECT_TRUE(w.query.IsSafe());
  EXPECT_EQ(w.query.num_subgoals(), 8u);
}

}  // namespace
}  // namespace vbr
