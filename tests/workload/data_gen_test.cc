#include "workload/data_gen.h"

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "engine/materialize.h"
#include "workload/generator.h"

namespace vbr {
namespace {

TEST(DataGenTest, CreatesARelationPerBasePredicate) {
  const auto q = MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)");
  const auto views = MustParseProgram("v(X,Y) :- r(X,Y), t(Y,X)");
  DataConfig config;
  config.rows_per_relation = 50;
  const Database db = GenerateBaseData(q, views, config);
  EXPECT_EQ(db.NumRelations(), 3u);  // r, s, t.
  for (Symbol p : db.Predicates()) {
    EXPECT_GT(db.Find(p)->size(), 0u);
    EXPECT_LE(db.Find(p)->size(), 50u);  // Dedup may shrink.
  }
}

TEST(DataGenTest, DeterministicInSeed) {
  const auto q = MustParseQuery("q(X) :- r(X,Y)");
  DataConfig config;
  config.rows_per_relation = 100;
  config.seed = 5;
  const Database a = GenerateBaseData(q, {}, config);
  const Database b = GenerateBaseData(q, {}, config);
  const Symbol r = SymbolTable::Global().Intern("r");
  EXPECT_TRUE(a.Find(r)->EqualsAsSet(*b.Find(r)));
}

TEST(DataGenTest, DomainBoundsRespected) {
  const auto q = MustParseQuery("q(X) :- r(X,Y)");
  DataConfig config;
  config.rows_per_relation = 200;
  config.domain_size = 10;
  const Database db = GenerateBaseData(q, {}, config);
  const Relation* r = db.Find(SymbolTable::Global().Intern("r"));
  for (size_t i = 0; i < r->size(); ++i) {
    for (Value v : r->row(i)) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 10);
    }
  }
}

TEST(DataGenTest, SkewConcentratesMass) {
  const auto q = MustParseQuery("q(X) :- r(X,Y)");
  DataConfig uniform;
  uniform.rows_per_relation = 2000;
  uniform.domain_size = 1000;
  DataConfig skewed = uniform;
  skewed.skew = 3.0;
  const Symbol r = SymbolTable::Global().Intern("r");
  auto mean_value = [&](const Database& db) {
    const Relation* rel = db.Find(r);
    double sum = 0;
    size_t count = 0;
    for (size_t i = 0; i < rel->size(); ++i) {
      for (Value v : rel->row(i)) {
        sum += static_cast<double>(v);
        ++count;
      }
    }
    return sum / static_cast<double>(count);
  };
  const double mu = mean_value(GenerateBaseData(q, {}, uniform));
  const double ms = mean_value(GenerateBaseData(q, {}, skewed));
  EXPECT_LT(ms, mu * 0.6);
}

TEST(DataGenTest, EndToEndWithGeneratedWorkload) {
  WorkloadConfig wc;
  wc.shape = QueryShape::kChain;
  wc.num_query_subgoals = 4;
  wc.num_views = 10;
  wc.seed = 11;
  const Workload w = GenerateWorkload(wc);
  DataConfig dc;
  dc.rows_per_relation = 100;
  dc.domain_size = 20;
  const Database base = GenerateBaseData(w.query, w.views, dc);
  const Database view_db = MaterializeViews(w.views, base);
  EXPECT_EQ(view_db.NumRelations(), w.views.size());
}

}  // namespace
}  // namespace vbr
