// Pins the sample files shipped under examples/data: they must keep
// parsing and producing the documented results (the README quotes them).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "cq/parser.h"
#include "engine/io.h"
#include "engine/materialize.h"
#include "planner/planner.h"
#include "rewrite/core_cover.h"

namespace vbr {
namespace {

std::string RepoPath(const std::string& relative) {
  // Tests run from the build tree; the sources sit one level up from
  // build/tests/integration — resolve via the VBR_SOURCE_DIR compile
  // definition provided by CMake.
  return std::string(VBR_SOURCE_DIR) + "/" + relative;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(SampleFilesTest, ProgramParsesAsQueryPlusViews) {
  const std::string text =
      ReadFile(RepoPath("examples/data/car_loc_part.program"));
  std::string error;
  auto program = ParseProgram(text, &error);
  ASSERT_TRUE(program.has_value()) << error;
  ASSERT_EQ(program->size(), 6u);
  EXPECT_EQ((*program)[0].head().predicate_name(), "q1");
}

TEST(SampleFilesTest, FactsParse) {
  const std::string text =
      ReadFile(RepoPath("examples/data/car_loc_part.facts"));
  std::string error;
  auto db = ParseDatabase(text, &error);
  ASSERT_TRUE(db.has_value()) << error;
  EXPECT_EQ(db->NumRelations(), 3u);
  EXPECT_EQ(db->TotalRows(), 9u);
}

TEST(SampleFilesTest, EndToEndMatchesReadme) {
  auto program = ParseProgram(
      ReadFile(RepoPath("examples/data/car_loc_part.program")));
  auto base =
      ParseDatabase(ReadFile(RepoPath("examples/data/car_loc_part.facts")));
  ASSERT_TRUE(program.has_value());
  ASSERT_TRUE(base.has_value());
  const ConjunctiveQuery query = (*program)[0];
  const ViewSet views(program->begin() + 1, program->end());

  const auto cc = CoreCover(query, views);
  ASSERT_EQ(cc.rewritings.size(), 1u);
  EXPECT_EQ(cc.rewritings[0].ToString(), "q1(S,C) :- v4(M,a,C,S)");

  ViewPlanner planner(views, MaterializeViews(views, *base));
  auto result = planner.Plan(query, CostModel::kM2);
  ASSERT_TRUE(result.ok());
  const Relation answer = planner.Execute(*result.choice);
  // The README's quoted answer: store1/sf and store2/la.
  EXPECT_EQ(answer.size(), 2u);
  EXPECT_TRUE(answer.Contains({EncodeConstant(Const("store1")),
                               EncodeConstant(Const("sf"))}));
  EXPECT_TRUE(answer.Contains({EncodeConstant(Const("store2")),
                               EncodeConstant(Const("la"))}));
}

}  // namespace
}  // namespace vbr
