// Full-pipeline integration: parse -> CoreCover -> filter advice -> M2/M3
// optimization -> execution, on the paper's running example with concrete
// data, checking that every stage agrees with every other.

#include <gtest/gtest.h>

#include "baseline/minicon.h"
#include "baseline/naive_enum.h"
#include "cost/filter_advisor.h"
#include "cost/m2_optimizer.h"
#include "cost/supplementary.h"
#include "cq/parser.h"
#include "engine/evaluator.h"
#include "engine/materialize.h"
#include "rewrite/core_cover.h"
#include "tests/rewrite/fixtures.h"

namespace vbr {
namespace {

using testing_fixtures::CarLocPartQuery;
using testing_fixtures::CarLocPartViews;

// A mid-sized car-loc-part instance.
Database MakeBase() {
  Database db;
  const Value a = EncodeConstant(Const("a"));
  const Value other = EncodeConstant(Const("other_dealer"));
  for (Value m = 0; m < 8; ++m) db.AddRow("car", {m, a});
  for (Value m = 8; m < 30; ++m) db.AddRow("car", {m, other});
  for (Value c = 0; c < 6; ++c) db.AddRow("loc", {a, 100 + c});
  for (Value c = 6; c < 20; ++c) db.AddRow("loc", {other, 100 + c});
  for (Value i = 0; i < 300; ++i) {
    db.AddRow("part", {1000 + i % 40, i % 30, 100 + (i % 20)});
  }
  return db;
}

TEST(PipelineTest, EveryStageAgreesOnTheAnswer) {
  const ConjunctiveQuery q = CarLocPartQuery();
  const ViewSet views = CarLocPartViews();
  const Database base = MakeBase();
  const Database view_db = MaterializeViews(views, base);
  const Relation expected = EvaluateQuery(q, base);
  ASSERT_GT(expected.size(), 0u);

  // 1. CoreCover's GMR evaluated over the views.
  const auto cc = CoreCover(q, views);
  ASSERT_TRUE(cc.has_rewriting);
  for (const auto& p : cc.rewritings) {
    EXPECT_TRUE(EvaluateQuery(p, view_db).EqualsAsSet(expected));
  }

  // 2. CoreCover* minimal rewritings, M2-optimized and executed.
  const auto star = CoreCoverStar(q, views);
  for (const auto& p : star.rewritings) {
    const auto m2 = OptimizeOrderM2(p, view_db);
    EXPECT_TRUE(ExecutePlan(m2.plan, view_db).answer.EqualsAsSet(expected))
        << m2.plan.ToString();
  }

  // 3. Filter advice keeps the answer intact.
  std::vector<Atom> filters;
  for (size_t i : star.filter_candidates) {
    filters.push_back(star.view_tuples[i].tuple.atom);
  }
  for (const auto& p : star.rewritings) {
    const auto advice = AdviseFilters(p, filters, view_db);
    EXPECT_TRUE(
        EvaluateQuery(advice.improved, view_db).EqualsAsSet(expected));
    EXPECT_LE(advice.improved_cost, advice.base_cost);
  }

  // 4. M3 strategies on the two-subgoal rewriting.
  for (const auto& p : star.rewritings) {
    if (p.num_subgoals() != 2) continue;
    const auto m3 = CompareM3Strategies(p, q, views, view_db);
    EXPECT_TRUE(
        ExecutePlan(m3.sr_plan, view_db).answer.EqualsAsSet(expected));
    EXPECT_TRUE(
        ExecutePlan(m3.gsr_plan, view_db).answer.EqualsAsSet(expected));
  }

  // 5. Baselines agree.
  const auto naive = NaiveEnumerateGmrs(q, views);
  EXPECT_EQ(naive.min_size, cc.stats.minimum_cover_size);
  const auto minicon = MiniCon(q, views);
  for (const auto& p : minicon.equivalent_rewritings) {
    EXPECT_TRUE(EvaluateQuery(p, view_db).EqualsAsSet(expected));
  }
}

TEST(PipelineTest, M2OptimalCostNeverExceedsArbitraryOrder) {
  const ConjunctiveQuery q = CarLocPartQuery();
  const ViewSet views = CarLocPartViews();
  const Database view_db = MaterializeViews(views, MakeBase());
  const auto star = CoreCoverStar(q, views);
  for (const auto& p : star.rewritings) {
    const auto m2 = OptimizeOrderM2(p, view_db);
    std::vector<size_t> identity(p.num_subgoals());
    for (size_t i = 0; i < identity.size(); ++i) identity[i] = i;
    EXPECT_LE(m2.cost, CostOfOrderM2(p, identity, view_db));
  }
}

TEST(PipelineTest, ClosedWorldViewsV1V5Interchangeable) {
  // v1 and v5 have identical definitions; swapping them in a rewriting
  // changes nothing operationally.
  const ViewSet views = CarLocPartViews();
  const Database view_db = MaterializeViews(views, MakeBase());
  const auto p_v1 = MustParseQuery("q1(S,C) :- v1(M,a,C), v2(S,M,C)");
  const auto p_v5 = MustParseQuery("q1(S,C) :- v5(M,a,C), v2(S,M,C)");
  EXPECT_TRUE(EvaluateQuery(p_v1, view_db)
                  .EqualsAsSet(EvaluateQuery(p_v5, view_db)));
}

}  // namespace
}  // namespace vbr
