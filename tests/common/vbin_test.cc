// Container-level VBIN tests: primitives, CRC, the file envelope, and the
// CQ/rewrite value codecs (round-trip identity + hostile-input rejection).
#include "common/vbin.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "cq/vbin_codec.h"
#include "rewrite/certificate.h"
#include "rewrite/vbin_codec.h"

namespace vbr {
namespace {

TEST(VbinPrimitives, VarintRoundTrip) {
  const uint64_t values[] = {0,    1,    127,  128,   129,
                             1000, 1u << 20, 0xFFFFFFFFu,
                             0x1234567890ABCDEFull, UINT64_MAX};
  for (uint64_t v : values) {
    std::string buffer;
    vbin::AppendVarint(buffer, v);
    vbin::Reader reader(buffer);
    uint64_t back = 0;
    ASSERT_TRUE(reader.ReadVarint(&back)) << v;
    EXPECT_EQ(back, v);
    EXPECT_TRUE(reader.AtEnd());
  }
}

TEST(VbinPrimitives, VarintRejectsOverlongAndTruncated) {
  // 11 continuation bytes: longer than any 64-bit varint.
  std::string overlong(11, '\x80');
  vbin::Reader r1(overlong);
  uint64_t v = 0;
  EXPECT_FALSE(r1.ReadVarint(&v));

  // 10 bytes whose 10th contributes more than the final bit: overflow.
  std::string overflow(9, '\x80');
  overflow.push_back('\x7F');
  vbin::Reader r2(overflow);
  EXPECT_FALSE(r2.ReadVarint(&v));

  // Truncated mid-varint.
  std::string truncated("\x80", 1);
  vbin::Reader r3(truncated);
  EXPECT_FALSE(r3.ReadVarint(&v));
  EXPECT_FALSE(r3.ok());
}

TEST(VbinPrimitives, F64ExactBitPattern) {
  const double values[] = {0.0, -0.0, 1.5, -273.15, 1e300, 5e-324};
  for (double d : values) {
    std::string buffer;
    vbin::AppendF64(buffer, d);
    ASSERT_EQ(buffer.size(), 8u);
    vbin::Reader reader(buffer);
    double back = 0;
    ASSERT_TRUE(reader.ReadF64(&back));
    // Bit-exact, including the sign of -0.0.
    EXPECT_EQ(std::signbit(back), std::signbit(d));
    EXPECT_EQ(back, d);
  }
}

TEST(VbinPrimitives, Crc32KnownVector) {
  // The standard zlib check value.
  EXPECT_EQ(vbin::Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(vbin::Crc32(""), 0u);
}

TEST(VbinFile, EnvelopeRoundTrip) {
  vbin::FileWriter writer(vbin::FileKind::kQuery);
  const uint64_t id = writer.Intern("hello");
  EXPECT_EQ(writer.Intern("hello"), id);  // interning is idempotent
  writer.AppendVarint(id);
  const std::string bytes = std::move(writer).Finish();

  vbin::FileView file;
  vbin::Status status = vbin::OpenFile(bytes, &file, vbin::FileKind::kQuery);
  ASSERT_TRUE(status.ok()) << status.error;
  EXPECT_EQ(file.container_version, vbin::kContainerVersion);
  ASSERT_EQ(file.strings.size(), 1u);
  EXPECT_EQ(file.strings[0], "hello");

  vbin::Reader reader(file.body);
  uint64_t back = 0;
  ASSERT_TRUE(reader.ReadVarint(&back));
  EXPECT_EQ(back, id);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(VbinFile, RejectsWrongKind) {
  vbin::FileWriter writer(vbin::FileKind::kQuery);
  const std::string bytes = std::move(writer).Finish();
  vbin::FileView file;
  EXPECT_FALSE(vbin::OpenFile(bytes, &file, vbin::FileKind::kPlan).ok());
  EXPECT_TRUE(vbin::OpenFileAnyKind(bytes, &file).ok());
}

TEST(VbinFile, RejectsCorruptionEverywhere) {
  ConjunctiveQuery q = MustParseQuery("q(X,Y) :- e(X,Z), e(Z,Y).");
  const std::string bytes = EncodeQueryFile(q);

  // Every single-byte flip must be caught by the CRC (or the magic check),
  // never crash, and never decode successfully into a different value.
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] ^= 0x5A;
    ConjunctiveQuery out;
    vbin::Status status = DecodeQueryFile(mutated, &out);
    EXPECT_FALSE(status.ok()) << "flip at byte " << i;
  }

  // Every truncation must fail cleanly too.
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    ConjunctiveQuery out;
    EXPECT_FALSE(DecodeQueryFile(bytes.substr(0, keep), &out).ok())
        << "truncated to " << keep;
  }
}

TEST(VbinFile, RejectsNewerContainerVersion) {
  ConjunctiveQuery q = MustParseQuery("q(X) :- e(X,X).");
  std::string bytes = EncodeQueryFile(q);
  bytes[4] = static_cast<char>(vbin::kContainerVersion + 1);
  // Re-seal the CRC so only the version differs.
  const uint32_t crc = vbin::Crc32(
      std::string_view(bytes).substr(0, bytes.size() - 4));
  for (int i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  ConjunctiveQuery out;
  vbin::Status status = DecodeQueryFile(bytes, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error.find("version"), std::string::npos) << status.error;
}

TEST(VbinCodec, QueryRoundTripIdentity) {
  const char* texts[] = {
      "q(X,Y) :- e(X,Z), e(Z,Y).",
      "q(X) :- r(X,a), s(a,b,X).",
      "q(X,Y) :- e(X,Y), X <= Y.",
      "q() :- r(a).",
  };
  for (const char* text : texts) {
    ConjunctiveQuery q = MustParseQuery(text);
    const std::string bytes = EncodeQueryFile(q);
    ConjunctiveQuery back;
    vbin::Status status = DecodeQueryFile(bytes, &back);
    ASSERT_TRUE(status.ok()) << status.error;
    EXPECT_EQ(back, q) << text;
    // decode(encode(x)) re-encodes byte-identically.
    EXPECT_EQ(EncodeQueryFile(back), bytes) << text;
  }
}

TEST(VbinCodec, UnconventionalNamesSurvive) {
  // Lowercase-named variable, uppercase-named constant, spaces, quotes:
  // the binary form stores raw names + kind, so none of this needs the
  // text escaping path.
  ConjunctiveQuery q(Atom("q", {Var("x lower"), Const("UPPER")}),
                     {Atom("e", {Var("x lower"), Const("has \"quotes\"")})});
  const std::string bytes = EncodeQueryFile(q);
  ConjunctiveQuery back;
  ASSERT_TRUE(DecodeQueryFile(bytes, &back).ok());
  EXPECT_EQ(back, q);
  EXPECT_EQ(EncodeQueryFile(back), bytes);
  EXPECT_TRUE(back.head().arg(0).is_variable());
  EXPECT_TRUE(back.head().arg(1).is_constant());
}

TEST(VbinCodec, ProgramRoundTrip) {
  std::vector<ConjunctiveQuery> rules = MustParseProgram(
      "v1(X,Y) :- e(X,Y).\n"
      "v2(X,Z) :- e(X,Y), e(Y,Z).\n");
  const std::string bytes = EncodeProgramFile(rules);
  std::vector<ConjunctiveQuery> back;
  ASSERT_TRUE(DecodeProgramFile(bytes, &back).ok());
  EXPECT_EQ(back, rules);
  EXPECT_EQ(EncodeProgramFile(back), bytes);
}

TEST(VbinCodec, CertificateRoundTrip) {
  std::vector<ConjunctiveQuery> views = MustParseProgram(
      "v1(X,Y) :- e(X,Y).\n"
      "v2(X,Z) :- e(X,Y), e(Y,Z).\n");
  ConjunctiveQuery query = MustParseQuery("q(X,Z) :- e(X,Y), e(Y,Z).");
  ConjunctiveQuery rewriting = MustParseQuery("q(X,Z) :- v2(X,Z).");
  std::optional<EquivalenceCertificate> cert =
      CertifyEquivalentRewriting(rewriting, query, views);
  ASSERT_TRUE(cert.has_value());

  const std::string bytes = EncodeCertificateFile(*cert);
  EquivalenceCertificate back;
  ASSERT_TRUE(DecodeCertificateFile(bytes, &back).ok());
  // The decoded certificate still verifies and re-encodes byte-identically
  // (substitutions included — their canonical order is part of the format).
  EXPECT_TRUE(VerifyCertificate(back, views));
  EXPECT_EQ(EncodeCertificateFile(back), bytes);
  EXPECT_EQ(back.query, cert->query);
  EXPECT_EQ(back.rewriting, cert->rewriting);
  EXPECT_EQ(back.expansion.query, cert->expansion.query);
  EXPECT_EQ(back.expansion.origin, cert->expansion.origin);
}

TEST(VbinCodec, PlanFileRoundTrip) {
  PlanRecord plan;
  plan.rewriting = MustParseQuery("q(X) :- v1(X,Y), v2(Y,X).");
  plan.filter_atoms = {Atom("v3", {Var("X")})};
  const std::string bytes = EncodePlanFile(plan);
  PlanRecord back;
  ASSERT_TRUE(DecodePlanFile(bytes, &back).ok());
  EXPECT_EQ(back, plan);
  EXPECT_EQ(EncodePlanFile(back), bytes);
}

TEST(VbinFileIo, AtomicWriteAndReadBack) {
  const std::string path = ::testing::TempDir() + "/vbin_io_test.vbin";
  ConjunctiveQuery q = MustParseQuery("q(X) :- e(X,X).");
  const std::string bytes = EncodeQueryFile(q);
  ASSERT_TRUE(vbin::WriteFileAtomic(path, bytes).ok());
  std::string back;
  ASSERT_TRUE(vbin::ReadWholeFile(path, &back).ok());
  EXPECT_EQ(back, bytes);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vbr
