// Unit tests for the minimal JSON escaper and parser.

#include "common/json.h"

#include <gtest/gtest.h>

namespace vbr {
namespace {

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(ParseJsonTest, Scalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->bool_value());
  EXPECT_FALSE(ParseJson("false")->bool_value());
  EXPECT_DOUBLE_EQ(ParseJson("42")->number_value(), 42.0);
  EXPECT_DOUBLE_EQ(ParseJson("-3.5e2")->number_value(), -350.0);
  EXPECT_EQ(ParseJson("\"hi\"")->string_value(), "hi");
}

TEST(ParseJsonTest, StringEscapes) {
  EXPECT_EQ(ParseJson("\"a\\\"b\"")->string_value(), "a\"b");
  EXPECT_EQ(ParseJson("\"tab\\there\"")->string_value(), "tab\there");
  EXPECT_EQ(ParseJson("\"\\u0041\"")->string_value(), "A");
  // \u00e9 is é (two UTF-8 bytes).
  EXPECT_EQ(ParseJson("\"\\u00e9\"")->string_value(), "\xc3\xa9");
}

TEST(ParseJsonTest, NestedStructures) {
  const auto v = ParseJson(R"({"a":[1,2,{"b":true}],"c":null})");
  ASSERT_TRUE(v.has_value());
  const JsonValue* a = v->Get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array_items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->array_items()[0].number_value(), 1.0);
  const JsonValue* b = a->array_items()[2].Get("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->bool_value());
  EXPECT_TRUE(v->Get("c")->is_null());
  EXPECT_EQ(v->Get("missing"), nullptr);
}

TEST(ParseJsonTest, RoundTripsEscapedStrings) {
  const std::string original = "q(X) :- \"weird\"\n\\chars\t";
  const std::string doc = "{\"s\":\"" + JsonEscape(original) + "\"}";
  const auto v = ParseJson(doc);
  ASSERT_TRUE(v.has_value());
  ASSERT_NE(v->Get("s"), nullptr);
  EXPECT_EQ(v->Get("s")->string_value(), original);
}

TEST(ParseJsonTest, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(ParseJson("", &error).has_value());
  EXPECT_FALSE(ParseJson("{", &error).has_value());
  EXPECT_FALSE(ParseJson("[1,]", &error).has_value());
  EXPECT_FALSE(ParseJson("{\"a\":1,}", &error).has_value());
  EXPECT_FALSE(ParseJson("\"unterminated", &error).has_value());
  EXPECT_FALSE(ParseJson("nul", &error).has_value());
  EXPECT_FALSE(ParseJson("1 2", &error).has_value());  // Trailing garbage.
  EXPECT_FALSE(error.empty());
}

TEST(ParseJsonTest, AllowsTrailingWhitespace) {
  EXPECT_TRUE(ParseJson("  {\"a\":1}  \n").has_value());
}

}  // namespace
}  // namespace vbr
