#include "common/backoff.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace vbr {
namespace {

TEST(BackoffTest, FirstAttemptHasNoDelay) {
  BackoffPolicy policy;
  EXPECT_EQ(policy.DelayMs(0, 42), 0.0);
}

TEST(BackoffTest, GrowsExponentiallyWithoutJitter) {
  BackoffPolicy policy;
  policy.base_ms = 2.0;
  policy.multiplier = 3.0;
  policy.max_ms = 1000.0;
  policy.jitter = 0.0;
  EXPECT_DOUBLE_EQ(policy.DelayMs(1, 7), 2.0);
  EXPECT_DOUBLE_EQ(policy.DelayMs(2, 7), 6.0);
  EXPECT_DOUBLE_EQ(policy.DelayMs(3, 7), 18.0);
  EXPECT_DOUBLE_EQ(policy.DelayMs(4, 7), 54.0);
}

TEST(BackoffTest, CapsAtMaxDelay) {
  BackoffPolicy policy;
  policy.base_ms = 1.0;
  policy.multiplier = 10.0;
  policy.max_ms = 50.0;
  policy.jitter = 0.0;
  EXPECT_DOUBLE_EQ(policy.DelayMs(10, 0), 50.0);
  // Large attempt numbers terminate (the loop stops once at the cap).
  EXPECT_DOUBLE_EQ(policy.DelayMs(1'000'000, 0), 50.0);
}

TEST(BackoffTest, JitterStaysWithinTheConfiguredBand) {
  BackoffPolicy policy;
  policy.base_ms = 8.0;
  policy.multiplier = 2.0;
  policy.max_ms = 1000.0;
  policy.jitter = 0.5;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    const double d = policy.DelayMs(3, seed);  // un-jittered: 32 ms
    EXPECT_GE(d, 16.0) << "seed " << seed;
    EXPECT_LE(d, 32.0) << "seed " << seed;
  }
}

TEST(BackoffTest, DeterministicPerSeedAndAttempt) {
  BackoffPolicy policy;
  for (uint32_t attempt = 1; attempt <= 5; ++attempt) {
    EXPECT_DOUBLE_EQ(policy.DelayMs(attempt, 123),
                     policy.DelayMs(attempt, 123));
  }
}

TEST(BackoffTest, SeedsSpreadTheSchedule) {
  BackoffPolicy policy;
  policy.base_ms = 100.0;
  policy.max_ms = 1000.0;
  policy.jitter = 0.9;
  // Not a statistical test — just that jitter is not a constant offset.
  bool saw_distinct = false;
  const double first = policy.DelayMs(2, 0);
  for (uint64_t seed = 1; seed < 32 && !saw_distinct; ++seed) {
    saw_distinct = policy.DelayMs(2, seed) != first;
  }
  EXPECT_TRUE(saw_distinct);
}

}  // namespace
}  // namespace vbr
