// Unit tests for the ResourceGovernor (common/budget.h): latch semantics of
// CheckPoint vs KeepGoing, the work / memory / deadline budgets, node-cap
// derivation, first-wins exhaustion, and GovernorScope nesting.

#include "common/budget.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace vbr {
namespace {

TEST(ResourceLimitsTest, UnlimitedByDefault) {
  ResourceLimits limits;
  EXPECT_TRUE(limits.unlimited());
  limits.work_limit = 1;
  EXPECT_FALSE(limits.unlimited());
}

TEST(BudgetKindNameTest, AllKindsNamed) {
  EXPECT_STREQ(BudgetKindName(BudgetKind::kNone), "none");
  EXPECT_STREQ(BudgetKindName(BudgetKind::kDeadline), "deadline");
  EXPECT_STREQ(BudgetKindName(BudgetKind::kWork), "work");
  EXPECT_STREQ(BudgetKindName(BudgetKind::kMemory), "memory");
  EXPECT_STREQ(BudgetKindName(BudgetKind::kInjected), "injected");
}

TEST(ResourceGovernorTest, WorkBudgetLatchesOnlyAtCheckPoint) {
  ResourceLimits limits;
  limits.work_limit = 10;
  ResourceGovernor governor(limits);
  governor.ChargeWork(100);
  // KeepGoing never latches on the work counter (determinism contract).
  EXPECT_TRUE(governor.KeepGoing("test.hot_loop"));
  EXPECT_FALSE(governor.exhausted());
  // The serial checkpoint does.
  EXPECT_FALSE(governor.CheckPoint("test.stage"));
  EXPECT_TRUE(governor.exhausted());
  EXPECT_EQ(governor.kind(), BudgetKind::kWork);
  EXPECT_EQ(governor.exhaustion().site, "test.stage");
  // Once latched, KeepGoing observes it.
  EXPECT_FALSE(governor.KeepGoing("test.hot_loop"));
}

TEST(ResourceGovernorTest, WorkUnderLimitPasses) {
  ResourceLimits limits;
  limits.work_limit = 10;
  ResourceGovernor governor(limits);
  governor.ChargeWork(10);
  EXPECT_TRUE(governor.CheckPoint("test.stage"));
  governor.ChargeWork(1);
  EXPECT_FALSE(governor.CheckPoint("test.stage"));
  EXPECT_EQ(governor.work_used(), 11u);
}

TEST(ResourceGovernorTest, ExhaustionSiteIsFirstWins) {
  ResourceLimits limits;
  limits.work_limit = 1;
  ResourceGovernor governor(limits);
  governor.ChargeWork(5);
  EXPECT_FALSE(governor.CheckPoint("site.first"));
  EXPECT_FALSE(governor.CheckPoint("site.second"));
  EXPECT_EQ(governor.exhaustion().site, "site.first");
  governor.NoteExhausted(BudgetKind::kMemory, "site.third");
  EXPECT_EQ(governor.kind(), BudgetKind::kWork);
  EXPECT_EQ(governor.exhaustion().site, "site.first");
}

TEST(ResourceGovernorTest, MemoryBudgetLatchesOnCharge) {
  ResourceLimits limits;
  limits.memory_limit_bytes = 1000;
  ResourceGovernor governor(limits);
  EXPECT_TRUE(governor.ChargeMemory(600, "test.alloc"));
  EXPECT_TRUE(governor.ChargeMemory(400, "test.alloc"));  // exactly at limit
  EXPECT_FALSE(governor.ChargeMemory(1, "test.alloc"));
  EXPECT_TRUE(governor.exhausted());
  EXPECT_EQ(governor.kind(), BudgetKind::kMemory);
  EXPECT_EQ(governor.memory_used(), 1001u);
}

TEST(ResourceGovernorTest, ReleaseMemoryLowersTheCounter) {
  ResourceLimits limits;
  limits.memory_limit_bytes = 1000;
  ResourceGovernor governor(limits);
  EXPECT_TRUE(governor.ChargeMemory(900, "test.alloc"));
  governor.ReleaseMemory(800);
  EXPECT_TRUE(governor.ChargeMemory(500, "test.alloc"));
  EXPECT_FALSE(governor.exhausted());
}

TEST(ResourceGovernorTest, DeadlineLatchesAtCheckPoint) {
  ResourceLimits limits;
  limits.deadline_ms = 1;  // expires almost immediately
  ResourceGovernor governor(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(governor.CheckPoint("test.stage"));
  EXPECT_EQ(governor.kind(), BudgetKind::kDeadline);
  EXPECT_EQ(governor.remaining_ms(), 0.0);
}

TEST(ResourceGovernorTest, DeadlineObservedByKeepGoingWithinStride) {
  ResourceLimits limits;
  limits.deadline_ms = 1;
  ResourceGovernor governor(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // KeepGoing amortizes clock reads over a fixed stride; within at most one
  // stride of calls it must observe the expired deadline.
  bool stopped = false;
  for (int i = 0; i < 4096 && !stopped; ++i) {
    stopped = !governor.KeepGoing("test.hot_loop");
  }
  EXPECT_TRUE(stopped);
  EXPECT_EQ(governor.kind(), BudgetKind::kDeadline);
}

TEST(ResourceGovernorTest, NoDeadlineReportsLargeRemaining) {
  ResourceLimits limits;
  limits.work_limit = 100;
  ResourceGovernor governor(limits);
  EXPECT_GT(governor.remaining_ms(), 1e6);
  EXPECT_GE(governor.elapsed_ms(), 0.0);
}

TEST(ResourceGovernorTest, SearchNodeCapDerivesFromWorkLimit) {
  ResourceLimits limits;
  limits.work_limit = 1234;
  EXPECT_EQ(ResourceGovernor(limits).search_node_cap(), 1234u);
  limits.search_node_cap = 99;
  EXPECT_EQ(ResourceGovernor(limits).search_node_cap(), 99u);
  ResourceLimits no_work;
  no_work.deadline_ms = 1000;
  EXPECT_EQ(ResourceGovernor(no_work).search_node_cap(), 0u);
}

TEST(GovernorScopeTest, InstallsAndRestores) {
  EXPECT_EQ(ResourceGovernor::Current(), nullptr);
  ResourceLimits limits;
  limits.work_limit = 10;
  ResourceGovernor outer(limits);
  {
    GovernorScope scope(&outer);
    EXPECT_EQ(ResourceGovernor::Current(), &outer);
    ResourceGovernor inner(limits);
    {
      GovernorScope nested(&inner);
      EXPECT_EQ(ResourceGovernor::Current(), &inner);
    }
    EXPECT_EQ(ResourceGovernor::Current(), &outer);
  }
  EXPECT_EQ(ResourceGovernor::Current(), nullptr);
}

TEST(GovernorScopeTest, NullptrShieldsFromOuterGovernor) {
  ResourceLimits limits;
  limits.work_limit = 1;
  ResourceGovernor outer(limits);
  outer.ChargeWork(5);
  EXPECT_FALSE(outer.CheckPoint("test.outer"));
  GovernorScope scope(&outer);
  {
    // The shield is how grace certification escapes an exhausted budget.
    GovernorScope shield(nullptr);
    EXPECT_EQ(ResourceGovernor::Current(), nullptr);
  }
  EXPECT_EQ(ResourceGovernor::Current(), &outer);
}

TEST(ResourceGovernorTest, UnlimitedGovernorNeverExhausts) {
  ResourceGovernor governor(ResourceLimits{});
  governor.ChargeWork(1u << 20);
  EXPECT_TRUE(governor.ChargeMemory(1u << 30, "test.alloc"));
  EXPECT_TRUE(governor.CheckPoint("test.stage"));
  EXPECT_TRUE(governor.KeepGoing("test.hot_loop"));
  EXPECT_FALSE(governor.exhausted());
}

}  // namespace
}  // namespace vbr
