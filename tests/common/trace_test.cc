// Unit tests for the structured tracing primitives: span lifecycle, the
// explicit parent/child tree (including cross-thread children), null-sink
// inertness, and the MemoryTraceSink renderings.

#include "common/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "common/json.h"

namespace vbr {
namespace {

const TraceEvent* FindSpan(const std::vector<TraceEvent>& spans,
                           std::string_view name) {
  for (const TraceEvent& e : spans) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

TEST(TraceSpanTest, NullSinkSpansAreInert) {
  TraceSpan span(static_cast<TraceSink*>(nullptr), "root");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(span.id(), 0u);
  span.AddAttribute("key", "value");  // Must not crash.
  TraceSpan child(span, "child");
  EXPECT_FALSE(child.active());
  TraceSpan from_context(TraceContext{}, "ctx");
  EXPECT_FALSE(from_context.active());
}

TEST(TraceSpanTest, SpansFormATree) {
  MemoryTraceSink sink;
  {
    TraceSpan root(&sink, "root");
    {
      TraceSpan child(root, "child");
      TraceSpan grandchild(child.context(), "grandchild");
    }
    TraceSpan sibling(root, "sibling");
  }
  const auto spans = sink.spans();
  ASSERT_EQ(spans.size(), 4u);
  const TraceEvent* root = FindSpan(spans, "root");
  const TraceEvent* child = FindSpan(spans, "child");
  const TraceEvent* grandchild = FindSpan(spans, "grandchild");
  const TraceEvent* sibling = FindSpan(spans, "sibling");
  ASSERT_TRUE(root && child && grandchild && sibling);
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(child->parent_id, root->id);
  EXPECT_EQ(grandchild->parent_id, child->id);
  EXPECT_EQ(sibling->parent_id, root->id);
  // Children complete before their parent.
  EXPECT_LE(grandchild->end_ns, child->end_ns);
  EXPECT_LE(child->end_ns, root->end_ns);
}

TEST(TraceSpanTest, AttributesAreRecorded) {
  MemoryTraceSink sink;
  {
    TraceSpan span(&sink, "attrs");
    span.AddAttribute("text", "hello");
    span.AddAttribute("count", uint64_t{42});
    span.AddAttribute("flag", true);
  }
  const auto spans = sink.spans();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attributes.size(), 3u);
  EXPECT_EQ(spans[0].attributes[0].first, "text");
  EXPECT_EQ(spans[0].attributes[0].second, "hello");
  EXPECT_EQ(spans[0].attributes[1].second, "42");
  EXPECT_EQ(spans[0].attributes[2].second, "true");
}

TEST(TraceSpanTest, EndIsIdempotent) {
  MemoryTraceSink sink;
  {
    TraceSpan span(&sink, "once");
    span.End();
    span.End();  // Second End and the destructor must not re-emit.
  }
  EXPECT_EQ(sink.size(), 1u);
}

TEST(TraceSpanTest, ParentLinkSurvivesThreadHop) {
  MemoryTraceSink sink;
  {
    TraceSpan root(&sink, "root");
    const TraceContext context = root.context();
    std::thread worker([&context] {
      TraceSpan child(context, "worker_child");
    });
    worker.join();
  }
  const auto spans = sink.spans();
  const TraceEvent* root = FindSpan(spans, "root");
  const TraceEvent* child = FindSpan(spans, "worker_child");
  ASSERT_TRUE(root && child);
  EXPECT_EQ(child->parent_id, root->id);
  EXPECT_NE(child->thread_id, root->thread_id);
}

TEST(MemoryTraceSinkTest, ToTextIndentsByDepth) {
  MemoryTraceSink sink;
  {
    TraceSpan root(&sink, "root");
    TraceSpan child(root, "child");
  }
  const std::string text = sink.ToText();
  EXPECT_NE(text.find("root"), std::string::npos);
  EXPECT_NE(text.find("\n  child"), std::string::npos) << text;
}

TEST(MemoryTraceSinkTest, ToJsonParses) {
  MemoryTraceSink sink;
  {
    TraceSpan root(&sink, "root");
    root.AddAttribute("model", "M2");
    TraceSpan child(root, "child \"quoted\"");
  }
  std::string error;
  const auto parsed = ParseJson(sink.ToJson(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_TRUE(parsed->is_array());
  EXPECT_EQ(parsed->array_items().size(), 2u);
  for (const JsonValue& span : parsed->array_items()) {
    ASSERT_TRUE(span.is_object());
    EXPECT_NE(span.Get("name"), nullptr);
    EXPECT_NE(span.Get("start_ns"), nullptr);
    EXPECT_NE(span.Get("end_ns"), nullptr);
  }
}

TEST(MemoryTraceSinkTest, ClearEmptiesTheBuffer) {
  MemoryTraceSink sink;
  { TraceSpan span(&sink, "s"); }
  EXPECT_EQ(sink.size(), 1u);
  sink.Clear();
  EXPECT_EQ(sink.size(), 0u);
}

}  // namespace
}  // namespace vbr
