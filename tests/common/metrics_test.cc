// Unit tests for the metrics registry: instrument identity, histogram
// bucketing, snapshot/export, and concurrent updates.

#include "common/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/json.h"
#include "cq/parser.h"
#include "planner/planner.h"

namespace vbr {
namespace {

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("test.counter");
  Counter* b = registry.GetCounter("test.counter");
  EXPECT_EQ(a, b);
  Histogram* h1 = registry.GetHistogram("test.histogram");
  Histogram* h2 = registry.GetHistogram("test.histogram");
  EXPECT_EQ(h1, h2);
}

TEST(MetricsRegistryTest, CounterAccumulates) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.c");
  c->Increment();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(HistogramTest, BucketsByBitWidth) {
  Histogram h;
  h.Record(0);    // bucket bound 0
  h.Record(1);    // [1,1]
  h.Record(5);    // [4,7] -> bound 7
  h.Record(7);    // same bucket
  h.Record(100);  // [64,127] -> bound 127
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 113u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 100u);
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], (std::pair<uint64_t, uint64_t>{0, 1}));
  EXPECT_EQ(snap.buckets[1], (std::pair<uint64_t, uint64_t>{1, 1}));
  EXPECT_EQ(snap.buckets[2], (std::pair<uint64_t, uint64_t>{7, 2}));
  EXPECT_EQ(snap.buckets[3], (std::pair<uint64_t, uint64_t>{127, 1}));
  EXPECT_DOUBLE_EQ(snap.Mean(), 113.0 / 5.0);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram h;
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_TRUE(snap.buckets.empty());
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("z.last")->Add(3);
  registry.GetCounter("a.first")->Add(1);
  registry.GetHistogram("m.middle")->Record(10);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.first");
  EXPECT_EQ(snap.counters[0].value, 1u);
  EXPECT_EQ(snap.counters[1].name, "z.last");
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "m.middle");
  EXPECT_EQ(snap.histograms[0].data.count, 1u);
}

TEST(MetricsRegistryTest, TextExportListsEveryInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("export.counter")->Add(7);
  registry.GetHistogram("export.histogram")->Record(4);
  const std::string text = registry.Snapshot().ToText();
  EXPECT_NE(text.find("export.counter 7"), std::string::npos) << text;
  EXPECT_NE(text.find("export.histogram"), std::string::npos) << text;
  EXPECT_NE(text.find("count=1"), std::string::npos) << text;
}

TEST(MetricsRegistryTest, JsonExportParses) {
  MetricsRegistry registry;
  registry.GetCounter("json.counter")->Add(9);
  registry.GetHistogram("json.histogram")->Record(16);
  std::string error;
  const auto parsed = ParseJson(registry.Snapshot().ToJson(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const JsonValue* counters = parsed->Get("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* c = counters->Get("json.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->number_value(), 9.0);
  const JsonValue* histograms = parsed->Get("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* h = histograms->Get("json.histogram");
  ASSERT_NE(h, nullptr);
  ASSERT_NE(h->Get("count"), nullptr);
  EXPECT_DOUBLE_EQ(h->Get("count")->number_value(), 1.0);
}

TEST(MetricsRegistryTest, ResetForTestZeroesValuesButKeepsNames) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("reset.c");
  c->Add(5);
  registry.GetHistogram("reset.h")->Record(3);
  registry.ResetForTest();
  EXPECT_EQ(c->value(), 0u);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].data.count, 0u);
}

TEST(MetricsRegistryTest, PipelineReportsIntoGlobalRegistry) {
  // One end-to-end Plan call must move the pipeline's global instruments —
  // this catches a renamed or dropped registration site.
  auto& global = MetricsRegistry::Global();
  Counter* checks = global.GetCounter("cq.containment_checks");
  Counter* runs = global.GetCounter("corecover.runs");
  Counter* plans = global.GetCounter("planner.plans");
  const uint64_t checks_before = checks->value();
  const uint64_t runs_before = runs->value();
  const uint64_t plans_before = plans->value();

  const auto program =
      MustParseProgram("q(X,Y) :- e(X,Y). v(X,Y) :- e(X,Y).");
  const ViewPlanner planner(ViewSet(program.begin() + 1, program.end()),
                            Database());
  const auto result = planner.Plan(program[0], CostModel::kM1);
  EXPECT_TRUE(result.ok());
  EXPECT_GT(checks->value(), checks_before);
  EXPECT_GT(runs->value(), runs_before);
  EXPECT_GT(plans->value(), plans_before);
}

}  // namespace
}  // namespace vbr
