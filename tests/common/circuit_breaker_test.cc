#include "common/circuit_breaker.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

namespace vbr {
namespace {

CircuitBreakerOptions SmallOptions() {
  CircuitBreakerOptions options;
  options.window = 8;
  options.min_samples = 4;
  options.trip_threshold = 0.5;
  options.clear_threshold = 0.1;
  options.cooldown = 4;
  options.num_levels = 3;
  options.probe_interval = 3;
  return options;
}

TEST(CircuitBreakerTest, StartsHealthyAndAdmits) {
  CircuitBreaker breaker(SmallOptions());
  EXPECT_EQ(breaker.level(), 0u);
  EXPECT_EQ(breaker.Admit(), CircuitBreaker::Admission::kAdmit);
  EXPECT_EQ(breaker.trips(), 0u);
  EXPECT_DOUBLE_EQ(breaker.failure_rate(), 0.0);
}

TEST(CircuitBreakerTest, SustainedFailureWalksTheLadderUp) {
  CircuitBreaker breaker(SmallOptions());
  // min_samples = cooldown = 4: four failures trip one level, and the
  // window resets, so each further rung takes four more.
  for (int i = 0; i < 4; ++i) breaker.RecordFailure();
  EXPECT_EQ(breaker.level(), 1u);
  EXPECT_EQ(breaker.trips(), 1u);
  for (int i = 0; i < 4; ++i) breaker.RecordFailure();
  EXPECT_EQ(breaker.level(), 2u);  // reject level for num_levels = 3
  EXPECT_EQ(breaker.trips(), 2u);
  // Already at the top: more failures do not overshoot.
  for (int i = 0; i < 8; ++i) breaker.RecordFailure();
  EXPECT_EQ(breaker.level(), 2u);
  EXPECT_EQ(breaker.trips(), 2u);
}

TEST(CircuitBreakerTest, SustainedSuccessWalksBackDown) {
  CircuitBreaker breaker(SmallOptions());
  for (int i = 0; i < 8; ++i) breaker.RecordFailure();
  ASSERT_EQ(breaker.level(), 2u);
  for (int i = 0; i < 4; ++i) breaker.RecordSuccess();
  EXPECT_EQ(breaker.level(), 1u);
  EXPECT_EQ(breaker.recoveries(), 1u);
  for (int i = 0; i < 4; ++i) breaker.RecordSuccess();
  EXPECT_EQ(breaker.level(), 0u);
  EXPECT_EQ(breaker.recoveries(), 2u);
}

TEST(CircuitBreakerTest, MixedTrafficBelowThresholdHoldsLevel) {
  CircuitBreaker breaker(SmallOptions());
  // 25% failures: above clear (10%), below trip (50%) — level holds.
  for (int round = 0; round < 8; ++round) {
    breaker.RecordFailure();
    breaker.RecordSuccess();
    breaker.RecordSuccess();
    breaker.RecordSuccess();
  }
  EXPECT_EQ(breaker.level(), 0u);
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreakerTest, RejectLevelProbesPeriodically) {
  CircuitBreaker breaker(SmallOptions());
  for (int i = 0; i < 8; ++i) breaker.RecordFailure();
  ASSERT_EQ(breaker.level(), breaker.reject_level());
  // probe_interval = 3: every third admission is a half-open probe.
  std::vector<CircuitBreaker::Admission> admissions;
  for (int i = 0; i < 9; ++i) admissions.push_back(breaker.Admit());
  int probes = 0;
  for (size_t i = 0; i < admissions.size(); ++i) {
    if ((i + 1) % 3 == 0) {
      EXPECT_EQ(admissions[i], CircuitBreaker::Admission::kProbe) << i;
      ++probes;
    } else {
      EXPECT_EQ(admissions[i], CircuitBreaker::Admission::kReject) << i;
    }
  }
  EXPECT_EQ(probes, 3);
}

TEST(CircuitBreakerTest, ProbeSuccessesRecoverFromReject) {
  CircuitBreaker breaker(SmallOptions());
  for (int i = 0; i < 8; ++i) breaker.RecordFailure();
  ASSERT_EQ(breaker.level(), breaker.reject_level());
  // Simulate the service loop: probes get through and succeed.
  int served = 0;
  for (int i = 0; i < 64 && breaker.level() > 0; ++i) {
    if (breaker.Admit() != CircuitBreaker::Admission::kReject) {
      breaker.RecordSuccess();
      ++served;
    }
  }
  EXPECT_EQ(breaker.level(), 0u);
  // Recovery required genuine traffic, not rejections.
  EXPECT_GE(served, 8);
  EXPECT_EQ(breaker.recoveries(), 2u);
}

TEST(CircuitBreakerTest, CooldownPreventsSprintingTheLadder) {
  CircuitBreakerOptions options = SmallOptions();
  options.window = 8;
  options.min_samples = 2;
  options.cooldown = 6;
  CircuitBreaker breaker(options);
  // Two failures satisfy min_samples but not the cooldown; the breaker
  // waits for six outcomes after construction (and after each move).
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.level(), 0u);
  for (int i = 0; i < 4; ++i) breaker.RecordFailure();
  EXPECT_EQ(breaker.level(), 1u);
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreakerTest, WindowEvictsOldOutcomes) {
  CircuitBreakerOptions options = SmallOptions();
  options.cooldown = 100;  // never move levels; observe the window only
  CircuitBreaker breaker(options);
  for (int i = 0; i < 8; ++i) breaker.RecordFailure();
  EXPECT_DOUBLE_EQ(breaker.failure_rate(), 1.0);
  for (int i = 0; i < 8; ++i) breaker.RecordSuccess();
  EXPECT_DOUBLE_EQ(breaker.failure_rate(), 0.0);
}

TEST(CircuitBreakerTest, DeterministicTrajectoryForAFixedSequence) {
  // The level trajectory is a pure function of the outcome sequence.
  auto run = [] {
    CircuitBreaker breaker(SmallOptions());
    std::vector<uint32_t> trajectory;
    for (int i = 0; i < 40; ++i) {
      if (i % 3 == 0) {
        breaker.RecordSuccess();
      } else {
        breaker.RecordFailure();
      }
      trajectory.push_back(breaker.level());
    }
    return trajectory;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace vbr
