// Unit tests for the deterministic fault-injection registry
// (common/fault_injection.h): Nth-crossing targeting, re-arming, recording
// mode, reset, and the mapping of fired faults onto governor exhaustion.
//
// The registry is process-global; every test resets it on entry and exit so
// suites can run in any order.

#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include "common/budget.h"

namespace vbr {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().Reset(); }
  void TearDown() override { FaultRegistry::Global().Reset(); }
};

TEST_F(FaultInjectionTest, NothingArmedNothingFires) {
  EXPECT_FALSE(FaultCheck("site.a").has_value());
  EXPECT_FALSE(FaultCheck("site.a").has_value());
  // Fast path: crossings are not even counted while inactive.
  EXPECT_EQ(FaultRegistry::Global().CrossingCount("site.a"), 0u);
}

TEST_F(FaultInjectionTest, FiresAtExactlyTheNthCrossing) {
  FaultRegistry::Global().Arm("site.a", FaultKind::kBudgetExhausted, 3);
  EXPECT_FALSE(FaultCheck("site.a").has_value());
  EXPECT_FALSE(FaultCheck("site.a").has_value());
  const auto fired = FaultCheck("site.a");
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(*fired, FaultKind::kBudgetExhausted);
  // One-shot: later crossings pass again.
  EXPECT_FALSE(FaultCheck("site.a").has_value());
  EXPECT_EQ(FaultRegistry::Global().CrossingCount("site.a"), 4u);
}

TEST_F(FaultInjectionTest, ArmIsRelativeToCurrentCount) {
  FaultRegistry::Global().Arm("site.a", FaultKind::kStageAbort, 1);
  ASSERT_TRUE(FaultCheck("site.a").has_value());
  // Re-arm after two more crossings: fires on the Nth crossing AFTER Arm.
  EXPECT_FALSE(FaultCheck("site.a").has_value());
  FaultRegistry::Global().Arm("site.a", FaultKind::kAllocFailure, 2);
  EXPECT_FALSE(FaultCheck("site.a").has_value());
  const auto fired = FaultCheck("site.a");
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(*fired, FaultKind::kAllocFailure);
}

TEST_F(FaultInjectionTest, SitesAreIndependent) {
  FaultRegistry::Global().Arm("site.a", FaultKind::kBudgetExhausted, 1);
  EXPECT_FALSE(FaultCheck("site.b").has_value());
  EXPECT_TRUE(FaultCheck("site.a").has_value());
}

TEST_F(FaultInjectionTest, DisarmCancels) {
  FaultRegistry::Global().Arm("site.a", FaultKind::kBudgetExhausted, 1);
  FaultRegistry::Global().Disarm("site.a");
  EXPECT_FALSE(FaultCheck("site.a").has_value());
}

TEST_F(FaultInjectionTest, RecordingDiscoversSites) {
  FaultRegistry::Global().EnableRecording(true);
  FaultCheck("corecover.minimize");
  FaultCheck("cq.homomorphism");
  FaultCheck("cq.homomorphism");
  const auto sites = FaultRegistry::Global().SeenSites();
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0], "corecover.minimize");
  EXPECT_EQ(sites[1], "cq.homomorphism");
  EXPECT_EQ(FaultRegistry::Global().CrossingCount("cq.homomorphism"), 2u);
}

TEST_F(FaultInjectionTest, ResetClearsEverything) {
  FaultRegistry::Global().EnableRecording(true);
  FaultRegistry::Global().Arm("site.a", FaultKind::kBudgetExhausted, 5);
  FaultCheck("site.a");
  FaultRegistry::Global().Reset();
  EXPECT_TRUE(FaultRegistry::Global().SeenSites().empty());
  EXPECT_EQ(FaultRegistry::Global().CrossingCount("site.a"), 0u);
  EXPECT_FALSE(FaultCheck("site.a").has_value());
}

// A fired fault surfaces as exhaustion on the active governor, with the
// fault kind mapped onto the matching budget kind.
TEST_F(FaultInjectionTest, FiredFaultLatchesGovernor) {
  struct Case {
    FaultKind fault;
    BudgetKind expected;
  };
  for (const Case c : {Case{FaultKind::kBudgetExhausted, BudgetKind::kWork},
                       Case{FaultKind::kAllocFailure, BudgetKind::kMemory},
                       Case{FaultKind::kStageAbort, BudgetKind::kInjected}}) {
    FaultRegistry::Global().Reset();
    FaultRegistry::Global().Arm("site.mapped", c.fault, 1);
    ResourceGovernor governor(ResourceLimits{});
    EXPECT_FALSE(governor.CheckPoint("site.mapped"));
    EXPECT_EQ(governor.kind(), c.expected);
    EXPECT_EQ(governor.exhaustion().site, "site.mapped");
  }
}

TEST_F(FaultInjectionTest, FiredFaultStopsKeepGoingToo) {
  FaultRegistry::Global().Arm("site.hot", FaultKind::kStageAbort, 2);
  ResourceGovernor governor(ResourceLimits{});
  EXPECT_TRUE(governor.KeepGoing("site.hot"));
  EXPECT_FALSE(governor.KeepGoing("site.hot"));
  EXPECT_EQ(governor.kind(), BudgetKind::kInjected);
}

TEST_F(FaultInjectionTest, FaultKindNames) {
  EXPECT_STREQ(FaultKindName(FaultKind::kBudgetExhausted), "budget_exhausted");
  EXPECT_STREQ(FaultKindName(FaultKind::kAllocFailure), "alloc_failure");
  EXPECT_STREQ(FaultKindName(FaultKind::kStageAbort), "stage_abort");
}

}  // namespace
}  // namespace vbr
