// Chaos soak: the wire path under seeded socket-fault injection.
//
// The chaos layer (net/chaos_socket.h) sits under both sides of every
// tracked connection — client and server fds alike — and injects short
// reads/writes, spurious EAGAIN, delayed flushes, mid-frame disconnects,
// post-accept resets, and connect failures, all replayable from a seed.
// These tests drive a real PlanServer over loopback through the resilient
// client and hold the line on the invariants chaos must never break:
//
//   - exact accounting: answered + lost == sent, duplicates == 0, for
//     every one of 100+ seeded fault schedules;
//   - byte identity: a plan that survives the chaotic transport is
//     byte-identical to the in-process reference plan for the same query;
//   - no leaked fds: the process's open-fd count is stable across a soak;
//   - torn-tail recovery: a request log torn mid-append (injected crash)
//     replays as an exact prefix, across rotated files, and the replayed
//     prefix plans byte-identically.
#include <dirent.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdlib>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "cq/rename.h"
#include "cq/substitution.h"
#include "engine/materialize.h"
#include "net/chaos_socket.h"
#include "net/frame.h"
#include "net/load_driver.h"
#include "net/resilient_client.h"
#include "planner/planner.h"
#include "planner/service.h"
#include "planner/snapshot.h"
#include "server/plan_server.h"
#include "workload/data_gen.h"
#include "workload/generator.h"

namespace vbr {
namespace {

using net::ChaosOptions;
using net::ChaosSocket;
using net::WireStatus;

// Chaos is process-global; never leave it on when a test exits early.
struct ChaosGuard {
  ~ChaosGuard() { ChaosSocket::Disable(); }
};

struct SoakFixture {
  Workload workload;
  Database view_db;
  std::unique_ptr<ViewPlanner> served_planner;
  std::unique_ptr<ViewPlanner> reference_planner;
  std::unique_ptr<PlanningService> served;
  std::unique_ptr<PlanningService> reference;
  std::unique_ptr<server::PlanServer> server;

  explicit SoakFixture(uint64_t seed,
                       std::shared_ptr<RequestLogWriter> request_log = {}) {
    WorkloadConfig wc;
    wc.shape = QueryShape::kStar;
    wc.num_query_subgoals = 3;
    wc.num_views = 5;
    wc.seed = seed;
    workload = GenerateWorkload(wc);
    DataConfig dc;
    dc.rows_per_relation = 12;
    dc.domain_size = 5;
    dc.seed = seed + 100;
    const Database base = GenerateBaseData(workload.query, workload.views, dc);
    view_db = MaterializeViews(workload.views, base);
    ViewPlanner::Options planner_options;
    planner_options.core_cover.num_threads = 1;
    served_planner = std::make_unique<ViewPlanner>(workload.views, view_db,
                                                   planner_options);
    reference_planner = std::make_unique<ViewPlanner>(workload.views, view_db,
                                                      planner_options);
    PlanningService::Options service_options;
    service_options.num_workers = 2;
    service_options.request_log = std::move(request_log);
    served = std::make_unique<PlanningService>(served_planner.get(),
                                               service_options);
    PlanningService::Options reference_options;
    reference_options.num_workers = 2;
    reference = std::make_unique<PlanningService>(reference_planner.get(),
                                                  reference_options);
    server = std::make_unique<server::PlanServer>(served.get(),
                                                  server::PlanServerOptions{});
    std::string error;
    if (!server->Start(&error)) {
      ADD_FAILURE() << "server start failed: " << error;
    }
  }

  ~SoakFixture() {
    server->Stop();
    served->Shutdown();
    reference->Shutdown();
  }
};

size_t OpenFdCount() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  size_t n = 0;
  while (::readdir(dir) != nullptr) ++n;
  ::closedir(dir);
  return n;  // includes ".", "..", and the opendir fd itself — constant bias
}

// Waits until the server has reaped every connection the last run left
// behind (close events are processed asynchronously by the IO thread).
void WaitForQuiescence(server::PlanServer& server) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (server.stats().active_connections == 0) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ADD_FAILURE() << "server never quiesced (leaked connections)";
}

// The headline soak: 100 distinct fault schedules, each a short resilient
// run over the chaotic transport.  Every run must account exactly —
// received + lost == sent and zero duplicates — no matter which faults
// the seed picked.
TEST(ChaosSoakTest, HundredSeededSchedulesAccountExactly) {
  SoakFixture fx(31);
  ChaosGuard guard;

  size_t total_lost = 0, total_received = 0;
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    ChaosSocket::Enable(ChaosOptions::Soak(seed));
    net::LoadDriverOptions load;
    load.port = fx.server->binary_port();
    load.connections = 2;
    load.total_requests = 10;
    load.queries.push_back(fx.workload.query.ToString());
    load.resilient = true;
    load.resilient_client.connect_timeout_ms = 2000;
    load.resilient_client.request_timeout_ms = 2000;
    net::LoadReport report;
    std::string error;
    const bool ok = net::RunLoad(load, &report, &error);
    ChaosSocket::Disable();
    ASSERT_TRUE(ok) << "seed " << seed << ": " << error;
    EXPECT_EQ(report.sent, load.total_requests) << "seed " << seed;
    EXPECT_EQ(report.received + report.lost, report.sent)
        << "seed " << seed << " lost accounting broke";
    EXPECT_EQ(report.duplicated, 0u) << "seed " << seed;
    EXPECT_EQ(report.decode_errors, 0u) << "seed " << seed;
    total_lost += report.lost;
    total_received += report.received;
  }
  // The resilient client should be riding out nearly everything the Soak
  // profile throws; a mostly-lost soak means retries are broken.
  EXPECT_GT(total_received, total_lost * 10);
  WaitForQuiescence(*fx.server);
}

// Byte identity under chaos: for several seeds, every answered request's
// rewriting/cost/status must equal the in-process reference — a retried
// or reconnected request must never come back subtly different.
TEST(ChaosSoakTest, SurvivingPlansAreByteIdenticalToReference) {
  SoakFixture fx(32);
  ChaosGuard guard;

  // Distinct renamed-apart variants so cache hits cannot mask drift.
  std::vector<ConjunctiveQuery> queries;
  for (size_t i = 0; i < 6; ++i) {
    Substitution renaming;
    queries.push_back(RenameVariablesApart(
        fx.workload.query, "c" + std::to_string(i), &renaming));
  }
  // Reference answers, computed once on the calm in-process path.
  std::vector<PlanningService::PlanResponse> expected;
  for (const ConjunctiveQuery& q : queries) {
    PlanningService::PlanRequest request;
    request.query = q;
    request.options.model = CostModel::kM2;
    expected.push_back(fx.reference->Submit(std::move(request)).get());
    ASSERT_EQ(expected.back().status, PlanningService::ServiceStatus::kOk);
    ASSERT_TRUE(expected.back().result.choice.has_value());
  }

  size_t answered = 0;
  uint64_t next_id = 1;
  for (uint64_t seed = 201; seed <= 212; ++seed) {
    ChaosSocket::Enable(ChaosOptions::Soak(seed));
    net::ResilientClientOptions copts;
    copts.port = fx.server->binary_port();
    copts.backoff_seed = seed;
    net::ResilientClient client(copts);
    for (size_t i = 0; i < queries.size(); ++i) {
      net::PlanRequestFrame request;
      request.request_id = next_id++;
      request.want_certificate = true;
      request.options.model = CostModel::kM2;
      request.query_text = queries[i].ToString();
      net::PlanResponseFrame response;
      std::string error;
      if (!client.Call(request, &response, &error)) continue;  // lost: fine
      ++answered;
      ASSERT_EQ(response.status, WireStatus::kOk)
          << "seed " << seed << ": " << response.error;
      EXPECT_EQ(response.rewriting,
                expected[i].result.choice->logical.ToString());
      EXPECT_EQ(response.certificate,
                expected[i].result.choice->certificate.ToString());
      EXPECT_EQ(response.cost, expected[i].result.choice->cost);
      EXPECT_EQ(response.plan_status,
                static_cast<uint8_t>(expected[i].result.status));
    }
    ChaosSocket::Disable();
  }
  // Losing every single request would vacuously pass the comparisons.
  EXPECT_GT(answered, 0u);
  WaitForQuiescence(*fx.server);
}

// No fd leaks: the open-fd count after a chaotic soak (injected
// disconnects, resets, reconnects) equals the count before it.
TEST(ChaosSoakTest, SoakLeaksNoFileDescriptors) {
  SoakFixture fx(33);
  ChaosGuard guard;

  auto run_one = [&](uint64_t seed) {
    ChaosSocket::Enable(ChaosOptions::Soak(seed));
    net::LoadDriverOptions load;
    load.port = fx.server->binary_port();
    load.connections = 2;
    load.total_requests = 8;
    load.queries.push_back(fx.workload.query.ToString());
    load.resilient = true;
    net::LoadReport report;
    std::string error;
    ASSERT_TRUE(net::RunLoad(load, &report, &error)) << error;
    ChaosSocket::Disable();
  };

  // Warm-up run so lazily-created fds (metrics, planner scratch) exist
  // before the baseline count is taken.
  run_one(1000);
  WaitForQuiescence(*fx.server);
  const size_t before = OpenFdCount();
  ASSERT_GT(before, 0u);
  for (uint64_t seed = 1001; seed <= 1016; ++seed) run_one(seed);
  WaitForQuiescence(*fx.server);
  EXPECT_EQ(OpenFdCount(), before) << "fd count drifted across the soak";
}

// Torn-tail recovery over the wire: requests stream through the server
// into a rotating request log; an injected fault tears the Nth append
// mid-frame (exactly what a crash leaves behind).  The rotated set must
// replay as the EXACT prefix of what was sent, and the replayed prefix
// must plan byte-identically on a fresh service.
TEST(ChaosSoakTest, TornRequestLogReplaysExactPrefixByteIdentically) {
  FaultRegistry::Global().Reset();
  char dir_template[] = "/tmp/vbr_chaos_log_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string log_path = std::string(dir_template) + "/requests.vbin";

  auto log = std::make_shared<RequestLogWriter>();
  RequestLogOptions log_options;
  log_options.max_bytes = 256;  // tiny: forces several rotations
  log_options.keep = 8;
  ASSERT_TRUE(log->Open(log_path, log_options).ok());

  constexpr size_t kTearAt = 10;  // the 10th append dies mid-frame
  FaultRegistry::Global().Arm("persist.request_log.append",
                              FaultKind::kStageAbort, kTearAt);

  std::vector<net::PlanResponseFrame> wire_responses;
  std::vector<ConjunctiveQuery> sent;
  {
    SoakFixture fx(34, log);
    std::vector<ConjunctiveQuery> queries;
    for (size_t i = 0; i < 14; ++i) {
      Substitution renaming;
      queries.push_back(RenameVariablesApart(
          fx.workload.query, "t" + std::to_string(i), &renaming));
    }
    net::ResilientClientOptions copts;
    copts.port = fx.server->binary_port();
    net::ResilientClient client(copts);
    for (size_t i = 0; i < queries.size(); ++i) {
      net::PlanRequestFrame request;
      request.request_id = i + 1;
      request.options.model = CostModel::kM2;
      request.query_text = queries[i].ToString();
      net::PlanResponseFrame response;
      std::string error;
      ASSERT_TRUE(client.Call(request, &response, &error)) << error;
      ASSERT_EQ(response.status, WireStatus::kOk) << response.error;
      wire_responses.push_back(response);
      sent.push_back(queries[i]);
    }
  }
  FaultRegistry::Global().Reset();
  EXPECT_EQ(log->records_written(), kTearAt - 1);
  EXPECT_GT(log->rotations(), 0u);
  EXPECT_FALSE(log->error().empty());  // the injected tear latched
  log->Close();

  // "Restart": read the rotated set back like vbr_cli --replay would.
  std::vector<RequestLogRecord> records;
  size_t truncated = 0;
  ASSERT_TRUE(ReadRequestLogSet(log_path, &records, &truncated).ok());
  EXPECT_GT(truncated, 0u);  // the torn half-frame was dropped, not parsed
  ASSERT_EQ(records.size(), kTearAt - 1);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].query.ToString(), sent[i].ToString())
        << "record " << i << " out of order or corrupted";
  }

  // Replay the prefix on a fresh stack: byte-identical plans.
  SoakFixture replay_fx(34);
  for (size_t i = 0; i < records.size(); ++i) {
    PlanningService::PlanRequest request;
    request.query = records[i].query;
    request.options = records[i].options;
    const auto response = replay_fx.reference->Submit(std::move(request)).get();
    ASSERT_EQ(response.status, PlanningService::ServiceStatus::kOk);
    ASSERT_TRUE(response.result.choice.has_value());
    EXPECT_EQ(response.result.choice->logical.ToString(),
              wire_responses[i].rewriting);
    EXPECT_EQ(response.result.choice->cost, wire_responses[i].cost);
  }

  // Best-effort cleanup of the temp dir (rotated siblings included).
  for (size_t k = 0; k <= log_options.keep; ++k) {
    const std::string p =
        k == 0 ? log_path : log_path + "." + std::to_string(k);
    std::remove(p.c_str());
  }
  ::rmdir(dir_template);
}

}  // namespace
}  // namespace vbr
