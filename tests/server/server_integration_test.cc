// PlanServer end to end: real sockets on loopback, concurrent connections,
// hostile clients.
//
// The headline property is BYTE IDENTITY: a plan served over the binary
// protocol must carry exactly the rewriting, certificate, cost, and status
// that an in-process PlanningService::Submit produces for the same query
// against an identically configured planner.  The server is a transport,
// not a second planner — any drift between the two paths is a bug, and
// this test is where it surfaces.
//
// The hostile-client tests cover the rest of the wire contract: slow
// clients dribbling one byte at a time, clients that disconnect while
// their request is still planning (the completion must be dropped, never
// crash or block the IO loop), garbage and oversized frames, and version
// skew.
#include "server/plan_server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "cq/rename.h"
#include "cq/substitution.h"
#include "engine/materialize.h"
#include "net/frame.h"
#include "net/load_driver.h"
#include "net/socket.h"
#include "planner/planner.h"
#include "planner/service.h"
#include "workload/data_gen.h"
#include "workload/generator.h"

namespace vbr {
namespace {

using net::DecodeStatus;
using net::WireStatus;

constexpr char kFaultSite[] = "corecover.view_tuples";

// Two identically configured planner+service stacks over one generated
// workload: `served` sits behind the PlanServer, `reference` is driven
// in-process.  Separate instances (not a shared planner) so the wire path
// cannot accidentally lean on state the in-process path created.
struct ServerFixture {
  Workload workload;
  Database view_db;
  std::unique_ptr<ViewPlanner> served_planner;
  std::unique_ptr<ViewPlanner> reference_planner;
  std::unique_ptr<PlanningService> served;
  std::unique_ptr<PlanningService> reference;
  std::unique_ptr<server::PlanServer> server;

  explicit ServerFixture(uint64_t seed, size_t workers = 2) {
    WorkloadConfig wc;
    wc.shape = QueryShape::kStar;
    wc.num_query_subgoals = 4;
    wc.num_views = 6;
    wc.seed = seed;
    workload = GenerateWorkload(wc);
    DataConfig dc;
    dc.rows_per_relation = 20;
    dc.domain_size = 6;
    dc.seed = seed + 100;
    const Database base = GenerateBaseData(workload.query, workload.views, dc);
    view_db = MaterializeViews(workload.views, base);
    ViewPlanner::Options planner_options;
    planner_options.core_cover.num_threads = 1;  // deterministic planning
    served_planner = std::make_unique<ViewPlanner>(workload.views, view_db,
                                                   planner_options);
    reference_planner = std::make_unique<ViewPlanner>(workload.views, view_db,
                                                      planner_options);
    PlanningService::Options service_options;
    service_options.num_workers = workers;
    served = std::make_unique<PlanningService>(served_planner.get(),
                                               service_options);
    reference = std::make_unique<PlanningService>(reference_planner.get(),
                                                  service_options);
    server = std::make_unique<server::PlanServer>(served.get(),
                                                  server::PlanServerOptions{});
    std::string error;
    if (!server->Start(&error)) {
      ADD_FAILURE() << "server start failed: " << error;
    }
  }

  ~ServerFixture() {
    server->Stop();
    served->Shutdown();
    reference->Shutdown();
  }
};

// Blocking single round trip over an already-open binary connection.
bool RoundTrip(int fd, const net::PlanRequestFrame& request,
               net::PlanResponseFrame* response, std::string* buffer) {
  std::string wire;
  EncodePlanRequest(request, &wire);
  if (!net::WriteAll(fd, wire.data(), wire.size())) return false;
  return [&] {
    char chunk[8192];
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      std::string_view payload;
      size_t consumed = 0;
      const DecodeStatus es = net::ExtractFrame(*buffer, net::kDefaultMaxPayload,
                                                &payload, &consumed);
      if (es == DecodeStatus::kOk) {
        const DecodeStatus ds = net::DecodePlanResponse(payload, response);
        buffer->erase(0, consumed);
        return ds == DecodeStatus::kOk;
      }
      if (es != DecodeStatus::kNeedMore) return false;
      const net::IoResult r = net::ReadSome(fd, chunk, sizeof(chunk));
      if (r.status == net::IoStatus::kOk) {
        buffer->append(chunk, r.n);
      } else if (r.status == net::IoStatus::kWouldBlock) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      } else {
        return false;
      }
    }
    return false;
  }();
}

TEST(PlanServerTest, WirePlansAreByteIdenticalToInProcessAcrossConnections) {
  ServerFixture fx(21);

  // 24 distinct (renamed-apart) query variants, split over 4 concurrent
  // connections; every variant is also planned in-process.
  constexpr size_t kConnections = 4;
  constexpr size_t kPerConnection = 6;
  std::vector<ConjunctiveQuery> queries;
  for (size_t i = 0; i < kConnections * kPerConnection; ++i) {
    Substitution renaming;
    // Lower-case prefix on purpose: these variables print as ?-escaped
    // names (lower-case identifiers read as constants by convention), so
    // the wire round trip exercises the escape path end to end.
    queries.push_back(RenameVariablesApart(
        fx.workload.query, "w" + std::to_string(i), &renaming));
  }

  std::vector<net::PlanResponseFrame> wire_responses(queries.size());
  // vector<char>, not vector<bool>: each client thread writes its own
  // slots, and vector<bool> would pack neighbouring slots into one word.
  std::vector<char> wire_ok(queries.size(), 0);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kConnections; ++c) {
    clients.emplace_back([&, c] {
      std::string error;
      net::OwnedFd fd =
          net::ConnectTcp("127.0.0.1", fx.server->binary_port(), &error);
      ASSERT_TRUE(fd.valid()) << error;
      std::string buffer;
      for (size_t k = 0; k < kPerConnection; ++k) {
        const size_t index = c * kPerConnection + k;
        net::PlanRequestFrame request;
        request.request_id = index;
        request.want_certificate = true;
        request.options.model = CostModel::kM2;
        request.query_text = queries[index].ToString();
        wire_ok[index] = RoundTrip(fd.get(), request,
                                   &wire_responses[index], &buffer);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(wire_ok[i]) << "wire round trip " << i << " failed";
    PlanningService::PlanRequest in_process;
    in_process.query = queries[i];
    in_process.options.model = CostModel::kM2;
    const auto expected = fx.reference->Submit(std::move(in_process)).get();

    const net::PlanResponseFrame& got = wire_responses[i];
    ASSERT_EQ(expected.status, PlanningService::ServiceStatus::kOk);
    ASSERT_EQ(got.status, WireStatus::kOk) << got.error;
    ASSERT_TRUE(expected.result.ok());
    ASSERT_TRUE(expected.result.choice.has_value());
    EXPECT_EQ(got.plan_status, static_cast<uint8_t>(expected.result.status));
    // Byte identity of the plan and its witness.
    EXPECT_EQ(got.rewriting, expected.result.choice->logical.ToString());
    EXPECT_EQ(got.certificate,
              expected.result.choice->certificate.ToString());
    EXPECT_EQ(got.cost, expected.result.choice->cost);
    EXPECT_EQ(got.request_id, i);
  }

  const auto stats = fx.server->stats();
  EXPECT_EQ(stats.frames_received, queries.size());
  EXPECT_EQ(stats.responses_sent, queries.size());
  EXPECT_EQ(stats.dropped_responses, 0u);
}

TEST(PlanServerTest, SlowClientDribblingBytesStillGetsItsPlan) {
  ServerFixture fx(22);
  std::string error;
  net::OwnedFd fd =
      net::ConnectTcp("127.0.0.1", fx.server->binary_port(), &error);
  ASSERT_TRUE(fd.valid()) << error;

  net::PlanRequestFrame request;
  request.request_id = 77;
  request.options.model = CostModel::kM2;
  request.query_text = fx.workload.query.ToString();
  std::string wire;
  EncodePlanRequest(request, &wire);

  // One byte at a time: the server must buffer partial frames across many
  // poll iterations without misparsing or timing the connection out.
  for (const char byte : wire) {
    ASSERT_TRUE(net::WriteAll(fd.get(), &byte, 1));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::string buffer;
  net::PlanResponseFrame got;
  net::PlanRequestFrame probe;  // complete second request, normal speed
  probe.request_id = 78;
  probe.options.model = CostModel::kM2;
  probe.query_text = fx.workload.query.ToString();

  // Read the slow request's response, then round-trip a normal one on the
  // same connection to prove the stream stayed in sync.
  {
    std::string empty_request_buffer;
    char chunk[8192];
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    bool decoded = false;
    while (!decoded && std::chrono::steady_clock::now() < deadline) {
      std::string_view payload;
      size_t consumed = 0;
      if (net::ExtractFrame(buffer, net::kDefaultMaxPayload, &payload,
                            &consumed) == DecodeStatus::kOk) {
        ASSERT_EQ(net::DecodePlanResponse(payload, &got), DecodeStatus::kOk);
        buffer.erase(0, consumed);
        decoded = true;
        break;
      }
      const net::IoResult r = net::ReadSome(fd.get(), chunk, sizeof(chunk));
      if (r.status == net::IoStatus::kOk) {
        buffer.append(chunk, r.n);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    ASSERT_TRUE(decoded);
  }
  EXPECT_EQ(got.request_id, 77u);
  EXPECT_EQ(got.status, WireStatus::kOk) << got.error;
  EXPECT_FALSE(got.rewriting.empty());

  net::PlanResponseFrame second;
  ASSERT_TRUE(RoundTrip(fd.get(), probe, &second, &buffer));
  EXPECT_EQ(second.request_id, 78u);
  EXPECT_EQ(second.status, WireStatus::kOk);
  EXPECT_EQ(second.rewriting, got.rewriting);
}

TEST(PlanServerTest, QueryHandleRoundTripAndUnknownHandle) {
  ServerFixture fx(23);
  std::string error;
  net::OwnedFd fd =
      net::ConnectTcp("127.0.0.1", fx.server->binary_port(), &error);
  ASSERT_TRUE(fd.valid()) << error;
  std::string buffer;

  const std::string text = fx.workload.query.ToString();
  net::PlanRequestFrame by_text;
  by_text.request_id = 1;
  by_text.query_text = text;
  net::PlanResponseFrame first;
  ASSERT_TRUE(RoundTrip(fd.get(), by_text, &first, &buffer));
  ASSERT_EQ(first.status, WireStatus::kOk) << first.error;
  EXPECT_EQ(first.query_handle, net::HashQueryText(text));

  // Resend by fingerprint only: same plan, no query text on the wire.
  net::PlanRequestFrame by_handle;
  by_handle.request_id = 2;
  by_handle.query_is_handle = true;
  by_handle.query_handle = first.query_handle;
  net::PlanResponseFrame second;
  ASSERT_TRUE(RoundTrip(fd.get(), by_handle, &second, &buffer));
  ASSERT_EQ(second.status, WireStatus::kOk) << second.error;
  EXPECT_EQ(second.rewriting, first.rewriting);
  EXPECT_TRUE(second.cache_hit);  // isomorphic resubmission hits the cache

  // A fingerprint the server never issued is answered, not dropped.
  net::PlanRequestFrame bogus;
  bogus.request_id = 3;
  bogus.query_is_handle = true;
  bogus.query_handle = first.query_handle ^ 0xFFFF;
  net::PlanResponseFrame third;
  ASSERT_TRUE(RoundTrip(fd.get(), bogus, &third, &buffer));
  EXPECT_EQ(third.status, WireStatus::kUnknownHandle);
  EXPECT_EQ(third.request_id, 3u);

  const auto stats = fx.server->stats();
  EXPECT_EQ(stats.handle_hits, 1u);
  EXPECT_EQ(stats.handle_misses, 1u);
}

TEST(PlanServerTest, BadFramesGetErrorResponsesAndStreamStaysInSync) {
  ServerFixture fx(24);
  std::string error;
  net::OwnedFd fd =
      net::ConnectTcp("127.0.0.1", fx.server->binary_port(), &error);
  ASSERT_TRUE(fd.valid()) << error;
  std::string buffer;

  // Unparseable query text: kBadRequest, connection stays usable.
  net::PlanRequestFrame bad_query;
  bad_query.request_id = 5;
  bad_query.query_text = "this is not datalog";
  net::PlanResponseFrame response;
  ASSERT_TRUE(RoundTrip(fd.get(), bad_query, &response, &buffer));
  EXPECT_EQ(response.status, WireStatus::kBadRequest);
  EXPECT_EQ(response.request_id, 5u);
  EXPECT_FALSE(response.error.empty());

  // Version-skewed frame: kUnsupportedVersion with the id echoed back.
  net::PlanRequestFrame skewed;
  skewed.request_id = 6;
  skewed.query_text = fx.workload.query.ToString();
  std::string wire;
  EncodePlanRequest(skewed, &wire);
  wire[4] = static_cast<char>(net::kProtocolVersion + 1);
  ASSERT_TRUE(net::WriteAll(fd.get(), wire.data(), wire.size()));
  {
    net::PlanRequestFrame good;
    good.request_id = 7;
    good.query_text = fx.workload.query.ToString();
    net::PlanResponseFrame skew_response;
    ASSERT_TRUE(RoundTrip(fd.get(), good, &skew_response, &buffer));
    // Responses arrive in order: first the skew error, then the good plan.
    EXPECT_EQ(skew_response.status, WireStatus::kUnsupportedVersion);
    EXPECT_EQ(skew_response.request_id, 6u);
    net::PlanResponseFrame good_response;
    char chunk[8192];
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    bool decoded = false;
    while (!decoded && std::chrono::steady_clock::now() < deadline) {
      std::string_view payload;
      size_t consumed = 0;
      if (net::ExtractFrame(buffer, net::kDefaultMaxPayload, &payload,
                            &consumed) == DecodeStatus::kOk) {
        ASSERT_EQ(net::DecodePlanResponse(payload, &good_response),
                  DecodeStatus::kOk);
        buffer.erase(0, consumed);
        decoded = true;
        break;
      }
      const net::IoResult r = net::ReadSome(fd.get(), chunk, sizeof(chunk));
      if (r.status == net::IoStatus::kOk) {
        buffer.append(chunk, r.n);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    ASSERT_TRUE(decoded);
    EXPECT_EQ(good_response.status, WireStatus::kOk);
    EXPECT_EQ(good_response.request_id, 7u);
  }

  // An oversized length prefix kills the connection (unrecoverable).
  const uint32_t huge = net::kDefaultMaxPayload + 1;
  ASSERT_TRUE(net::WriteAll(fd.get(), &huge, sizeof(huge)));
  char scratch[64];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool closed = false;
  while (std::chrono::steady_clock::now() < deadline) {
    const net::IoResult r = net::ReadSome(fd.get(), scratch, sizeof(scratch));
    if (r.status == net::IoStatus::kEof || r.status == net::IoStatus::kError) {
      closed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(closed);
  EXPECT_GE(fx.server->stats().bad_frames, 2u);
}

// A client that vanishes while its request is still being planned: the
// completion must be counted as dropped, and the server must keep serving
// other connections.
TEST(PlanServerTest, DisconnectMidPlanDropsTheResponseAndNothingElse) {
  FaultRegistry::Global().Reset();

  WorkloadConfig wc;
  wc.shape = QueryShape::kStar;
  wc.num_query_subgoals = 4;
  wc.num_views = 6;
  wc.seed = 31;
  Workload workload = GenerateWorkload(wc);
  DataConfig dc;
  dc.rows_per_relation = 20;
  dc.domain_size = 6;
  dc.seed = 131;
  const Database base = GenerateBaseData(workload.query, workload.views, dc);
  ViewPlanner::Options planner_options;
  planner_options.core_cover.num_threads = 1;
  planner_options.enable_minicon_fallback = false;
  ViewPlanner planner(workload.views,
                      MaterializeViews(workload.views, base),
                      planner_options);

  // One worker, parked inside the retry backoff of an injected fault while
  // it is planning the doomed connection's request.
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool open = false;
  PlanningService::Options service_options;
  service_options.num_workers = 1;
  service_options.retry.max_attempts = 2;
  service_options.budget.work_limit = uint64_t{1} << 40;
  service_options.sleep_ms = [&](double) {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return open; });
  };
  PlanningService service(&planner, service_options);
  server::PlanServer server(&service, server::PlanServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  FaultRegistry::Global().Arm(kFaultSite, FaultKind::kStageAbort, 1);
  {
    net::OwnedFd doomed =
        net::ConnectTcp("127.0.0.1", server.binary_port(), &error);
    ASSERT_TRUE(doomed.valid()) << error;
    net::PlanRequestFrame request;
    request.request_id = 99;
    request.options.model = CostModel::kM2;
    request.query_text = workload.query.ToString();
    std::string wire;
    EncodePlanRequest(request, &wire);
    ASSERT_TRUE(net::WriteAll(doomed.get(), wire.data(), wire.size()));
    // Wait until the worker is provably inside this request's retry sleep,
    // then vanish without reading the response.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }  // doomed connection closes here

  // Give the IO thread a moment to observe the hangup, then release the
  // worker so the plan completes into a missing connection.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    std::lock_guard<std::mutex> lock(mu);
    open = true;
  }
  cv.notify_all();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().dropped_responses == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.stats().dropped_responses, 1u);

  // The server is still fully functional for a fresh connection.
  net::OwnedFd fd = net::ConnectTcp("127.0.0.1", server.binary_port(), &error);
  ASSERT_TRUE(fd.valid()) << error;
  std::string buffer;
  net::PlanRequestFrame request;
  request.request_id = 100;
  request.options.model = CostModel::kM2;
  request.query_text = workload.query.ToString();
  net::PlanResponseFrame response;
  ASSERT_TRUE(RoundTrip(fd.get(), request, &response, &buffer));
  EXPECT_EQ(response.status, WireStatus::kOk) << response.error;

  server.Stop();
  service.Shutdown();
  FaultRegistry::Global().Reset();

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, stats.admitted + stats.rejected);
  EXPECT_EQ(stats.admitted, stats.completed + stats.shed + stats.failed);
}

TEST(PlanServerTest, LoadDriverFloodLosesNothing) {
  ServerFixture fx(25);
  net::LoadDriverOptions load;
  load.port = fx.server->binary_port();
  load.connections = 4;
  load.qps = 0;  // flood
  load.total_requests = 400;
  load.queries = {fx.workload.query.ToString()};
  load.request.model = CostModel::kM2;
  net::LoadReport report;
  std::string error;
  ASSERT_TRUE(net::RunLoad(load, &report, &error)) << error;
  EXPECT_EQ(report.sent, 400u);
  EXPECT_EQ(report.lost, 0u);
  EXPECT_EQ(report.duplicated, 0u);
  EXPECT_EQ(report.decode_errors, 0u);
  // Every response is one of the service dispositions; under flood some
  // may be shed or rejected, but all are answered.
  EXPECT_EQ(report.received,
            report.by_status[0] + report.by_status[1] + report.by_status[2] +
                report.by_status[3]);

  // Accounting holds at the service once the driver has drained.
  const auto stats = fx.served->stats();
  EXPECT_EQ(stats.submitted, stats.admitted + stats.rejected);
  EXPECT_EQ(stats.admitted, stats.completed + stats.shed + stats.failed);
}

// HTTP "Connection: close" on /plan: the completion flush closes the
// connection from inside DrainCompletions, where the ownership maps hold
// the only references — regression test for a use-after-free in CloseConn.
TEST(PlanServerTest, HttpConnectionCloseAfterPlanFlushStaysClean) {
  ServerFixture fx(27);
  std::string error;
  const std::string body = "{\"query\":\"" + fx.workload.query.ToString() +
                           "\",\"options\":{\"model\":\"m2\"}}";
  const std::string request =
      "POST /plan HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
      "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body;
  for (int round = 0; round < 3; ++round) {
    net::OwnedFd fd =
        net::ConnectTcp("127.0.0.1", fx.server->http_port(), &error);
    ASSERT_TRUE(fd.valid()) << error;
    ASSERT_TRUE(net::WriteAll(fd.get(), request.data(), request.size()));
    // The server must deliver the full response, then close the socket.
    std::string response;
    char chunk[8192];
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    bool eof = false;
    while (!eof && std::chrono::steady_clock::now() < deadline) {
      const net::IoResult r = net::ReadSome(fd.get(), chunk, sizeof(chunk));
      if (r.status == net::IoStatus::kOk) {
        response.append(chunk, r.n);
      } else if (r.status == net::IoStatus::kWouldBlock) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      } else {
        eof = r.status == net::IoStatus::kEof;
        break;
      }
    }
    ASSERT_TRUE(eof) << "server did not close after flushing round " << round;
    EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
    EXPECT_NE(response.find("Connection: close"), std::string::npos);
    EXPECT_NE(response.find("\"service_status\":\"ok\""), std::string::npos);
  }
  EXPECT_EQ(fx.server->stats().active_connections, 0u);
}

TEST(PlanServerTest, HttpPlanAndHealthEndpointsAnswerOverRawSockets) {
  ServerFixture fx(26);
  std::string error;
  net::OwnedFd fd =
      net::ConnectTcp("127.0.0.1", fx.server->http_port(), &error);
  ASSERT_TRUE(fd.valid()) << error;

  auto http_round_trip = [&fd](const std::string& request_text,
                               std::string* response_out) {
    if (!net::WriteAll(fd.get(), request_text.data(), request_text.size())) {
      return false;
    }
    std::string response;
    char chunk[8192];
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      // A complete response has headers plus the declared body length.
      const size_t body_at = response.find("\r\n\r\n");
      if (body_at != std::string::npos) {
        const size_t content_at = response.find("Content-Length: ");
        if (content_at != std::string::npos && content_at < body_at) {
          const size_t len = static_cast<size_t>(
              std::atoll(response.c_str() + content_at + 16));
          if (response.size() >= body_at + 4 + len) {
            *response_out = response;
            return true;
          }
        }
      }
      const net::IoResult r = net::ReadSome(fd.get(), chunk, sizeof(chunk));
      if (r.status == net::IoStatus::kOk) {
        response.append(chunk, r.n);
      } else if (r.status == net::IoStatus::kWouldBlock) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      } else {
        return false;
      }
    }
    return false;
  };

  std::string response;
  ASSERT_TRUE(http_round_trip(
      "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n", &response));
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);

  const std::string body = "{\"query\":\"" + fx.workload.query.ToString() +
                           "\",\"options\":{\"model\":\"m2\"}}";
  response.clear();
  ASSERT_TRUE(http_round_trip(
      "POST /plan HTTP/1.1\r\nHost: t\r\nContent-Length: " +
          std::to_string(body.size()) + "\r\n\r\n" + body,
      &response));
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("\"service_status\":\"ok\""), std::string::npos);

  // Same connection (keep-alive), a malformed body answers 400.
  response.clear();
  ASSERT_TRUE(http_round_trip(
      "POST /plan HTTP/1.1\r\nHost: t\r\nContent-Length: 3\r\n\r\nxxx",
      &response));
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos);
}

}  // namespace
}  // namespace vbr
