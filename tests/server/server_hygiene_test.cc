// Connection hygiene: the PlanServer's defenses against clients that are
// slow, stuck, or simply too many — and its graceful-drain protocol.
//
// Each limit gets its own test: idle eviction (a connection doing nothing
// is reaped), the connection cap in both modes (accept-backpressure by
// default, accept-and-close with reject_over_capacity), slowloris
// eviction (a client dribbling a request byte-by-byte without completing
// one), write-stall eviction (a peer that stopped reading its responses),
// the write-stall histogram surfacing in /metricz, and Drain() flushing
// in-flight work before closing.
#include "server/plan_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/materialize.h"
#include "net/frame.h"
#include "net/socket.h"
#include "planner/planner.h"
#include "planner/service.h"
#include "workload/data_gen.h"
#include "workload/generator.h"

namespace vbr {
namespace {

using net::DecodeStatus;
using net::WireStatus;

struct HygieneFixture {
  Workload workload;
  Database view_db;
  std::unique_ptr<ViewPlanner> planner;
  std::unique_ptr<PlanningService> service;
  std::unique_ptr<server::PlanServer> server;

  explicit HygieneFixture(const server::PlanServerOptions& options,
                          uint64_t seed = 41) {
    WorkloadConfig wc;
    wc.shape = QueryShape::kStar;
    wc.num_query_subgoals = 3;
    wc.num_views = 5;
    wc.seed = seed;
    workload = GenerateWorkload(wc);
    DataConfig dc;
    dc.rows_per_relation = 12;
    dc.domain_size = 5;
    dc.seed = seed + 100;
    const Database base = GenerateBaseData(workload.query, workload.views, dc);
    view_db = MaterializeViews(workload.views, base);
    ViewPlanner::Options planner_options;
    planner_options.core_cover.num_threads = 1;
    planner = std::make_unique<ViewPlanner>(workload.views, view_db,
                                            planner_options);
    PlanningService::Options service_options;
    service_options.num_workers = 2;
    service = std::make_unique<PlanningService>(planner.get(),
                                                service_options);
    server = std::make_unique<server::PlanServer>(service.get(), options);
    std::string error;
    if (!server->Start(&error)) {
      ADD_FAILURE() << "server start failed: " << error;
    }
  }

  ~HygieneFixture() {
    server->Stop();
    service->Shutdown();
  }
};

// Reads until EOF or error; true iff the peer closed the connection
// within `timeout`.
bool ReadUntilEof(int fd, std::chrono::milliseconds timeout,
                  std::string* received = nullptr) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  char chunk[4096];
  while (std::chrono::steady_clock::now() < deadline) {
    const net::IoResult r = net::ReadSome(fd, chunk, sizeof(chunk));
    if (r.status == net::IoStatus::kOk) {
      if (received != nullptr) received->append(chunk, r.n);
      continue;
    }
    if (r.status == net::IoStatus::kWouldBlock) {
      pollfd pfd{fd, POLLIN, 0};
      ::poll(&pfd, 1, 20);
      continue;
    }
    return true;  // EOF or reset: the server cut us loose
  }
  return false;
}

// One blocking round trip; false on timeout/decode failure.
bool RoundTrip(int fd, const net::PlanRequestFrame& request,
               net::PlanResponseFrame* response,
               std::chrono::milliseconds timeout =
                   std::chrono::milliseconds(10000)) {
  std::string wire;
  EncodePlanRequest(request, &wire);
  if (!net::WriteAll(fd, wire.data(), wire.size())) return false;
  std::string buffer;
  char chunk[8192];
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    std::string_view payload;
    size_t consumed = 0;
    const DecodeStatus es = net::ExtractFrame(buffer, net::kDefaultMaxPayload,
                                              &payload, &consumed);
    if (es == DecodeStatus::kOk) {
      const bool ok =
          net::DecodePlanResponse(payload, response) == DecodeStatus::kOk;
      buffer.erase(0, consumed);
      return ok;
    }
    if (es != DecodeStatus::kNeedMore) return false;
    const net::IoResult r = net::ReadSome(fd, chunk, sizeof(chunk));
    if (r.status == net::IoStatus::kOk) {
      buffer.append(chunk, r.n);
    } else if (r.status == net::IoStatus::kWouldBlock) {
      pollfd pfd{fd, POLLIN, 0};
      ::poll(&pfd, 1, 20);
    } else {
      return false;
    }
  }
  return false;
}

TEST(ServerHygieneTest, IdleConnectionIsEvicted) {
  server::PlanServerOptions options;
  options.idle_timeout_ms = 150;
  HygieneFixture fx(options);

  std::string error;
  net::OwnedFd fd =
      net::ConnectTcp("127.0.0.1", fx.server->binary_port(), &error);
  ASSERT_TRUE(fd.valid()) << error;
  // An ACTIVE connection is untouched: a round trip resets the idle clock.
  net::PlanRequestFrame request;
  request.request_id = 1;
  request.options.model = CostModel::kM2;
  request.query_text = fx.workload.query.ToString();
  net::PlanResponseFrame response;
  ASSERT_TRUE(RoundTrip(fd.get(), request, &response));
  ASSERT_EQ(response.status, WireStatus::kOk) << response.error;

  // Now go silent; the server must evict within a few ticks.
  EXPECT_TRUE(ReadUntilEof(fd.get(), std::chrono::seconds(10)));
  EXPECT_GE(fx.server->stats().evicted_idle, 1u);
}

TEST(ServerHygieneTest, OverCapacityRejectsWhenConfigured) {
  server::PlanServerOptions options;
  options.max_connections = 1;
  options.reject_over_capacity = true;
  HygieneFixture fx(options);

  std::string error;
  net::OwnedFd first =
      net::ConnectTcp("127.0.0.1", fx.server->binary_port(), &error);
  ASSERT_TRUE(first.valid()) << error;
  net::PlanRequestFrame request;
  request.request_id = 1;
  request.options.model = CostModel::kM2;
  request.query_text = fx.workload.query.ToString();
  net::PlanResponseFrame response;
  ASSERT_TRUE(RoundTrip(first.get(), request, &response));  // registered

  net::OwnedFd second =
      net::ConnectTcp("127.0.0.1", fx.server->binary_port(), &error);
  ASSERT_TRUE(second.valid()) << error;  // handshake completes (backlog)
  // The server accepts and immediately closes: EOF, no response ever.
  EXPECT_TRUE(ReadUntilEof(second.get(), std::chrono::seconds(10)));
  EXPECT_GE(fx.server->stats().rejected_connections, 1u);
}

TEST(ServerHygieneTest, BackpressureParksExtraClientsUntilASlotFrees) {
  server::PlanServerOptions options;
  options.max_connections = 1;  // default mode: pause accepting at the cap
  HygieneFixture fx(options);

  std::string error;
  net::OwnedFd first =
      net::ConnectTcp("127.0.0.1", fx.server->binary_port(), &error);
  ASSERT_TRUE(first.valid()) << error;
  net::PlanRequestFrame request;
  request.request_id = 1;
  request.options.model = CostModel::kM2;
  request.query_text = fx.workload.query.ToString();
  net::PlanResponseFrame response;
  ASSERT_TRUE(RoundTrip(first.get(), request, &response));

  // The second client connects (kernel backlog) and sends its request,
  // but is not accepted — and so not answered — while the first holds
  // the only slot.
  net::OwnedFd second =
      net::ConnectTcp("127.0.0.1", fx.server->binary_port(), &error);
  ASSERT_TRUE(second.valid()) << error;
  std::string wire;
  net::PlanRequestFrame parked;
  parked.request_id = 2;
  parked.options.model = CostModel::kM2;
  parked.query_text = fx.workload.query.ToString();
  EncodePlanRequest(parked, &wire);
  ASSERT_TRUE(net::WriteAll(second.get(), wire.data(), wire.size()));

  net::PlanResponseFrame parked_response;
  std::string buffer;
  char chunk[4096];
  const auto hold = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(400);
  bool answered_early = false;
  while (std::chrono::steady_clock::now() < hold) {
    const net::IoResult r = net::ReadSome(second.get(), chunk, sizeof(chunk));
    if (r.status == net::IoStatus::kOk && r.n > 0) {
      answered_early = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(answered_early)
      << "server answered past the connection cap";

  // Free the slot: the parked client must now be accepted and answered.
  first.reset();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool answered = false;
  while (!answered && std::chrono::steady_clock::now() < deadline) {
    std::string_view payload;
    size_t consumed = 0;
    const DecodeStatus es = net::ExtractFrame(
        buffer, net::kDefaultMaxPayload, &payload, &consumed);
    if (es == DecodeStatus::kOk) {
      ASSERT_EQ(net::DecodePlanResponse(payload, &parked_response),
                DecodeStatus::kOk);
      buffer.erase(0, consumed);
      answered = true;
      break;
    }
    ASSERT_EQ(es, DecodeStatus::kNeedMore);
    const net::IoResult r = net::ReadSome(second.get(), chunk, sizeof(chunk));
    if (r.status == net::IoStatus::kOk) {
      buffer.append(chunk, r.n);
    } else if (r.status == net::IoStatus::kWouldBlock) {
      pollfd pfd{second.get(), POLLIN, 0};
      ::poll(&pfd, 1, 20);
    } else {
      break;
    }
  }
  ASSERT_TRUE(answered) << "parked client never got its plan after a slot "
                           "freed (accept never resumed)";
  EXPECT_EQ(parked_response.status, WireStatus::kOk);
  EXPECT_EQ(parked_response.request_id, 2u);
}

TEST(ServerHygieneTest, SlowlorisDribblerIsEvictedButPipelinerIsNot) {
  server::PlanServerOptions options;
  options.progress_timeout_ms = 200;
  HygieneFixture fx(options);

  std::string error;
  // A SLOW BUT COMPLETE client: three full round trips, each well inside
  // the progress window — must never be evicted.
  {
    net::OwnedFd fd =
        net::ConnectTcp("127.0.0.1", fx.server->binary_port(), &error);
    ASSERT_TRUE(fd.valid()) << error;
    for (uint64_t id = 1; id <= 3; ++id) {
      net::PlanRequestFrame request;
      request.request_id = id;
      request.options.model = CostModel::kM2;
      request.query_text = fx.workload.query.ToString();
      net::PlanResponseFrame response;
      ASSERT_TRUE(RoundTrip(fd.get(), request, &response));
      ASSERT_EQ(response.status, WireStatus::kOk);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    EXPECT_EQ(fx.server->stats().evicted_slowloris, 0u);
  }

  // The DRIBBLER: half a frame, then silence — evicted once the partial
  // request outlives the progress window.
  net::OwnedFd fd =
      net::ConnectTcp("127.0.0.1", fx.server->binary_port(), &error);
  ASSERT_TRUE(fd.valid()) << error;
  net::PlanRequestFrame request;
  request.request_id = 9;
  request.options.model = CostModel::kM2;
  request.query_text = fx.workload.query.ToString();
  std::string wire;
  EncodePlanRequest(request, &wire);
  ASSERT_TRUE(net::WriteAll(fd.get(), wire.data(), wire.size() / 2));
  EXPECT_TRUE(ReadUntilEof(fd.get(), std::chrono::seconds(10)));
  EXPECT_GE(fx.server->stats().evicted_slowloris, 1u);
}

// Connects with SO_RCVBUF pinned tiny BEFORE the handshake (fixes the
// advertised window and disables autotuning), so a non-reading peer jams
// the server's kernel send buffer after a few KB instead of megabytes.
net::OwnedFd ConnectWithTinyRcvbuf(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return net::OwnedFd();
  const int rcvbuf = 2048;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return net::OwnedFd();
  }
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  return net::OwnedFd(fd);
}

TEST(ServerHygieneTest, PeerThatStopsReadingIsEvictedForWriteStall) {
  server::PlanServerOptions options;
  options.write_stall_timeout_ms = 300;
  HygieneFixture fx(options);

  net::OwnedFd fd = ConnectWithTinyRcvbuf(fx.server->binary_port());
  ASSERT_TRUE(fd.valid());

  // Pipeline many certificate-bearing requests and never read a byte:
  // responses back up through the (deliberately tiny) kernel buffers into
  // the server's out buffer, which then stalls past the deadline.
  net::PlanRequestFrame request;
  request.want_certificate = true;
  request.options.model = CostModel::kM2;
  request.query_text = fx.workload.query.ToString();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  uint64_t id = 0;
  bool evicted = false;
  // Client-side outbox so a partial write never tears a frame: the kernel
  // takes what it wants, the remainder goes out first next round.
  std::string outbox;
  size_t outbox_at = 0;
  while (std::chrono::steady_clock::now() < deadline && !evicted) {
    if (outbox.size() - outbox_at < 4096) {
      outbox.erase(0, outbox_at);
      outbox_at = 0;
      for (int burst = 0; burst < 32; ++burst) {
        request.request_id = ++id;
        EncodePlanRequest(request, &outbox);
      }
    }
    const net::IoResult r = net::WriteSome(
        fd.get(), outbox.data() + outbox_at, outbox.size() - outbox_at);
    if (r.status == net::IoStatus::kOk) {
      outbox_at += r.n;
    } else if (r.status == net::IoStatus::kWouldBlock) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }  // kError: the eviction reset our send side — just poll stats below
    evicted = fx.server->stats().evicted_write_stall >= 1;
  }
  EXPECT_TRUE(evicted) << "server never evicted the non-reading peer";
}

TEST(ServerHygieneTest, WriteStallHistogramSurfacesInMetricz) {
  HygieneFixture fx(server::PlanServerOptions{});

  // One real round trip so the flush path has recorded at least once.
  std::string error;
  net::OwnedFd fd =
      net::ConnectTcp("127.0.0.1", fx.server->binary_port(), &error);
  ASSERT_TRUE(fd.valid()) << error;
  net::PlanRequestFrame request;
  request.request_id = 1;
  request.options.model = CostModel::kM2;
  request.query_text = fx.workload.query.ToString();
  net::PlanResponseFrame response;
  ASSERT_TRUE(RoundTrip(fd.get(), request, &response));

  net::OwnedFd http =
      net::ConnectTcp("127.0.0.1", fx.server->http_port(), &error);
  ASSERT_TRUE(http.valid()) << error;
  const std::string get =
      "GET /metricz?format=text HTTP/1.1\r\nHost: t\r\n"
      "Connection: close\r\n\r\n";
  ASSERT_TRUE(net::WriteAll(http.get(), get.data(), get.size()));
  std::string body;
  ASSERT_TRUE(ReadUntilEof(http.get(), std::chrono::seconds(10), &body));
  EXPECT_NE(body.find("server.write_stall_us"), std::string::npos)
      << "metricz body:\n" << body;
}

TEST(ServerHygieneTest, DrainFlushesInFlightWorkThenCloses) {
  HygieneFixture fx(server::PlanServerOptions{});

  std::string error;
  net::OwnedFd fd =
      net::ConnectTcp("127.0.0.1", fx.server->binary_port(), &error);
  ASSERT_TRUE(fd.valid()) << error;

  // Fire a request and IMMEDIATELY drain: the drain must wait for the
  // in-flight plan, flush its response, and only then close.
  net::PlanRequestFrame request;
  request.request_id = 5;
  request.want_certificate = true;
  request.options.model = CostModel::kM2;
  request.query_text = fx.workload.query.ToString();
  std::string wire;
  EncodePlanRequest(request, &wire);
  ASSERT_TRUE(net::WriteAll(fd.get(), wire.data(), wire.size()));

  std::thread drainer([&] { EXPECT_TRUE(fx.server->Drain(10000)); });

  // The response arrives complete, THEN the connection closes.
  std::string buffer;
  net::PlanResponseFrame response;
  bool got_response = false;
  char chunk[8192];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  bool eof = false;
  while (std::chrono::steady_clock::now() < deadline && !eof) {
    const net::IoResult r = net::ReadSome(fd.get(), chunk, sizeof(chunk));
    if (r.status == net::IoStatus::kOk) {
      buffer.append(chunk, r.n);
    } else if (r.status == net::IoStatus::kWouldBlock) {
      pollfd pfd{fd.get(), POLLIN, 0};
      ::poll(&pfd, 1, 20);
    } else {
      eof = true;
    }
    std::string_view payload;
    size_t consumed = 0;
    if (!got_response &&
        net::ExtractFrame(buffer, net::kDefaultMaxPayload, &payload,
                          &consumed) == DecodeStatus::kOk) {
      ASSERT_EQ(net::DecodePlanResponse(payload, &response),
                DecodeStatus::kOk);
      buffer.erase(0, consumed);
      got_response = true;
    }
  }
  drainer.join();
  ASSERT_TRUE(got_response)
      << "drain closed the connection before flushing the response";
  EXPECT_EQ(response.status, WireStatus::kOk) << response.error;
  EXPECT_EQ(response.request_id, 5u);
  EXPECT_TRUE(eof) << "drain never closed the drained connection";

  // After a clean drain, new connections are not accepted (listeners are
  // gone); Stop() in the fixture tears the rest down.
  EXPECT_EQ(fx.server->stats().active_connections, 0u);
}

}  // namespace
}  // namespace vbr
