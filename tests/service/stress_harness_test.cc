// Stress harness for the PlanningService (planner/service.h).
//
// Three kinds of pressure, separately and together:
//  * OVERLOAD — more submissions than the bounded queue and worker pool can
//    absorb, driving admission control (queue-full, unmeetable-deadline)
//    and the circuit breaker's brown-out ladder;
//  * INJECTED FAULTS — deterministic kStageAbort faults
//    (common/fault_injection.h) that surface as transient
//    BudgetKind::kInjected exhaustion, driving the retry/backoff path;
//  * CONCURRENT RECONFIGURATION — ReplaceViews racing in-flight requests,
//    validating the planner's RCU snapshots end to end.
//
// Every test closes with the service accounting invariants:
//
//   submitted == admitted + rejected
//   admitted  == completed + shed + failed
//
// and every future returned by Submit must be terminal exactly once —
// .get() hangs on a lost request and throws on a double-completed one, so
// the invariant is enforced by construction. Certificates of every kOk
// response are re-verified with the search-free checker.
//
// Determinism: the serial tests (retries, ladder walk) run one worker, a
// single-threaded planner, and a captured sleep hook, so fault crossings,
// backoff delays, and the breaker trajectory are exact. The multi-threaded
// overload tests assert invariants only, never specific interleavings.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/budget.h"
#include "common/fault_injection.h"
#include "common/trace.h"
#include "cq/parser.h"
#include "cq/rename.h"
#include "engine/materialize.h"
#include "planner/planner.h"
#include "planner/service.h"
#include "rewrite/certificate.h"
#include "workload/data_gen.h"
#include "workload/generator.h"

namespace vbr {
namespace {

using ServiceStatus = PlanningService::ServiceStatus;
using RejectReason = PlanningService::RejectReason;

// The KeepGoing site every cost model's pipeline crosses (view-tuple
// generation runs under CoreCover and CoreCoverStar alike).
constexpr char kFaultSite[] = "corecover.view_tuples";

struct ServiceFixture {
  Workload workload;
  Database view_db;
  std::unique_ptr<ViewPlanner> planner;

  explicit ServiceFixture(uint64_t seed, QueryShape shape = QueryShape::kStar,
                          bool minicon_fallback = false) {
    WorkloadConfig wc;
    wc.shape = shape;
    wc.num_query_subgoals = 4;
    wc.num_views = 6;
    wc.seed = seed;
    workload = GenerateWorkload(wc);
    DataConfig dc;
    dc.rows_per_relation = 20;
    dc.domain_size = 6;
    dc.seed = seed + 100;
    const Database base = GenerateBaseData(workload.query, workload.views, dc);
    view_db = MaterializeViews(workload.views, base);
    ViewPlanner::Options options;
    options.core_cover.num_threads = 1;
    // The harness drives exhaustion through the SERVICE's governor; the
    // MiniCon recovery ladder would turn injected aborts back into plans.
    options.enable_minicon_fallback = minicon_fallback;
    planner = std::make_unique<ViewPlanner>(workload.views, view_db, options);
  }
};

PlanningService::Options SerialServiceOptions() {
  PlanningService::Options options;
  options.num_workers = 1;
  options.max_queue = 8;
  // A (generous) budget so a governor is installed around every planner
  // call — injected faults only fire at governed check sites.
  options.budget.work_limit = uint64_t{1} << 40;
  return options;
}

void ExpectInvariants(const PlanningService::Stats& stats) {
  EXPECT_EQ(stats.submitted, stats.admitted + stats.rejected);
  EXPECT_EQ(stats.admitted, stats.completed + stats.shed + stats.failed);
  EXPECT_EQ(stats.rejected, stats.rejected_queue_full +
                                stats.rejected_deadline +
                                stats.rejected_overload +
                                stats.rejected_shutdown);
  EXPECT_EQ(stats.queue_depth, 0u);
}

class StressHarnessTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().Reset(); }
  void TearDown() override { FaultRegistry::Global().Reset(); }
};

// A gate the injectable sleep hook parks a worker thread on, so tests can
// hold the (single) worker mid-request while they shape the queue.
struct WorkerGate {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool open = false;

  void Park() {
    std::unique_lock<std::mutex> lock(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [this] { return open; });
  }
  void AwaitEntered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return entered; });
  }
  void Open() {
    std::lock_guard<std::mutex> lock(mu);
    open = true;
    cv.notify_all();
  }
};

TEST_F(StressHarnessTest, TransientFaultIsRetriedWithDeterministicBackoff) {
  ServiceFixture fx(7);
  PlanningService::Options options = SerialServiceOptions();
  options.retry.max_attempts = 3;
  options.retry_seed = 99;
  std::vector<double> delays;
  options.sleep_ms = [&delays](double ms) { delays.push_back(ms); };
  PlanningService service(fx.planner.get(), options);

  FaultRegistry::Global().Arm(kFaultSite, FaultKind::kStageAbort, 1);
  const auto response = service.Plan(fx.workload.query, CostModel::kM2);

  EXPECT_EQ(response.status, ServiceStatus::kOk);
  EXPECT_EQ(response.result.status, PlanStatus::kOk);
  EXPECT_EQ(response.attempts, 2u);
  ASSERT_EQ(delays.size(), 1u);
  // The schedule is the pure function BackoffPolicy::DelayMs — replayable
  // from (attempt, retry_seed + request id) alone. This was request id 0.
  EXPECT_DOUBLE_EQ(delays[0], options.retry.DelayMs(1, 99));

  const auto stats = service.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.completed, 1u);
  ExpectInvariants(stats);
}

TEST_F(StressHarnessTest, PersistentFaultFailsAfterRetryBudget) {
  ServiceFixture fx(7);
  PlanningService::Options options = SerialServiceOptions();
  options.retry.max_attempts = 3;
  std::vector<double> delays;
  // Re-arm between attempts: the fault registry fires each armed fault
  // once, so a PERSISTENT fault is modeled by re-arming from the backoff
  // hook (which runs on the worker, strictly between attempts).
  options.sleep_ms = [&delays](double ms) {
    delays.push_back(ms);
    FaultRegistry::Global().Arm(kFaultSite, FaultKind::kStageAbort, 1);
  };
  PlanningService service(fx.planner.get(), options);

  FaultRegistry::Global().Arm(kFaultSite, FaultKind::kStageAbort, 1);
  const auto response = service.Plan(fx.workload.query, CostModel::kM2);

  EXPECT_EQ(response.status, ServiceStatus::kFailed);
  EXPECT_EQ(response.attempts, 3u);
  EXPECT_EQ(delays.size(), 2u);
  EXPECT_NE(response.error.find("3 attempts"), std::string::npos)
      << response.error;

  const auto stats = service.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.completed, 0u);
  ExpectInvariants(stats);
}

TEST_F(StressHarnessTest, BreakerWalksTheLadderUpAndRecovers) {
  ServiceFixture fx(11);
  PlanningService::Options options = SerialServiceOptions();
  options.retry.max_attempts = 1;  // every injected fault is terminal
  options.breaker.window = 4;
  options.breaker.min_samples = 2;
  options.breaker.cooldown = 2;
  options.breaker.num_levels = 5;
  options.breaker.probe_interval = 2;
  PlanningService service(fx.planner.get(), options);

  // Failure phase: every request dies on an injected fault; the breaker
  // walks 0 -> 1 -> 2 -> 3 -> 4 (reject), two outcomes per rung.
  std::vector<uint32_t> levels_seen;
  bool saw_demotion = false;
  int failures = 0;
  for (int i = 0; i < 64 && service.service_level() < 4; ++i) {
    FaultRegistry::Global().Arm(kFaultSite, FaultKind::kStageAbort, 1);
    const auto response = service.Plan(fx.workload.query, CostModel::kM2);
    ASSERT_EQ(response.status, ServiceStatus::kFailed) << "i=" << i;
    levels_seen.push_back(response.service_level);
    saw_demotion = saw_demotion || response.model_demoted;
    ++failures;
  }
  EXPECT_EQ(service.service_level(), 4u);
  EXPECT_EQ(failures, 8);  // min_samples=cooldown=2 per rung, 4 rungs
  // Each brown-out rung actually served requests on the way up.
  EXPECT_EQ(levels_seen,
            (std::vector<uint32_t>{0, 0, 1, 1, 2, 2, 3, 3}));
  // Rung 3 is cached-or-M1-only; the failed requests cached nothing, so
  // the M2 requests planned there were demoted to M1.
  EXPECT_TRUE(saw_demotion);

  // Open phase: rejections with kOverloaded, except half-open probes
  // (which still fail while the fault persists, keeping the breaker open).
  int rejected = 0;
  int probe_failures = 0;
  for (int i = 0; i < 8; ++i) {
    FaultRegistry::Global().Arm(kFaultSite, FaultKind::kStageAbort, 1);
    const auto response = service.Plan(fx.workload.query, CostModel::kM2);
    if (response.status == ServiceStatus::kRejected) {
      EXPECT_EQ(response.reject_reason, RejectReason::kOverloaded);
      ++rejected;
      FaultRegistry::Global().Disarm(kFaultSite);
    } else {
      EXPECT_EQ(response.status, ServiceStatus::kFailed);
      ++probe_failures;
    }
  }
  EXPECT_EQ(service.service_level(), 4u);
  EXPECT_EQ(rejected, 4);        // probe_interval = 2: every other request
  EXPECT_EQ(probe_failures, 4);

  // Recovery phase: the fault clears; probe successes walk the breaker all
  // the way back down to full service.
  FaultRegistry::Global().Reset();
  int recovery_requests = 0;
  for (int i = 0; i < 200 && service.service_level() > 0; ++i) {
    const auto response = service.Plan(fx.workload.query, CostModel::kM2);
    if (response.status != ServiceStatus::kRejected) {
      ASSERT_EQ(response.status, ServiceStatus::kOk);
      ++recovery_requests;
    }
  }
  EXPECT_EQ(service.service_level(), 0u);
  EXPECT_GE(recovery_requests, 8);

  const auto stats = service.stats();
  EXPECT_GE(stats.breaker_trips, 4u);
  EXPECT_GE(stats.breaker_recoveries, 4u);
  EXPECT_GE(stats.probes, 4u);
  // The open phase rejected exactly 4 (asserted above); recovery rejects a
  // few more before the probes close the breaker.
  EXPECT_GE(stats.rejected_overload, 4u);
  EXPECT_GE(stats.model_demotions, 1u);
  ExpectInvariants(stats);

  // Back at full service, a fresh request plans normally (and now hits the
  // plan cache warmed during recovery).
  const auto healthy = service.Plan(fx.workload.query, CostModel::kM2);
  ASSERT_EQ(healthy.status, ServiceStatus::kOk);
  EXPECT_EQ(healthy.service_level, 0u);
  ASSERT_TRUE(healthy.result.ok());
  EXPECT_TRUE(
      VerifyCertificate(healthy.result.choice->certificate, fx.workload.views));
}

TEST_F(StressHarnessTest, QueueBoundRejectsAndShutdownShedsThePending) {
  ServiceFixture fx(13);
  PlanningService::Options options = SerialServiceOptions();
  options.max_queue = 3;
  options.retry.max_attempts = 2;
  WorkerGate gate;
  options.sleep_ms = [&gate](double) { gate.Park(); };
  PlanningService service(fx.planner.get(), options);

  // Park the single worker mid-request (inside the retry backoff).
  FaultRegistry::Global().Arm(kFaultSite, FaultKind::kStageAbort, 1);
  PlanningService::PlanRequest blocker;
  blocker.query = fx.workload.query;
  blocker.options.model = CostModel::kM2;
  auto blocker_future = service.Submit(std::move(blocker));
  gate.AwaitEntered();

  // Fill the queue to its bound; the next submission is rejected.
  std::vector<std::future<PlanningService::PlanResponse>> queued;
  for (size_t i = 0; i < options.max_queue; ++i) {
    PlanningService::PlanRequest request;
    request.query = fx.workload.query;
    queued.push_back(service.Submit(std::move(request)));
  }
  {
    PlanningService::PlanRequest overflow;
    overflow.query = fx.workload.query;
    const auto response = service.Submit(std::move(overflow)).get();
    EXPECT_EQ(response.status, ServiceStatus::kRejected);
    EXPECT_EQ(response.reject_reason, RejectReason::kQueueFull);
  }

  // Begin a shedding shutdown on a side thread, wait until it has closed
  // admission (new submissions bounce with kShuttingDown), then release the
  // worker: it finishes the blocker, sheds the backlog, and exits.
  std::thread shutdown_thread(
      [&service] { service.Shutdown(PlanningService::DrainMode::kShedPending); });
  for (;;) {
    PlanningService::PlanRequest probe_request;
    probe_request.query = fx.workload.query;
    const auto response = service.Submit(std::move(probe_request)).get();
    EXPECT_EQ(response.status, ServiceStatus::kRejected);
    if (response.reject_reason == RejectReason::kShuttingDown) break;
    EXPECT_EQ(response.reject_reason, RejectReason::kQueueFull);
  }
  gate.Open();
  shutdown_thread.join();

  // The in-flight blocker completed (its retry succeeded: the armed fault
  // fired on attempt 1); every queued request was shed, none lost.
  const auto blocker_response = blocker_future.get();
  EXPECT_EQ(blocker_response.status, ServiceStatus::kOk);
  EXPECT_EQ(blocker_response.attempts, 2u);
  for (auto& f : queued) {
    const auto response = f.get();
    EXPECT_EQ(response.status, ServiceStatus::kShed);
  }

  const auto stats = service.stats();
  EXPECT_EQ(stats.admitted, 1u + options.max_queue);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.shed, options.max_queue);
  EXPECT_GE(stats.rejected_queue_full, 1u);
  EXPECT_GE(stats.rejected_shutdown, 1u);
  ExpectInvariants(stats);
}

TEST_F(StressHarnessTest, DeadlinesGateAdmissionAndShedStaleQueueEntries) {
  ServiceFixture fx(17);
  PlanningService::Options options = SerialServiceOptions();
  options.retry.max_attempts = 2;
  // Pin the admission estimate so the unmeetable-deadline check is exact.
  options.assumed_service_ms = 50.0;
  WorkerGate gate;
  options.sleep_ms = [&gate](double) { gate.Park(); };
  PlanningService service(fx.planner.get(), options);

  // A deadline below one (estimated) service time is provably unmeetable.
  {
    PlanningService::PlanRequest request;
    request.query = fx.workload.query;
    request.options.deadline_ms = 10.0;
    const auto response = service.Submit(std::move(request)).get();
    EXPECT_EQ(response.status, ServiceStatus::kRejected);
    EXPECT_EQ(response.reject_reason, RejectReason::kDeadlineUnmeetable);
  }

  // Park the worker, then queue a request whose (meetable-at-admission)
  // deadline expires while it waits: it must be shed at dequeue, not
  // planned.
  FaultRegistry::Global().Arm(kFaultSite, FaultKind::kStageAbort, 1);
  PlanningService::PlanRequest blocker;
  blocker.query = fx.workload.query;
  auto blocker_future = service.Submit(std::move(blocker));
  gate.AwaitEntered();

  PlanningService::PlanRequest stale;
  stale.query = fx.workload.query;
  stale.options.deadline_ms = 60.0;  // one estimated service time: admitted
  auto stale_future = service.Submit(std::move(stale));

  // Let (more than) the deadline elapse while the request sits queued.
  std::this_thread::sleep_for(std::chrono::milliseconds(70));
  gate.Open();

  const auto blocker_response = blocker_future.get();
  EXPECT_EQ(blocker_response.status, ServiceStatus::kOk);
  const auto stale_response = stale_future.get();
  EXPECT_EQ(stale_response.status, ServiceStatus::kShed);
  EXPECT_NE(stale_response.error.find("deadline"), std::string::npos);

  service.Shutdown();
  const auto stats = service.stats();
  EXPECT_EQ(stats.rejected_deadline, 1u);
  EXPECT_EQ(stats.shed, 1u);
  ExpectInvariants(stats);
}

TEST_F(StressHarnessTest, TracingEmitsServiceSpansAtFullService) {
  ServiceFixture fx(19);
  PlanningService service(fx.planner.get(), SerialServiceOptions());

  MemoryTraceSink sink;
  PlanningService::PlanRequest request;
  request.query = fx.workload.query;
  request.options.model = CostModel::kM2;
  request.trace = &sink;
  const auto response = service.Submit(std::move(request)).get();
  ASSERT_EQ(response.status, ServiceStatus::kOk);
  EXPECT_EQ(response.service_level, 0u);

  bool saw_service_span = false;
  bool saw_plan_child = false;
  uint64_t service_span_id = 0;
  for (const TraceEvent& event : sink.spans()) {
    if (event.name == "service.request") {
      saw_service_span = true;
      service_span_id = event.id;
    }
  }
  for (const TraceEvent& event : sink.spans()) {
    if (event.name == "plan" && event.parent_id == service_span_id) {
      saw_plan_child = true;
    }
  }
  EXPECT_TRUE(saw_service_span);
  EXPECT_TRUE(saw_plan_child);
}

// Section-7-style mixed overload: chain and star queries (with renamed
// duplicates exercising the cache), injected faults, a few hopeless
// deadlines, and more submitters than workers. Asserts invariants and
// certificate validity — never specific interleavings.
TEST_F(StressHarnessTest, MixedOverloadKeepsAccountingExact) {
  ServiceFixture fx(23, QueryShape::kChain, /*minicon_fallback=*/true);

  // A query pool over the SAME view set: the fixture query, renamed
  // variants (cache hits), a star-shaped stranger (usually kNoRewriting),
  // and an unknown-predicate query.
  std::vector<ConjunctiveQuery> pool;
  pool.push_back(fx.workload.query);
  for (int i = 0; i < 3; ++i) {
    Substitution renaming;
    pool.push_back(RenameVariablesApart(fx.workload.query,
                                        "r" + std::to_string(i), &renaming));
  }
  WorkloadConfig stranger;
  stranger.shape = QueryShape::kStar;
  stranger.num_query_subgoals = 3;
  stranger.seed = 5;
  pool.push_back(GenerateWorkload(stranger).query);
  pool.push_back(MustParseQuery("q(X) :- nosuch(X,Y)"));

  PlanningService::Options options;
  options.num_workers = 2;
  options.max_queue = 4;  // small enough that submitters outrun it
  options.budget.work_limit = uint64_t{1} << 40;
  options.retry.max_attempts = 2;
  options.sleep_ms = [](double) {};  // retries without wall-clock waits
  PlanningService service(fx.planner.get(), options);

  constexpr int kSubmitters = 3;
  constexpr int kPerSubmitter = 40;
  std::vector<std::vector<std::future<PlanningService::PlanResponse>>>
      futures(kSubmitters);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        const int pick = (t * kPerSubmitter + i) % static_cast<int>(pool.size());
        PlanningService::PlanRequest request;
        request.query = pool[static_cast<size_t>(pick)];
        request.options.model = (i % 2 == 0) ? CostModel::kM1 : CostModel::kM2;
        if (i % 10 == 9) request.options.deadline_ms = 0.0001;  // hopeless deadline
        futures[static_cast<size_t>(t)].push_back(
            service.Submit(std::move(request)));
        if (i % 7 == 3) {
          // Sprinkle transient faults; crossings are nondeterministic under
          // concurrency, so only the invariants are asserted.
          FaultRegistry::Global().Arm(kFaultSite, FaultKind::kStageAbort, 2);
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  size_t ok = 0, rejected = 0, shed = 0, failed = 0;
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) {
      const auto response = f.get();  // hangs if any request were lost
      switch (response.status) {
        case ServiceStatus::kOk:
          ++ok;
          if (response.result.ok()) {
            EXPECT_TRUE(VerifyCertificate(response.result.choice->certificate,
                                          fx.workload.views));
          }
          break;
        case ServiceStatus::kRejected:
          ++rejected;
          break;
        case ServiceStatus::kShed:
          ++shed;
          break;
        case ServiceStatus::kFailed:
          ++failed;
          break;
      }
    }
  }
  service.Shutdown();

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted,
            static_cast<uint64_t>(kSubmitters * kPerSubmitter));
  EXPECT_EQ(stats.completed, ok);
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.shed, shed);
  EXPECT_EQ(stats.failed, failed);
  ExpectInvariants(stats);
  EXPECT_GE(ok, 1u);
}

// ReplaceViews races in-flight service traffic. The planner's RCU snapshots
// must keep every request on ONE view generation; certificates are verified
// against the SUPERSET view set (both generations' definitions), which is
// sound because a certificate only references the views its rewriting uses.
TEST_F(StressHarnessTest, ConcurrentReplaceViewsKeepsRequestsConsistent) {
  ServiceFixture fx(29, QueryShape::kChain, /*minicon_fallback=*/true);
  const ViewSet base_views = fx.workload.views;
  ViewSet super_views = base_views;
  for (const View& v : MustParseProgram("vextra(A,B) :- p0(A,B)")) {
    super_views.push_back(v);
  }
  Database super_db = fx.view_db;  // vextra's instance stays empty

  PlanningService::Options options;
  options.num_workers = 2;
  options.max_queue = 16;
  options.budget.work_limit = uint64_t{1} << 40;
  PlanningService service(fx.planner.get(), options);

  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    for (int i = 0; i < 25; ++i) {
      if (i % 2 == 0) {
        fx.planner->ReplaceViews(super_views, super_db);
      } else {
        fx.planner->ReplaceViews(base_views, fx.view_db);
      }
    }
    stop.store(true);
  });

  std::vector<std::future<PlanningService::PlanResponse>> futures;
  std::vector<std::thread> submitters;
  std::mutex futures_mu;
  for (int t = 0; t < 2; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < 40; ++i) {
        PlanningService::PlanRequest request;
        Substitution renaming;
        request.query = RenameVariablesApart(
            fx.workload.query, "s" + std::to_string(t * 100 + i), &renaming);
        request.options.model = CostModel::kM2;
        auto f = service.Submit(std::move(request));
        std::lock_guard<std::mutex> lock(futures_mu);
        futures.push_back(std::move(f));
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  swapper.join();

  size_t ok = 0;
  for (auto& f : futures) {
    const auto response = f.get();
    if (response.status == ServiceStatus::kOk && response.result.ok()) {
      ++ok;
      EXPECT_TRUE(VerifyCertificate(response.result.choice->certificate,
                                    super_views));
    }
  }
  service.Shutdown();
  EXPECT_GE(ok, 1u);
  ExpectInvariants(service.stats());

  // The planner is coherent after the dust settles: a fresh plan against
  // the final view set works and its epoch-keyed cache serves it back.
  const auto result = fx.planner->Plan(fx.workload.query, CostModel::kM2);
  ASSERT_TRUE(result.ok());
  const auto again = fx.planner->Plan(fx.workload.query, CostModel::kM2);
  EXPECT_TRUE(again.cache_hit);
}

// Destruction without an explicit Shutdown drains cleanly.
TEST_F(StressHarnessTest, DestructorDrainsOutstandingRequests) {
  ServiceFixture fx(31);
  std::vector<std::future<PlanningService::PlanResponse>> futures;
  {
    PlanningService::Options options = SerialServiceOptions();
    PlanningService service(fx.planner.get(), options);
    for (int i = 0; i < 5; ++i) {
      PlanningService::PlanRequest request;
      request.query = fx.workload.query;
      futures.push_back(service.Submit(std::move(request)));
    }
  }  // ~PlanningService == Shutdown(kDrain)
  for (auto& f : futures) {
    const auto response = f.get();
    EXPECT_EQ(response.status, ServiceStatus::kOk);
  }
}

}  // namespace
}  // namespace vbr
