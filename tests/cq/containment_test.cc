#include "cq/containment.h"

#include <gtest/gtest.h>

#include "common/budget.h"
#include "cq/parser.h"
#include "cq/term.h"

namespace vbr {
namespace {

TEST(ContainmentTest, IdenticalQueriesAreEquivalent) {
  const auto q1 = MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)");
  const auto q2 = MustParseQuery("q(A,B) :- r(A,C), s(C,B)");
  EXPECT_TRUE(AreEquivalent(q1, q2));
}

TEST(ContainmentTest, MoreRestrictiveIsContained) {
  // q1 additionally requires t(X); q1 ⊑ q2 but not conversely.
  const auto q1 = MustParseQuery("q(X) :- r(X,Y), t(X)");
  const auto q2 = MustParseQuery("q(X) :- r(X,Y)");
  EXPECT_TRUE(IsContainedIn(q1, q2));
  EXPECT_FALSE(IsContainedIn(q2, q1));
  EXPECT_TRUE(IsProperlyContainedIn(q1, q2));
  EXPECT_FALSE(IsProperlyContainedIn(q2, q1));
}

TEST(ContainmentTest, HeadArityMismatchIsNotContained) {
  const auto q1 = MustParseQuery("q(X) :- r(X,Y)");
  const auto q2 = MustParseQuery("q(X,Y) :- r(X,Y)");
  EXPECT_FALSE(IsContainedIn(q1, q2));
  EXPECT_FALSE(IsContainedIn(q2, q1));
}

TEST(ContainmentTest, HeadConstantsParticipate) {
  const auto q1 = MustParseQuery("q(a) :- r(a)");
  const auto q2 = MustParseQuery("q(X) :- r(X)");
  // q1's answer {(a)} ⊆ q2's answer on any database.
  EXPECT_TRUE(IsContainedIn(q1, q2));
  EXPECT_FALSE(IsContainedIn(q2, q1));
}

TEST(ContainmentTest, RepeatedHeadVariableMatters) {
  const auto q1 = MustParseQuery("q(X,X) :- r(X,X)");
  const auto q2 = MustParseQuery("q(X,Y) :- r(X,Y)");
  EXPECT_TRUE(IsContainedIn(q1, q2));
  EXPECT_FALSE(IsContainedIn(q2, q1));
}

TEST(ContainmentTest, PaperSection32Example) {
  // Q: q(X) :- e(X,X);  V body: e(A,A), e(A,B).
  // P1exp: q(X) :- e(X,X), e(X,B);  P2exp: q(X) :- e(X,X), e(X,X).
  const auto q = MustParseQuery("q(X) :- e(X,X)");
  const auto p1exp = MustParseQuery("q(X) :- e(X,X), e(X,B)");
  EXPECT_TRUE(AreEquivalent(q, p1exp));
}

TEST(ContainmentTest, ChainLengths) {
  const auto p2 = MustParseQuery("q(X,Y) :- e(X,Z), e(Z,Y)");
  const auto p3 = MustParseQuery("q(X,Y) :- e(X,A), e(A,B), e(B,Y)");
  EXPECT_FALSE(IsContainedIn(p2, p3));
  EXPECT_FALSE(IsContainedIn(p3, p2));
}

TEST(MinimizeTest, RemovesRedundantSubgoal) {
  // e(X,B) is redundant given e(X,X).
  const auto q = MustParseQuery("q(X) :- e(X,X), e(X,B)");
  const auto m = Minimize(q);
  EXPECT_EQ(m.num_subgoals(), 1u);
  EXPECT_TRUE(AreEquivalent(q, m));
  EXPECT_TRUE(IsMinimal(m));
}

TEST(MinimizeTest, MinimalQueryUnchanged) {
  const auto q =
      MustParseQuery("q1(S,C) :- car(M,anderson), loc(anderson,C), part(S,M,C)");
  EXPECT_TRUE(IsMinimal(q));
  EXPECT_EQ(Minimize(q).num_subgoals(), 3u);
}

TEST(MinimizeTest, CollapsesDuplicateSubgoals) {
  const auto q = MustParseQuery("q(X) :- r(X,Y), r(X,Y), r(X,Z)");
  const auto m = Minimize(q);
  EXPECT_EQ(m.num_subgoals(), 1u);
  EXPECT_TRUE(AreEquivalent(q, m));
}

TEST(MinimizeTest, PreservesDistinguishedStructure) {
  // Nothing removable: head uses X and Y through distinct subgoals.
  const auto q = MustParseQuery("q(X,Y) :- r(X,Z), r(Y,Z)");
  const auto m = Minimize(q);
  EXPECT_EQ(m.num_subgoals(), 2u);
}

TEST(MinimizeTest, TextbookCoreExample) {
  // Path of length 2 with an extra generic edge collapses onto the path only
  // if consistent with head; here e(A,B) folds onto e(X,Z).
  const auto q = MustParseQuery("q(X) :- e(X,Z), e(A,B)");
  const auto m = Minimize(q);
  EXPECT_EQ(m.num_subgoals(), 1u);
}

TEST(MinimizeTest, ConstantBlocksFolding) {
  const auto q = MustParseQuery("q(X) :- e(X,Z), e(X,c)");
  const auto m = Minimize(q);
  // e(X,Z) folds onto e(X,c); e(X,c) cannot be dropped.
  EXPECT_EQ(m.num_subgoals(), 1u);
  EXPECT_EQ(m.subgoal(0).arg(1), Const("c"));
}

TEST(MinimizeTest, ReportsIncompleteUnderTinyWorkBudget) {
  // A chain where every step also has a foldable twin with a fresh tail
  // variable — plenty of genuinely removable subgoals.
  const auto q = MustParseQuery(
      "q(X0,X4) :- e(X0,X1), e(X0,Y1), e(X1,X2), e(X1,Y2), e(X2,X3), "
      "e(X2,Y3), e(X3,X4), e(X3,Y4)");
  {
    ResourceLimits limits;
    limits.work_limit = 1;  // per-search node cap derives to 1: probes abort
    ResourceGovernor governor(limits);
    GovernorScope scope(&governor);
    bool complete = true;
    const auto m = Minimize(q, &complete);
    // The regression: an aborted probe used to be indistinguishable from a
    // proven "no mapping", silently yielding a non-minimal "core" labelled
    // complete. Exhaustion must be surfaced...
    EXPECT_FALSE(complete);
    // ...and the conservative direction is keeping subgoals, never removing
    // one without a complete containment proof.
    EXPECT_EQ(m.num_subgoals(), q.num_subgoals());
  }
  // Ungoverned, the same query minimizes fully and says so.
  bool complete = false;
  const auto m = Minimize(q, &complete);
  EXPECT_TRUE(complete);
  EXPECT_EQ(m.num_subgoals(), 4u);
  EXPECT_TRUE(AreEquivalent(q, m));
}

TEST(ContainmentSearchTest, ExhaustionIsDistinguishedFromNoMapping) {
  // Self-containment of a symmetric chain: a mapping certainly exists, but
  // under a 1-node cap the search cannot reach it.
  const auto q = MustParseQuery(
      "q(X0,X4) :- e(X0,X1), e(X1,X2), e(X2,X3), e(X3,X4)");
  const auto r = MustParseQuery(
      "q(A0,A4) :- e(A0,A1), e(A1,A2), e(A2,A3), e(A3,A4)");
  ResourceLimits limits;
  limits.work_limit = 1;
  ResourceGovernor governor(limits);
  GovernorScope scope(&governor);
  const ContainmentSearch search = FindContainmentMappingEx(q, r);
  EXPECT_FALSE(search.mapping.has_value());
  EXPECT_FALSE(search.complete);  // "don't know", not "no"
}

TEST(ContainmentMappingTest, MappingWitnessesContainment) {
  const auto q1 = MustParseQuery("q(X) :- r(X,Y), t(X)");
  const auto q2 = MustParseQuery("q(A) :- r(A,B)");
  // q1 ⊑ q2 via mapping from q2 into q1.
  auto h = FindContainmentMapping(q2, q1);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->Apply(Var("A")), Var("X"));
  EXPECT_EQ(h->Apply(Var("B")), Var("Y"));
  EXPECT_TRUE(IsContainmentMapping(q2, q1, *h));
}

TEST(ContainmentMappingTest, RejectsCrossPredicateCertificates) {
  // The SEARCH is head-predicate-agnostic by design (view-equivalence
  // grouping compares queries published under different head names)...
  const auto target = MustParseQuery("q(X) :- r(X,Y)");
  const auto source = MustParseQuery("p(A) :- r(A,B)");
  const auto h = FindContainmentMapping(source, target);
  ASSERT_TRUE(h.has_value());
  // ...but certificate VALIDATION must not accept a witness whose heads
  // name different answer relations: that is a forged certificate.
  EXPECT_FALSE(IsContainmentMapping(source, target, *h));
}

TEST(ContainmentMappingTest, RejectsMappingsThatMissTheHead) {
  // The identity maps the body fine but sends head q(X) to q(X) != q(Y).
  const auto source = MustParseQuery("q(X) :- r(X,Y)");
  const auto target = MustParseQuery("q(Y) :- r(X,Y)");
  EXPECT_FALSE(IsContainmentMapping(source, target, Substitution{}));
}

TEST(ContainmentMappingTest, RejectsMappingsWithUncoveredBodyAtoms) {
  const auto source = MustParseQuery("q(X) :- r(X,Y), t(Y)");
  const auto target = MustParseQuery("q(X) :- r(X,Y)");
  // Identity covers r(X,Y) and the head, but t(Y) has no image.
  EXPECT_FALSE(IsContainmentMapping(source, target, Substitution{}));
}

}  // namespace
}  // namespace vbr
