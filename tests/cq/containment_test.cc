#include "cq/containment.h"

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "cq/term.h"

namespace vbr {
namespace {

TEST(ContainmentTest, IdenticalQueriesAreEquivalent) {
  const auto q1 = MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)");
  const auto q2 = MustParseQuery("q(A,B) :- r(A,C), s(C,B)");
  EXPECT_TRUE(AreEquivalent(q1, q2));
}

TEST(ContainmentTest, MoreRestrictiveIsContained) {
  // q1 additionally requires t(X); q1 ⊑ q2 but not conversely.
  const auto q1 = MustParseQuery("q(X) :- r(X,Y), t(X)");
  const auto q2 = MustParseQuery("q(X) :- r(X,Y)");
  EXPECT_TRUE(IsContainedIn(q1, q2));
  EXPECT_FALSE(IsContainedIn(q2, q1));
  EXPECT_TRUE(IsProperlyContainedIn(q1, q2));
  EXPECT_FALSE(IsProperlyContainedIn(q2, q1));
}

TEST(ContainmentTest, HeadArityMismatchIsNotContained) {
  const auto q1 = MustParseQuery("q(X) :- r(X,Y)");
  const auto q2 = MustParseQuery("q(X,Y) :- r(X,Y)");
  EXPECT_FALSE(IsContainedIn(q1, q2));
  EXPECT_FALSE(IsContainedIn(q2, q1));
}

TEST(ContainmentTest, HeadConstantsParticipate) {
  const auto q1 = MustParseQuery("q(a) :- r(a)");
  const auto q2 = MustParseQuery("q(X) :- r(X)");
  // q1's answer {(a)} ⊆ q2's answer on any database.
  EXPECT_TRUE(IsContainedIn(q1, q2));
  EXPECT_FALSE(IsContainedIn(q2, q1));
}

TEST(ContainmentTest, RepeatedHeadVariableMatters) {
  const auto q1 = MustParseQuery("q(X,X) :- r(X,X)");
  const auto q2 = MustParseQuery("q(X,Y) :- r(X,Y)");
  EXPECT_TRUE(IsContainedIn(q1, q2));
  EXPECT_FALSE(IsContainedIn(q2, q1));
}

TEST(ContainmentTest, PaperSection32Example) {
  // Q: q(X) :- e(X,X);  V body: e(A,A), e(A,B).
  // P1exp: q(X) :- e(X,X), e(X,B);  P2exp: q(X) :- e(X,X), e(X,X).
  const auto q = MustParseQuery("q(X) :- e(X,X)");
  const auto p1exp = MustParseQuery("q(X) :- e(X,X), e(X,B)");
  EXPECT_TRUE(AreEquivalent(q, p1exp));
}

TEST(ContainmentTest, ChainLengths) {
  const auto p2 = MustParseQuery("q(X,Y) :- e(X,Z), e(Z,Y)");
  const auto p3 = MustParseQuery("q(X,Y) :- e(X,A), e(A,B), e(B,Y)");
  EXPECT_FALSE(IsContainedIn(p2, p3));
  EXPECT_FALSE(IsContainedIn(p3, p2));
}

TEST(MinimizeTest, RemovesRedundantSubgoal) {
  // e(X,B) is redundant given e(X,X).
  const auto q = MustParseQuery("q(X) :- e(X,X), e(X,B)");
  const auto m = Minimize(q);
  EXPECT_EQ(m.num_subgoals(), 1u);
  EXPECT_TRUE(AreEquivalent(q, m));
  EXPECT_TRUE(IsMinimal(m));
}

TEST(MinimizeTest, MinimalQueryUnchanged) {
  const auto q =
      MustParseQuery("q1(S,C) :- car(M,anderson), loc(anderson,C), part(S,M,C)");
  EXPECT_TRUE(IsMinimal(q));
  EXPECT_EQ(Minimize(q).num_subgoals(), 3u);
}

TEST(MinimizeTest, CollapsesDuplicateSubgoals) {
  const auto q = MustParseQuery("q(X) :- r(X,Y), r(X,Y), r(X,Z)");
  const auto m = Minimize(q);
  EXPECT_EQ(m.num_subgoals(), 1u);
  EXPECT_TRUE(AreEquivalent(q, m));
}

TEST(MinimizeTest, PreservesDistinguishedStructure) {
  // Nothing removable: head uses X and Y through distinct subgoals.
  const auto q = MustParseQuery("q(X,Y) :- r(X,Z), r(Y,Z)");
  const auto m = Minimize(q);
  EXPECT_EQ(m.num_subgoals(), 2u);
}

TEST(MinimizeTest, TextbookCoreExample) {
  // Path of length 2 with an extra generic edge collapses onto the path only
  // if consistent with head; here e(A,B) folds onto e(X,Z).
  const auto q = MustParseQuery("q(X) :- e(X,Z), e(A,B)");
  const auto m = Minimize(q);
  EXPECT_EQ(m.num_subgoals(), 1u);
}

TEST(MinimizeTest, ConstantBlocksFolding) {
  const auto q = MustParseQuery("q(X) :- e(X,Z), e(X,c)");
  const auto m = Minimize(q);
  // e(X,Z) folds onto e(X,c); e(X,c) cannot be dropped.
  EXPECT_EQ(m.num_subgoals(), 1u);
  EXPECT_EQ(m.subgoal(0).arg(1), Const("c"));
}

TEST(ContainmentMappingTest, MappingWitnessesContainment) {
  const auto q1 = MustParseQuery("q(X) :- r(X,Y), t(X)");
  const auto q2 = MustParseQuery("q(A) :- r(A,B)");
  // q1 ⊑ q2 via mapping from q2 into q1.
  auto h = FindContainmentMapping(q2, q1);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->Apply(Var("A")), Var("X"));
  EXPECT_EQ(h->Apply(Var("B")), Var("Y"));
}

}  // namespace
}  // namespace vbr
