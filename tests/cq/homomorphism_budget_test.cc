// Regression tests for how the homomorphism search charges the resource
// governor (satellite: the Matcher used to count nodes locally and charge
// the whole total only after Run() returned, so a long search could
// overshoot the shared work budget by its entire node count).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/budget.h"
#include "cq/homomorphism.h"
#include "cq/parser.h"

namespace vbr {
namespace {

// A deliberately explosive instance: a 6-edge chain matched into the
// complete graph (with self-loops) on four constants. Every walk of length
// six is a homomorphism, so the search expands thousands of nodes and
// crosses many 64-node charge boundaries.
std::vector<Atom> ChainBody() {
  return MustParseQuery(
             "h() :- e(X0,X1), e(X1,X2), e(X2,X3), e(X3,X4), e(X4,X5), "
             "e(X5,X6)")
      .body();
}

std::vector<Atom> CompleteGraphBody() {
  std::string rule = "h() :-";
  const char* nodes[] = {"a", "b", "c", "d"};
  bool first = true;
  for (const char* u : nodes) {
    for (const char* v : nodes) {
      rule += first ? " " : ", ";
      rule += std::string("e(") + u + "," + v + ")";
      first = false;
    }
  }
  return MustParseQuery(rule).body();
}

TEST(HomomorphismBudgetTest, WorkIsChargedInChunksDuringTheSearch) {
  const std::vector<Atom> from = ChainBody();
  const std::vector<Atom> to = CompleteGraphBody();
  ResourceLimits limits;
  limits.work_limit = uint64_t{1} << 40;  // never trips; cap derives huge
  ResourceGovernor governor(limits);
  GovernorScope scope(&governor);

  uint64_t previous = 0;
  bool charged_mid_search = false;
  size_t homomorphisms = 0;
  const bool complete = ForEachHomomorphism(
      from, to, {}, [&](const Substitution&) {
        const uint64_t used = governor.work_used();
        // Monotone, and only whole 64-node chunks land while the search is
        // still running (the sub-chunk remainder is charged by Run()).
        EXPECT_GE(used, previous);
        EXPECT_EQ(used % 64, 0u) << "mid-search charge is not chunked";
        if (used > 0) charged_mid_search = true;
        previous = used;
        ++homomorphisms;
        return true;
      });
  EXPECT_TRUE(complete);
  EXPECT_EQ(homomorphisms, 16384u);  // 4^7 walks of length 6
  // The regression: with charge-after-Run accounting every mid-search
  // observation reads 0 even though thousands of nodes were expanded.
  EXPECT_TRUE(charged_mid_search);
  // Run() settles the remainder, so the final total covers at least
  // everything observed plus the last partial chunk.
  EXPECT_GE(governor.work_used(), previous);
  EXPECT_GT(governor.work_used(), 0u);
}

TEST(HomomorphismBudgetTest, NodeCapBoundsWorkOvershootToOneChunk) {
  const std::vector<Atom> from = ChainBody();
  const std::vector<Atom> to = CompleteGraphBody();
  ResourceLimits limits;
  limits.work_limit = 100;  // search_node_cap derives to 100
  ResourceGovernor governor(limits);
  GovernorScope scope(&governor);

  const AtomIndex index(to);
  bool aborted = false;
  const bool complete = ForEachHomomorphism(
      from, index, {}, [](const Substitution&) { return true; }, 0, &aborted);
  EXPECT_TRUE(aborted);
  EXPECT_FALSE(complete);
  // The full enumeration needs tens of thousands of nodes; the pinned
  // contract is that the charged total lands within one 64-node chunk of
  // the cap instead of the whole runaway count.
  EXPECT_GT(governor.work_used(), 0u);
  EXPECT_LE(governor.work_used(), limits.work_limit + 64);
}

TEST(HomomorphismBudgetTest, AbortedSearchStillChargesExpandedNodes) {
  const std::vector<Atom> from = ChainBody();
  const std::vector<Atom> to = CompleteGraphBody();
  ResourceLimits limits;
  limits.work_limit = uint64_t{1} << 40;
  limits.search_node_cap = 200;  // explicit cap, work budget untouched
  ResourceGovernor governor(limits);
  GovernorScope scope(&governor);

  const AtomIndex index(to);
  bool aborted = false;
  ForEachHomomorphism(
      from, index, {}, [](const Substitution&) { return true; }, 0, &aborted);
  EXPECT_TRUE(aborted);
  // Everything the aborted search actually expanded is on the books: the
  // cap plus the node that tripped it, within one chunk of slack.
  EXPECT_GE(governor.work_used(), limits.search_node_cap);
  EXPECT_LE(governor.work_used(), limits.search_node_cap + 64);
}

}  // namespace
}  // namespace vbr
