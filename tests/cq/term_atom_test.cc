#include <gtest/gtest.h>

#include <unordered_set>

#include "cq/atom.h"
#include "cq/term.h"

namespace vbr {
namespace {

TEST(TermTest, KindsAreDistinguished) {
  const Term v = Var("X");
  const Term c = Const("x_lower");
  EXPECT_TRUE(v.is_variable());
  EXPECT_FALSE(v.is_constant());
  EXPECT_TRUE(c.is_constant());
  EXPECT_FALSE(c.is_variable());
}

TEST(TermTest, DefaultTermIsInvalid) {
  const Term t;
  EXPECT_FALSE(t.is_valid());
  EXPECT_FALSE(t.is_variable());
  EXPECT_FALSE(t.is_constant());
}

TEST(TermTest, SameNameDifferentKindAreUnequal) {
  const Term v = Term::Variable(SymbolTable::Global().Intern("n"));
  const Term c = Term::Constant(SymbolTable::Global().Intern("n"));
  EXPECT_NE(v, c);
  EXPECT_NE(TermHash()(v), TermHash()(c));
}

TEST(TermTest, EqualityAndInterning) {
  EXPECT_EQ(Var("X"), Var("X"));
  EXPECT_NE(Var("X"), Var("Y"));
  EXPECT_EQ(Const("a"), Const("a"));
}

TEST(TermTest, FreshVarsAreDistinct) {
  const Term a = FreshVar("F");
  const Term b = FreshVar("F");
  EXPECT_NE(a, b);
  EXPECT_TRUE(a.is_variable());
}

TEST(TermTest, ToStringUsesInternedName) {
  EXPECT_EQ(Var("Make").ToString(), "Make");
  EXPECT_EQ(Const("anderson").ToString(), "anderson");
}

TEST(AtomTest, BasicAccessors) {
  const Atom a("car", {Var("M"), Const("anderson")});
  EXPECT_EQ(a.predicate_name(), "car");
  EXPECT_EQ(a.arity(), 2u);
  EXPECT_EQ(a.arg(0), Var("M"));
  EXPECT_EQ(a.arg(1), Const("anderson"));
  EXPECT_EQ(a.ToString(), "car(M,anderson)");
}

TEST(AtomTest, EqualityIsStructural) {
  const Atom a("r", {Var("X"), Var("Y")});
  const Atom b("r", {Var("X"), Var("Y")});
  const Atom c("r", {Var("Y"), Var("X")});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(AtomHash()(a), AtomHash()(b));
}

TEST(AtomTest, Mentions) {
  const Atom a("r", {Var("X"), Const("c")});
  EXPECT_TRUE(a.Mentions(Var("X")));
  EXPECT_TRUE(a.Mentions(Const("c")));
  EXPECT_FALSE(a.Mentions(Var("Z")));
}

TEST(AtomTest, BuiltinDetection) {
  const Atom cmp("<=", {Var("X"), Var("Y")});
  const Atom rel("le", {Var("X"), Var("Y")});
  EXPECT_TRUE(cmp.is_builtin());
  EXPECT_FALSE(rel.is_builtin());
}

TEST(AtomTest, CollectVariablesDedupsInOrder) {
  const std::vector<Atom> atoms = {Atom("r", {Var("X"), Var("Z")}),
                                   Atom("s", {Var("Z"), Var("Y")}),
                                   Atom("t", {Var("X"), Const("c")})};
  const std::vector<Term> vars = CollectVariables(atoms);
  ASSERT_EQ(vars.size(), 3u);
  EXPECT_EQ(vars[0], Var("X"));
  EXPECT_EQ(vars[1], Var("Z"));
  EXPECT_EQ(vars[2], Var("Y"));
}

TEST(AtomTest, CollectTermsIncludesConstants) {
  const std::vector<Atom> atoms = {Atom("r", {Var("X"), Const("c")})};
  const std::vector<Term> terms = CollectTerms(atoms);
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[1], Const("c"));
}

TEST(AtomTest, ZeroArityAtom) {
  const Atom a("done", std::vector<Term>{});
  EXPECT_EQ(a.arity(), 0u);
  EXPECT_EQ(a.ToString(), "done()");
}

}  // namespace
}  // namespace vbr
