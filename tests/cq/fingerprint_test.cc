#include "cq/fingerprint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "cq/parser.h"
#include "cq/substitution.h"
#include "workload/generator.h"

namespace vbr {
namespace {

// A structure-preserving scramble: every variable renamed by a random
// permutation over fresh names, body subgoals shuffled. The result is
// isomorphic to the input by construction.
ConjunctiveQuery Scramble(const ConjunctiveQuery& q, std::mt19937& rng,
                          int round) {
  std::vector<Term> vars = q.Variables();
  std::vector<size_t> perm(vars.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::shuffle(perm.begin(), perm.end(), rng);
  Substitution renaming;
  for (size_t i = 0; i < vars.size(); ++i) {
    renaming.Bind(vars[i], Var("S" + std::to_string(round) + "_" +
                               std::to_string(perm[i])));
  }
  std::vector<Atom> body = renaming.Apply(q.body());
  std::shuffle(body.begin(), body.end(), rng);
  return ConjunctiveQuery(renaming.Apply(q.head()), std::move(body));
}

TEST(FingerprintTest, InvariantUnderRenamingAndReordering) {
  std::mt19937 rng(7);
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    WorkloadConfig wc;
    wc.shape = (seed % 2 == 0) ? QueryShape::kStar : QueryShape::kChain;
    wc.num_query_subgoals = 6;
    wc.num_nondistinguished_query_vars = seed % 3;
    wc.seed = seed;
    const ConjunctiveQuery query = GenerateWorkload(wc).query;
    const QueryFingerprint base = CanonicalFingerprint(query);
    EXPECT_TRUE(base.exact);
    for (int round = 0; round < 5; ++round) {
      const ConjunctiveQuery variant = Scramble(query, rng, round);
      const QueryFingerprint fp = CanonicalFingerprint(variant);
      EXPECT_EQ(fp.hash, base.hash) << query.ToString() << "\nvs\n"
                                    << variant.ToString();
      EXPECT_EQ(fp.canonical, base.canonical);
    }
  }
}

TEST(FingerprintTest, DistinctQueriesGetDistinctFingerprints) {
  const std::vector<ConjunctiveQuery> queries = {
      MustParseQuery("q(X) :- r(X)"),
      MustParseQuery("q(X) :- r(X), s(X)"),
      MustParseQuery("q(X) :- s(X)"),
      MustParseQuery("q(X,Y) :- r(X), s(Y)"),
      MustParseQuery("q(X) :- r(X,Y)"),
      MustParseQuery("q(X) :- r(X,X)"),
      MustParseQuery("q(X) :- r(X,a)"),
      MustParseQuery("q(X) :- r(X,b)"),
      MustParseQuery("q(X) :- r(X,Y), r(Y,Z)"),
      MustParseQuery("q(X) :- r(X,Y), r(Y,X)"),
      MustParseQuery("q(X,Y) :- r(X,Y)"),
      MustParseQuery("q(Y,X) :- r(X,Y)"),
  };
  std::set<std::string> canonicals;
  for (const auto& q : queries) {
    const QueryFingerprint fp = CanonicalFingerprint(q);
    EXPECT_TRUE(fp.exact) << q.ToString();
    EXPECT_TRUE(canonicals.insert(fp.canonical).second)
        << "collision on " << q.ToString();
  }
}

TEST(FingerprintTest, MinimizationCollapsesRedundantSubgoals) {
  // The second subgoal is subsumed (Y maps to X), so the core is r(X,X)…
  const auto redundant = MustParseQuery("q(X) :- r(X,X), r(X,Y)");
  const auto core = MustParseQuery("q(Z) :- r(Z,Z)");
  EXPECT_EQ(CanonicalFingerprint(redundant).canonical,
            CanonicalFingerprint(core).canonical);
}

TEST(FingerprintTest, CanonicalQueryMappingsRoundTrip) {
  const auto query = MustParseQuery("q(A,B) :- r(A,C), r(C,B), s(B)");
  const CanonicalQuery cq = CanonicalizeQuery(query);
  // to_canonical followed by from_canonical is the identity on the core.
  EXPECT_EQ(cq.from_canonical.Apply(cq.to_canonical.Apply(cq.minimized)),
            cq.minimized);
  // The canonical serialization reparses to a query isomorphic to the core.
  EXPECT_EQ(CanonicalFingerprint(cq.to_canonical.Apply(cq.minimized)).canonical,
            cq.fingerprint.canonical);
}

TEST(FingerprintTest, IsomorphismFindsWitness) {
  const auto a = MustParseQuery("q(X) :- e(X,Y), e(Y,Z), e(Z,X)");
  const auto b = MustParseQuery("q(U) :- e(W,U), e(U,V), e(V,W)");
  auto iso = FindIsomorphism(a, b);
  ASSERT_TRUE(iso.has_value());
  // The witness maps a's subgoals onto b's exactly (as sets).
  std::multiset<std::string> mapped, target;
  for (const Atom& atom : a.body()) mapped.insert(iso->Apply(atom).ToString());
  for (const Atom& atom : b.body()) target.insert(atom.ToString());
  EXPECT_EQ(mapped, target);
  EXPECT_EQ(iso->Apply(a.head()).ToString(), b.head().ToString());
}

TEST(FingerprintTest, NonIsomorphicPairsRejected) {
  EXPECT_FALSE(Isomorphic(MustParseQuery("q(X) :- e(X,Y), e(Y,X)"),
                          MustParseQuery("q(X) :- e(X,Y), e(X,Z)")));
  EXPECT_FALSE(Isomorphic(MustParseQuery("q(X) :- r(X,a)"),
                          MustParseQuery("q(X) :- r(X,b)")));
  EXPECT_FALSE(Isomorphic(MustParseQuery("q(X) :- r(X)"),
                          MustParseQuery("p(X) :- r(X)")));
  EXPECT_TRUE(Isomorphic(MustParseQuery("q(X) :- r(X,a)"),
                         MustParseQuery("q(P) :- r(P,a)")));
}

TEST(FingerprintTest, HighlySymmetricQueriesStayExact) {
  // A directed 6-cycle of existential variables: color refinement cannot
  // separate the cycle variables (all have one incoming and one outgoing
  // edge of the same color), so the labeling must branch — and every
  // rotation/renaming still has to land on the same canonical form. The
  // cycle is a core (its only endomorphisms are the rotations).
  const auto cycle = MustParseQuery(
      "q(X) :- r(X), e(A,B), e(B,C), e(C,D), e(D,E), e(E,F), e(F,A)");
  const auto rotated = MustParseQuery(
      "q(U) :- e(N,O), e(O,P), e(P,K), e(K,L), e(L,M), e(M,N), r(U)");
  const QueryFingerprint fa = CanonicalFingerprint(cycle);
  const QueryFingerprint fb = CanonicalFingerprint(rotated);
  EXPECT_TRUE(fa.exact);
  EXPECT_TRUE(fb.exact);
  EXPECT_EQ(fa.canonical, fb.canonical);
  EXPECT_FALSE(Isomorphic(
      cycle, MustParseQuery(
                 "q(X) :- r(X), e(A,B), e(B,C), e(C,A), e(D,E), e(E,F), "
                 "e(F,D)")));
}

}  // namespace
}  // namespace vbr
