#include "cq/query.h"

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "cq/term.h"

namespace vbr {
namespace {

ConjunctiveQuery CarLocPart() {
  return MustParseQuery(
      "q1(S,C) :- car(M,anderson), loc(anderson,C), part(S,M,C)");
}

TEST(QueryTest, AccessorsAndToString) {
  const ConjunctiveQuery q = CarLocPart();
  EXPECT_EQ(q.num_subgoals(), 3u);
  EXPECT_EQ(q.head().predicate_name(), "q1");
  EXPECT_EQ(q.subgoal(0).predicate_name(), "car");
  EXPECT_EQ(q.ToString(),
            "q1(S,C) :- car(M,anderson), loc(anderson,C), part(S,M,C)");
}

TEST(QueryTest, VariablesInFirstOccurrenceOrder) {
  const ConjunctiveQuery q = CarLocPart();
  const std::vector<Term> vars = q.Variables();
  ASSERT_EQ(vars.size(), 3u);
  EXPECT_EQ(vars[0], Var("M"));
  EXPECT_EQ(vars[1], Var("C"));
  EXPECT_EQ(vars[2], Var("S"));
}

TEST(QueryTest, DistinguishedAndExistentialVariables) {
  const ConjunctiveQuery q = CarLocPart();
  const std::vector<Term> dist = q.DistinguishedVariables();
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_EQ(dist[0], Var("S"));
  EXPECT_EQ(dist[1], Var("C"));
  const std::vector<Term> exist = q.ExistentialVariables();
  ASSERT_EQ(exist.size(), 1u);
  EXPECT_EQ(exist[0], Var("M"));
  EXPECT_TRUE(q.IsDistinguished(Var("S")));
  EXPECT_FALSE(q.IsDistinguished(Var("M")));
}

TEST(QueryTest, SafetyCheck) {
  EXPECT_TRUE(CarLocPart().IsSafe());
  const ConjunctiveQuery unsafe = MustParseQuery("q(X,Y) :- r(X,X)");
  EXPECT_FALSE(unsafe.IsSafe());
}

TEST(QueryTest, SafetyIgnoresBuiltins) {
  const ConjunctiveQuery q = MustParseQuery("q(X,Y) :- r(X,X), Y <= X");
  EXPECT_FALSE(q.IsSafe());
  EXPECT_TRUE(q.HasBuiltins());
}

TEST(QueryTest, WithoutSubgoal) {
  const ConjunctiveQuery q = CarLocPart();
  const ConjunctiveQuery r = q.WithoutSubgoal(1);
  ASSERT_EQ(r.num_subgoals(), 2u);
  EXPECT_EQ(r.subgoal(0).predicate_name(), "car");
  EXPECT_EQ(r.subgoal(1).predicate_name(), "part");
  EXPECT_EQ(q.num_subgoals(), 3u);  // Original untouched.
}

TEST(QueryTest, WithSubgoalsSelectsAndReorders) {
  const ConjunctiveQuery q = CarLocPart();
  const ConjunctiveQuery r = q.WithSubgoals({2, 0});
  ASSERT_EQ(r.num_subgoals(), 2u);
  EXPECT_EQ(r.subgoal(0).predicate_name(), "part");
  EXPECT_EQ(r.subgoal(1).predicate_name(), "car");
}

TEST(QueryTest, HeadConstantsAreAllowed) {
  const ConjunctiveQuery q = MustParseQuery("q(X,c) :- r(X)");
  EXPECT_TRUE(q.IsSafe());
  EXPECT_EQ(q.DistinguishedVariables().size(), 1u);
}

}  // namespace
}  // namespace vbr
