// Concurrency stress tests for the sharded SymbolTable: many threads
// interning overlapping name sets must agree on every id, Fresh must never
// hand out the same symbol twice, and NameOf must resolve every id a thread
// legitimately holds. Run under ThreadSanitizer via scripts/check_tsan.sh.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cq/symbol.h"

namespace vbr {
namespace {

constexpr size_t kThreads = 8;
constexpr size_t kSharedNames = 400;

TEST(SymbolConcurrencyTest, ConcurrentInternAgreesOnIds) {
  SymbolTable table;
  std::vector<std::unordered_map<std::string, Symbol>> per_thread(kThreads);
  {
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&table, &per_thread, t] {
        // Every thread interns ALL shared names, each in a different order:
        // the strides are coprime with kSharedNames, so each stride walks
        // the full residue ring.
        constexpr size_t kStrides[kThreads] = {1, 3, 7, 9, 11, 13, 17, 19};
        for (size_t i = 0; i < kSharedNames; ++i) {
          const size_t pick = (i * kStrides[t] + t) % kSharedNames;
          const std::string name = "shared_" + std::to_string(pick);
          const Symbol sym = table.Intern(name);
          ASSERT_EQ(table.NameOf(sym), name);
          ASSERT_EQ(table.Find(name), sym);
          per_thread[t][name] = sym;
        }
      });
    }
    for (std::thread& th : threads) th.join();
  }
  // All threads resolved every shared name to the same id.
  ASSERT_EQ(table.size(), kSharedNames);
  for (size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(per_thread[t], per_thread[0]);
  }
  // Ids are dense and round-trip.
  for (size_t id = 0; id < table.size(); ++id) {
    const Symbol sym = static_cast<Symbol>(id);
    EXPECT_EQ(table.Find(table.NameOf(sym)), sym);
  }
}

TEST(SymbolConcurrencyTest, ConcurrentFreshSymbolsAreDistinct) {
  SymbolTable table;
  // Pre-intern a few names Fresh must skip over.
  table.Intern("F$0");
  table.Intern("F$5");
  constexpr size_t kFreshPerThread = 200;
  std::vector<std::vector<Symbol>> per_thread(kThreads);
  {
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&table, &per_thread, t] {
        for (size_t i = 0; i < kFreshPerThread; ++i) {
          const Symbol sym = table.Fresh("F");
          ASSERT_GE(sym, 0);
          per_thread[t].push_back(sym);
        }
      });
    }
    for (std::thread& th : threads) th.join();
  }
  std::set<Symbol> all;
  std::set<std::string> names;
  for (const auto& symbols : per_thread) {
    for (Symbol sym : symbols) {
      EXPECT_TRUE(all.insert(sym).second) << "duplicate fresh symbol";
      EXPECT_TRUE(names.insert(table.NameOf(sym)).second)
          << "duplicate fresh name";
      EXPECT_NE(table.NameOf(sym), "F$0");
      EXPECT_NE(table.NameOf(sym), "F$5");
    }
  }
  EXPECT_EQ(all.size(), kThreads * kFreshPerThread);
}

TEST(SymbolConcurrencyTest, MixedInternFreshAndLookup) {
  SymbolTable table;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, t] {
      for (size_t i = 0; i < 300; ++i) {
        switch (i % 3) {
          case 0: {
            const std::string name = "mix_" + std::to_string(i % 50);
            const Symbol sym = table.Intern(name);
            ASSERT_EQ(table.NameOf(sym), name);
            break;
          }
          case 1: {
            const Symbol sym = table.Fresh("T" + std::to_string(t));
            ASSERT_EQ(table.Find(table.NameOf(sym)), sym);
            break;
          }
          default: {
            // size() is a published lower bound: every id below it must
            // resolve even while other threads keep appending.
            const size_t n = table.size();
            if (n > 0) {
              const Symbol sym = static_cast<Symbol>(n - 1);
              ASSERT_FALSE(table.NameOf(sym).empty());
            }
            break;
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
}

// Crossing a chunk boundary (the first chunk holds 1024 names) while many
// threads append must keep earlier names stable and resolvable.
TEST(SymbolConcurrencyTest, GrowthAcrossChunksKeepsNamesStable) {
  SymbolTable table;
  const Symbol early = table.Intern("early_bird");
  const std::string& early_name = table.NameOf(early);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, t] {
      for (size_t i = 0; i < 1200; ++i) {
        table.Intern("bulk_" + std::to_string(t) + "_" + std::to_string(i));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(table.size(), 1u + kThreads * 1200);
  // The reference taken before the growth is still valid (entries never
  // move) and still resolves.
  EXPECT_EQ(early_name, "early_bird");
  EXPECT_EQ(&table.NameOf(early), &early_name);
}

}  // namespace
}  // namespace vbr
