#include "cq/rename.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "cq/containment.h"
#include "cq/parser.h"
#include "cq/term.h"

namespace vbr {
namespace {

TEST(RenameTest, ResultSharesNoVariables) {
  const auto q = MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)");
  const auto r = RenameVariablesApart(q, "T");
  const std::vector<Term> q_vars = q.Variables();
  std::unordered_set<Term, TermHash> original(q_vars.begin(), q_vars.end());
  for (Term t : r.Variables()) {
    EXPECT_EQ(original.count(t), 0u) << t.ToString();
  }
}

TEST(RenameTest, PreservesEquivalence) {
  const auto q = MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)");
  const auto r = RenameVariablesApart(q, "T");
  EXPECT_TRUE(AreEquivalent(q, r));
}

TEST(RenameTest, PreservesConstantsAndStructure) {
  const auto q = MustParseQuery("q(S) :- car(M,anderson), part(S,M,C)");
  const auto r = RenameVariablesApart(q, "T");
  EXPECT_EQ(r.num_subgoals(), 2u);
  EXPECT_EQ(r.subgoal(0).arg(1), Const("anderson"));
  // Shared variable M stays shared after renaming.
  EXPECT_EQ(r.subgoal(0).arg(0), r.subgoal(1).arg(1));
}

TEST(RenameTest, MappingIsReturned) {
  const auto q = MustParseQuery("q(X) :- r(X,Y)");
  Substitution mapping;
  const auto r = RenameVariablesApart(q, "T", &mapping);
  EXPECT_EQ(mapping.size(), 2u);
  EXPECT_EQ(mapping.Apply(q), r);
}

TEST(RenameTest, TwoRenamesAreDisjoint) {
  const auto q = MustParseQuery("q(X) :- r(X,Y)");
  const auto r1 = RenameVariablesApart(q, "T");
  const auto r2 = RenameVariablesApart(q, "T");
  EXPECT_NE(r1.head().arg(0), r2.head().arg(0));
}

}  // namespace
}  // namespace vbr
