#include "cq/parser.h"

#include <gtest/gtest.h>

#include "cq/term.h"

namespace vbr {
namespace {

TEST(ParserTest, ParsesSimpleRule) {
  std::string error;
  auto q = ParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)", &error);
  ASSERT_TRUE(q.has_value()) << error;
  EXPECT_EQ(q->head().predicate_name(), "q");
  EXPECT_EQ(q->num_subgoals(), 2u);
  EXPECT_EQ(q->subgoal(1).arg(0), Var("Z"));
}

TEST(ParserTest, VariableVsConstantConvention) {
  auto q = ParseQuery("q(S) :- car(M, anderson), p(_tmp, 42)");
  ASSERT_TRUE(q.has_value());
  EXPECT_TRUE(q->subgoal(0).arg(0).is_variable());      // M
  EXPECT_TRUE(q->subgoal(0).arg(1).is_constant());      // anderson
  EXPECT_TRUE(q->subgoal(1).arg(0).is_variable());      // _tmp
  EXPECT_TRUE(q->subgoal(1).arg(1).is_constant());      // 42
}

TEST(ParserTest, TrailingPeriodOptional) {
  EXPECT_TRUE(ParseQuery("q(X) :- r(X).").has_value());
  EXPECT_TRUE(ParseQuery("q(X) :- r(X)").has_value());
}

TEST(ParserTest, ParsesInfixComparison) {
  auto q = ParseQuery("q(X) :- r(X,Y), X <= Y");
  ASSERT_TRUE(q.has_value());
  ASSERT_EQ(q->num_subgoals(), 2u);
  EXPECT_TRUE(q->subgoal(1).is_builtin());
  EXPECT_EQ(q->subgoal(1).predicate_name(), "<=");
}

TEST(ParserTest, ParsesProgramWithCommentsAndBlankLines) {
  const char* text = R"(
    % the query
    q1(S,C) :- car(M,anderson), loc(anderson,C), part(S,M,C).

    # views
    v1(M,D,C) :- car(M,D), loc(D,C)
    v2(S,M,C) :- part(S,M,C)
  )";
  std::string error;
  auto p = ParseProgram(text, &error);
  ASSERT_TRUE(p.has_value()) << error;
  ASSERT_EQ(p->size(), 3u);
  EXPECT_EQ((*p)[0].head().predicate_name(), "q1");
  EXPECT_EQ((*p)[2].head().predicate_name(), "v2");
}

TEST(ParserTest, MultiLineRuleWithCommaContinuation) {
  const char* text = R"(q(X,Y) :- a(X,Z),
                                 b(Z,Y).)";
  auto q = ParseQuery(text);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->num_subgoals(), 2u);
}

TEST(ParserTest, ReportsErrorWithLine) {
  std::string error;
  auto q = ParseQuery("q(X) : r(X)", &error);
  EXPECT_FALSE(q.has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(ParserTest, RejectsMissingParen) {
  std::string error;
  EXPECT_FALSE(ParseQuery("q(X :- r(X)", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ParserTest, RejectsBareAtomWithoutBody) {
  std::string error;
  EXPECT_FALSE(ParseQuery("q(X)", &error).has_value());
}

TEST(ParserTest, RoundTripsThroughToString) {
  const ConjunctiveQuery q =
      MustParseQuery("q1(S,C) :- car(M,anderson), loc(anderson,C)");
  const ConjunctiveQuery q2 = MustParseQuery(q.ToString());
  EXPECT_EQ(q, q2);
}

TEST(ParserTest, ZeroArityHead) {
  auto q = ParseQuery("q() :- r(X)");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->head().arity(), 0u);
}

}  // namespace
}  // namespace vbr
