#include "cq/parser.h"

#include <gtest/gtest.h>

#include "cq/rename.h"
#include "cq/term.h"

namespace vbr {
namespace {

TEST(ParserTest, ParsesSimpleRule) {
  std::string error;
  auto q = ParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)", &error);
  ASSERT_TRUE(q.has_value()) << error;
  EXPECT_EQ(q->head().predicate_name(), "q");
  EXPECT_EQ(q->num_subgoals(), 2u);
  EXPECT_EQ(q->subgoal(1).arg(0), Var("Z"));
}

TEST(ParserTest, VariableVsConstantConvention) {
  auto q = ParseQuery("q(S) :- car(M, anderson), p(_tmp, 42)");
  ASSERT_TRUE(q.has_value());
  EXPECT_TRUE(q->subgoal(0).arg(0).is_variable());      // M
  EXPECT_TRUE(q->subgoal(0).arg(1).is_constant());      // anderson
  EXPECT_TRUE(q->subgoal(1).arg(0).is_variable());      // _tmp
  EXPECT_TRUE(q->subgoal(1).arg(1).is_constant());      // 42
}

TEST(ParserTest, TrailingPeriodOptional) {
  EXPECT_TRUE(ParseQuery("q(X) :- r(X).").has_value());
  EXPECT_TRUE(ParseQuery("q(X) :- r(X)").has_value());
}

TEST(ParserTest, ParsesInfixComparison) {
  auto q = ParseQuery("q(X) :- r(X,Y), X <= Y");
  ASSERT_TRUE(q.has_value());
  ASSERT_EQ(q->num_subgoals(), 2u);
  EXPECT_TRUE(q->subgoal(1).is_builtin());
  EXPECT_EQ(q->subgoal(1).predicate_name(), "<=");
}

TEST(ParserTest, ParsesProgramWithCommentsAndBlankLines) {
  const char* text = R"(
    % the query
    q1(S,C) :- car(M,anderson), loc(anderson,C), part(S,M,C).

    # views
    v1(M,D,C) :- car(M,D), loc(D,C)
    v2(S,M,C) :- part(S,M,C)
  )";
  std::string error;
  auto p = ParseProgram(text, &error);
  ASSERT_TRUE(p.has_value()) << error;
  ASSERT_EQ(p->size(), 3u);
  EXPECT_EQ((*p)[0].head().predicate_name(), "q1");
  EXPECT_EQ((*p)[2].head().predicate_name(), "v2");
}

TEST(ParserTest, MultiLineRuleWithCommaContinuation) {
  const char* text = R"(q(X,Y) :- a(X,Z),
                                 b(Z,Y).)";
  auto q = ParseQuery(text);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->num_subgoals(), 2u);
}

TEST(ParserTest, ReportsErrorWithLine) {
  std::string error;
  auto q = ParseQuery("q(X) : r(X)", &error);
  EXPECT_FALSE(q.has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(ParserTest, RejectsMissingParen) {
  std::string error;
  EXPECT_FALSE(ParseQuery("q(X :- r(X)", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ParserTest, RejectsBareAtomWithoutBody) {
  std::string error;
  EXPECT_FALSE(ParseQuery("q(X)", &error).has_value());
}

TEST(ParserTest, RoundTripsThroughToString) {
  const ConjunctiveQuery q =
      MustParseQuery("q1(S,C) :- car(M,anderson), loc(anderson,C)");
  const ConjunctiveQuery q2 = MustParseQuery(q.ToString());
  EXPECT_EQ(q, q2);
}

TEST(ParserTest, ZeroArityHead) {
  auto q = ParseQuery("q() :- r(X)");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->head().arity(), 0u);
}

// Regression: a variable whose name starts with a lower-case letter used
// to print as a bare identifier, which re-parsed as a CONSTANT — the term
// kind was lost through ToString() -> Parse(). Such variables now print
// ?-marked and round-trip with their kind intact.
TEST(ParserTest, LowercaseNamedVariablesKeepTheirKind) {
  const ConjunctiveQuery q(Atom("q", {Var("x"), Var("y")}),
                           {Atom("e", {Var("x"), Var("y")})});
  const std::string printed = q.ToString();
  EXPECT_NE(printed.find("?x"), std::string::npos) << printed;
  const auto back = ParseQuery(printed);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, q);
  EXPECT_TRUE(back->head().arg(0).is_variable());
  EXPECT_TRUE(back->head().arg(1).is_variable());
}

TEST(ParserTest, ExplicitVariableMarker) {
  const auto q = ParseQuery("q(?x) :- e(?x, ?x).");
  ASSERT_TRUE(q.has_value());
  EXPECT_TRUE(q->head().arg(0).is_variable());
  // ?X and X are the SAME variable: the marker forces the kind, the name
  // is just the name.
  const auto mixed = ParseQuery("q(?X) :- e(?X, X).");
  ASSERT_TRUE(mixed.has_value());
  EXPECT_EQ(mixed->head().arg(0), mixed->body()[0].arg(1));
}

TEST(ParserTest, QuotedConstantsRoundTrip) {
  // Upper-case, spaces, embedded quotes: all constant spellings that need
  // the quoting path.
  const ConjunctiveQuery q(
      Atom("q", {Var("X")}),
      {Atom("e", {Var("X"), Const("UPPER")}),
       Atom("f", {Const("two words"), Const("has \"quotes\"")})});
  const std::string printed = q.ToString();
  const auto back = ParseQuery(printed);
  ASSERT_TRUE(back.has_value()) << printed;
  EXPECT_EQ(*back, q);
  EXPECT_TRUE(back->body()[0].arg(1).is_constant());
  EXPECT_TRUE(back->body()[1].arg(0).is_constant());
  // And the round trip is a fixpoint.
  EXPECT_EQ(back->ToString(), printed);
}

TEST(ParserTest, RenamedApartQueriesRoundTripRegardlessOfPrefixCase) {
  const ConjunctiveQuery q =
      MustParseQuery("q(X,Z) :- e(X,Y), e(Y,Z).");
  for (const char* prefix : {"w7", "Upper", "_u"}) {
    const ConjunctiveQuery renamed = RenameVariablesApart(q, prefix);
    const auto back = ParseQuery(renamed.ToString());
    ASSERT_TRUE(back.has_value()) << renamed.ToString();
    EXPECT_EQ(*back, renamed) << renamed.ToString();
  }
}

TEST(ParserTest, RejectsMalformedEscapes) {
  std::string error;
  EXPECT_FALSE(ParseQuery("q(X) :- e(X, \"unterminated).", &error)
                   .has_value());
  EXPECT_FALSE(ParseQuery("q(X) :- e(X, \"bad\\qescape\").", &error)
                   .has_value());
  EXPECT_FALSE(ParseQuery("q(?) :- e(X, X).", &error).has_value());
}

}  // namespace
}  // namespace vbr
