// Robustness: the parser must reject malformed input with an error message
// and never crash, for arbitrary token soup and for random mutations of
// valid programs.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "cq/parser.h"

namespace vbr {
namespace {

const char* const kFragments[] = {
    "q",  "(",  ")", ",",  ".",  ":-", "X",  "Y",   "abc", "42",
    "-7", "<=", "<", "!=", "_v", " ",  "\n", "%c\n", "$",  "e1",
};

std::string RandomSoup(Rng* rng, size_t length) {
  std::string s;
  for (size_t i = 0; i < length; ++i) {
    s += kFragments[rng->UniformInt(0, std::size(kFragments) - 1)];
  }
  return s;
}

TEST(ParserFuzzTest, TokenSoupNeverCrashes) {
  Rng rng(0xF00D);
  size_t parsed = 0;
  for (int i = 0; i < 3000; ++i) {
    const std::string text = RandomSoup(&rng, 1 + i % 25);
    std::string error;
    auto result = ParseProgram(text, &error);
    if (result.has_value()) {
      ++parsed;
    } else {
      EXPECT_FALSE(error.empty()) << "no diagnostic for: " << text;
    }
  }
  // Some soups happen to be valid programs; most are not.
  EXPECT_GT(parsed, 0u);
}

TEST(ParserFuzzTest, MutatedValidProgramNeverCrashes) {
  const std::string base =
      "q1(S,C) :- car(M,a), loc(a,C), part(S,M,C).\n"
      "v1(M,D,C) :- car(M,D), loc(D,C).\n";
  Rng rng(0xBEEF);
  for (int i = 0; i < 3000; ++i) {
    std::string text = base;
    // Apply 1-3 random single-character mutations.
    const int mutations = 1 + static_cast<int>(rng.UniformInt(0, 2));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos =
          static_cast<size_t>(rng.UniformInt(0, text.size() - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:
          text[pos] = static_cast<char>(rng.UniformInt(32, 126));
          break;
        case 1:
          text.erase(pos, 1);
          break;
        default:
          text.insert(pos, 1,
                      static_cast<char>(rng.UniformInt(32, 126)));
          break;
      }
    }
    std::string error;
    auto result = ParseProgram(text, &error);  // Must not crash.
    if (!result.has_value()) EXPECT_FALSE(error.empty());
  }
}

TEST(ParserFuzzTest, DeeplyNestedCommasAndNewlines) {
  std::string text = "q(X) :- r(X)";
  for (int i = 0; i < 200; ++i) {
    text += ",\n  r(X" + std::to_string(i) + ",X)";
  }
  auto result = ParseQuery(text);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->num_subgoals(), 201u);
}

TEST(ParserFuzzTest, VeryLongIdentifier) {
  const std::string name(5000, 'x');
  auto result = ParseQuery("q(X) :- " + name + "(X)");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->subgoal(0).predicate_name().size(), 5000u);
}

TEST(ParserFuzzTest, EmptyAndWhitespaceOnlyPrograms) {
  for (const char* text : {"", "   ", "\n\n\n", "% only a comment\n"}) {
    auto result = ParseProgram(text);
    ASSERT_TRUE(result.has_value()) << "'" << text << "'";
    EXPECT_TRUE(result->empty());
  }
}

}  // namespace
}  // namespace vbr
