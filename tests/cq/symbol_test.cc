#include "cq/symbol.h"

#include <gtest/gtest.h>

namespace vbr {
namespace {

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable table;
  const Symbol a = table.Intern("car");
  const Symbol b = table.Intern("loc");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, table.Intern("car"));
  EXPECT_EQ(b, table.Intern("loc"));
  EXPECT_EQ(table.size(), 2u);
}

TEST(SymbolTableTest, NameOfRoundTrips) {
  SymbolTable table;
  const Symbol a = table.Intern("anderson");
  EXPECT_EQ(table.NameOf(a), "anderson");
}

TEST(SymbolTableTest, FindDoesNotIntern) {
  SymbolTable table;
  EXPECT_EQ(table.Find("missing"), kInvalidSymbol);
  EXPECT_EQ(table.size(), 0u);
  const Symbol a = table.Intern("x");
  EXPECT_EQ(table.Find("x"), a);
}

TEST(SymbolTableTest, FreshNamesAreDistinct) {
  SymbolTable table;
  const Symbol a = table.Fresh("X");
  const Symbol b = table.Fresh("X");
  EXPECT_NE(a, b);
  EXPECT_NE(table.NameOf(a), table.NameOf(b));
}

TEST(SymbolTableTest, FreshAvoidsExistingNames) {
  SymbolTable table;
  table.Intern("V$0");
  const Symbol a = table.Fresh("V");
  EXPECT_NE(table.NameOf(a), "V$0");
}

TEST(SymbolTableTest, GlobalIsStable) {
  SymbolTable& g1 = SymbolTable::Global();
  SymbolTable& g2 = SymbolTable::Global();
  EXPECT_EQ(&g1, &g2);
  const Symbol a = g1.Intern("global_probe_symbol");
  EXPECT_EQ(g2.Find("global_probe_symbol"), a);
}

}  // namespace
}  // namespace vbr
