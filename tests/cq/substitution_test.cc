#include "cq/substitution.h"

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "cq/term.h"

namespace vbr {
namespace {

TEST(SubstitutionTest, BindAndLookup) {
  Substitution s;
  EXPECT_TRUE(s.Bind(Var("X"), Const("a")));
  ASSERT_TRUE(s.Lookup(Var("X")).has_value());
  EXPECT_EQ(*s.Lookup(Var("X")), Const("a"));
  EXPECT_FALSE(s.Lookup(Var("Y")).has_value());
}

TEST(SubstitutionTest, ConflictingBindFails) {
  Substitution s;
  EXPECT_TRUE(s.Bind(Var("X"), Const("a")));
  EXPECT_FALSE(s.Bind(Var("X"), Const("b")));
  EXPECT_EQ(*s.Lookup(Var("X")), Const("a"));  // Unchanged.
}

TEST(SubstitutionTest, RebindingSameTargetSucceeds) {
  Substitution s;
  EXPECT_TRUE(s.Bind(Var("X"), Var("Y")));
  EXPECT_TRUE(s.Bind(Var("X"), Var("Y")));
  EXPECT_EQ(s.size(), 1u);
}

TEST(SubstitutionTest, UnbindAllowsRebinding) {
  Substitution s;
  s.Bind(Var("X"), Const("a"));
  s.Unbind(Var("X"));
  EXPECT_TRUE(s.Bind(Var("X"), Const("b")));
}

TEST(SubstitutionTest, ApplyTermPassesThroughUnbound) {
  Substitution s;
  s.Bind(Var("X"), Var("Z"));
  EXPECT_EQ(s.Apply(Var("X")), Var("Z"));
  EXPECT_EQ(s.Apply(Var("Y")), Var("Y"));
  EXPECT_EQ(s.Apply(Const("c")), Const("c"));
}

TEST(SubstitutionTest, ApplyAtomAndQuery) {
  Substitution s;
  s.Bind(Var("M"), Var("M2"));
  s.Bind(Var("C"), Const("paris"));
  const ConjunctiveQuery q = MustParseQuery("q(C) :- car(M,D), loc(D,C)");
  const ConjunctiveQuery r = s.Apply(q);
  EXPECT_EQ(r.ToString(), "q(paris) :- car(M2,D), loc(D,paris)");
}

TEST(SubstitutionTest, InjectivityCheck) {
  Substitution s;
  s.Bind(Var("X"), Var("A"));
  s.Bind(Var("Y"), Var("B"));
  EXPECT_TRUE(s.IsInjective());
  s.Bind(Var("Z"), Var("A"));
  EXPECT_FALSE(s.IsInjective());
}

TEST(SubstitutionTest, ToStringIsSortedAndDeterministic) {
  Substitution s;
  s.Bind(Var("Zv"), Const("a"));
  s.Bind(Var("Av"), Const("b"));
  EXPECT_EQ(s.ToString(), "{Av -> b, Zv -> a}");
}

}  // namespace
}  // namespace vbr
