#include "cq/homomorphism.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cq/parser.h"
#include "cq/term.h"

namespace vbr {
namespace {

std::vector<Atom> Body(const std::string& rule) {
  return MustParseQuery("h() :- " + rule).body();
}

TEST(HomomorphismTest, FindsIdentityEmbedding) {
  const auto from = Body("r(X,Y)");
  const auto to = Body("r(X,Y), s(Y,Z)");
  auto h = FindHomomorphism(from, to);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->Apply(Var("X")), Var("X"));
}

TEST(HomomorphismTest, FailsOnMissingPredicate) {
  EXPECT_FALSE(FindHomomorphism(Body("t(X)"), Body("r(X,Y)")).has_value());
}

TEST(HomomorphismTest, ConstantsMustMatchExactly) {
  EXPECT_TRUE(
      FindHomomorphism(Body("r(X,a)"), Body("r(b,a)")).has_value());
  EXPECT_FALSE(
      FindHomomorphism(Body("r(X,a)"), Body("r(a,b)")).has_value());
}

TEST(HomomorphismTest, VariableCanCollapse) {
  // X and Y can both map to Z.
  auto h = FindHomomorphism(Body("r(X,Y)"), Body("r(Z,Z)"));
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->Apply(Var("X")), Var("Z"));
  EXPECT_EQ(h->Apply(Var("Y")), Var("Z"));
}

TEST(HomomorphismTest, RepeatedVariableConstrains) {
  // r(X,X) cannot map into r(A,B) with A != B.
  EXPECT_FALSE(FindHomomorphism(Body("r(X,X)"), Body("r(A,B)")).has_value());
  EXPECT_TRUE(FindHomomorphism(Body("r(X,X)"), Body("r(A,A)")).has_value());
}

TEST(HomomorphismTest, SeedIsRespected) {
  Substitution seed;
  seed.Bind(Var("X"), Var("B"));
  // With X pinned to B, r(X,Y) can only match r(B,C).
  auto h = FindHomomorphism(Body("r(X,Y)"), Body("r(A,B), r(B,C)"), seed);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->Apply(Var("Y")), Var("C"));

  Substitution bad_seed;
  bad_seed.Bind(Var("X"), Var("Z"));
  EXPECT_FALSE(
      FindHomomorphism(Body("r(X,Y)"), Body("r(A,B)"), bad_seed).has_value());
}

TEST(HomomorphismTest, ChainIntoTriangle) {
  // A length-2 path maps into a triangle.
  const auto from = Body("e(X,Y), e(Y,Z)");
  const auto to = Body("e(A,B), e(B,C), e(C,A)");
  EXPECT_TRUE(FindHomomorphism(from, to).has_value());
}

TEST(HomomorphismTest, TriangleIntoPathFails) {
  const auto from = Body("e(X,Y), e(Y,Z), e(Z,X)");
  const auto to = Body("e(A,B), e(B,C)");
  EXPECT_FALSE(FindHomomorphism(from, to).has_value());
}

TEST(HomomorphismTest, EnumeratesAllHomomorphisms) {
  // r(X) into {r(a), r(b), r(c)}: three homomorphisms.
  std::set<std::string> images;
  const bool completed = ForEachHomomorphism(
      Body("r(X)"), Body("r(a), r(b), r(c)"), {},
      [&](const Substitution& h) {
        images.insert(h.Apply(Var("X")).ToString());
        return true;
      });
  EXPECT_TRUE(completed);
  EXPECT_EQ(images, (std::set<std::string>{"a", "b", "c"}));
}

TEST(HomomorphismTest, CallbackCanStopEarly) {
  int count = 0;
  const bool completed = ForEachHomomorphism(
      Body("r(X)"), Body("r(a), r(b), r(c)"), {},
      [&](const Substitution&) {
        ++count;
        return false;
      });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 1);
}

TEST(HomomorphismTest, EmptyFromHasOneTrivialHomomorphism) {
  int count = 0;
  ForEachHomomorphism({}, Body("r(a)"), {}, [&](const Substitution& h) {
    EXPECT_TRUE(h.empty());
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
}

TEST(HomomorphismTest, CrossProductEnumeration) {
  // Two independent atoms over two facts each: 4 homomorphisms.
  int count = 0;
  ForEachHomomorphism(Body("r(X), s(Y)"), Body("r(a), r(b), s(c), s(d)"), {},
                      [&](const Substitution&) {
                        ++count;
                        return true;
                      });
  EXPECT_EQ(count, 4);
}

TEST(HomomorphismTest, LargerJoinOrderStress) {
  // Chain of length 6 into a 3-cycle: exists (wraps around).
  const auto from = Body("e(X0,X1), e(X1,X2), e(X2,X3), e(X3,X4), e(X4,X5)");
  const auto to = Body("e(A,B), e(B,C), e(C,A)");
  EXPECT_TRUE(FindHomomorphism(from, to).has_value());
}

}  // namespace
}  // namespace vbr
