#include "planner/planner.h"

#include <gtest/gtest.h>

#include "cost/m2_optimizer.h"
#include "cq/parser.h"
#include "engine/evaluator.h"
#include "engine/materialize.h"
#include "tests/rewrite/fixtures.h"
#include "workload/data_gen.h"
#include "workload/generator.h"

namespace vbr {
namespace {

using testing_fixtures::CarLocPartQuery;
using testing_fixtures::CarLocPartViews;

Database CarLocPartBase() {
  Database db;
  const Value a = EncodeConstant(Const("a"));
  for (Value m = 0; m < 10; ++m) db.AddRow("car", {m, a});
  for (Value c = 0; c < 5; ++c) db.AddRow("loc", {a, 100 + c});
  for (Value i = 0; i < 200; ++i) {
    db.AddRow("part", {1000 + i, i % 25, 100 + (i % 10)});
  }
  return db;
}

TEST(PlannerTest, M1PicksTheFewestSubgoals) {
  const ViewSet views = CarLocPartViews();
  const Database base = CarLocPartBase();
  ViewPlanner planner(views, MaterializeViews(views, base));
  auto result = planner.Plan(CarLocPartQuery(), CostModel::kM1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.choice->cost, 1u);
  EXPECT_EQ(result.choice->logical.ToString(), "q1(S,C) :- v4(M,a,C,S)");
}

TEST(PlannerTest, AllModelsComputeTheExactAnswer) {
  const ViewSet views = CarLocPartViews();
  const Database base = CarLocPartBase();
  ViewPlanner planner(views, MaterializeViews(views, base));
  const Relation expected = EvaluateQuery(CarLocPartQuery(), base);
  for (CostModel model :
       {CostModel::kM1, CostModel::kM2, CostModel::kM3}) {
    auto result = planner.Plan(CarLocPartQuery(), model);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(planner.Execute(*result.choice).EqualsAsSet(expected));
  }
}

TEST(PlannerTest, CertificateVerifies) {
  const ViewSet views = CarLocPartViews();
  ViewPlanner planner(views, MaterializeViews(views, CarLocPartBase()));
  auto result = planner.Plan(CarLocPartQuery(), CostModel::kM2);
  ASSERT_TRUE(result.ok());
  std::string error;
  EXPECT_TRUE(VerifyCertificate(result.choice->certificate, views, &error))
      << error;
}

TEST(PlannerTest, NoRewritingReportsStatus) {
  const ViewSet views = MustParseProgram("v(M,D) :- car(M,D)");
  ViewPlanner planner(views, Database{});
  const auto result = planner.Plan(CarLocPartQuery(), CostModel::kM2);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status, PlanStatus::kNoRewriting);
  EXPECT_FALSE(result.choice.has_value());
  EXPECT_FALSE(planner.Answer(CarLocPartQuery()).has_value());
}

TEST(PlannerTest, AnswerConvenience) {
  const ViewSet views = CarLocPartViews();
  const Database base = CarLocPartBase();
  ViewPlanner planner(views, MaterializeViews(views, base));
  auto answer = planner.Answer(CarLocPartQuery());
  ASSERT_TRUE(answer.has_value());
  EXPECT_TRUE(answer->EqualsAsSet(EvaluateQuery(CarLocPartQuery(), base)));
}

TEST(PlannerTest, M2NeverCostsMoreThanM1Plan) {
  // The M2 search space includes the GMRs, so its chosen plan's M2 cost is
  // at most the best GMR's M2 cost.
  const ViewSet views = CarLocPartViews();
  const Database base = CarLocPartBase();
  const Database view_db = MaterializeViews(views, base);
  ViewPlanner planner(views, view_db);
  auto m1 = planner.Plan(CarLocPartQuery(), CostModel::kM1);
  auto m2 = planner.Plan(CarLocPartQuery(), CostModel::kM2);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  const auto m1_under_m2 = OptimizeOrderM2(m1.choice->logical, view_db);
  EXPECT_LE(m2.choice->cost, m1_under_m2.cost);
}

TEST(PlannerTest, RandomWorkloadsEndToEnd) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    WorkloadConfig wc;
    wc.shape = (seed % 2 == 0) ? QueryShape::kStar : QueryShape::kChain;
    wc.num_query_subgoals = 5;
    wc.num_views = 12;
    wc.seed = seed;
    const Workload w = GenerateWorkload(wc);
    DataConfig dc;
    dc.rows_per_relation = 50;
    dc.domain_size = 10;
    dc.seed = seed * 101;
    const Database base = GenerateBaseData(w.query, w.views, dc);
    ViewPlanner planner(w.views, MaterializeViews(w.views, base));
    const Relation expected = EvaluateQuery(w.query, base);
    for (CostModel model :
         {CostModel::kM1, CostModel::kM2, CostModel::kM3}) {
      auto result = planner.Plan(w.query, model);
      ASSERT_TRUE(result.ok()) << "seed " << seed;
      EXPECT_TRUE(planner.Execute(*result.choice).EqualsAsSet(expected))
          << "seed " << seed << " model " << static_cast<int>(model) << "\n"
          << result.choice->ToString();
    }
  }
}

TEST(PlannerTest, PlanChoiceToStringIsInformative) {
  const ViewSet views = CarLocPartViews();
  ViewPlanner planner(views, MaterializeViews(views, CarLocPartBase()));
  auto result = planner.Plan(CarLocPartQuery(), CostModel::kM2);
  ASSERT_TRUE(result.ok());
  const std::string text = result.choice->ToString();
  EXPECT_NE(text.find("logical"), std::string::npos);
  EXPECT_NE(text.find("M2"), std::string::npos);
}

}  // namespace
}  // namespace vbr
