#include <gtest/gtest.h>

#include "cq/parser.h"
#include "engine/evaluator.h"
#include "engine/materialize.h"
#include "planner/planner.h"

namespace vbr {
namespace {

// A query wide enough that the M3 cost-based search must fall back to the
// M2-order + supplementary-drops path (max_m3_subgoals below its width).
struct WideFixture {
  ConjunctiveQuery query = MustParseQuery(
      "q(X1,X7) :- p1(X1,X2), p2(X2,X3), p3(X3,X4), p4(X4,X5), p5(X5,X6), "
      "p6(X6,X7), p7(X7,X8)");
  ViewSet views = MustParseProgram(R"(
    w1(A,B) :- p1(A,B)
    w2(A,B) :- p2(A,B)
    w3(A,B) :- p3(A,B)
    w4(A,B) :- p4(A,B)
    w5(A,B) :- p5(A,B)
    w6(A,B) :- p6(A,B)
    w7(A,B) :- p7(A,B)
  )");
  Database base;

  WideFixture() {
    for (int p = 1; p <= 7; ++p) {
      for (Value i = 0; i < 10; ++i) {
        base.AddRow("p" + std::to_string(p), {i, (i + 1) % 10});
      }
    }
  }
};

TEST(PlannerOptionsTest, M3FallsBackOnWidePlans) {
  WideFixture f;
  ViewPlanner::Options options;
  options.max_m3_subgoals = 4;  // Force the fallback (plan has 7 subgoals).
  ViewPlanner planner(f.views, MaterializeViews(f.views, f.base), options);
  auto result = planner.Plan(f.query, CostModel::kM3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.choice->logical.num_subgoals(), 7u);
  EXPECT_TRUE(planner.Execute(*result.choice).EqualsAsSet(
      EvaluateQuery(f.query, f.base)));
  // The fallback still drops attributes (SR rule).
  bool any_drop = false;
  for (const auto& step : result.choice->physical.drop_after) {
    any_drop |= !step.empty();
  }
  EXPECT_TRUE(any_drop);
}

TEST(PlannerOptionsTest, FiltersCanBeDisabled) {
  const auto query =
      MustParseQuery("q1(S,C) :- car(M,a), loc(a,C), part(S,M,C)");
  const ViewSet views = MustParseProgram(R"(
    v1(M,D,C) :- car(M,D), loc(D,C)
    v2(S,M,C) :- part(S,M,C)
    v3(S) :- car(M,a), loc(a,C), part(S,M,C)
  )");
  Database base;
  const Value a = EncodeConstant(Const("a"));
  for (Value m = 0; m < 10; ++m) base.AddRow("car", {m, a});
  for (Value c = 0; c < 10; ++c) base.AddRow("loc", {a, 100 + c});
  for (Value i = 0; i < 500; ++i) {
    base.AddRow("part", {2000 + i, 700 + i % 50, 800 + i % 30});
  }
  for (Value i = 0; i < 3; ++i) base.AddRow("part", {3000 + i, i, 100 + i});
  const Database view_db = MaterializeViews(views, base);

  ViewPlanner::Options no_filters;
  no_filters.use_filters = false;
  ViewPlanner with(views, view_db);
  ViewPlanner without(views, view_db, no_filters);
  auto plan_with = with.Plan(query, CostModel::kM2);
  auto plan_without = without.Plan(query, CostModel::kM2);
  ASSERT_TRUE(plan_with.ok());
  ASSERT_TRUE(plan_without.ok());
  // v3 is selective here, so the filtered plan is at least as cheap, and
  // the unfiltered logical plan must not mention v3.
  EXPECT_LE(plan_with.choice->cost, plan_without.choice->cost);
  for (const Atom& atom : plan_without.choice->logical.body()) {
    EXPECT_NE(atom.predicate_name(), "v3");
  }
  // Both answer correctly.
  const Relation expected = EvaluateQuery(query, base);
  EXPECT_TRUE(with.Execute(*plan_with.choice).EqualsAsSet(expected));
  EXPECT_TRUE(without.Execute(*plan_without.choice).EqualsAsSet(expected));
}

TEST(PlannerOptionsTest, MaxRewritingsLimitsSearch) {
  const auto query = MustParseQuery("q(X) :- r(X)");
  const ViewSet views = MustParseProgram(R"(
    u1(X) :- r(X)
    u2(X) :- r(X)
  )");
  ViewPlanner::Options options;
  options.core_cover.max_rewritings = 1;
  Database view_db;
  view_db.AddRow("u1", {1});
  view_db.AddRow("u2", {1});
  ViewPlanner planner(views, view_db, options);
  auto result = planner.Plan(query, CostModel::kM2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.choice->logical.num_subgoals(), 1u);
}

TEST(PlannerOptionsDeathTest, UnsafeViewAborts) {
  const ViewSet views = MustParseProgram("v(X,Y) :- r(X,X)");
  EXPECT_DEATH(ViewPlanner(views, Database{}), "unsafe view");
}

}  // namespace
}  // namespace vbr
