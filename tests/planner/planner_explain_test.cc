// Tests for the planner's observability surfaces: the span tree one traced
// Plan call emits (acceptance: it covers every CoreCover stage and the
// cache disposition) and the EXPLAIN output (acceptance: the JSON form
// round-trips through a JSON parser and agrees with the PlanResult).

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/trace.h"
#include "cq/parser.h"
#include "engine/io.h"
#include "engine/materialize.h"
#include "planner/planner.h"

namespace vbr {
namespace {

// The running example from the paper: q over car/loc/part with a covering
// view v4 and a two-view alternative v1+v2.
struct Fixture {
  ConjunctiveQuery query;
  ViewSet views;
  Database instances;

  Fixture() {
    const auto program = MustParseProgram(
        "q1(S,C) :- car(M,a), loc(a,C), part(S,M,C). "
        "v1(M,D,C) :- car(M,D), loc(D,C). "
        "v2(S,M,C) :- part(S,M,C). "
        "v4(M,D,C,S) :- car(M,D), loc(D,C), part(S,M,C).");
    query = program[0];
    views = ViewSet(program.begin() + 1, program.end());
    const auto base = ParseDatabase(
        "car(toyota, a). car(honda, b). loc(a, sf). loc(b, la). "
        "part(store1, toyota, sf). part(store2, honda, la).");
    instances = MaterializeViews(views, *base);
  }
};

std::multiset<std::string> SpanNames(const MemoryTraceSink& sink) {
  std::multiset<std::string> names;
  for (const TraceEvent& e : sink.spans()) names.insert(e.name);
  return names;
}

const TraceEvent* FindSpan(const std::vector<TraceEvent>& spans,
                           std::string_view name) {
  for (const TraceEvent& e : spans) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::string Attribute(const TraceEvent& e, std::string_view key) {
  for (const auto& [k, v] : e.attributes) {
    if (k == key) return v;
  }
  return "";
}

TEST(PlannerTraceTest, ColdPlanEmitsSpansForEveryStage) {
  const Fixture f;
  const ViewPlanner planner(f.views, f.instances);
  MemoryTraceSink sink;
  const auto result = planner.Plan(f.query, CostModel::kM2, &sink);
  ASSERT_TRUE(result.ok());

  const auto names = SpanNames(sink);
  // Planner stages + cache disposition.
  for (const char* expected :
       {"plan", "canonicalize", "cache_lookup", "cost_and_pick",
        "certify", "optimize_m2"}) {
    EXPECT_GE(names.count(expected), 1u) << "missing span " << expected;
  }
  // Every CoreCover stage.
  for (const char* expected : {"core_cover", "minimize", "group_views",
                               "view_tuples", "tuple_cores", "set_cover"}) {
    EXPECT_EQ(names.count(expected), 1u) << "missing span " << expected;
  }

  const auto spans = sink.spans();
  const TraceEvent* plan = FindSpan(spans, "plan");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->parent_id, 0u);
  EXPECT_EQ(Attribute(*plan, "model"), "M2");
  EXPECT_EQ(Attribute(*plan, "cache"), "miss");
  EXPECT_EQ(Attribute(*plan, "status"), "ok");
  // The tree hangs together: core_cover under plan, stages under it.
  const TraceEvent* core = FindSpan(spans, "core_cover");
  ASSERT_NE(core, nullptr);
  EXPECT_EQ(core->parent_id, plan->id);
  const TraceEvent* minimize = FindSpan(spans, "minimize");
  ASSERT_NE(minimize, nullptr);
  EXPECT_EQ(minimize->parent_id, core->id);
  const TraceEvent* lookup = FindSpan(spans, "cache_lookup");
  ASSERT_NE(lookup, nullptr);
  EXPECT_EQ(Attribute(*lookup, "outcome"), "miss");
}

TEST(PlannerTraceTest, WarmPlanTracesTheHitPathWithoutCoreCover) {
  const Fixture f;
  const ViewPlanner planner(f.views, f.instances);
  ASSERT_TRUE(planner.Plan(f.query, CostModel::kM2).ok());

  MemoryTraceSink sink;
  const auto result = planner.Plan(f.query, CostModel::kM2, &sink);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.cache_hit);
  const auto names = SpanNames(sink);
  EXPECT_EQ(names.count("core_cover"), 0u);
  EXPECT_GE(names.count("cost_and_pick"), 1u);
  const auto spans = sink.spans();
  const TraceEvent* plan = FindSpan(spans, "plan");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(Attribute(*plan, "cache"), "hit");
  const TraceEvent* lookup = FindSpan(spans, "cache_lookup");
  ASSERT_NE(lookup, nullptr);
  EXPECT_EQ(Attribute(*lookup, "outcome"), "hit");
}

TEST(PlannerTraceTest, UntracedPlanEmitsNothingAndAgrees) {
  const Fixture f;
  const ViewPlanner planner(f.views, f.instances);
  const auto traced_planner_result = planner.Plan(f.query, CostModel::kM2,
                                                  nullptr);
  ASSERT_TRUE(traced_planner_result.ok());
}

TEST(PlannerExplainTest, ExplainAgreesWithPlan) {
  const Fixture f;
  const ViewPlanner planner(f.views, f.instances);
  const auto explanation = planner.Explain(f.query, CostModel::kM2);
  ASSERT_TRUE(explanation.ok());
  ASSERT_TRUE(explanation.choice.has_value());
  EXPECT_EQ(explanation.cache_disposition, "miss");
  EXPECT_EQ(explanation.model, CostModel::kM2);

  // Candidates: v4 alone (1 subgoal) beats v1+v2; exactly one chosen.
  ASSERT_EQ(explanation.candidates.size(), 2u);
  size_t chosen = 0;
  for (const auto& c : explanation.candidates) {
    if (c.chosen) {
      ++chosen;
      EXPECT_EQ(c.reason, "chosen");
      EXPECT_EQ(c.cost, explanation.choice->cost);
    } else {
      EXPECT_NE(c.reason.find("winner"), std::string::npos);
      EXPECT_GE(c.cost, explanation.choice->cost);
    }
  }
  EXPECT_EQ(chosen, 1u);

  // Breakdown covers M1, M2, M3 with per-step sizes for the executed models.
  ASSERT_EQ(explanation.breakdown.size(), 3u);
  EXPECT_EQ(explanation.breakdown[0].model, CostModel::kM1);
  EXPECT_EQ(explanation.breakdown[1].model, CostModel::kM2);
  EXPECT_EQ(explanation.breakdown[2].model, CostModel::kM3);
  const auto& m2 = explanation.breakdown[1];
  EXPECT_EQ(m2.order.size(), explanation.choice->logical.num_subgoals());
  EXPECT_EQ(m2.relation_sizes.size(), m2.order.size());
  EXPECT_EQ(m2.state_sizes.size(), m2.order.size());
  EXPECT_EQ(m2.cost, explanation.choice->cost);

  // The text form mentions the pieces a human needs.
  const std::string text = explanation.ToText();
  for (const char* needle :
       {"status   : ok", "cache    : miss", "candidates (2):", "breakdown:",
        "chosen"}) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "missing \"" << needle << "\" in:\n" << text;
  }
}

TEST(PlannerExplainTest, JsonRoundTripsThroughParser) {
  const Fixture f;
  const ViewPlanner planner(f.views, f.instances);
  const auto explanation = planner.Explain(f.query, CostModel::kM2);
  ASSERT_TRUE(explanation.ok());

  std::string error;
  const auto parsed = ParseJson(explanation.ToJson(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_TRUE(parsed->is_object());

  ASSERT_NE(parsed->Get("status"), nullptr);
  EXPECT_EQ(parsed->Get("status")->string_value(), "ok");
  ASSERT_NE(parsed->Get("model"), nullptr);
  EXPECT_EQ(parsed->Get("model")->string_value(), "M2");
  ASSERT_NE(parsed->Get("cache"), nullptr);
  EXPECT_EQ(parsed->Get("cache")->string_value(), "miss");

  const JsonValue* candidates = parsed->Get("candidates");
  ASSERT_NE(candidates, nullptr);
  ASSERT_TRUE(candidates->is_array());
  EXPECT_EQ(candidates->array_items().size(),
            explanation.candidates.size());
  for (const JsonValue& c : candidates->array_items()) {
    ASSERT_NE(c.Get("logical"), nullptr);
    ASSERT_NE(c.Get("cost"), nullptr);
    ASSERT_NE(c.Get("chosen"), nullptr);
  }

  const JsonValue* plan = parsed->Get("plan");
  ASSERT_NE(plan, nullptr);
  ASSERT_TRUE(plan->is_object());
  EXPECT_DOUBLE_EQ(plan->Get("cost")->number_value(),
                   static_cast<double>(explanation.choice->cost));
  EXPECT_EQ(plan->Get("logical")->string_value(),
            explanation.choice->logical.ToString());

  const JsonValue* breakdown = parsed->Get("breakdown");
  ASSERT_NE(breakdown, nullptr);
  ASSERT_EQ(breakdown->array_items().size(), 3u);
  const JsonValue& m2 = breakdown->array_items()[1];
  EXPECT_EQ(m2.Get("model")->string_value(), "M2");
  EXPECT_TRUE(m2.Get("order")->is_array());
  EXPECT_TRUE(m2.Get("relation_sizes")->is_array());

  ASSERT_NE(parsed->Get("stats"), nullptr);
  EXPECT_NE(parsed->Get("stats")->Get("num_view_tuples"), nullptr);
}

TEST(PlannerExplainTest, ExplainOnTheHitPathReportsHit) {
  const Fixture f;
  const ViewPlanner planner(f.views, f.instances);
  ASSERT_TRUE(planner.Plan(f.query, CostModel::kM2).ok());
  const auto explanation = planner.Explain(f.query, CostModel::kM2);
  ASSERT_TRUE(explanation.ok());
  EXPECT_TRUE(explanation.cache_hit);
  EXPECT_EQ(explanation.cache_disposition, "hit");
}

TEST(PlannerExplainTest, ExplainWithDisabledCacheReportsDisabled) {
  const Fixture f;
  ViewPlanner::Options options;
  options.enable_cache = false;
  const ViewPlanner planner(f.views, f.instances, options);
  const auto explanation = planner.Explain(f.query, CostModel::kM1);
  ASSERT_TRUE(explanation.ok());
  EXPECT_EQ(explanation.cache_disposition, "disabled");
}

}  // namespace
}  // namespace vbr
