#include "planner/plan_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cq/parser.h"
#include "engine/materialize.h"
#include "planner/planner.h"
#include "tests/rewrite/fixtures.h"

namespace vbr {
namespace {

using testing_fixtures::CarLocPartQuery;
using testing_fixtures::CarLocPartViews;

PlanCache::EntryPtr MakeEntry(const std::string& text) {
  auto entry = std::make_shared<CachedPlan>();
  const CanonicalQuery cq = CanonicalizeQuery(MustParseQuery(text));
  entry->fingerprint = cq.fingerprint;
  entry->minimized = cq.to_canonical.Apply(cq.minimized);
  entry->has_rewriting = false;
  return entry;
}

PlanCache::EntryPtr LookupByText(PlanCache& cache, const std::string& text,
                                 CostModel model = CostModel::kM2) {
  const CanonicalQuery cq = CanonicalizeQuery(MustParseQuery(text));
  std::optional<Substitution> fallback;
  return cache.Lookup(cq.fingerprint, model, cq.minimized, &fallback);
}

TEST(PlanCacheTest, InsertLookupRoundTrip) {
  PlanCache cache(/*capacity=*/8, /*num_shards=*/2);
  cache.Insert(CostModel::kM2, MakeEntry("q(X) :- r(X,Y)"));
  EXPECT_EQ(cache.size(), 1u);
  // Same query modulo renaming/reordering hits; a different query misses.
  EXPECT_NE(LookupByText(cache, "q(A) :- r(A,B)"), nullptr);
  EXPECT_EQ(LookupByText(cache, "q(A) :- s(A,B)"), nullptr);
  // Same fingerprint under a different cost model misses.
  EXPECT_EQ(LookupByText(cache, "q(A) :- r(A,B)", CostModel::kM3), nullptr);
  const PlanCacheCounters c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 2u);
  EXPECT_EQ(c.insertions, 1u);
}

TEST(PlanCacheTest, LruEvictsTheColdestEntry) {
  PlanCache cache(/*capacity=*/2, /*num_shards=*/1);
  cache.Insert(CostModel::kM2, MakeEntry("q(X) :- p1(X)"));
  cache.Insert(CostModel::kM2, MakeEntry("q(X) :- p2(X)"));
  // Touch p1 so p2 becomes the LRU victim.
  EXPECT_NE(LookupByText(cache, "q(X) :- p1(X)"), nullptr);
  cache.Insert(CostModel::kM2, MakeEntry("q(X) :- p3(X)"));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.counters().evictions, 1u);
  EXPECT_EQ(LookupByText(cache, "q(X) :- p2(X)"), nullptr);
  EXPECT_NE(LookupByText(cache, "q(X) :- p1(X)"), nullptr);
  EXPECT_NE(LookupByText(cache, "q(X) :- p3(X)"), nullptr);
}

TEST(PlanCacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  PlanCache cache(/*capacity=*/4, /*num_shards=*/1);
  cache.Insert(CostModel::kM2, MakeEntry("q(X) :- r(X)"));
  cache.Insert(CostModel::kM2, MakeEntry("q(Y) :- r(Y)"));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCacheTest, EpochBumpInvalidatesEverything) {
  PlanCache cache(/*capacity=*/8, /*num_shards=*/2);
  cache.Insert(CostModel::kM2, MakeEntry("q(X) :- p1(X)"));
  cache.Insert(CostModel::kM2, MakeEntry("q(X) :- p2(X)"));
  EXPECT_EQ(cache.epoch(), 0u);
  cache.BumpEpoch();
  EXPECT_EQ(cache.epoch(), 1u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.counters().evictions, 2u);
  EXPECT_EQ(LookupByText(cache, "q(X) :- p1(X)"), nullptr);
  // Inserts under the new epoch are served again.
  cache.Insert(CostModel::kM2, MakeEntry("q(X) :- p1(X)"));
  EXPECT_NE(LookupByText(cache, "q(X) :- p1(X)"), nullptr);
}

TEST(PlanCacheTest, PlannerServesRenamedRepeatsFromCache) {
  const ViewSet views = CarLocPartViews();
  ViewPlanner planner(views, MaterializeViews(views, Database{}));
  const auto first = planner.Plan(CarLocPartQuery(), CostModel::kM1);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.cache_hit);
  // A renamed, reordered copy of the same query.
  const auto renamed =
      MustParseQuery("q1(T,D) :- part(T,N,D), loc(a,D), car(N,a)");
  const auto second = planner.Plan(renamed, CostModel::kM1);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.cache_hit);
  // The cached rewriting is transported into the NEW query's variables.
  EXPECT_EQ(second.choice->logical.ToString(), "q1(T,D) :- v4(N,a,D,T)");
  EXPECT_EQ(first.choice->cost, second.choice->cost);
  EXPECT_EQ(planner.cache_counters().hits, 1u);
  EXPECT_EQ(planner.cache_counters().misses, 1u);
  EXPECT_EQ(planner.cache_size(), 1u);
}

TEST(PlanCacheTest, NegativeOutcomesAreCachedToo) {
  const ViewSet views = MustParseProgram("v(M,D) :- car(M,D)");
  ViewPlanner planner(views, Database{});
  EXPECT_EQ(planner.Plan(CarLocPartQuery(), CostModel::kM2).status,
            PlanStatus::kNoRewriting);
  const auto again = planner.Plan(CarLocPartQuery(), CostModel::kM2);
  EXPECT_EQ(again.status, PlanStatus::kNoRewriting);
  EXPECT_TRUE(again.cache_hit);
}

TEST(PlanCacheTest, DisabledCacheNeverHits) {
  const ViewSet views = CarLocPartViews();
  ViewPlanner::Options options;
  options.enable_cache = false;
  ViewPlanner planner(views, MaterializeViews(views, Database{}), options);
  EXPECT_TRUE(planner.Plan(CarLocPartQuery(), CostModel::kM1).ok());
  const auto second = planner.Plan(CarLocPartQuery(), CostModel::kM1);
  EXPECT_TRUE(second.ok());
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(planner.cache_counters().hits, 0u);
  EXPECT_EQ(planner.cache_size(), 0u);
}

}  // namespace
}  // namespace vbr
