// Resource-governed planning end to end (ISSUE: deadlines, work budgets,
// cooperative cancellation, graceful degradation).
//
// The adversarial workload is a symmetric chain — every subgoal the same
// binary predicate — with 1-2 subgoal views over the same predicate. The
// minimal-cover space is the set of segment tilings of the chain and the
// M2 subset-DP runs over up-to-20-subgoal rewritings, so the ungoverned
// planner burns >10 seconds on it (measured; see DESIGN.md "Resource
// governance"), while a governed run must come back around its deadline
// with either kBudgetExhausted or a certified best-so-far plan.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "common/budget.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "engine/materialize.h"
#include "planner/plan_cache.h"
#include "planner/planner.h"
#include "rewrite/certificate.h"
#include "workload/generator.h"

namespace vbr {
namespace {

// The >10s-ungoverned symmetric-chain workload. Do NOT plan it without a
// budget in a test.
Workload AdversarialChain() {
  WorkloadConfig wc;
  wc.shape = QueryShape::kChain;
  wc.num_query_subgoals = 20;
  wc.num_predicates = 1;  // symmetric: every subgoal is p0
  wc.num_views = 16;
  wc.min_view_subgoals = 1;
  wc.max_view_subgoals = 2;
  wc.seed = 7;
  return GenerateWorkload(wc);
}

// A small workload every rung of the ladder can afford.
Workload SmallChain() {
  WorkloadConfig wc;
  wc.shape = QueryShape::kChain;
  wc.num_query_subgoals = 4;
  wc.num_predicates = 2;
  wc.num_views = 8;
  wc.seed = 3;
  return GenerateWorkload(wc);
}

ViewPlanner::Options GovernedOptions(ResourceLimits budget) {
  ViewPlanner::Options options;
  options.core_cover.num_threads = 1;
  options.budget = budget;
  options.fallback_work_budget = 5'000;  // keep ladder rungs test-fast
  return options;
}

class BudgetGovernanceTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().Reset(); }
  void TearDown() override { FaultRegistry::Global().Reset(); }
};

// Acceptance criterion: the adversarial workload under a 100 ms deadline
// returns promptly with kBudgetExhausted or a certified best-so-far plan.
TEST_F(BudgetGovernanceTest, AdversarialChainRespectsDeadline) {
  const Workload w = AdversarialChain();
  ResourceLimits budget;
  budget.deadline_ms = 100;
  ViewPlanner planner(w.views, MaterializeViews(w.views, Database{}),
                      GovernedOptions(budget));

  const auto start = std::chrono::steady_clock::now();
  const auto result = planner.Plan(w.query, CostModel::kM2);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  // Generous CI margin: the contract is "same order as the deadline", not
  // the >10'000 ms the ungoverned run takes.
  EXPECT_LT(elapsed_ms, 3000.0);
  ASSERT_TRUE(result.status == PlanStatus::kOk ||
              result.status == PlanStatus::kBudgetExhausted)
      << PlanStatusName(result.status);
  EXPECT_EQ(result.exhaustion.kind, BudgetKind::kDeadline);
  EXPECT_FALSE(result.exhaustion.site.empty());
  if (result.ok()) {
    EXPECT_TRUE(result.degraded);
    ASSERT_TRUE(result.choice.has_value());
    EXPECT_TRUE(VerifyCertificate(result.choice->certificate, w.views));
  } else {
    EXPECT_FALSE(result.error.empty());
  }
}

// The same workload under pure work budgets: every rung of the ladder ends
// in a valid status, every produced plan carries a verifying certificate,
// and budget-exhausted outcomes are never cached.
TEST_F(BudgetGovernanceTest, WorkBudgetLadderIsSoundAtEveryLevel) {
  const Workload w = AdversarialChain();
  const Database instances = MaterializeViews(w.views, Database{});
  for (const uint64_t work_limit : {uint64_t{10}, uint64_t{500},
                                    uint64_t{2000}, uint64_t{5000}}) {
    ResourceLimits budget;
    budget.work_limit = work_limit;
    ViewPlanner planner(w.views, instances, GovernedOptions(budget));
    const auto result = planner.Plan(w.query, CostModel::kM2);
    ASSERT_TRUE(result.status == PlanStatus::kOk ||
                result.status == PlanStatus::kBudgetExhausted)
        << "work_limit=" << work_limit << ": "
        << PlanStatusName(result.status);
    if (result.ok()) {
      ASSERT_TRUE(result.choice.has_value());
      EXPECT_TRUE(VerifyCertificate(result.choice->certificate, w.views))
          << "work_limit=" << work_limit;
      EXPECT_TRUE(result.degraded);
    } else {
      EXPECT_EQ(result.exhaustion.kind, BudgetKind::kWork);
      EXPECT_FALSE(result.exhaustion.site.empty());
      EXPECT_FALSE(result.error.empty());
      // Satellite: a budget-exhausted logical outcome must not be cached.
      EXPECT_EQ(planner.cache_size(), 0u) << "work_limit=" << work_limit;
      EXPECT_EQ(planner.cache_counters().insertions, 0u);
    }
    EXPECT_GT(result.stats.work_used, 0u);
  }
}

// An untight budget on the same planner behaves exactly like no budget:
// the governed result must equal the ungoverned one.
TEST_F(BudgetGovernanceTest, GenerousBudgetMatchesUngoverned) {
  const Workload w = SmallChain();
  const Database instances = MaterializeViews(w.views, Database{});
  ViewPlanner::Options ungoverned_options;
  ungoverned_options.core_cover.num_threads = 1;
  ViewPlanner ungoverned(w.views, instances, ungoverned_options);
  const auto baseline = ungoverned.Plan(w.query, CostModel::kM2);
  ASSERT_TRUE(baseline.ok());

  ResourceLimits budget;
  budget.work_limit = uint64_t{1} << 40;
  ViewPlanner governed(w.views, instances, GovernedOptions(budget));
  const auto result = governed.Plan(w.query, CostModel::kM2);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(result.exhaustion.kind, BudgetKind::kNone);
  EXPECT_EQ(result.choice->logical.ToString(),
            baseline.choice->logical.ToString());
  EXPECT_EQ(result.choice->cost, baseline.choice->cost);
}

// Cache-poisoning regression (satellite 1): a run whose CoreCover stage is
// forced to die must leave the cache empty, and the next identical query on
// the SAME planner must re-plan from scratch and get the full answer.
TEST_F(BudgetGovernanceTest, ExhaustedRunDoesNotPoisonTheCache) {
  const Workload w = SmallChain();
  const Database instances = MaterializeViews(w.views, Database{});
  ViewPlanner::Options options;
  options.core_cover.num_threads = 1;
  ViewPlanner baseline_planner(w.views, instances, options);
  const auto baseline = baseline_planner.Plan(w.query, CostModel::kM2);
  ASSERT_TRUE(baseline.ok());

  // A huge work limit installs a governor that never trips on its own; the
  // armed fault is the only exhaustion source.
  ResourceLimits budget;
  budget.work_limit = uint64_t{1} << 40;
  ViewPlanner planner(w.views, instances, GovernedOptions(budget));
  FaultRegistry::Global().Arm("corecover.minimize",
                              FaultKind::kBudgetExhausted, 1);
  const auto faulted = planner.Plan(w.query, CostModel::kM2);
  FaultRegistry::Global().Reset();
  ASSERT_TRUE(faulted.status == PlanStatus::kOk ||
              faulted.status == PlanStatus::kBudgetExhausted);
  EXPECT_NE(faulted.exhaustion.kind, BudgetKind::kNone);
  if (!faulted.ok()) {
    EXPECT_EQ(planner.cache_size(), 0u);
  }

  // The retry must not be served a partial enumeration from the cache.
  const auto retried = planner.Plan(w.query, CostModel::kM2);
  ASSERT_TRUE(retried.ok()) << PlanStatusName(retried.status);
  EXPECT_FALSE(retried.degraded);
  EXPECT_EQ(retried.choice->logical.ToString(),
            baseline.choice->logical.ToString());
  EXPECT_EQ(retried.choice->cost, baseline.choice->cost);
  EXPECT_TRUE(VerifyCertificate(retried.choice->certificate, w.views));
}

// An exhausted Minimize is a first-class budget outcome (satellite): when
// every removal probe aborts under a tiny per-search node cap, the planner
// must report kBudgetExhausted at the minimize stage — NOT treat the aborted
// probes as "no mapping" and cache the non-minimal result as a full answer.
TEST_F(BudgetGovernanceTest, ExhaustedMinimizeSurfacesAndSkipsTheCache) {
  const Workload w = AdversarialChain();
  ResourceLimits budget;
  budget.work_limit = uint64_t{1} << 40;  // never trips on its own
  budget.search_node_cap = 4;  // every backtracking search aborts
  ViewPlanner::Options options = GovernedOptions(budget);
  options.enable_minicon_fallback = false;
  ViewPlanner planner(w.views, MaterializeViews(w.views, Database{}),
                      options);
  const auto result = planner.Plan(w.query, CostModel::kM2);
  ASSERT_EQ(result.status, PlanStatus::kBudgetExhausted)
      << PlanStatusName(result.status);
  EXPECT_EQ(result.exhaustion.kind, BudgetKind::kWork);
  EXPECT_EQ(result.exhaustion.site, "corecover.minimize");
  EXPECT_EQ(planner.cache_size(), 0u);
  EXPECT_EQ(planner.cache_counters().insertions, 0u);
}

// The MiniCon fallback rung: kill set-cover before it emits anything, so
// CoreCover ends budget-exhausted with no rewriting; the budgeted MiniCon
// retry must still deliver a certified plan.
TEST_F(BudgetGovernanceTest, MiniConFallbackRecoversAPlan) {
  const Workload w = SmallChain();
  ResourceLimits budget;
  budget.work_limit = uint64_t{1} << 40;
  ViewPlanner planner(w.views, MaterializeViews(w.views, Database{}),
                      GovernedOptions(budget));
  FaultRegistry::Global().Arm("corecover.set_cover", FaultKind::kStageAbort,
                              1);
  const auto result = planner.Plan(w.query, CostModel::kM2);
  FaultRegistry::Global().Reset();
  ASSERT_EQ(result.status, PlanStatus::kOk)
      << PlanStatusName(result.status) << " " << result.error;
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.exhaustion.kind, BudgetKind::kInjected);
  EXPECT_TRUE(VerifyCertificate(result.choice->certificate, w.views));
  // The partial (empty) CoreCover outcome must not have been cached.
  EXPECT_EQ(planner.cache_counters().insertions, 0u);
}

// Disabling the fallback turns the same scenario into kBudgetExhausted.
TEST_F(BudgetGovernanceTest, FallbackCanBeDisabled) {
  const Workload w = SmallChain();
  ResourceLimits budget;
  budget.work_limit = uint64_t{1} << 40;
  ViewPlanner::Options options = GovernedOptions(budget);
  options.enable_minicon_fallback = false;
  ViewPlanner planner(w.views, MaterializeViews(w.views, Database{}),
                      options);
  FaultRegistry::Global().Arm("corecover.set_cover", FaultKind::kStageAbort,
                              1);
  const auto result = planner.Plan(w.query, CostModel::kM2);
  FaultRegistry::Global().Reset();
  EXPECT_EQ(result.status, PlanStatus::kBudgetExhausted);
  EXPECT_FALSE(result.choice.has_value());
  EXPECT_FALSE(result.error.empty());
}

// planner.deadline_exceeded ticks exactly on deadline deaths.
TEST_F(BudgetGovernanceTest, DeadlineMetricIncrements) {
  Counter* const deadline_metric =
      MetricsRegistry::Global().GetCounter("planner.deadline_exceeded");
  Counter* const exhausted_metric =
      MetricsRegistry::Global().GetCounter("planner.budget_exhausted");
  const uint64_t deadline_before = deadline_metric->value();
  const uint64_t exhausted_before = exhausted_metric->value();

  const Workload w = AdversarialChain();
  ResourceLimits budget;
  budget.deadline_ms = 50;
  ViewPlanner planner(w.views, MaterializeViews(w.views, Database{}),
                      GovernedOptions(budget));
  const auto result = planner.Plan(w.query, CostModel::kM2);
  ASSERT_NE(result.exhaustion.kind, BudgetKind::kNone);
  EXPECT_EQ(deadline_metric->value(), deadline_before + 1);
  EXPECT_EQ(exhausted_metric->value(), exhausted_before + 1);
}

// Explain mirrors the budget outcome and the rewriting-cap flag
// (satellite 2): both must be visible in the text and JSON renderings.
TEST_F(BudgetGovernanceTest, ExplainSurfacesBudgetAndTruncation) {
  const Workload w = SmallChain();
  ResourceLimits budget;
  budget.work_limit = uint64_t{1} << 40;
  ViewPlanner::Options options = GovernedOptions(budget);
  options.core_cover.max_rewritings = 1;  // force the cap
  ViewPlanner planner(w.views, MaterializeViews(w.views, Database{}),
                      options);
  FaultRegistry::Global().Arm("cost.m2", FaultKind::kBudgetExhausted, 1);
  const auto explanation = planner.Explain(w.query, CostModel::kM2);
  FaultRegistry::Global().Reset();

  ASSERT_TRUE(explanation.ok()) << explanation.error;
  EXPECT_TRUE(explanation.degraded);
  EXPECT_NE(explanation.exhaustion.kind, BudgetKind::kNone);
  const std::string text = explanation.ToText();
  EXPECT_NE(text.find("budget"), std::string::npos) << text;
  EXPECT_NE(text.find("max_rewritings"), std::string::npos) << text;
  const std::string json = explanation.ToJson();
  EXPECT_NE(json.find("\"budget\":{\"exhausted\":true"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"degraded\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"hit_rewriting_cap\":true"), std::string::npos)
      << json;
}

// PlanMany under a tiny budget: every batch member gets a valid status, and
// an exhausted representative never feeds its duplicates a partial entry.
TEST_F(BudgetGovernanceTest, PlanManySurvivesExhaustedRepresentative) {
  const Workload w = AdversarialChain();
  ResourceLimits budget;
  budget.work_limit = 100;  // dies in CoreCover for every member
  ViewPlanner planner(w.views, MaterializeViews(w.views, Database{}),
                      GovernedOptions(budget));
  const std::vector<ConjunctiveQuery> batch = {w.query, w.query, w.query};
  const auto results = planner.PlanMany(batch, CostModel::kM2);
  ASSERT_EQ(results.size(), batch.size());
  for (const auto& result : results) {
    ASSERT_TRUE(result.status == PlanStatus::kOk ||
                result.status == PlanStatus::kBudgetExhausted)
        << PlanStatusName(result.status);
    if (result.ok()) {
      EXPECT_TRUE(VerifyCertificate(result.choice->certificate, w.views));
    }
  }
  EXPECT_EQ(planner.cache_counters().insertions, 0u);
}

}  // namespace
}  // namespace vbr
