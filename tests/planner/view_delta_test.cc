// Delta-mutation tests for ViewPlanner::AddViews / RemoveViews and the
// plan cache's delta-fence reconciliation (plan_cache.h "Delta epoch"),
// plus the order-independent view-set fingerprint that lets snapshots
// warm-start a delta-built catalog.
//
// The adversarial cases ISSUE 9 names:
//   - a removed view sat in the winning rewriting (its cached plan MUST
//     be invalidated, and the replan must not mention it);
//   - an added view improves the best cost (the cached, now-stale plan
//     MUST be invalidated so the cheaper plan is found);
//   - a delta that cannot affect a cached query (its entry MUST keep
//     serving hits — that is the whole point of fences over epoch bumps);
//   - deltas racing an in-flight PlanMany (RCU: results must stay
//     internally consistent, never torn across catalogs);
//   - the delta epoch round-trips through SaveSnapshot/LoadSnapshot, and
//     a delta-built catalog fingerprints identically to the same set
//     handed wholesale to a fresh planner, in any order.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "cq/vbin_codec.h"
#include "engine/database.h"
#include "planner/plan_cache.h"
#include "planner/planner.h"
#include "planner/snapshot.h"

namespace vbr {
namespace {

// q(X,Z) :- r(X,Y), s(Y,Z), with single-subgoal views over r and s and
// (added later) a two-subgoal view that rewrites q in one subgoal.
ConjunctiveQuery TestQuery() {
  return MustParseQuery("q(X,Z) :- r(X,Y), s(Y,Z)");
}

ViewSet BaseViews() {
  return {MustParseQuery("w1(X,Y) :- r(X,Y)"),
          MustParseQuery("w2(Y,Z) :- s(Y,Z)")};
}

View BetterView() {
  return MustParseQuery("w3(X,Y,Z) :- r(X,Y), s(Y,Z)");
}

View IrrelevantView(const std::string& name) {
  return MustParseQuery(name + "(A,B) :- t(A,B)");
}

std::string LogicalBytes(const ViewPlanner::PlanResult& r) {
  return r.choice.has_value() ? EncodeQueryFile(r.choice->logical) : "";
}

TEST(ViewDeltaTest, AddedViewImprovesTheCachedPlan) {
  ViewPlanner planner(BaseViews(), Database{});
  const auto before = planner.Plan(TestQuery(), CostModel::kM1);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.choice->cost, 2u);  // w1 join w2
  EXPECT_EQ(planner.delta_epoch(), 0u);

  planner.AddViews({BetterView()}, Database{});
  EXPECT_EQ(planner.delta_epoch(), 1u);
  EXPECT_EQ(planner.views().size(), 3u);

  // The stale 2-subgoal plan must NOT be served from the cache: w3's body
  // predicates are a subset of the query's, so the fence invalidates it.
  const auto after = planner.Plan(TestQuery(), CostModel::kM1);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.choice->cost, 1u);  // single w3 subgoal
}

TEST(ViewDeltaTest, RemovedWinningViewInvalidatesItsPlan) {
  ViewSet views = BaseViews();
  views.push_back(BetterView());
  ViewPlanner planner(views, Database{});
  const auto before = planner.Plan(TestQuery(), CostModel::kM1);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.choice->cost, 1u);  // w3 wins

  EXPECT_EQ(planner.RemoveViews({"w3"}), 1u);
  EXPECT_EQ(planner.delta_epoch(), 1u);
  EXPECT_EQ(planner.views().size(), 2u);

  const auto after = planner.Plan(TestQuery(), CostModel::kM1);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.choice->cost, 2u);
  // The replanned rewriting must not mention the dropped view.
  EXPECT_EQ(after.choice->logical.ToString().find("w3"), std::string::npos);
}

TEST(ViewDeltaTest, IrrelevantDeltaKeepsServingCacheHits) {
  ViewPlanner planner(BaseViews(), Database{});
  const auto before = planner.Plan(TestQuery(), CostModel::kM1);
  ASSERT_TRUE(before.ok());

  // t(A,B) shares no predicate with q: the fence must NOT invalidate.
  planner.AddViews({IrrelevantView("w9")}, Database{});
  EXPECT_EQ(planner.delta_epoch(), 1u);
  const auto after = planner.Plan(TestQuery(), CostModel::kM1);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.cache_hit);
  EXPECT_EQ(LogicalBytes(after), LogicalBytes(before));

  // Removing the irrelevant view again is equally invisible.
  EXPECT_EQ(planner.RemoveViews({"w9"}), 1u);
  const auto again = planner.Plan(TestQuery(), CostModel::kM1);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.cache_hit);
}

TEST(ViewDeltaTest, UnknownNamesAreIgnoredWithoutAFence) {
  ViewPlanner planner(BaseViews(), Database{});
  EXPECT_EQ(planner.RemoveViews({"nope", "w17"}), 0u);
  // No catalog change: no delta fence, no epoch movement.
  EXPECT_EQ(planner.delta_epoch(), 0u);
  EXPECT_EQ(planner.views().size(), 2u);
  // Mixed known/unknown removes exactly the known one.
  EXPECT_EQ(planner.RemoveViews({"nope", "w2"}), 1u);
  EXPECT_EQ(planner.delta_epoch(), 1u);
  EXPECT_EQ(planner.views().size(), 1u);
}

TEST(ViewDeltaTest, DeltasRacingPlanManyStayConsistent) {
  ViewPlanner planner(BaseViews(), Database{});
  const std::vector<ConjunctiveQuery> batch(8, TestQuery());

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    int i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      planner.AddViews({BetterView()}, Database{});
      planner.RemoveViews({"w3"});
      planner.AddViews({IrrelevantView("x" + std::to_string(i++))},
                       Database{});
    }
  });

  for (int round = 0; round < 40; ++round) {
    const auto results = planner.PlanMany(batch, CostModel::kM1);
    ASSERT_EQ(results.size(), batch.size());
    for (const auto& r : results) {
      // Whatever catalog generation each request pinned, the plan is one
      // of the two valid answers — never torn, never missing.
      ASSERT_TRUE(r.ok()) << PlanStatusName(r.status) << " " << r.error;
      EXPECT_TRUE(r.choice->cost == 1u || r.choice->cost == 2u);
    }
  }
  stop.store(true, std::memory_order_release);
  mutator.join();
}

// -- Fingerprint order-independence -----------------------------------------

TEST(ViewDeltaTest, FingerprintIsOrderIndependentAndSetSensitive) {
  ViewSet views = BaseViews();
  views.push_back(BetterView());
  ViewSet reversed(views.rbegin(), views.rend());
  ViewSet rotated = {views[1], views[2], views[0]};
  const uint64_t fp = ViewSetFingerprint(views);
  EXPECT_EQ(fp, ViewSetFingerprint(reversed));
  EXPECT_EQ(fp, ViewSetFingerprint(rotated));
  // Different SETS still differ.
  EXPECT_NE(fp, ViewSetFingerprint(BaseViews()));
  EXPECT_NE(ViewSetFingerprint({}), ViewSetFingerprint(BaseViews()));
  ViewSet duplicated = views;
  duplicated.push_back(views[0]);
  EXPECT_NE(fp, ViewSetFingerprint(duplicated));
}

TEST(ViewDeltaTest, DeltaBuiltCatalogFingerprintsLikeWholesale) {
  // Build {w1,w2,w3} three ways; all must fingerprint identically.
  ViewPlanner by_delta(BaseViews(), Database{});
  by_delta.AddViews({IrrelevantView("tmp")}, Database{});
  by_delta.AddViews({BetterView()}, Database{});
  EXPECT_EQ(by_delta.RemoveViews({"tmp"}), 1u);

  ViewSet wholesale = BaseViews();
  wholesale.push_back(BetterView());
  ViewSet reordered = {BetterView(), BaseViews()[1], BaseViews()[0]};

  const uint64_t fp = ViewSetFingerprint(by_delta.snapshot()->views);
  EXPECT_EQ(fp, ViewSetFingerprint(wholesale));
  EXPECT_EQ(fp, ViewSetFingerprint(reordered));
}

// -- Snapshot round-trip -----------------------------------------------------

TEST(ViewDeltaTest, SnapshotCodecRoundTripsTheDeltaEpoch) {
  PlanCacheSnapshot snap;
  snap.view_fingerprint = 41;
  snap.view_count = 2;
  snap.delta_epoch = 7;
  PlanCacheSnapshot back;
  ASSERT_TRUE(DecodeSnapshotBytes(EncodeSnapshotBytes(snap), &back).ok());
  EXPECT_EQ(back.delta_epoch, 7u);
  // The pre-delta layout still decodes — at delta epoch 0.
  PlanCacheSnapshot v2;
  ASSERT_TRUE(
      DecodeSnapshotBytes(EncodeSnapshotBytes(snap, /*body_version=*/2), &v2)
          .ok());
  EXPECT_EQ(v2.delta_epoch, 0u);
  EXPECT_EQ(v2.view_fingerprint, 41u);
}

TEST(ViewDeltaTest, SnapshotWarmStartsADeltaBuiltCatalog) {
  const std::string path = ::testing::TempDir() + "/view_delta_snapshot.vbin";

  ViewPlanner saver(BaseViews(), Database{});
  saver.AddViews({BetterView()}, Database{});
  ASSERT_EQ(saver.delta_epoch(), 1u);
  const auto planned = saver.Plan(TestQuery(), CostModel::kM1);
  ASSERT_TRUE(planned.ok());
  EXPECT_EQ(planned.choice->cost, 1u);
  ASSERT_TRUE(saver.SaveSnapshot(path).ok());

  // The loader gets the same SET wholesale, in a different order: the
  // order-independent fingerprint must accept it, the delta epoch must
  // fast-forward, and the first Plan must be a byte-identical hit.
  ViewSet reordered = {BetterView(), BaseViews()[0], BaseViews()[1]};
  ViewPlanner loader(reordered, Database{});
  const SnapshotLoadResult load = loader.LoadSnapshot(path);
  ASSERT_TRUE(load.ok()) << load.status.error;
  EXPECT_TRUE(load.compatible);
  EXPECT_EQ(load.entries_loaded, 1u);
  EXPECT_EQ(loader.delta_epoch(), 1u);

  const auto warm = loader.Plan(TestQuery(), CostModel::kM1);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(LogicalBytes(warm), LogicalBytes(planned));

  // Deltas continue PAST the restored epoch on one shared timeline.
  loader.AddViews({IrrelevantView("w9")}, Database{});
  EXPECT_EQ(loader.delta_epoch(), 2u);
  const auto still_warm = loader.Plan(TestQuery(), CostModel::kM1);
  ASSERT_TRUE(still_warm.ok());
  EXPECT_TRUE(still_warm.cache_hit);
}

}  // namespace
}  // namespace vbr
