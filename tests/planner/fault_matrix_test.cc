// The fault-injection matrix (ISSUE tentpole): discover every governed
// check site the planner crosses on a workload, then for each
// site x fault-kind x Nth-crossing force an exhaustion there and assert the
// three matrix invariants:
//
//   1. no crash — the planner returns a PlanResult, never aborts;
//   2. status correctness — the outcome is kOk (with a verifying
//      certificate, degraded when the budget died) or kBudgetExhausted
//      (with a populated exhaustion record and error message);
//   3. no cache poisoning — after disarming, the SAME planner instance
//      re-plans the query to the exact ungoverned answer.
//
// Runs single-threaded: crossing counts are process-global, so Nth-crossing
// targeting is only deterministic without concurrent site traffic.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/fault_injection.h"
#include "engine/materialize.h"
#include "planner/planner.h"
#include "rewrite/certificate.h"
#include "workload/generator.h"

namespace vbr {
namespace {

Workload MatrixWorkload() {
  WorkloadConfig wc;
  wc.shape = QueryShape::kChain;
  wc.num_query_subgoals = 4;
  wc.num_predicates = 2;
  wc.num_views = 8;
  wc.seed = 11;
  return GenerateWorkload(wc);
}

ViewPlanner::Options MatrixOptions() {
  ViewPlanner::Options options;
  options.core_cover.num_threads = 1;
  ResourceLimits budget;
  budget.work_limit = uint64_t{1} << 40;  // governor present, never trips
  options.budget = budget;
  options.fallback_work_budget = 50'000;
  return options;
}

class FaultMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Global().Reset(); }
  void TearDown() override { FaultRegistry::Global().Reset(); }
};

// Phase 1: recording runs discover the site inventory. Two passes — a clean
// plan, and one with set-cover killed so the MiniCon fallback sites are
// crossed too.
std::vector<std::string> DiscoverSites(const Workload& w,
                                       const Database& instances) {
  auto& registry = FaultRegistry::Global();
  registry.Reset();
  registry.EnableRecording(true);
  {
    ViewPlanner planner(w.views, instances, MatrixOptions());
    (void)planner.Plan(w.query, CostModel::kM2);
  }
  registry.Arm("corecover.set_cover", FaultKind::kStageAbort, 1);
  {
    ViewPlanner planner(w.views, instances, MatrixOptions());
    (void)planner.Plan(w.query, CostModel::kM2);
  }
  std::vector<std::string> sites = registry.SeenSites();
  registry.Reset();
  return sites;
}

TEST_F(FaultMatrixTest, DiscoveryFindsTheGovernedPipeline) {
  const Workload w = MatrixWorkload();
  const Database instances = MaterializeViews(w.views, Database{});
  const std::vector<std::string> sites = DiscoverSites(w, instances);
  ASSERT_FALSE(sites.empty());
  auto has = [&](const std::string& s) {
    return std::find(sites.begin(), sites.end(), s) != sites.end();
  };
  // The load-bearing stages must all be governed.
  EXPECT_TRUE(has("corecover.minimize"));
  EXPECT_TRUE(has("corecover.view_tuples"));
  EXPECT_TRUE(has("corecover.tuple_cores"));
  EXPECT_TRUE(has("corecover.set_cover"));
  // cq.homomorphism is a hot-loop site amortized over a 64-node stride, so
  // this small workload never crosses it; HotLoopSiteFiresOnLargeSearch
  // covers it on a search big enough to reach the stride.
  EXPECT_TRUE(has("cost.m2"));
  EXPECT_TRUE(has("minicon.grow")) << "fallback pass crossed no MiniCon site";
}

// Phase 2: the full matrix.
TEST_F(FaultMatrixTest, EverySiteSurvivesEveryFault) {
  const Workload w = MatrixWorkload();
  const Database instances = MaterializeViews(w.views, Database{});

  // Ungoverned ground truth for the no-poisoning check.
  ViewPlanner::Options plain;
  plain.core_cover.num_threads = 1;
  ViewPlanner baseline_planner(w.views, instances, plain);
  const auto baseline = baseline_planner.Plan(w.query, CostModel::kM2);
  ASSERT_TRUE(baseline.ok());
  const std::string baseline_logical = baseline.choice->logical.ToString();

  const std::vector<std::string> sites = DiscoverSites(w, instances);
  ASSERT_FALSE(sites.empty());
  auto& registry = FaultRegistry::Global();

  for (const std::string& site : sites) {
    for (const FaultKind kind :
         {FaultKind::kBudgetExhausted, FaultKind::kAllocFailure,
          FaultKind::kStageAbort}) {
      for (const uint64_t nth : {uint64_t{1}, uint64_t{3}}) {
        SCOPED_TRACE(site + " x " + FaultKindName(kind) + " x nth=" +
                     std::to_string(nth));
        registry.Reset();
        registry.Arm(site, kind, nth);
        ViewPlanner planner(w.views, instances, MatrixOptions());
        const auto result = planner.Plan(w.query, CostModel::kM2);
        // Some sites are crossed fewer than `nth` times on this workload;
        // then the fault never fires and the run is an ordinary success.
        const bool fired = registry.CrossingCount(site) >= nth;
        registry.Reset();

        // Invariant 2: status correctness.
        ASSERT_TRUE(result.status == PlanStatus::kOk ||
                    result.status == PlanStatus::kBudgetExhausted)
            << PlanStatusName(result.status);
        if (result.ok()) {
          ASSERT_TRUE(result.choice.has_value());
          EXPECT_TRUE(VerifyCertificate(result.choice->certificate, w.views));
          EXPECT_EQ(result.degraded, fired);
        } else {
          EXPECT_TRUE(fired);
          EXPECT_NE(result.exhaustion.kind, BudgetKind::kNone);
          EXPECT_FALSE(result.exhaustion.site.empty());
          EXPECT_FALSE(result.error.empty());
          // A budget-exhausted logical outcome must never have been cached.
          EXPECT_EQ(planner.cache_size(), 0u);
        }

        // Invariant 3: no cache poisoning — the same planner, disarmed,
        // reproduces the ungoverned answer exactly.
        const auto recovered = planner.Plan(w.query, CostModel::kM2);
        ASSERT_EQ(recovered.status, PlanStatus::kOk)
            << PlanStatusName(recovered.status) << " " << recovered.error;
        EXPECT_FALSE(recovered.degraded);
        EXPECT_EQ(recovered.choice->logical.ToString(), baseline_logical);
        EXPECT_EQ(recovered.choice->cost, baseline.choice->cost);
        EXPECT_TRUE(
            VerifyCertificate(recovered.choice->certificate, w.views));
      }
    }
  }
}

// The homomorphism hot loop only consults the registry every 64 search
// nodes, so it needs searches big enough to reach the stride. A symmetric
// star query (every subgoal the same predicate) forces real backtracking in
// the minimization and containment searches — measured 18 crossings of
// cq.homomorphism on this exact workload.
TEST_F(FaultMatrixTest, HotLoopSiteFiresOnLargeSearch) {
  WorkloadConfig wc;
  wc.shape = QueryShape::kStar;
  wc.num_query_subgoals = 10;
  wc.num_predicates = 1;
  wc.num_views = 8;
  wc.seed = 5;
  const Workload w = GenerateWorkload(wc);

  auto& registry = FaultRegistry::Global();
  registry.Arm("cq.homomorphism", FaultKind::kBudgetExhausted, 1);
  ViewPlanner::Options options = MatrixOptions();
  options.fallback_work_budget = 5'000;  // keep the recovery ladder cheap
  ViewPlanner planner(w.views, MaterializeViews(w.views, Database{}),
                      options);
  const auto result = planner.Plan(w.query, CostModel::kM2);
  EXPECT_GE(registry.CrossingCount("cq.homomorphism"), 1u);
  registry.Reset();
  ASSERT_TRUE(result.status == PlanStatus::kOk ||
              result.status == PlanStatus::kBudgetExhausted)
      << PlanStatusName(result.status);
  EXPECT_NE(result.exhaustion.kind, BudgetKind::kNone);
  if (result.ok()) {
    EXPECT_TRUE(result.degraded);
    EXPECT_TRUE(VerifyCertificate(result.choice->certificate, w.views));
  } else {
    EXPECT_EQ(planner.cache_size(), 0u);
  }
}

// The M3 cost path has its own governed site; give it one matrix row so the
// model dimension is covered too.
TEST_F(FaultMatrixTest, M3CostSiteIsGoverned) {
  const Workload w = MatrixWorkload();
  const Database instances = MaterializeViews(w.views, Database{});
  auto& registry = FaultRegistry::Global();
  registry.Arm("cost.m3", FaultKind::kBudgetExhausted, 1);
  ViewPlanner planner(w.views, instances, MatrixOptions());
  const auto result = planner.Plan(w.query, CostModel::kM3);
  const bool fired = registry.CrossingCount("cost.m3") >= 1;
  registry.Reset();
  EXPECT_TRUE(fired);
  ASSERT_TRUE(result.status == PlanStatus::kOk ||
              result.status == PlanStatus::kBudgetExhausted);
  if (result.ok()) {
    EXPECT_TRUE(result.degraded);
    EXPECT_TRUE(VerifyCertificate(result.choice->certificate, w.views));
  }
}

}  // namespace
}  // namespace vbr
