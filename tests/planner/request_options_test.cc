// PlanRequestOptions: the transport-neutral request struct shared by
// in-process callers, the vbr_cli flags, the binary protocol, and the HTTP
// endpoint.  JSON round-trip fidelity matters because the HTTP /plan body
// and --options flag both deserialize through FromJson.
#include "planner/request_options.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/json.h"

namespace vbr {
namespace {

TEST(PlanRequestOptionsTest, DefaultsAreUnlimited) {
  PlanRequestOptions options;
  EXPECT_EQ(options.model, CostModel::kM2);
  EXPECT_EQ(options.deadline_ms, 0);
  EXPECT_TRUE(options.unlimited());
  EXPECT_TRUE(options.limits().unlimited());
}

TEST(PlanRequestOptionsTest, JsonRoundTripPreservesEveryField) {
  PlanRequestOptions options;
  options.model = CostModel::kM3;
  options.deadline_ms = 12.5;
  options.work_limit = 100'000;
  options.memory_limit_bytes = 1 << 20;
  options.search_node_cap = 777;

  std::string error;
  const auto parsed = PlanRequestOptions::FromJsonText(options.ToJson(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, options);
}

TEST(PlanRequestOptionsTest, RoundTripOfDefaultsIsIdentity) {
  const PlanRequestOptions options;
  std::string error;
  const auto parsed = PlanRequestOptions::FromJsonText(options.ToJson(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(*parsed, options);
}

TEST(PlanRequestOptionsTest, PartialObjectKeepsDefaultsForAbsentFields) {
  std::string error;
  const auto parsed = PlanRequestOptions::FromJsonText(
      R"({"model":"m1","deadline_ms":50})", &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->model, CostModel::kM1);
  EXPECT_EQ(parsed->deadline_ms, 50);
  EXPECT_EQ(parsed->work_limit, 0u);
  EXPECT_EQ(parsed->memory_limit_bytes, 0u);
  EXPECT_EQ(parsed->search_node_cap, 0u);
}

TEST(PlanRequestOptionsTest, ModelNamesAreCaseInsensitive) {
  std::string error;
  for (const char* text :
       {R"({"model":"m3"})", R"({"model":"M3"})"}) {
    const auto parsed = PlanRequestOptions::FromJsonText(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->model, CostModel::kM3);
  }
}

TEST(PlanRequestOptionsTest, RejectsUnknownMembers) {
  std::string error;
  EXPECT_FALSE(PlanRequestOptions::FromJsonText(
                   R"({"model":"m2","dead_line":5})", &error)
                   .has_value());
  EXPECT_NE(error.find("dead_line"), std::string::npos) << error;
}

TEST(PlanRequestOptionsTest, RejectsWrongTypes) {
  std::string error;
  EXPECT_FALSE(
      PlanRequestOptions::FromJsonText(R"({"model":42})", &error).has_value());
  EXPECT_FALSE(
      PlanRequestOptions::FromJsonText(R"({"model":"m9"})", &error)
          .has_value());
  EXPECT_FALSE(PlanRequestOptions::FromJsonText(
                   R"({"deadline_ms":"fast"})", &error)
                   .has_value());
  EXPECT_FALSE(
      PlanRequestOptions::FromJsonText(R"({"work_limit":-3})", &error)
          .has_value());
  EXPECT_FALSE(
      PlanRequestOptions::FromJsonText(R"({"work_limit":1.5})", &error)
          .has_value());
  EXPECT_FALSE(PlanRequestOptions::FromJsonText("[1,2]", &error).has_value());
  EXPECT_FALSE(PlanRequestOptions::FromJsonText("not json", &error)
                   .has_value());
}

TEST(PlanRequestOptionsTest, RejectsNonFiniteDeadlines) {
  std::string error;
  // NaN and ±inf would silently disable the deadline and make ToJson emit
  // invalid JSON ("nan"/"inf").
  for (const double bad :
       {std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity()}) {
    const JsonValue value = JsonValue::Object(
        {{"deadline_ms", JsonValue::Number(bad)}});
    EXPECT_FALSE(PlanRequestOptions::FromJson(value, &error).has_value());
    EXPECT_NE(error.find("deadline_ms"), std::string::npos) << error;
  }
  // An overflowing literal must not sneak through the text path either.
  EXPECT_FALSE(PlanRequestOptions::FromJsonText(
                   R"({"deadline_ms":1e999})", &error)
                   .has_value());
}

TEST(PlanRequestOptionsTest, StricterOfTakesTheTighterOfEachLimit) {
  PlanRequestOptions a;
  a.deadline_ms = 100;
  a.work_limit = 0;  // unlimited
  a.memory_limit_bytes = 4096;
  a.search_node_cap = 10;

  PlanRequestOptions b;
  b.model = CostModel::kM1;  // model is NOT merged: a's model wins
  b.deadline_ms = 50;
  b.work_limit = 1000;
  b.memory_limit_bytes = 0;  // unlimited
  b.search_node_cap = 20;

  const PlanRequestOptions merged = a.StricterOf(b);
  EXPECT_EQ(merged.model, a.model);
  EXPECT_EQ(merged.deadline_ms, 50);
  EXPECT_EQ(merged.work_limit, 1000u);
  EXPECT_EQ(merged.memory_limit_bytes, 4096u);
  EXPECT_EQ(merged.search_node_cap, 10u);
}

}  // namespace
}  // namespace vbr
