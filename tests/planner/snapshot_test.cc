// Persistence-layer tests (planner/snapshot.h): plan-cache snapshot
// warm-start, version skew, corruption handling, view-set fingerprints,
// and the binary request log (writer, parser, torn tails, and the
// PlanningService logging hook).
//
// The central warm-start contract: plan, SaveSnapshot, construct a FRESH
// planner over the same views, LoadSnapshot — and the very first Plan()
// of every snapshotted query is a cache hit whose logical plan and
// certificate are byte-identical (under the VBIN codecs) to what the
// pre-restart planner served on ITS hit path.
#include "planner/snapshot.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "cq/vbin_codec.h"
#include "engine/materialize.h"
#include "planner/plan_cache.h"
#include "planner/planner.h"
#include "planner/service.h"
#include "rewrite/certificate.h"
#include "rewrite/vbin_codec.h"
#include "tests/rewrite/fixtures.h"
#include "workload/data_gen.h"
#include "workload/generator.h"

namespace vbr {
namespace {

using testing_fixtures::CarLocPartQuery;
using testing_fixtures::CarLocPartViews;

Database CarLocPartBase() {
  Database db;
  const Value a = EncodeConstant(Const("a"));
  for (Value m = 0; m < 10; ++m) db.AddRow("car", {m, a});
  for (Value c = 0; c < 5; ++c) db.AddRow("loc", {a, 100 + c});
  for (Value i = 0; i < 60; ++i) {
    db.AddRow("part", {1000 + i, i % 25, 100 + (i % 10)});
  }
  return db;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// The byte-level identity of one served plan: the logical rewriting and
// the certificate, both under their VBIN codecs. Two results with equal
// identities are the same plan on the wire and on disk.
struct PlanIdentity {
  std::string status;
  std::string logical;
  std::string certificate;

  friend bool operator==(const PlanIdentity&, const PlanIdentity&) = default;
};

PlanIdentity IdentityOf(const ViewPlanner::PlanResult& result) {
  PlanIdentity id;
  id.status = PlanStatusName(result.status);
  if (result.ok()) {
    id.logical = EncodeQueryFile(result.choice->logical);
    id.certificate = EncodeCertificateFile(result.choice->certificate);
  }
  return id;
}

// One workload the snapshot tests share: the car/loc/part fixture plus a
// second query over the same predicates, planned under several models.
struct SnapshotCase {
  ConjunctiveQuery query;
  CostModel model = CostModel::kM2;
};

std::vector<SnapshotCase> SnapshotCases() {
  return {
      {CarLocPartQuery(), CostModel::kM1},
      {CarLocPartQuery(), CostModel::kM2},
      {CarLocPartQuery(), CostModel::kM3},
      {MustParseQuery("q2(M,C) :- car(M,D), loc(D,C)."), CostModel::kM2},
  };
}

TEST(SnapshotTest, WarmStartServesByteIdenticalPlansFromRequestOne) {
  const ViewSet views = CarLocPartViews();
  const Database instances = MaterializeViews(views, CarLocPartBase());
  const std::vector<SnapshotCase> cases = SnapshotCases();

  // Pre-restart planner: one cold run per case, then one HIT run per case
  // — the hit-path results are what a warm restart must reproduce.
  ViewPlanner before(views, instances);
  std::vector<PlanIdentity> hit_identities;
  for (const SnapshotCase& c : cases) {
    const auto cold = before.Plan(c.query, c.model);
    ASSERT_TRUE(cold.ok()) << cold.error;
    const auto hit = before.Plan(c.query, c.model);
    ASSERT_TRUE(hit.cache_hit);
    hit_identities.push_back(IdentityOf(hit));
  }

  const std::string path = TempPath("warm_start.vbin");
  ASSERT_TRUE(before.SaveSnapshot(path).ok());

  // "Restart": a fresh planner over the same views and instances.
  ViewPlanner after(views, instances);
  const SnapshotLoadResult load = after.LoadSnapshot(path);
  ASSERT_TRUE(load.ok()) << load.status.error;
  EXPECT_TRUE(load.compatible);
  EXPECT_GT(load.entries_loaded, 0u);

  for (size_t i = 0; i < cases.size(); ++i) {
    const auto warm = after.Plan(cases[i].query, cases[i].model);
    EXPECT_TRUE(warm.cache_hit)
        << "case " << i << " missed the warmed cache";
    ASSERT_TRUE(warm.ok()) << warm.error;
    EXPECT_TRUE(IdentityOf(warm) == hit_identities[i])
        << "case " << i << " plan differs after restart";
    std::string error;
    EXPECT_TRUE(VerifyCertificate(warm.choice->certificate, views, &error))
        << error;
  }
  // Cache-warm from request one: every post-restart request was a hit.
  const PlanCacheCounters counters = after.cache_counters();
  EXPECT_EQ(counters.misses, 0u);
  EXPECT_EQ(counters.hits, cases.size());
  std::remove(path.c_str());
}

TEST(SnapshotTest, NegativeOutcomesAreSnapshottedToo) {
  // A query with no rewriting over these views: the cached kNoRewriting
  // entry must survive the round trip so the warm planner skips the
  // (expensive) search for known-unanswerable queries as well.
  const ViewSet views = MustParseProgram("v1(X,Y) :- e(X,Y).");
  const Database instances = MaterializeViews(views, Database());
  const ConjunctiveQuery unanswerable =
      MustParseQuery("q(X) :- f(X,Y).");

  ViewPlanner before(views, instances);
  const auto cold = before.Plan(unanswerable, CostModel::kM2);
  EXPECT_EQ(cold.status, PlanStatus::kNoRewriting);

  const std::string path = TempPath("negative.vbin");
  ASSERT_TRUE(before.SaveSnapshot(path).ok());

  ViewPlanner after(views, instances);
  ASSERT_TRUE(after.LoadSnapshot(path).ok());
  const auto warm = after.Plan(unanswerable, CostModel::kM2);
  EXPECT_EQ(warm.status, PlanStatus::kNoRewriting);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(after.cache_counters().misses, 0u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, OlderBodyVersionLoadsWithoutCertificates) {
  const ViewSet views = CarLocPartViews();
  const Database instances = MaterializeViews(views, CarLocPartBase());
  ViewPlanner before(views, instances);
  ASSERT_TRUE(before.Plan(CarLocPartQuery(), CostModel::kM2).ok());

  const std::string path = TempPath("skew.vbin");
  ASSERT_TRUE(before.SaveSnapshot(path).ok());

  // Re-encode the saved snapshot in the version-1 (certificate-free)
  // layout — the rollback format an older writer would have produced.
  std::string bytes;
  ASSERT_TRUE(vbin::ReadWholeFile(path, &bytes).ok());
  PlanCacheSnapshot snap;
  ASSERT_TRUE(DecodeSnapshotBytes(bytes, &snap).ok());
  const std::string v1_bytes = EncodeSnapshotBytes(snap, /*body_version=*/1);
  ASSERT_TRUE(vbin::WriteFileAtomic(path, v1_bytes).ok());

  ViewPlanner after(views, instances);
  const SnapshotLoadResult load = after.LoadSnapshot(path);
  ASSERT_TRUE(load.ok()) << load.status.error;
  EXPECT_TRUE(load.compatible);
  EXPECT_GT(load.entries_loaded, 0u);

  // The hit still serves, and its certificate re-derives lazily exactly
  // like a fresh planner's would.
  const auto warm = after.Plan(CarLocPartQuery(), CostModel::kM2);
  ASSERT_TRUE(warm.ok()) << warm.error;
  EXPECT_TRUE(warm.cache_hit);
  std::string error;
  EXPECT_TRUE(VerifyCertificate(warm.choice->certificate, views, &error))
      << error;
  std::remove(path.c_str());
}

TEST(SnapshotTest, NewerBodyVersionIsRejectedCleanly) {
  PlanCacheSnapshot snap;  // content irrelevant: version gates first
  const std::string bytes =
      EncodeSnapshotBytes(snap, kSnapshotBodyVersion + 1);
  PlanCacheSnapshot out;
  const vbin::Status status = DecodeSnapshotBytes(bytes, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error.find("version"), std::string::npos) << status.error;
}

TEST(SnapshotTest, CorruptFileIsRejectedAndLeavesPlannerCold) {
  const ViewSet views = CarLocPartViews();
  const Database instances = MaterializeViews(views, CarLocPartBase());
  ViewPlanner before(views, instances);
  ASSERT_TRUE(before.Plan(CarLocPartQuery(), CostModel::kM2).ok());
  const std::string path = TempPath("corrupt.vbin");
  ASSERT_TRUE(before.SaveSnapshot(path).ok());

  std::string bytes;
  ASSERT_TRUE(vbin::ReadWholeFile(path, &bytes).ok());
  bytes[bytes.size() / 2] ^= 0x40;
  ASSERT_TRUE(vbin::WriteFileAtomic(path, bytes).ok());

  ViewPlanner after(views, instances);
  const SnapshotLoadResult load = after.LoadSnapshot(path);
  EXPECT_FALSE(load.ok());
  EXPECT_FALSE(load.compatible);
  EXPECT_EQ(load.entries_loaded, 0u);
  EXPECT_EQ(after.cache_size(), 0u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileIsAnError) {
  const ViewSet views = CarLocPartViews();
  ViewPlanner planner(views, MaterializeViews(views, Database()));
  const SnapshotLoadResult load =
      planner.LoadSnapshot(TempPath("does_not_exist.vbin"));
  EXPECT_FALSE(load.ok());
  EXPECT_EQ(load.entries_loaded, 0u);
}

TEST(SnapshotTest, MismatchedViewSetFallsBackToColdWithoutError) {
  const ViewSet views = CarLocPartViews();
  const Database instances = MaterializeViews(views, CarLocPartBase());
  ViewPlanner before(views, instances);
  ASSERT_TRUE(before.Plan(CarLocPartQuery(), CostModel::kM2).ok());
  const std::string path = TempPath("mismatch.vbin");
  ASSERT_TRUE(before.SaveSnapshot(path).ok());

  // A planner over a DIFFERENT view set: the snapshot must be declined
  // (compatible == false) without an error and without polluting the cache.
  const ViewSet other = MustParseProgram("w(X,Y) :- e(X,Y).");
  ViewPlanner after(other, MaterializeViews(other, Database()));
  const SnapshotLoadResult load = after.LoadSnapshot(path);
  ASSERT_TRUE(load.ok()) << load.status.error;
  EXPECT_FALSE(load.compatible);
  EXPECT_EQ(load.entries_loaded, 0u);
  EXPECT_EQ(after.cache_size(), 0u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, ViewSetFingerprintTracksDefinitionsNotInstances) {
  const ViewSet a = MustParseProgram(
      "v1(X,Y) :- e(X,Y).\n"
      "v2(X,Z) :- e(X,Y), e(Y,Z).\n");
  const ViewSet same = MustParseProgram(
      "v1(X,Y) :- e(X,Y).\n"
      "v2(X,Z) :- e(X,Y), e(Y,Z).\n");
  const ViewSet reordered = MustParseProgram(
      "v2(X,Z) :- e(X,Y), e(Y,Z).\n"
      "v1(X,Y) :- e(X,Y).\n");
  const ViewSet edited = MustParseProgram(
      "v1(X,Y) :- e(X,Y).\n"
      "v2(X,Z) :- e(X,Y), f(Y,Z).\n");
  EXPECT_EQ(ViewSetFingerprint(a), ViewSetFingerprint(same));
  // Order-INDEPENDENT by design: a catalog built by AddViews/RemoveViews
  // deltas must fingerprint identically to the same set handed wholesale
  // to ReplaceViews, whatever order the deltas arrived in (the delta
  // round-trip is pinned by tests/planner/view_delta_test.cc).
  EXPECT_EQ(ViewSetFingerprint(a), ViewSetFingerprint(reordered));
  EXPECT_NE(ViewSetFingerprint(a), ViewSetFingerprint(edited));
}

// -- Request log -------------------------------------------------------------

PlanRequestOptions SampleOptions() {
  PlanRequestOptions options;
  options.model = CostModel::kM3;
  options.deadline_ms = 12.5;
  options.work_limit = 100'000;
  options.memory_limit_bytes = uint64_t{1} << 20;
  options.search_node_cap = 77;
  return options;
}

TEST(RequestLogTest, RecordRoundTripIsByteIdentical) {
  RequestLogRecord record;
  record.query = MustParseQuery("q(X,Z) :- e(X,Y), e(Y,Z), X <= Z.");
  record.options = SampleOptions();

  const std::string bytes = EncodeRequestLogRecord(record);
  RequestLogRecord back;
  ASSERT_TRUE(DecodeRequestLogRecord(bytes, &back).ok());
  EXPECT_EQ(back, record);
  EXPECT_EQ(EncodeRequestLogRecord(back), bytes);
}

TEST(RequestLogTest, WriterAppendsAndReopensPreservingRecords) {
  const std::string path = TempPath("requests.vbrlog");
  std::remove(path.c_str());

  std::vector<RequestLogRecord> written;
  for (int i = 0; i < 3; ++i) {
    RequestLogRecord record;
    record.query = MustParseQuery("q" + std::to_string(i) +
                                  "(X) :- e(X,X).");
    record.options = SampleOptions();
    record.options.work_limit = 1000 * (i + 1);
    written.push_back(record);
  }

  RequestLogWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  writer.Append(written[0].query, written[0].options);
  writer.Append(written[1].query, written[1].options);
  writer.Close();
  EXPECT_EQ(writer.records_written(), 2u);
  EXPECT_TRUE(writer.error().empty());

  // Re-opening appends after the existing records.
  RequestLogWriter again;
  ASSERT_TRUE(again.Open(path).ok());
  again.Append(written[2].query, written[2].options);
  again.Close();

  std::vector<RequestLogRecord> records;
  size_t truncated = 0;
  ASSERT_TRUE(ReadRequestLogFile(path, &records, &truncated).ok());
  EXPECT_EQ(truncated, 0u);
  ASSERT_EQ(records.size(), 3u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i], written[i]) << "record " << i;
  }
  std::remove(path.c_str());
}

TEST(RequestLogTest, TornTailIsToleratedAndReported) {
  RequestLogRecord record;
  record.query = MustParseQuery("q(X) :- e(X,X).");
  const std::string frame_body = EncodeRequestLogRecord(record);
  std::string log;
  for (int i = 0; i < 2; ++i) {
    const uint32_t length = static_cast<uint32_t>(frame_body.size());
    for (int b = 0; b < 4; ++b) {
      log.push_back(static_cast<char>((length >> (8 * b)) & 0xFF));
    }
    log += frame_body;
  }

  // A crash mid-append: the last frame is cut short. The two complete
  // records parse; the torn bytes are reported, not fatal.
  std::string torn = log + log.substr(0, log.size() / 3);
  std::vector<RequestLogRecord> records;
  size_t truncated = 0;
  ASSERT_TRUE(ParseRequestLog(torn, &records, &truncated).ok());
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(truncated, torn.size() - log.size());

  // A torn LENGTH PREFIX (fewer than 4 bytes) truncates cleanly too.
  torn = log + std::string("\x03", 1);
  records.clear();
  ASSERT_TRUE(ParseRequestLog(torn, &records, &truncated).ok());
  EXPECT_EQ(records.size(), 2u);
  EXPECT_EQ(truncated, 1u);

  // A corrupt record body stops parsing at that frame.
  std::string corrupt = log;
  corrupt[corrupt.size() - 5] ^= 0x11;
  records.clear();
  ASSERT_TRUE(ParseRequestLog(corrupt, &records, &truncated).ok());
  EXPECT_EQ(records.size(), 1u);
  EXPECT_GT(truncated, 0u);
}

TEST(RequestLogTest, ServiceLogsEverySubmission) {
  const ViewSet views = CarLocPartViews();
  const Database instances = MaterializeViews(views, CarLocPartBase());
  ViewPlanner planner(views, instances);

  const std::string path = TempPath("service_requests.vbrlog");
  std::remove(path.c_str());
  auto log = std::make_shared<RequestLogWriter>();
  ASSERT_TRUE(log->Open(path).ok());

  PlanRequestOptions request_options;
  request_options.model = CostModel::kM2;
  request_options.work_limit = 500'000;
  {
    PlanningService::Options options;
    options.num_workers = 1;
    options.request_log = log;
    PlanningService service(&planner, options);
    for (int i = 0; i < 2; ++i) {
      PlanningService::PlanRequest request;
      request.query = CarLocPartQuery();
      request.options = request_options;
      const auto response = service.Submit(std::move(request)).get();
      EXPECT_TRUE(response.result.ok());
    }
  }
  log->Close();

  std::vector<RequestLogRecord> records;
  ASSERT_TRUE(ReadRequestLogFile(path, &records).ok());
  ASSERT_EQ(records.size(), 2u);
  for (const RequestLogRecord& record : records) {
    EXPECT_EQ(record.query, CarLocPartQuery());
    // The log records the PRE-merge options: exactly what the client sent.
    EXPECT_EQ(record.options, request_options);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vbr
