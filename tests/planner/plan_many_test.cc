#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "common/budget.h"
#include "cq/parser.h"
#include "cq/rename.h"
#include "cq/substitution.h"
#include "engine/materialize.h"
#include "planner/plan_cache.h"
#include "planner/planner.h"
#include "rewrite/certificate.h"
#include "tests/rewrite/fixtures.h"
#include "workload/data_gen.h"
#include "workload/generator.h"

namespace vbr {
namespace {

using testing_fixtures::CarLocPartQuery;
using testing_fixtures::CarLocPartViews;

// A workload of queries with renamed/reordered duplicates mixed in.
std::vector<ConjunctiveQuery> BatchWithDuplicates(const ViewSet& views,
                                                  uint64_t seed) {
  std::mt19937 rng(seed);
  std::vector<ConjunctiveQuery> base;
  for (uint64_t s = 1; s <= 4; ++s) {
    WorkloadConfig wc;
    wc.shape = (s % 2 == 0) ? QueryShape::kStar : QueryShape::kChain;
    wc.num_query_subgoals = 4;
    wc.num_views = 5;
    wc.seed = seed * 10 + s;
    base.push_back(GenerateWorkload(wc).query);
    (void)views;
  }
  std::vector<ConjunctiveQuery> batch;
  for (int round = 0; round < 3; ++round) {
    for (const ConjunctiveQuery& q : base) {
      Substitution renaming;
      ConjunctiveQuery fresh = RenameVariablesApart(
          q, "b" + std::to_string(round), &renaming);
      std::vector<Atom> body = fresh.body();
      std::shuffle(body.begin(), body.end(), rng);
      batch.emplace_back(fresh.head(), std::move(body));
    }
  }
  std::shuffle(batch.begin(), batch.end(), rng);
  return batch;
}

std::string ResultKey(const ViewPlanner::PlanResult& r) {
  std::string key = std::string(PlanStatusName(r.status)) + "|" +
                    (r.cache_hit ? "hit" : "miss") + "|";
  if (r.choice.has_value()) {
    key += r.choice->ToString() + "|" +
           r.choice->certificate.ToString();
  }
  return key;
}

TEST(PlanManyTest, MatchesSerialPlansAtEveryThreadCount) {
  WorkloadConfig wc;
  wc.num_query_subgoals = 4;
  wc.num_views = 10;
  wc.seed = 3;
  const Workload w = GenerateWorkload(wc);
  DataConfig dc;
  dc.rows_per_relation = 30;
  dc.domain_size = 8;
  dc.seed = 17;
  const Database base = GenerateBaseData(w.query, w.views, dc);
  const Database view_db = MaterializeViews(w.views, base);

  std::vector<ConjunctiveQuery> batch = BatchWithDuplicates(w.views, 5);
  batch.push_back(w.query);
  batch.push_back(CarLocPartQuery());  // no rewriting over these views

  for (CostModel model : {CostModel::kM1, CostModel::kM2}) {
    // Reference: serial Plan() calls on a fresh planner.
    ViewPlanner serial(w.views, view_db);
    std::vector<std::string> expected;
    for (const ConjunctiveQuery& q : batch) {
      expected.push_back(ResultKey(serial.Plan(q, model)));
    }
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      ViewPlanner::Options options;
      options.core_cover.num_threads = threads;
      ViewPlanner planner(w.views, view_db, options);
      const auto results = planner.PlanMany(batch, model);
      ASSERT_EQ(results.size(), batch.size());
      for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(ResultKey(results[i]), expected[i])
            << "threads=" << threads << " i=" << i << " query "
            << batch[i].ToString();
      }
    }
  }
}

TEST(PlanManyTest, DeduplicatesInFlight) {
  const ViewSet views = CarLocPartViews();
  ViewPlanner planner(views, MaterializeViews(views, Database{}));
  const std::vector<ConjunctiveQuery> batch = {
      CarLocPartQuery(),
      MustParseQuery("q1(T,D) :- part(T,N,D), loc(a,D), car(N,a)"),
      CarLocPartQuery(),
  };
  const auto results = planner.PlanMany(batch, CostModel::kM1);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].cache_hit);
  EXPECT_TRUE(results[1].cache_hit);
  EXPECT_TRUE(results[2].cache_hit);
  // One CoreCover run served all three.
  EXPECT_EQ(planner.cache_counters().misses, 1u);
  EXPECT_EQ(planner.cache_counters().hits, 2u);
  // Each result speaks the caller's variable names.
  EXPECT_EQ(results[1].choice->logical.ToString(), "q1(T,D) :- v4(N,a,D,T)");
  EXPECT_EQ(results[0].choice->logical.ToString(), "q1(S,C) :- v4(M,a,C,S)");
}

// Regression: the in-flight dedup must hand EVERY waiter an independent,
// fully populated PlanResult — its own cache_hit/degraded/exhaustion flags
// and its own certified choice — never a half-copied or shared one.
TEST(PlanManyTest, DedupPropagatesFlagsToEveryWaiter) {
  const ViewSet views = CarLocPartViews();
  ViewPlanner planner(views, MaterializeViews(views, Database{}));
  std::vector<ConjunctiveQuery> batch;
  batch.push_back(CarLocPartQuery());
  for (int i = 0; i < 3; ++i) {
    Substitution renaming;
    batch.push_back(RenameVariablesApart(CarLocPartQuery(),
                                         "w" + std::to_string(i), &renaming));
  }
  const auto results = planner.PlanMany(batch, CostModel::kM1);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_FALSE(results[0].cache_hit);
  for (size_t i = 1; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << "waiter " << i;
    EXPECT_TRUE(results[i].cache_hit) << "waiter " << i;
    EXPECT_FALSE(results[i].degraded) << "waiter " << i;
    EXPECT_EQ(results[i].exhaustion.kind, BudgetKind::kNone) << "waiter " << i;
    // The waiter's stats describe the ONE CoreCover run all members share.
    EXPECT_EQ(results[i].stats.num_view_tuples, results[0].stats.num_view_tuples);
    EXPECT_EQ(results[i].stats.minimum_cover_size,
              results[0].stats.minimum_cover_size);
    // Each waiter's certificate is transported into ITS variables and must
    // re-verify on its own.
    ASSERT_TRUE(results[i].choice.has_value());
    EXPECT_TRUE(VerifyCertificate(results[i].choice->certificate, views))
        << "waiter " << i;
  }
}

// Regression: when the representative's run exhausts its budget, nothing is
// cached — each duplicate must re-plan on ITS OWN budget and report its own
// exhaustion, not inherit the leader's (or a blank) one.
TEST(PlanManyTest, DedupExhaustedLeaderDoesNotPoisonWaiters) {
  WorkloadConfig wc;
  wc.num_query_subgoals = 4;
  wc.num_views = 8;
  wc.seed = 9;
  const Workload w = GenerateWorkload(wc);

  ViewPlanner::Options options;
  options.budget.work_limit = 1;  // dies before any rewriting is found
  options.enable_minicon_fallback = false;
  ViewPlanner planner(w.views, Database{}, options);

  std::vector<ConjunctiveQuery> batch;
  batch.push_back(w.query);
  for (int i = 0; i < 2; ++i) {
    Substitution renaming;
    batch.push_back(
        RenameVariablesApart(w.query, "x" + std::to_string(i), &renaming));
  }
  const auto results = planner.PlanMany(batch, CostModel::kM1);
  ASSERT_EQ(results.size(), 3u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].status, PlanStatus::kBudgetExhausted) << "i=" << i;
    EXPECT_FALSE(results[i].cache_hit) << "i=" << i;
    EXPECT_EQ(results[i].exhaustion.kind, BudgetKind::kWork) << "i=" << i;
    EXPECT_FALSE(results[i].exhaustion.site.empty()) << "i=" << i;
    EXPECT_FALSE(results[i].error.empty()) << "i=" << i;
  }
  // Nothing was cached for the exhausted fingerprint.
  EXPECT_EQ(planner.cache_size(), 0u);
}

TEST(PlanManyTest, ReplaceViewsInvalidatesCachedPlans) {
  const auto query = MustParseQuery("q(X,Y) :- r(X,Z), s(Z,Y)");
  const ViewSet wide = MustParseProgram("v(A,B,C) :- r(A,B), s(B,C)");
  const ViewSet narrow = MustParseProgram(R"(
    vr(A,B) :- r(A,B)
    vs(A,B) :- s(A,B)
  )");
  Database base;
  base.AddRow("r", {1, 2});
  base.AddRow("s", {2, 3});

  ViewPlanner planner(wide, MaterializeViews(wide, base));
  const auto before = planner.Plan(query, CostModel::kM1);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.choice->logical.num_subgoals(), 1u);
  EXPECT_EQ(planner.cache_size(), 1u);

  planner.ReplaceViews(narrow, MaterializeViews(narrow, base));
  EXPECT_EQ(planner.cache_epoch(), 1u);
  EXPECT_EQ(planner.cache_size(), 0u);
  const auto after = planner.Plan(query, CostModel::kM1);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.cache_hit);  // the old entry must not be served
  EXPECT_EQ(after.choice->logical.num_subgoals(), 2u);
  EXPECT_TRUE(planner.Execute(*after.choice).Contains({1, 3}));
}

TEST(PlanManyTest, TooLargeQueriesReportUnsupported) {
  // 65 subgoals overflow the 64-bit tuple-core bitmask.
  std::string text = "q(X0)";
  std::string sep = " :- ";
  for (int i = 0; i < 65; ++i) {
    text += sep + "p" + std::to_string(i) + "(X" + std::to_string(i) + ",X" +
            std::to_string(i + 1) + ")";
    sep = ", ";
  }
  const auto query = MustParseQuery(text);
  const ViewSet views = MustParseProgram("v(A,B) :- p0(A,B)");
  ViewPlanner planner(views, Database{});
  const auto result = planner.Plan(query, CostModel::kM2);
  EXPECT_EQ(result.status, PlanStatus::kUnsupportedQueryTooLarge);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.error.empty());
  // The negative outcome is cached, status intact.
  const auto again = planner.Plan(query, CostModel::kM2);
  EXPECT_EQ(again.status, PlanStatus::kUnsupportedQueryTooLarge);
  EXPECT_TRUE(again.cache_hit);
}

// Migrated off the deprecated PlanOrNull shim: Plan's status-bearing result
// covers both the positive outcome and the "no rewriting" distinction the
// shim collapsed into nullopt.
TEST(PlanManyTest, PlanDistinguishesSuccessFromNoRewriting) {
  const ViewSet views = CarLocPartViews();
  ViewPlanner planner(views, MaterializeViews(views, Database{}));
  const auto result = planner.Plan(CarLocPartQuery(), CostModel::kM1);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result.choice.has_value());
  EXPECT_EQ(result.choice->logical.ToString(), "q1(S,C) :- v4(M,a,C,S)");
  const auto none =
      planner.Plan(MustParseQuery("q(X) :- unknown(X,Y)"), CostModel::kM1);
  EXPECT_EQ(none.status, PlanStatus::kNoRewriting);
  EXPECT_FALSE(none.choice.has_value());
}

}  // namespace
}  // namespace vbr
