// Regression tests for the planner's failure paths: queries beyond the
// 64-subgoal fragment must flow through PlanResult / PlanMany as
// kUnsupportedQueryTooLarge without corrupting the cache, and Explain must
// report failed plans instead of crashing.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "cq/parser.h"
#include "planner/plan_cache.h"
#include "planner/planner.h"

namespace vbr {
namespace {

// A chain of `n` DISTINCT binary predicates: its core is itself, so the
// minimized query keeps all n subgoals and n > 64 trips the fragment check.
ConjunctiveQuery WideQuery(size_t n) {
  std::string text = "q(X0,X" + std::to_string(n) + ") :- ";
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) text += ", ";
    text += "p" + std::to_string(i) + "(X" + std::to_string(i) + ",X" +
            std::to_string(i + 1) + ")";
  }
  text += ".";
  return MustParseQuery(text);
}

ViewSet SmallViews() {
  const auto program = MustParseProgram(
      "q(X,Y) :- p0(X,Y). "
      "v0(X,Y) :- p0(X,Y). "
      "v1(X,Y) :- p1(X,Y).");
  return ViewSet(program.begin() + 1, program.end());
}

TEST(PlannerErrorPathsTest, TooLargeQueryReportsUnsupportedStatus) {
  const ViewPlanner planner(SmallViews(), Database());
  const auto result = planner.Plan(WideQuery(65), CostModel::kM1);
  EXPECT_EQ(result.status, PlanStatus::kUnsupportedQueryTooLarge);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.choice.has_value());
  EXPECT_FALSE(result.error.empty());
}

TEST(PlannerErrorPathsTest, TooLargeQueryDoesNotPoisonTheCache) {
  const ViewPlanner planner(SmallViews(), Database());
  const ConjunctiveQuery wide = WideQuery(65);

  // The negative outcome is itself cacheable: the second identical request
  // must be a hit with the SAME status, not a corrupted entry.
  const auto first = planner.Plan(wide, CostModel::kM1);
  const auto second = planner.Plan(wide, CostModel::kM1);
  EXPECT_EQ(first.status, PlanStatus::kUnsupportedQueryTooLarge);
  EXPECT_EQ(second.status, PlanStatus::kUnsupportedQueryTooLarge);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_FALSE(second.choice.has_value());

  // A well-formed query planned afterwards is unaffected.
  const auto ok = planner.Plan(MustParseQuery("q(X,Y) :- p0(X,Y)."),
                               CostModel::kM1);
  EXPECT_EQ(ok.status, PlanStatus::kOk);
  ASSERT_TRUE(ok.choice.has_value());
  EXPECT_EQ(planner.cache_counters().hits, 1u);
  EXPECT_EQ(planner.cache_counters().misses, 2u);
}

TEST(PlannerErrorPathsTest, PlanManyCarriesPerQueryStatuses) {
  const ViewPlanner planner(SmallViews(), Database());
  const std::vector<ConjunctiveQuery> batch = {
      MustParseQuery("q(X,Y) :- p0(X,Y)."),
      WideQuery(65),
      MustParseQuery("q(X,Y) :- p2(X,Y)."),  // No view covers p2.
      WideQuery(65),                          // Dedups with the earlier one.
  };
  const auto results = planner.PlanMany(batch, CostModel::kM1);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].status, PlanStatus::kOk);
  EXPECT_EQ(results[1].status, PlanStatus::kUnsupportedQueryTooLarge);
  EXPECT_FALSE(results[1].error.empty());
  EXPECT_EQ(results[2].status, PlanStatus::kNoRewriting);
  EXPECT_EQ(results[3].status, PlanStatus::kUnsupportedQueryTooLarge);
}

TEST(PlannerErrorPathsTest, ExplainReportsTooLargeWithoutCrashing) {
  const ViewPlanner planner(SmallViews(), Database());
  const auto explanation = planner.Explain(WideQuery(65), CostModel::kM2);
  EXPECT_EQ(explanation.status, PlanStatus::kUnsupportedQueryTooLarge);
  EXPECT_FALSE(explanation.ok());
  EXPECT_FALSE(explanation.error.empty());
  EXPECT_TRUE(explanation.breakdown.empty());

  const std::string text = explanation.ToText();
  EXPECT_NE(text.find("unsupported"), std::string::npos) << text;
  std::string error;
  const auto parsed = ParseJson(explanation.ToJson(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->Get("status")->string_value(),
            "unsupported query (too large)");
  EXPECT_TRUE(parsed->Get("plan")->is_null());
}

TEST(PlannerErrorPathsTest, ExplainReportsNoRewriting) {
  const ViewPlanner planner(SmallViews(), Database());
  const auto explanation =
      planner.Explain(MustParseQuery("q(X,Y) :- p2(X,Y)."), CostModel::kM2);
  EXPECT_EQ(explanation.status, PlanStatus::kNoRewriting);
  EXPECT_TRUE(explanation.candidates.empty());
  std::string error;
  const auto parsed = ParseJson(explanation.ToJson(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->Get("status")->string_value(), "no equivalent rewriting");
}

}  // namespace
}  // namespace vbr
