// Metamorphic plan-cache tests: a query and any variable-renamed,
// subgoal-reordered variant of it are the SAME query, so
//   1. the variants must hit the fingerprint cache, and
//   2. a hit-path plan must compute exactly the answer the cold path
//      computes, evaluated over the query's canonical database (whose
//      frozen body makes the query's own answer non-empty, so the
//      comparison is never vacuous).

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "cq/rename.h"
#include "engine/materialize.h"
#include "planner/plan_cache.h"
#include "planner/planner.h"
#include "rewrite/canonical_db.h"
#include "workload/generator.h"

namespace vbr {
namespace {

constexpr int kVariantRounds = 4;

// Renamed + subgoal-shuffled copy of `q` — semantically the same query.
ConjunctiveQuery Variant(const ConjunctiveQuery& q, std::mt19937& rng,
                         int round) {
  ConjunctiveQuery fresh =
      RenameVariablesApart(q, "mv" + std::to_string(round));
  std::vector<Atom> body = fresh.body();
  std::shuffle(body.begin(), body.end(), rng);
  return ConjunctiveQuery(fresh.head(), std::move(body));
}

WorkloadConfig ConfigForSeed(uint64_t seed) {
  WorkloadConfig config;
  config.shape = (seed % 2 == 0) ? QueryShape::kStar : QueryShape::kChain;
  config.num_query_subgoals = 4;
  config.num_predicates = 4;
  config.num_views = 8;
  // Every fourth seed has no safety-net views, so negative outcomes
  // (kNoRewriting) go through the metamorphic hit checks too.
  config.ensure_rewriting_exists = (seed % 4 != 0);
  config.seed = seed;
  return config;
}

// The query's canonical database, materialized through the views.
Database ViewInstancesOverCanonicalDb(const Workload& w) {
  const CanonicalDatabase canonical(w.query);
  Database base;
  for (const Atom& fact : canonical.facts()) {
    base.AddFact(fact);
  }
  return MaterializeViews(w.views, base);
}

class PlanCacheMetamorphicTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanCacheMetamorphicTest, RenamedReorderedVariantsHitTheCache) {
  const Workload w = GenerateWorkload(ConfigForSeed(GetParam()));
  ViewPlanner planner(w.views, ViewInstancesOverCanonicalDb(w));
  const auto first = planner.Plan(w.query, CostModel::kM2);
  EXPECT_FALSE(first.cache_hit);

  std::mt19937 rng(GetParam());
  for (int round = 0; round < kVariantRounds; ++round) {
    const ConjunctiveQuery variant = Variant(w.query, rng, round);
    const auto result = planner.Plan(variant, CostModel::kM2);
    EXPECT_TRUE(result.cache_hit)
        << "variant missed the cache: " << variant.ToString();
    EXPECT_EQ(result.status, first.status);
  }
  const PlanCacheCounters counters = planner.cache_counters();
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.hits, static_cast<uint64_t>(kVariantRounds));
}

TEST_P(PlanCacheMetamorphicTest, HitPathPlansEvaluateLikeColdPathPlans) {
  const Workload w = GenerateWorkload(ConfigForSeed(GetParam()));
  const Database instances = ViewInstancesOverCanonicalDb(w);

  ViewPlanner::Options cold_options;
  cold_options.enable_cache = false;
  const ViewPlanner cold(w.views, instances, cold_options);
  const ViewPlanner warm(w.views, instances);
  // Warm the cache with the base query; variants then take the hit path.
  const auto warmup = warm.Plan(w.query, CostModel::kM2);

  std::mt19937 rng(GetParam() + 1000);
  for (int round = 0; round < kVariantRounds; ++round) {
    const ConjunctiveQuery variant = Variant(w.query, rng, round);
    const auto hit = warm.Plan(variant, CostModel::kM2);
    const auto fresh = cold.Plan(variant, CostModel::kM2);
    EXPECT_TRUE(hit.cache_hit);
    EXPECT_FALSE(fresh.cache_hit);
    ASSERT_EQ(hit.status, fresh.status) << variant.ToString();
    if (!hit.ok()) continue;
    // Same candidate set costed against the same instances: the minimum
    // cost agrees even if tie-breaking picks a different winner.
    EXPECT_EQ(hit.choice->cost, fresh.choice->cost);
    const Relation hit_answer = warm.Execute(*hit.choice);
    const Relation fresh_answer = cold.Execute(*fresh.choice);
    EXPECT_EQ(hit_answer.SortedRows(), fresh_answer.SortedRows())
        << "hit-path and cold-path answers diverge for "
        << variant.ToString();
    // Over the canonical database the query answer contains the frozen
    // head, so the equality above is never a trivial empty == empty.
    EXPECT_FALSE(hit_answer.SortedRows().empty());
  }
  EXPECT_EQ(warmup.status, warm.Plan(w.query, CostModel::kM2).status);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanCacheMetamorphicTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace vbr
