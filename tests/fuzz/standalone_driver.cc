// Standalone replacement for libFuzzer's driver: replays files (or whole
// directories of files) through LLVMFuzzerTestOneInput. The container's
// toolchain is gcc-only — no libFuzzer — so the checked-in seed corpus runs
// through this driver as a ctest smoke test; with clang available the same
// fuzz target sources link against -fsanitize=fuzzer unchanged.
//
// Usage: <driver> <corpus-file-or-dir>...
// Exits nonzero when any input crashes the target (the process dies) or a
// path cannot be read.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool RunFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.string().c_str());
    return false;
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  size_t cases = 0;
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path path(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        ok = RunFile(file) && ok;
        ++cases;
      }
    } else {
      ok = RunFile(path) && ok;
      ++cases;
    }
  }
  std::printf("replayed %zu corpus case(s): %s\n", cases,
              ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
