// Fuzz target for the datalog parser (cq/parser.h).
//
// Invariants checked on every input:
//   - ParseProgram never crashes, whatever the bytes;
//   - anything that parses round-trips: each parsed rule's ToString()
//     re-parses, the re-parse prints identically (print/parse is a
//     fixpoint), and the re-parse is structurally EQUAL to the original
//     (term kinds survive, not just spellings).
//
// Built two ways by tests/fuzz/CMakeLists.txt: against libFuzzer when the
// toolchain has one (clang -fsanitize=fuzzer), and against the standalone
// corpus-replay driver everywhere else (gcc has no libFuzzer), so the
// checked-in corpus runs as a ctest smoke test on every configuration.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/check.h"
#include "cq/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  std::string error;
  const auto program = vbr::ParseProgram(text, &error);
  if (!program.has_value()) return 0;
  for (const vbr::ConjunctiveQuery& rule : *program) {
    const std::string printed = rule.ToString();
    std::string reparse_error;
    const auto reparsed = vbr::ParseQuery(printed, &reparse_error);
    VBR_CHECK_MSG(reparsed.has_value(),
                  "parsed rule failed to re-parse its own ToString()");
    VBR_CHECK_MSG(reparsed->ToString() == printed,
                  "print/parse round-trip is not a fixpoint");
    // Structural, not just textual: every term must keep its KIND through
    // the round trip (lower-case variable names escape as ?name now).
    VBR_CHECK_MSG(*reparsed == rule,
                  "re-parsed rule is not structurally equal to the original");
  }
  return 0;
}
