// Fuzz target for the JSON support (common/json.h).
//
// Invariants checked on every input:
//   - ParseJson never crashes — including pathological nesting (the parser
//     has a recursion-depth cap this harness exists to defend);
//   - JsonEscape of the raw input, wrapped in quotes, always parses back as
//     a string (escaping is total);
//   - when the input parses, the parsed value is traversable (the whole
//     tree is visited) without invariant violations.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/check.h"
#include "common/json.h"

namespace {

size_t CountNodes(const vbr::JsonValue& v) {
  size_t n = 1;
  for (const auto& item : v.array_items()) n += CountNodes(item);
  for (const auto& [key, member] : v.object_members()) {
    (void)key;
    n += CountNodes(member);
  }
  return n;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  std::string error;
  const auto parsed = vbr::ParseJson(text, &error);
  if (parsed.has_value()) {
    VBR_CHECK(CountNodes(*parsed) >= 1);
  } else {
    VBR_CHECK_MSG(!error.empty(), "parse failure must carry an error");
  }

  const std::string quoted = "\"" + vbr::JsonEscape(text) + "\"";
  const auto roundtrip = vbr::ParseJson(quoted);
  VBR_CHECK_MSG(roundtrip.has_value() && roundtrip->is_string(),
                "JsonEscape produced an unparseable string literal");
  return 0;
}
