// Deterministic seed-corpus generator for fuzz_vbin_decode.
//
// Usage: vbin_corpus_gen <output-dir>
//
// Emits one file per seed into <output-dir>:
//   - VALID encodings of every VBIN file kind, drawn from the workload
//     generators (queries, view programs, plans, certificates, a cache
//     snapshot saved by a real ViewPlanner, a request log);
//   - HOSTILE mutations of each class the decoder must reject cleanly:
//     truncations, single-byte flips (CRC breakage), a corrupt CRC with
//     valid content, hand-built section tables with huge claimed lengths,
//     and overlong varints.
//
// Everything is seeded, so the corpus is bit-identical across runs: the
// fuzz-smoke ctest regenerates it into the build tree and replays it.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/vbin.h"
#include "cq/parser.h"
#include "cq/vbin_codec.h"
#include "engine/materialize.h"
#include "planner/planner.h"
#include "planner/snapshot.h"
#include "rewrite/certificate.h"
#include "rewrite/vbin_codec.h"
#include "workload/generator.h"

namespace vbr {
namespace {

bool WriteCase(const std::filesystem::path& dir, const std::string& name,
               std::string_view bytes) {
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", (dir / name).string().c_str());
    return false;
  }
  return true;
}

// Deterministic corruption variants of one valid file.
void AddMutations(const std::filesystem::path& dir, const std::string& stem,
                  const std::string& bytes, bool* ok) {
  // Truncations: empty, header-only, mid-body, one byte short.
  for (size_t keep : {size_t{0}, size_t{6}, bytes.size() / 2,
                      bytes.size() - 1}) {
    if (keep >= bytes.size()) continue;
    *ok &= WriteCase(dir, stem + "_trunc" + std::to_string(keep),
                     std::string_view(bytes).substr(0, keep));
  }
  // Bit flips across the regions: magic, version, section table, body, CRC.
  for (size_t pos : {size_t{0}, size_t{4}, size_t{8}, bytes.size() / 2,
                     bytes.size() - 2}) {
    if (pos >= bytes.size()) continue;
    std::string flipped = bytes;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x5A);
    *ok &= WriteCase(dir, stem + "_flip" + std::to_string(pos), flipped);
  }
  // Valid content, corrupt trailer only.
  std::string bad_crc = bytes;
  bad_crc[bad_crc.size() - 1] = static_cast<char>(~bad_crc.back());
  *ok &= WriteCase(dir, stem + "_badcrc", bad_crc);
}

// Hand-built hostile containers: headers that lie about their sections.
void AddHostileContainers(const std::filesystem::path& dir, bool* ok) {
  auto seal = [](std::string bytes) {
    vbin::AppendU32(bytes, vbin::Crc32(bytes));
    return bytes;
  };
  const std::string header = std::string("VBIN") +
                             static_cast<char>(vbin::kContainerVersion) +
                             static_cast<char>(1) +  // kind = kQuery
                             std::string(2, '\0');

  // A section claiming ~16 EiB of payload in a 20-byte file.
  {
    std::string bytes = header;
    vbin::AppendVarint(bytes, 1);  // one section
    vbin::AppendVarint(bytes, 2);  // tag: body
    vbin::AppendVarint(bytes, uint64_t{1} << 60);
    *ok &= WriteCase(dir, "hostile_huge_section", seal(bytes));
  }
  // A section COUNT larger than the file, each entry tiny.
  {
    std::string bytes = header;
    vbin::AppendVarint(bytes, uint64_t{1} << 40);
    *ok &= WriteCase(dir, "hostile_huge_count", seal(bytes));
  }
  // Overlong varint (11 continuation bytes) where the count belongs.
  {
    std::string bytes = header + std::string(11, '\x80');
    *ok &= WriteCase(dir, "hostile_overlong_varint", seal(bytes));
  }
  // A string pool whose element count lies.
  {
    vbin::FileWriter writer(vbin::FileKind::kQuery);
    writer.Intern("x");
    std::string bytes = std::move(writer).Finish();
    // Inflate the pool's count varint (single byte 1 -> 0x7F) in place:
    // find the pool payload right after the section table and bump it.
    bytes[bytes.size() - 4 - 3] = '\x7F';
    std::string resealed = bytes.substr(0, bytes.size() - 4);
    *ok &= WriteCase(dir, "hostile_pool_count", seal(resealed));
  }
  // Not VBIN at all.
  *ok &= WriteCase(dir, "not_vbin", "q(X) :- e(X,X).");
  *ok &= WriteCase(dir, "zeros", std::string(64, '\0'));
}

int Generate(const std::filesystem::path& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  bool ok = true;

  // -- Valid files from generated workloads ---------------------------------
  for (uint64_t seed : {1u, 7u, 23u}) {
    WorkloadConfig config;
    config.shape = (seed % 2 == 0) ? QueryShape::kChain : QueryShape::kStar;
    config.num_query_subgoals = 3;
    config.num_views = 6;
    config.ensure_rewriting_exists = true;
    config.seed = seed;
    const Workload w = GenerateWorkload(config);
    const std::string tag = std::to_string(seed);

    const std::string query_bytes = EncodeQueryFile(w.query);
    ok &= WriteCase(dir, "query_" + tag, query_bytes);
    AddMutations(dir, "query_" + tag, query_bytes, &ok);

    const std::string program_bytes = EncodeProgramFile(w.views);
    ok &= WriteCase(dir, "program_" + tag, program_bytes);
    AddMutations(dir, "program_" + tag, program_bytes, &ok);

    // A snapshot from a real planner over this workload, plus the
    // certificate and plan files of its chosen rewriting.
    ViewPlanner planner(w.views, MaterializeViews(w.views, Database()));
    const auto result = planner.Plan(w.query, CostModel::kM2);
    if (result.ok()) {
      const std::string cert_bytes =
          EncodeCertificateFile(result.choice->certificate);
      ok &= WriteCase(dir, "certificate_" + tag, cert_bytes);
      AddMutations(dir, "certificate_" + tag, cert_bytes, &ok);

      PlanRecord plan;
      plan.rewriting = result.choice->logical;
      ok &= WriteCase(dir, "plan_" + tag, EncodePlanFile(plan));
    }
    const std::string snapshot_path = (dir / ("snapshot_" + tag)).string();
    if (!planner.SaveSnapshot(snapshot_path).ok()) ok = false;
    std::string snapshot_bytes;
    if (vbin::ReadWholeFile(snapshot_path, &snapshot_bytes).ok()) {
      AddMutations(dir, "snapshot_" + tag, snapshot_bytes, &ok);
    }
  }

  // A request log with mixed options, plus a torn tail variant.
  {
    std::string log;
    for (int i = 0; i < 3; ++i) {
      RequestLogRecord record;
      std::string text = "q";
      text += std::to_string(i);
      text += "(X) :- e(X,X).";
      record.query = *ParseQuery(text);
      record.options.model = static_cast<CostModel>(i % 3);
      record.options.work_limit = 1000 * i;
      const std::string frame = EncodeRequestLogRecord(record);
      const uint32_t length = static_cast<uint32_t>(frame.size());
      for (int b = 0; b < 4; ++b) {
        log.push_back(static_cast<char>((length >> (8 * b)) & 0xFF));
      }
      log += frame;
      if (i == 0) ok &= WriteCase(dir, "request_record", frame);
    }
    ok &= WriteCase(dir, "request_log", log);
    ok &= WriteCase(dir, "request_log_torn",
                    std::string_view(log).substr(0, log.size() - 7));
  }

  AddHostileContainers(dir, &ok);
  if (!ok) return 1;
  std::printf("vbin corpus written to %s\n", dir.string().c_str());
  return 0;
}

}  // namespace
}  // namespace vbr

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  return vbr::Generate(argv[1]);
}
