// Fuzz target for the VBIN binary format (common/vbin.h) and every codec
// layered on it: query / program / plan / certificate files, cache
// snapshots, and request logs.
//
// Invariants checked on every input:
//   - no decoder ever crashes, aborts, or over-reads, whatever the bytes
//     (truncations, bit flips, hostile section tables, huge varint counts
//     — the seed corpus covers each class deliberately);
//   - any input that DOES decode is canonical: re-encoding the decoded
//     value reproduces the input byte for byte (queries, programs, plans,
//     certificates), so there is exactly one encoding per value;
//   - a parsed request log re-encodes to records that parse again.
//
// Built by tests/fuzz/CMakeLists.txt either against libFuzzer (clang) or
// the standalone corpus-replay driver (gcc), like the other targets.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/vbin.h"
#include "cq/vbin_codec.h"
#include "planner/snapshot.h"
#include "rewrite/vbin_codec.h"

namespace {

// decode(bytes) ok => encode(decode(bytes)) == bytes.
template <typename Value, typename Decode, typename Encode>
void CheckCanonical(std::string_view bytes, Decode decode, Encode encode,
                    const char* what) {
  Value value;
  const vbr::vbin::Status status = decode(bytes, &value);
  if (!status.ok()) return;
  const std::string reencoded = encode(value);
  VBR_CHECK_MSG(reencoded == bytes, what);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  CheckCanonical<vbr::ConjunctiveQuery>(
      bytes, [](auto b, auto* v) { return vbr::DecodeQueryFile(b, v); },
      [](const auto& v) { return vbr::EncodeQueryFile(v); },
      "query file decode/encode is not canonical");

  CheckCanonical<std::vector<vbr::ConjunctiveQuery>>(
      bytes, [](auto b, auto* v) { return vbr::DecodeProgramFile(b, v); },
      [](const auto& v) { return vbr::EncodeProgramFile(v); },
      "program file decode/encode is not canonical");

  CheckCanonical<vbr::PlanRecord>(
      bytes, [](auto b, auto* v) { return vbr::DecodePlanFile(b, v); },
      [](const auto& v) { return vbr::EncodePlanFile(v); },
      "plan file decode/encode is not canonical");

  CheckCanonical<vbr::EquivalenceCertificate>(
      bytes, [](auto b, auto* v) { return vbr::DecodeCertificateFile(b, v); },
      [](const auto& v) { return vbr::EncodeCertificateFile(v); },
      "certificate file decode/encode is not canonical");

  CheckCanonical<vbr::RequestLogRecord>(
      bytes,
      [](auto b, auto* v) { return vbr::DecodeRequestLogRecord(b, v); },
      [](const auto& v) { return vbr::EncodeRequestLogRecord(v); },
      "request log record decode/encode is not canonical");

  // Snapshots persist shared_ptr-held cache entries, so equality is not
  // byte-for-byte comparable here; assert decode → encode → decode settles.
  {
    vbr::PlanCacheSnapshot snapshot;
    if (vbr::DecodeSnapshotBytes(bytes, &snapshot).ok()) {
      const std::string reencoded = vbr::EncodeSnapshotBytes(snapshot);
      vbr::PlanCacheSnapshot again;
      VBR_CHECK_MSG(vbr::DecodeSnapshotBytes(reencoded, &again).ok(),
                    "re-encoded snapshot failed to decode");
      VBR_CHECK_MSG(again.entries.size() == snapshot.entries.size(),
                    "re-encoded snapshot changed entry count");
    }
  }

  // Request logs tolerate torn tails by design: whatever parses must
  // re-encode into a log that parses to the same records.
  {
    std::vector<vbr::RequestLogRecord> records;
    if (vbr::ParseRequestLog(bytes, &records).ok() && !records.empty()) {
      std::string rebuilt;
      for (const vbr::RequestLogRecord& record : records) {
        const std::string frame = vbr::EncodeRequestLogRecord(record);
        const uint32_t length = static_cast<uint32_t>(frame.size());
        for (int b = 0; b < 4; ++b) {
          rebuilt.push_back(static_cast<char>((length >> (8 * b)) & 0xFF));
        }
        rebuilt += frame;
      }
      std::vector<vbr::RequestLogRecord> again;
      size_t truncated = 0;
      VBR_CHECK_MSG(vbr::ParseRequestLog(rebuilt, &again, &truncated).ok(),
                    "rebuilt request log failed to parse");
      VBR_CHECK_MSG(truncated == 0 && again.size() == records.size(),
                    "rebuilt request log lost records");
    }
  }
  return 0;
}
