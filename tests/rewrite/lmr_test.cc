#include "rewrite/lmr.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cq/containment.h"
#include "cq/parser.h"
#include "tests/rewrite/fixtures.h"

namespace vbr {
namespace {

using testing_fixtures::CarLocPartP;
using testing_fixtures::CarLocPartQuery;
using testing_fixtures::CarLocPartViews;
using testing_fixtures::Example31Query;
using testing_fixtures::Example31Views;

TEST(LmrTest, PaperP1P2AreLmrsP3IsNot) {
  const auto q = CarLocPartQuery();
  const ViewSet views = CarLocPartViews();
  EXPECT_TRUE(IsLocallyMinimalRewriting(CarLocPartP(1), q, views));
  EXPECT_TRUE(IsLocallyMinimalRewriting(CarLocPartP(2), q, views));
  // P3 contains the removable filter v3(S).
  EXPECT_FALSE(IsLocallyMinimalRewriting(CarLocPartP(3), q, views));
  EXPECT_TRUE(IsLocallyMinimalRewriting(CarLocPartP(4), q, views));
  EXPECT_TRUE(IsLocallyMinimalRewriting(CarLocPartP(5), q, views));
}

TEST(LmrTest, MakeLocallyMinimalDropsFilter) {
  const auto q = CarLocPartQuery();
  const ViewSet views = CarLocPartViews();
  const auto lmr = MakeLocallyMinimal(CarLocPartP(3), q, views);
  EXPECT_EQ(lmr.num_subgoals(), 2u);
  EXPECT_TRUE(IsLocallyMinimalRewriting(lmr, q, views));
}

TEST(LmrTest, MakeLocallyMinimalKeepsLmrIntact) {
  const auto q = CarLocPartQuery();
  const ViewSet views = CarLocPartViews();
  EXPECT_EQ(MakeLocallyMinimal(CarLocPartP(1), q, views).num_subgoals(), 3u);
}

TEST(LmrTest, PartialOrderOfPaperFigure2a) {
  // Figure 2(a) orders the four LMRs of the car-loc-part example. As
  // queries (containment mappings are over the *view* predicates), the only
  // proper containment is P2 ⊂ P1: P5 replaces one v1 literal by the
  // differently-named v5, so no mapping into or out of it exists, and P4's
  // v4 literal appears nowhere else.
  const auto q = CarLocPartQuery();
  std::vector<ConjunctiveQuery> lmrs = {CarLocPartP(1), CarLocPartP(2),
                                        CarLocPartP(4), CarLocPartP(5)};
  const auto edges = ProperContainmentEdges(lmrs);
  std::set<std::pair<size_t, size_t>> edge_set(edges.begin(), edges.end());
  // Indices: 0=P1, 1=P2, 2=P4, 3=P5.
  EXPECT_TRUE(edge_set.count({1, 0}));  // P2 properly contained in P1.
  EXPECT_FALSE(edge_set.count({0, 1}));
  EXPECT_FALSE(edge_set.count({1, 2}));  // P2 vs P4 incomparable.
  EXPECT_FALSE(edge_set.count({2, 1}));
  EXPECT_FALSE(edge_set.count({0, 3}));  // P1 vs P5 incomparable.
  EXPECT_FALSE(edge_set.count({3, 0}));
}

TEST(LmrTest, Lemma31ContainedLmrHasNoMoreSubgoals) {
  const auto q = CarLocPartQuery();
  const ViewSet views = CarLocPartViews();
  std::vector<ConjunctiveQuery> lmrs = {CarLocPartP(1), CarLocPartP(2),
                                        CarLocPartP(4), CarLocPartP(5)};
  for (const auto& [i, j] : ProperContainmentEdges(lmrs)) {
    EXPECT_LE(lmrs[i].num_subgoals(), lmrs[j].num_subgoals())
        << "Lemma 3.1 violated";
  }
}

TEST(LmrTest, ContainmentMinimalOfCarLocPart) {
  std::vector<ConjunctiveQuery> lmrs = {CarLocPartP(1), CarLocPartP(2),
                                        CarLocPartP(4), CarLocPartP(5)};
  const auto minimal = ContainmentMinimalIndices(lmrs);
  // Only P1 (index 0) has another LMR (P2) properly inside it.
  EXPECT_EQ(minimal, (std::vector<size_t>{1, 2, 3}));
}

TEST(LmrTest, Example31ChainPartialOrder) {
  // Figure 2(b): P1 < P2 < P3 as queries, all LMRs.
  const auto q = Example31Query();
  const ViewSet views = Example31Views();
  const auto p1 = MustParseQuery("q(X,Y,Z) :- v(X,Y,Z,c)");
  const auto p2 = MustParseQuery("q(X,Y,Z) :- v(X,Y,Z1,c), v(X1,Y1,Z,c)");
  const auto p3 = MustParseQuery(
      "q(X,Y,Z) :- v(X,Y1,Z1,c), v(X2,Y,Z2,c), v(X3,Y3,Z,c)");
  EXPECT_TRUE(IsLocallyMinimalRewriting(p1, q, views));
  EXPECT_TRUE(IsLocallyMinimalRewriting(p2, q, views));
  EXPECT_TRUE(IsLocallyMinimalRewriting(p3, q, views));
  EXPECT_TRUE(IsProperlyContainedIn(p1, p2));
  EXPECT_TRUE(IsProperlyContainedIn(p2, p3));
  EXPECT_TRUE(IsProperlyContainedIn(p1, p3));
}

TEST(LmrTest, GmrNeedNotBeCmr) {
  // Section 3.2: both q(X) :- v(X,B) and q(X) :- v(X,X) are GMRs; the
  // former properly contains the latter, so a GMR need not be a CMR.
  const auto q = testing_fixtures::SelfLoopQuery();
  const ViewSet views = testing_fixtures::SelfLoopViews();
  const auto p1 = MustParseQuery("q(X) :- v(X,B)");
  const auto p2 = MustParseQuery("q(X) :- v(X,X)");
  EXPECT_TRUE(IsLocallyMinimalRewriting(p1, q, views));
  EXPECT_TRUE(IsLocallyMinimalRewriting(p2, q, views));
  EXPECT_TRUE(IsProperlyContainedIn(p2, p1));
}

TEST(LmrTest, EnumerateLmrsOverViewTuplesFindsCarLocPartPair) {
  const auto q = CarLocPartQuery();
  const ViewSet views = CarLocPartViews();
  const auto lmrs = EnumerateLmrsOverViewTuples(q, views, 3);
  std::set<std::string> texts;
  for (const auto& p : lmrs) texts.insert(p.ToString());
  // Over view tuples the LMRs are {v4} and {v1,v2} (modulo v5 duplicates of
  // v1 and subgoal order).
  EXPECT_TRUE(texts.count("q1(S,C) :- v4(M,a,C,S)"));
  bool has_v1v2 = false;
  for (const auto& t : texts) {
    if (t.find("v1(M,a,C)") != std::string::npos &&
        t.find("v2(S,M,C)") != std::string::npos) {
      has_v1v2 = true;
    }
  }
  EXPECT_TRUE(has_v1v2);
  for (const auto& p : lmrs) {
    EXPECT_TRUE(IsLocallyMinimalRewriting(p, q, views));
  }
}

}  // namespace
}  // namespace vbr
