#include "rewrite/rewriting.h"

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "tests/rewrite/fixtures.h"

namespace vbr {
namespace {

using testing_fixtures::CarLocPartP;
using testing_fixtures::CarLocPartQuery;
using testing_fixtures::CarLocPartViews;

TEST(RewritingTest, UsesOnlyViews) {
  const ViewSet views = CarLocPartViews();
  EXPECT_TRUE(UsesOnlyViews(CarLocPartP(2), views));
  const auto mixed = MustParseQuery("q1(S,C) :- v2(S,M,C), car(M,a)");
  EXPECT_FALSE(UsesOnlyViews(mixed, views));
}

TEST(RewritingTest, AllFivePaperRewritingsAreEquivalent) {
  const ViewSet views = CarLocPartViews();
  const ConjunctiveQuery q = CarLocPartQuery();
  for (int i = 1; i <= 5; ++i) {
    EXPECT_TRUE(IsEquivalentRewriting(CarLocPartP(i), q, views))
        << "P" << i << " should be an equivalent rewriting";
  }
}

TEST(RewritingTest, DroppingANeededSubgoalBreaksEquivalence) {
  const ViewSet views = CarLocPartViews();
  const ConjunctiveQuery q = CarLocPartQuery();
  // v2 alone loses the car/loc constraints.
  const auto p = MustParseQuery("q1(S,C) :- v2(S,M,C)");
  EXPECT_FALSE(IsEquivalentRewriting(p, q, views));
}

TEST(RewritingTest, ContainedButNotEquivalentRewriting) {
  const ViewSet views = CarLocPartViews();
  const ConjunctiveQuery q = CarLocPartQuery();
  // Requiring the same city twice through v4 with S repeated is contained
  // but stricter... use a genuinely stricter plan: v4 plus an extra v3
  // filter on a *different* variable role.
  const auto strict =
      MustParseQuery("q1(S,C) :- v4(M,a,C,S), v4(M,a,C1,S), v3(C1)");
  EXPECT_TRUE(ExpansionContainedInQuery(strict, q, views));
  EXPECT_FALSE(IsEquivalentRewriting(strict, q, views));
}

TEST(RewritingTest, WrongHeadOrderIsNotARewriting) {
  const ViewSet views = CarLocPartViews();
  const ConjunctiveQuery q = CarLocPartQuery();
  const auto flipped = MustParseQuery("q1(C,S) :- v4(M,a,C,S)");
  EXPECT_FALSE(IsEquivalentRewriting(flipped, q, views));
}

TEST(RewritingTest, ExpansionContainmentIsOneDirectional) {
  const ViewSet views = CarLocPartViews();
  const ConjunctiveQuery q = CarLocPartQuery();
  // v1 alone: expansion car(M,a), loc(a,C) does NOT imply part exists, so
  // it is not contained in Q (it returns more tuples).
  const auto loose = MustParseQuery("q1(M,C) :- v1(M,a,C)");
  EXPECT_FALSE(ExpansionContainedInQuery(loose, q, views));
}

TEST(RewritingTest, SelfJoinViewExample) {
  // Section 3.2: Q: q(X) :- e(X,X); V: v(A,B) :- e(A,A), e(A,B).
  const auto q = testing_fixtures::SelfLoopQuery();
  const ViewSet views = testing_fixtures::SelfLoopViews();
  EXPECT_TRUE(IsEquivalentRewriting(MustParseQuery("q(X) :- v(X,B)"), q,
                                    views));
  EXPECT_TRUE(IsEquivalentRewriting(MustParseQuery("q(X) :- v(X,X)"), q,
                                    views));
}

}  // namespace
}  // namespace vbr
