// Additional union-query edge cases.

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "engine/evaluator.h"
#include "rewrite/union_rewriting.h"

namespace vbr {
namespace {

TEST(UnionEdgeTest, OverlappingDisjunctsDeduplicate) {
  Database db;
  db.AddRow("r", {1, 2});
  db.AddRow("r", {2, 2});
  const UnionQuery u({MustParseQuery("q(X) :- r(X,Y)"),
                      MustParseQuery("q(X) :- r(X,2)")});
  // Both disjuncts produce {1, 2}; the union must not double-count.
  EXPECT_EQ(EvaluateUnion(u, db).size(), 2u);
}

TEST(UnionEdgeTest, SingleDisjunctBehavesLikeTheCq) {
  Database db;
  db.AddRow("r", {5});
  const auto q = MustParseQuery("q(X) :- r(X)");
  const UnionQuery u({q});
  EXPECT_TRUE(EvaluateUnion(u, db).EqualsAsSet(EvaluateQuery(q, db)));
  EXPECT_TRUE(AreEquivalent(u, UnionQuery({q})));
}

TEST(UnionEdgeTest, ContainmentIsPerDisjunctNotPointwise) {
  // Classic: q(X) :- r(X,Y) is NOT contained in either specialized
  // disjunct alone, and CQ containment in a union reduces to containment
  // in some disjunct, so the union does not contain it either.
  const UnionQuery general({MustParseQuery("q(X) :- r(X,Y)")});
  const UnionQuery special({MustParseQuery("q(X) :- r(X,a)"),
                            MustParseQuery("q(X) :- r(X,X)")});
  EXPECT_TRUE(IsContainedIn(special, general));
  EXPECT_FALSE(IsContainedIn(general, special));
}

TEST(UnionEdgeTest, BuiltinDisjunctsEvaluate) {
  Database db;
  for (Value i = 0; i < 10; ++i) db.AddRow("r", {i, 9 - i});
  const UnionQuery u({MustParseQuery("q(X,Y) :- r(X,Y), X < Y"),
                      MustParseQuery("q(X,Y) :- r(X,Y), Y < X")});
  // Everything except the X == Y rows (none here since 9 is odd... check:
  // pairs (i, 9-i): equality would need i = 4.5, impossible -> all 10).
  EXPECT_EQ(EvaluateUnion(u, db).size(), 10u);
}

TEST(UnionEdgeTest, TotalSubgoalsSums) {
  const UnionQuery u({MustParseQuery("q(X) :- a(X), b(X)"),
                      MustParseQuery("q(X) :- c(X)")});
  EXPECT_EQ(u.TotalSubgoals(), 3u);
  EXPECT_EQ(u.num_disjuncts(), 2u);
}

TEST(UnionEdgeDeathTest, MismatchedHeadArityAborts) {
  std::vector<ConjunctiveQuery> disjuncts = {
      MustParseQuery("q(X) :- r(X)"), MustParseQuery("q(X,Y) :- r(X), s(Y)")};
  EXPECT_DEATH(UnionQuery{disjuncts}, "head arity");
}

TEST(UnionEdgeDeathTest, EmptyUnionAborts) {
  std::vector<ConjunctiveQuery> none;
  EXPECT_DEATH(UnionQuery{none}, "disjunct");
}

}  // namespace
}  // namespace vbr
