#include "rewrite/union_rewriting.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cq/parser.h"
#include "engine/evaluator.h"
#include "engine/materialize.h"

namespace vbr {
namespace {

// The Section 8 closing example.
ConjunctiveQuery Section8Query() {
  return MustParseQuery("q(X,Y,U,W) :- p(X,Y), r(U,W), r(W,U)");
}

ViewSet Section8Views() {
  return MustParseProgram(R"(
    v1(A,B,C,D) :- p(A,B), r(C,D), C <= D
    v2(E,F) :- r(E,F)
  )");
}

UnionQuery Section8P1() {
  return UnionQuery({
      MustParseQuery("q(X,Y,U,W) :- v1(X,Y,U,W), v2(W,U)"),
      MustParseQuery("q(X,Y,U,W) :- v1(X,Y,W,U), v2(U,W)"),
  });
}

UnionQuery Section8P2() {
  return UnionQuery(
      {MustParseQuery("q(X,Y,U,W) :- v1(X,Y,C,D), v2(U,W), v2(W,U)")});
}

Database RandomBase(uint64_t seed) {
  Rng rng(seed);
  Database db;
  for (int i = 0; i < 12; ++i) {
    db.AddRow("p", {rng.UniformInt(0, 5), rng.UniformInt(0, 5)});
    db.AddRow("r", {rng.UniformInt(0, 5), rng.UniformInt(0, 5)});
  }
  // Guarantee some symmetric r pairs so the query is nonempty.
  db.AddRow("r", {2, 4});
  db.AddRow("r", {4, 2});
  db.AddRow("r", {3, 3});
  return db;
}

TEST(UnionQueryTest, BasicAccessorsAndCostShape) {
  const UnionQuery p1 = Section8P1();
  const UnionQuery p2 = Section8P2();
  EXPECT_EQ(p1.num_disjuncts(), 2u);
  EXPECT_EQ(p1.TotalSubgoals(), 4u);  // 2 CQs x 2 subgoals.
  EXPECT_EQ(p2.num_disjuncts(), 1u);
  EXPECT_EQ(p2.TotalSubgoals(), 3u);  // 1 CQ x 3 subgoals.
  EXPECT_EQ(p1.head_arity(), 4u);
}

TEST(UnionQueryTest, EvaluateUnionIsSetUnion) {
  Database db;
  db.AddRow("r", {1, 2});
  db.AddRow("s", {2, 3});
  const UnionQuery u({MustParseQuery("q(X,Y) :- r(X,Y)"),
                      MustParseQuery("q(X,Y) :- s(X,Y)")});
  const Relation result = EvaluateUnion(u, db);
  EXPECT_EQ(result.size(), 2u);
  EXPECT_TRUE(result.Contains({1, 2}));
  EXPECT_TRUE(result.Contains({2, 3}));
}

TEST(UnionContainmentTest, SagivYannakakis) {
  const UnionQuery small({MustParseQuery("q(X) :- r(X,X)")});
  const UnionQuery big({MustParseQuery("q(X) :- r(X,Y)"),
                        MustParseQuery("q(X) :- s(X)")});
  EXPECT_TRUE(IsContainedIn(small, big));
  EXPECT_FALSE(IsContainedIn(big, small));
  EXPECT_FALSE(AreEquivalent(small, big));
}

TEST(UnionContainmentTest, UnionEquivalentToSingleCq) {
  // Two disjuncts that each fold into the other's generalization.
  const UnionQuery u({MustParseQuery("q(X) :- r(X,Y)"),
                      MustParseQuery("q(X) :- r(X,c)")});
  const UnionQuery single({MustParseQuery("q(X) :- r(X,Y)")});
  EXPECT_TRUE(AreEquivalent(u, single));
}

TEST(UnionRewritingTest, ComparisonFreeSymbolicEquivalence) {
  // Union rewriting against comparison-free views.
  const auto q = MustParseQuery("q(X) :- a(X), b(X)");
  const auto views = MustParseProgram(R"(
    va(X) :- a(X), b(X)
    vb(X) :- b(X)
  )");
  const UnionQuery good({MustParseQuery("q(X) :- va(X)")});
  const UnionQuery bad({MustParseQuery("q(X) :- vb(X)")});
  EXPECT_TRUE(IsEquivalentUnionRewriting(good, q, views));
  EXPECT_FALSE(IsEquivalentUnionRewriting(bad, q, views));
}

TEST(UnionRewritingTest, Section8BothRewritingsComputeTheAnswer) {
  // Operational validation of the paper's P1 and P2 across random
  // instances (symbolic equivalence with <= is out of scope).
  const ConjunctiveQuery q = Section8Query();
  const ViewSet views = Section8Views();
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const Database base = RandomBase(seed);
    const Database view_db = MaterializeViews(views, base);
    const Relation expected = EvaluateQuery(q, base);
    EXPECT_TRUE(EvaluateUnion(Section8P1(), view_db).EqualsAsSet(expected))
        << "P1 wrong at seed " << seed;
    EXPECT_TRUE(EvaluateUnion(Section8P2(), view_db).EqualsAsSet(expected))
        << "P2 wrong at seed " << seed;
    if (seed == 1) EXPECT_GT(expected.size(), 0u);
  }
}

TEST(UnionRewritingTest, Section8ViewsMaterializeWithComparison) {
  const Database base = RandomBase(3);
  const Database view_db = MaterializeViews(Section8Views(), base);
  const Relation* v1 = view_db.Find(SymbolTable::Global().Intern("v1"));
  ASSERT_NE(v1, nullptr);
  for (size_t i = 0; i < v1->size(); ++i) {
    EXPECT_LE(v1->row(i)[2], v1->row(i)[3]);  // C <= D enforced.
  }
}

TEST(UnionRewritingDeathTest, SymbolicCheckRejectsComparisonViews) {
  const ConjunctiveQuery q = Section8Query();
  EXPECT_DEATH(
      IsEquivalentUnionRewriting(Section8P1(), q, Section8Views()),
      "comparison-free");
}

}  // namespace
}  // namespace vbr
