#include "rewrite/tuple_core.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "cq/containment.h"
#include "cq/parser.h"
#include "tests/rewrite/fixtures.h"

namespace vbr {
namespace {

using testing_fixtures::CarLocPartQuery;
using testing_fixtures::CarLocPartViews;
using testing_fixtures::Example41Query;
using testing_fixtures::Example41Views;

// Maps tuple text -> covered subgoal indices for all tuples of (query,
// views).
std::map<std::string, std::vector<size_t>> CoresByTuple(
    const ConjunctiveQuery& query, const ViewSet& views) {
  const ConjunctiveQuery minimal = Minimize(query);
  std::map<std::string, std::vector<size_t>> out;
  for (const ViewTuple& t : ComputeViewTuples(minimal, views)) {
    out[t.atom.ToString()] = ComputeTupleCore(minimal, t, views).covered;
  }
  return out;
}

TEST(TupleCoreTest, Example41Table2) {
  // Table 2 of the paper:
  //   v1(X,Z) covers {a(X,Z), a(Z,Z)}; v1(Z,Z) covers {a(Z,Z)};
  //   v2(Z,Y) covers {b(Z,Y)}.
  // Query subgoals: 0: a(X,Z), 1: a(Z,Z), 2: b(Z,Y).
  const auto cores = CoresByTuple(Example41Query(), Example41Views());
  ASSERT_EQ(cores.size(), 3u);
  EXPECT_EQ(cores.at("v1(X,Z)"), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(cores.at("v1(Z,Z)"), (std::vector<size_t>{1}));
  EXPECT_EQ(cores.at("v2(Z,Y)"), (std::vector<size_t>{2}));
}

TEST(TupleCoreTest, CarLocPartCores) {
  // v1, v2, v4, v5 cover per the paper; v3 has an EMPTY tuple-core because
  // the distinguished variable C would have to map to an existential.
  const auto cores = CoresByTuple(CarLocPartQuery(), CarLocPartViews());
  // Subgoals: 0: car(M,a), 1: loc(a,C), 2: part(S,M,C).
  EXPECT_EQ(cores.at("v1(M,a,C)"), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(cores.at("v5(M,a,C)"), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(cores.at("v2(S,M,C)"), (std::vector<size_t>{2}));
  EXPECT_EQ(cores.at("v4(M,a,C,S)"), (std::vector<size_t>{0, 1, 2}));
  EXPECT_TRUE(cores.at("v3(S)").empty());
}

TEST(TupleCoreTest, MappingWitnessIsIdentityOnTupleArguments) {
  const ConjunctiveQuery q = Example41Query();
  const ViewSet views = Example41Views();
  for (const ViewTuple& t : ComputeViewTuples(q, views)) {
    const TupleCore core = ComputeTupleCore(q, t, views);
    for (Term arg : t.atom.args()) {
      if (!arg.is_variable()) continue;
      if (auto image = core.mapping.Lookup(arg)) {
        EXPECT_EQ(*image, arg) << t.atom.ToString();
      }
    }
  }
}

TEST(TupleCoreTest, Property3PullsInAllSubgoalsOfExistentialVariable) {
  // View v(X) :- a(X,Z), b(Z) hides Z. A query using Z in two subgoals can
  // only be covered wholesale.
  const auto q = MustParseQuery("q(X) :- a(X,Z), b(Z)");
  const auto views = MustParseProgram("v(X) :- a(X,Z), b(Z)");
  const auto cores = CoresByTuple(q, views);
  EXPECT_EQ(cores.at("v(X)"), (std::vector<size_t>{0, 1}));
}

TEST(TupleCoreTest, Property3ForcesEmptyCoreWhenPartnerSubgoalUncoverable) {
  // v(X) :- a(X,Z): the expansion hides Z, but the query also needs c(Z)
  // which v cannot supply, so including a(X,Z) would violate property (3):
  // the core is empty.
  const auto q = MustParseQuery("q(X) :- a(X,Z), c(Z)");
  const auto views = MustParseProgram("v(X) :- a(X,Z)");
  const auto cores = CoresByTuple(q, views);
  EXPECT_TRUE(cores.at("v(X)").empty());
}

TEST(TupleCoreTest, DistinguishedVariableToExistentialIsRejected) {
  // Query head exposes Z; view hides it: empty core (paper's v3 pattern).
  const auto q = MustParseQuery("q(X,Z) :- a(X,Z)");
  const auto views = MustParseProgram("v(X) :- a(X,Z)");
  const auto cores = CoresByTuple(q, views);
  EXPECT_TRUE(cores.at("v(X)").empty());
}

TEST(TupleCoreTest, SharedVariableThroughTupleArgsAllowsPartialCover) {
  // View exposes Z, so covering only a(X,Z) is fine.
  const auto q = MustParseQuery("q(X) :- a(X,Z), c(Z)");
  const auto views = MustParseProgram("v(X,Z) :- a(X,Z)");
  const auto cores = CoresByTuple(q, views);
  EXPECT_EQ(cores.at("v(X,Z)"), (std::vector<size_t>{0}));
}

TEST(TupleCoreTest, InjectivityBlocksCollapsedCover) {
  // Expansion a(X,X) cannot cover a(X,Y) of the query: X and Y would both
  // map to X, violating property (1).
  const auto q = MustParseQuery("q(X,Y) :- a(X,Y), a(Y,Y)");
  const auto views = MustParseProgram("v(A) :- a(A,A)");
  const auto cores = CoresByTuple(q, views);
  // Tuple v(Y): expansion a(Y,Y) covers subgoal 1 only.
  EXPECT_EQ(cores.at("v(Y)"), (std::vector<size_t>{1}));
}

TEST(TupleCoreTest, Example42SingleTupleCoversWholeQuery) {
  // Example 4.2 with k = 3: the view identical to the query covers all 2k
  // subgoals.
  const auto q = MustParseQuery(
      "q(X,Y) :- a1(X,Z1), b1(Z1,Y), a2(X,Z2), b2(Z2,Y), a3(X,Z3), "
      "b3(Z3,Y)");
  const auto views = MustParseProgram(R"(
    v(X,Y) :- a1(X,Z1), b1(Z1,Y), a2(X,Z2), b2(Z2,Y), a3(X,Z3), b3(Z3,Y)
    v1(X,Y) :- a1(X,Z1), b1(Z1,Y)
    v2(X,Y) :- a2(X,Z2), b2(Z2,Y)
  )");
  const auto cores = CoresByTuple(q, views);
  EXPECT_EQ(cores.at("v(X,Y)"), (std::vector<size_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(cores.at("v1(X,Y)"), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(cores.at("v2(X,Y)"), (std::vector<size_t>{2, 3}));
}

TEST(TupleCoreTest, CoreMaskMatchesCoveredList) {
  const ConjunctiveQuery q = Minimize(CarLocPartQuery());
  const ViewSet views = CarLocPartViews();
  for (const ViewTuple& t : ComputeViewTuples(q, views)) {
    const TupleCore core = ComputeTupleCore(q, t, views);
    uint64_t mask = 0;
    for (size_t i : core.covered) mask |= uint64_t{1} << i;
    EXPECT_EQ(mask, core.covered_mask);
    EXPECT_EQ(core.size(), core.covered.size());
    EXPECT_EQ(core.empty(), core.covered.empty());
  }
}

}  // namespace
}  // namespace vbr
