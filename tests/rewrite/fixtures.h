#ifndef VBR_TESTS_REWRITE_FIXTURES_H_
#define VBR_TESTS_REWRITE_FIXTURES_H_

#include "cq/parser.h"
#include "cq/query.h"

namespace vbr {
namespace testing_fixtures {

// The paper's running example (Example 1.1), abbreviating anderson as "a".
inline ConjunctiveQuery CarLocPartQuery() {
  return MustParseQuery("q1(S,C) :- car(M,a), loc(a,C), part(S,M,C)");
}

inline ViewSet CarLocPartViews() {
  return MustParseProgram(R"(
    v1(M,D,C) :- car(M,D), loc(D,C)
    v2(S,M,C) :- part(S,M,C)
    v3(S) :- car(M,a), loc(a,C), part(S,M,C)
    v4(M,D,C,S) :- car(M,D), loc(D,C), part(S,M,C)
    v5(M,D,C) :- car(M,D), loc(D,C)
  )");
}

// The paper's rewritings P1..P5 of the car-loc-part query.
inline ConjunctiveQuery CarLocPartP(int i) {
  switch (i) {
    case 1:
      return MustParseQuery(
          "q1(S,C) :- v1(M,a,C1), v1(M1,a,C), v2(S,M,C)");
    case 2:
      return MustParseQuery("q1(S,C) :- v1(M,a,C), v2(S,M,C)");
    case 3:
      return MustParseQuery("q1(S,C) :- v3(S), v1(M,a,C), v2(S,M,C)");
    case 4:
      return MustParseQuery("q1(S,C) :- v4(M,a,C,S)");
    default:
      return MustParseQuery(
          "q1(S,C) :- v1(M,a,C1), v5(M1,a,C), v2(S,M,C)");
  }
}

// Example 4.1: tuple-core illustration.
inline ConjunctiveQuery Example41Query() {
  return MustParseQuery("q(X,Y) :- a(X,Z), a(Z,Z), b(Z,Y)");
}

inline ViewSet Example41Views() {
  return MustParseProgram(R"(
    v1(A,B) :- a(A,B), a(B,B)
    v2(C,D) :- a(C,E), b(C,D)
  )");
}

// Example 3.1: the LMR chain.
inline ConjunctiveQuery Example31Query() {
  return MustParseQuery("q(X,Y,Z) :- e1(X,c), e2(Y,c), e3(Z,c)");
}

inline ViewSet Example31Views() {
  return MustParseProgram(
      "v(X,Y,Z,W) :- e1(X,W), e2(Y,W), e3(Z,W)");
}

// Section 3.2: the GMR-that-is-not-a-CMR example.
inline ConjunctiveQuery SelfLoopQuery() {
  return MustParseQuery("q(X) :- e(X,X)");
}

inline ViewSet SelfLoopViews() {
  return MustParseProgram("v(A,B) :- e(A,A), e(A,B)");
}

}  // namespace testing_fixtures
}  // namespace vbr

#endif  // VBR_TESTS_REWRITE_FIXTURES_H_
