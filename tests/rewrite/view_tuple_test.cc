#include "rewrite/view_tuple.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "cq/parser.h"
#include "rewrite/canonical_db.h"
#include "tests/rewrite/fixtures.h"

namespace vbr {
namespace {

using testing_fixtures::CarLocPartQuery;
using testing_fixtures::CarLocPartViews;
using testing_fixtures::Example41Query;
using testing_fixtures::Example41Views;

std::set<std::string> TupleStrings(const std::vector<ViewTuple>& tuples) {
  std::set<std::string> out;
  for (const ViewTuple& t : tuples) out.insert(t.atom.ToString());
  return out;
}

TEST(CanonicalDbTest, FreezesVariablesToDistinctConstants) {
  const ConjunctiveQuery q = CarLocPartQuery();
  const CanonicalDatabase db(q);
  ASSERT_EQ(db.facts().size(), 3u);
  std::set<Term> constants;
  for (const Atom& fact : db.facts()) {
    for (Term t : fact.args()) {
      EXPECT_TRUE(t.is_constant()) << fact.ToString();
      constants.insert(t);
    }
  }
  // M, C, S frozen distinctly, plus the original constant a: 4 constants.
  EXPECT_EQ(constants.size(), 4u);
}

TEST(CanonicalDbTest, ThawRestoresVariables) {
  const ConjunctiveQuery q = CarLocPartQuery();
  const CanonicalDatabase db(q);
  for (size_t i = 0; i < q.num_subgoals(); ++i) {
    EXPECT_EQ(db.Thaw(db.facts()[i]), q.subgoal(i));
  }
  // Unknown terms pass through.
  EXPECT_EQ(db.Thaw(Const("a")), Const("a"));
  EXPECT_EQ(db.Thaw(Var("Zzz")), Var("Zzz"));
}

TEST(ViewTupleTest, CarLocPartMatchesPaper) {
  // T(Q,V) = {v1(M,a,C), v2(S,M,C), v3(S), v4(M,a,C,S), v5(M,a,C)}.
  const auto tuples = ComputeViewTuples(CarLocPartQuery(), CarLocPartViews());
  EXPECT_EQ(TupleStrings(tuples),
            (std::set<std::string>{"v1(M,a,C)", "v2(S,M,C)", "v3(S)",
                                   "v4(M,a,C,S)", "v5(M,a,C)"}));
}

TEST(ViewTupleTest, ViewIndexIsRecorded) {
  const auto tuples = ComputeViewTuples(CarLocPartQuery(), CarLocPartViews());
  for (const ViewTuple& t : tuples) {
    EXPECT_EQ(t.atom.predicate_name(),
              "v" + std::to_string(t.view_index + 1));
  }
}

TEST(ViewTupleTest, Example41MatchesPaper) {
  // T(Q,V) = {v1(X,Z), v1(Z,Z), v2(Z,Y)}.
  const auto tuples = ComputeViewTuples(Example41Query(), Example41Views());
  EXPECT_EQ(TupleStrings(tuples),
            (std::set<std::string>{"v1(X,Z)", "v1(Z,Z)", "v2(Z,Y)"}));
}

TEST(ViewTupleTest, ViewWithNoMatchYieldsNoTuples) {
  const auto views = MustParseProgram("v(X) :- other(X,X)");
  const auto tuples = ComputeViewTuples(CarLocPartQuery(), views);
  EXPECT_TRUE(tuples.empty());
}

TEST(ViewTupleTest, ConstantInViewMustMatchQueryConstant) {
  // A view anchored at a different dealer produces no tuple.
  const auto views = MustParseProgram(R"(
    va(M,C) :- car(M,a), loc(a,C)
    vb(M,C) :- car(M,b), loc(b,C)
  )");
  const auto tuples = ComputeViewTuples(CarLocPartQuery(), views);
  EXPECT_EQ(TupleStrings(tuples), (std::set<std::string>{"va(M,C)"}));
}

TEST(ViewTupleTest, DuplicateTuplesFromOneViewAreDeduped) {
  // The view matches both car subgoals... use a query with two car atoms
  // mapping to one tuple via shared head.
  const auto q = MustParseQuery("q(D) :- car(m1,D), car(m2,D)");
  const auto views = MustParseProgram("v(D) :- car(M,D)");
  const auto tuples = ComputeViewTuples(q, views);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0].atom.ToString(), "v(D)");
}

TEST(ViewTupleTest, SameTupleFromTwoViewsKeptSeparately) {
  const auto q = MustParseQuery("q(X) :- r(X)");
  const auto views = MustParseProgram(R"(
    v1(X) :- r(X)
    v2(X) :- r(X)
  )");
  const auto tuples = ComputeViewTuples(q, views);
  EXPECT_EQ(tuples.size(), 2u);
}

TEST(ViewTupleTest, TupleArgumentsAreQueryTerms) {
  const auto q = CarLocPartQuery();
  const auto tuples = ComputeViewTuples(q, CarLocPartViews());
  std::set<Term> query_terms;
  for (const Atom& a : q.body()) {
    for (Term t : a.args()) query_terms.insert(t);
  }
  for (const ViewTuple& t : tuples) {
    for (Term arg : t.atom.args()) {
      EXPECT_EQ(query_terms.count(arg), 1u) << t.atom.ToString();
    }
  }
}

}  // namespace
}  // namespace vbr
