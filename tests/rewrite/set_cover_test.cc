#include "rewrite/set_cover.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace vbr {
namespace {

TEST(SetCoverTest, SingleSetCoversAll) {
  const auto result = FindAllMinimumCovers(0b111, {0b111, 0b011});
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.min_size, 1u);
  ASSERT_EQ(result.covers.size(), 1u);
  EXPECT_EQ(result.covers[0], (std::vector<size_t>{0}));
}

TEST(SetCoverTest, InfeasibleWhenUnionTooSmall) {
  const auto result = FindAllMinimumCovers(0b111, {0b011, 0b001});
  EXPECT_FALSE(result.feasible);
  EXPECT_TRUE(result.covers.empty());
}

TEST(SetCoverTest, EmptyUniverseHasEmptyCover) {
  const auto result = FindAllMinimumCovers(0, {0b1});
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.min_size, 0u);
  ASSERT_EQ(result.covers.size(), 1u);
  EXPECT_TRUE(result.covers[0].empty());
}

TEST(SetCoverTest, FindsAllMinimumCovers) {
  // Universe {0,1}; sets {0}, {1}, {0,1}, {0,1}: minimum size 1, two covers.
  const auto result =
      FindAllMinimumCovers(0b11, {0b01, 0b10, 0b11, 0b11});
  EXPECT_EQ(result.min_size, 1u);
  ASSERT_EQ(result.covers.size(), 2u);
  EXPECT_EQ(result.covers[0], (std::vector<size_t>{2}));
  EXPECT_EQ(result.covers[1], (std::vector<size_t>{3}));
}

TEST(SetCoverTest, MinimumSizeTwo) {
  const auto result = FindAllMinimumCovers(0b1111, {0b0011, 0b1100, 0b0110});
  EXPECT_EQ(result.min_size, 2u);
  ASSERT_EQ(result.covers.size(), 1u);
  EXPECT_EQ(result.covers[0], (std::vector<size_t>{0, 1}));
}

TEST(SetCoverTest, OverlappingCoversAreAllowed) {
  // Tuple-cores may overlap (unlike MiniCon MCDs).
  const auto result = FindAllMinimumCovers(0b111, {0b110, 0b011});
  EXPECT_EQ(result.min_size, 2u);
  ASSERT_EQ(result.covers.size(), 1u);
}

TEST(SetCoverTest, CapTruncates) {
  // Ten identical full sets: 10 minimum covers, cap at 3.
  std::vector<uint64_t> sets(10, 0b1);
  const auto result = FindAllMinimumCovers(0b1, sets, 3);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.covers.size(), 3u);
  EXPECT_TRUE(result.truncated);
}

TEST(SetCoverTest, EmptySetsAreIgnored) {
  const auto result = FindAllMinimumCovers(0b11, {0, 0b11, 0});
  EXPECT_EQ(result.min_size, 1u);
  ASSERT_EQ(result.covers.size(), 1u);
  EXPECT_EQ(result.covers[0], (std::vector<size_t>{1}));
}

TEST(MinimalCoversTest, FindsMinimalNotJustMinimum) {
  // Universe {0,1,2}: {0,1,2} is the minimum cover; {0,1},{1,2} ... sets:
  // s0={0,1}, s1={1,2}, s2={0,1,2}. Minimal covers: {s2} and {s0,s1}.
  const auto covers = FindAllMinimalCovers(0b111, {0b011, 0b110, 0b111});
  ASSERT_EQ(covers.size(), 2u);
  EXPECT_EQ(covers[0], (std::vector<size_t>{0, 1}));
  EXPECT_EQ(covers[1], (std::vector<size_t>{2}));
}

TEST(MinimalCoversTest, RedundantSupersetExcluded) {
  // {s0,s1} covers; adding s2={0} is redundant and must not appear.
  const auto covers = FindAllMinimalCovers(0b11, {0b01, 0b10, 0b01});
  for (const auto& cover : covers) {
    uint64_t covered = 0;
    for (size_t i : cover) covered |= std::vector<uint64_t>{0b01, 0b10,
                                                            0b01}[i];
    EXPECT_EQ(covered, 0b11u);
    EXPECT_LE(cover.size(), 2u);
  }
  // Exactly {0,1} and {1,2}.
  EXPECT_EQ(covers.size(), 2u);
}

TEST(MinimalCoversTest, EmptyUniverse) {
  const auto covers = FindAllMinimalCovers(0, {0b1});
  ASSERT_EQ(covers.size(), 1u);
  EXPECT_TRUE(covers[0].empty());
}

TEST(MinimalCoversTest, InfeasibleGivesNoCovers) {
  EXPECT_TRUE(FindAllMinimalCovers(0b111, {0b001}).empty());
}

TEST(SetCoverTest, SixtyFourElementUniverse) {
  // Stress the full-width mask path: 64 singletons.
  std::vector<uint64_t> sets;
  for (int i = 0; i < 64; ++i) sets.push_back(uint64_t{1} << i);
  const auto result = FindAllMinimumCovers(~uint64_t{0}, sets);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.min_size, 64u);
  ASSERT_EQ(result.covers.size(), 1u);
}

}  // namespace
}  // namespace vbr
