#include "rewrite/core_cover.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cq/parser.h"
#include "rewrite/rewriting.h"
#include "tests/rewrite/fixtures.h"

namespace vbr {
namespace {

using testing_fixtures::CarLocPartQuery;
using testing_fixtures::CarLocPartViews;
using testing_fixtures::Example41Query;
using testing_fixtures::Example41Views;

CoreCoverOptions Verifying() {
  CoreCoverOptions options;
  options.verify_rewritings = true;
  return options;
}

TEST(CoreCoverTest, CarLocPartFindsP4) {
  // The unique GMR is q1(S,C) :- v4(M,a,C,S) (one subgoal).
  const auto result =
      CoreCover(CarLocPartQuery(), CarLocPartViews(), Verifying());
  EXPECT_TRUE(result.has_rewriting);
  EXPECT_EQ(result.stats.minimum_cover_size, 1u);
  ASSERT_EQ(result.rewritings.size(), 1u);
  EXPECT_EQ(result.rewritings[0].ToString(), "q1(S,C) :- v4(M,a,C,S)");
}

TEST(CoreCoverTest, CarLocPartFilterCandidateIsV3) {
  const auto result = CoreCover(CarLocPartQuery(), CarLocPartViews());
  ASSERT_EQ(result.filter_candidates.size(), 1u);
  EXPECT_EQ(
      result.view_tuples[result.filter_candidates[0]].tuple.atom.ToString(),
      "v3(S)");
}

TEST(CoreCoverTest, Example41FindsTheUniqueGmr) {
  const auto result =
      CoreCover(Example41Query(), Example41Views(), Verifying());
  EXPECT_TRUE(result.has_rewriting);
  EXPECT_EQ(result.stats.minimum_cover_size, 2u);
  ASSERT_EQ(result.rewritings.size(), 1u);
  EXPECT_EQ(result.rewritings[0].ToString(), "q(X,Y) :- v1(X,Z), v2(Z,Y)");
}

TEST(CoreCoverTest, Example42OneSubgoalBeatsMiniConStyle) {
  // Example 4.2, k = 3: CoreCover finds the single-subgoal rewriting
  // q(X,Y) :- v(X,Y) even though v1, v2 cover pieces.
  const auto q = MustParseQuery(
      "q(X,Y) :- a1(X,Z1), b1(Z1,Y), a2(X,Z2), b2(Z2,Y), a3(X,Z3), "
      "b3(Z3,Y)");
  const auto views = MustParseProgram(R"(
    v(X,Y) :- a1(X,Z1), b1(Z1,Y), a2(X,Z2), b2(Z2,Y), a3(X,Z3), b3(Z3,Y)
    v1(X,Y) :- a1(X,Z1), b1(Z1,Y)
    v2(X,Y) :- a2(X,Z2), b2(Z2,Y)
  )");
  const auto result = CoreCover(q, views, Verifying());
  ASSERT_EQ(result.rewritings.size(), 1u);
  EXPECT_EQ(result.rewritings[0].ToString(), "q(X,Y) :- v(X,Y)");
}

TEST(CoreCoverTest, NoRewritingReported) {
  const auto q = MustParseQuery("q(X) :- r(X,Y), s(Y)");
  const auto views = MustParseProgram("v(X) :- r(X,Y)");
  const auto result = CoreCover(q, views);
  EXPECT_FALSE(result.has_rewriting);
  EXPECT_TRUE(result.rewritings.empty());
}

TEST(CoreCoverTest, MinimizesQueryFirst) {
  // Redundant subgoal e(X,B) disappears; the GMR covers only e(X,X).
  const auto q = MustParseQuery("q(X) :- e(X,X), e(X,B)");
  const auto views = MustParseProgram("v(A) :- e(A,A)");
  const auto result = CoreCover(q, views, Verifying());
  EXPECT_EQ(result.minimized_query.num_subgoals(), 1u);
  ASSERT_EQ(result.rewritings.size(), 1u);
  EXPECT_EQ(result.rewritings[0].ToString(), "q(X) :- v(X)");
}

TEST(CoreCoverTest, GroupViewsCollapsesEquivalentViews) {
  // v1 and v5 are equivalent; with grouping only one representative's
  // tuples are computed.
  const auto result = CoreCover(CarLocPartQuery(), CarLocPartViews());
  EXPECT_EQ(result.stats.num_views, 5u);
  EXPECT_EQ(result.stats.num_view_classes, 4u);
  EXPECT_EQ(result.stats.num_view_tuples, 4u);  // v1, v2, v3, v4.
}

TEST(CoreCoverTest, WithoutGroupingAllTuplesAppear) {
  CoreCoverOptions options;
  options.group_views = false;
  options.group_view_tuples = false;
  const auto result =
      CoreCover(CarLocPartQuery(), CarLocPartViews(), options);
  EXPECT_EQ(result.stats.num_view_tuples, 5u);  // v5 tuple included.
  EXPECT_TRUE(result.has_rewriting);
}

TEST(CoreCoverTest, MultipleGmrsAreAllFound) {
  // Two disjoint halves, each coverable by two different views: 2x2 GMRs of
  // size 2, plus none smaller.
  const auto q = MustParseQuery("q(X,Y) :- r(X), s(Y)");
  const auto views = MustParseProgram(R"(
    va(X) :- r(X)
    vb(X) :- r(X)
    vc(Y) :- s(Y)
    vd(Y) :- s(Y)
  )");
  CoreCoverOptions options;
  options.group_views = false;
  options.group_view_tuples = false;
  options.verify_rewritings = true;
  const auto result = CoreCover(q, views, options);
  EXPECT_EQ(result.stats.minimum_cover_size, 2u);
  EXPECT_EQ(result.rewritings.size(), 4u);
}

TEST(CoreCoverTest, GroupedTuplesReportClassMetadata) {
  const auto q = MustParseQuery("q(X,Y) :- r(X), s(Y)");
  const auto views = MustParseProgram(R"(
    va(X) :- r(X)
    vb(X) :- r(X)
    vc(Y) :- s(Y)
  )");
  CoreCoverOptions options;
  options.group_views = false;  // Keep both r-views.
  const auto result = CoreCover(q, views, options);
  EXPECT_EQ(result.stats.num_view_tuples, 3u);
  EXPECT_EQ(result.stats.num_tuple_classes, 2u);
  size_t representatives = 0;
  for (const auto& t : result.view_tuples) {
    representatives += t.is_class_representative ? 1 : 0;
  }
  EXPECT_EQ(representatives, 2u);
  // One rewriting per class-representative cover.
  EXPECT_EQ(result.rewritings.size(), 1u);
}

TEST(CoreCoverStarTest, CarLocPartMinimalRewritings) {
  // Minimal covers over tuple classes: {v4} and {v1, v2}. (P3's filter v3
  // is an *addition*, reported separately, not a minimal cover.)
  const auto result =
      CoreCoverStar(CarLocPartQuery(), CarLocPartViews(), Verifying());
  std::set<std::string> texts;
  for (const auto& r : result.rewritings) texts.insert(r.ToString());
  EXPECT_EQ(texts, (std::set<std::string>{
                       "q1(S,C) :- v4(M,a,C,S)",
                       "q1(S,C) :- v1(M,a,C), v2(S,M,C)"}));
  EXPECT_EQ(result.stats.minimum_cover_size, 1u);
}

TEST(CoreCoverStarTest, EveryMinimalRewritingVerifies) {
  const auto q = MustParseQuery(
      "q(X,Y) :- a1(X,Z1), b1(Z1,Y), a2(X,Z2), b2(Z2,Y)");
  const auto views = MustParseProgram(R"(
    v(X,Y) :- a1(X,Z1), b1(Z1,Y), a2(X,Z2), b2(Z2,Y)
    v1(X,Y) :- a1(X,Z1), b1(Z1,Y)
    v2(X,Y) :- a2(X,Z2), b2(Z2,Y)
  )");
  const auto result = CoreCoverStar(q, views, Verifying());
  // {v} and {v1,v2} are the minimal covers.
  EXPECT_EQ(result.rewritings.size(), 2u);
}

TEST(CoreCoverTest, StatsTimingsArePopulated) {
  const auto result = CoreCover(CarLocPartQuery(), CarLocPartViews());
  EXPECT_GE(result.stats.total_ms, 0.0);
  EXPECT_GE(result.stats.minimize_ms, 0.0);
}

TEST(CoreCoverDeathTest, UnsafeQueryAborts) {
  const auto q = MustParseQuery("q(X,Y) :- r(X,X)");
  EXPECT_DEATH(CoreCover(q, {}), "safe");
}

}  // namespace
}  // namespace vbr
