#include "rewrite/expansion.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "cq/containment.h"
#include "cq/parser.h"
#include "tests/rewrite/fixtures.h"

namespace vbr {
namespace {

using testing_fixtures::CarLocPartP;
using testing_fixtures::CarLocPartQuery;
using testing_fixtures::CarLocPartViews;

TEST(ExpansionTest, FindViewByPredicate) {
  const ViewSet views = CarLocPartViews();
  const Symbol v2 = SymbolTable::Global().Intern("v2");
  const View* found = FindView(views, v2);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->head().predicate_name(), "v2");
  EXPECT_EQ(FindView(views, SymbolTable::Global().Intern("nothing")),
            nullptr);
}

TEST(ExpansionTest, SingleAtomSubstitutesHeadVariables) {
  const ViewSet views = CarLocPartViews();
  const Atom atom = MustParseQuery("h() :- v1(M,a,C)").subgoal(0);
  const std::vector<Atom> exp = ExpandViewAtom(atom, views[0]);
  ASSERT_EQ(exp.size(), 2u);
  EXPECT_EQ(exp[0].ToString(), "car(M,a)");
  EXPECT_EQ(exp[1].ToString(), "loc(a,C)");
}

TEST(ExpansionTest, ExistentialsBecomeFresh) {
  // v3(S) has existentials M and C; the expansion must not reuse them.
  const ViewSet views = CarLocPartViews();
  const Atom atom = MustParseQuery("h() :- v3(S)").subgoal(0);
  std::vector<Term> existentials;
  const std::vector<Atom> exp = ExpandViewAtom(atom, views[2], &existentials);
  ASSERT_EQ(exp.size(), 3u);
  EXPECT_EQ(existentials.size(), 2u);
  for (const Atom& a : exp) {
    EXPECT_FALSE(a.Mentions(Var("M")));
    EXPECT_FALSE(a.Mentions(Var("C")));
  }
  // The constant `a` from the view body survives.
  EXPECT_TRUE(exp[0].Mentions(Const("a")));
}

TEST(ExpansionTest, TwoExpansionsOfSameViewAreVariableDisjoint) {
  const ViewSet views = CarLocPartViews();
  const Atom atom = MustParseQuery("h() :- v3(S)").subgoal(0);
  std::vector<Term> e1, e2;
  ExpandViewAtom(atom, views[2], &e1);
  ExpandViewAtom(atom, views[2], &e2);
  std::unordered_set<Term, TermHash> first(e1.begin(), e1.end());
  for (Term t : e2) EXPECT_EQ(first.count(t), 0u);
}

TEST(ExpansionTest, RewritingExpansionTracksOrigins) {
  const ViewSet views = CarLocPartViews();
  const Expansion exp = ExpandRewriting(CarLocPartP(2), views);
  // P2 = v1(M,a,C), v2(S,M,C) -> car, loc, part.
  ASSERT_EQ(exp.query.num_subgoals(), 3u);
  EXPECT_EQ(exp.origin, (std::vector<size_t>{0, 0, 1}));
  EXPECT_EQ(exp.query.subgoal(0).predicate_name(), "car");
  EXPECT_EQ(exp.query.subgoal(2).predicate_name(), "part");
}

TEST(ExpansionTest, PaperP1ExpansionShape) {
  // P1exp: car(M,a), loc(a,C1), car(M1,a), loc(a,C), part(S,M,C).
  const ViewSet views = CarLocPartViews();
  const Expansion exp = ExpandRewriting(CarLocPartP(1), views);
  ASSERT_EQ(exp.query.num_subgoals(), 5u);
  const auto expected = MustParseQuery(
      "q1(S,C) :- car(M,a), loc(a,C1), car(M1,a), loc(a,C), part(S,M,C)");
  EXPECT_TRUE(AreEquivalent(exp.query, expected));
}

TEST(ExpansionTest, ExpansionEquivalenceMatchesPaper) {
  // P1exp ≡ P2exp ≡ Q even though P1 and P2 differ as queries.
  const ViewSet views = CarLocPartViews();
  const Expansion e1 = ExpandRewriting(CarLocPartP(1), views);
  const Expansion e2 = ExpandRewriting(CarLocPartP(2), views);
  EXPECT_TRUE(AreEquivalent(e1.query, e2.query));
  EXPECT_TRUE(AreEquivalent(e1.query, CarLocPartQuery()));
}

TEST(ExpansionDeathTest, UndefinedViewAborts) {
  const ViewSet views = CarLocPartViews();
  const auto bad = MustParseQuery("q1(S,C) :- v9(S,C)");
  EXPECT_DEATH(ExpandRewriting(bad, views), "undefined view");
}

TEST(ExpansionDeathTest, ArityMismatchAborts) {
  const ViewSet views = CarLocPartViews();
  const auto bad = MustParseQuery("q1(S,C) :- v1(S,C)");
  EXPECT_DEATH(ExpandRewriting(bad, views), "arity");
}

}  // namespace
}  // namespace vbr
