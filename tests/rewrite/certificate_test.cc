#include "rewrite/certificate.h"

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "rewrite/core_cover.h"
#include "tests/rewrite/fixtures.h"
#include "workload/generator.h"

namespace vbr {
namespace {

using testing_fixtures::CarLocPartP;
using testing_fixtures::CarLocPartQuery;
using testing_fixtures::CarLocPartViews;

TEST(CertificateTest, CertifiesPaperRewritings) {
  const auto q = CarLocPartQuery();
  const ViewSet views = CarLocPartViews();
  for (int i = 1; i <= 5; ++i) {
    auto cert = CertifyEquivalentRewriting(CarLocPartP(i), q, views);
    ASSERT_TRUE(cert.has_value()) << "P" << i;
    std::string error;
    EXPECT_TRUE(VerifyCertificate(*cert, views, &error))
        << "P" << i << ": " << error;
  }
}

TEST(CertificateTest, RefusesNonRewriting) {
  const auto q = CarLocPartQuery();
  const ViewSet views = CarLocPartViews();
  const auto not_equivalent = MustParseQuery("q1(S,C) :- v2(S,M,C)");
  EXPECT_FALSE(
      CertifyEquivalentRewriting(not_equivalent, q, views).has_value());
  const auto not_views = MustParseQuery("q1(S,C) :- part(S,M,C)");
  EXPECT_FALSE(CertifyEquivalentRewriting(not_views, q, views).has_value());
}

TEST(CertificateTest, TamperedMappingFailsVerification) {
  const auto q = CarLocPartQuery();
  const ViewSet views = CarLocPartViews();
  auto cert = CertifyEquivalentRewriting(CarLocPartP(2), q, views);
  ASSERT_TRUE(cert.has_value());
  // Corrupt the forward mapping: send M somewhere silly.
  cert->query_to_expansion.Unbind(Var("M"));
  cert->query_to_expansion.Bind(Var("M"), Const("a"));
  std::string error;
  EXPECT_FALSE(VerifyCertificate(*cert, views, &error));
  EXPECT_NE(error.find("mapping"), std::string::npos) << error;
}

TEST(CertificateTest, TamperedExpansionFailsVerification) {
  const auto q = CarLocPartQuery();
  const ViewSet views = CarLocPartViews();
  auto cert = CertifyEquivalentRewriting(CarLocPartP(2), q, views);
  ASSERT_TRUE(cert.has_value());
  // Replace an expansion atom's argument by a rewriting variable (capture).
  std::vector<Atom> body = cert->expansion.query.body();
  ASSERT_FALSE(body.empty());
  body[0] = Atom(body[0].predicate(), {Var("M"), Var("M")});
  cert->expansion.query = cert->expansion.query.WithBody(std::move(body));
  std::string error;
  EXPECT_FALSE(VerifyCertificate(*cert, views, &error));
}

TEST(CertificateTest, TamperedOriginFailsVerification) {
  const auto q = CarLocPartQuery();
  const ViewSet views = CarLocPartViews();
  auto cert = CertifyEquivalentRewriting(CarLocPartP(2), q, views);
  ASSERT_TRUE(cert.has_value());
  cert->expansion.origin.pop_back();
  std::string error;
  EXPECT_FALSE(VerifyCertificate(*cert, views, &error));
  EXPECT_NE(error.find("origin"), std::string::npos) << error;
}

TEST(CertificateTest, CertifiesGeneratedWorkloads) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    WorkloadConfig config;
    config.shape = (seed % 2 == 0) ? QueryShape::kStar : QueryShape::kChain;
    config.num_query_subgoals = 5;
    config.num_views = 12;
    config.seed = seed;
    const Workload w = GenerateWorkload(config);
    const auto cc = CoreCover(w.query, w.views);
    for (const auto& p : cc.rewritings) {
      auto cert = CertifyEquivalentRewriting(p, w.query, w.views);
      ASSERT_TRUE(cert.has_value()) << p.ToString();
      std::string error;
      EXPECT_TRUE(VerifyCertificate(*cert, w.views, &error)) << error;
    }
  }
}

TEST(CertificateTest, ToStringMentionsAllParts) {
  const auto q = CarLocPartQuery();
  const ViewSet views = CarLocPartViews();
  auto cert = CertifyEquivalentRewriting(CarLocPartP(4), q, views);
  ASSERT_TRUE(cert.has_value());
  const std::string text = cert->ToString();
  EXPECT_NE(text.find("rewriting"), std::string::npos);
  EXPECT_NE(text.find("v4"), std::string::npos);
}

}  // namespace
}  // namespace vbr
