// Edge cases and resource-limit behavior of CoreCover / CoreCover*.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cq/parser.h"
#include "rewrite/core_cover.h"
#include "rewrite/rewriting.h"

namespace vbr {
namespace {

TEST(CoreCoverEdgeTest, MaxRewritingsTruncates) {
  // Five interchangeable single-subgoal views (grouping off): five GMRs.
  const auto q = MustParseQuery("q(X) :- r(X)");
  const auto views = MustParseProgram(R"(
    v1(X) :- r(X)
    v2(X) :- r(X)
    v3(X) :- r(X)
    v4(X) :- r(X)
    v5(X) :- r(X)
  )");
  CoreCoverOptions options;
  options.group_views = false;
  options.group_view_tuples = false;
  options.max_rewritings = 2;
  const auto result = CoreCover(q, views, options);
  EXPECT_TRUE(result.has_rewriting);
  EXPECT_EQ(result.rewritings.size(), 2u);
  EXPECT_TRUE(result.truncated);
}

TEST(CoreCoverEdgeTest, GroupingCollapsesInterchangeableGmrs) {
  const auto q = MustParseQuery("q(X) :- r(X)");
  const auto views = MustParseProgram(R"(
    v1(X) :- r(X)
    v2(X) :- r(X)
    v3(X) :- r(X)
  )");
  const auto result = CoreCover(q, views);  // Grouping on by default.
  EXPECT_EQ(result.rewritings.size(), 1u);
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.stats.num_view_classes, 1u);
}

TEST(CoreCoverEdgeTest, ViewIndexSurvivesGrouping) {
  // With view grouping on, reported tuples must reference ORIGINAL view
  // indices (the representative), not positions in the reduced set.
  const auto q = MustParseQuery("q(X,Y) :- r(X), s(Y)");
  const auto views = MustParseProgram(R"(
    va(X) :- r(X)
    vb(X) :- r(X)
    vs(Y) :- s(Y)
  )");
  const auto result = CoreCover(q, views);
  for (const auto& t : result.view_tuples) {
    ASSERT_LT(t.tuple.view_index, views.size());
    EXPECT_EQ(t.tuple.atom.predicate(),
              views[t.tuple.view_index].head().predicate());
  }
}

TEST(CoreCoverEdgeTest, ConstantOnlyViewTuple) {
  // A view whose tuple is entirely constants still covers its subgoal.
  const auto q = MustParseQuery("q(X) :- r(a,b), s(X)");
  const auto views = MustParseProgram(R"(
    v1(U,V) :- r(U,V)
    v2(X) :- s(X)
  )");
  CoreCoverOptions options;
  options.verify_rewritings = true;
  const auto result = CoreCover(q, views, options);
  ASSERT_TRUE(result.has_rewriting);
  ASSERT_EQ(result.rewritings.size(), 1u);
  EXPECT_EQ(result.rewritings[0].ToString(), "q(X) :- v1(a,b), v2(X)");
}

TEST(CoreCoverEdgeTest, RepeatedVariableInQuerySubgoal) {
  const auto q = MustParseQuery("q(X) :- e(X,X,Y)");
  const auto views = MustParseProgram("v(A,B) :- e(A,A,B)");
  CoreCoverOptions options;
  options.verify_rewritings = true;
  const auto result = CoreCover(q, views, options);
  ASSERT_TRUE(result.has_rewriting);
  EXPECT_EQ(result.rewritings[0].ToString(), "q(X) :- v(X,Y)");
}

TEST(CoreCoverEdgeTest, HeadConstantInQuery) {
  const auto q = MustParseQuery("q(X,tag) :- r(X)");
  const auto views = MustParseProgram("v(X) :- r(X)");
  CoreCoverOptions options;
  options.verify_rewritings = true;
  const auto result = CoreCover(q, views, options);
  ASSERT_TRUE(result.has_rewriting);
  EXPECT_EQ(result.rewritings[0].head().ToString(), "q(X,tag)");
}

TEST(CoreCoverEdgeTest, ViewLargerThanQueryStillUsable) {
  // The view's body strictly extends the query's pattern, so it can only
  // be used when the extension folds back into the query.
  const auto q = MustParseQuery("q(X) :- e(X,X)");
  const auto views = MustParseProgram("v(A,B) :- e(A,A), e(A,B)");
  CoreCoverOptions options;
  options.verify_rewritings = true;
  const auto result = CoreCover(q, views, options);
  ASSERT_TRUE(result.has_rewriting);
  EXPECT_EQ(result.stats.minimum_cover_size, 1u);
}

TEST(CoreCoverEdgeTest, NonemptyCoreCountInStats) {
  // car-loc-part with grouping: representatives v1, v2, v3, v4; v3's core
  // is empty, so three nonempty cores among the candidates.
  const auto q = MustParseQuery("q1(S,C) :- car(M,a), loc(a,C), part(S,M,C)");
  const auto views = MustParseProgram(R"(
    v1(M,D,C) :- car(M,D), loc(D,C)
    v2(S,M,C) :- part(S,M,C)
    v3(S) :- car(M,a), loc(a,C), part(S,M,C)
    v4(M,D,C,S) :- car(M,D), loc(D,C), part(S,M,C)
  )");
  const auto result = CoreCover(q, views);
  EXPECT_EQ(result.stats.num_nonempty_cores, 3u);
}

TEST(CoreCoverEdgeTest, EmptyViewSetHasNoRewriting) {
  const auto q = MustParseQuery("q(X) :- r(X)");
  const auto result = CoreCover(q, {});
  EXPECT_FALSE(result.has_rewriting);
  EXPECT_TRUE(result.view_tuples.empty());
}

TEST(CoreCoverEdgeTest, StarResultsContainAllGmrSizes) {
  // CoreCover* returns minimal covers of several sizes; minimum_cover_size
  // reports the smallest.
  const auto q = MustParseQuery("q(X,Y) :- a(X,Z), b(Z,Y)");
  const auto views = MustParseProgram(R"(
    vall(X,Y) :- a(X,Z), b(Z,Y)
    va(X,Z) :- a(X,Z)
    vb(Z,Y) :- b(Z,Y)
  )");
  const auto result = CoreCoverStar(q, views);
  EXPECT_EQ(result.stats.minimum_cover_size, 1u);
  bool has_one = false;
  bool has_two = false;
  for (const auto& p : result.rewritings) {
    if (p.num_subgoals() == 1) has_one = true;
    if (p.num_subgoals() == 2) has_two = true;
  }
  EXPECT_TRUE(has_one);
  EXPECT_TRUE(has_two);
}

// A chain query over 65 distinct predicates: minimal (nothing to remove),
// one subgoal past the 64-bit tuple-core bitmask. Must come back as a
// structured unsupported result, not a process abort (regression: this used
// to VBR_CHECK-fail in core_cover.cc / tuple_core.cc).
TEST(CoreCoverEdgeTest, QueryBeyond64SubgoalsReportsUnsupported) {
  std::vector<Atom> body;
  for (int i = 0; i < 65; ++i) {
    body.emplace_back("p" + std::to_string(i),
                      std::vector<Term>{Var("X" + std::to_string(i)),
                                        Var("X" + std::to_string(i + 1))});
  }
  const ConjunctiveQuery q(Atom("q", {Var("X0"), Var("X65")}),
                           std::move(body));
  const auto views = MustParseProgram("v(A,B) :- p0(A,B)");

  const auto result = CoreCover(q, views);
  EXPECT_EQ(result.status, CoreCoverStatus::kUnsupportedQueryTooLarge);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.has_rewriting);
  EXPECT_TRUE(result.rewritings.empty());
  EXPECT_TRUE(result.view_tuples.empty());
  EXPECT_NE(result.error.find("64"), std::string::npos);
  EXPECT_EQ(result.minimized_query.num_subgoals(), 65u);

  const auto star = CoreCoverStar(q, views);
  EXPECT_EQ(star.status, CoreCoverStatus::kUnsupportedQueryTooLarge);
  EXPECT_FALSE(star.has_rewriting);
}

// Exactly 64 subgoals is still inside the supported fragment.
TEST(CoreCoverEdgeTest, QueryWith64SubgoalsIsSupported) {
  std::vector<Atom> body;
  for (int i = 0; i < 64; ++i) {
    body.emplace_back("p" + std::to_string(i),
                      std::vector<Term>{Var("X" + std::to_string(i)),
                                        Var("X" + std::to_string(i + 1))});
  }
  const ConjunctiveQuery q(Atom("q", {Var("X0"), Var("X64")}),
                           std::move(body));
  const auto result = CoreCover(q, MustParseProgram("v(A,B) :- p0(A,B)"));
  EXPECT_EQ(result.status, CoreCoverStatus::kOk);
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(result.has_rewriting);  // One view cannot cover 64 subgoals.
}

}  // namespace
}  // namespace vbr
