#include "rewrite/equivalence_classes.h"

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "tests/rewrite/fixtures.h"

namespace vbr {
namespace {

using testing_fixtures::CarLocPartQuery;
using testing_fixtures::CarLocPartViews;

TEST(ViewClassesTest, IdenticalDefinitionsGroupTogether) {
  const ViewClasses classes = GroupViewsByEquivalence(CarLocPartViews());
  ASSERT_EQ(classes.class_of.size(), 5u);
  EXPECT_EQ(classes.num_classes(), 4u);
  // v1 (index 0) and v5 (index 4) share a class.
  EXPECT_EQ(classes.class_of[0], classes.class_of[4]);
  EXPECT_NE(classes.class_of[0], classes.class_of[1]);
  // The representative of their class is the first occurrence, v1.
  EXPECT_EQ(classes.representatives[classes.class_of[0]], 0u);
}

TEST(ViewClassesTest, EquivalenceUpToRenamingAndRedundancy) {
  // Same view modulo variable names and a redundant subgoal.
  const auto views = MustParseProgram(R"(
    v1(X,Y) :- r(X,Z), s(Z,Y)
    v2(A,B) :- r(A,C), s(C,B)
    v3(X,Y) :- r(X,Z), s(Z,Y), r(X,Z2)
    v4(X,Y) :- s(X,Z), r(Z,Y)
  )");
  const ViewClasses classes = GroupViewsByEquivalence(views);
  EXPECT_EQ(classes.num_classes(), 2u);
  EXPECT_EQ(classes.class_of[0], classes.class_of[1]);
  EXPECT_EQ(classes.class_of[0], classes.class_of[2]);
  EXPECT_NE(classes.class_of[0], classes.class_of[3]);
}

TEST(ViewClassesTest, HeadBindingPatternSeparatesClasses) {
  const auto views = MustParseProgram(R"(
    v1(X,Y) :- r(X,Y)
    v2(X) :- r(X,Y)
    v3(X,X) :- r(X,X)
  )");
  const ViewClasses classes = GroupViewsByEquivalence(views);
  EXPECT_EQ(classes.num_classes(), 3u);
}

TEST(ViewClassesTest, ClassIdsAreDenseAndOrderedByFirstOccurrence) {
  const auto views = MustParseProgram(R"(
    a1(X) :- r(X)
    b1(X) :- s(X)
    a2(X) :- r(X)
    c1(X) :- t(X)
  )");
  const ViewClasses classes = GroupViewsByEquivalence(views);
  EXPECT_EQ(classes.class_of, (std::vector<size_t>{0, 1, 0, 2}));
  EXPECT_EQ(classes.representatives, (std::vector<size_t>{0, 1, 3}));
}

TEST(ViewClassesTest, EmptyViewSet) {
  const ViewClasses classes = GroupViewsByEquivalence({});
  EXPECT_EQ(classes.num_classes(), 0u);
}

TEST(TupleClassesTest, GroupsByCoveredMask) {
  const ConjunctiveQuery q = CarLocPartQuery();
  const ViewSet views = CarLocPartViews();
  const auto tuples = ComputeViewTuples(q, views);
  std::vector<TupleCore> cores;
  for (const auto& t : tuples) cores.push_back(ComputeTupleCore(q, t, views));
  const ViewTupleClasses classes = GroupViewTuplesByCore(tuples, cores);
  // Cores: v1:{0,1}, v2:{2}, v3:{}, v4:{0,1,2}, v5:{0,1} -> 4 classes.
  EXPECT_EQ(classes.num_classes(), 4u);
  // v1 and v5 tuples share a class.
  size_t v1_idx = 0, v5_idx = 0;
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (tuples[i].atom.predicate_name() == "v1") v1_idx = i;
    if (tuples[i].atom.predicate_name() == "v5") v5_idx = i;
  }
  EXPECT_EQ(classes.class_of[v1_idx], classes.class_of[v5_idx]);
}

TEST(TupleClassesTest, EmptyCoresShareOneClass) {
  const auto q = MustParseQuery("q(X) :- a(X,Z), c(Z)");
  const auto views = MustParseProgram(R"(
    v1(X) :- a(X,Z)
    v2(Z) :- c(Z)
  )");
  const auto tuples = ComputeViewTuples(q, views);
  std::vector<TupleCore> cores;
  for (const auto& t : tuples) cores.push_back(ComputeTupleCore(q, t, views));
  // v1(X) has an empty core (hides Z); v2(Z)... c(Z) with Z existential in
  // q but exposed by v2, so v2 covers {1}.
  const ViewTupleClasses classes = GroupViewTuplesByCore(tuples, cores);
  EXPECT_EQ(classes.num_classes(), 2u);
}

}  // namespace
}  // namespace vbr
