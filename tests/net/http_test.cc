// The minimal HTTP/1.1 parser behind the debug endpoint.
#include "net/http.h"

#include <gtest/gtest.h>

namespace vbr::net {
namespace {

constexpr size_t kMax = 1 << 20;

TEST(HttpTest, ParsesGetWithQueryParams) {
  const std::string wire =
      "GET /explain?q=q(X)%20:-%20r(X).&model=m2 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "\r\n";
  HttpRequest request;
  size_t consumed = 0;
  ASSERT_EQ(ParseHttpRequest(wire, kMax, &request, &consumed),
            HttpParseStatus::kOk);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/explain");
  EXPECT_EQ(request.params.at("q"), "q(X) :- r(X).");
  EXPECT_EQ(request.params.at("model"), "m2");
  EXPECT_EQ(request.headers.at("host"), "localhost");
  EXPECT_TRUE(request.keep_alive);
}

TEST(HttpTest, ParsesPostWithBody) {
  const std::string body = "{\"query\":\"q(X) :- r(X).\"}";
  const std::string wire = "POST /plan HTTP/1.1\r\n"
                           "Content-Type: application/json\r\n"
                           "Content-Length: " +
                           std::to_string(body.size()) + "\r\n\r\n" + body;
  HttpRequest request;
  size_t consumed = 0;
  ASSERT_EQ(ParseHttpRequest(wire, kMax, &request, &consumed),
            HttpParseStatus::kOk);
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.path, "/plan");
  EXPECT_EQ(request.body, body);
  EXPECT_EQ(consumed, wire.size());
}

TEST(HttpTest, IncompleteHeadersAndBodiesNeedMore) {
  const std::string body = "0123456789";
  const std::string wire = "POST /plan HTTP/1.1\r\nContent-Length: 10\r\n\r\n" +
                           body;
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    HttpRequest request;
    size_t consumed = 0;
    EXPECT_EQ(ParseHttpRequest(wire.substr(0, cut), kMax, &request, &consumed),
              HttpParseStatus::kNeedMore)
        << "cut=" << cut;
  }
}

TEST(HttpTest, PipelinedRequestsConsumeOneAtATime) {
  const std::string one = "GET /healthz HTTP/1.1\r\n\r\n";
  const std::string wire = one + one;
  HttpRequest request;
  size_t consumed = 0;
  ASSERT_EQ(ParseHttpRequest(wire, kMax, &request, &consumed),
            HttpParseStatus::kOk);
  EXPECT_EQ(consumed, one.size());
}

TEST(HttpTest, MalformedRequestsAreBad) {
  HttpRequest request;
  size_t consumed = 0;
  EXPECT_EQ(ParseHttpRequest("NOT_HTTP\r\n\r\n", kMax, &request, &consumed),
            HttpParseStatus::kBad);
  EXPECT_EQ(ParseHttpRequest("GET /x SPDY/9\r\n\r\n", kMax, &request,
                             &consumed),
            HttpParseStatus::kBad);
  EXPECT_EQ(ParseHttpRequest("GET /x HTTP/1.1\r\nbroken header\r\n\r\n", kMax,
                             &request, &consumed),
            HttpParseStatus::kBad);
  EXPECT_EQ(
      ParseHttpRequest("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
                       kMax, &request, &consumed),
      HttpParseStatus::kBad);
  EXPECT_EQ(
      ParseHttpRequest(
          "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", kMax,
          &request, &consumed),
      HttpParseStatus::kBad);
}

TEST(HttpTest, OversizedRequestsAreTooLarge) {
  HttpRequest request;
  size_t consumed = 0;
  // Headers alone exceed the cap without terminating.
  const std::string headers = "GET /x HTTP/1.1\r\nX-Pad: " +
                              std::string(128, 'a') + "\r\n";
  EXPECT_EQ(ParseHttpRequest(headers, 64, &request, &consumed),
            HttpParseStatus::kTooLarge);
  // Declared body exceeds the cap even though little has arrived.
  EXPECT_EQ(
      ParseHttpRequest("POST /x HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n",
                       64, &request, &consumed),
      HttpParseStatus::kTooLarge);
}

TEST(HttpTest, HugeContentLengthCannotWrapConsumed) {
  HttpRequest request;
  size_t consumed = 0;
  // SIZE_MAX-scale lengths would wrap `header_end + 4 + body_len`, slip
  // under the cap, and desync `consumed` from the bytes actually buffered.
  EXPECT_EQ(ParseHttpRequest(
                "POST /x HTTP/1.1\r\n"
                "Content-Length: 18446744073709551615\r\n\r\nbody",
                kMax, &request, &consumed),
            HttpParseStatus::kTooLarge);
  // Past ULLONG_MAX, strtoull clamps with ERANGE; also rejected.
  EXPECT_EQ(ParseHttpRequest(
                "POST /x HTTP/1.1\r\n"
                "Content-Length: 99999999999999999999999999\r\n\r\n",
                kMax, &request, &consumed),
            HttpParseStatus::kTooLarge);
}

TEST(HttpTest, ConnectionHeaderControlsKeepAlive) {
  HttpRequest request;
  size_t consumed = 0;
  ASSERT_EQ(ParseHttpRequest(
                "GET /x HTTP/1.1\r\nConnection: close\r\n\r\n", kMax,
                &request, &consumed),
            HttpParseStatus::kOk);
  EXPECT_FALSE(request.keep_alive);
  ASSERT_EQ(ParseHttpRequest("GET /x HTTP/1.0\r\n\r\n", kMax, &request,
                             &consumed),
            HttpParseStatus::kOk);
  EXPECT_FALSE(request.keep_alive);
  ASSERT_EQ(ParseHttpRequest(
                "GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", kMax,
                &request, &consumed),
            HttpParseStatus::kOk);
  EXPECT_TRUE(request.keep_alive);
}

TEST(HttpTest, UrlDecodeHandlesEscapesAndPlus) {
  EXPECT_EQ(UrlDecode("a+b%20c%3A%2F"), "a b c:/");
  EXPECT_EQ(UrlDecode("%zz"), "%zz");  // invalid escapes pass through
  EXPECT_EQ(UrlDecode("%2"), "%2");    // truncated escape passes through
}

TEST(HttpTest, BuildResponseIsWellFormed) {
  const std::string response =
      BuildHttpResponse(200, "application/json", "{\"a\":1}", true);
  EXPECT_NE(response.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\n{\"a\":1}"), std::string::npos);
  const std::string closed =
      BuildHttpResponse(503, "application/json", "", false);
  EXPECT_NE(closed.find("HTTP/1.1 503 Service Unavailable\r\n"),
            std::string::npos);
  EXPECT_NE(closed.find("Connection: close\r\n"), std::string::npos);
}

}  // namespace
}  // namespace vbr::net
