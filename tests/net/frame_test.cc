// Binary frame codec: round-trip properties and hostile-input behavior.
//
// The decoder sits directly on bytes read from the network, so the
// contract under test is: every encodable frame decodes back identically
// (round trip), truncation at EVERY byte boundary reports kNeedMore (never
// a spurious success), corrupt length prefixes are rejected before
// allocation, and random garbage never crashes or false-decodes into a
// structurally invalid frame.
#include "net/frame.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <random>
#include <string>

namespace vbr::net {
namespace {

PlanRequestFrame RandomRequest(std::mt19937_64& rng) {
  PlanRequestFrame frame;
  frame.request_id = rng();
  frame.want_certificate = rng() % 2 == 0;
  frame.options.model = static_cast<CostModel>(rng() % 3);
  frame.options.deadline_ms = static_cast<double>(rng() % 100'000) / 7.0;
  frame.options.work_limit = rng() % 2 ? rng() : 0;
  frame.options.memory_limit_bytes = rng() % 2 ? rng() : 0;
  frame.options.search_node_cap = rng() % 2 ? rng() : 0;
  if (rng() % 4 == 0) {
    frame.query_is_handle = true;
    frame.query_handle = rng();
  } else {
    const size_t len = rng() % 200;
    frame.query_text.clear();
    for (size_t i = 0; i < len; ++i) {
      frame.query_text.push_back(static_cast<char>(rng() % 256));
    }
  }
  return frame;
}

PlanResponseFrame RandomResponse(std::mt19937_64& rng) {
  PlanResponseFrame frame;
  frame.request_id = rng();
  frame.status = static_cast<WireStatus>(rng() % 7);
  frame.reject_reason = static_cast<uint8_t>(rng() % 5);
  frame.plan_status = static_cast<uint8_t>(rng() % 6);
  frame.attempts = static_cast<uint8_t>(rng() % 4);
  frame.service_level = static_cast<uint32_t>(rng() % 5);
  frame.cache_hit = rng() % 2 == 0;
  frame.degraded = rng() % 2 == 0;
  frame.served_from_cache_only = rng() % 2 == 0;
  frame.model_demoted = rng() % 2 == 0;
  frame.queue_wait_ms = static_cast<double>(rng() % 1'000'000) / 13.0;
  frame.cost = rng();
  frame.query_handle = rng();
  auto random_string = [&rng](size_t max_len) {
    std::string s;
    const size_t len = rng() % max_len;
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(rng() % 256));
    }
    return s;
  };
  frame.rewriting = random_string(300);
  frame.certificate = random_string(300);
  frame.error = random_string(100);
  return frame;
}

void ExpectRequestEq(const PlanRequestFrame& a, const PlanRequestFrame& b) {
  EXPECT_EQ(a.request_id, b.request_id);
  EXPECT_EQ(a.query_is_handle, b.query_is_handle);
  EXPECT_EQ(a.want_certificate, b.want_certificate);
  EXPECT_EQ(a.options, b.options);
  EXPECT_EQ(a.query_text, b.query_text);
  EXPECT_EQ(a.query_handle, b.query_handle);
}

void ExpectResponseEq(const PlanResponseFrame& a, const PlanResponseFrame& b) {
  EXPECT_EQ(a.request_id, b.request_id);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.reject_reason, b.reject_reason);
  EXPECT_EQ(a.plan_status, b.plan_status);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.service_level, b.service_level);
  EXPECT_EQ(a.cache_hit, b.cache_hit);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.served_from_cache_only, b.served_from_cache_only);
  EXPECT_EQ(a.model_demoted, b.model_demoted);
  EXPECT_EQ(a.queue_wait_ms, b.queue_wait_ms);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.query_handle, b.query_handle);
  EXPECT_EQ(a.rewriting, b.rewriting);
  EXPECT_EQ(a.certificate, b.certificate);
  EXPECT_EQ(a.error, b.error);
}

TEST(FrameTest, RequestRoundTripProperty) {
  std::mt19937_64 rng(0xF00D);
  for (int trial = 0; trial < 500; ++trial) {
    const PlanRequestFrame original = RandomRequest(rng);
    std::string wire;
    EncodePlanRequest(original, &wire);

    std::string_view payload;
    size_t consumed = 0;
    ASSERT_EQ(ExtractFrame(wire, kDefaultMaxPayload, &payload, &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(consumed, wire.size());

    PlanRequestFrame decoded;
    ASSERT_EQ(DecodePlanRequest(payload, &decoded), DecodeStatus::kOk);
    ExpectRequestEq(decoded, original);
  }
}

TEST(FrameTest, ResponseRoundTripProperty) {
  std::mt19937_64 rng(0xBEEF);
  for (int trial = 0; trial < 500; ++trial) {
    const PlanResponseFrame original = RandomResponse(rng);
    std::string wire;
    EncodePlanResponse(original, &wire);

    std::string_view payload;
    size_t consumed = 0;
    ASSERT_EQ(ExtractFrame(wire, kDefaultMaxPayload, &payload, &consumed),
              DecodeStatus::kOk);

    PlanResponseFrame decoded;
    ASSERT_EQ(DecodePlanResponse(payload, &decoded), DecodeStatus::kOk);
    ExpectResponseEq(decoded, original);
  }
}

TEST(FrameTest, BackToBackFramesExtractOneAtATime) {
  std::mt19937_64 rng(7);
  std::string wire;
  std::vector<PlanRequestFrame> originals;
  for (int i = 0; i < 10; ++i) {
    originals.push_back(RandomRequest(rng));
    EncodePlanRequest(originals.back(), &wire);
  }
  std::string_view rest = wire;
  for (int i = 0; i < 10; ++i) {
    std::string_view payload;
    size_t consumed = 0;
    ASSERT_EQ(ExtractFrame(rest, kDefaultMaxPayload, &payload, &consumed),
              DecodeStatus::kOk);
    PlanRequestFrame decoded;
    ASSERT_EQ(DecodePlanRequest(payload, &decoded), DecodeStatus::kOk);
    ExpectRequestEq(decoded, originals[static_cast<size_t>(i)]);
    rest = rest.substr(consumed);
  }
  EXPECT_TRUE(rest.empty());
}

// Truncation at EVERY byte boundary: the extractor must say kNeedMore for
// any strict prefix (a partial frame from a slow client), and the payload
// decoder must say kMalformed for any strict payload prefix — never crash,
// never succeed.
TEST(FrameTest, EveryTruncationIsNeedMoreOrMalformed) {
  std::mt19937_64 rng(42);
  const PlanRequestFrame original = RandomRequest(rng);
  std::string wire;
  EncodePlanRequest(original, &wire);

  for (size_t cut = 0; cut < wire.size(); ++cut) {
    std::string_view payload;
    size_t consumed = 0;
    EXPECT_EQ(ExtractFrame(std::string_view(wire).substr(0, cut),
                           kDefaultMaxPayload, &payload, &consumed),
              DecodeStatus::kNeedMore)
        << "cut=" << cut;
  }

  std::string_view payload;
  size_t consumed = 0;
  ASSERT_EQ(ExtractFrame(wire, kDefaultMaxPayload, &payload, &consumed),
            DecodeStatus::kOk);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    PlanRequestFrame decoded;
    EXPECT_NE(DecodePlanRequest(payload.substr(0, cut), &decoded),
              DecodeStatus::kOk)
        << "payload cut=" << cut;
  }
}

TEST(FrameTest, OversizedLengthPrefixIsRejectedBeforeBuffering) {
  std::string wire;
  const uint32_t huge = kDefaultMaxPayload + 1;
  wire.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  wire += "xxxx";

  std::string_view payload;
  size_t consumed = 0;
  EXPECT_EQ(ExtractFrame(wire, kDefaultMaxPayload, &payload, &consumed),
            DecodeStatus::kTooLarge);
}

TEST(FrameTest, VersionSkewIsReportedWithRequestIdIntact) {
  PlanRequestFrame original;
  original.request_id = 0xDEADBEEFCAFE;
  original.query_text = "q(X) :- r(X).";
  std::string wire;
  EncodePlanRequest(original, &wire);
  // Payload byte 0 (after the 4-byte length prefix) is the version.
  wire[4] = static_cast<char>(kProtocolVersion + 1);

  std::string_view payload;
  size_t consumed = 0;
  ASSERT_EQ(ExtractFrame(wire, kDefaultMaxPayload, &payload, &consumed),
            DecodeStatus::kOk);
  PlanRequestFrame decoded;
  EXPECT_EQ(DecodePlanRequest(payload, &decoded), DecodeStatus::kVersionSkew);
  // The fixed header survives, so the server can answer the right request
  // with kUnsupportedVersion instead of dropping the connection.
  EXPECT_EQ(decoded.request_id, original.request_id);
}

TEST(FrameTest, WrongKindIsBadKindInEitherDirection) {
  PlanRequestFrame request;
  request.query_text = "q(X) :- r(X).";
  std::string request_wire;
  EncodePlanRequest(request, &request_wire);

  PlanResponseFrame response;
  std::string response_wire;
  EncodePlanResponse(response, &response_wire);

  std::string_view payload;
  size_t consumed = 0;
  ASSERT_EQ(ExtractFrame(response_wire, kDefaultMaxPayload, &payload,
                         &consumed),
            DecodeStatus::kOk);
  PlanRequestFrame as_request;
  EXPECT_EQ(DecodePlanRequest(payload, &as_request), DecodeStatus::kBadKind);

  ASSERT_EQ(ExtractFrame(request_wire, kDefaultMaxPayload, &payload,
                         &consumed),
            DecodeStatus::kOk);
  PlanResponseFrame as_response;
  EXPECT_EQ(DecodePlanResponse(payload, &as_response),
            DecodeStatus::kBadKind);
}

TEST(FrameTest, MalformedPayloadsAreRejected) {
  // Bad model code.
  PlanRequestFrame frame;
  frame.query_text = "q(X) :- r(X).";
  std::string wire;
  EncodePlanRequest(frame, &wire);
  wire[4 + 1 + 1 + 2 + 8] = 9;  // model byte after version/kind/flags/id
  std::string_view payload;
  size_t consumed = 0;
  ASSERT_EQ(ExtractFrame(wire, kDefaultMaxPayload, &payload, &consumed),
            DecodeStatus::kOk);
  PlanRequestFrame decoded;
  EXPECT_EQ(DecodePlanRequest(payload, &decoded), DecodeStatus::kMalformed);

  // Handle flag with a query field that is not exactly 8 bytes.
  PlanRequestFrame handle_frame;
  handle_frame.query_is_handle = true;
  handle_frame.query_handle = 123;
  wire.clear();
  EncodePlanRequest(handle_frame, &wire);
  wire.back() = 'x';  // still length-consistent? no: mutate inner length
  // Rebuild properly: encode text frame then flip the handle flag on.
  wire.clear();
  PlanRequestFrame text_frame;
  text_frame.query_text = "seven b";  // 7 bytes != sizeof(uint64_t)
  EncodePlanRequest(text_frame, &wire);
  wire[4 + 2] = static_cast<char>(kFlagQueryIsHandle);  // flags lo byte
  ASSERT_EQ(ExtractFrame(wire, kDefaultMaxPayload, &payload, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(DecodePlanRequest(payload, &decoded), DecodeStatus::kMalformed);

  // Trailing junk after a valid payload.
  wire.clear();
  EncodePlanRequest(frame, &wire);
  uint32_t len = 0;
  std::memcpy(&len, wire.data(), sizeof(len));
  len += 3;
  std::memcpy(wire.data(), &len, sizeof(len));
  wire += "abc";
  ASSERT_EQ(ExtractFrame(wire, kDefaultMaxPayload, &payload, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(DecodePlanRequest(payload, &decoded), DecodeStatus::kMalformed);
}

// Deadlines must be finite and non-negative; +inf in particular satisfies
// `>= 0` and `x == x`, so the decoder needs an explicit finiteness check.
TEST(FrameTest, NonFiniteOrNegativeDeadlinesAreMalformed) {
  for (const double bad :
       {std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN(), -1.0}) {
    PlanRequestFrame frame;
    frame.query_text = "q(X) :- r(X).";
    frame.options.deadline_ms = bad;
    std::string wire;
    EncodePlanRequest(frame, &wire);
    std::string_view payload;
    size_t consumed = 0;
    ASSERT_EQ(ExtractFrame(wire, kDefaultMaxPayload, &payload, &consumed),
              DecodeStatus::kOk);
    PlanRequestFrame decoded;
    EXPECT_EQ(DecodePlanRequest(payload, &decoded),
              DecodeStatus::kMalformed);
  }
}

// Random garbage payloads: the decoder must return a status, not crash,
// and whatever decodes as kOk must re-encode to the same bytes (the codec
// cannot invent unrepresentable states).
TEST(FrameTest, GarbageNeverCrashesAndOkImpliesReencodable) {
  std::mt19937_64 rng(0xABCD);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string payload;
    const size_t len = rng() % 128;
    for (size_t i = 0; i < len; ++i) {
      payload.push_back(static_cast<char>(rng() % 256));
    }
    PlanRequestFrame decoded;
    if (DecodePlanRequest(payload, &decoded) == DecodeStatus::kOk) {
      std::string rewire;
      EncodePlanRequest(decoded, &rewire);
      EXPECT_EQ(std::string_view(rewire).substr(4), payload);
    }
    PlanResponseFrame response;
    (void)DecodePlanResponse(payload, &response);
  }
}

TEST(FrameTest, HashQueryTextIsStableAndSpreads) {
  // Pinned FNV-1a 64 vectors: the handle is part of the wire contract, so
  // a silent hash change would orphan every client-cached handle.
  EXPECT_EQ(HashQueryText(""), 14695981039346656037ull);
  EXPECT_EQ(HashQueryText("a"), 12638187200555641996ull);
  EXPECT_NE(HashQueryText("q(X) :- r(X)."), HashQueryText("q(X) :- r(Y)."));
}

}  // namespace
}  // namespace vbr::net
