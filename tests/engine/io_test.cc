#include "engine/io.h"

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "engine/evaluator.h"
#include "engine/value.h"

namespace vbr {
namespace {

TEST(DatabaseIoTest, ParsesFactsWithMixedArguments) {
  const char* text = R"(
    % base data
    car(toyota, anderson).
    car(honda, anderson)
    loc(anderson, sf).
    size(42, -7).
  )";
  std::string error;
  auto db = ParseDatabase(text, &error);
  ASSERT_TRUE(db.has_value()) << error;
  const Relation* car = db->Find(SymbolTable::Global().Intern("car"));
  ASSERT_NE(car, nullptr);
  EXPECT_EQ(car->size(), 2u);
  EXPECT_TRUE(car->Contains({EncodeConstant(Const("toyota")),
                             EncodeConstant(Const("anderson"))}));
  const Relation* size_rel = db->Find(SymbolTable::Global().Intern("size"));
  ASSERT_NE(size_rel, nullptr);
  EXPECT_TRUE(size_rel->Contains({42, -7}));
}

TEST(DatabaseIoTest, SymbolicConstantsJoinWithQueryConstants) {
  auto db = ParseDatabase("car(toyota, anderson).");
  ASSERT_TRUE(db.has_value());
  const auto q = MustParseQuery("q(M) :- car(M, anderson)");
  const Relation result = EvaluateQuery(q, *db);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_TRUE(result.Contains({EncodeConstant(Const("toyota"))}));
}

TEST(DatabaseIoTest, ArityMismatchIsAnError) {
  std::string error;
  EXPECT_FALSE(ParseDatabase("r(1,2). r(3).", &error).has_value());
  EXPECT_NE(error.find("arity"), std::string::npos);
}

TEST(DatabaseIoTest, SyntaxErrorsCarryLineNumbers) {
  std::string error;
  EXPECT_FALSE(ParseDatabase("r(1,2).\nr(3,", &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(DatabaseIoTest, NumericPredicateRejected) {
  std::string error;
  EXPECT_FALSE(ParseDatabase("42(1).", &error).has_value());
}

TEST(DatabaseIoTest, ZeroArityFact) {
  auto db = ParseDatabase("flag().");
  ASSERT_TRUE(db.has_value());
  EXPECT_EQ(db->Find(SymbolTable::Global().Intern("flag"))->size(), 1u);
}

TEST(DatabaseIoTest, RoundTripThroughText) {
  auto db = ParseDatabase("r(1, 2). r(3, 4). s(anderson).");
  ASSERT_TRUE(db.has_value());
  const std::string dumped = DatabaseToText(*db);
  auto reloaded = ParseDatabase(dumped);
  ASSERT_TRUE(reloaded.has_value());
  for (Symbol p : db->Predicates()) {
    ASSERT_NE(reloaded->Find(p), nullptr);
    EXPECT_TRUE(db->Find(p)->EqualsAsSet(*reloaded->Find(p)));
  }
}

TEST(DatabaseIoTest, DumpIsSortedAndStable) {
  auto db = ParseDatabase("b(2). b(1). a(9).");
  ASSERT_TRUE(db.has_value());
  EXPECT_EQ(DatabaseToText(*db), "a(9).\nb(1).\nb(2).\n");
}

TEST(DatabaseIoTest, MissingFileReportsError) {
  std::string error;
  EXPECT_FALSE(LoadDatabaseFile("/nonexistent/x.facts", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace vbr
