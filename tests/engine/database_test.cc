#include "engine/database.h"

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "engine/value.h"

namespace vbr {
namespace {

TEST(ValueTest, NumericConstantsEncodeAsIntegers) {
  EXPECT_EQ(EncodeConstant(Const("42")), 42);
  EXPECT_EQ(EncodeConstant(Const("-7")), -7);
  EXPECT_EQ(EncodeConstant(Const("0")), 0);
}

TEST(ValueTest, SymbolicConstantsAreStableAndDisjointFromData) {
  const Value a1 = EncodeConstant(Const("anderson"));
  const Value a2 = EncodeConstant(Const("anderson"));
  const Value b = EncodeConstant(Const("boston"));
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_LE(a1, kSymbolicValueBase);
}

TEST(ValueTest, ValueToStringRoundTrips) {
  EXPECT_EQ(ValueToString(EncodeConstant(Const("anderson"))), "anderson");
  EXPECT_EQ(ValueToString(123), "123");
  EXPECT_EQ(ValueToString(-123), "-123");
}

TEST(DatabaseTest, GetOrCreateAndFind) {
  Database db;
  EXPECT_EQ(db.Find(SymbolTable::Global().Intern("nothing")), nullptr);
  db.AddRow("r", {1, 2});
  const Symbol r = SymbolTable::Global().Intern("r");
  ASSERT_NE(db.Find(r), nullptr);
  EXPECT_EQ(db.Find(r)->arity(), 2u);
  EXPECT_EQ(db.Find(r)->size(), 1u);
}

TEST(DatabaseTest, AddFactEncodesConstants) {
  Database db;
  const auto q = MustParseQuery("h() :- car(m,anderson)");
  db.AddFact(q.subgoal(0));
  const Relation* car = db.Find(SymbolTable::Global().Intern("car"));
  ASSERT_NE(car, nullptr);
  EXPECT_TRUE(car->Contains({EncodeConstant(Const("m")),
                             EncodeConstant(Const("anderson"))}));
}

TEST(DatabaseTest, TotalRowsAndPredicates) {
  Database db;
  db.AddRow("b_rel", {1});
  db.AddRow("a_rel", {1});
  db.AddRow("a_rel", {2});
  EXPECT_EQ(db.TotalRows(), 3u);
  const auto preds = db.Predicates();
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(SymbolTable::Global().NameOf(preds[0]), "a_rel");
}

TEST(DatabaseDeathTest, ArityMismatchAborts) {
  Database db;
  db.AddRow("r", {1, 2});
  EXPECT_DEATH(db.AddRow("r", {1}), "arity");
}

}  // namespace
}  // namespace vbr
