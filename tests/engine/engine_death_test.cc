// Contract violations the engine must reject loudly (failure injection).

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "engine/database.h"
#include "engine/evaluator.h"
#include "engine/materialize.h"

namespace vbr {
namespace {

TEST(EngineDeathTest, UnsafeQueryEvaluationAborts) {
  Database db;
  db.AddRow("r", {1, 1});
  const auto q = MustParseQuery("q(X,Y) :- r(X,X)");
  EXPECT_DEATH(EvaluateQuery(q, db), "unsafe");
}

TEST(EngineDeathTest, BuiltinOverUnboundVariableAborts) {
  Database db;
  db.AddRow("r", {1});
  // Y never appears in a relational subgoal.
  const auto q = MustParseQuery("q(X) :- r(X), X < Y");
  EXPECT_DEATH(EvaluateQuery(q, db), "builtin");
}

TEST(EngineDeathTest, UnsafeViewMaterializationAborts) {
  Database db;
  const auto v = MustParseQuery("v(X,Y) :- r(X,X)");
  Database out;
  EXPECT_DEATH(MaterializeView(v, db, &out), "safe");
}

TEST(EngineDeathTest, NonGroundFactAborts) {
  Database db;
  const auto q = MustParseQuery("h() :- r(X,a)");
  EXPECT_DEATH(db.AddFact(q.subgoal(0)), "ground");
}

TEST(EngineDeathTest, RowArityMismatchAborts) {
  Relation r(2);
  const Value row[] = {1, 2, 3};
  EXPECT_DEATH(r.Insert(std::span<const Value>(row, 3)), "arity");
}

}  // namespace
}  // namespace vbr
