#include "engine/relation.h"

#include <gtest/gtest.h>

namespace vbr {
namespace {

TEST(RelationTest, InsertAndContains) {
  Relation r(2);
  EXPECT_TRUE(r.Insert({1, 2}));
  EXPECT_TRUE(r.Insert({3, 4}));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains({1, 2}));
  EXPECT_FALSE(r.Contains({2, 1}));
}

TEST(RelationTest, SetSemanticsDeduplicates) {
  Relation r(2);
  EXPECT_TRUE(r.Insert({1, 2}));
  EXPECT_FALSE(r.Insert({1, 2}));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, ZeroArityRelation) {
  Relation r(0);
  EXPECT_TRUE(r.Insert(std::span<const Value>{}));
  EXPECT_FALSE(r.Insert(std::span<const Value>{}));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, RowAccess) {
  Relation r(3);
  r.Insert({7, 8, 9});
  auto row = r.row(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], 7);
  EXPECT_EQ(row[2], 9);
}

TEST(RelationTest, SortedRowsIsDeterministic) {
  Relation r(2);
  r.Insert({3, 4});
  r.Insert({1, 2});
  r.Insert({1, 1});
  const auto rows = r.SortedRows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<Value>{1, 1}));
  EXPECT_EQ(rows[2], (std::vector<Value>{3, 4}));
}

TEST(RelationTest, EqualsAsSetIgnoresInsertionOrder) {
  Relation a(2);
  a.Insert({1, 2});
  a.Insert({3, 4});
  Relation b(2);
  b.Insert({3, 4});
  b.Insert({1, 2});
  EXPECT_TRUE(a.EqualsAsSet(b));
  b.Insert({5, 6});
  EXPECT_FALSE(a.EqualsAsSet(b));
}

TEST(RelationTest, EqualsAsSetChecksArity) {
  Relation a(1);
  Relation b(2);
  EXPECT_FALSE(a.EqualsAsSet(b));
}

TEST(RelationTest, LargeInsertStress) {
  Relation r(2);
  for (Value i = 0; i < 5000; ++i) {
    EXPECT_TRUE(r.Insert({i, i * 2}));
  }
  for (Value i = 0; i < 5000; ++i) {
    EXPECT_FALSE(r.Insert({i, i * 2}));
    EXPECT_TRUE(r.Contains({i, i * 2}));
  }
  EXPECT_EQ(r.size(), 5000u);
}

TEST(RelationIndexTest, ProbeFindsMatchingRows) {
  Relation r(2);
  r.Insert({1, 10});
  r.Insert({1, 20});
  r.Insert({2, 30});
  RelationIndex index(r, {0});
  const Value key1[] = {1};
  const auto& hits = index.Probe(key1);
  EXPECT_EQ(hits.size(), 2u);
  const Value key3[] = {3};
  EXPECT_TRUE(index.Probe(key3).empty());
}

TEST(RelationIndexTest, MultiColumnKey) {
  Relation r(3);
  r.Insert({1, 2, 3});
  r.Insert({1, 2, 4});
  r.Insert({1, 3, 5});
  RelationIndex index(r, {0, 1});
  const Value key[] = {1, 2};
  EXPECT_EQ(index.Probe(key).size(), 2u);
}

TEST(RelationIndexTest, EmptyKeyIndexesEverything) {
  Relation r(1);
  r.Insert({1});
  r.Insert({2});
  RelationIndex index(r, {});
  EXPECT_EQ(index.Probe({}).size(), 2u);
}

}  // namespace
}  // namespace vbr
