#include "engine/materialize.h"

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "engine/evaluator.h"
#include "engine/value.h"

namespace vbr {
namespace {

Database CarLocPartDb() {
  Database db;
  const Value a = EncodeConstant(Const("anderson"));
  const Value toyota = EncodeConstant(Const("toyota"));
  const Value sf = EncodeConstant(Const("sf"));
  const Value s1 = EncodeConstant(Const("store1"));
  db.AddRow("car", {toyota, a});
  db.AddRow("loc", {a, sf});
  db.AddRow("part", {s1, toyota, sf});
  return db;
}

TEST(MaterializeTest, SingleView) {
  const auto v1 = MustParseQuery("v1(M,D,C) :- car(M,D), loc(D,C)");
  const Database views = MaterializeViews({v1}, CarLocPartDb());
  const Relation* rel = views.Find(v1.head().predicate());
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->size(), 1u);
}

TEST(MaterializeTest, ClosedWorldIdenticalViewsAreEqual) {
  // V1 and V5 have the same definition; closed-world materialization makes
  // their instances identical (the paper's Section 1 observation).
  const auto defs = MustParseProgram(R"(
    v1(M,D,C) :- car(M,D), loc(D,C)
    v5(M,D,C) :- car(M,D), loc(D,C)
  )");
  const Database views =
      MaterializeViews({defs[0], defs[1]}, CarLocPartDb());
  const Relation* r1 = views.Find(defs[0].head().predicate());
  const Relation* r5 = views.Find(defs[1].head().predicate());
  ASSERT_NE(r1, nullptr);
  ASSERT_NE(r5, nullptr);
  EXPECT_TRUE(r1->EqualsAsSet(*r5));
}

TEST(MaterializeTest, AllFiveCarLocPartViews) {
  const auto defs = MustParseProgram(R"(
    v1(M,D,C) :- car(M,D), loc(D,C)
    v2(S,M,C) :- part(S,M,C)
    v3(S) :- car(M,anderson), loc(anderson,C), part(S,M,C)
    v4(M,D,C,S) :- car(M,D), loc(D,C), part(S,M,C)
    v5(M,D,C) :- car(M,D), loc(D,C)
  )");
  const Database views = MaterializeViews(defs, CarLocPartDb());
  EXPECT_EQ(views.NumRelations(), 5u);
  EXPECT_EQ(views.Find(defs[2].head().predicate())->size(), 1u);
  EXPECT_EQ(views.Find(defs[3].head().predicate())->arity(), 4u);
}

TEST(MaterializeTest, RewritingOverViewsMatchesQueryOverBase) {
  // End-to-end: evaluating rewriting P2 over the materialized views equals
  // evaluating Q over the base database.
  const Database base = CarLocPartDb();
  const auto defs = MustParseProgram(R"(
    v1(M,D,C) :- car(M,D), loc(D,C)
    v2(S,M,C) :- part(S,M,C)
  )");
  const Database views = MaterializeViews(defs, base);
  const auto q = MustParseQuery(
      "q1(S,C) :- car(M,anderson), loc(anderson,C), part(S,M,C)");
  const auto p2 = MustParseQuery("q1(S,C) :- v1(M,anderson,C), v2(S,M,C)");
  EXPECT_TRUE(EvaluateQuery(q, base).EqualsAsSet(EvaluateQuery(p2, views)));
}

TEST(MaterializeTest, ViewWithHeadConstant) {
  const auto v = MustParseQuery("v(M,flag) :- car(M,anderson)");
  const Database views = MaterializeViews({v}, CarLocPartDb());
  const Relation* rel = views.Find(v.head().predicate());
  ASSERT_NE(rel, nullptr);
  ASSERT_EQ(rel->size(), 1u);
  EXPECT_EQ(rel->row(0)[1], EncodeConstant(Const("flag")));
}

}  // namespace
}  // namespace vbr
