#include "engine/acyclic.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cq/parser.h"
#include "engine/evaluator.h"
#include "workload/data_gen.h"
#include "workload/generator.h"

namespace vbr {
namespace {

std::vector<Atom> Body(const std::string& rule) {
  return MustParseQuery("h() :- " + rule).body();
}

TEST(JoinTreeTest, ChainIsAcyclic) {
  auto tree = BuildJoinTree(Body("e(X,Y), f(Y,Z), g(Z,W)"));
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->size(), 3u);
  EXPECT_EQ((*tree)[0].parent, -1);
  // Every non-root node's parent precedes it.
  for (size_t t = 1; t < tree->size(); ++t) {
    EXPECT_GE((*tree)[t].parent, 0);
    EXPECT_LT((*tree)[t].parent, static_cast<int>(t));
  }
}

TEST(JoinTreeTest, StarIsAcyclic) {
  EXPECT_TRUE(IsAcyclicQuery(
      MustParseQuery("q(C) :- p(C,X), r(C,Y), s(C,Z)")));
}

TEST(JoinTreeTest, TriangleIsCyclic) {
  EXPECT_FALSE(IsAcyclicQuery(
      MustParseQuery("q(X) :- e(X,Y), e(Y,Z), e(Z,X)")));
  EXPECT_FALSE(
      BuildJoinTree(Body("a(X,Y), b(Y,Z), c(Z,X)")).has_value());
}

TEST(JoinTreeTest, CycleWithCoveringEdgeIsAcyclic) {
  // The "triangle" plus a hyperedge covering it is alpha-acyclic.
  EXPECT_TRUE(IsAcyclicQuery(
      MustParseQuery("q(X) :- a(X,Y), b(Y,Z), c(Z,X), big(X,Y,Z)")));
}

TEST(JoinTreeTest, DisconnectedComponentsAreAcyclic) {
  auto tree = BuildJoinTree(Body("r(X), s(Y)"));
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->size(), 2u);
}

TEST(JoinTreeTest, SingleAndEmptyAtomLists) {
  EXPECT_EQ(BuildJoinTree(Body("r(X,Y)"))->size(), 1u);
  EXPECT_TRUE(BuildJoinTree({})->empty());
}

TEST(SemiJoinReduceTest, RemovesDanglingTuples) {
  Database db;
  // e: 1->2 joins f: 2->3; e: 9->9 dangles; f: 7->7 dangles.
  db.AddRow("e", {1, 2});
  db.AddRow("e", {9, 9});
  db.AddRow("f", {2, 3});
  db.AddRow("f", {7, 7});
  const auto atoms = Body("e(X,Y), f(Y,Z)");
  const auto tree = BuildJoinTree(atoms);
  ASSERT_TRUE(tree.has_value());
  const auto reduced = SemiJoinReduce(atoms, db, *tree);
  ASSERT_EQ(reduced.size(), 2u);
  EXPECT_EQ(reduced[0].size(), 1u);
  EXPECT_TRUE(reduced[0].Contains({1, 2}));
  EXPECT_EQ(reduced[1].size(), 1u);
  EXPECT_TRUE(reduced[1].Contains({2, 3}));
}

TEST(SemiJoinReduceTest, ConstantsAndRepeatedVarsFilterNodes) {
  Database db;
  db.AddRow("r", {1, 1});
  db.AddRow("r", {1, 2});
  db.AddRow("r", {5, 5});
  const auto atoms = Body("r(X,X)");
  const auto tree = BuildJoinTree(atoms);
  const auto reduced = SemiJoinReduce(atoms, db, *tree);
  EXPECT_EQ(reduced[0].size(), 2u);  // (1,1) and (5,5).
}

TEST(SemiJoinReduceTest, EmptyPartnerAnnihilatesDisconnectedNode) {
  Database db;
  db.AddRow("r", {1});
  // s is empty.
  const auto atoms = Body("r(X), s(Y)");
  const auto tree = BuildJoinTree(atoms);
  const auto reduced = SemiJoinReduce(atoms, db, *tree);
  EXPECT_EQ(reduced[0].size() + reduced[1].size(), 0u);
}

TEST(EvaluateAcyclicTest, MatchesGeneralEvaluatorOnChain) {
  Database db;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    db.AddRow("e", {rng.UniformInt(0, 20), rng.UniformInt(0, 20)});
    db.AddRow("f", {rng.UniformInt(0, 20), rng.UniformInt(0, 20)});
    db.AddRow("g", {rng.UniformInt(0, 20), rng.UniformInt(0, 20)});
  }
  const auto q = MustParseQuery("q(X,W) :- e(X,Y), f(Y,Z), g(Z,W)");
  EXPECT_TRUE(
      EvaluateAcyclicQuery(q, db).EqualsAsSet(EvaluateQuery(q, db)));
}

TEST(EvaluateAcyclicTest, MatchesGeneralEvaluatorOnGeneratedWorkloads) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    WorkloadConfig wc;
    wc.shape = (seed % 2 == 0) ? QueryShape::kStar : QueryShape::kChain;
    wc.num_query_subgoals = 5;
    wc.num_views = 4;
    wc.seed = seed;
    const Workload w = GenerateWorkload(wc);
    DataConfig dc;
    dc.rows_per_relation = 80;
    dc.domain_size = 12;
    dc.seed = seed * 31;
    const Database db = GenerateBaseData(w.query, w.views, dc);
    ASSERT_TRUE(IsAcyclicQuery(w.query));
    EXPECT_TRUE(EvaluateAcyclicQuery(w.query, db)
                    .EqualsAsSet(EvaluateQuery(w.query, db)))
        << w.query.ToString();
  }
}

TEST(EvaluateAcyclicTest, HeadConstantsAndSelections) {
  Database db;
  db.AddRow("e", {1, 2});
  db.AddRow("e", {3, 4});
  const auto q = MustParseQuery("q(Y,tag) :- e(1,Y)");
  const Relation result = EvaluateAcyclicQuery(q, db);
  EXPECT_TRUE(result.EqualsAsSet(EvaluateQuery(q, db)));
  EXPECT_EQ(result.size(), 1u);
}

TEST(EvaluateAcyclicDeathTest, CyclicQueryAborts) {
  Database db;
  const auto q = MustParseQuery("q(X) :- e(X,Y), e(Y,Z), e(Z,X)");
  EXPECT_DEATH(EvaluateAcyclicQuery(q, db), "acyclic");
}

}  // namespace
}  // namespace vbr
