#include "engine/evaluator.h"

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "engine/value.h"

namespace vbr {
namespace {

Database PathDb() {
  // e: 1->2->3->4, plus 2->2 self loop.
  Database db;
  db.AddRow("e", {1, 2});
  db.AddRow("e", {2, 3});
  db.AddRow("e", {3, 4});
  db.AddRow("e", {2, 2});
  return db;
}

TEST(EvaluatorTest, SingleAtomScan) {
  const auto q = MustParseQuery("q(X,Y) :- e(X,Y)");
  const Relation result = EvaluateQuery(q, PathDb());
  EXPECT_EQ(result.size(), 4u);
}

TEST(EvaluatorTest, SelectionOnConstant) {
  const auto q = MustParseQuery("q(Y) :- e(2,Y)");
  const Relation result = EvaluateQuery(q, PathDb());
  EXPECT_EQ(result.size(), 2u);  // (3) and (2).
  EXPECT_TRUE(result.Contains({3}));
  EXPECT_TRUE(result.Contains({2}));
}

TEST(EvaluatorTest, JoinPathsOfLengthTwo) {
  const auto q = MustParseQuery("q(X,Z) :- e(X,Y), e(Y,Z)");
  const Relation result = EvaluateQuery(q, PathDb());
  // 1->2->3, 1->2->2, 2->3->4, 2->2->3, 2->2->2, 3->4->? no.
  EXPECT_EQ(result.size(), 5u);
  EXPECT_TRUE(result.Contains({1, 3}));
  EXPECT_TRUE(result.Contains({2, 2}));
  EXPECT_FALSE(result.Contains({3, 1}));
}

TEST(EvaluatorTest, RepeatedVariableSelfLoop) {
  const auto q = MustParseQuery("q(X) :- e(X,X)");
  const Relation result = EvaluateQuery(q, PathDb());
  EXPECT_EQ(result.size(), 1u);
  EXPECT_TRUE(result.Contains({2}));
}

TEST(EvaluatorTest, ProjectionDeduplicates) {
  const auto q = MustParseQuery("q(X) :- e(X,Y)");
  const Relation result = EvaluateQuery(q, PathDb());
  EXPECT_EQ(result.size(), 3u);  // 1, 2, 3.
}

TEST(EvaluatorTest, HeadConstantsAreEmitted) {
  const auto q = MustParseQuery("q(X,tag) :- e(X,2)");
  const Relation result = EvaluateQuery(q, PathDb());
  EXPECT_EQ(result.size(), 2u);
  EXPECT_TRUE(result.Contains({1, EncodeConstant(Const("tag"))}));
}

TEST(EvaluatorTest, EmptyRelationGivesEmptyAnswer) {
  const auto q = MustParseQuery("q(X) :- e(X,Y), missing(Y)");
  const Relation result = EvaluateQuery(q, PathDb());
  EXPECT_EQ(result.size(), 0u);
}

TEST(EvaluatorTest, CartesianProduct) {
  Database db;
  db.AddRow("r", {1});
  db.AddRow("r", {2});
  db.AddRow("s", {10});
  db.AddRow("s", {20});
  db.AddRow("s", {30});
  const auto q = MustParseQuery("q(X,Y) :- r(X), s(Y)");
  EXPECT_EQ(EvaluateQuery(q, db).size(), 6u);
}

TEST(EvaluatorTest, BuiltinComparisonFilters) {
  const auto q = MustParseQuery("q(X,Y) :- e(X,Y), X < Y");
  const Relation result = EvaluateQuery(q, PathDb());
  EXPECT_EQ(result.size(), 3u);
  EXPECT_FALSE(result.Contains({2, 2}));
}

TEST(EvaluatorTest, BuiltinAgainstConstant) {
  const auto q = MustParseQuery("q(X,Y) :- e(X,Y), Y >= 3");
  const Relation result = EvaluateQuery(q, PathDb());
  EXPECT_EQ(result.size(), 2u);
}

TEST(EvaluatorTest, BuiltinNotEqual) {
  const auto q = MustParseQuery("q(X,Y) :- e(X,Y), X != Y");
  EXPECT_EQ(EvaluateQuery(q, PathDb()).size(), 3u);
}

TEST(EvaluatorTest, TriangleQuery) {
  Database db;
  db.AddRow("e", {1, 2});
  db.AddRow("e", {2, 3});
  db.AddRow("e", {3, 1});
  db.AddRow("e", {3, 5});
  const auto q = MustParseQuery("q(X) :- e(X,Y), e(Y,Z), e(Z,X)");
  const Relation result = EvaluateQuery(q, db);
  EXPECT_EQ(result.size(), 3u);  // Each triangle vertex.
}

TEST(EvaluateJoinTest, AllVariablesRetained) {
  std::vector<Term> columns;
  const auto q = MustParseQuery("q(X) :- e(X,Y), e(Y,Z)");
  const Relation ir = EvaluateJoin(q.body(), PathDb(), &columns);
  ASSERT_EQ(columns.size(), 3u);
  EXPECT_EQ(columns[0], Var("X"));
  EXPECT_EQ(columns[1], Var("Y"));
  EXPECT_EQ(columns[2], Var("Z"));
  EXPECT_EQ(ir.size(), 5u);
  EXPECT_TRUE(ir.Contains({1, 2, 3}));
}

TEST(EvaluateJoinTest, JoinSizeMatchesEvaluateJoin) {
  const auto q = MustParseQuery("q(X) :- e(X,Y), e(Y,Z)");
  EXPECT_EQ(JoinSize(q.body(), PathDb()), 5u);
}

TEST(EvaluateJoinTest, OrderIndependence) {
  const auto q1 = MustParseQuery("q(X) :- e(X,Y), e(Y,Z)");
  const auto q2 = MustParseQuery("q(X) :- e(Y,Z), e(X,Y)");
  EXPECT_EQ(JoinSize(q1.body(), PathDb()), JoinSize(q2.body(), PathDb()));
}

TEST(EvaluatorTest, CarLocPartEndToEnd) {
  // The paper's running example, with concrete data.
  Database db;
  const Value a = EncodeConstant(Const("anderson"));
  const Value toyota = EncodeConstant(Const("toyota"));
  const Value honda = EncodeConstant(Const("honda"));
  const Value sf = EncodeConstant(Const("sf"));
  const Value la = EncodeConstant(Const("la"));
  const Value s1 = EncodeConstant(Const("store1"));
  const Value s2 = EncodeConstant(Const("store2"));
  db.AddRow("car", {toyota, a});
  db.AddRow("car", {honda, a});
  db.AddRow("loc", {a, sf});
  db.AddRow("loc", {a, la});
  db.AddRow("part", {s1, toyota, sf});
  db.AddRow("part", {s2, honda, la});
  db.AddRow("part", {s2, toyota, la});

  const auto q = MustParseQuery(
      "q1(S,C) :- car(M,anderson), loc(anderson,C), part(S,M,C)");
  const Relation result = EvaluateQuery(q, db);
  // (s1,sf) via toyota; (s2,la) via both honda and toyota (set semantics).
  EXPECT_EQ(result.size(), 2u);
  EXPECT_TRUE(result.Contains({s1, sf}));
  EXPECT_TRUE(result.Contains({s2, la}));
}

}  // namespace
}  // namespace vbr
