// Randomized end-to-end soundness of CoreCover (DESIGN.md invariant 1):
// every rewriting CoreCover returns must (a) verify symbolically as an
// equivalent rewriting and (b) compute exactly the query's answer when
// evaluated over views materialized from random base data.

#include <gtest/gtest.h>

#include <tuple>

#include "engine/evaluator.h"
#include "engine/materialize.h"
#include "rewrite/core_cover.h"
#include "rewrite/rewriting.h"
#include "workload/data_gen.h"
#include "workload/generator.h"

namespace vbr {
namespace {

using SoundnessParam = std::tuple<QueryShape, uint64_t /*seed*/,
                                  size_t /*nondistinguished*/>;

class CoreCoverSoundnessTest
    : public ::testing::TestWithParam<SoundnessParam> {};

Workload MakeWorkload(const SoundnessParam& param) {
  WorkloadConfig config;
  config.shape = std::get<0>(param);
  config.seed = std::get<1>(param);
  config.num_nondistinguished_query_vars = std::get<2>(param);
  config.num_query_subgoals = 6;
  config.num_predicates = 6;
  config.num_views = 25;
  return GenerateWorkload(config);
}

TEST_P(CoreCoverSoundnessTest, RewritingsVerifySymbolically) {
  const Workload w = MakeWorkload(GetParam());
  CoreCoverOptions options;
  options.verify_rewritings = true;  // CHECK-fails internally if unsound.
  const auto result = CoreCover(w.query, w.views, options);
  EXPECT_TRUE(result.has_rewriting);
  for (const auto& p : result.rewritings) {
    EXPECT_TRUE(IsEquivalentRewriting(p, w.query, w.views)) << p.ToString();
  }
}

TEST_P(CoreCoverSoundnessTest, RewritingsEvaluateToQueryAnswer) {
  const Workload w = MakeWorkload(GetParam());
  DataConfig dc;
  dc.rows_per_relation = 60;
  dc.domain_size = 12;
  dc.seed = std::get<1>(GetParam()) * 977 + 13;
  const Database base = GenerateBaseData(w.query, w.views, dc);
  const Database view_db = MaterializeViews(w.views, base);
  const Relation expected = EvaluateQuery(w.query, base);

  const auto result = CoreCover(w.query, w.views);
  ASSERT_TRUE(result.has_rewriting);
  for (const auto& p : result.rewritings) {
    const Relation got = EvaluateQuery(p, view_db);
    EXPECT_TRUE(got.EqualsAsSet(expected))
        << p.ToString() << "\n got " << got.ToString() << "\n exp "
        << expected.ToString();
  }
}

TEST_P(CoreCoverSoundnessTest, StarVariantAlsoSound) {
  const Workload w = MakeWorkload(GetParam());
  DataConfig dc;
  dc.rows_per_relation = 40;
  dc.domain_size = 10;
  dc.seed = std::get<1>(GetParam()) * 31 + 7;
  const Database base = GenerateBaseData(w.query, w.views, dc);
  const Database view_db = MaterializeViews(w.views, base);
  const Relation expected = EvaluateQuery(w.query, base);

  CoreCoverOptions options;
  options.max_rewritings = 32;
  const auto result = CoreCoverStar(w.query, w.views, options);
  ASSERT_TRUE(result.has_rewriting);
  for (const auto& p : result.rewritings) {
    EXPECT_TRUE(EvaluateQuery(p, view_db).EqualsAsSet(expected))
        << p.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CoreCoverSoundnessTest,
    ::testing::Combine(::testing::Values(QueryShape::kStar,
                                         QueryShape::kChain),
                       ::testing::Range<uint64_t>(1, 9),
                       ::testing::Values<size_t>(0, 1)),
    [](const ::testing::TestParamInfo<SoundnessParam>& info) {
      const char* shape =
          std::get<0>(info.param) == QueryShape::kStar ? "star" : "chain";
      return std::string(shape) + "_seed" +
             std::to_string(std::get<1>(info.param)) + "_nd" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace vbr
