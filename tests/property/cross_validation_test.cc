// Cross-module consistency checks:
//   1. Printer/parser round-trips on generated workloads.
//   2. The symbolic view-tuple computation (homomorphism enumeration over
//      the canonical database) agrees with the relational engine evaluating
//      the same view over the canonical facts as a concrete database.
//   3. Step-by-step physical-plan execution agrees with the set-oriented
//      evaluator on random orders.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cost/physical_plan.h"
#include "cq/containment.h"
#include "cq/parser.h"
#include "engine/evaluator.h"
#include "engine/materialize.h"
#include "rewrite/canonical_db.h"
#include "rewrite/core_cover.h"
#include "rewrite/view_tuple.h"
#include "workload/data_gen.h"
#include "workload/generator.h"

namespace vbr {
namespace {

class CrossValidationTest : public ::testing::TestWithParam<uint64_t> {};

Workload MakeWorkload(uint64_t seed) {
  WorkloadConfig config;
  config.shape = (seed % 2 == 0) ? QueryShape::kStar : QueryShape::kChain;
  config.num_query_subgoals = 5;
  config.num_predicates = 5;
  config.num_views = 15;
  config.seed = seed;
  return GenerateWorkload(config);
}

TEST_P(CrossValidationTest, ParserRoundTripsGeneratedQueries) {
  const Workload w = MakeWorkload(GetParam());
  EXPECT_EQ(MustParseQuery(w.query.ToString()), w.query);
  for (const View& v : w.views) {
    EXPECT_EQ(MustParseQuery(v.ToString()), v);
  }
}

TEST_P(CrossValidationTest, SymbolicViewTuplesMatchEngineOnCanonicalDb) {
  const Workload w = MakeWorkload(GetParam());
  const ConjunctiveQuery q = Minimize(w.query);
  const CanonicalDatabase canonical(q);
  Database frozen_db;
  for (const Atom& fact : canonical.facts()) frozen_db.AddFact(fact);

  for (size_t vi = 0; vi < w.views.size(); ++vi) {
    const ViewSet single = {w.views[vi]};
    const size_t symbolic = ComputeViewTuples(q, single).size();
    const size_t relational =
        EvaluateQuery(w.views[vi], frozen_db).size();
    EXPECT_EQ(symbolic, relational) << w.views[vi].ToString();
  }
}

TEST_P(CrossValidationTest, ExecutePlanMatchesEvaluatorOnRandomOrders) {
  const Workload w = MakeWorkload(GetParam());
  DataConfig dc;
  dc.rows_per_relation = 40;
  dc.domain_size = 10;
  dc.seed = GetParam() * 7919;
  const Database base = GenerateBaseData(w.query, w.views, dc);
  const Database view_db = MaterializeViews(w.views, base);

  const auto cc = CoreCoverStar(w.query, w.views);
  Rng rng(GetParam());
  for (const auto& p : cc.rewritings) {
    const Relation expected = EvaluateQuery(p, view_db);
    // A random order of the subgoals.
    std::vector<size_t> order(p.num_subgoals());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1],
                order[static_cast<size_t>(rng.UniformInt(0, i - 1))]);
    }
    PhysicalPlan plan;
    plan.rewriting = p;
    plan.order = order;
    EXPECT_TRUE(ExecutePlan(plan, view_db).answer.EqualsAsSet(expected))
        << plan.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidationTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace vbr
