// Randomized M3 safety (DESIGN.md invariant 5): every attribute the GSR
// heuristic drops leaves the evaluated answer unchanged, across shapes,
// seeds and data distributions.

#include <gtest/gtest.h>

#include <tuple>

#include "cost/supplementary.h"
#include "engine/evaluator.h"
#include "engine/materialize.h"
#include "rewrite/core_cover.h"
#include "workload/data_gen.h"
#include "workload/generator.h"

namespace vbr {
namespace {

using Param = std::tuple<uint64_t /*seed*/, double /*skew*/>;

class M3SafetyTest : public ::testing::TestWithParam<Param> {};

TEST_P(M3SafetyTest, GsrPlansComputeTheQueryAnswer) {
  const auto [seed, skew] = GetParam();
  WorkloadConfig wc;
  wc.shape = QueryShape::kChain;
  wc.num_query_subgoals = 5;
  wc.num_predicates = 4;
  wc.num_views = 12;
  wc.seed = seed;
  const Workload w = GenerateWorkload(wc);

  DataConfig dc;
  dc.rows_per_relation = 50;
  dc.domain_size = 8;
  dc.skew = skew;
  dc.seed = seed * 1337 + 11;
  const Database base = GenerateBaseData(w.query, w.views, dc);
  const Database view_db = MaterializeViews(w.views, base);
  const Relation expected = EvaluateQuery(w.query, base);

  // Pick a multi-subgoal rewriting to exercise dropping.
  CoreCoverOptions options;
  options.max_rewritings = 16;
  const auto cc = CoreCoverStar(w.query, w.views, options);
  ASSERT_TRUE(cc.has_rewriting);
  for (const auto& p : cc.rewritings) {
    if (p.num_subgoals() < 2 || p.num_subgoals() > 4) continue;
    const auto comparison = CompareM3Strategies(p, w.query, w.views, view_db);
    EXPECT_TRUE(ExecutePlan(comparison.sr_plan, view_db)
                    .answer.EqualsAsSet(expected))
        << "SR plan broke: " << comparison.sr_plan.ToString();
    EXPECT_TRUE(ExecutePlan(comparison.gsr_plan, view_db)
                    .answer.EqualsAsSet(expected))
        << "GSR plan broke: " << comparison.gsr_plan.ToString();
    // Note: gsr_cost is NOT always <= sr_cost — dropping a semantically
    // redundant equality can inflate intermediate sizes (the tradeoff the
    // paper assigns to the optimizer) — so only safety is asserted here.
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSkews, M3SafetyTest,
    ::testing::Combine(::testing::Range<uint64_t>(1, 11),
                       ::testing::Values(0.0, 2.0)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) > 0 ? "_skewed" : "_uniform");
    });

}  // namespace
}  // namespace vbr
