// Reproducibility: the entire pipeline must be deterministic — same inputs,
// byte-identical outputs — across repeated in-process runs. (Fresh-variable
// NAMES differ between runs by design; the checks below compare structures
// that must not depend on them.)

#include <gtest/gtest.h>

#include "cq/containment.h"
#include "rewrite/core_cover.h"
#include "workload/generator.h"

namespace vbr {
namespace {

class DeterminismTest : public ::testing::TestWithParam<uint64_t> {};

Workload MakeWorkload(uint64_t seed) {
  WorkloadConfig config;
  config.shape = (seed % 2 == 0) ? QueryShape::kStar : QueryShape::kChain;
  config.num_query_subgoals = 6;
  config.num_views = 20;
  config.seed = seed;
  return GenerateWorkload(config);
}

TEST_P(DeterminismTest, CoreCoverIsDeterministic) {
  const Workload w = MakeWorkload(GetParam());
  const auto first = CoreCover(w.query, w.views);
  const auto second = CoreCover(w.query, w.views);
  EXPECT_EQ(first.has_rewriting, second.has_rewriting);
  EXPECT_EQ(first.stats.minimum_cover_size,
            second.stats.minimum_cover_size);
  ASSERT_EQ(first.rewritings.size(), second.rewritings.size());
  for (size_t i = 0; i < first.rewritings.size(); ++i) {
    EXPECT_EQ(first.rewritings[i], second.rewritings[i]);
  }
  ASSERT_EQ(first.view_tuples.size(), second.view_tuples.size());
  for (size_t i = 0; i < first.view_tuples.size(); ++i) {
    EXPECT_EQ(first.view_tuples[i].tuple.atom,
              second.view_tuples[i].tuple.atom);
    EXPECT_EQ(first.view_tuples[i].core.covered_mask,
              second.view_tuples[i].core.covered_mask);
    EXPECT_EQ(first.view_tuples[i].class_id, second.view_tuples[i].class_id);
  }
}

TEST_P(DeterminismTest, MinimizeIsIdempotentAndDeterministic) {
  const Workload w = MakeWorkload(GetParam());
  const ConjunctiveQuery m1 = Minimize(w.query);
  const ConjunctiveQuery m2 = Minimize(w.query);
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(Minimize(m1), m1);  // Idempotence.
}

TEST_P(DeterminismTest, CoreCoverStarIsDeterministic) {
  const Workload w = MakeWorkload(GetParam());
  CoreCoverOptions options;
  options.max_rewritings = 32;
  const auto first = CoreCoverStar(w.query, w.views, options);
  const auto second = CoreCoverStar(w.query, w.views, options);
  ASSERT_EQ(first.rewritings.size(), second.rewritings.size());
  for (size_t i = 0; i < first.rewritings.size(); ++i) {
    EXPECT_EQ(first.rewritings[i], second.rewritings[i]);
  }
  EXPECT_EQ(first.filter_candidates, second.filter_candidates);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace vbr
