// The work-budget determinism contract (DESIGN.md "Resource governance"):
// under a PURE work budget — no deadline, no memory limit — a governed
// CoreCover run is a deterministic function of (query, views, options,
// work_limit). Abort decisions latch only at serial checkpoints or via
// per-branch node caps that are identical for every branch, so the full
// result — status, exhaustion site, rewritings, stats counters, and even
// work_used itself — must be byte-identical across thread counts and
// repeated runs. Deadline and memory budgets are explicitly outside this
// contract (they depend on the clock and the allocator).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/budget.h"
#include "engine/materialize.h"
#include "planner/planner.h"
#include "rewrite/core_cover.h"
#include "workload/generator.h"

namespace vbr {
namespace {

Workload DeterminismWorkload() {
  // The symmetric star forces real search in every stage (measured: tens of
  // thousands of governed work units), so mid-pipeline budgets genuinely
  // bisect the run.
  WorkloadConfig wc;
  wc.shape = QueryShape::kStar;
  wc.num_query_subgoals = 10;
  wc.num_predicates = 1;
  wc.num_views = 8;
  wc.seed = 5;
  return GenerateWorkload(wc);
}

// Canonical byte serialization of everything the contract covers.
std::string Fingerprint(const CoreCoverResult& r) {
  std::string s;
  s += "status=" + std::to_string(static_cast<int>(r.status)) + "\n";
  s += "exhaustion_kind=" + std::string(BudgetKindName(r.exhaustion.kind)) +
       "\n";
  s += "exhaustion_site=" + r.exhaustion.site + "\n";
  s += "has_rewriting=" + std::to_string(r.has_rewriting) + "\n";
  s += "truncated=" + std::to_string(r.truncated) + "\n";
  s += "minimized=" + r.minimized_query.ToString() + "\n";
  for (const auto& rw : r.rewritings) s += "rewriting=" + rw.ToString() + "\n";
  for (const auto& vt : r.view_tuples) {
    s += "tuple=" + vt.tuple.atom.ToString() + " class=" +
         std::to_string(vt.class_id) + " rep=" +
         std::to_string(vt.is_class_representative) + " mask=" +
         std::to_string(vt.core.covered_mask) + "\n";
  }
  s += "num_view_tuples=" + std::to_string(r.stats.num_view_tuples) + "\n";
  s += "num_tuple_classes=" + std::to_string(r.stats.num_tuple_classes) + "\n";
  s += "nonempty_cores=" + std::to_string(r.stats.num_nonempty_cores) + "\n";
  s += "min_cover=" + std::to_string(r.stats.minimum_cover_size) + "\n";
  s += "view_tuple_tasks=" + std::to_string(r.stats.view_tuple_tasks) + "\n";
  s += "tuple_core_tasks=" + std::to_string(r.stats.tuple_core_tasks) + "\n";
  s += "work_used=" + std::to_string(r.stats.work_used) + "\n";
  s += "hit_cap=" + std::to_string(r.stats.hit_rewriting_cap) + "\n";
  return s;
}

std::string GovernedRun(const Workload& w, uint64_t work_limit,
                        size_t num_threads) {
  ResourceLimits limits;
  limits.work_limit = work_limit;
  ResourceGovernor governor(limits);
  GovernorScope scope(&governor);
  CoreCoverOptions options;
  options.num_threads = num_threads;
  return Fingerprint(CoreCoverStar(w.query, w.views, options));
}

TEST(BudgetDeterminismTest, WorkBudgetOutcomeIsByteIdentical) {
  const Workload w = DeterminismWorkload();

  // Measure the total governed work of a complete run, then pick budgets
  // that kill the pipeline at several depths.
  ResourceLimits unlimited_work;
  unlimited_work.work_limit = uint64_t{1} << 40;
  uint64_t total_work = 0;
  {
    ResourceGovernor governor(unlimited_work);
    GovernorScope scope(&governor);
    CoreCoverOptions options;
    options.num_threads = 1;
    const auto full = CoreCoverStar(w.query, w.views, options);
    ASSERT_EQ(full.status, CoreCoverStatus::kOk);
    total_work = full.stats.work_used;
  }
  ASSERT_GT(total_work, 100u) << "workload too small to bisect";

  const uint64_t budgets[] = {total_work / 10, total_work / 3,
                              total_work / 2, total_work, total_work * 2};
  for (const uint64_t budget : budgets) {
    const std::string reference = GovernedRun(w, budget, 1);
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      for (int repeat = 0; repeat < 3; ++repeat) {
        const std::string got = GovernedRun(w, budget, threads);
        EXPECT_EQ(got, reference)
            << "budget=" << budget << " threads=" << threads
            << " repeat=" << repeat;
      }
    }
  }
}

// The same contract one layer up: a planner with a pure work budget returns
// the same status, exhaustion site, chosen plan, and work_used every time.
TEST(BudgetDeterminismTest, GovernedPlannerIsDeterministic) {
  const Workload w = DeterminismWorkload();
  const Database instances = MaterializeViews(w.views, Database{});

  auto run = [&](uint64_t work_limit) {
    ViewPlanner::Options options;
    options.core_cover.num_threads = 1;
    options.budget.work_limit = work_limit;
    options.fallback_work_budget = 10'000;
    ViewPlanner planner(w.views, instances, options);
    const auto r = planner.Plan(w.query, CostModel::kM2);
    std::string s = PlanStatusName(r.status);
    s += "|" + std::string(BudgetKindName(r.exhaustion.kind));
    s += "|" + r.exhaustion.site;
    s += "|" + std::to_string(r.degraded);
    s += "|" + std::to_string(r.stats.work_used);
    if (r.choice.has_value()) {
      s += "|" + r.choice->logical.ToString();
      s += "|" + std::to_string(r.choice->cost);
    }
    return s;
  };

  for (const uint64_t work_limit :
       {uint64_t{500}, uint64_t{5'000}, uint64_t{1} << 40}) {
    const std::string reference = run(work_limit);
    for (int repeat = 0; repeat < 3; ++repeat) {
      EXPECT_EQ(run(work_limit), reference) << "work_limit=" << work_limit;
    }
  }
}

}  // namespace
}  // namespace vbr
