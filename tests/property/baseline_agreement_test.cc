// Cross-validation of the three rewriting generators (DESIGN.md invariant
// 2): on random workloads CoreCover, the naive enumerator, the Bucket
// algorithm, and MiniCon must agree on whether an equivalent rewriting
// exists, and every rewriting any of them emits must verify.

#include <gtest/gtest.h>

#include "baseline/bucket.h"
#include "baseline/minicon.h"
#include "baseline/naive_enum.h"
#include "rewrite/core_cover.h"
#include "rewrite/rewriting.h"
#include "workload/generator.h"

namespace vbr {
namespace {

class BaselineAgreementTest : public ::testing::TestWithParam<uint64_t> {};

WorkloadConfig SmallConfig(uint64_t seed) {
  WorkloadConfig config;
  config.shape = (seed % 2 == 0) ? QueryShape::kStar : QueryShape::kChain;
  config.num_query_subgoals = 4;
  config.num_predicates = 4;
  config.num_views = 8;
  // Half the seeds run without the safety net so "no rewriting" cases are
  // exercised too.
  config.ensure_rewriting_exists = (seed % 3 != 0);
  config.seed = seed;
  return config;
}

TEST_P(BaselineAgreementTest, ExistenceAgreement) {
  const Workload w = GenerateWorkload(SmallConfig(GetParam()));
  const auto cc = CoreCover(w.query, w.views);
  const auto naive = NaiveEnumerateGmrs(w.query, w.views);
  const auto bucket = BucketAlgorithm(w.query, w.views);
  EXPECT_EQ(cc.has_rewriting, naive.has_rewriting);
  EXPECT_EQ(cc.has_rewriting, !bucket.rewritings.empty());
  // MiniCon restricted to disjoint tilings may miss rewritings that need
  // overlapping cores, so only the one-sided check holds.
  const auto minicon = MiniCon(w.query, w.views);
  if (!minicon.equivalent_rewritings.empty()) {
    EXPECT_TRUE(cc.has_rewriting);
  }
}

TEST_P(BaselineAgreementTest, EveryEmittedRewritingVerifies) {
  const Workload w = GenerateWorkload(SmallConfig(GetParam()));
  const auto naive = NaiveEnumerateGmrs(w.query, w.views);
  for (const auto& p : naive.rewritings) {
    EXPECT_TRUE(IsEquivalentRewriting(p, w.query, w.views)) << p.ToString();
  }
  const auto bucket = BucketAlgorithm(w.query, w.views, 64);
  for (const auto& p : bucket.rewritings) {
    EXPECT_TRUE(IsEquivalentRewriting(p, w.query, w.views)) << p.ToString();
  }
  const auto minicon = MiniCon(w.query, w.views, 64);
  for (const auto& p : minicon.equivalent_rewritings) {
    EXPECT_TRUE(IsEquivalentRewriting(p, w.query, w.views)) << p.ToString();
  }
  for (const auto& p : minicon.contained_rewritings) {
    EXPECT_TRUE(ExpansionContainedInQuery(p, w.query, w.views))
        << p.ToString();
  }
}

TEST_P(BaselineAgreementTest, BucketFindsNoSmallerRewritingThanCoreCover) {
  const Workload w = GenerateWorkload(SmallConfig(GetParam()));
  const auto cc = CoreCover(w.query, w.views);
  if (!cc.has_rewriting) return;
  const auto bucket = BucketAlgorithm(w.query, w.views, 256);
  for (const auto& p : bucket.rewritings) {
    EXPECT_GE(p.num_subgoals(), cc.stats.minimum_cover_size) << p.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineAgreementTest,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace vbr
