// Soundness of the signature prefilters (satellite: every pair the O(1)
// bitmask checks reject must genuinely have no mapping), validated against
// an independent brute-force search that uses no index, no signatures, and
// no candidate ordering. Plus: memoized containment verdicts must be
// identical across thread counts.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "cq/containment.h"
#include "cq/signature.h"
#include "workload/generator.h"

namespace vbr {
namespace {

// ---- Brute-force reference implementations ----

// True iff some substitution on source's variables maps it onto target,
// by direct positional unification (no signatures involved).
bool BruteAtomMapsOnto(const Atom& source, const Atom& target) {
  if (source.predicate() != target.predicate() ||
      source.arity() != target.arity()) {
    return false;
  }
  Substitution h;
  for (size_t i = 0; i < source.arity(); ++i) {
    const Term s = source.arg(i);
    const Term t = target.arg(i);
    if (s.is_constant()) {
      if (s != t) return false;
    } else if (!h.Bind(s, t)) {
      return false;
    }
  }
  return true;
}

// Plain recursive containment-mapping search: head seed, then every target
// atom tried for every source atom in order. Deliberately shares no code
// with the library's indexed/prefiltered search.
bool BruteExtend(const std::vector<Atom>& body, size_t i,
                 const std::vector<Atom>& target_body, Substitution* h) {
  if (i == body.size()) return true;
  const Atom& atom = body[i];
  for (const Atom& target : target_body) {
    if (atom.predicate() != target.predicate() ||
        atom.arity() != target.arity()) {
      continue;
    }
    std::vector<Term> bound;
    bool ok = true;
    for (size_t p = 0; p < atom.arity() && ok; ++p) {
      const Term s = atom.arg(p);
      const Term t = target.arg(p);
      if (s.is_constant()) {
        ok = (s == t);
      } else if (const auto existing = h->Lookup(s)) {
        ok = (*existing == t);
      } else {
        h->Bind(s, t);
        bound.push_back(s);
      }
    }
    if (ok && BruteExtend(body, i + 1, target_body, h)) return true;
    for (Term v : bound) h->Unbind(v);
  }
  return false;
}

bool BruteContainmentMappingExists(const ConjunctiveQuery& source,
                                   const ConjunctiveQuery& target) {
  if (source.head().arity() != target.head().arity()) return false;
  Substitution h;
  for (size_t i = 0; i < source.head().arity(); ++i) {
    const Term s = source.head().arg(i);
    const Term t = target.head().arg(i);
    if (s.is_constant()) {
      if (s != t) return false;
    } else if (!h.Bind(s, t)) {
      return false;
    }
  }
  return BruteExtend(source.body(), 0, target.body(), &h);
}

// Queries of one generated workload: the query plus every view definition.
std::vector<ConjunctiveQuery> QueryPool(QueryShape shape, uint64_t seed) {
  WorkloadConfig config;
  config.shape = shape;
  config.num_query_subgoals = 5;
  config.num_predicates = 3;  // few predicates => plenty of near-misses
  config.num_views = 12;
  config.min_view_subgoals = 1;
  config.max_view_subgoals = 3;
  config.seed = seed;
  const Workload w = GenerateWorkload(config);
  std::vector<ConjunctiveQuery> pool;
  pool.push_back(w.query);
  pool.insert(pool.end(), w.views.begin(), w.views.end());
  return pool;
}

class SignaturePrefilterTest
    : public ::testing::TestWithParam<std::tuple<QueryShape, uint64_t>> {};

// The full search (signature prefilter + candidate masks + indexed
// backtracking) must agree with the brute-force search on EVERY ordered
// pair; in particular no prefilter rejection may lose a real mapping.
TEST_P(SignaturePrefilterTest, FilteredSearchAgreesWithBruteForce) {
  const auto [shape, seed] = GetParam();
  const std::vector<ConjunctiveQuery> pool = QueryPool(shape, seed);
  size_t signature_rejections = 0;
  for (const ConjunctiveQuery& source : pool) {
    const QuerySignature source_sig = ComputeQuerySignature(source);
    for (const ConjunctiveQuery& target : pool) {
      const bool brute = BruteContainmentMappingExists(source, target);
      const bool fast = FindContainmentMapping(source, target).has_value();
      EXPECT_EQ(fast, brute)
          << "source: " << source.ToString()
          << "\ntarget: " << target.ToString();
      if (!QuerySignatureMayMap(source_sig,
                                ComputeQuerySignature(target))) {
        ++signature_rejections;
        EXPECT_FALSE(brute) << "prefilter rejected a mappable pair\n"
                            << "source: " << source.ToString()
                            << "\ntarget: " << target.ToString();
      }
    }
  }
  // The property is vacuous if the generated pool never trips the filter.
  EXPECT_GT(signature_rejections, 0u);
}

// Single-atom level: AtomSignatureMayMap is necessary, AtomMayMapOnto is
// exact, for every ordered atom pair across the workload bodies.
TEST_P(SignaturePrefilterTest, AtomChecksAgreeWithBruteForce) {
  const auto [shape, seed] = GetParam();
  std::vector<Atom> atoms;
  for (const ConjunctiveQuery& q : QueryPool(shape, seed)) {
    atoms.insert(atoms.end(), q.body().begin(), q.body().end());
  }
  for (const Atom& source : atoms) {
    const AtomSignature source_sig = ComputeAtomSignature(source);
    for (const Atom& target : atoms) {
      const bool brute = BruteAtomMapsOnto(source, target);
      EXPECT_EQ(AtomMayMapOnto(source, target), brute)
          << source.ToString() << " -> " << target.ToString();
      if (brute) {
        EXPECT_TRUE(
            AtomSignatureMayMap(source_sig, ComputeAtomSignature(target)))
            << source.ToString() << " -> " << target.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SignaturePrefilterTest,
    ::testing::Combine(::testing::Values(QueryShape::kStar, QueryShape::kChain,
                                         QueryShape::kRandom),
                       ::testing::Range<uint64_t>(1, 5)));

// Memoized containment: the verdict vector over a fixed pair list must be
// byte-identical whether computed serially or hammered by concurrent
// threads racing on the shared memo (thread counts 1, 2, 8).
TEST(ContainmentMemoDeterminismTest, VerdictsIdenticalAcrossThreadCounts) {
  std::vector<ConjunctiveQuery> pool = QueryPool(QueryShape::kRandom, 11);
  const std::vector<ConjunctiveQuery> chain_pool =
      QueryPool(QueryShape::kChain, 12);
  pool.insert(pool.end(), chain_pool.begin(), chain_pool.end());

  std::vector<std::pair<size_t, size_t>> pairs;
  for (size_t i = 0; i < pool.size(); ++i) {
    for (size_t j = 0; j < pool.size(); ++j) pairs.emplace_back(i, j);
  }
  const auto verdicts_of = [&]() {
    std::vector<uint8_t> verdicts(pairs.size());
    for (size_t k = 0; k < pairs.size(); ++k) {
      verdicts[k] =
          IsContainedIn(pool[pairs[k].first], pool[pairs[k].second]) ? 1 : 0;
    }
    return verdicts;
  };

  ContainmentMemo::Global().Clear();
  const std::vector<uint8_t> reference = verdicts_of();

  for (const int num_threads : {1, 2, 8}) {
    ContainmentMemo::Global().Clear();
    std::vector<std::vector<uint8_t>> per_thread(num_threads);
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (int t = 0; t < num_threads; ++t) {
      threads.emplace_back(
          [&, t]() { per_thread[t] = verdicts_of(); });
    }
    for (std::thread& t : threads) t.join();
    for (int t = 0; t < num_threads; ++t) {
      EXPECT_EQ(per_thread[t], reference) << "threads=" << num_threads;
    }
    // Rerunning on the now-warm memo must not change a single verdict.
    EXPECT_EQ(verdicts_of(), reference) << "threads=" << num_threads;
  }

  // The exercise is only meaningful if the memo actually served hits.
  Counter* const hits =
      MetricsRegistry::Global().GetCounter("cq.containment_memo_hits");
  EXPECT_GT(hits->value(), 0u);
  ContainmentMemo::Global().Clear();
}

}  // namespace
}  // namespace vbr
