// Randomized differential harness for the rewriting generators.
//
// A seeded generator produces star / chain / random conjunctive queries and
// view sets; every case runs CoreCover* against the MiniCon and Bucket
// baselines and checks
//   1. existence agreement: CoreCover finds a rewriting iff Bucket does
//      (MiniCon's disjoint-tiling restriction can miss rewritings that need
//      overlapping cores, so its check is one-sided: anything it finds,
//      CoreCover must find too);
//   2. expansion equivalence by certificate: every rewriting any generator
//      emits as equivalent must admit an EquivalenceCertificate whose
//      verification passes (certificate.h's direct, search-free re-check).
//
// Failing-seed replay: a failure message names the exact shape and seed and
// the environment variables to replay it. Set VBR_DIFF_SHAPE / VBR_DIFF_SEED
// and run the ReplayFromEnvironment test to re-execute that single case with
// the full structured trace of the CoreCover run dumped to stderr:
//
//   VBR_DIFF_SHAPE=chain VBR_DIFF_SEED=123 ./random_differential_test \
//       --gtest_filter='*ReplayFromEnvironment*'

#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "baseline/bucket.h"
#include "baseline/minicon.h"
#include "common/budget.h"
#include "common/trace.h"
#include "cq/vbin_codec.h"
#include "planner/service.h"
#include "rewrite/certificate.h"
#include "rewrite/core_cover.h"
#include "rewrite/vbin_codec.h"
#include "workload/generator.h"

namespace vbr {
namespace {

// 5 blocks x kSeedsPerBlock seeds x 3 shapes = 510 cases.
constexpr size_t kBlocks = 5;
constexpr size_t kSeedsPerBlock = 34;

const char* ShapeName(QueryShape shape) {
  switch (shape) {
    case QueryShape::kStar:
      return "star";
    case QueryShape::kChain:
      return "chain";
    case QueryShape::kRandom:
      return "random";
  }
  return "?";
}

WorkloadConfig DiffConfig(QueryShape shape, uint64_t seed) {
  WorkloadConfig config;
  config.shape = shape;
  // 3-5 query subgoals over a small predicate pool keeps each case in the
  // low milliseconds while still producing nontrivial rewriting structure.
  config.num_query_subgoals = 3 + seed % 3;
  config.num_predicates = 4;
  config.num_views = 8;
  // A third of the seeds run without the coverage views so the harness also
  // exercises agreement on "no rewriting exists".
  config.ensure_rewriting_exists = (seed % 3 != 0);
  config.seed = seed;
  return config;
}

std::string ReplayHint(QueryShape shape, uint64_t seed) {
  return "replay with: VBR_DIFF_SHAPE=" + std::string(ShapeName(shape)) +
         " VBR_DIFF_SEED=" + std::to_string(seed) +
         " ./random_differential_test"
         " --gtest_filter='*ReplayFromEnvironment*'";
}

// Runs one differential case. On disagreement the case is re-run with a
// MemoryTraceSink attached and the failure message carries the span tree of
// the CoreCover run plus the replay command.
::testing::AssertionResult RunCase(QueryShape shape, uint64_t seed,
                                   TraceSink* trace) {
  const Workload w = GenerateWorkload(DiffConfig(shape, seed));
  CoreCoverOptions options;
  options.trace = TraceContext{trace, 0};
  const auto cc = CoreCoverStar(w.query, w.views, options);
  const std::string label = "[shape=" + std::string(ShapeName(shape)) +
                            " seed=" + std::to_string(seed) + "] ";
  if (!cc.ok()) {
    return ::testing::AssertionFailure()
           << label << "CoreCover rejected the query: " << cc.error << "\n"
           << ReplayHint(shape, seed);
  }

  const auto bucket = BucketAlgorithm(w.query, w.views, 64);
  if (cc.has_rewriting != !bucket.rewritings.empty()) {
    return ::testing::AssertionFailure()
           << label << "existence disagreement: CoreCover says "
           << (cc.has_rewriting ? "yes" : "no") << ", Bucket says "
           << (!bucket.rewritings.empty() ? "yes" : "no") << "\nquery: "
           << w.query.ToString() << "\n" << ReplayHint(shape, seed);
  }

  const auto minicon = MiniCon(w.query, w.views, 64);
  if (!minicon.equivalent_rewritings.empty() && !cc.has_rewriting) {
    return ::testing::AssertionFailure()
           << label << "MiniCon found an equivalent rewriting CoreCover "
           << "missed\nquery: " << w.query.ToString() << "\n"
           << ReplayHint(shape, seed);
  }

  // Expansion equivalence via certificates, for every generator's output.
  auto certify = [&](const ConjunctiveQuery& p, const char* source)
      -> ::testing::AssertionResult {
    const auto cert = CertifyEquivalentRewriting(p, w.query, w.views);
    if (!cert.has_value()) {
      return ::testing::AssertionFailure()
             << label << source << " rewriting failed certification: "
             << p.ToString() << "\n" << ReplayHint(shape, seed);
    }
    if (!VerifyCertificate(*cert, w.views)) {
      return ::testing::AssertionFailure()
             << label << source << " certificate failed verification: "
             << p.ToString() << "\n" << ReplayHint(shape, seed);
    }
    return ::testing::AssertionSuccess();
  };
  for (const auto& p : cc.rewritings) {
    if (auto r = certify(p, "CoreCover"); !r) return r;
  }
  for (const auto& p : minicon.equivalent_rewritings) {
    if (auto r = certify(p, "MiniCon"); !r) return r;
  }
  for (const auto& p : bucket.rewritings) {
    if (auto r = certify(p, "Bucket"); !r) return r;
  }
  return ::testing::AssertionSuccess();
}

// Budgeted phase: re-run a case under a work budget sized to bisect the
// governed run (half the measured total). Whatever the governed run returns
// — complete or budget-exhausted — every rewriting it emits must still
// certify under an UNGOVERNED check: partial results are allowed, wrong
// ones are not.
::testing::AssertionResult RunBudgetedCase(QueryShape shape, uint64_t seed) {
  const Workload w = GenerateWorkload(DiffConfig(shape, seed));
  const std::string label = "[budgeted shape=" +
                            std::string(ShapeName(shape)) +
                            " seed=" + std::to_string(seed) + "] ";

  // Measure the case's governed work, then halve it.
  uint64_t total_work = 0;
  {
    ResourceLimits generous;
    generous.work_limit = uint64_t{1} << 40;
    ResourceGovernor governor(generous);
    GovernorScope scope(&governor);
    const auto full = CoreCoverStar(w.query, w.views, {});
    if (!full.ok()) {
      return ::testing::AssertionFailure()
             << label << "generously-governed run failed: " << full.error
             << "\n" << ReplayHint(shape, seed);
    }
    total_work = full.stats.work_used;
  }
  if (total_work < 2) return ::testing::AssertionSuccess();

  ResourceLimits half;
  half.work_limit = total_work / 2;
  ResourceGovernor governor(half);
  GovernorScope scope(&governor);
  const auto cc = CoreCoverStar(w.query, w.views, {});
  if (cc.status != CoreCoverStatus::kOk &&
      cc.status != CoreCoverStatus::kBudgetExhausted) {
    return ::testing::AssertionFailure()
           << label << "unexpected status under budget: " << cc.error << "\n"
           << ReplayHint(shape, seed);
  }
  if (cc.status == CoreCoverStatus::kBudgetExhausted &&
      cc.exhaustion.kind == BudgetKind::kNone) {
    return ::testing::AssertionFailure()
           << label << "budget-exhausted result carries no exhaustion record"
           << "\n" << ReplayHint(shape, seed);
  }
  // Certify OUTSIDE the exhausted governor's scope.
  GovernorScope shield(nullptr);
  for (const auto& p : cc.rewritings) {
    const auto cert = CertifyEquivalentRewriting(p, w.query, w.views);
    if (!cert.has_value() || !VerifyCertificate(*cert, w.views)) {
      return ::testing::AssertionFailure()
             << label << "budget-exhausted rewriting failed certification: "
             << p.ToString() << " (status="
             << (cc.ok() ? "ok" : "budget exhausted") << ")\n"
             << ReplayHint(shape, seed);
    }
  }
  return ::testing::AssertionSuccess();
}

// Service-path phase: an UNLOADED PlanningService (one worker, empty queue,
// breaker at full service, no budgets) must be a pure pass-through — its
// response for every case is byte-identical to a direct ViewPlanner::Plan
// against an identically configured, equally fresh planner.
std::string PlanResultKey(const ViewPlanner::PlanResult& r) {
  std::string key = std::string(PlanStatusName(r.status)) + "|" +
                    (r.cache_hit ? "hit" : "miss") + "|" +
                    (r.degraded ? "degraded" : "full") + "|" +
                    std::to_string(static_cast<int>(r.exhaustion.kind)) + "|" +
                    r.exhaustion.site + "|" + r.error + "|";
  if (r.choice.has_value()) {
    key += r.choice->ToString() + "|" + r.choice->certificate.ToString();
  }
  return key;
}

::testing::AssertionResult RunServiceParityCase(QueryShape shape,
                                                uint64_t seed) {
  const Workload w = GenerateWorkload(DiffConfig(shape, seed));
  const std::string label = "[service shape=" + std::string(ShapeName(shape)) +
                            " seed=" + std::to_string(seed) + "] ";
  for (CostModel model : {CostModel::kM1, CostModel::kM2}) {
    ViewPlanner direct(w.views, Database{});
    const std::string expected = PlanResultKey(direct.Plan(w.query, model));

    ViewPlanner backing(w.views, Database{});
    PlanningService::Options options;
    options.num_workers = 1;
    PlanningService service(&backing, options);
    const auto response = service.Plan(w.query, model);
    if (response.status != PlanningService::ServiceStatus::kOk) {
      return ::testing::AssertionFailure()
             << label << "unloaded service did not complete: "
             << PlanningService::ServiceStatusName(response.status) << " ("
             << response.error << ")\n" << ReplayHint(shape, seed);
    }
    if (response.service_level != 0 || response.attempts != 1 ||
        response.model_demoted || response.served_from_cache_only) {
      return ::testing::AssertionFailure()
             << label << "unloaded service took a degraded path (level="
             << response.service_level << " attempts=" << response.attempts
             << ")\n" << ReplayHint(shape, seed);
    }
    const std::string got = PlanResultKey(response.result);
    if (got != expected) {
      return ::testing::AssertionFailure()
             << label << "service result diverged from direct Plan\n"
             << "direct:  " << expected << "\nservice: " << got << "\n"
             << ReplayHint(shape, seed);
    }
  }
  return ::testing::AssertionSuccess();
}

// VBIN round-trip phase: every value the case produces — the query, the
// view set, every rewriting, every certificate — must decode back EQUAL
// from its VBIN encoding, and the decoded value must RE-ENCODE to the
// exact same bytes (decode∘encode is the identity on bytes, so archived
// corpora and snapshots are canonical).
::testing::AssertionResult RunVbinRoundTripCase(QueryShape shape,
                                                uint64_t seed) {
  const Workload w = GenerateWorkload(DiffConfig(shape, seed));
  const std::string label = "[vbin shape=" + std::string(ShapeName(shape)) +
                            " seed=" + std::to_string(seed) + "] ";

  auto fail = [&](const std::string& what) {
    return ::testing::AssertionFailure()
           << label << what << "\n" << ReplayHint(shape, seed);
  };

  auto check_query = [&](const ConjunctiveQuery& q, const char* source)
      -> ::testing::AssertionResult {
    const std::string bytes = EncodeQueryFile(q);
    ConjunctiveQuery back;
    const vbin::Status status = DecodeQueryFile(bytes, &back);
    if (!status.ok()) {
      return fail(std::string(source) + " failed to decode: " + status.error +
                  "\nquery: " + q.ToString());
    }
    if (back != q) {
      return fail(std::string(source) + " decoded unequal\nquery: " +
                  q.ToString() + "\ndecoded: " + back.ToString());
    }
    if (EncodeQueryFile(back) != bytes) {
      return fail(std::string(source) +
                  " re-encode is not byte-identical\nquery: " + q.ToString());
    }
    return ::testing::AssertionSuccess();
  };

  if (auto r = check_query(w.query, "query"); !r) return r;

  const std::string program_bytes = EncodeProgramFile(w.views);
  std::vector<ConjunctiveQuery> views_back;
  if (!DecodeProgramFile(program_bytes, &views_back).ok() ||
      views_back != w.views ||
      EncodeProgramFile(views_back) != program_bytes) {
    return fail("view set did not round-trip");
  }

  const auto cc = CoreCoverStar(w.query, w.views, {});
  if (!cc.ok()) return ::testing::AssertionSuccess();  // phase 1 covers this
  for (const auto& p : cc.rewritings) {
    if (auto r = check_query(p, "rewriting"); !r) return r;

    PlanRecord plan;
    plan.rewriting = p;
    const std::string plan_bytes = EncodePlanFile(plan);
    PlanRecord plan_back;
    if (!DecodePlanFile(plan_bytes, &plan_back).ok() || plan_back != plan ||
        EncodePlanFile(plan_back) != plan_bytes) {
      return fail("plan record did not round-trip: " + p.ToString());
    }

    const auto cert = CertifyEquivalentRewriting(p, w.query, w.views);
    if (!cert.has_value()) continue;  // phase 1 asserts certifiability
    const std::string cert_bytes = EncodeCertificateFile(*cert);
    EquivalenceCertificate cert_back;
    const vbin::Status status = DecodeCertificateFile(cert_bytes, &cert_back);
    if (!status.ok()) {
      return fail("certificate failed to decode: " + status.error);
    }
    if (EncodeCertificateFile(cert_back) != cert_bytes) {
      return fail("certificate re-encode is not byte-identical for " +
                  p.ToString());
    }
    // The decoded certificate must still verify: the substitutions came
    // through with their bindings intact.
    if (!VerifyCertificate(cert_back, w.views)) {
      return fail("decoded certificate failed verification for " +
                  p.ToString());
    }
  }
  return ::testing::AssertionSuccess();
}

// Indexed-candidate phase: CoreCover* with the candidate filter ON (the
// default) must be byte-identical — status, minimized core, rewritings,
// order — to a filter-OFF run of the same case. This is the differential
// harness's own lockdown of ISSUE 9's candidate stage; the dedicated
// view_index_equivalence_test covers the index/scan agreement and the
// threaded planner facade.
::testing::AssertionResult RunIndexedParityCase(QueryShape shape,
                                                uint64_t seed) {
  const Workload w = GenerateWorkload(DiffConfig(shape, seed));
  const std::string label = "[indexed shape=" + std::string(ShapeName(shape)) +
                            " seed=" + std::to_string(seed) + "] ";
  CoreCoverOptions off;
  off.use_view_index = false;
  const auto full = CoreCoverStar(w.query, w.views, off);
  const auto filtered = CoreCoverStar(w.query, w.views, {});
  if (full.status != filtered.status ||
      full.has_rewriting != filtered.has_rewriting ||
      EncodeQueryFile(full.minimized_query) !=
          EncodeQueryFile(filtered.minimized_query) ||
      EncodeProgramFile(full.rewritings) !=
          EncodeProgramFile(filtered.rewritings)) {
    return ::testing::AssertionFailure()
           << label << "candidate filter changed CoreCover* output\nquery: "
           << w.query.ToString() << "\n" << ReplayHint(shape, seed);
  }
  return ::testing::AssertionSuccess();
}

class RandomDifferentialTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RandomDifferentialTest, GeneratorsAgreeAndCertify) {
  const size_t block = GetParam();
  for (size_t i = 0; i < kSeedsPerBlock; ++i) {
    const uint64_t seed = 1 + block * kSeedsPerBlock + i;
    for (QueryShape shape :
         {QueryShape::kStar, QueryShape::kChain, QueryShape::kRandom}) {
      // The fast path runs untraced; a failing case is re-run with the
      // trace sink attached so the failure message carries the span tree.
      auto result = RunCase(shape, seed, nullptr);
      if (!result) {
        MemoryTraceSink sink;
        result = RunCase(shape, seed, &sink);
        ADD_FAILURE() << result.message()
                      << "\n--- CoreCover trace of the failing case ---\n"
                      << sink.ToText();
      }
    }
  }
}

TEST_P(RandomDifferentialTest, BudgetExhaustedResultsStillCertify) {
  const size_t block = GetParam();
  for (size_t i = 0; i < kSeedsPerBlock; ++i) {
    const uint64_t seed = 1 + block * kSeedsPerBlock + i;
    for (QueryShape shape :
         {QueryShape::kStar, QueryShape::kChain, QueryShape::kRandom}) {
      EXPECT_TRUE(RunBudgetedCase(shape, seed));
    }
  }
}

TEST_P(RandomDifferentialTest, IndexedCandidatesMatchFullScan) {
  const size_t block = GetParam();
  for (size_t i = 0; i < kSeedsPerBlock; ++i) {
    const uint64_t seed = 1 + block * kSeedsPerBlock + i;
    for (QueryShape shape :
         {QueryShape::kStar, QueryShape::kChain, QueryShape::kRandom}) {
      EXPECT_TRUE(RunIndexedParityCase(shape, seed));
    }
  }
}

TEST_P(RandomDifferentialTest, VbinRoundTripIsIdentity) {
  const size_t block = GetParam();
  for (size_t i = 0; i < kSeedsPerBlock; ++i) {
    const uint64_t seed = 1 + block * kSeedsPerBlock + i;
    for (QueryShape shape :
         {QueryShape::kStar, QueryShape::kChain, QueryShape::kRandom}) {
      EXPECT_TRUE(RunVbinRoundTripCase(shape, seed));
    }
  }
}

TEST_P(RandomDifferentialTest, ServicePathMatchesDirectPlan) {
  const size_t block = GetParam();
  for (size_t i = 0; i < kSeedsPerBlock; ++i) {
    const uint64_t seed = 1 + block * kSeedsPerBlock + i;
    for (QueryShape shape :
         {QueryShape::kStar, QueryShape::kChain, QueryShape::kRandom}) {
      EXPECT_TRUE(RunServiceParityCase(shape, seed));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, RandomDifferentialTest,
                         ::testing::Range<size_t>(0, kBlocks));

// Replays one named case from the environment with the full trace on
// stderr; skipped when the variables are unset (the normal CI run).
TEST(RandomDifferentialReplayTest, ReplayFromEnvironment) {
  const char* seed_env = std::getenv("VBR_DIFF_SEED");
  if (seed_env == nullptr) {
    GTEST_SKIP() << "set VBR_DIFF_SHAPE and VBR_DIFF_SEED to replay a case";
  }
  const uint64_t seed = std::strtoull(seed_env, nullptr, 10);
  QueryShape shape = QueryShape::kStar;
  if (const char* shape_env = std::getenv("VBR_DIFF_SHAPE")) {
    const std::string s = shape_env;
    if (s == "chain") shape = QueryShape::kChain;
    if (s == "random") shape = QueryShape::kRandom;
  }
  MemoryTraceSink sink;
  const auto result = RunCase(shape, seed, &sink);
  std::fprintf(stderr, "--- trace [shape=%s seed=%llu] ---\n%s",
               ShapeName(shape), static_cast<unsigned long long>(seed),
               sink.ToText().c_str());
  EXPECT_TRUE(result);
}

}  // namespace
}  // namespace vbr
