// Theorem 4.1, validated directly: for a minimal query Q and view tuples
// T(Q,V), a query built from view tuples is an equivalent rewriting of Q
// IF AND ONLY IF the union of the tuples' cores covers all of Q's
// subgoals. Both directions are checked against the independent
// containment-mapping test on random workloads, enumerating every subset of
// the view tuples (kept small so the 2^n sweep stays cheap).

#include <gtest/gtest.h>

#include <bit>

#include "cq/containment.h"
#include "rewrite/rewriting.h"
#include "rewrite/tuple_core.h"
#include "rewrite/view_tuple.h"
#include "workload/generator.h"

namespace vbr {
namespace {

class Theorem41Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem41Test, CoverIffEquivalentRewriting) {
  WorkloadConfig config;
  config.shape = (GetParam() % 2 == 0) ? QueryShape::kStar : QueryShape::kChain;
  config.num_query_subgoals = 3;
  config.num_predicates = 3;
  config.num_views = 5;
  config.seed = GetParam();
  const Workload w = GenerateWorkload(config);

  const ConjunctiveQuery q = Minimize(w.query);
  const std::vector<ViewTuple> tuples = ComputeViewTuples(q, w.views);
  if (tuples.size() > 12) GTEST_SKIP() << "subset sweep too large";

  std::vector<uint64_t> masks;
  for (const ViewTuple& t : tuples) {
    masks.push_back(ComputeTupleCore(q, t, w.views).covered_mask);
  }
  const uint64_t universe = (uint64_t{1} << q.num_subgoals()) - 1;

  size_t checked = 0;
  for (size_t subset = 1; subset < (size_t{1} << tuples.size()); ++subset) {
    uint64_t covered = 0;
    std::vector<Atom> body;
    for (size_t i = 0; i < tuples.size(); ++i) {
      if (subset & (size_t{1} << i)) {
        covered |= masks[i];
        body.push_back(tuples[i].atom);
      }
    }
    const ConjunctiveQuery candidate(q.head(), body);
    if (!candidate.IsSafe()) continue;
    const bool covers = (covered & universe) == universe;
    const bool equivalent = IsEquivalentRewriting(candidate, q, w.views);
    EXPECT_EQ(covers, equivalent)
        << "Theorem 4.1 violated by " << candidate.ToString();
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem41Test,
                         ::testing::Range<uint64_t>(1, 16));

}  // namespace
}  // namespace vbr
