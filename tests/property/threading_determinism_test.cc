// The threading determinism contract (DESIGN.md "Threading model"):
// CoreCover and CoreCoverStar return identical rewritings, filter
// candidates, view-tuple annotations, and stats COUNTERS (not timings) for
// every num_threads value. num_threads == 1 runs the pre-threading serial
// code path, so equality against it pins the parallel stages to the serial
// semantics across the star/chain workload generators.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "rewrite/core_cover.h"
#include "workload/generator.h"

namespace vbr {
namespace {

const size_t kThreadCounts[] = {1, 2, 8};

struct Config {
  QueryShape shape;
  uint64_t seed;
  size_t nondistinguished;
};

class ThreadingDeterminismTest : public ::testing::TestWithParam<Config> {};

Workload MakeWorkload(const Config& config) {
  WorkloadConfig wc;
  wc.shape = config.shape;
  wc.num_query_subgoals = 6;
  wc.num_views = 30;
  wc.num_nondistinguished_query_vars = config.nondistinguished;
  wc.num_nondistinguished_view_vars = config.nondistinguished;
  wc.seed = config.seed;
  return GenerateWorkload(wc);
}

// Everything that must not depend on the thread count. Wall-clock timings
// and threads_used are intentionally excluded.
void ExpectSameResult(const CoreCoverResult& base,
                      const CoreCoverResult& other, size_t threads) {
  SCOPED_TRACE("num_threads=" + std::to_string(threads));
  EXPECT_EQ(base.status, other.status);
  EXPECT_EQ(base.has_rewriting, other.has_rewriting);
  EXPECT_EQ(base.truncated, other.truncated);
  EXPECT_EQ(base.minimized_query, other.minimized_query);
  ASSERT_EQ(base.rewritings.size(), other.rewritings.size());
  for (size_t i = 0; i < base.rewritings.size(); ++i) {
    EXPECT_EQ(base.rewritings[i], other.rewritings[i]);
  }
  EXPECT_EQ(base.filter_candidates, other.filter_candidates);
  ASSERT_EQ(base.view_tuples.size(), other.view_tuples.size());
  for (size_t i = 0; i < base.view_tuples.size(); ++i) {
    EXPECT_EQ(base.view_tuples[i].tuple.atom, other.view_tuples[i].tuple.atom);
    EXPECT_EQ(base.view_tuples[i].tuple.view_index,
              other.view_tuples[i].tuple.view_index);
    EXPECT_EQ(base.view_tuples[i].core.covered_mask,
              other.view_tuples[i].core.covered_mask);
    EXPECT_EQ(base.view_tuples[i].core.covered, other.view_tuples[i].core.covered);
    EXPECT_EQ(base.view_tuples[i].class_id, other.view_tuples[i].class_id);
    EXPECT_EQ(base.view_tuples[i].is_class_representative,
              other.view_tuples[i].is_class_representative);
  }
  EXPECT_EQ(base.stats.num_views, other.stats.num_views);
  EXPECT_EQ(base.stats.num_view_classes, other.stats.num_view_classes);
  EXPECT_EQ(base.stats.num_view_tuples, other.stats.num_view_tuples);
  EXPECT_EQ(base.stats.num_tuple_classes, other.stats.num_tuple_classes);
  EXPECT_EQ(base.stats.num_nonempty_cores, other.stats.num_nonempty_cores);
  EXPECT_EQ(base.stats.minimum_cover_size, other.stats.minimum_cover_size);
  EXPECT_EQ(base.stats.view_tuple_tasks, other.stats.view_tuple_tasks);
  EXPECT_EQ(base.stats.tuple_core_tasks, other.stats.tuple_core_tasks);
  EXPECT_EQ(base.stats.verify_tasks, other.stats.verify_tasks);
  EXPECT_EQ(base.stats.cover_branch_tasks, other.stats.cover_branch_tasks);
}

TEST_P(ThreadingDeterminismTest, CoreCoverMatchesSerialAtEveryThreadCount) {
  const Workload w = MakeWorkload(GetParam());
  CoreCoverOptions options;
  options.verify_rewritings = true;  // Exercise the parallel verify stage.
  options.num_threads = 1;
  const auto base = CoreCover(w.query, w.views, options);
  EXPECT_EQ(base.stats.threads_used, 1u);
  for (size_t threads : kThreadCounts) {
    options.num_threads = threads;
    const auto result = CoreCover(w.query, w.views, options);
    EXPECT_EQ(result.stats.threads_used, threads);
    ExpectSameResult(base, result, threads);
  }
}

TEST_P(ThreadingDeterminismTest, CoreCoverStarMatchesSerialAtEveryThreadCount) {
  const Workload w = MakeWorkload(GetParam());
  CoreCoverOptions options;
  options.max_rewritings = 64;  // Small cap: truncation must also agree.
  options.num_threads = 1;
  const auto base = CoreCoverStar(w.query, w.views, options);
  for (size_t threads : kThreadCounts) {
    options.num_threads = threads;
    ExpectSameResult(base, CoreCoverStar(w.query, w.views, options), threads);
  }
}

TEST_P(ThreadingDeterminismTest, UngroupedPipelineAlsoDeterministic) {
  // Grouping off maximizes the number of parallel tuple-core tasks and
  // cover candidates.
  const Workload w = MakeWorkload(GetParam());
  CoreCoverOptions options;
  options.group_views = false;
  options.group_view_tuples = false;
  options.max_rewritings = 32;
  options.num_threads = 1;
  const auto base = CoreCover(w.query, w.views, options);
  for (size_t threads : kThreadCounts) {
    options.num_threads = threads;
    ExpectSameResult(base, CoreCover(w.query, w.views, options), threads);
  }
}

std::vector<Config> AllConfigs() {
  std::vector<Config> configs;
  for (const QueryShape shape : {QueryShape::kStar, QueryShape::kChain}) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      for (size_t nondist : {size_t{0}, size_t{1}}) {
        configs.push_back({shape, seed, nondist});
      }
    }
  }
  return configs;
}

std::string ConfigName(const ::testing::TestParamInfo<Config>& info) {
  return std::string(info.param.shape == QueryShape::kStar ? "star" : "chain") +
         "_seed" + std::to_string(info.param.seed) + "_nd" +
         std::to_string(info.param.nondistinguished);
}

INSTANTIATE_TEST_SUITE_P(Workloads, ThreadingDeterminismTest,
                         ::testing::ValuesIn(AllConfigs()), ConfigName);

}  // namespace
}  // namespace vbr
