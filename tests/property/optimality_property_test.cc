// Randomized optimality and structure invariants (DESIGN.md invariants
// 2-4): CoreCover's minimum cover size agrees with the naive Theorem 3.1
// enumerator; tuple-cores satisfy Definition 4.1; minimization yields
// minimal equivalents.

#include <gtest/gtest.h>

#include <unordered_set>

#include "baseline/naive_enum.h"
#include "cq/containment.h"
#include "rewrite/core_cover.h"
#include "rewrite/expansion.h"
#include "rewrite/rewriting.h"
#include "rewrite/tuple_core.h"
#include "rewrite/view_tuple.h"
#include "workload/generator.h"

namespace vbr {
namespace {

class OptimalityTest : public ::testing::TestWithParam<uint64_t> {};

WorkloadConfig SmallConfig(uint64_t seed) {
  WorkloadConfig config;
  config.shape = (seed % 2 == 0) ? QueryShape::kStar : QueryShape::kChain;
  config.num_query_subgoals = 4;
  config.num_predicates = 4;
  config.num_views = 8;
  config.seed = seed;
  return config;
}

TEST_P(OptimalityTest, CoreCoverMatchesNaiveMinimumSize) {
  const Workload w = GenerateWorkload(SmallConfig(GetParam()));
  const auto cc = CoreCover(w.query, w.views);
  const auto naive = NaiveEnumerateGmrs(w.query, w.views);
  ASSERT_EQ(cc.has_rewriting, naive.has_rewriting);
  if (cc.has_rewriting) {
    EXPECT_EQ(cc.stats.minimum_cover_size, naive.min_size);
  }
}

TEST_P(OptimalityTest, TupleCoresSatisfyDefinition41) {
  const Workload w = GenerateWorkload(SmallConfig(GetParam()));
  const ConjunctiveQuery q = Minimize(w.query);
  for (const ViewTuple& tuple : ComputeViewTuples(q, w.views)) {
    const TupleCore core = ComputeTupleCore(q, tuple, w.views);
    if (core.empty()) continue;
    // Witness maps covered subgoals into the tuple expansion.
    std::vector<Term> existentials;
    const std::vector<Atom> exp =
        ExpandViewAtom(tuple.atom, w.views[tuple.view_index], &existentials);
    std::unordered_set<Term, TermHash> exist_set(existentials.begin(),
                                                 existentials.end());
    std::unordered_set<Term, TermHash> images;
    for (size_t idx : core.covered) {
      const Atom mapped = core.mapping.Apply(q.subgoal(idx));
      bool found = false;
      for (const Atom& e : exp) {
        if (e == mapped) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "core atom does not map into expansion: "
                         << mapped.ToString();
      for (Term t : q.subgoal(idx).args()) {
        if (!t.is_variable()) continue;
        const Term image = core.mapping.Apply(t);
        // Property (1): identity on tuple arguments.
        if (tuple.atom.Mentions(t)) EXPECT_EQ(image, t);
        // Property (2): distinguished variables stay themselves.
        if (q.IsDistinguished(t)) EXPECT_EQ(image, t);
        // Property (3): existential images pull in all subgoals of t.
        if (exist_set.count(image) > 0) {
          for (size_t j = 0; j < q.num_subgoals(); ++j) {
            if (q.subgoal(j).Mentions(t)) {
              EXPECT_NE(std::find(core.covered.begin(), core.covered.end(),
                                  j),
                        core.covered.end());
            }
          }
        }
      }
    }
    // Property (1): injectivity of the witness on used variables.
    for (const auto& [var, image] : core.mapping.bindings()) {
      EXPECT_TRUE(images.insert(image).second)
          << "mapping not injective at " << image.ToString();
    }
  }
}

TEST_P(OptimalityTest, MinimizeProducesMinimalEquivalent) {
  const Workload w = GenerateWorkload(SmallConfig(GetParam()));
  const ConjunctiveQuery m = Minimize(w.query);
  EXPECT_TRUE(AreEquivalent(m, w.query));
  EXPECT_TRUE(IsMinimal(m));
  EXPECT_LE(m.num_subgoals(), w.query.num_subgoals());
}

TEST_P(OptimalityTest, ClassSwapPreservesRewritings) {
  // Section 5.2 property: replacing a view tuple by any member of its
  // tuple-core class keeps the query covered, hence keeps an equivalent
  // rewriting.
  const Workload w = GenerateWorkload(SmallConfig(GetParam()));
  CoreCoverOptions options;
  options.group_views = false;
  options.group_view_tuples = false;
  const auto result = CoreCover(w.query, w.views, options);
  if (!result.has_rewriting || result.rewritings.empty()) return;

  // Build class lookup: atom text -> class id, and class id -> members.
  std::unordered_map<std::string, size_t> class_of;
  std::unordered_map<size_t, std::vector<Atom>> members;
  for (const auto& t : result.view_tuples) {
    class_of[t.tuple.atom.ToString()] = t.class_id;
    members[t.class_id].push_back(t.tuple.atom);
  }
  const ConjunctiveQuery& p = result.rewritings.front();
  for (size_t i = 0; i < p.num_subgoals(); ++i) {
    auto it = class_of.find(p.subgoal(i).ToString());
    ASSERT_NE(it, class_of.end());
    for (const Atom& replacement : members[it->second]) {
      std::vector<Atom> body = p.body();
      body[i] = replacement;
      const ConjunctiveQuery swapped = p.WithBody(std::move(body));
      EXPECT_TRUE(IsEquivalentRewriting(swapped, w.query, w.views))
          << swapped.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalityTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace vbr
