// Candidate-equivalence property suite for the indexed view catalog
// (rewrite/view_index.h), the lockdown for ISSUE 9's sub-linear candidate
// selection. Over ~500 seeded (query, catalog) pairs across the three
// Section 7 shapes it checks, per case:
//
//   1. Index/scan agreement: ViewIndex::Candidates equals LinearCandidates
//      exactly, in both candidate modes — the index is a faster spelling
//      of the same filter, never a different one.
//   2. Candidate soundness: every view that actually appears in any
//      rewriting of a full-scan (filter OFF) CoreCover* run is in the
//      kCoverAll candidate set for the minimized query. Dropping a view
//      the rewriting search would have used is the one unrecoverable bug
//      of a candidate filter; this pins it directly.
//   3. Plan byte-identity: CoreCover* with the filter ON (indexed and
//      linear) produces byte-identical output — same status, same
//      minimized core, same rewritings in the same order — as the filter
//      OFF run. Through the ViewPlanner facade the chosen plan, its
//      certificate, and the "no rewriting" outcomes must match at 1, 2,
//      and 8 worker threads (PlanMany), so threading cannot smuggle in an
//      order dependence.
//
// Failures name the shape and seed; replay by running the same config
// through GenerateWorkload.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "cq/vbin_codec.h"
#include "engine/database.h"
#include "planner/planner.h"
#include "rewrite/core_cover.h"
#include "rewrite/view_index.h"
#include "workload/generator.h"

namespace vbr {
namespace {

// 5 blocks x 34 seeds x 3 shapes = 510 cases.
constexpr size_t kBlocks = 5;
constexpr size_t kSeedsPerBlock = 34;

const char* ShapeName(QueryShape shape) {
  switch (shape) {
    case QueryShape::kStar:
      return "star";
    case QueryShape::kChain:
      return "chain";
    case QueryShape::kRandom:
      return "random";
  }
  return "?";
}

WorkloadConfig CaseConfig(QueryShape shape, uint64_t seed) {
  WorkloadConfig config;
  config.shape = shape;
  config.num_query_subgoals = 3 + seed % 3;
  // A pool wider than the query keeps a real fraction of each catalog
  // outside the candidate set, so the filter actually filters.
  config.num_predicates = 6;
  config.num_views = 12;
  // A third of the seeds drop the coverage views so the suite also covers
  // agreement on "no rewriting exists".
  config.ensure_rewriting_exists = (seed % 3 != 0);
  // Half the seeds skew predicate popularity (the massive-catalog regime);
  // the rest stay uniform.
  config.predicate_zipf_s = (seed % 2 == 0) ? 0.0 : 1.0;
  config.seed = seed;
  return config;
}

std::string CaseLabel(QueryShape shape, uint64_t seed) {
  return "[shape=" + std::string(ShapeName(shape)) +
         " seed=" + std::to_string(seed) + "] ";
}

// -- 1. index == linear scan, both modes ------------------------------------

::testing::AssertionResult RunAgreementCase(QueryShape shape, uint64_t seed) {
  const Workload w = GenerateWorkload(CaseConfig(shape, seed));
  const ViewIndex index(w.views);
  for (CandidateMode mode :
       {CandidateMode::kCoverAll, CandidateMode::kAnyOverlap}) {
    const std::vector<size_t> linear = LinearCandidates(w.views, w.query, mode);
    const std::vector<size_t> indexed = index.Candidates(w.query, mode);
    if (linear != indexed) {
      auto fmt = [](const std::vector<size_t>& v) {
        std::string s = "{";
        for (size_t i : v) s += std::to_string(i) + ",";
        return s + "}";
      };
      return ::testing::AssertionFailure()
             << CaseLabel(shape, seed) << "index/scan disagreement in mode "
             << (mode == CandidateMode::kCoverAll ? "kCoverAll" : "kAnyOverlap")
             << "\nlinear:  " << fmt(linear) << "\nindexed: " << fmt(indexed)
             << "\nquery: " << w.query.ToString();
    }
  }
  return ::testing::AssertionSuccess();
}

// -- 2. candidates cover every view a full scan uses ------------------------

::testing::AssertionResult RunSoundnessCase(QueryShape shape, uint64_t seed) {
  const Workload w = GenerateWorkload(CaseConfig(shape, seed));
  CoreCoverOptions full_scan;
  full_scan.use_view_index = false;
  const CoreCoverResult cc = CoreCoverStar(w.query, w.views, full_scan);
  if (!cc.ok() || cc.rewritings.empty()) return ::testing::AssertionSuccess();

  // Catalog positions of every view predicate any rewriting mentions.
  std::unordered_map<Symbol, size_t> by_head;
  for (size_t i = 0; i < w.views.size(); ++i) {
    by_head.emplace(w.views[i].head().predicate(), i);
  }
  const ViewIndex index(w.views);
  const std::vector<size_t> candidates =
      index.Candidates(cc.minimized_query, CandidateMode::kCoverAll);
  std::vector<bool> is_candidate(w.views.size(), false);
  for (size_t i : candidates) is_candidate[i] = true;

  for (const ConjunctiveQuery& p : cc.rewritings) {
    for (const Atom& a : p.body()) {
      const auto it = by_head.find(a.predicate());
      if (it == by_head.end()) continue;  // filter atoms etc.
      if (!is_candidate[it->second]) {
        return ::testing::AssertionFailure()
               << CaseLabel(shape, seed) << "view w" << it->second << " ("
               << w.views[it->second].ToString()
               << ") is used by rewriting " << p.ToString()
               << " but missing from the kCoverAll candidate set";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// -- 3. byte-identical plans with the filter on/off -------------------------

std::string CoreCoverKey(const CoreCoverResult& r) {
  std::string key = std::to_string(static_cast<int>(r.status)) + "|" +
                    (r.has_rewriting ? "y" : "n") + "|" +
                    EncodeQueryFile(r.minimized_query) + "|";
  key += EncodeProgramFile(r.rewritings);
  return key;
}

::testing::AssertionResult RunCoreCoverIdentityCase(QueryShape shape,
                                                    uint64_t seed) {
  const Workload w = GenerateWorkload(CaseConfig(shape, seed));

  CoreCoverOptions off;
  off.use_view_index = false;
  const std::string baseline = CoreCoverKey(CoreCoverStar(w.query, w.views, off));

  CoreCoverOptions linear_filter;  // filter on, no prebuilt index
  const std::string linear =
      CoreCoverKey(CoreCoverStar(w.query, w.views, linear_filter));

  const ViewIndex index(w.views);
  CoreCoverOptions indexed_filter;
  indexed_filter.view_index = &index;
  const std::string indexed =
      CoreCoverKey(CoreCoverStar(w.query, w.views, indexed_filter));

  if (linear != baseline) {
    return ::testing::AssertionFailure()
           << CaseLabel(shape, seed)
           << "linear candidate filter changed CoreCover* output\nquery: "
           << w.query.ToString();
  }
  if (indexed != baseline) {
    return ::testing::AssertionFailure()
           << CaseLabel(shape, seed)
           << "indexed candidate filter changed CoreCover* output\nquery: "
           << w.query.ToString();
  }
  return ::testing::AssertionSuccess();
}

std::string PlanKey(const ViewPlanner::PlanResult& r) {
  std::string key = std::string(PlanStatusName(r.status)) + "|" + r.error + "|";
  if (r.choice.has_value()) {
    key += EncodeQueryFile(r.choice->logical) + "|" +
           std::to_string(r.choice->cost) + "|" + r.choice->ToString() + "|" +
           r.choice->certificate.ToString();
  }
  return key;
}

::testing::AssertionResult RunPlannerIdentityCase(QueryShape shape,
                                                  uint64_t seed) {
  const Workload w = GenerateWorkload(CaseConfig(shape, seed));
  // The same queries again as renamed duplicates, so PlanMany's in-flight
  // dedup also runs under both configurations.
  const std::vector<ConjunctiveQuery> batch = {w.query, w.query, w.query};

  std::vector<std::string> baseline;
  {
    ViewPlanner::Options options;
    options.core_cover.use_view_index = false;
    ViewPlanner planner(w.views, Database{}, options);
    for (const auto& r : planner.PlanMany(batch, CostModel::kM1)) {
      baseline.push_back(PlanKey(r));
    }
  }
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    ViewPlanner::Options options;
    options.core_cover.use_view_index = true;
    options.core_cover.num_threads = threads;
    ViewPlanner planner(w.views, Database{}, options);
    const auto results = planner.PlanMany(batch, CostModel::kM1);
    for (size_t i = 0; i < results.size(); ++i) {
      if (PlanKey(results[i]) != baseline[i]) {
        return ::testing::AssertionFailure()
               << CaseLabel(shape, seed) << "indexed plan diverged at threads="
               << threads << " batch index " << i << "\nbaseline: "
               << baseline[i] << "\nindexed:  " << PlanKey(results[i]);
      }
    }
  }
  return ::testing::AssertionSuccess();
}

class ViewIndexEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ViewIndexEquivalenceTest, IndexAgreesWithLinearScan) {
  const size_t block = GetParam();
  for (size_t i = 0; i < kSeedsPerBlock; ++i) {
    const uint64_t seed = 1 + block * kSeedsPerBlock + i;
    for (QueryShape shape :
         {QueryShape::kStar, QueryShape::kChain, QueryShape::kRandom}) {
      EXPECT_TRUE(RunAgreementCase(shape, seed));
    }
  }
}

TEST_P(ViewIndexEquivalenceTest, CandidatesCoverEveryUsedView) {
  const size_t block = GetParam();
  for (size_t i = 0; i < kSeedsPerBlock; ++i) {
    const uint64_t seed = 1 + block * kSeedsPerBlock + i;
    for (QueryShape shape :
         {QueryShape::kStar, QueryShape::kChain, QueryShape::kRandom}) {
      EXPECT_TRUE(RunSoundnessCase(shape, seed));
    }
  }
}

TEST_P(ViewIndexEquivalenceTest, CoreCoverOutputIsByteIdentical) {
  const size_t block = GetParam();
  for (size_t i = 0; i < kSeedsPerBlock; ++i) {
    const uint64_t seed = 1 + block * kSeedsPerBlock + i;
    for (QueryShape shape :
         {QueryShape::kStar, QueryShape::kChain, QueryShape::kRandom}) {
      EXPECT_TRUE(RunCoreCoverIdentityCase(shape, seed));
    }
  }
}

TEST_P(ViewIndexEquivalenceTest, PlannerOutputIsByteIdenticalAcrossThreads) {
  const size_t block = GetParam();
  // Planner identity is pricier (three planners per case), so thin the
  // seeds: every third one still gives ~56 cases per block pair.
  for (size_t i = 0; i < kSeedsPerBlock; i += 3) {
    const uint64_t seed = 1 + block * kSeedsPerBlock + i;
    for (QueryShape shape :
         {QueryShape::kStar, QueryShape::kChain, QueryShape::kRandom}) {
      EXPECT_TRUE(RunPlannerIdentityCase(shape, seed));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, ViewIndexEquivalenceTest,
                         ::testing::Range<size_t>(0, kBlocks));

// A massive-catalog spot check: at 2000 views the indexed planner must
// consider well under the full catalog and still agree byte-for-byte with
// the full scan on a batch of queries.
TEST(ViewIndexEquivalenceTest, MassiveCatalogAgreesAndPrunes) {
  MassiveCatalogConfig config;
  config.num_views = 2000;
  config.num_predicates = 128;
  config.seed = 11;
  const Workload w = GenerateMassiveCatalog(config);
  const std::vector<ConjunctiveQuery> queries =
      GenerateCatalogQueries(config, 8, /*seed=*/77);

  ViewPlanner::Options off;
  off.core_cover.use_view_index = false;
  ViewPlanner full(w.views, Database{}, off);
  ViewPlanner::Options on;
  ViewPlanner indexed(w.views, Database{}, on);

  double considered = 0;
  for (const ConjunctiveQuery& q : queries) {
    const auto a = full.Plan(q, CostModel::kM1);
    const auto b = indexed.Plan(q, CostModel::kM1);
    EXPECT_EQ(PlanKey(a), PlanKey(b)) << q.ToString();
    EXPECT_EQ(a.stats.num_views, b.stats.num_views);
    considered += static_cast<double>(b.stats.num_candidate_views);
  }
  const double ratio = considered / (static_cast<double>(queries.size()) *
                                     static_cast<double>(w.views.size()));
  // Zipf pool of 128 predicates, 6-subgoal star queries: well under half
  // the catalog can share the query's predicates.
  EXPECT_LT(ratio, 0.5) << "indexed planner considered " << ratio
                        << " of the catalog";
}

}  // namespace
}  // namespace vbr
