#include "cost/supplementary.h"

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "engine/evaluator.h"
#include "engine/materialize.h"
#include "rewrite/rewriting.h"

namespace vbr {
namespace {

// Example 6.1 (Figure 5).
ConjunctiveQuery Example61Query() {
  return MustParseQuery("q(A) :- r(A,A), t(A,B), s(B,B)");
}

ViewSet Example61Views() {
  return MustParseProgram(R"(
    v1(A,B) :- r(A,A), s(B,B)
    v2(A,B) :- t(A,B), s(B,B)
  )");
}

Database Example61Base() {
  Database db;
  db.AddRow("r", {1, 1});
  for (Value v : {2, 4, 6, 8}) db.AddRow("s", {v, v});
  db.AddRow("t", {1, 2});
  db.AddRow("t", {3, 4});
  db.AddRow("t", {5, 6});
  db.AddRow("t", {7, 8});
  return db;
}

TEST(SupplementaryDropsTest, DropsUnusedVariablesOnly) {
  const auto p = MustParseQuery("q(A) :- v1(A,B), v2(A,B)");
  const auto drops = SupplementaryDrops(p, {0, 1});
  // B is used by the second subgoal, so nothing drops after step 1; B drops
  // after step 2.
  ASSERT_EQ(drops.size(), 2u);
  EXPECT_TRUE(drops[0].empty());
  EXPECT_EQ(drops[1], (std::vector<Term>{Var("B")}));
}

TEST(SupplementaryDropsTest, FreshVariableDropsImmediately) {
  const auto p = MustParseQuery("q(A) :- v1(A,B), v2(A,C)");
  const auto drops = SupplementaryDrops(p, {0, 1});
  EXPECT_EQ(drops[0], (std::vector<Term>{Var("B")}));
  EXPECT_EQ(drops[1], (std::vector<Term>{Var("C")}));
}

TEST(SupplementaryDropsTest, HeadVariablesNeverDrop) {
  const auto p = MustParseQuery("q(A,B) :- v1(A,B), v2(A,C)");
  const auto drops = SupplementaryDrops(p, {0, 1});
  EXPECT_TRUE(drops[0].empty());
  for (const auto& step : drops) {
    for (Term t : step) {
      EXPECT_NE(t, Var("A"));
      EXPECT_NE(t, Var("B"));
    }
  }
}

TEST(GeneralizedDropsTest, Example61RenamingUnlocksTheDrop) {
  // On rewriting P2 = v1(A,B), v2(A,B): renaming B in the prefix preserves
  // equivalence, so the GSR heuristic drops it after step 1 — exactly the
  // paper's point that P2's physical plans need not keep B.
  const auto q = Example61Query();
  const ViewSet views = Example61Views();
  const auto p2 = MustParseQuery("q(A) :- v1(A,B), v2(A,B)");
  const auto result = GeneralizedDrops(p2, q, views, {0, 1});
  ASSERT_EQ(result.extra_drops.size(), 2u);
  EXPECT_EQ(result.extra_drops[0].size(), 1u);  // The renamed B.
  // The renamed rewriting is still an equivalent rewriting.
  EXPECT_TRUE(IsEquivalentRewriting(result.renamed_rewriting, q, views));
}

TEST(GeneralizedDropsTest, RenamingRefusedWhenEqualityIsNeeded) {
  // Query q(A) :- t(A,B), s(B,B) with views exposing both columns: the join
  // on B is essential, so B must not drop early.
  const auto q = MustParseQuery("q(A) :- t(A,B), s(B,B)");
  const auto views = MustParseProgram(R"(
    w1(A,B) :- t(A,B)
    w2(B) :- s(B,B)
  )");
  const auto p = MustParseQuery("q(A) :- w1(A,B), w2(B)");
  const auto result = GeneralizedDrops(p, q, views, {0, 1});
  EXPECT_TRUE(result.extra_drops[0].empty());
  EXPECT_EQ(result.renamed_rewriting, p);
}

TEST(GsrCostTest, Example61GsrBeatsSr) {
  // The paper's punchline: under M3, the generalized strategy produces a
  // strictly cheaper physical plan for P2 than the supplementary-relation
  // strategy.
  const auto q = Example61Query();
  const ViewSet views = Example61Views();
  const Database view_db = MaterializeViews(views, Example61Base());
  const auto p2 = MustParseQuery("q(A) :- v1(A,B), v2(A,B)");
  const auto comparison = CompareM3Strategies(p2, q, views, view_db);
  EXPECT_LT(comparison.gsr_cost, comparison.sr_cost);
}

TEST(GsrCostTest, Example61CostsMatchHandComputation) {
  const auto q = Example61Query();
  const ViewSet views = Example61Views();
  const Database view_db = MaterializeViews(views, Example61Base());
  const auto p2 = MustParseQuery("q(A) :- v1(A,B), v2(A,B)");

  // SR with order [v1, v2]: size(v1)=4 + SR1=4, size(v2)=4 + SR2=1 -> 13.
  PhysicalPlan sr;
  sr.rewriting = p2;
  sr.order = {0, 1};
  sr.drop_after = SupplementaryDrops(p2, sr.order);
  EXPECT_EQ(ExecutePlan(sr, view_db).TotalCost(), 13u);

  // GSR with the same order: size(v1)=4 + GSR1=1, size(v2)=4 + GSR2=1 -> 10.
  const auto gsr_drops = GeneralizedDrops(p2, q, views, {0, 1});
  PhysicalPlan gsr;
  gsr.rewriting = gsr_drops.renamed_rewriting;
  gsr.order = {0, 1};
  gsr.drop_after = gsr_drops.drop_after;
  EXPECT_EQ(ExecutePlan(gsr, view_db).TotalCost(), 10u);
}

TEST(GsrCostTest, BothStrategiesComputeTheQueryAnswer) {
  const auto q = Example61Query();
  const ViewSet views = Example61Views();
  const Database base = Example61Base();
  const Database view_db = MaterializeViews(views, base);
  const auto p2 = MustParseQuery("q(A) :- v1(A,B), v2(A,B)");
  const Relation expected = EvaluateQuery(q, base);

  const auto comparison = CompareM3Strategies(p2, q, views, view_db);
  EXPECT_TRUE(
      ExecutePlan(comparison.sr_plan, view_db).answer.EqualsAsSet(expected));
  EXPECT_TRUE(
      ExecutePlan(comparison.gsr_plan, view_db).answer.EqualsAsSet(expected));
}

TEST(GeneralizedDropsTest, AccumulatedRenamingsCompose) {
  // Three-subgoal rewriting where two different variables are droppable in
  // sequence.
  const auto q = MustParseQuery("q(A) :- r(A,A), t(A,B), s(B,B), u(A,C)");
  const auto views = MustParseProgram(R"(
    v1(A,B) :- r(A,A), s(B,B)
    v2(A,B) :- t(A,B), s(B,B)
    v3(A,C) :- u(A,C)
  )");
  const auto p = MustParseQuery("q(A) :- v1(A,B), v2(A,B), v3(A,C)");
  const auto result = GeneralizedDrops(p, q, views, {0, 1, 2});
  EXPECT_EQ(result.extra_drops[0].size(), 1u);  // B droppable after v1.
  EXPECT_TRUE(IsEquivalentRewriting(result.renamed_rewriting, q, views));
}

}  // namespace
}  // namespace vbr
