#include "cost/m3_optimizer.h"

#include <gtest/gtest.h>

#include "cost/supplementary.h"
#include "cq/parser.h"
#include "engine/evaluator.h"
#include "engine/materialize.h"
#include "rewrite/core_cover.h"
#include "workload/data_gen.h"
#include "workload/generator.h"

namespace vbr {
namespace {

// Example 6.1's setup.
struct Fixture {
  ConjunctiveQuery query = MustParseQuery("q(A) :- r(A,A), t(A,B), s(B,B)");
  ViewSet views = MustParseProgram(R"(
    v1(A,B) :- r(A,A), s(B,B)
    v2(A,B) :- t(A,B), s(B,B)
  )");
  ConjunctiveQuery p2 = MustParseQuery("q(A) :- v1(A,B), v2(A,B)");
  Database view_db;

  Fixture() {
    Database base;
    base.AddRow("r", {1, 1});
    for (Value v : {2, 4, 6, 8}) base.AddRow("s", {v, v});
    base.AddRow("t", {1, 2});
    base.AddRow("t", {3, 4});
    base.AddRow("t", {5, 6});
    base.AddRow("t", {7, 8});
    view_db = MaterializeViews(views, base);
  }
};

TEST(M3OptimizerTest, MatchesGsrOnExample61) {
  const Fixture f;
  const auto best = OptimizeM3(f.p2, f.query, f.views, f.view_db);
  const auto cmp = CompareM3Strategies(f.p2, f.query, f.views, f.view_db);
  // The cost-based optimizer explores a superset of both strategies.
  EXPECT_LE(best.cost, cmp.gsr_cost);
  EXPECT_LE(best.cost, cmp.sr_cost);
  EXPECT_EQ(best.cost, 10u);  // The paper's cheapest plan.
  EXPECT_GT(best.plans_evaluated, 2u);
}

TEST(M3OptimizerTest, AnswerIsPreserved)  {
  const Fixture f;
  const auto best = OptimizeM3(f.p2, f.query, f.views, f.view_db);
  Database base;
  base.AddRow("r", {1, 1});
  for (Value v : {2, 4, 6, 8}) base.AddRow("s", {v, v});
  base.AddRow("t", {1, 2});
  base.AddRow("t", {3, 4});
  base.AddRow("t", {5, 6});
  base.AddRow("t", {7, 8});
  EXPECT_TRUE(ExecutePlan(best.plan, f.view_db)
                  .answer.EqualsAsSet(EvaluateQuery(f.query, base)));
}

TEST(M3OptimizerTest, KeepBeatsDropWhenEqualityPrunes) {
  // A case where the renaming-safe drop is a bad idea: the B-equality
  // prunes a large cross product mid-plan. The cost-based optimizer must
  // keep it when keeping is cheaper, i.e., never do worse than both fixed
  // strategies.
  const auto query = MustParseQuery("q(A) :- r(A,A), t(A,B), s(B,B), u(A)");
  const auto views = MustParseProgram(R"(
    v1(A,B) :- r(A,A), s(B,B)
    v2(A,B) :- t(A,B), s(B,B)
    v3(A) :- u(A)
  )");
  Database base;
  for (Value a = 1; a <= 6; ++a) base.AddRow("r", {a, a});
  for (Value v = 1; v <= 30; ++v) base.AddRow("s", {v, v});
  for (Value a = 1; a <= 6; ++a) {
    for (Value b = 1; b <= 5; ++b) base.AddRow("t", {a, a * 5 + b});
  }
  for (Value a = 1; a <= 3; ++a) base.AddRow("u", {a});
  const Database view_db = MaterializeViews(views, base);
  const auto p = MustParseQuery("q(A) :- v1(A,B), v2(A,B), v3(A)");

  const auto best = OptimizeM3(p, query, views, view_db);
  const auto cmp = CompareM3Strategies(p, query, views, view_db);
  EXPECT_LE(best.cost, std::min(cmp.sr_cost, cmp.gsr_cost));
}

TEST(M3OptimizerTest, RandomWorkloadsNeverWorseThanFixedStrategies) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    WorkloadConfig wc;
    wc.shape = QueryShape::kChain;
    wc.num_query_subgoals = 4;
    wc.num_views = 10;
    wc.seed = seed;
    const Workload w = GenerateWorkload(wc);
    DataConfig dc;
    dc.rows_per_relation = 40;
    dc.domain_size = 8;
    dc.seed = seed * 19;
    const Database base = GenerateBaseData(w.query, w.views, dc);
    const Database view_db = MaterializeViews(w.views, base);
    const Relation expected = EvaluateQuery(w.query, base);

    const auto cc = CoreCoverStar(w.query, w.views);
    for (const auto& p : cc.rewritings) {
      if (p.num_subgoals() < 2 || p.num_subgoals() > 3) continue;
      const auto best = OptimizeM3(p, w.query, w.views, view_db);
      const auto cmp = CompareM3Strategies(p, w.query, w.views, view_db);
      EXPECT_LE(best.cost, std::min(cmp.sr_cost, cmp.gsr_cost));
      EXPECT_TRUE(
          ExecutePlan(best.plan, view_db).answer.EqualsAsSet(expected))
          << best.plan.ToString();
    }
  }
}

TEST(M3OptimizerTest, SingleSubgoalPlan) {
  const Fixture f;
  const auto p = MustParseQuery("q(A) :- v1(A,B)");
  const auto q = MustParseQuery("q(A) :- r(A,A), s(B,B)");
  const auto best = OptimizeM3(p, q, f.views, f.view_db);
  EXPECT_EQ(best.plan.order.size(), 1u);
  // size(v1)=4 + state after dropping B = 1 -> 5.
  EXPECT_EQ(best.cost, 5u);
}

}  // namespace
}  // namespace vbr
