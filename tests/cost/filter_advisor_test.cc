#include "cost/filter_advisor.h"

#include <gtest/gtest.h>

#include "cost/m2_optimizer.h"
#include "cq/parser.h"
#include "engine/materialize.h"
#include "rewrite/core_cover.h"
#include "rewrite/rewriting.h"

namespace vbr {
namespace {

TEST(FilterAdvisorTest, SelectiveFilterIsAccepted) {
  Database db;
  for (Value i = 0; i < 100; ++i) db.AddRow("vbig", {i});
  db.AddRow("vf", {3});
  db.AddRow("vf", {7});
  const auto p = MustParseQuery("q(X) :- vbig(X)");
  const Atom filter = MustParseQuery("h() :- vf(X)").subgoal(0);
  const auto advice = AdviseFilters(p, {filter}, db);
  ASSERT_EQ(advice.filters_added.size(), 1u);
  EXPECT_LT(advice.improved_cost, advice.base_cost);
  EXPECT_EQ(advice.improved.num_subgoals(), 2u);
}

TEST(FilterAdvisorTest, UselessFilterIsRejected) {
  Database db;
  for (Value i = 0; i < 10; ++i) db.AddRow("vbig", {i});
  for (Value i = 0; i < 10; ++i) db.AddRow("vsame", {i});
  const auto p = MustParseQuery("q(X) :- vbig(X)");
  const Atom filter = MustParseQuery("h() :- vsame(X)").subgoal(0);
  const auto advice = AdviseFilters(p, {filter}, db);
  EXPECT_TRUE(advice.filters_added.empty());
  EXPECT_EQ(advice.improved_cost, advice.base_cost);
  EXPECT_EQ(advice.improved, p);
}

TEST(FilterAdvisorTest, PicksBestOfSeveralFilters) {
  Database db;
  for (Value i = 0; i < 100; ++i) db.AddRow("vbig", {i});
  for (Value i = 0; i < 50; ++i) db.AddRow("fhalf", {i});
  db.AddRow("ftiny", {1});
  const auto p = MustParseQuery("q(X) :- vbig(X)");
  const Atom half = MustParseQuery("h() :- fhalf(X)").subgoal(0);
  const Atom tiny = MustParseQuery("h() :- ftiny(X)").subgoal(0);
  const auto advice = AdviseFilters(p, {half, tiny}, db);
  ASSERT_FALSE(advice.filters_added.empty());
  EXPECT_EQ(advice.filters_added[0].predicate_name(), "ftiny");
}

TEST(FilterAdvisorTest, CarLocPartP3BeatsP2WhenV3IsSelective) {
  // The paper's Section 1/5 scenario: v3 (stores selling parts for
  // anderson's makes in anderson's cities) is very selective, so adding it
  // to P2 yields a cheaper plan — rewriting P3.
  Database base;
  const Value a = EncodeConstant(Const("a"));
  for (Value m = 0; m < 20; ++m) base.AddRow("car", {m, a});
  for (Value c = 0; c < 20; ++c) base.AddRow("loc", {a, 100 + c});
  // 1000 parts, mostly for makes/cities unrelated to anderson.
  for (Value i = 0; i < 1000; ++i) {
    base.AddRow("part", {2000 + i, 500 + (i % 100), 900 + (i % 50)});
  }
  // A handful of parts that actually match.
  for (Value i = 0; i < 5; ++i) {
    base.AddRow("part", {3000 + i, i, 100 + i});
  }
  const auto q =
      MustParseQuery("q1(S,C) :- car(M,a), loc(a,C), part(S,M,C)");
  const ViewSet views = MustParseProgram(R"(
    v1(M,D,C) :- car(M,D), loc(D,C)
    v2(S,M,C) :- part(S,M,C)
    v3(S) :- car(M,a), loc(a,C), part(S,M,C)
  )");
  const Database view_db = MaterializeViews(views, base);

  const auto result = CoreCover(q, views);
  ASSERT_TRUE(result.has_rewriting);
  ASSERT_EQ(result.filter_candidates.size(), 1u);
  const Atom v3_tuple =
      result.view_tuples[result.filter_candidates[0]].tuple.atom;

  const auto p2 = MustParseQuery("q1(S,C) :- v1(M,a,C), v2(S,M,C)");
  const auto advice = AdviseFilters(p2, {v3_tuple}, view_db);
  ASSERT_EQ(advice.filters_added.size(), 1u);
  EXPECT_LT(advice.improved_cost, advice.base_cost);
  // The improved rewriting is P3 and still equivalent.
  EXPECT_TRUE(IsEquivalentRewriting(advice.improved, q, views));
}

TEST(FilterAdvisorTest, NoCandidatesIsANoOp) {
  Database db;
  db.AddRow("v", {1});
  const auto p = MustParseQuery("q(X) :- v(X)");
  const auto advice = AdviseFilters(p, {}, db);
  EXPECT_TRUE(advice.filters_added.empty());
  EXPECT_EQ(advice.improved, p);
}

}  // namespace
}  // namespace vbr
