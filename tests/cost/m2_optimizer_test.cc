#include "cost/m2_optimizer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "cq/parser.h"
#include "engine/materialize.h"

namespace vbr {
namespace {

// A skewed instance: va tiny, vb large, vc medium.
Database SkewedViews() {
  Database db;
  db.AddRow("va", {1});
  for (Value i = 0; i < 100; ++i) db.AddRow("vb", {i % 10, i});
  for (Value i = 0; i < 10; ++i) db.AddRow("vc", {i});
  return db;
}

TEST(M2OptimizerTest, CostOfOrderMatchesHandComputation) {
  Database db;
  db.AddRow("v1", {1, 10});
  db.AddRow("v1", {2, 20});
  db.AddRow("v2", {10});
  const auto p = MustParseQuery("q(A) :- v1(A,B), v2(B)");
  // Order [v1, v2]: size(v1)=2 + IR1=2, size(v2)=1 + IR2=1 -> 6.
  EXPECT_EQ(CostOfOrderM2(p, {0, 1}, db), 6u);
  // Order [v2, v1]: size(v2)=1 + IR1=1, size(v1)=2 + IR2=1 -> 5.
  EXPECT_EQ(CostOfOrderM2(p, {1, 0}, db), 5u);
}

TEST(M2OptimizerTest, OptimizerPicksCheapestOrder) {
  Database db;
  db.AddRow("v1", {1, 10});
  db.AddRow("v1", {2, 20});
  db.AddRow("v2", {10});
  const auto p = MustParseQuery("q(A) :- v1(A,B), v2(B)");
  const auto result = OptimizeOrderM2(p, db);
  EXPECT_EQ(result.cost, 5u);
  EXPECT_EQ(result.plan.order, (std::vector<size_t>{1, 0}));
}

TEST(M2OptimizerTest, OptimalMatchesExhaustiveEnumeration) {
  const Database db = SkewedViews();
  const auto p = MustParseQuery("q(X,Y) :- va(X), vb(X,Y), vc(X)");
  const auto result = OptimizeOrderM2(p, db);
  std::vector<size_t> order(p.num_subgoals());
  std::iota(order.begin(), order.end(), 0);
  size_t best = SIZE_MAX;
  do {
    best = std::min(best, CostOfOrderM2(p, order, db));
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_EQ(result.cost, best);
}

TEST(M2OptimizerTest, SelectiveRelationGoesFirst) {
  const Database db = SkewedViews();
  const auto p = MustParseQuery("q(X,Y) :- vb(X,Y), va(X)");
  const auto result = OptimizeOrderM2(p, db);
  // va has 1 row; starting with it shrinks every intermediate.
  EXPECT_EQ(result.plan.order.front(), 1u);
}

TEST(M2OptimizerTest, SingleSubgoal) {
  Database db;
  db.AddRow("v", {1});
  db.AddRow("v", {2});
  const auto p = MustParseQuery("q(X) :- v(X)");
  const auto result = OptimizeOrderM2(p, db);
  EXPECT_EQ(result.cost, 4u);  // size(v) + IR1 = 2 + 2.
  EXPECT_EQ(result.plan.order, (std::vector<size_t>{0}));
}

TEST(M2OptimizerTest, SubsetsCostedIsBounded) {
  const Database db = SkewedViews();
  const auto p = MustParseQuery("q(X,Y) :- va(X), vb(X,Y), vc(X)");
  const auto result = OptimizeOrderM2(p, db);
  EXPECT_LE(result.subsets_costed, 7u);  // 2^3 - 1.
}

TEST(M2OptimizerTest, EmptyViewRelationMakesPlansCheap) {
  Database db;
  db.AddRow("vb", {1, 2});
  const auto p = MustParseQuery("q(X,Y) :- va(X), vb(X,Y)");
  const auto result = OptimizeOrderM2(p, db);
  // All IRs that include va are empty; cost = sizes only.
  EXPECT_LE(result.cost, 2u);
}

}  // namespace
}  // namespace vbr
