#include "cost/estimator.h"

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "engine/evaluator.h"
#include "engine/materialize.h"
#include "rewrite/core_cover.h"
#include "workload/data_gen.h"
#include "workload/generator.h"

namespace vbr {
namespace {

TEST(StatsCatalogTest, CollectsRowAndDistinctCounts) {
  Database db;
  db.AddRow("r", {1, 10});
  db.AddRow("r", {1, 20});
  db.AddRow("r", {2, 20});
  const StatsCatalog catalog = StatsCatalog::Collect(db);
  const RelationStats* stats =
      catalog.Find(SymbolTable::Global().Intern("r"));
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->rows, 3u);
  EXPECT_EQ(stats->distinct, (std::vector<size_t>{2, 2}));
  EXPECT_EQ(catalog.Find(SymbolTable::Global().Intern("zzz")), nullptr);
}

TEST(EstimateTest, SingleAtomIsRowCount) {
  Database db;
  for (Value i = 0; i < 7; ++i) db.AddRow("r", {i, i});
  const StatsCatalog catalog = StatsCatalog::Collect(db);
  const auto q = MustParseQuery("q(X,Y) :- r(X,Y)");
  EXPECT_DOUBLE_EQ(EstimateJoinSize(q.body(), catalog), 7.0);
}

TEST(EstimateTest, ConstantSelectionDividesByDistinct) {
  Database db;
  for (Value i = 0; i < 10; ++i) db.AddRow("r", {i % 5, i});
  const StatsCatalog catalog = StatsCatalog::Collect(db);
  const auto q = MustParseQuery("q(Y) :- r(3,Y)");
  // 10 rows / 5 distinct keys = 2.
  EXPECT_DOUBLE_EQ(EstimateJoinSize(q.body(), catalog), 2.0);
}

TEST(EstimateTest, EquiJoinDividesByMaxDistinct) {
  Database db;
  for (Value i = 0; i < 20; ++i) db.AddRow("r", {i % 4, i});
  for (Value i = 0; i < 12; ++i) db.AddRow("s", {i % 6, i});
  const StatsCatalog catalog = StatsCatalog::Collect(db);
  const auto q = MustParseQuery("q(X) :- r(X,A), s(X,B)");
  // 20 * 12 / max(4, 6) = 40.
  EXPECT_DOUBLE_EQ(EstimateJoinSize(q.body(), catalog), 40.0);
}

TEST(EstimateTest, MissingRelationEstimatesZero) {
  Database db;
  db.AddRow("r", {1});
  const StatsCatalog catalog = StatsCatalog::Collect(db);
  const auto q = MustParseQuery("q(X) :- r(X), missing(X)");
  EXPECT_DOUBLE_EQ(EstimateJoinSize(q.body(), catalog), 0.0);
}

TEST(EstimateTest, RepeatedVariableWithinAtom) {
  Database db;
  for (Value i = 0; i < 10; ++i) db.AddRow("r", {i, (i * 3) % 10});
  const StatsCatalog catalog = StatsCatalog::Collect(db);
  const auto q = MustParseQuery("q(X) :- r(X,X)");
  // 10 / max distinct(10, 10) = 1.
  EXPECT_DOUBLE_EQ(EstimateJoinSize(q.body(), catalog), 1.0);
}

TEST(EstimateTest, ExactForKeyForeignKeyUniform) {
  // Perfectly uniform key/foreign-key join: the estimate is exact.
  Database db;
  for (Value i = 0; i < 8; ++i) db.AddRow("dim", {i, i + 100});
  for (Value i = 0; i < 64; ++i) db.AddRow("fact", {i % 8, i});
  const StatsCatalog catalog = StatsCatalog::Collect(db);
  const auto q = MustParseQuery("q(K,P,F) :- dim(K,P), fact(K,F)");
  const double estimate = EstimateJoinSize(q.body(), catalog);
  const size_t actual = JoinSize(q.body(), db);
  EXPECT_DOUBLE_EQ(estimate, static_cast<double>(actual));
}

TEST(EstimatedOptimizerTest, ReturnsValidOrder) {
  Database db;
  db.AddRow("va", {1});
  for (Value i = 0; i < 50; ++i) db.AddRow("vb", {i % 5, i});
  const StatsCatalog catalog = StatsCatalog::Collect(db);
  const auto p = MustParseQuery("q(X,Y) :- vb(X,Y), va(X)");
  const auto result = OptimizeOrderM2Estimated(p, catalog);
  ASSERT_EQ(result.plan.order.size(), 2u);
  // The selective va goes first under the estimate too.
  EXPECT_EQ(result.plan.order.front(), 1u);
}

TEST(EstimatedOptimizerTest, EstimatedPlanIsNearOptimalOnUniformData) {
  // On uniform synthetic data the estimated plan's TRUE cost should be
  // close to the measured optimum (here: within 2x across seeds).
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    WorkloadConfig wc;
    wc.shape = QueryShape::kChain;
    wc.num_query_subgoals = 4;
    wc.num_views = 10;
    wc.seed = seed;
    const Workload w = GenerateWorkload(wc);
    DataConfig dc;
    dc.rows_per_relation = 80;
    dc.domain_size = 15;
    dc.seed = seed * 53;
    const Database base = GenerateBaseData(w.query, w.views, dc);
    const Database view_db = MaterializeViews(w.views, base);
    const StatsCatalog catalog = StatsCatalog::Collect(view_db);

    const auto cc = CoreCoverStar(w.query, w.views);
    for (const auto& p : cc.rewritings) {
      if (p.num_subgoals() < 2) continue;
      const auto exact = OptimizeOrderM2(p, view_db);
      const auto estimated = OptimizeOrderM2Estimated(p, catalog);
      const size_t true_cost_of_estimated =
          CostOfOrderM2(p, estimated.plan.order, view_db);
      EXPECT_LE(true_cost_of_estimated, exact.cost * 2)
          << p.ToString() << " seed " << seed;
      EXPECT_GE(true_cost_of_estimated, exact.cost);
    }
  }
}

}  // namespace
}  // namespace vbr
