#include "cost/physical_plan.h"

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "engine/evaluator.h"
#include "engine/materialize.h"

namespace vbr {
namespace {

// Example 6.1's database (Figure 5): r self-loops at 1, s self-loops at
// 2/4/6/8, t edges 1->2, 3->4, 5->6, 7->8.
Database Example61Base() {
  Database db;
  db.AddRow("r", {1, 1});
  for (Value v : {2, 4, 6, 8}) db.AddRow("s", {v, v});
  db.AddRow("t", {1, 2});
  db.AddRow("t", {3, 4});
  db.AddRow("t", {5, 6});
  db.AddRow("t", {7, 8});
  return db;
}

ViewSet Example61Views() {
  return MustParseProgram(R"(
    v1(A,B) :- r(A,A), s(B,B)
    v2(A,B) :- t(A,B), s(B,B)
  )");
}

TEST(PhysicalPlanTest, Example61ViewInstancesMatchFigure) {
  const Database views = MaterializeViews(Example61Views(), Example61Base());
  // The paper's Example 6.1 instances: v1 = {(1,2),(1,4),(1,6),(1,8)} and
  // v2 = {(1,2),(3,4),(5,6),(7,8)}.
  const Relation* v1 = views.Find(SymbolTable::Global().Intern("v1"));
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->size(), 4u);
  EXPECT_TRUE(v1->Contains({1, 2}));
  EXPECT_TRUE(v1->Contains({1, 8}));
  const Relation* v2 = views.Find(SymbolTable::Global().Intern("v2"));
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(v2->size(), 4u);
  EXPECT_TRUE(v2->Contains({1, 2}));
  EXPECT_TRUE(v2->Contains({7, 8}));
}

TEST(PhysicalPlanTest, ExecuteWithoutDropsComputesJoin) {
  const Database views = MaterializeViews(Example61Views(), Example61Base());
  PhysicalPlan plan;
  plan.rewriting = MustParseQuery("q(A) :- v1(A,B), v2(A,B)");
  plan.order = {0, 1};
  const PlanExecution exec = ExecutePlan(plan, views);
  // Answer: A such that r(A,A), t(A,B), s(B,B): A=1 only.
  EXPECT_EQ(exec.answer.size(), 1u);
  EXPECT_TRUE(exec.answer.Contains({1}));
  ASSERT_EQ(exec.state_sizes.size(), 2u);
  EXPECT_EQ(exec.state_sizes[0], 4u);  // IR1 = v1 (four rows).
  EXPECT_EQ(exec.state_sizes[1], 1u);  // IR2 = the single join row.
}

TEST(PhysicalPlanTest, AnswerMatchesEvaluator) {
  const Database views = MaterializeViews(Example61Views(), Example61Base());
  const auto p = MustParseQuery("q(A) :- v1(A,B), v2(A,C)");
  PhysicalPlan plan;
  plan.rewriting = p;
  plan.order = {1, 0};
  const PlanExecution exec = ExecutePlan(plan, views);
  EXPECT_TRUE(exec.answer.EqualsAsSet(EvaluateQuery(p, views)));
}

TEST(PhysicalPlanTest, DropsReduceStateSizes) {
  const Database views = MaterializeViews(Example61Views(), Example61Base());
  // P1 with order [v1(A,B), v2(A,C)], dropping B then C — the paper's F1.
  PhysicalPlan plan;
  plan.rewriting = MustParseQuery("q(A) :- v1(A,B), v2(A,C)");
  plan.order = {0, 1};
  plan.drop_after = {{Var("B")}, {Var("C")}};
  const PlanExecution exec = ExecutePlan(plan, views);
  // Dropping B after step 1 leaves only A: v1's sole A-value {1}. Step 2
  // joins v2 on A (matching (1,2)) and drops C.
  EXPECT_EQ(exec.state_sizes[0], 1u);
  EXPECT_EQ(exec.state_sizes[1], 1u);
  EXPECT_TRUE(exec.answer.Contains({1}));
}

TEST(PhysicalPlanTest, DroppedJoinVariableChangesSemantics) {
  // Dropping a variable used later removes the equality: plan becomes the
  // cross-join filtered only on A.
  const Database views = MaterializeViews(Example61Views(), Example61Base());
  PhysicalPlan join_plan;
  join_plan.rewriting = MustParseQuery("q(A) :- v1(A,B), v2(A,B)");
  join_plan.order = {0, 1};
  const size_t joined = ExecutePlan(join_plan, views).answer.size();

  PhysicalPlan dropped_plan;
  dropped_plan.rewriting = MustParseQuery("q(A) :- v1(A,B1), v2(A,B)");
  dropped_plan.order = {0, 1};
  dropped_plan.drop_after = {{Var("B1")}, {Var("B")}};
  const size_t loosened = ExecutePlan(dropped_plan, views).answer.size();
  EXPECT_EQ(joined, 1u);
  EXPECT_EQ(loosened, 1u);  // Same here because A=1 forces B=2 anyway.
}

TEST(PhysicalPlanTest, TotalCostSumsRelationAndStateSizes) {
  const Database views = MaterializeViews(Example61Views(), Example61Base());
  PhysicalPlan plan;
  plan.rewriting = MustParseQuery("q(A) :- v1(A,B), v2(A,B)");
  plan.order = {0, 1};
  const PlanExecution exec = ExecutePlan(plan, views);
  EXPECT_EQ(exec.TotalCost(), exec.relation_sizes[0] +
                                  exec.relation_sizes[1] +
                                  exec.state_sizes[0] + exec.state_sizes[1]);
}

TEST(PhysicalPlanTest, MissingViewRelationYieldsEmptyAnswer) {
  Database views;  // Nothing materialized.
  PhysicalPlan plan;
  plan.rewriting = MustParseQuery("q(A) :- vmissing(A)");
  plan.order = {0};
  const PlanExecution exec = ExecutePlan(plan, views);
  EXPECT_EQ(exec.answer.size(), 0u);
  EXPECT_EQ(exec.relation_sizes[0], 0u);
}

TEST(PhysicalPlanTest, RepeatedVariableInsideSubgoal) {
  Database views;
  views.AddRow("v", {1, 1});
  views.AddRow("v", {1, 2});
  PhysicalPlan plan;
  plan.rewriting = MustParseQuery("q(A) :- v(A,A)");
  plan.order = {0};
  const PlanExecution exec = ExecutePlan(plan, views);
  EXPECT_EQ(exec.answer.size(), 1u);
  EXPECT_TRUE(exec.answer.Contains({1}));
}

TEST(PhysicalPlanTest, ConstantSelectionInSubgoal) {
  Database views;
  views.AddRow("v", {1, 10});
  views.AddRow("v", {2, 20});
  PhysicalPlan plan;
  plan.rewriting = MustParseQuery("q(B) :- v(2,B)");
  plan.order = {0};
  const PlanExecution exec = ExecutePlan(plan, views);
  EXPECT_EQ(exec.answer.size(), 1u);
  EXPECT_TRUE(exec.answer.Contains({20}));
}

TEST(PhysicalPlanDeathTest, DroppingHeadVariableAborts) {
  Database views;
  views.AddRow("v", {1, 2});
  PhysicalPlan plan;
  plan.rewriting = MustParseQuery("q(A) :- v(A,B)");
  plan.order = {0};
  plan.drop_after = {{Var("A")}};
  EXPECT_DEATH(ExecutePlan(plan, views), "head");
}

TEST(PhysicalPlanTest, ToStringShowsOrderAndDrops) {
  PhysicalPlan plan;
  plan.rewriting = MustParseQuery("q(A) :- v1(A,B), v2(A,B)");
  plan.order = {1, 0};
  plan.drop_after = {{Var("B")}, {}};
  EXPECT_EQ(plan.ToString(), "[v2(A,B){drop B}, v1(A,B)]");
}

}  // namespace
}  // namespace vbr
