#ifndef VBR_PLANNER_PLAN_CACHE_H_
#define VBR_PLANNER_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "cost/cost_model.h"
#include "cq/fingerprint.h"
#include "cq/query.h"
#include "rewrite/certificate.h"
#include "rewrite/core_cover.h"
#include "rewrite/view_index.h"

namespace vbr {

// The cached logical outcome of one CoreCover / CoreCoverStar run, stored in
// CANONICAL variable space (every variable renamed by the inserting query's
// canonical labeling, see cq/fingerprint.h). CoreCover's logical output
// depends only on the query and the view DEFINITIONS — never on the view
// instances — so entries stay valid while the view set is unchanged and are
// re-costed against current instance sizes on every hit.
struct CachedPlan {
  // Fingerprint of the inserting query; `canonical` names the variable
  // space the fields below live in.
  QueryFingerprint fingerprint;
  // CoreCover outcome. Negative outcomes (no rewriting / unsupported) are
  // cached too, so repeated unanswerable queries stay cheap.
  CoreCoverStatus status = CoreCoverStatus::kOk;
  std::string error;
  bool has_rewriting = false;
  // The minimized core the rewritings are stated over.
  ConjunctiveQuery minimized;
  // All rewritings CoreCover emitted, in emission order.
  std::vector<ConjunctiveQuery> rewritings;
  // Empty-core view-tuple atoms: the filter candidates the M2/M3 costing
  // loop may append (instance-dependent, so the CHOICE is not cached).
  std::vector<Atom> filter_atoms;
  // Stats of the original planning run (timings describe that run).
  CoreCoverStats stats;

  // Equivalence certificates, parallel to `rewritings`, filled lazily as
  // winners get certified (certifying every rewriting up front would cost
  // more than it saves). Monotone under `cert_mu`: a slot goes absent ->
  // present once and is never replaced.
  std::optional<EquivalenceCertificate> certificate(size_t index) const;
  void StoreCertificate(size_t index, EquivalenceCertificate certificate) const;

 private:
  mutable std::mutex cert_mu_;
  mutable std::vector<std::optional<EquivalenceCertificate>> certificates_;
};

// Snapshot of one cache's counters. The live counters are metrics::Counter
// instruments (common/metrics.h); each PlanCache also mirrors its updates
// into the global MetricsRegistry under "planner.cache.*" so process-wide
// exports aggregate across planners.
struct PlanCacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  // LRU evictions plus entries dropped by epoch invalidation.
  uint64_t evictions = 0;

  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

// A thread-safe, sharded LRU cache of CachedPlan entries keyed by
// (query fingerprint, cost model, view-set epoch).
//
//  * Sharding: entries are distributed over independently locked shards by
//    fingerprint hash; concurrent lookups of different queries contend only
//    on distinct shard mutexes and the (atomic) counters.
//  * LRU: each shard evicts its least-recently-used entry once past its
//    share of the capacity.
//  * Epoch: BumpEpoch() (called when the view set is replaced wholesale)
//    invalidates every existing entry; entries carry the epoch they were
//    inserted under, and a lookup never returns an entry from a different
//    epoch. Callers that plan against an RCU view-set snapshot (planner.h)
//    pass the snapshot's epoch explicitly, so a request that raced
//    ReplaceViews stays internally consistent: its lookups and inserts are
//    keyed to the view set it actually planned against, and an insert
//    under a stale epoch is silently dropped.
//  * Delta epoch: AddViews/RemoveViews are small catalog changes that
//    leave most cached plans untouched, so instead of bumping the global
//    epoch they call RecordDelta() with summaries of the CHANGED views
//    only. That advances a second counter and pushes a "fence" carrying
//    those summaries. An entry and a lookup at different delta epochs are
//    reconciled per-entry: the entry stays valid iff NO fence between the
//    two epochs (in either direction — the caller may be pinned to an
//    older snapshot than the entry) carries a changed view that is a
//    kCoverAll candidate for the entry's minimized query. A non-candidate
//    view cannot appear in any rewriting of the query nor enable a new
//    one (rewrite/view_index.h), so the cached outcome is unaffected by
//    its arrival or departure. The fence history is bounded
//    (kMaxDeltaFences); when a fence has been discarded the check turns
//    conservative and treats the entry as invalid.
//  * Collisions: a lookup matches on the full canonical string, not just
//    the 64-bit hash. If either fingerprint is inexact (canonical-labeling
//    budget exhausted — pathological symmetry), the match falls back to a
//    FindIsomorphism() check and reports the witnessing renaming.
class PlanCache {
 public:
  using EntryPtr = std::shared_ptr<const CachedPlan>;

  // `capacity` is the total entry budget, split evenly across `num_shards`
  // shards (each shard holds at least one entry).
  explicit PlanCache(size_t capacity, size_t num_shards = 8);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // Sentinel for the epoch parameters below: "use the cache's current
  // epoch" (the right choice when the caller is not pinned to a snapshot).
  static constexpr uint64_t kCurrentEpoch = UINT64_MAX;
  // Same sentinel for the delta-epoch parameters.
  static constexpr uint64_t kCurrentDeltaEpoch = UINT64_MAX;
  // Fences retained for the delta validity check; once a delta is older
  // than the newest kMaxDeltaFences fences, entries from before it are
  // conservatively treated as invalidated.
  static constexpr size_t kMaxDeltaFences = 64;

  // Returns the entry for (fp, model) in `epoch`, or nullptr. `minimized`
  // is the caller's minimized query (its own variable names), used only for
  // the inexact-fingerprint isomorphism fallback; when the match came from
  // that fallback, *fallback_transport receives the renaming
  // entry-canonical-vars -> caller-vars (otherwise it is reset, and the
  // caller's own from_canonical mapping applies). `delta_epoch` is the
  // caller's pinned delta epoch; an entry whose candidate set could have
  // changed between its delta epoch and the caller's is never returned
  // (and is dropped when it is also stale for the CURRENT delta epoch).
  EntryPtr Lookup(const QueryFingerprint& fp, CostModel model,
                  const ConjunctiveQuery& minimized,
                  std::optional<Substitution>* fallback_transport,
                  uint64_t epoch = kCurrentEpoch,
                  uint64_t delta_epoch = kCurrentDeltaEpoch);

  // Inserts `entry` (keyed by entry->fingerprint) under `epoch`, evicting
  // LRU entries as needed. Re-inserting an existing key refreshes the
  // stored entry (and its delta epoch). An insert under an epoch that is
  // no longer current is a no-op: the planning run raced a ReplaceViews
  // and its outcome describes a retired view set. An insert under a STALE
  // delta epoch is kept — the fence check at lookup time decides, per
  // query, whether the intervening deltas could have affected it.
  void Insert(CostModel model, EntryPtr entry,
              uint64_t epoch = kCurrentEpoch,
              uint64_t delta_epoch = kCurrentDeltaEpoch);

  // Records a deduplication hit served outside Lookup (PlanMany hands a
  // just-planned entry straight to batch duplicates).
  void RecordDedupHit();

  // Invalidates every entry: the epoch counter is bumped and all shards are
  // purged (the dropped entries count as evictions). Returns the new epoch.
  uint64_t BumpEpoch();

  // Records one AddViews/RemoveViews delta: advances the delta epoch and
  // fences it with the summaries of the changed views. Returns the new
  // delta epoch. Callers MUST record the delta before publishing the new
  // catalog snapshot, so no request can plan against the new catalog under
  // a pre-fence delta epoch.
  uint64_t RecordDelta(std::vector<ViewSummary> changed_views);

  // Fast-forwards the delta epoch to at least `delta_epoch` without a
  // fence (snapshot restore: the epochs in between carry no changes this
  // process ever saw, and the restored entries describe the restored
  // catalog). No-op when the counter is already past it.
  void AdvanceDeltaEpochTo(uint64_t delta_epoch);

  uint64_t delta_epoch() const {
    return delta_epoch_.load(std::memory_order_acquire);
  }

  // Snapshot support (planner/snapshot.h): every entry living under the
  // CURRENT epoch, coldest-first per shard, so re-Inserting them in order
  // into a fresh cache reproduces the recency order. Entries are shared
  // (not copied); CachedPlan is immutable apart from its monotone
  // certificate slots, so the export stays valid while the cache moves on.
  std::vector<std::pair<CostModel, EntryPtr>> ExportEntries() const;

  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  size_t size() const;
  size_t capacity() const { return capacity_; }
  PlanCacheCounters counters() const;
  void Clear();

 private:
  struct Node {
    CostModel model = CostModel::kM1;
    uint64_t epoch = 0;
    uint64_t delta_epoch = 0;
    EntryPtr entry;
  };
  // One AddViews/RemoveViews mutation: everything at delta epoch `id` and
  // later planned against a catalog where `changed` had been applied.
  struct DeltaFence {
    uint64_t id = 0;
    std::vector<ViewSummary> changed;
  };
  struct Shard {
    mutable std::mutex mu;
    // Front = most recently used.
    std::list<Node> lru;
    // hash -> node; multimap to tolerate 64-bit hash collisions.
    std::unordered_multimap<uint64_t, std::list<Node>::iterator> index;
  };

  Shard& ShardFor(uint64_t hash) { return shards_[hash % shards_.size()]; }
  // Unlinks `it` from `shard` (index + list). Caller holds shard.mu.
  void Erase(Shard& shard, std::list<Node>::iterator it);

  // True iff no delta fence strictly between min(a, b) and max(a, b)
  // (inclusive on the high side) changed a view that is a kCoverAll
  // candidate for `entry`'s minimized query; conservatively false when
  // part of that range has been discarded from the fence history. Locks
  // fence_mu_ (safe under shard.mu: fence_mu_ is a leaf lock).
  bool EntryValidAcrossDeltas(const CachedPlan& entry, uint64_t a,
                              uint64_t b) const;

  // Bumps a per-instance counter and its global "planner.cache.*" mirror.
  struct MirroredCounter {
    Counter local;
    Counter* global = nullptr;
    void Add(uint64_t n) {
      local.Add(n);
      global->Add(n);
    }
    void Increment() { Add(1); }
  };

  const size_t capacity_;
  const size_t shard_capacity_;
  std::vector<Shard> shards_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> delta_epoch_{0};
  // Guards fences_ / evicted_fences_upto_. Leaf lock: acquired under
  // shard.mu (never the reverse).
  mutable std::mutex fence_mu_;
  std::deque<DeltaFence> fences_;
  // Fences with id <= this value have been discarded; validity ranges
  // reaching below it cannot be checked and read as invalid.
  uint64_t evicted_fences_upto_ = 0;
  MirroredCounter hits_;
  MirroredCounter misses_;
  MirroredCounter insertions_;
  MirroredCounter evictions_;
};

}  // namespace vbr

#endif  // VBR_PLANNER_PLAN_CACHE_H_
