#include "planner/request_options.h"

#include <cmath>

namespace vbr {

namespace {

// The stricter of two limits, where 0 means "unset / unlimited".
double StricterMs(double a, double b) {
  if (a <= 0) return b;
  if (b <= 0) return a;
  return a < b ? a : b;
}

uint64_t StricterUnits(uint64_t a, uint64_t b) {
  if (a == 0) return b;
  if (b == 0) return a;
  return a < b ? a : b;
}

// Reads an optional non-negative number member into *out (as uint64_t).
bool ReadLimit(const JsonValue& object, const std::string& key, uint64_t* out,
               std::string* error) {
  const JsonValue* member = object.Get(key);
  if (member == nullptr) return true;
  if (!member->is_number() || member->number_value() < 0 ||
      std::floor(member->number_value()) != member->number_value()) {
    if (error != nullptr) {
      *error = "\"" + key + "\" must be a non-negative integer";
    }
    return false;
  }
  *out = static_cast<uint64_t>(member->number_value());
  return true;
}

}  // namespace

ResourceLimits PlanRequestOptions::limits() const {
  ResourceLimits limits;
  limits.deadline_ms = deadline_ms;
  limits.work_limit = work_limit;
  limits.memory_limit_bytes = memory_limit_bytes;
  limits.search_node_cap = search_node_cap;
  return limits;
}

PlanRequestOptions PlanRequestOptions::StricterOf(
    const PlanRequestOptions& other) const {
  PlanRequestOptions merged = *this;
  merged.deadline_ms = StricterMs(deadline_ms, other.deadline_ms);
  merged.work_limit = StricterUnits(work_limit, other.work_limit);
  merged.memory_limit_bytes =
      StricterUnits(memory_limit_bytes, other.memory_limit_bytes);
  merged.search_node_cap =
      StricterUnits(search_node_cap, other.search_node_cap);
  return merged;
}

std::string PlanRequestOptions::ToJson() const {
  std::string s = "{";
  s += "\"model\":\"" + std::string(CostModelName(model)) + "\"";
  s += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  s += ",\"work_limit\":" + std::to_string(work_limit);
  s += ",\"memory_limit_bytes\":" + std::to_string(memory_limit_bytes);
  s += ",\"search_node_cap\":" + std::to_string(search_node_cap);
  s += "}";
  return s;
}

std::optional<PlanRequestOptions> PlanRequestOptions::FromJson(
    const JsonValue& value, std::string* error) {
  if (!value.is_object()) {
    if (error != nullptr) *error = "options must be a JSON object";
    return std::nullopt;
  }
  PlanRequestOptions options;
  for (const auto& [key, member] : value.object_members()) {
    if (key == "model") {
      if (!member.is_string() ||
          !CostModelFromName(member.string_value(), &options.model)) {
        if (error != nullptr) *error = "\"model\" must be \"m1\"|\"m2\"|\"m3\"";
        return std::nullopt;
      }
    } else if (key == "deadline_ms") {
      if (!member.is_number() || !std::isfinite(member.number_value()) ||
          member.number_value() < 0) {
        if (error != nullptr) {
          *error = "\"deadline_ms\" must be a finite non-negative number";
        }
        return std::nullopt;
      }
      options.deadline_ms = member.number_value();
    } else if (key == "work_limit" || key == "memory_limit_bytes" ||
               key == "search_node_cap") {
      // Handled below via ReadLimit so all three share the validation.
    } else {
      if (error != nullptr) *error = "unknown option \"" + key + "\"";
      return std::nullopt;
    }
  }
  if (!ReadLimit(value, "work_limit", &options.work_limit, error) ||
      !ReadLimit(value, "memory_limit_bytes", &options.memory_limit_bytes,
                 error) ||
      !ReadLimit(value, "search_node_cap", &options.search_node_cap, error)) {
    return std::nullopt;
  }
  return options;
}

std::optional<PlanRequestOptions> PlanRequestOptions::FromJsonText(
    std::string_view text, std::string* error) {
  std::optional<JsonValue> parsed = ParseJson(text, error);
  if (!parsed.has_value()) return std::nullopt;
  return FromJson(*parsed, error);
}

}  // namespace vbr
