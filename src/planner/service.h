#ifndef VBR_PLANNER_SERVICE_H_
#define VBR_PLANNER_SERVICE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "common/budget.h"
#include "common/circuit_breaker.h"
#include "common/timer.h"
#include "common/trace.h"
#include "planner/planner.h"

namespace vbr {
class RequestLogWriter;  // planner/snapshot.h
}

namespace vbr {

// Overload-safe serving layer over ViewPlanner (see DESIGN.md "Serving and
// overload").
//
// The planner itself is a library call: it plans every query it is handed,
// however expensive, however many arrive at once. A service cannot afford
// that — under overload, planning everything means finishing nothing on
// time. The PlanningService therefore wraps the planner behind
//
//  * a bounded, deadline-aware request queue with admission control
//    (requests are REJECTED up front when the queue is full, when their
//    deadline provably cannot be met at the current backlog, or when the
//    circuit breaker has opened),
//  * a fixed pool of worker threads (the concurrency limiter),
//  * per-request resource budgets derived from the request deadline and
//    installed as a ResourceGovernor around the planner call,
//  * jittered exponential-backoff retries for TRANSIENTLY faulted requests
//    (injected faults, BudgetKind::kInjected) — genuine budget exhaustion
//    is not transient and is never retried,
//  * a multi-level circuit breaker (common/circuit_breaker.h) that walks a
//    brown-out ladder under sustained failure: full planning -> shed
//    tracing -> shrunken budgets -> cached-or-M1-only -> reject, and
//  * graceful drain on shutdown: every admitted request reaches a terminal
//    status; nothing is lost or completed twice.
//
// Accounting invariant (asserted by tests/service/stress_harness_test.cc):
//
//   submitted == admitted + rejected
//   admitted  == completed + shed + failed
//
// `rejected` requests never entered the queue; `shed` requests were
// admitted but dropped without planning (queue-deadline expiry, shutdown
// shedding); `failed` requests exhausted their retry budget on a transient
// fault; everything else completes with the planner's own PlanResult
// (including kBudgetExhausted and kNoRewriting — those are answers, not
// service failures, though exhaustion does feed the breaker).
//
// Determinism: the service itself introduces two nondeterministic inputs —
// wall-clock deadlines and retry sleeps. Tests neutralize both: deadlines
// are optional (and the admission estimate can be pinned via
// `assumed_service_ms`), and the retry sleep is injectable (`sleep_ms`), so
// a test can capture delays instead of sleeping. The breaker and the
// backoff schedule are clock- and RNG-free by construction.
class PlanningService {
 public:
  // Service-level disposition of one request. The planner-level outcome
  // (PlanStatus) lives inside PlanResponse::result and is populated exactly
  // when status == kOk.
  enum class ServiceStatus {
    // The planner ran and produced a result (any PlanStatus).
    kOk = 0,
    // Not admitted; reject_reason says why. The request was never queued.
    kRejected,
    // Admitted, then dropped without planning: its deadline expired while
    // queued, or shutdown shed the backlog.
    kShed,
    // Admitted and planned, but every attempt died on a transient
    // (injected) fault and the retry budget ran out.
    kFailed,
  };

  enum class RejectReason {
    kNone = 0,
    // The bounded queue is at capacity.
    kQueueFull,
    // The request's deadline cannot be met given the current backlog and
    // the observed per-request service time.
    kDeadlineUnmeetable,
    // The circuit breaker is at the reject level (and this request was not
    // selected as a half-open probe).
    kOverloaded,
    // Shutdown() has begun; no new work is accepted.
    kShuttingDown,
  };

  static const char* ServiceStatusName(ServiceStatus status);
  static const char* RejectReasonName(RejectReason reason);

  struct PlanRequest {
    ConjunctiveQuery query;
    // The transport-neutral request options (planner/request_options.h):
    // cost model, wall-clock deadline measured from Submit() (feeds the
    // admission estimate, the queue-expiry check, and the per-request
    // governor), and the request's own work/memory budget. Budget fields
    // merge STRICTER-WINS with the service-wide Options::budget cap, so a
    // client can narrow but never widen what the operator configured.
    PlanRequestOptions options;
    // Optional trace sink for this request's span tree. Shed (ignored) at
    // brown-out level >= 1.
    TraceSink* trace = nullptr;

    // DEPRECATED shim (kept one release) for callers that populated the
    // old {query, model, deadline_ms} members directly.
    [[deprecated("populate PlanRequest::options instead")]]
    static PlanRequest Make(ConjunctiveQuery query, CostModel model,
                            double deadline_ms = 0) {
      PlanRequest request;
      request.query = std::move(query);
      request.options.model = model;
      request.options.deadline_ms = deadline_ms;
      return request;
    }
  };

  struct PlanResponse {
    ServiceStatus status = ServiceStatus::kRejected;
    RejectReason reject_reason = RejectReason::kNone;
    // The planner's outcome; meaningful only when status == kOk.
    ViewPlanner::PlanResult result;
    // Planning attempts made (1 + retries); 0 when never planned.
    uint32_t attempts = 0;
    // Brown-out level the request was served at (0 = full service).
    uint32_t service_level = 0;
    // True when the cached-or-M1-only rung answered from the plan cache
    // without any rewriting search.
    bool served_from_cache_only = false;
    // True when the requested cost model was demoted to M1 by the ladder.
    bool model_demoted = false;
    // Milliseconds spent queued before a worker picked the request up.
    double queue_wait_ms = 0;
    std::string error;

    bool ok() const { return status == ServiceStatus::kOk; }

    // One JSON object in the Explain/PlanResult dialect, self-describing
    // via ServiceStatusName / RejectReasonName:
    //   {"service_status":"ok","reject_reason":"none","attempts":1,
    //    "service_level":0,"served_from_cache_only":false,
    //    "model_demoted":false,"queue_wait_ms":0.12,"error":"",
    //    "result":{...PlanResult::ToJson...}}
    // `result` is null unless service_status == "ok".
    std::string ToJson() const;
  };

  struct Options {
    // Worker threads (the concurrency limit). At least 1.
    size_t num_workers = 2;
    // Bounded queue capacity; submissions beyond it are rejected.
    size_t max_queue = 64;
    // Admission-time estimate of one request's service time, used for the
    // unmeetable-deadline check. 0 = use the live EWMA of observed service
    // times (the check is skipped until one completes); > 0 pins the
    // estimate, which tests use for deterministic admission decisions.
    double assumed_service_ms = 0;
    // Retry schedule for transiently faulted requests. max_attempts counts
    // ALL attempts (first try included).
    BackoffPolicy retry;
    // Seed for the backoff jitter (combined with the request id, so every
    // request gets its own deterministic schedule).
    uint64_t retry_seed = 0x5eed;
    // Brown-out ladder breaker.
    CircuitBreakerOptions breaker;
    // Service-wide budget CAP installed (as a ResourceGovernor) around
    // planner calls; unlimited by default. Each request's own
    // PlanRequestOptions budget merges into this stricter-wins, and a
    // request deadline additionally tightens deadline_ms to the time the
    // request has left at dequeue.
    ResourceLimits budget;
    // The SHRUNKEN budget applied at brown-out level >= 2: each limit is
    // the stricter of `budget` and this (0 fields inherit `budget`).
    ResourceLimits brownout_budget = ShrunkenDefault();
    // Injectable retry sleep, for tests; null sleeps the calling worker
    // with std::this_thread::sleep_for.
    std::function<void(double /*delay_ms*/)> sleep_ms;
    // When set, every submission (admitted or not) appends one VBIN
    // request record — query + its own PlanRequestOptions, pre-merge — to
    // this log (planner/snapshot.h), giving a replayable trace of the
    // live stream (`vbr_cli --replay <log>`). Appends are lock-protected
    // and never fail the request path. Wire traffic is covered too: the
    // PlanServer submits through this service.
    std::shared_ptr<RequestLogWriter> request_log;

   private:
    static ResourceLimits ShrunkenDefault() {
      ResourceLimits limits;
      limits.work_limit = 50'000;
      return limits;
    }
  };

  // Cumulative service counters (monotone; snapshot under one lock, so the
  // invariants above hold at every observation point once the queue is
  // idle).
  struct Stats {
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t completed = 0;
    uint64_t shed = 0;
    uint64_t failed = 0;
    uint64_t rejected = 0;
    uint64_t rejected_queue_full = 0;
    uint64_t rejected_deadline = 0;
    uint64_t rejected_overload = 0;
    uint64_t rejected_shutdown = 0;
    uint64_t retries = 0;
    uint64_t probes = 0;
    uint64_t deadline_misses = 0;  // completed, but past their deadline
    uint64_t cache_only_hits = 0;
    uint64_t model_demotions = 0;
    size_t queue_depth = 0;
    uint32_t breaker_level = 0;
    uint64_t breaker_trips = 0;
    uint64_t breaker_recoveries = 0;
    double service_time_estimate_ms = 0;

    std::string ToString() const;
    // The same counters as one JSON object ({"submitted":N,...}), used by
    // the server's /statz endpoint and the loadgen accounting check.
    std::string ToJson() const;
  };

  enum class DrainMode {
    // Finish every queued request before stopping (default, destructor).
    kDrain = 0,
    // Complete queued requests as kShed without planning them.
    kShedPending,
  };

  // `planner` must outlive the service. The service starts its workers
  // immediately and accepts submissions until Shutdown().
  PlanningService(const ViewPlanner* planner, Options options);
  ~PlanningService();

  PlanningService(const PlanningService&) = delete;
  PlanningService& operator=(const PlanningService&) = delete;

  // Submits one request. The returned future becomes ready exactly once,
  // with a terminal PlanResponse — rejections resolve it immediately.
  // Thread-safe.
  std::future<PlanResponse> Submit(PlanRequest request);

  // Callback-style submission for event-loop callers (the network server):
  // `done` is invoked exactly once with the terminal PlanResponse, from a
  // worker thread — or from the CALLING thread when the request is
  // rejected at admission. The callback must not block and must be safe to
  // run after the caller has moved on (capture shared state by
  // shared_ptr). Thread-safe.
  void SubmitWithCallback(PlanRequest request,
                          std::function<void(PlanResponse)> done);

  // Blocking convenience: Submit + wait.
  PlanResponse Plan(PlanRequest request);
  PlanResponse Plan(ConjunctiveQuery query, CostModel model);

  // Stops the service: no new submissions are admitted, queued requests are
  // drained or shed per `mode`, and the workers are joined. Idempotent;
  // concurrent callers all block until the stop completes. After Shutdown,
  // every future ever returned by Submit is ready.
  void Shutdown(DrainMode mode = DrainMode::kDrain);

  Stats stats() const;
  const CircuitBreaker& breaker() const { return breaker_; }
  uint32_t service_level() const { return breaker_.level(); }
  const ViewPlanner& planner() const { return *planner_; }

 private:
  struct Request {
    PlanRequest request;
    // Exactly one of the two completion channels is armed: `promise` for
    // Submit(), `callback` for SubmitWithCallback().
    std::promise<PlanResponse> promise;
    std::function<void(PlanResponse)> callback;
    Timer queued;       // started at admission
    bool probe = false; // admitted as a half-open breaker probe
    uint64_t id = 0;
  };

  // Shared admission path behind Submit / SubmitWithCallback.
  std::future<PlanResponse> SubmitInternal(
      PlanRequest request, std::function<void(PlanResponse)> done);
  // Resolves the request's completion channel (promise or callback).
  static void Fulfill(Request& request, PlanResponse response);

  void WorkerLoop();
  // Plans one admitted request end to end (ladder, budget, retries) and
  // fulfils its promise. Called on a worker thread.
  void Serve(Request& request);
  // Resolves `request` as kShed with `why`, updating accounting.
  void Shed(Request& request, const std::string& why, bool record_failure);
  // The effective brown-out rung for a request about to be planned.
  uint32_t EffectiveLevel() const;
  // The governor limits for one attempt at `level`: the service-wide cap
  // tightened by the request's own budget (stricter-wins) and, when the
  // request has a deadline, by the `remaining_ms` it has left (0 = none).
  ResourceLimits AttemptLimits(uint32_t level, double remaining_ms,
                               const PlanRequestOptions& request) const;

  const ViewPlanner* const planner_;
  const Options options_;
  CircuitBreaker breaker_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Request>> queue_;  // guarded by mu_
  bool stopping_ = false;                       // guarded by mu_
  DrainMode drain_mode_ = DrainMode::kDrain;    // guarded by mu_
  bool joined_ = false;                         // guarded by mu_
  uint64_t next_id_ = 0;                        // guarded by mu_
  Stats stats_;                                 // guarded by mu_
  double ewma_service_ms_ = 0;                  // guarded by mu_
  bool ewma_valid_ = false;                     // guarded by mu_

  std::mutex join_mu_;  // serializes the join in Shutdown
  std::vector<std::thread> workers_;
};

}  // namespace vbr

#endif  // VBR_PLANNER_SERVICE_H_
