#include "planner/snapshot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <utility>

#include "common/fault_injection.h"
#include "cq/vbin_codec.h"
#include "planner/planner.h"
#include "rewrite/vbin_codec.h"

namespace vbr {
namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = kFnvOffset;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

// splitmix64 finalizer: spreads each per-view hash across all 64 bits so
// the commutative sum below doesn't collapse structurally-similar views.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

// ---------------------------------------------------------------------------
// PlanRequestOptions

void EncodePlanRequestOptions(const PlanRequestOptions& options,
                              vbin::FileWriter* writer) {
  // 1-based model byte (matches the wire protocol: zeroed bytes are
  // invalid, not M1).
  writer->AppendU8(static_cast<uint8_t>(options.model) + 1);
  writer->AppendF64(options.deadline_ms);
  writer->AppendVarint(options.work_limit);
  writer->AppendVarint(options.memory_limit_bytes);
  writer->AppendVarint(options.search_node_cap);
}

bool DecodePlanRequestOptions(vbin::Reader* reader, PlanRequestOptions* out) {
  uint8_t model = 0;
  if (!reader->ReadU8(&model)) return false;
  if (model < 1 || model > 3) {
    reader->Fail("bad cost model");
    return false;
  }
  out->model = static_cast<CostModel>(model - 1);
  if (!reader->ReadF64(&out->deadline_ms)) return false;
  if (std::isnan(out->deadline_ms) || std::isinf(out->deadline_ms) ||
      out->deadline_ms < 0) {
    reader->Fail("bad deadline");
    return false;
  }
  return reader->ReadVarint(&out->work_limit) &&
         reader->ReadVarint(&out->memory_limit_bytes) &&
         reader->ReadVarint(&out->search_node_cap);
}

// ---------------------------------------------------------------------------
// View-set fingerprint

uint64_t ViewSetFingerprint(const ViewSet& views) {
  // Commutative combine (wrapping sum of finalized per-view hashes): the
  // same SET of definitions fingerprints identically whether it arrived
  // via one ReplaceViews or any sequence of AddViews/RemoveViews deltas.
  // The count seeds the accumulator so the empty catalog and catalogs
  // whose hashes happen to cancel still differ.
  uint64_t h = Mix64(views.size() ^ kFnvOffset);
  for (const View& v : views) {
    h += Mix64(Fnv1a64(EncodeQueryFile(v)));
  }
  return h;
}

// ---------------------------------------------------------------------------
// Cache snapshot

namespace {

void EncodeCachedPlan(const CachedPlan& plan, uint64_t body_version,
                      vbin::FileWriter* writer) {
  writer->AppendVarint(plan.fingerprint.hash);
  writer->AppendBytes(plan.fingerprint.canonical);
  writer->AppendBool(plan.fingerprint.exact);
  writer->AppendU8(static_cast<uint8_t>(plan.status));
  writer->AppendBytes(plan.error);
  writer->AppendBool(plan.has_rewriting);
  EncodeQuery(plan.minimized, writer);
  EncodeQueries(plan.rewritings, writer);
  EncodeAtoms(plan.filter_atoms, writer);
  EncodeCoreCoverStats(plan.stats, writer);
  if (body_version >= 2) {
    writer->AppendVarint(plan.rewritings.size());
    for (size_t i = 0; i < plan.rewritings.size(); ++i) {
      std::optional<EquivalenceCertificate> cert = plan.certificate(i);
      writer->AppendBool(cert.has_value());
      if (cert.has_value()) {
        EncodeCertificate(*cert, writer);
      }
    }
  }
}

bool DecodeCachedPlan(vbin::Reader* reader, const vbin::FileView& file,
                      uint64_t body_version,
                      std::shared_ptr<const CachedPlan>* out) {
  auto plan = std::make_shared<CachedPlan>();
  std::string_view canonical, error;
  uint8_t status = 0;
  if (!reader->ReadVarint(&plan->fingerprint.hash) ||
      !reader->ReadBytes(&canonical) ||
      !reader->ReadBool(&plan->fingerprint.exact) ||
      !reader->ReadU8(&status) || !reader->ReadBytes(&error) ||
      !reader->ReadBool(&plan->has_rewriting)) {
    return false;
  }
  if (status > static_cast<uint8_t>(CoreCoverStatus::kBudgetExhausted)) {
    reader->Fail("bad CoreCover status");
    return false;
  }
  plan->fingerprint.canonical = std::string(canonical);
  plan->status = static_cast<CoreCoverStatus>(status);
  plan->error = std::string(error);
  if (!DecodeQuery(reader, file, &plan->minimized) ||
      !DecodeQueries(reader, file, &plan->rewritings) ||
      !DecodeAtoms(reader, file, &plan->filter_atoms) ||
      !DecodeCoreCoverStats(reader, &plan->stats)) {
    return false;
  }
  if (body_version >= 2) {
    uint64_t cert_count = 0;
    if (!reader->ReadVarint(&cert_count)) return false;
    if (cert_count != plan->rewritings.size()) {
      reader->Fail("certificate count mismatch");
      return false;
    }
    for (uint64_t i = 0; i < cert_count; ++i) {
      bool present = false;
      if (!reader->ReadBool(&present)) return false;
      if (!present) continue;
      EquivalenceCertificate cert;
      if (!DecodeCertificate(reader, file, &cert)) return false;
      plan->StoreCertificate(i, std::move(cert));
    }
  }
  *out = std::move(plan);
  return true;
}

}  // namespace

std::string EncodeSnapshotBytes(const PlanCacheSnapshot& snapshot,
                                uint64_t body_version) {
  vbin::FileWriter writer(vbin::FileKind::kCacheSnapshot);
  writer.AppendVarint(body_version);
  writer.AppendVarint(snapshot.view_fingerprint);
  writer.AppendVarint(snapshot.view_count);
  if (body_version >= 3) {
    writer.AppendVarint(snapshot.delta_epoch);
  }
  writer.AppendVarint(snapshot.entries.size());
  for (const PlanCacheSnapshot::Entry& entry : snapshot.entries) {
    writer.AppendU8(static_cast<uint8_t>(entry.model) + 1);
    EncodeCachedPlan(*entry.plan, body_version, &writer);
  }
  return std::move(writer).Finish();
}

vbin::Status DecodeSnapshotBytes(std::string_view bytes,
                                 PlanCacheSnapshot* out) {
  *out = PlanCacheSnapshot{};
  vbin::FileView file;
  vbin::Status status =
      vbin::OpenFile(bytes, &file, vbin::FileKind::kCacheSnapshot);
  if (!status.ok()) return status;
  vbin::Reader reader(file.body);
  uint64_t body_version = 0, entry_count = 0;
  if (!reader.ReadVarint(&body_version)) {
    return reader.ToStatus("snapshot body");
  }
  if (body_version == 0 || body_version > kSnapshotBodyVersion) {
    return vbin::Status::Error("unsupported snapshot body version " +
                               std::to_string(body_version));
  }
  if (!reader.ReadVarint(&out->view_fingerprint) ||
      !reader.ReadVarint(&out->view_count)) {
    return reader.ToStatus("snapshot body");
  }
  if (body_version >= 3 && !reader.ReadVarint(&out->delta_epoch)) {
    return reader.ToStatus("snapshot body");
  }
  if (!reader.ReadVarint(&entry_count)) {
    return reader.ToStatus("snapshot body");
  }
  if (entry_count > reader.remaining()) {
    return vbin::Status::Error("snapshot body: entry count exceeds file size");
  }
  out->entries.reserve(entry_count);
  for (uint64_t i = 0; i < entry_count; ++i) {
    PlanCacheSnapshot::Entry entry;
    uint8_t model = 0;
    if (!reader.ReadU8(&model)) return reader.ToStatus("snapshot entry");
    if (model < 1 || model > 3) {
      return vbin::Status::Error("snapshot entry: bad cost model");
    }
    entry.model = static_cast<CostModel>(model - 1);
    if (!DecodeCachedPlan(&reader, file, body_version, &entry.plan)) {
      return reader.ToStatus("snapshot entry");
    }
    out->entries.push_back(std::move(entry));
  }
  if (!reader.AtEnd()) {
    return vbin::Status::Error("snapshot body: trailing bytes");
  }
  return vbin::Status::Ok();
}

// ---------------------------------------------------------------------------
// ViewPlanner persistence (declared in planner/planner.h)

vbin::Status ViewPlanner::SaveSnapshot(const std::string& path) const {
  std::shared_ptr<const ViewSnapshot> vs = snapshot();
  PlanCacheSnapshot snap;
  snap.view_fingerprint = ViewSetFingerprint(vs->views);
  snap.view_count = vs->views.size();
  if (cache_ != nullptr) {
    snap.delta_epoch = cache_->delta_epoch();
    for (auto& [model, entry] : cache_->ExportEntries()) {
      snap.entries.push_back({model, std::move(entry)});
    }
  }
  return vbin::WriteFileAtomic(path, EncodeSnapshotBytes(snap));
}

SnapshotLoadResult ViewPlanner::LoadSnapshot(const std::string& path) {
  SnapshotLoadResult result;
  std::string bytes;
  result.status = vbin::ReadWholeFile(path, &bytes);
  if (!result.status.ok()) return result;
  PlanCacheSnapshot snap;
  result.status = DecodeSnapshotBytes(bytes, &snap);
  if (!result.status.ok()) return result;

  std::shared_ptr<const ViewSnapshot> vs = snapshot();
  if (snap.view_fingerprint != ViewSetFingerprint(vs->views)) {
    // The views changed while the snapshot sat on disk: its entries
    // describe a retired view set. Cold start, not an error.
    return result;
  }
  result.compatible = true;
  if (cache_ == nullptr) return result;
  // Fast-forward the delta counter to where the saver left it, so entries
  // restored below are valid against it and the next AddViews/RemoveViews
  // fence lands strictly after every restored entry. (Fences themselves
  // are not persisted: a range with no recorded fences reads as
  // no-change, which is correct — the fingerprint just proved the
  // definitions match the save-time catalog.)
  cache_->AdvanceDeltaEpochTo(snap.delta_epoch);
  for (PlanCacheSnapshot::Entry& entry : snap.entries) {
    // Entries are coldest-first, so inserting in order restores recency;
    // keyed to the CURRENT epoch because the fingerprint just proved the
    // definitions match.
    cache_->Insert(entry.model, std::move(entry.plan));
    ++result.entries_loaded;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Request log

std::string EncodeRequestLogRecord(const RequestLogRecord& record) {
  vbin::FileWriter writer(vbin::FileKind::kRequestLog);
  EncodePlanRequestOptions(record.options, &writer);
  EncodeQuery(record.query, &writer);
  return std::move(writer).Finish();
}

vbin::Status DecodeRequestLogRecord(std::string_view bytes,
                                    RequestLogRecord* out) {
  vbin::FileView file;
  vbin::Status status =
      vbin::OpenFile(bytes, &file, vbin::FileKind::kRequestLog);
  if (!status.ok()) return status;
  vbin::Reader reader(file.body);
  if (!DecodePlanRequestOptions(&reader, &out->options) ||
      !DecodeQuery(&reader, file, &out->query) || !reader.AtEnd()) {
    if (reader.ok()) reader.Fail("trailing bytes");
    return reader.ToStatus("request record");
  }
  return vbin::Status::Ok();
}

RequestLogWriter::~RequestLogWriter() { Close(); }

vbin::Status RequestLogWriter::Open(const std::string& path,
                                    const RequestLogOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    return vbin::Status::Error("request log already open");
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return vbin::Status::Error("cannot open request log " + path);
  }
  path_ = path;
  options_ = options;
  // "ab" positions at the end; the offset is the live file's size.
  const long at = std::ftell(file_);
  bytes_written_ = at > 0 ? static_cast<uint64_t>(at) : 0;
  return vbin::Status::Ok();
}

void RequestLogWriter::RotateLocked() {
  std::fclose(file_);
  file_ = nullptr;
  if (options_.keep == 0) {
    std::remove(path_.c_str());
  } else {
    // Shift oldest-first so each rename's target is free (or the oldest,
    // which rename(2) atomically replaces).
    for (size_t k = options_.keep; k > 1; --k) {
      const std::string from = path_ + "." + std::to_string(k - 1);
      const std::string to = path_ + "." + std::to_string(k);
      std::rename(from.c_str(), to.c_str());  // ENOENT when the slot is empty
    }
    if (std::rename(path_.c_str(), (path_ + ".1").c_str()) != 0) {
      error_ = "request log rotation rename failed";
      return;
    }
  }
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    error_ = "request log reopen after rotation failed";
    return;
  }
  bytes_written_ = 0;
  ++rotations_;
}

void RequestLogWriter::Append(const ConjunctiveQuery& query,
                              const PlanRequestOptions& options) {
  const std::string record = EncodeRequestLogRecord({query, options});
  std::string frame;
  vbin::AppendU32(frame, static_cast<uint32_t>(record.size()));
  frame += record;

  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr || !error_.empty()) return;
  if (options_.max_bytes > 0 && bytes_written_ > 0 &&
      bytes_written_ + frame.size() > options_.max_bytes) {
    // Rotate only at record boundaries: every file in the set is a valid
    // log image on its own.
    RotateLocked();
    if (file_ == nullptr || !error_.empty()) return;
  }
  if (FaultCheck("persist.request_log.append").has_value()) {
    // Deterministic torn write: half the frame reaches the disk, then the
    // writer latches — exactly what a crash mid-append leaves behind.
    std::fwrite(frame.data(), 1, frame.size() / 2, file_);
    std::fflush(file_);
    error_ = "request log append aborted by injected fault";
    return;
  }
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size() ||
      std::fflush(file_) != 0) {
    // Latch and stop: a sick disk must not break planning, but a half
    // record must not be followed by more (the tail stays parseable).
    error_ = "request log write failed";
    return;
  }
  bytes_written_ += frame.size();
  ++records_written_;
}

void RequestLogWriter::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

uint64_t RequestLogWriter::records_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_written_;
}

uint64_t RequestLogWriter::rotations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rotations_;
}

std::string RequestLogWriter::error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

vbin::Status ParseRequestLog(std::string_view bytes,
                             std::vector<RequestLogRecord>* out,
                             size_t* truncated_bytes) {
  out->clear();
  if (truncated_bytes != nullptr) *truncated_bytes = 0;
  size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 4) break;  // torn length prefix
    uint32_t length = 0;
    for (int i = 0; i < 4; ++i) {
      length |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[pos + i]))
                << (8 * i);
    }
    if (length > bytes.size() - pos - 4) break;  // torn record
    RequestLogRecord record;
    vbin::Status status =
        DecodeRequestLogRecord(bytes.substr(pos + 4, length), &record);
    if (!status.ok()) break;  // corrupt record: stop, keep the prefix
    out->push_back(std::move(record));
    pos += 4 + length;
  }
  if (truncated_bytes != nullptr) *truncated_bytes = bytes.size() - pos;
  return vbin::Status::Ok();
}

vbin::Status ReadRequestLogFile(const std::string& path,
                                std::vector<RequestLogRecord>* out,
                                size_t* truncated_bytes) {
  std::string bytes;
  vbin::Status status = vbin::ReadWholeFile(path, &bytes);
  if (!status.ok()) return status;
  return ParseRequestLog(bytes, out, truncated_bytes);
}

vbin::Status ReadRequestLogSet(const std::string& path,
                               std::vector<RequestLogRecord>* out,
                               size_t* truncated_bytes) {
  out->clear();
  if (truncated_bytes != nullptr) *truncated_bytes = 0;
  // Probe path.1, path.2, ... until the first gap; the highest index is
  // the oldest file, so read in descending order, live file last.
  std::vector<std::string> rotated;
  for (size_t k = 1;; ++k) {
    const std::string sibling = path + "." + std::to_string(k);
    std::FILE* probe = std::fopen(sibling.c_str(), "rb");
    if (probe == nullptr) break;
    std::fclose(probe);
    rotated.push_back(sibling);
  }
  std::reverse(rotated.begin(), rotated.end());
  rotated.push_back(path);
  for (const std::string& file : rotated) {
    std::vector<RequestLogRecord> records;
    size_t truncated = 0;
    const vbin::Status status =
        ReadRequestLogFile(file, &records, &truncated);
    if (!status.ok()) return status;
    out->insert(out->end(), std::make_move_iterator(records.begin()),
                std::make_move_iterator(records.end()));
    if (truncated_bytes != nullptr) *truncated_bytes += truncated;
  }
  return vbin::Status::Ok();
}

}  // namespace vbr
