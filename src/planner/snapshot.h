// The persistence layer over VBIN (common/vbin.h): plan-cache snapshots
// and binary request logs.
//
// SNAPSHOTS.  A kCacheSnapshot file holds every live plan-cache entry —
// fingerprint, status, minimized core, rewritings, filter atoms, stats,
// and (body version >= 2) the lazily-derived equivalence certificates —
// plus a fingerprint of the view-set DEFINITIONS the entries were planned
// against.  ViewPlanner::LoadSnapshot refuses nothing loudly: a matching
// view fingerprint warms the cache so the first request is a hit; a
// mismatched one (the views changed while the server was down) is a clean
// cold start, not an error.  Corruption (CRC), truncation, and
// newer-than-supported versions are status errors that leave the planner
// untouched.
//
// Body versions: 1 = no persisted certificates (they re-derive lazily on
// first use, exactly like a fresh planner), 2 = certificates included,
// 3 = adds the plan-cache delta epoch (AddViews/RemoveViews generation;
// older files load at delta epoch 0). Writers emit version 3; version-1
// and -2 files load fine (the version-skew test pins this).
//
// REQUEST LOGS.  A log is a sequence of [u32 LE length][VBIN kRequestLog
// record] frames, one per submitted request (query + its
// PlanRequestOptions), appended by the PlanningService as traffic
// arrives.  Each record is a complete, self-describing VBIN file, so a
// torn tail truncates cleanly and `vbr_cli --replay` can re-submit the
// stream deterministically with the recorded options.
#ifndef VBR_PLANNER_SNAPSHOT_H_
#define VBR_PLANNER_SNAPSHOT_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/vbin.h"
#include "cost/cost_model.h"
#include "cq/query.h"
#include "planner/plan_cache.h"
#include "planner/request_options.h"

namespace vbr {

// Current snapshot body version (see file comment).
inline constexpr uint64_t kSnapshotBodyVersion = 3;

// -- PlanRequestOptions codec -----------------------------------------------

void EncodePlanRequestOptions(const PlanRequestOptions& options,
                              vbin::FileWriter* writer);
bool DecodePlanRequestOptions(vbin::Reader* reader, PlanRequestOptions* out);

// -- View-set fingerprint ----------------------------------------------------

// Commutative hash over the VBIN encodings of the view DEFINITIONS (plus
// the count): name-based (stable across processes), definition-sensitive,
// instance-independent, and ORDER-independent — a catalog reached by
// AddViews/RemoveViews deltas fingerprints identically to the same set
// handed wholesale to ReplaceViews, in any order, so warm starts survive
// delta-built catalogs. CoreCover's logical outcome is also catalog-order-
// independent up to cost ties (grouping elects the first representative in
// catalog order), which is why order may safely drop out of the gate.
uint64_t ViewSetFingerprint(const ViewSet& views);

// -- Cache snapshot ----------------------------------------------------------

// The decoded content of a kCacheSnapshot file.
struct PlanCacheSnapshot {
  uint64_t view_fingerprint = 0;
  // Number of view definitions (informational; compatibility is decided by
  // the fingerprint).
  uint64_t view_count = 0;
  // Plan-cache delta epoch at save time (body version >= 3; 0 before).
  // Load fast-forwards the cache's delta counter here so restored entries
  // and future deltas share one timeline.
  uint64_t delta_epoch = 0;
  struct Entry {
    CostModel model = CostModel::kM1;
    std::shared_ptr<const CachedPlan> plan;
  };
  // Coldest-first, so inserting in order reproduces the LRU recency.
  std::vector<Entry> entries;
};

// `body_version` exists so tests (and a rollback story) can emit the older
// certificate-free layout; everything else should pass the default.
std::string EncodeSnapshotBytes(const PlanCacheSnapshot& snapshot,
                                uint64_t body_version = kSnapshotBodyVersion);
vbin::Status DecodeSnapshotBytes(std::string_view bytes,
                                 PlanCacheSnapshot* out);

// Outcome of ViewPlanner::LoadSnapshot.
struct SnapshotLoadResult {
  // Decode / IO failures. A view-set mismatch is NOT an error: the planner
  // simply starts cold (compatible == false).
  vbin::Status status;
  bool compatible = false;
  size_t entries_loaded = 0;

  bool ok() const { return status.ok(); }
};

// -- Request log -------------------------------------------------------------

struct RequestLogRecord {
  ConjunctiveQuery query;
  PlanRequestOptions options;

  friend bool operator==(const RequestLogRecord&,
                         const RequestLogRecord&) = default;
};

// One record as a complete VBIN kRequestLog file (no length prefix).
std::string EncodeRequestLogRecord(const RequestLogRecord& record);
vbin::Status DecodeRequestLogRecord(std::string_view bytes,
                                    RequestLogRecord* out);

// Size-based rotation policy for RequestLogWriter.  When an append would
// push the live file past max_bytes, the set shifts by rename —
// path.(keep-1) -> path.keep, ..., path.1 -> path.2, path -> path.1 — and
// a fresh live file opens at `path`.  rename(2) is atomic, rotation
// happens only at record boundaries, and the shift runs oldest-first, so
// a crash at any point leaves every file a valid (possibly torn-tailed)
// log and at worst duplicates one file under two names — never loses a
// fully-written record.  keep bounds the rotated siblings: the oldest is
// overwritten by the shift (keep == 0 discards the full file instead of
// renaming it).
struct RequestLogOptions {
  size_t max_bytes = 0;  // 0 = never rotate
  size_t keep = 3;
};

// Thread-safe appender of length-prefixed records.  Append never fails the
// request path: write errors latch into error() and further appends are
// dropped (a full disk must not take planning down with it).
class RequestLogWriter {
 public:
  RequestLogWriter() = default;
  ~RequestLogWriter();

  RequestLogWriter(const RequestLogWriter&) = delete;
  RequestLogWriter& operator=(const RequestLogWriter&) = delete;

  // Opens `path` for appending (existing records are preserved).
  vbin::Status Open(const std::string& path,
                    const RequestLogOptions& options = {});
  void Append(const ConjunctiveQuery& query,
              const PlanRequestOptions& options);
  void Close();

  uint64_t records_written() const;
  uint64_t rotations() const;
  // Empty while healthy; the first write error afterwards.
  std::string error() const;

 private:
  // mu_ held.  Closes the live file, shifts the rotated set, reopens.
  void RotateLocked();

  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string path_;
  RequestLogOptions options_;
  uint64_t bytes_written_ = 0;  // live file size (from ftell at Open)
  uint64_t records_written_ = 0;
  uint64_t rotations_ = 0;
  std::string error_;
};

// Parses a whole log image. A truncated or corrupt TAIL is tolerated: the
// records before it are returned and `*truncated` (if non-null) reports
// how many bytes were dropped. A corrupt record in the MIDDLE cannot be
// distinguished from a tail, so parsing stops there too.
vbin::Status ParseRequestLog(std::string_view bytes,
                             std::vector<RequestLogRecord>* out,
                             size_t* truncated_bytes = nullptr);
vbin::Status ReadRequestLogFile(const std::string& path,
                                std::vector<RequestLogRecord>* out,
                                size_t* truncated_bytes = nullptr);

// Reads a rotated log SET in capture order: path.K (largest existing K,
// i.e. oldest) down through path.1, then the live file at `path`.  Missing
// rotated siblings are skipped; `*truncated_bytes` sums over the files
// read.  The live file must exist (its read status is returned); with no
// rotated siblings this degenerates to ReadRequestLogFile(path).
vbin::Status ReadRequestLogSet(const std::string& path,
                               std::vector<RequestLogRecord>* out,
                               size_t* truncated_bytes = nullptr);

}  // namespace vbr

#endif  // VBR_PLANNER_SNAPSHOT_H_
