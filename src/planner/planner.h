#ifndef VBR_PLANNER_PLANNER_H_
#define VBR_PLANNER_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/trace.h"
#include "common/vbin.h"
#include "cost/cost_model.h"
#include "cost/physical_plan.h"
#include "cq/fingerprint.h"
#include "cq/query.h"
#include "engine/database.h"
#include "planner/request_options.h"
#include "rewrite/certificate.h"
#include "rewrite/core_cover.h"

namespace vbr {

struct CachedPlan;
class PlanCache;
struct PlanCacheCounters;
struct SnapshotLoadResult;  // planner/snapshot.h

// Outcome classification of a planning request. Distinguishes "there
// provably is no equivalent rewriting over these views" from "the query is
// outside the supported fragment", which the old optional<PlanChoice>
// return collapsed into one nullopt.
enum class PlanStatus {
  // A plan was chosen; PlanResult::choice is populated.
  kOk = 0,
  // The query is answerable in principle but admits no equivalent
  // rewriting over the current view set.
  kNoRewriting,
  // The (minimized) query exceeds the supported fragment (e.g. more than
  // 64 subgoals); PlanResult::error carries the detail.
  kUnsupportedQueryTooLarge,
  // The request's resource budget (Options::budget) ran out before any
  // certified plan could be produced — including the degradation ladder
  // (grace certification of a best-so-far rewriting, then the budgeted
  // MiniCon fallback). PlanResult::exhaustion says which budget died and at
  // which check site; `error` carries a human-readable account. Note that a
  // budget can also run out and still yield a plan: the result is then kOk
  // with `degraded` set.
  kBudgetExhausted,
};

const char* PlanStatusName(PlanStatus status);

// One-call facade over the whole pipeline: given the view definitions and
// their materialized instances, Plan() runs CoreCover / CoreCover*, lets
// the filter advisor add selective empty-core tuples (M2/M3), optimizes the
// join order (and, under M3, the attribute drops) against the instances,
// and returns the chosen physical plan together with a checkable
// equivalence certificate. Execute() runs it.
//
//   ViewPlanner planner(views, MaterializeViews(views, base));
//   auto result = planner.Plan(query, CostModel::kM2);
//   if (result.ok()) Relation answer = planner.Execute(*result.choice);
//
// Caching: CoreCover's logical output depends only on the query and the
// view definitions, so the planner keeps a fingerprint-keyed plan cache
// (see planner/plan_cache.h). Queries identical up to variable renaming and
// subgoal reordering share one entry; on a hit the cached rewritings are
// re-costed against the CURRENT view instances, so M2/M3 plans keep
// tracking instance sizes. ReplaceViews() swaps the view set and
// invalidates the cache by bumping its epoch.
//
// Thread safety: every member function may be called concurrently with
// every other, INCLUDING ReplaceViews. The view definitions, their
// instances, and the cache epoch they pair with live in one immutable
// reference-counted ViewSnapshot; each request pins the snapshot current at
// its entry and uses it throughout, RCU-style, so a concurrent swap can
// never show a request a torn (new views, old instances) state or let it
// poison the cache across an epoch. The only exception is the pair of
// borrowing accessors views() / view_instances(): the references they
// return are stable only until the next ReplaceViews — callers that race a
// swap should hold a snapshot() instead.
class ViewPlanner {
 public:
  // One immutable (views, instances, cache epoch) generation. Requests pin
  // a snapshot for their whole lifetime; ReplaceViews publishes a new one,
  // AddViews/RemoveViews publish a patched one (same epoch, next delta
  // epoch).
  struct ViewSnapshot {
    ViewSet views;
    Database instances;
    uint64_t epoch = 0;
    // Plan-cache delta epoch this catalog generation pairs with (see
    // plan_cache.h): cache traffic for requests pinned here is reconciled
    // per-query against catalogs one or more AddViews/RemoveViews away.
    uint64_t delta_epoch = 0;
    // Candidate index over `views` (null when use_view_index is off);
    // shared by every request pinned to this snapshot.
    std::shared_ptr<const ViewIndex> index;
  };

  struct PlanChoice {
    // The logical plan (rewriting over view predicates, filters included).
    ConjunctiveQuery logical;
    // The physical plan executed against the view instances.
    PhysicalPlan physical;
    // Cost of `physical` under the requested model (M1: subgoal count).
    size_t cost = 0;
    CostModel model = CostModel::kM1;
    // Witness that `logical` (hence `physical`) answers the query exactly.
    // Stated over the MINIMIZED core of the query (which minimization
    // guarantees equivalent to the query itself), so cached rewritings
    // certify identically for every renamed variant of a query.
    EquivalenceCertificate certificate;

    std::string ToString() const;
  };

  // Status-bearing planning result. `choice` is populated exactly when
  // status == PlanStatus::kOk.
  struct PlanResult {
    PlanStatus status = PlanStatus::kNoRewriting;
    std::optional<PlanChoice> choice;
    // Stats of the CoreCover run that produced the rewritings. On a cache
    // hit these are the ORIGINAL run's stats (its timings describe the
    // planning work this request skipped).
    CoreCoverStats stats;
    // True if the logical plans came from the cache (or from PlanMany's
    // in-flight deduplication) instead of a fresh CoreCover run.
    bool cache_hit = false;
    // Human-readable detail when status == kUnsupportedQueryTooLarge or
    // kBudgetExhausted.
    std::string error;
    // Which budget died and where (BudgetKind::kNone when none did).
    // Populated both for kBudgetExhausted and for degraded kOk results.
    BudgetExhaustion exhaustion;
    // True when the budget ran out but the degradation ladder still produced
    // a certified plan (best-so-far grace certification or the MiniCon
    // fallback) — or when costing was starved, so `choice` is certified-
    // correct but may not be the cheapest candidate.
    bool degraded = false;

    bool ok() const { return status == PlanStatus::kOk; }

    // One JSON object in the same dialect as PlanExplanation::ToJson —
    // identical keys for status / error / budget / plan / stats — so the
    // CLI, the HTTP endpoint, and tests all read one schema:
    //   {"status":"ok","error":"","cache_hit":true,
    //    "budget":{"exhausted":false,"kind":"none","site":"","degraded":false},
    //    "plan":{"logical":...,"physical":...,"cost":7,"model":"M2"},
    //    "stats":{...}}
    std::string ToJson() const;
  };

  struct Options {
    Options() { core_cover.max_rewritings = 64; }

    // Knobs forwarded to CoreCover / CoreCoverStar: worker threads,
    // view/tuple grouping, verification, and the rewriting cap
    // (max_rewritings defaults to 64 here — the facade bounds the costing
    // loop tighter than the raw pipeline's 1024).
    CoreCoverOptions core_cover;
    // Let the advisor append selective filtering subgoals (M2/M3 only).
    bool use_filters = true;
    // M3 plans wider than this fall back to M2 ordering with SR drops
    // (the cost-based M3 search is exponential).
    size_t max_m3_subgoals = 6;
    // Serve repeated (isomorphic) queries from the plan cache.
    bool enable_cache = true;
    // Total plan-cache entries across all shards.
    size_t cache_capacity = 1024;
    // DEPRECATED planner-wide request budget (kept one release): prefer the
    // per-request PlanRequestOptions overload of Plan(), which carries the
    // model and the budget in one transport-neutral struct. When any limit
    // is set here, every planned query runs under its own fresh
    // ResourceGovernor (taking precedence over a caller-installed one);
    // exhaustion degrades the result (kBudgetExhausted, or kOk with
    // `degraded` set) and NEVER aborts the process. Budget-exhausted
    // logical outcomes are never inserted into the plan cache.
    ResourceLimits budget;
    // Work-unit budget for the degradation ladder: grace certification of a
    // best-so-far rewriting and the MiniCon fallback each run under a fresh
    // governor with this work limit, shielded from the exhausted request
    // governor (otherwise a dead budget would starve its own recovery).
    // When the request budget has a deadline, the grace governor also gets a
    // quarter of it (at least 5 ms), so the ladder cannot turn a tight
    // deadline into a long fallback search. 0 = unlimited grace work.
    uint64_t fallback_work_budget = 250'000;
    // When CoreCover's budget dies before any rewriting is found, retry with
    // a work-budgeted MiniCon run (baseline/minicon.h) before giving up.
    bool enable_minicon_fallback = true;
  };

  // `view_instances` must hold one relation per view head predicate (as
  // produced by MaterializeViews); missing relations are treated as empty.
  ViewPlanner(ViewSet views, Database view_instances);
  ViewPlanner(ViewSet views, Database view_instances, Options options);
  ~ViewPlanner();

  ViewPlanner(const ViewPlanner&) = delete;
  ViewPlanner& operator=(const ViewPlanner&) = delete;

  // A self-describing account of one planning decision, for humans (ToText)
  // and tools (ToJson): the chosen rewriting, every candidate considered
  // with its cost and why it lost, a per-cost-model breakdown of the winner
  // with the measured intermediate-result sizes, and the cache disposition.
  // Available for failed plans too (status / error are always reported).
  struct PlanExplanation {
    // One costed candidate rewriting (after any advisor filters).
    struct Candidate {
      ConjunctiveQuery logical;
      size_t cost = 0;
      // The filter advisor appended selective subgoals to this candidate.
      bool filtered = false;
      bool chosen = false;
      // "chosen", or why it lost ("cost 18 > winner 7").
      std::string reason;
    };
    // The chosen logical plan measured under one cost model: its join
    // order, per-step view-relation sizes, and per-step intermediate sizes
    // (IR_i under M2, GSR_i under M3; empty for M1, which counts subgoals).
    struct ModelBreakdown {
      CostModel model = CostModel::kM1;
      size_t cost = 0;
      std::vector<size_t> order;
      std::vector<size_t> relation_sizes;
      std::vector<size_t> state_sizes;
    };

    PlanStatus status = PlanStatus::kNoRewriting;
    std::string error;
    CostModel model = CostModel::kM1;
    // "hit", "miss", "bypass" (builtins skip the cache), or "disabled".
    std::string cache_disposition;
    ConjunctiveQuery query;
    // The minimized core the rewriting search ran on.
    ConjunctiveQuery minimized;
    std::optional<PlanChoice> choice;
    std::vector<Candidate> candidates;
    // Breakdown under M1, M2, and M3 (in that order) when a plan exists.
    std::vector<ModelBreakdown> breakdown;
    CoreCoverStats stats;
    bool cache_hit = false;
    // Budget outcome, mirrored from PlanResult: which budget died and where
    // (kNone when none did), and whether the plan came from the degradation
    // ladder. ToText/ToJson surface these alongside the rewriting-cap flag
    // (stats.hit_rewriting_cap) so silent truncation is visible.
    BudgetExhaustion exhaustion;
    bool degraded = false;

    bool ok() const { return status == PlanStatus::kOk; }
    std::string ToText() const;
    std::string ToJson() const;
  };

  // Chooses a plan for `query` under `model`. With a non-null `trace`, the
  // call emits a span tree into the sink: a root "plan" span (attributes:
  // model, cache disposition, status) with children for canonicalization,
  // the cache lookup, every CoreCover stage, the cost optimizers, and
  // certification. A null sink costs one branch per span site.
  PlanResult Plan(const ConjunctiveQuery& query, CostModel model) const;
  PlanResult Plan(const ConjunctiveQuery& query, CostModel model,
                  TraceSink* trace) const;
  // As above, but the "plan" span nests under `trace`'s parent span — used
  // by callers that wrap planning in their own span tree (the
  // PlanningService's per-request spans).
  PlanResult Plan(const ConjunctiveQuery& query, CostModel model,
                  const TraceContext& trace) const;

  // The transport-neutral entry point: plans `query` under
  // `request.model`, governed by the request's deadline/work/memory limits
  // (a fresh ResourceGovernor is installed around the call when any limit
  // is set). This is the same contract the PlanningService applies to its
  // queue, so an in-process call and a wire request with equal options
  // plan identically. Note Options::budget, when set, still takes
  // precedence inside the rewriting search (see its deprecation note) —
  // planners behind a service or server should leave it unlimited.
  PlanResult Plan(const ConjunctiveQuery& query,
                  const PlanRequestOptions& request,
                  TraceSink* trace = nullptr) const;

  // Cache-only planning: serves `query` from the plan cache (re-costed and
  // re-certified against current instances, exactly like a Plan() hit) and
  // returns nullopt on a miss WITHOUT running the rewriting search. The
  // PlanningService's brown-out ladder uses this to keep serving warm
  // traffic when the breaker has shed fresh planning work. Queries the
  // cache cannot hold (builtins, cache disabled) always miss.
  std::optional<PlanResult> TryPlanFromCache(const ConjunctiveQuery& query,
                                             CostModel model) const;

  // Plans `query` and explains the outcome. Runs the normal planning path
  // (cache included) plus extra measurement work: every candidate is
  // recorded while costing, and the winner is re-measured under all three
  // cost models, so Explain is strictly more expensive than Plan — use it
  // for debugging and inspection, not on the hot path.
  PlanExplanation Explain(const ConjunctiveQuery& query, CostModel model,
                          TraceSink* trace = nullptr) const;

  // Plans a batch: results[i] corresponds to queries[i]. The batch fans
  // out on a thread pool (core_cover.num_threads workers; each individual
  // query then plans single-threaded), and queries with identical
  // fingerprints are deduplicated in flight: one representative per
  // fingerprint runs CoreCover, and its result is transported to the
  // duplicates (reported as cache hits). Results are identical to calling
  // Plan() serially on each query in order, at every thread count.
  std::vector<PlanResult> PlanMany(const std::vector<ConjunctiveQuery>& queries,
                                   CostModel model) const;

  // Replaces the view definitions and instances and invalidates the plan
  // cache (epoch bump), preserving cache counters and options. Prefer this
  // over constructing a new planner when the view set evolves. Safe to call
  // while Plan/Execute/Answer calls are in flight: in-flight requests
  // finish against the snapshot they pinned at entry, and their cache
  // traffic stays keyed to that snapshot's epoch.
  void ReplaceViews(ViewSet views, Database view_instances);

  // Delta mutations: publish a patched snapshot (and candidate index)
  // WITHOUT bumping the cache epoch. Instead, the plan cache records a
  // fence carrying the changed views' summaries, and only cached plans
  // whose candidate sets could include a changed view are invalidated —
  // every other entry keeps serving hits across the delta (plan_cache.h
  // "Delta epoch"). Same concurrency contract as ReplaceViews.
  //
  // AddViews appends `added` to the catalog (their ids continue the
  // current numbering); `added_instances` holds their materialized
  // relations, merged into the snapshot's instance copy.
  void AddViews(ViewSet added, Database added_instances);
  // RemoveViews drops every view whose HEAD PREDICATE name is listed
  // (with its instance relation) and returns how many views were dropped;
  // unknown names are ignored.
  size_t RemoveViews(const std::vector<std::string>& names);

  // Executes a chosen plan against the view instances.
  Relation Execute(const PlanChoice& choice) const;

  // Convenience: Plan under M2 and Execute, or nullopt if no plan exists.
  // Plans and executes against ONE snapshot, so the answer is consistent
  // even when ReplaceViews lands between the two steps.
  std::optional<Relation> Answer(const ConjunctiveQuery& query) const;

  // The current (views, instances, epoch) generation. The returned snapshot
  // is immutable and stays valid for as long as the caller holds it, even
  // across ReplaceViews.
  std::shared_ptr<const ViewSnapshot> snapshot() const;

  // Borrowing accessors into the CURRENT snapshot. The references are
  // stable only until the next ReplaceViews; callers that may race a swap
  // should pin snapshot() instead.
  const ViewSet& views() const { return CurrentSnapshot()->views; }
  const Database& view_instances() const {
    return CurrentSnapshot()->instances;
  }

  // Persistence (planner/snapshot.h). SaveSnapshot writes every live
  // plan-cache entry — fingerprints, rewritings, certificates — plus a
  // fingerprint of the current view definitions as one VBIN file
  // (atomically: temp file + rename). LoadSnapshot warms the cache from
  // such a file: if the stored view fingerprint matches the current views,
  // the entries are inserted under the current epoch and the very next
  // Plan() of a snapshotted query is a cache hit with a byte-identical
  // plan; if it does not match, the planner stays cold (compatible ==
  // false, NOT an error). Corrupt/truncated/newer-versioned files are
  // rejected with a clean status and leave the cache untouched. Both are
  // safe to call while planning traffic is in flight.
  vbin::Status SaveSnapshot(const std::string& path) const;
  SnapshotLoadResult LoadSnapshot(const std::string& path);

  // Plan-cache observability (all zero when the cache is disabled).
  PlanCacheCounters cache_counters() const;
  size_t cache_size() const;
  uint64_t cache_epoch() const;
  // Current delta epoch (0 until the first AddViews/RemoveViews).
  uint64_t delta_epoch() const;

 private:
  // The snapshot every helper below plans against: pinned ONCE at the
  // public entry point and threaded through, so one request never mixes
  // view-set generations.
  std::shared_ptr<const ViewSnapshot> CurrentSnapshot() const;

  // Shared Plan/Explain entry: plans with optional tracing and, when
  // `explain` is non-null, records candidates / cache disposition /
  // minimized core into it.
  PlanResult PlanInternal(const ViewSnapshot& vs,
                          const ConjunctiveQuery& query, CostModel model,
                          const TraceContext& trace,
                          PlanExplanation* explain) const;
  // Runs CoreCover + costing for `query`. When `canonical` is non-null the
  // logical outcome is also inserted into the cache, and *out_entry (if
  // non-null) receives the inserted entry for in-flight deduplication.
  PlanResult PlanViaCoreCover(const ViewSnapshot& vs,
                              const ConjunctiveQuery& query, CostModel model,
                              const CoreCoverOptions& cc_options,
                              const CanonicalQuery* canonical,
                              std::shared_ptr<const CachedPlan>* out_entry,
                              PlanExplanation* explain = nullptr) const;
  // Re-costs a cached entry for `query`. `transport` renames the entry's
  // canonical variables into the caller's.
  PlanResult PlanFromEntry(const ViewSnapshot& vs,
                           const ConjunctiveQuery& query, CostModel model,
                           const CachedPlan& entry,
                           const Substitution& transport,
                           const TraceContext& trace = {},
                           PlanExplanation* explain = nullptr) const;
  // Shared costing loop: picks the cheapest candidate under `model`
  // against the snapshot's instances. Returns false if `rewritings` is
  // empty. With an active `trace`, emits a "cost_and_pick" span (with
  // optimizer child spans); with a non-null `capture`, appends one
  // Candidate per rewriting.
  bool CostAndPick(const ViewSnapshot& vs, const ConjunctiveQuery& query,
                   CostModel model,
                   const std::vector<ConjunctiveQuery>& rewritings,
                   const std::vector<Atom>& filter_atoms, PlanChoice* best,
                   size_t* winner_index, bool* winner_filtered,
                   const TraceContext& trace = {},
                   std::vector<PlanExplanation::Candidate>* capture =
                       nullptr) const;
  // Re-certifies `rewriting` against `minimized` under a fresh governor with
  // fallback_work_budget work units, shielded from the caller's (exhausted)
  // governor. Used when the request budget died mid-certification.
  std::optional<EquivalenceCertificate> GraceCertify(
      const ViewSnapshot& vs, const ConjunctiveQuery& rewriting,
      const ConjunctiveQuery& minimized) const;
  // Last rung of the degradation ladder: the request budget died before
  // CoreCover found any rewriting. Retries with a work-budgeted MiniCon run
  // (when enable_minicon_fallback) and certifies its winner; otherwise (or
  // when MiniCon's grace budget dies too) returns kBudgetExhausted.
  PlanResult MiniConFallback(const ViewSnapshot& vs,
                             const ConjunctiveQuery& query, CostModel model,
                             const CoreCoverResult& cc_result,
                             const TraceContext& trace,
                             PlanExplanation* explain) const;

  Options options_;
  std::unique_ptr<PlanCache> cache_;
  // Current snapshot, swapped wholesale by ReplaceViews. Guarded by
  // snapshot_mu_ (a pointer copy, not a data copy — reads are O(1)).
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const ViewSnapshot> snapshot_;
  // Serializes ReplaceViews calls so (epoch bump, snapshot publish) pairs
  // cannot interleave.
  std::mutex replace_mu_;
};

}  // namespace vbr

#endif  // VBR_PLANNER_PLANNER_H_
