#ifndef VBR_PLANNER_PLANNER_H_
#define VBR_PLANNER_PLANNER_H_

#include <optional>
#include <string>

#include "cost/cost_model.h"
#include "cost/physical_plan.h"
#include "cq/query.h"
#include "engine/database.h"
#include "rewrite/certificate.h"

namespace vbr {

// One-call facade over the whole pipeline: given the view definitions and
// their materialized instances, Plan() runs CoreCover / CoreCover*, lets
// the filter advisor add selective empty-core tuples (M2/M3), optimizes the
// join order (and, under M3, the attribute drops) against the instances,
// and returns the chosen physical plan together with a checkable
// equivalence certificate. Execute() runs it.
//
//   ViewPlanner planner(views, MaterializeViews(views, base));
//   auto choice = planner.Plan(query, CostModel::kM2);
//   Relation answer = planner.Execute(*choice);
class ViewPlanner {
 public:
  struct PlanChoice {
    // The logical plan (rewriting over view predicates, filters included).
    ConjunctiveQuery logical;
    // The physical plan executed against the view instances.
    PhysicalPlan physical;
    // Cost of `physical` under the requested model (M1: subgoal count).
    size_t cost = 0;
    CostModel model = CostModel::kM1;
    // Witness that `logical` (hence `physical`) answers the query exactly.
    EquivalenceCertificate certificate;

    std::string ToString() const;
  };

  struct Options {
    // Upper bound on logical plans considered per query.
    size_t max_rewritings = 64;
    // Let the advisor append selective filtering subgoals (M2/M3 only).
    bool use_filters = true;
    // M3 plans wider than this fall back to M2 ordering with SR drops
    // (the cost-based M3 search is exponential).
    size_t max_m3_subgoals = 6;
  };

  // `view_instances` must hold one relation per view head predicate (as
  // produced by MaterializeViews); missing relations are treated as empty.
  ViewPlanner(ViewSet views, Database view_instances);
  ViewPlanner(ViewSet views, Database view_instances, Options options);

  // Chooses a plan for `query` under `model`, or nullopt if no equivalent
  // rewriting exists.
  std::optional<PlanChoice> Plan(const ConjunctiveQuery& query,
                                 CostModel model) const;

  // Executes a chosen plan against the view instances.
  Relation Execute(const PlanChoice& choice) const;

  // Convenience: Plan under M2 and Execute, or nullopt.
  std::optional<Relation> Answer(const ConjunctiveQuery& query) const;

  const ViewSet& views() const { return views_; }
  const Database& view_instances() const { return view_instances_; }

 private:
  ViewSet views_;
  Database view_instances_;
  Options options_;
};

}  // namespace vbr

#endif  // VBR_PLANNER_PLANNER_H_
