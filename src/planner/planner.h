#ifndef VBR_PLANNER_PLANNER_H_
#define VBR_PLANNER_PLANNER_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "cost/physical_plan.h"
#include "cq/fingerprint.h"
#include "cq/query.h"
#include "engine/database.h"
#include "rewrite/certificate.h"
#include "rewrite/core_cover.h"

namespace vbr {

struct CachedPlan;
class PlanCache;
struct PlanCacheCounters;

// Outcome classification of a planning request. Distinguishes "there
// provably is no equivalent rewriting over these views" from "the query is
// outside the supported fragment", which the old optional<PlanChoice>
// return collapsed into one nullopt.
enum class PlanStatus {
  // A plan was chosen; PlanResult::choice is populated.
  kOk = 0,
  // The query is answerable in principle but admits no equivalent
  // rewriting over the current view set.
  kNoRewriting,
  // The (minimized) query exceeds the supported fragment (e.g. more than
  // 64 subgoals); PlanResult::error carries the detail.
  kUnsupportedQueryTooLarge,
};

const char* PlanStatusName(PlanStatus status);

// One-call facade over the whole pipeline: given the view definitions and
// their materialized instances, Plan() runs CoreCover / CoreCover*, lets
// the filter advisor add selective empty-core tuples (M2/M3), optimizes the
// join order (and, under M3, the attribute drops) against the instances,
// and returns the chosen physical plan together with a checkable
// equivalence certificate. Execute() runs it.
//
//   ViewPlanner planner(views, MaterializeViews(views, base));
//   auto result = planner.Plan(query, CostModel::kM2);
//   if (result.ok()) Relation answer = planner.Execute(*result.choice);
//
// Caching: CoreCover's logical output depends only on the query and the
// view definitions, so the planner keeps a fingerprint-keyed plan cache
// (see planner/plan_cache.h). Queries identical up to variable renaming and
// subgoal reordering share one entry; on a hit the cached rewritings are
// re-costed against the CURRENT view instances, so M2/M3 plans keep
// tracking instance sizes. ReplaceViews() swaps the view set and
// invalidates the cache by bumping its epoch.
//
// Thread safety: Plan / PlanMany / Execute / Answer may be called
// concurrently with each other. ReplaceViews must not race with any other
// call (it swaps the view set the planners read).
class ViewPlanner {
 public:
  struct PlanChoice {
    // The logical plan (rewriting over view predicates, filters included).
    ConjunctiveQuery logical;
    // The physical plan executed against the view instances.
    PhysicalPlan physical;
    // Cost of `physical` under the requested model (M1: subgoal count).
    size_t cost = 0;
    CostModel model = CostModel::kM1;
    // Witness that `logical` (hence `physical`) answers the query exactly.
    // Stated over the MINIMIZED core of the query (which minimization
    // guarantees equivalent to the query itself), so cached rewritings
    // certify identically for every renamed variant of a query.
    EquivalenceCertificate certificate;

    std::string ToString() const;
  };

  // Status-bearing planning result. `choice` is populated exactly when
  // status == PlanStatus::kOk.
  struct PlanResult {
    PlanStatus status = PlanStatus::kNoRewriting;
    std::optional<PlanChoice> choice;
    // Stats of the CoreCover run that produced the rewritings. On a cache
    // hit these are the ORIGINAL run's stats (its timings describe the
    // planning work this request skipped).
    CoreCoverStats stats;
    // True if the logical plans came from the cache (or from PlanMany's
    // in-flight deduplication) instead of a fresh CoreCover run.
    bool cache_hit = false;
    // Human-readable detail when status == kUnsupportedQueryTooLarge.
    std::string error;

    bool ok() const { return status == PlanStatus::kOk; }
  };

  struct Options {
    Options() { core_cover.max_rewritings = 64; }

    // Knobs forwarded to CoreCover / CoreCoverStar: worker threads,
    // view/tuple grouping, verification, and the rewriting cap
    // (max_rewritings defaults to 64 here — the facade bounds the costing
    // loop tighter than the raw pipeline's 1024).
    CoreCoverOptions core_cover;
    // Let the advisor append selective filtering subgoals (M2/M3 only).
    bool use_filters = true;
    // M3 plans wider than this fall back to M2 ordering with SR drops
    // (the cost-based M3 search is exponential).
    size_t max_m3_subgoals = 6;
    // Serve repeated (isomorphic) queries from the plan cache.
    bool enable_cache = true;
    // Total plan-cache entries across all shards.
    size_t cache_capacity = 1024;
  };

  // `view_instances` must hold one relation per view head predicate (as
  // produced by MaterializeViews); missing relations are treated as empty.
  ViewPlanner(ViewSet views, Database view_instances);
  ViewPlanner(ViewSet views, Database view_instances, Options options);
  ~ViewPlanner();

  ViewPlanner(const ViewPlanner&) = delete;
  ViewPlanner& operator=(const ViewPlanner&) = delete;

  // Chooses a plan for `query` under `model`.
  PlanResult Plan(const ConjunctiveQuery& query, CostModel model) const;

  // Plans a batch: results[i] corresponds to queries[i]. The batch fans
  // out on a thread pool (core_cover.num_threads workers; each individual
  // query then plans single-threaded), and queries with identical
  // fingerprints are deduplicated in flight: one representative per
  // fingerprint runs CoreCover, and its result is transported to the
  // duplicates (reported as cache hits). Results are identical to calling
  // Plan() serially on each query in order, at every thread count.
  std::vector<PlanResult> PlanMany(const std::vector<ConjunctiveQuery>& queries,
                                   CostModel model) const;

  // Deprecated pre-PlanResult shim: collapses kNoRewriting and
  // kUnsupportedQueryTooLarge into nullopt, exactly like the old
  // optional-returning Plan(). Will be removed one release after the
  // PlanResult API landed.
  [[deprecated("use Plan(); PlanOrNull cannot distinguish 'no rewriting' "
               "from 'unsupported query'")]]
  std::optional<PlanChoice> PlanOrNull(const ConjunctiveQuery& query,
                                       CostModel model) const;

  // Replaces the view definitions and instances in place and invalidates
  // the plan cache (epoch bump), preserving cache counters and options.
  // Prefer this over constructing a new planner when the view set evolves.
  // Must not race with concurrent Plan/Execute calls.
  void ReplaceViews(ViewSet views, Database view_instances);

  // Executes a chosen plan against the view instances.
  Relation Execute(const PlanChoice& choice) const;

  // Convenience: Plan under M2 and Execute, or nullopt if no plan exists.
  std::optional<Relation> Answer(const ConjunctiveQuery& query) const;

  const ViewSet& views() const { return views_; }
  const Database& view_instances() const { return view_instances_; }

  // Plan-cache observability (all zero when the cache is disabled).
  PlanCacheCounters cache_counters() const;
  size_t cache_size() const;
  uint64_t cache_epoch() const;

 private:
  // Runs CoreCover + costing for `query`. When `canonical` is non-null the
  // logical outcome is also inserted into the cache, and *out_entry (if
  // non-null) receives the inserted entry for in-flight deduplication.
  PlanResult PlanViaCoreCover(const ConjunctiveQuery& query, CostModel model,
                              const CoreCoverOptions& cc_options,
                              const CanonicalQuery* canonical,
                              std::shared_ptr<const CachedPlan>* out_entry)
      const;
  // Re-costs a cached entry for `query`. `transport` renames the entry's
  // canonical variables into the caller's.
  PlanResult PlanFromEntry(const ConjunctiveQuery& query, CostModel model,
                           const CachedPlan& entry,
                           const Substitution& transport) const;
  // Shared costing loop: picks the cheapest candidate under `model`
  // against the current instances. Returns false if `rewritings` is empty.
  bool CostAndPick(const ConjunctiveQuery& query, CostModel model,
                   const std::vector<ConjunctiveQuery>& rewritings,
                   const std::vector<Atom>& filter_atoms, PlanChoice* best,
                   size_t* winner_index, bool* winner_filtered) const;

  ViewSet views_;
  Database view_instances_;
  Options options_;
  std::unique_ptr<PlanCache> cache_;
};

}  // namespace vbr

#endif  // VBR_PLANNER_PLANNER_H_
