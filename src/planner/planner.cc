#include "planner/planner.h"

#include <limits>
#include <utility>

#include "common/check.h"
#include "cost/filter_advisor.h"
#include "cost/m2_optimizer.h"
#include "cost/m3_optimizer.h"
#include "cost/supplementary.h"
#include "rewrite/core_cover.h"

namespace vbr {

namespace {

const char* ModelName(CostModel model) {
  switch (model) {
    case CostModel::kM1:
      return "M1";
    case CostModel::kM2:
      return "M2";
    case CostModel::kM3:
      return "M3";
  }
  return "?";
}

}  // namespace

std::string ViewPlanner::PlanChoice::ToString() const {
  std::string s = "logical : " + logical.ToString() + "\n";
  s += "physical: " + physical.ToString() + "\n";
  s += "cost    : " + std::to_string(cost) + " (" + ModelName(model) + ")";
  return s;
}

ViewPlanner::ViewPlanner(ViewSet views, Database view_instances)
    : ViewPlanner(std::move(views), std::move(view_instances), Options()) {}

ViewPlanner::ViewPlanner(ViewSet views, Database view_instances,
                         Options options)
    : views_(std::move(views)),
      view_instances_(std::move(view_instances)),
      options_(options) {
  for (const View& v : views_) {
    VBR_CHECK_MSG(v.IsSafe(), "unsafe view definition");
  }
}

std::optional<ViewPlanner::PlanChoice> ViewPlanner::Plan(
    const ConjunctiveQuery& query, CostModel model) const {
  CoreCoverOptions cc_options;
  cc_options.max_rewritings = options_.max_rewritings;

  // M1 needs only the GMRs; M2/M3 search all minimal rewritings.
  const CoreCoverResult result =
      model == CostModel::kM1 ? CoreCover(query, views_, cc_options)
                              : CoreCoverStar(query, views_, cc_options);
  if (!result.has_rewriting) return std::nullopt;

  std::vector<Atom> filters;
  if (options_.use_filters && model != CostModel::kM1) {
    for (size_t i : result.filter_candidates) {
      filters.push_back(result.view_tuples[i].tuple.atom);
    }
  }

  PlanChoice best;
  best.model = model;
  best.cost = std::numeric_limits<size_t>::max();
  for (const ConjunctiveQuery& candidate : result.rewritings) {
    ConjunctiveQuery logical = candidate;
    PhysicalPlan physical;
    size_t cost = 0;
    switch (model) {
      case CostModel::kM1: {
        cost = CostM1(logical);
        physical.rewriting = logical;
        for (size_t i = 0; i < logical.num_subgoals(); ++i) {
          physical.order.push_back(i);
        }
        break;
      }
      case CostModel::kM2: {
        if (!filters.empty()) {
          logical =
              AdviseFilters(logical, filters, view_instances_).improved;
        }
        const auto m2 = OptimizeOrderM2(logical, view_instances_);
        physical = m2.plan;
        cost = m2.cost;
        break;
      }
      case CostModel::kM3: {
        if (!filters.empty()) {
          logical =
              AdviseFilters(logical, filters, view_instances_).improved;
        }
        if (logical.num_subgoals() <= options_.max_m3_subgoals) {
          const auto m3 =
              OptimizeM3(logical, query, views_, view_instances_);
          physical = m3.plan;
          cost = m3.cost;
        } else {
          // Too wide for the exhaustive M3 search: M2 order + SR drops.
          const auto m2 = OptimizeOrderM2(logical, view_instances_);
          physical = m2.plan;
          physical.drop_after =
              SupplementaryDrops(logical, physical.order);
          cost = ExecutePlan(physical, view_instances_).TotalCost();
        }
        break;
      }
    }
    if (cost < best.cost) {
      best.cost = cost;
      best.logical = std::move(logical);
      best.physical = std::move(physical);
    }
  }

  // Certify the winner (the certificate covers the logical plan; the M3
  // physical plan may execute a renamed variant, proven answer-equal by
  // the optimizer's renaming-safety test).
  auto certificate =
      CertifyEquivalentRewriting(best.logical, query, views_);
  VBR_CHECK_MSG(certificate.has_value(),
                "planner produced an uncertifiable rewriting");
  best.certificate = std::move(*certificate);
  return best;
}

Relation ViewPlanner::Execute(const PlanChoice& choice) const {
  return ExecutePlan(choice.physical, view_instances_).answer;
}

std::optional<Relation> ViewPlanner::Answer(
    const ConjunctiveQuery& query) const {
  auto choice = Plan(query, CostModel::kM2);
  if (!choice.has_value()) return std::nullopt;
  return Execute(*choice);
}

}  // namespace vbr
