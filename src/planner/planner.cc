#include "planner/planner.h"

#include <algorithm>
#include <limits>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "baseline/minicon.h"
#include "common/budget.h"
#include "common/check.h"
#include "common/json.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "cost/filter_advisor.h"
#include "cq/containment.h"
#include "cost/m2_optimizer.h"
#include "cost/m3_optimizer.h"
#include "cost/supplementary.h"
#include "planner/plan_cache.h"
#include "rewrite/core_cover.h"

namespace vbr {

namespace {

// Canonical model names now live in cost/cost_model.h; this alias keeps the
// call sites below unchanged.
constexpr auto ModelName = CostModelName;

// Inverse of a variable-to-variable renaming.
Substitution InvertRenaming(const Substitution& renaming) {
  Substitution inverse;
  for (const auto& [sym, target] : renaming.bindings()) {
    VBR_CHECK_MSG(target.is_variable(), "renaming maps a variable to a constant");
    const bool fresh = inverse.Bind(target, Term::Variable(sym));
    VBR_CHECK_MSG(fresh, "renaming is not injective");
  }
  return inverse;
}

// Renames a containment mapping: both its domain variables and its targets
// are pushed through `renaming` (variables the renaming does not cover —
// the expansion's fresh existentials — pass through unchanged).
Substitution RenameMapping(const Substitution& mapping,
                           const Substitution& renaming) {
  Substitution out;
  for (const auto& [sym, target] : mapping.bindings()) {
    const Term domain = renaming.Apply(Term::Variable(sym));
    VBR_CHECK_MSG(domain.is_variable(), "mapping domain renamed to a constant");
    out.Bind(domain, renaming.Apply(target));
  }
  return out;
}

// Transports a certificate along a variable renaming (canonical space <->
// a concrete query's variable space). The expansion's fresh existential
// variables are outside the renaming and keep their names; the caller
// re-verifies the transported certificate before trusting it.
EquivalenceCertificate TransportCertificate(const EquivalenceCertificate& cert,
                                            const Substitution& renaming) {
  EquivalenceCertificate out;
  out.query = renaming.Apply(cert.query);
  out.rewriting = renaming.Apply(cert.rewriting);
  out.expansion.query = renaming.Apply(cert.expansion.query);
  out.expansion.origin = cert.expansion.origin;
  out.query_to_expansion = RenameMapping(cert.query_to_expansion, renaming);
  out.expansion_to_query = RenameMapping(cert.expansion_to_query, renaming);
  return out;
}

// Records the budget outcome of one planning request into the global
// metrics registry (no-op when no budget died).
void RecordBudgetMetrics(const BudgetExhaustion& exhaustion) {
  if (exhaustion.kind == BudgetKind::kNone) return;
  static Counter* const exhausted =
      MetricsRegistry::Global().GetCounter("planner.budget_exhausted");
  exhausted->Increment();
  if (exhaustion.kind == BudgetKind::kDeadline) {
    static Counter* const deadline =
        MetricsRegistry::Global().GetCounter("planner.deadline_exceeded");
    deadline->Increment();
  }
}

std::string ExhaustionMessage(const BudgetExhaustion& exhaustion,
                              std::string_view while_doing) {
  std::string s = BudgetKindName(exhaustion.kind);
  s += " budget exhausted";
  if (!exhaustion.site.empty()) s += " at " + exhaustion.site;
  s += " ";
  s += while_doing;
  return s;
}

}  // namespace

const char* PlanStatusName(PlanStatus status) {
  switch (status) {
    case PlanStatus::kOk:
      return "ok";
    case PlanStatus::kNoRewriting:
      return "no equivalent rewriting";
    case PlanStatus::kUnsupportedQueryTooLarge:
      return "unsupported query (too large)";
    case PlanStatus::kBudgetExhausted:
      return "budget exhausted";
  }
  return "?";
}

std::string ViewPlanner::PlanChoice::ToString() const {
  std::string s = "logical : " + logical.ToString() + "\n";
  s += "physical: " + physical.ToString() + "\n";
  s += "cost    : " + std::to_string(cost) + " (" + ModelName(model) + ")";
  return s;
}

namespace {

std::string SizesToString(const std::vector<size_t>& sizes) {
  std::string s = "[";
  for (size_t i = 0; i < sizes.size(); ++i) {
    if (i > 0) s += " ";
    s += std::to_string(sizes[i]);
  }
  s += "]";
  return s;
}

std::string SizesToJson(const std::vector<size_t>& sizes) {
  std::string s = "[";
  for (size_t i = 0; i < sizes.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(sizes[i]);
  }
  s += "]";
  return s;
}

std::string Quoted(std::string_view s) {
  return "\"" + JsonEscape(s) + "\"";
}

std::string StatsToJson(const CoreCoverStats& stats) {
  std::string s = "{";
  s += "\"num_views\":" + std::to_string(stats.num_views);
  s += ",\"num_candidate_views\":" + std::to_string(stats.num_candidate_views);
  s += ",\"num_view_classes\":" + std::to_string(stats.num_view_classes);
  s += ",\"num_view_tuples\":" + std::to_string(stats.num_view_tuples);
  s += ",\"num_tuple_classes\":" + std::to_string(stats.num_tuple_classes);
  s += ",\"num_nonempty_cores\":" + std::to_string(stats.num_nonempty_cores);
  s += ",\"minimum_cover_size\":" + std::to_string(stats.minimum_cover_size);
  s += ",\"minimize_ms\":" + std::to_string(stats.minimize_ms);
  s += ",\"view_tuple_ms\":" + std::to_string(stats.view_tuple_ms);
  s += ",\"tuple_core_ms\":" + std::to_string(stats.tuple_core_ms);
  s += ",\"cover_ms\":" + std::to_string(stats.cover_ms);
  s += ",\"total_ms\":" + std::to_string(stats.total_ms);
  s += ",\"work_used\":" + std::to_string(stats.work_used);
  s += ",\"hit_rewriting_cap\":" +
       std::string(stats.hit_rewriting_cap ? "true" : "false");
  s += "}";
  return s;
}

}  // namespace

std::string ViewPlanner::PlanExplanation::ToText() const {
  std::string s;
  s += "query    : " + query.ToString() + "\n";
  s += "status   : " + std::string(PlanStatusName(status)) + "\n";
  if (!error.empty()) s += "error    : " + error + "\n";
  s += "model    : " + std::string(ModelName(model)) + "\n";
  s += "cache    : " + cache_disposition +
       (cache_hit ? " (served from cache)" : "") + "\n";
  if (exhaustion.kind != BudgetKind::kNone) {
    s += "budget   : " + std::string(BudgetKindName(exhaustion.kind)) +
         " budget exhausted at " + exhaustion.site +
         (degraded ? " (degraded plan)" : "") + "\n";
  }
  if (stats.hit_rewriting_cap) {
    s += "truncated: candidate enumeration hit max_rewritings; the plan was "
         "chosen from an incomplete set\n";
  }
  if (!ok()) return s;
  s += "minimized: " + minimized.ToString() + "\n";
  s += "candidates (" + std::to_string(candidates.size()) + "):\n";
  for (size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& c = candidates[i];
    s += "  [" + std::to_string(i) + "]" + (c.chosen ? " *" : "  ");
    s += " cost " + std::to_string(c.cost);
    if (c.filtered) s += " (filtered)";
    s += " : " + c.logical.ToString() + "  -- " + c.reason + "\n";
  }
  if (choice.has_value()) {
    s += "plan:\n";
    s += "  logical : " + choice->logical.ToString() + "\n";
    s += "  physical: " + choice->physical.ToString() + "\n";
    s += "  cost    : " + std::to_string(choice->cost) + " (" +
         ModelName(choice->model) + ")\n";
  }
  if (!breakdown.empty()) {
    s += "breakdown:\n";
    for (const ModelBreakdown& b : breakdown) {
      s += "  " + std::string(ModelName(b.model)) + ": cost " +
           std::to_string(b.cost) + ", order " + SizesToString(b.order);
      if (!b.relation_sizes.empty()) {
        s += ", relation sizes " + SizesToString(b.relation_sizes);
      }
      if (!b.state_sizes.empty()) {
        s += ", intermediate sizes " + SizesToString(b.state_sizes);
      }
      s += "\n";
    }
  }
  return s;
}

std::string ViewPlanner::PlanExplanation::ToJson() const {
  std::string s = "{";
  s += "\"status\":" + Quoted(PlanStatusName(status));
  s += ",\"error\":" + Quoted(error);
  s += ",\"model\":" + Quoted(ModelName(model));
  s += ",\"cache\":" + Quoted(cache_disposition);
  s += ",\"cache_hit\":" + std::string(cache_hit ? "true" : "false");
  s += ",\"budget\":{\"exhausted\":" +
       std::string(exhaustion.kind != BudgetKind::kNone ? "true" : "false");
  s += ",\"kind\":" + Quoted(BudgetKindName(exhaustion.kind));
  s += ",\"site\":" + Quoted(exhaustion.site);
  s += ",\"degraded\":" + std::string(degraded ? "true" : "false") + "}";
  s += ",\"query\":" + Quoted(query.ToString());
  s += ",\"minimized\":" + Quoted(minimized.ToString());
  s += ",\"candidates\":[";
  for (size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& c = candidates[i];
    if (i > 0) s += ",";
    s += "{\"logical\":" + Quoted(c.logical.ToString());
    s += ",\"cost\":" + std::to_string(c.cost);
    s += ",\"filtered\":" + std::string(c.filtered ? "true" : "false");
    s += ",\"chosen\":" + std::string(c.chosen ? "true" : "false");
    s += ",\"reason\":" + Quoted(c.reason) + "}";
  }
  s += "]";
  if (choice.has_value()) {
    s += ",\"plan\":{";
    s += "\"logical\":" + Quoted(choice->logical.ToString());
    s += ",\"physical\":" + Quoted(choice->physical.ToString());
    s += ",\"cost\":" + std::to_string(choice->cost);
    s += ",\"model\":" + Quoted(ModelName(choice->model));
    s += "}";
  } else {
    s += ",\"plan\":null";
  }
  s += ",\"breakdown\":[";
  for (size_t i = 0; i < breakdown.size(); ++i) {
    const ModelBreakdown& b = breakdown[i];
    if (i > 0) s += ",";
    s += "{\"model\":" + Quoted(ModelName(b.model));
    s += ",\"cost\":" + std::to_string(b.cost);
    s += ",\"order\":" + SizesToJson(b.order);
    s += ",\"relation_sizes\":" + SizesToJson(b.relation_sizes);
    s += ",\"state_sizes\":" + SizesToJson(b.state_sizes) + "}";
  }
  s += "]";
  s += ",\"stats\":" + StatsToJson(stats);
  s += "}";
  return s;
}

std::string ViewPlanner::PlanResult::ToJson() const {
  // Same dialect as PlanExplanation::ToJson: identical keys and value
  // shapes for the members both carry, so one reader handles both.
  std::string s = "{";
  s += "\"status\":" + Quoted(PlanStatusName(status));
  s += ",\"error\":" + Quoted(error);
  s += ",\"cache_hit\":" + std::string(cache_hit ? "true" : "false");
  s += ",\"budget\":{\"exhausted\":" +
       std::string(exhaustion.kind != BudgetKind::kNone ? "true" : "false");
  s += ",\"kind\":" + Quoted(BudgetKindName(exhaustion.kind));
  s += ",\"site\":" + Quoted(exhaustion.site);
  s += ",\"degraded\":" + std::string(degraded ? "true" : "false") + "}";
  if (choice.has_value()) {
    s += ",\"plan\":{";
    s += "\"logical\":" + Quoted(choice->logical.ToString());
    s += ",\"physical\":" + Quoted(choice->physical.ToString());
    s += ",\"cost\":" + std::to_string(choice->cost);
    s += ",\"model\":" + Quoted(ModelName(choice->model));
    s += "}";
  } else {
    s += ",\"plan\":null";
  }
  s += ",\"stats\":" + StatsToJson(stats);
  s += "}";
  return s;
}

ViewPlanner::ViewPlanner(ViewSet views, Database view_instances)
    : ViewPlanner(std::move(views), std::move(view_instances), Options()) {}

ViewPlanner::ViewPlanner(ViewSet views, Database view_instances,
                         Options options)
    : options_(options),
      cache_(std::make_unique<PlanCache>(options.cache_capacity)) {
  for (const View& v : views) {
    VBR_CHECK_MSG(v.IsSafe(), "unsafe view definition");
  }
  auto snapshot = std::make_shared<ViewSnapshot>();
  snapshot->views = std::move(views);
  snapshot->instances = std::move(view_instances);
  snapshot->epoch = cache_->epoch();
  snapshot->delta_epoch = cache_->delta_epoch();
  if (options_.core_cover.use_view_index) {
    snapshot->index = std::make_shared<ViewIndex>(snapshot->views);
  }
  snapshot_ = std::move(snapshot);
}

ViewPlanner::~ViewPlanner() = default;

std::shared_ptr<const ViewPlanner::ViewSnapshot> ViewPlanner::CurrentSnapshot()
    const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

std::shared_ptr<const ViewPlanner::ViewSnapshot> ViewPlanner::snapshot()
    const {
  return CurrentSnapshot();
}

bool ViewPlanner::CostAndPick(
    const ViewSnapshot& vs, const ConjunctiveQuery& query, CostModel model,
    const std::vector<ConjunctiveQuery>& rewritings,
    const std::vector<Atom>& filter_atoms, PlanChoice* best,
    size_t* winner_index, bool* winner_filtered, const TraceContext& trace,
    std::vector<PlanExplanation::Candidate>* capture) const {
  TraceSpan span(trace, "cost_and_pick");
  span.AddAttribute("candidates", static_cast<uint64_t>(rewritings.size()));
  const bool use_filters =
      options_.use_filters && model != CostModel::kM1 && !filter_atoms.empty();
  best->model = model;
  best->cost = std::numeric_limits<size_t>::max();
  *winner_index = 0;
  *winner_filtered = false;
  bool found = false;
  for (size_t r = 0; r < rewritings.size(); ++r) {
    ConjunctiveQuery logical = rewritings[r];
    PhysicalPlan physical;
    size_t cost = 0;
    bool filtered = false;
    switch (model) {
      case CostModel::kM1: {
        cost = CostM1(logical);
        physical.rewriting = logical;
        for (size_t i = 0; i < logical.num_subgoals(); ++i) {
          physical.order.push_back(i);
        }
        break;
      }
      case CostModel::kM2: {
        if (use_filters) {
          auto advice = AdviseFilters(logical, filter_atoms, vs.instances);
          filtered = !advice.filters_added.empty();
          logical = std::move(advice.improved);
        }
        const auto m2 =
            OptimizeOrderM2(logical, vs.instances, span.context());
        physical = m2.plan;
        cost = m2.cost;
        break;
      }
      case CostModel::kM3: {
        if (use_filters) {
          auto advice = AdviseFilters(logical, filter_atoms, vs.instances);
          filtered = !advice.filters_added.empty();
          logical = std::move(advice.improved);
        }
        if (logical.num_subgoals() <= options_.max_m3_subgoals) {
          const auto m3 =
              OptimizeM3(logical, query, vs.views, vs.instances,
                         span.context());
          physical = m3.plan;
          cost = m3.cost;
        } else {
          // Too wide for the exhaustive M3 search: M2 order + SR drops.
          const auto m2 =
              OptimizeOrderM2(logical, vs.instances, span.context());
          physical = m2.plan;
          physical.drop_after = SupplementaryDrops(logical, physical.order);
          cost = ExecutePlan(physical, vs.instances).TotalCost();
        }
        break;
      }
    }
    if (capture != nullptr) {
      PlanExplanation::Candidate candidate;
      candidate.logical = logical;
      candidate.cost = cost;
      candidate.filtered = filtered;
      capture->push_back(std::move(candidate));
    }
    if (!found || cost < best->cost) {
      found = true;
      best->cost = cost;
      best->logical = std::move(logical);
      best->physical = std::move(physical);
      *winner_index = r;
      *winner_filtered = filtered;
    }
  }
  if (capture != nullptr && found) {
    for (size_t r = 0; r < capture->size(); ++r) {
      PlanExplanation::Candidate& candidate = (*capture)[r];
      if (r == *winner_index) {
        candidate.chosen = true;
        candidate.reason = "chosen";
      } else {
        candidate.reason = "cost " + std::to_string(candidate.cost) +
                           " >= winner " + std::to_string(best->cost);
      }
    }
  }
  if (found) {
    span.AddAttribute("winner", static_cast<uint64_t>(*winner_index));
    span.AddAttribute("winner_cost", static_cast<uint64_t>(best->cost));
  }
  return found;
}

namespace {

// Limits for one rung of the degradation ladder: the configured grace work
// budget, plus a sliver of deadline when the request itself was
// deadline-bound (recovery must not cost multiples of the deadline the
// caller asked for).
ResourceLimits GraceLimits(const ViewPlanner::Options& options) {
  ResourceLimits grace;
  grace.work_limit = options.fallback_work_budget;
  if (options.budget.deadline_ms > 0) {
    grace.deadline_ms = std::max(5.0, options.budget.deadline_ms / 4);
  }
  return grace;
}

}  // namespace

std::optional<EquivalenceCertificate> ViewPlanner::GraceCertify(
    const ViewSnapshot& vs, const ConjunctiveQuery& rewriting,
    const ConjunctiveQuery& minimized) const {
  // A fresh governor shields the certification search from the exhausted
  // request governor (otherwise the dead budget would starve its own
  // recovery); the grace budget keeps it bounded.
  ResourceGovernor governor(GraceLimits(options_));
  GovernorScope scope(&governor);
  return CertifyEquivalentRewriting(rewriting, minimized, vs.views);
}

ViewPlanner::PlanResult ViewPlanner::MiniConFallback(
    const ViewSnapshot& vs, const ConjunctiveQuery& query, CostModel model,
    const CoreCoverResult& cc_result, const TraceContext& trace,
    PlanExplanation* explain) const {
  PlanResult out;
  out.stats = cc_result.stats;
  out.status = PlanStatus::kBudgetExhausted;
  out.exhaustion = cc_result.exhaustion;
  out.error = ExhaustionMessage(cc_result.exhaustion,
                                "before any rewriting was found");
  if (!options_.enable_minicon_fallback) return out;

  TraceSpan span(trace, "minicon_fallback");
  ResourceGovernor governor(GraceLimits(options_));
  GovernorScope scope(&governor);
  // Same candidate discipline as the main pipeline, in MiniCon's
  // kAnyOverlap mode (snapshot index when available).
  CandidateFilterOptions filter;
  filter.enabled = options_.core_cover.use_view_index;
  filter.index = vs.index.get();
  const MiniConResult mc =
      MiniCon(query, vs.views, options_.core_cover.max_rewritings, filter);
  span.AddAttribute("equivalent_rewritings",
                    static_cast<uint64_t>(mc.equivalent_rewritings.size()));
  span.AddAttribute("aborted", mc.aborted);
  if (mc.equivalent_rewritings.empty()) return out;

  PlanChoice best;
  size_t winner = 0;
  bool winner_filtered = false;
  VBR_CHECK(CostAndPick(vs, query, model, mc.equivalent_rewritings, {}, &best,
                        &winner, &winner_filtered, span.context(),
                        explain != nullptr ? &explain->candidates : nullptr));
  // MiniCon's equivalence filter already verified the winner, but PlanChoice
  // promises a transportable certificate; build one under the same grace
  // budget (if even that dies, report exhaustion rather than an
  // uncertified plan).
  auto certificate =
      CertifyEquivalentRewriting(best.logical, mc.minimized_query, vs.views);
  if (!certificate.has_value()) return out;
  best.certificate = std::move(*certificate);
  out.choice = std::move(best);
  out.status = PlanStatus::kOk;
  out.degraded = true;
  out.error.clear();
  return out;
}

ViewPlanner::PlanResult ViewPlanner::PlanViaCoreCover(
    const ViewSnapshot& vs, const ConjunctiveQuery& query, CostModel model,
    const CoreCoverOptions& cc_options, const CanonicalQuery* canonical,
    std::shared_ptr<const CachedPlan>* out_entry,
    PlanExplanation* explain) const {
  // Per-request budget: a fresh governor when the options configure limits,
  // otherwise whatever governor the caller installed (possibly none).
  std::optional<ResourceGovernor> governor_storage;
  if (!options_.budget.unlimited()) governor_storage.emplace(options_.budget);
  GovernorScope budget_scope(governor_storage ? &*governor_storage
                                              : ResourceGovernor::Current());
  ResourceGovernor* const governor = ResourceGovernor::Current();

  // M1 needs only the GMRs; M2/M3 search all minimal rewritings. The
  // snapshot's candidate index rides along (same catalog by construction).
  CoreCoverOptions cc = cc_options;
  if (cc.use_view_index && vs.index != nullptr) cc.view_index = vs.index.get();
  const CoreCoverResult result =
      model == CostModel::kM1 ? CoreCover(query, vs.views, cc)
                              : CoreCoverStar(query, vs.views, cc);
  const bool exhausted_run =
      result.status == CoreCoverStatus::kBudgetExhausted;

  PlanResult out;
  out.stats = result.stats;
  std::vector<Atom> filter_atoms;
  filter_atoms.reserve(result.filter_candidates.size());
  for (size_t i : result.filter_candidates) {
    filter_atoms.push_back(result.view_tuples[i].tuple.atom);
  }

  // Build the cache entry (canonical variable space) before costing;
  // negative outcomes are cached too — but NEVER a budget-exhausted run:
  // its rewriting list is incomplete, and serving it to later (possibly
  // generously budgeted) requests would poison them. Likewise a
  // canonicalization whose minimization was cut short: its "canonical" form
  // may not be the core's, so the entry would be filed under a label other
  // queries of the same equivalence class never produce — and its contents
  // were computed from a non-minimal body.
  std::shared_ptr<CachedPlan> entry;
  if (canonical != nullptr && canonical->minimize_complete && !exhausted_run) {
    entry = std::make_shared<CachedPlan>();
    entry->fingerprint = canonical->fingerprint;
    entry->status = result.status;
    entry->error = result.error;
    entry->has_rewriting = result.has_rewriting;
    entry->minimized = canonical->to_canonical.Apply(result.minimized_query);
    entry->rewritings.reserve(result.rewritings.size());
    for (const ConjunctiveQuery& r : result.rewritings) {
      entry->rewritings.push_back(canonical->to_canonical.Apply(r));
    }
    entry->filter_atoms.reserve(filter_atoms.size());
    for (const Atom& a : filter_atoms) {
      entry->filter_atoms.push_back(canonical->to_canonical.Apply(a));
    }
    entry->stats = result.stats;
  }

  if (explain != nullptr) explain->minimized = result.minimized_query;
  if (result.status == CoreCoverStatus::kUnsupportedQueryTooLarge) {
    out.status = PlanStatus::kUnsupportedQueryTooLarge;
    out.error = result.error;
  } else if (!result.has_rewriting) {
    if (exhausted_run) {
      // Nothing survived before the budget died; last rung of the ladder.
      out = MiniConFallback(vs, query, model, result, cc_options.trace,
                            explain);
    } else {
      out.status = PlanStatus::kNoRewriting;
    }
  } else {
    PlanChoice best;
    size_t winner = 0;
    bool winner_filtered = false;
    // Under an exhausted budget the optimizers abort and report SIZE_MAX
    // costs, so the pick degrades toward emission order but stays total.
    VBR_CHECK(CostAndPick(vs, query, model, result.rewritings, filter_atoms,
                          &best, &winner, &winner_filtered, cc_options.trace,
                          explain != nullptr ? &explain->candidates : nullptr));
    // Certify the winner against the minimized core (the certificate covers
    // the logical plan; the M3 physical plan may execute a renamed variant,
    // proven answer-equal by the optimizer's renaming-safety test).
    TraceSpan certify_span(cc_options.trace, "certify");
    std::optional<EquivalenceCertificate> certificate;
    if (governor == nullptr || !governor->exhausted()) {
      certificate =
          CertifyEquivalentRewriting(best.logical, result.minimized_query,
                                     vs.views);
    }
    const bool exhausted_now = governor != nullptr && governor->exhausted();
    if (!certificate.has_value() && exhausted_now) {
      // Best-so-far grace certification: the rewriting is genuine (every
      // emitted cover is), only the certification search was starved.
      certificate = GraceCertify(vs, best.logical, result.minimized_query);
      certify_span.AddAttribute("grace", true);
    }
    VBR_CHECK_MSG(certificate.has_value() || exhausted_now,
                  "planner produced an uncertifiable rewriting");
    if (!certificate.has_value()) {
      out.status = PlanStatus::kBudgetExhausted;
      out.exhaustion = governor->exhaustion();
      out.error = ExhaustionMessage(out.exhaustion,
                                    "before the chosen rewriting could be "
                                    "certified");
    } else {
      if (entry != nullptr && !winner_filtered) {
        entry->StoreCertificate(
            winner,
            TransportCertificate(*certificate, canonical->to_canonical));
      }
      best.certificate = std::move(*certificate);
      out.choice = std::move(best);
      out.status = PlanStatus::kOk;
    }
  }

  if (governor != nullptr && governor->exhausted()) {
    out.exhaustion = governor->exhaustion();
    out.degraded = out.status == PlanStatus::kOk;
  }
  RecordBudgetMetrics(out.exhaustion);

  if (entry != nullptr) {
    // Keyed to the snapshot's epoch: if a ReplaceViews landed while this
    // request planned, the insert is a silent no-op (the outcome describes
    // the retired view set). The snapshot's delta epoch rides along so an
    // AddViews/RemoveViews that landed mid-plan is reconciled per-query at
    // lookup time instead of silently serving a pre-delta plan.
    cache_->Insert(model, entry, vs.epoch, vs.delta_epoch);
    if (out_entry != nullptr) *out_entry = entry;
  }
  return out;
}

ViewPlanner::PlanResult ViewPlanner::PlanFromEntry(
    const ViewSnapshot& vs, const ConjunctiveQuery& query, CostModel model,
    const CachedPlan& entry, const Substitution& transport,
    const TraceContext& trace, PlanExplanation* explain) const {
  // Cache hits re-cost and re-certify against current instances, so they
  // run under the same per-request budget as a fresh plan.
  std::optional<ResourceGovernor> governor_storage;
  if (!options_.budget.unlimited()) governor_storage.emplace(options_.budget);
  GovernorScope budget_scope(governor_storage ? &*governor_storage
                                              : ResourceGovernor::Current());
  ResourceGovernor* const governor = ResourceGovernor::Current();

  PlanResult out;
  out.cache_hit = true;
  out.stats = entry.stats;
  if (explain != nullptr) explain->minimized = transport.Apply(entry.minimized);
  if (entry.status != CoreCoverStatus::kOk) {
    out.status = PlanStatus::kUnsupportedQueryTooLarge;
    out.error = entry.error;
    return out;
  }
  if (!entry.has_rewriting) {
    out.status = PlanStatus::kNoRewriting;
    return out;
  }

  // Transport the cached logical rewritings into this query's variables and
  // re-cost them against the CURRENT view instances.
  std::vector<ConjunctiveQuery> rewritings;
  rewritings.reserve(entry.rewritings.size());
  for (const ConjunctiveQuery& r : entry.rewritings) {
    rewritings.push_back(transport.Apply(r));
  }
  std::vector<Atom> filter_atoms;
  filter_atoms.reserve(entry.filter_atoms.size());
  for (const Atom& a : entry.filter_atoms) {
    filter_atoms.push_back(transport.Apply(a));
  }

  PlanChoice best;
  size_t winner = 0;
  bool winner_filtered = false;
  VBR_CHECK(CostAndPick(vs, query, model, rewritings, filter_atoms, &best,
                        &winner, &winner_filtered, trace,
                        explain != nullptr ? &explain->candidates : nullptr));

  // Certificate: reuse the cached one when the winner is the bare cached
  // rewriting (re-verified after transport — transport is a pure renaming,
  // but the verifier is cheap and search-free, so trust nothing). A
  // filtered winner differs from the cached rewriting and is re-certified.
  TraceSpan certify_span(trace, "certify");
  bool certified = false;
  if (!winner_filtered) {
    if (auto cached_cert = entry.certificate(winner)) {
      EquivalenceCertificate cert =
          TransportCertificate(*cached_cert, transport);
      if (VerifyCertificate(cert, vs.views)) {
        best.certificate = std::move(cert);
        certified = true;
      }
    }
  }
  if (!certified) {
    const ConjunctiveQuery minimized = transport.Apply(entry.minimized);
    std::optional<EquivalenceCertificate> certificate;
    if (governor == nullptr || !governor->exhausted()) {
      certificate =
          CertifyEquivalentRewriting(best.logical, minimized, vs.views);
    }
    if (!certificate.has_value() && governor != nullptr &&
        governor->exhausted()) {
      certificate = GraceCertify(vs, best.logical, minimized);
      certify_span.AddAttribute("grace", true);
    }
    if (!certificate.has_value()) {
      // Only a starved certification search may fail here — a cached
      // rewriting that genuinely fails to certify is a planner bug.
      VBR_CHECK_MSG(governor != nullptr && governor->exhausted(),
                    "cached rewriting failed certification");
      certify_span.End();
      out.status = PlanStatus::kBudgetExhausted;
      out.exhaustion = governor->exhaustion();
      out.error = ExhaustionMessage(out.exhaustion,
                                    "while certifying a cached plan");
      RecordBudgetMetrics(out.exhaustion);
      return out;
    }
    if (!winner_filtered) {
      entry.StoreCertificate(
          winner,
          TransportCertificate(*certificate, InvertRenaming(transport)));
    }
    best.certificate = std::move(*certificate);
  }
  certify_span.AddAttribute("reused_cached", certified);
  certify_span.End();
  out.choice = std::move(best);
  out.status = PlanStatus::kOk;
  if (governor != nullptr && governor->exhausted()) {
    // Costing (or first-pass certification) was starved: the plan is
    // certified-correct but may not be the cheapest candidate.
    out.exhaustion = governor->exhaustion();
    out.degraded = true;
    RecordBudgetMetrics(out.exhaustion);
  }
  return out;
}

ViewPlanner::PlanResult ViewPlanner::Plan(const ConjunctiveQuery& query,
                                          CostModel model) const {
  return PlanInternal(*CurrentSnapshot(), query, model, TraceContext{},
                      nullptr);
}

ViewPlanner::PlanResult ViewPlanner::Plan(const ConjunctiveQuery& query,
                                          CostModel model,
                                          TraceSink* trace) const {
  return PlanInternal(*CurrentSnapshot(), query, model,
                      TraceContext{trace, 0}, nullptr);
}

ViewPlanner::PlanResult ViewPlanner::Plan(const ConjunctiveQuery& query,
                                          CostModel model,
                                          const TraceContext& trace) const {
  return PlanInternal(*CurrentSnapshot(), query, model, trace, nullptr);
}

ViewPlanner::PlanResult ViewPlanner::Plan(const ConjunctiveQuery& query,
                                          const PlanRequestOptions& request,
                                          TraceSink* trace) const {
  // Same governed-call contract as PlanningService::Serve: install a fresh
  // governor from the request's limits (deadline measured from here) so
  // the whole pipeline observes them, then plan under the request's model.
  const ResourceLimits limits = request.limits();
  std::optional<ResourceGovernor> governor;
  std::optional<GovernorScope> scope;
  if (!limits.unlimited()) {
    governor.emplace(limits);
    scope.emplace(&*governor);
  }
  return Plan(query, request.model, trace);
}

std::optional<ViewPlanner::PlanResult> ViewPlanner::TryPlanFromCache(
    const ConjunctiveQuery& query, CostModel model) const {
  if (!options_.enable_cache || query.HasBuiltins()) return std::nullopt;
  const std::shared_ptr<const ViewSnapshot> snapshot = CurrentSnapshot();
  const CanonicalQuery canonical = CanonicalizeQuery(query);
  std::optional<Substitution> fallback;
  const PlanCache::EntryPtr entry =
      cache_->Lookup(canonical.fingerprint, model, canonical.minimized,
                     &fallback, snapshot->epoch, snapshot->delta_epoch);
  if (entry == nullptr) return std::nullopt;
  return PlanFromEntry(*snapshot, query, model, *entry,
                       fallback ? *fallback : canonical.from_canonical);
}

ViewPlanner::PlanResult ViewPlanner::PlanInternal(
    const ViewSnapshot& vs, const ConjunctiveQuery& query, CostModel model,
    const TraceContext& trace, PlanExplanation* explain) const {
  static Counter* const plan_calls =
      MetricsRegistry::Global().GetCounter("planner.plans");
  static Histogram* const plan_us =
      MetricsRegistry::Global().GetHistogram("planner.plan_us");
  plan_calls->Increment();
  const Timer timer;
  TraceSpan span(trace, "plan");
  span.AddAttribute("model", ModelName(model));

  PlanResult result;
  std::string_view disposition;
  // Builtin comparison subgoals are outside the fingerprint/minimization
  // machinery; such queries bypass the cache (and fail later checks exactly
  // as they always did).
  if (!options_.enable_cache || query.HasBuiltins()) {
    disposition = options_.enable_cache ? "bypass" : "disabled";
    CoreCoverOptions cc = options_.core_cover;
    cc.trace = span.context();
    result = PlanViaCoreCover(vs, query, model, cc, nullptr, nullptr, explain);
  } else {
    std::optional<CanonicalQuery> canonical;
    {
      TraceSpan canon_span(span.context(), "canonicalize");
      canonical = CanonicalizeQuery(query);
      canon_span.AddAttribute("exact", canonical->fingerprint.exact);
    }
    std::optional<Substitution> fallback;
    PlanCache::EntryPtr entry;
    {
      TraceSpan lookup_span(span.context(), "cache_lookup");
      entry = cache_->Lookup(canonical->fingerprint, model,
                             canonical->minimized, &fallback, vs.epoch,
                             vs.delta_epoch);
      lookup_span.AddAttribute("outcome",
                               entry != nullptr ? "hit" : "miss");
    }
    if (entry != nullptr) {
      disposition = "hit";
      result = PlanFromEntry(vs, query, model, *entry,
                             fallback ? *fallback : canonical->from_canonical,
                             span.context(), explain);
    } else {
      disposition = "miss";
      CoreCoverOptions cc = options_.core_cover;
      cc.trace = span.context();
      result = PlanViaCoreCover(vs, query, model, cc, &*canonical, nullptr,
                                explain);
    }
  }
  span.AddAttribute("cache", disposition);
  span.AddAttribute("status", PlanStatusName(result.status));
  if (result.exhaustion.kind != BudgetKind::kNone) {
    span.AddAttribute("budget_kind", BudgetKindName(result.exhaustion.kind));
    span.AddAttribute("budget_site", result.exhaustion.site);
    span.AddAttribute("degraded", result.degraded);
  }
  plan_us->Record(static_cast<uint64_t>(timer.ElapsedMillis() * 1000.0));
  if (explain != nullptr) {
    explain->status = result.status;
    explain->error = result.error;
    explain->model = model;
    explain->cache_disposition = std::string(disposition);
    explain->query = query;
    explain->choice = result.choice;
    explain->stats = result.stats;
    explain->cache_hit = result.cache_hit;
    explain->exhaustion = result.exhaustion;
    explain->degraded = result.degraded;
  }
  return result;
}

ViewPlanner::PlanExplanation ViewPlanner::Explain(
    const ConjunctiveQuery& query, CostModel model, TraceSink* trace) const {
  PlanExplanation explain;
  // One snapshot for the planning run AND the re-measurement below, so the
  // breakdown describes the same view generation the plan was chosen on.
  const std::shared_ptr<const ViewSnapshot> snapshot = CurrentSnapshot();
  const ViewSnapshot& vs = *snapshot;
  const PlanResult result =
      PlanInternal(vs, query, model, TraceContext{trace, 0}, &explain);
  if (!result.ok()) return explain;

  // Re-measure the chosen logical plan under all three cost models so the
  // explanation can contrast them (the planning decision above used only
  // the requested model).
  const ConjunctiveQuery& logical = result.choice->logical;
  {
    PlanExplanation::ModelBreakdown b;
    b.model = CostModel::kM1;
    b.cost = CostM1(logical);
    PhysicalPlan plan;
    plan.rewriting = logical;
    for (size_t i = 0; i < logical.num_subgoals(); ++i) {
      plan.order.push_back(i);
    }
    b.order = plan.order;
    const PlanExecution exec = ExecutePlan(plan, vs.instances);
    b.relation_sizes = exec.relation_sizes;
    explain.breakdown.push_back(std::move(b));
  }
  {
    const auto m2 = OptimizeOrderM2(logical, vs.instances);
    PlanExplanation::ModelBreakdown b;
    b.model = CostModel::kM2;
    b.cost = m2.cost;
    b.order = m2.plan.order;
    const PlanExecution exec = ExecutePlan(m2.plan, vs.instances);
    b.relation_sizes = exec.relation_sizes;
    b.state_sizes = exec.state_sizes;
    explain.breakdown.push_back(std::move(b));
  }
  {
    PlanExplanation::ModelBreakdown b;
    b.model = CostModel::kM3;
    PhysicalPlan plan;
    if (logical.num_subgoals() <= options_.max_m3_subgoals) {
      const auto m3 =
          OptimizeM3(logical, explain.minimized, vs.views, vs.instances);
      b.cost = m3.cost;
      plan = m3.plan;
    } else {
      const auto m2 = OptimizeOrderM2(logical, vs.instances);
      plan = m2.plan;
      plan.drop_after = SupplementaryDrops(logical, plan.order);
      b.cost = ExecutePlan(plan, vs.instances).TotalCost();
    }
    b.order = plan.order;
    const PlanExecution exec = ExecutePlan(plan, vs.instances);
    b.relation_sizes = exec.relation_sizes;
    b.state_sizes = exec.state_sizes;
    explain.breakdown.push_back(std::move(b));
  }
  return explain;
}

std::vector<ViewPlanner::PlanResult> ViewPlanner::PlanMany(
    const std::vector<ConjunctiveQuery>& queries, CostModel model) const {
  std::vector<PlanResult> results(queries.size());
  if (queries.empty()) return results;

  // One snapshot for the whole batch: every member plans against the same
  // view generation even when ReplaceViews lands mid-batch.
  const std::shared_ptr<const ViewSnapshot> snapshot = CurrentSnapshot();
  const ViewSnapshot& vs = *snapshot;

  // The batch is the unit of parallelism: each query plans single-threaded
  // while the pool fans out across fingerprint groups.
  CoreCoverOptions serial_cc = options_.core_cover;
  serial_cc.num_threads = 1;
  ThreadPool pool(options_.core_cover.num_threads);

  std::vector<std::unique_ptr<CanonicalQuery>> canon(queries.size());
  if (options_.enable_cache) {
    pool.ParallelFor(queries.size(), [&](size_t i) {
      if (!queries[i].HasBuiltins()) {
        canon[i] = std::make_unique<CanonicalQuery>(
            CanonicalizeQuery(queries[i]));
      }
    });
  }

  // Group queries by fingerprint, first occurrence leading, mirroring the
  // cache's matching rules (exact canonical string, or isomorphism search
  // when a labeling is inexact). Uncacheable queries form singleton groups.
  std::vector<std::vector<size_t>> groups;
  std::unordered_map<std::string_view, size_t> by_canonical;
  std::vector<size_t> inexact_groups;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (canon[i] == nullptr) {
      groups.push_back({i});
      continue;
    }
    const QueryFingerprint& fp = canon[i]->fingerprint;
    if (auto it = by_canonical.find(fp.canonical); it != by_canonical.end()) {
      groups[it->second].push_back(i);
      continue;
    }
    size_t joined = static_cast<size_t>(-1);
    if (!fp.exact) {
      for (size_t g = 0; g < groups.size() && joined == static_cast<size_t>(-1);
           ++g) {
        const size_t lead = groups[g][0];
        if (canon[lead] != nullptr &&
            Isomorphic(canon[lead]->minimized, canon[i]->minimized)) {
          joined = g;
        }
      }
    } else {
      for (size_t g : inexact_groups) {
        const size_t lead = groups[g][0];
        if (Isomorphic(canon[lead]->minimized, canon[i]->minimized)) {
          joined = g;
          break;
        }
      }
    }
    if (joined != static_cast<size_t>(-1)) {
      groups[joined].push_back(i);
      continue;
    }
    groups.push_back({i});
    by_canonical.emplace(fp.canonical, groups.size() - 1);
    if (!fp.exact) inexact_groups.push_back(groups.size() - 1);
  }

  pool.ParallelFor(groups.size(), [&](size_t g) {
    const std::vector<size_t>& members = groups[g];
    const size_t lead = members[0];
    std::shared_ptr<const CachedPlan> entry;
    if (canon[lead] != nullptr) {
      std::optional<Substitution> fallback;
      entry = cache_->Lookup(canon[lead]->fingerprint, model,
                             canon[lead]->minimized, &fallback, vs.epoch,
                             vs.delta_epoch);
      if (entry != nullptr) {
        results[lead] =
            PlanFromEntry(vs, queries[lead], model, *entry,
                          fallback ? *fallback : canon[lead]->from_canonical);
      } else {
        results[lead] = PlanViaCoreCover(vs, queries[lead], model, serial_cc,
                                         canon[lead].get(), &entry);
      }
    } else {
      results[lead] = PlanViaCoreCover(vs, queries[lead], model, serial_cc,
                                       nullptr, nullptr);
    }
    // In-flight deduplication: duplicates reuse the representative's entry
    // directly (robust against concurrent eviction) and count as hits.
    for (size_t k = 1; k < members.size(); ++k) {
      const size_t idx = members[k];
      VBR_CHECK(canon[idx] != nullptr);
      if (entry == nullptr) {
        // The representative's run exhausted its budget, so nothing was
        // cached (a partial rewriting enumeration must not poison its
        // duplicates); each duplicate plans on its own budget instead.
        results[idx] = PlanViaCoreCover(vs, queries[idx], model, serial_cc,
                                        canon[idx].get(), nullptr);
        continue;
      }
      Substitution transport;
      if (canon[idx]->fingerprint.canonical == entry->fingerprint.canonical) {
        transport = canon[idx]->from_canonical;
      } else {
        auto iso = FindIsomorphism(entry->minimized, canon[idx]->minimized);
        VBR_CHECK_MSG(iso.has_value(),
                      "batched duplicate is not isomorphic to its leader");
        transport = std::move(*iso);
      }
      cache_->RecordDedupHit();
      results[idx] = PlanFromEntry(vs, queries[idx], model, *entry, transport);
    }
  });
  return results;
}

void ViewPlanner::ReplaceViews(ViewSet views, Database view_instances) {
  for (const View& v : views) {
    VBR_CHECK_MSG(v.IsSafe(), "unsafe view definition");
  }
  // Serialize swaps so the (epoch bump, snapshot publish) pairs of two
  // concurrent calls cannot interleave: the published snapshot always
  // carries the cache's current epoch.
  std::lock_guard<std::mutex> replace_lock(replace_mu_);
  // Bump FIRST: from this instant, in-flight requests pinned to the old
  // snapshot can no longer insert (their epoch is stale), and any entry
  // they race in around the bump is dropped by Lookup.
  const uint64_t epoch = cache_->BumpEpoch();
  // Containment verdicts never go stale (they depend only on the two
  // queries), but the old view bodies stop recurring once the set is
  // swapped, so drop the memo rather than letting dead pairs occupy it.
  ContainmentMemo::Global().Clear();
  auto snapshot = std::make_shared<ViewSnapshot>();
  snapshot->views = std::move(views);
  snapshot->instances = std::move(view_instances);
  snapshot->epoch = epoch;
  snapshot->delta_epoch = cache_->delta_epoch();
  if (options_.core_cover.use_view_index) {
    snapshot->index = std::make_shared<ViewIndex>(snapshot->views);
  }
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(snapshot);
}

void ViewPlanner::AddViews(ViewSet added, Database added_instances) {
  for (const View& v : added) {
    VBR_CHECK_MSG(v.IsSafe(), "unsafe view definition");
  }
  if (added.empty()) return;
  // Serialized with ReplaceViews and other deltas: (fence, publish) pairs
  // must not interleave.
  std::lock_guard<std::mutex> replace_lock(replace_mu_);
  const std::shared_ptr<const ViewSnapshot> cur = CurrentSnapshot();
  std::vector<ViewSummary> changed;
  changed.reserve(added.size());
  for (const View& v : added) changed.push_back(SummarizeView(v));
  // Fence BEFORE publish: once a request can pin the new catalog, any
  // lookup it issues already sees the fence, so a pre-delta entry for a
  // query the added views could serve is never returned to it.
  const uint64_t delta_epoch = cache_->RecordDelta(std::move(changed));
  auto snapshot = std::make_shared<ViewSnapshot>();
  snapshot->views = cur->views;
  snapshot->views.insert(snapshot->views.end(), added.begin(), added.end());
  snapshot->instances = cur->instances;
  snapshot->instances.MergeFrom(added_instances);
  snapshot->epoch = cur->epoch;
  snapshot->delta_epoch = delta_epoch;
  if (options_.core_cover.use_view_index) {
    // Incremental: existing views keep their summaries and postings; the
    // added views append (their ids continue the catalog numbering).
    snapshot->index = cur->index != nullptr
                          ? cur->index->WithAdded(added)
                          : std::make_shared<ViewIndex>(snapshot->views);
  }
  // The ContainmentMemo stays: its verdicts depend only on the two queries
  // compared, and the surviving views keep recurring.
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(snapshot);
}

size_t ViewPlanner::RemoveViews(const std::vector<std::string>& names) {
  if (names.empty()) return 0;
  std::unordered_set<Symbol> doomed;
  for (const std::string& name : names) {
    doomed.insert(SymbolTable::Global().Intern(name));
  }
  std::lock_guard<std::mutex> replace_lock(replace_mu_);
  const std::shared_ptr<const ViewSnapshot> cur = CurrentSnapshot();
  std::vector<size_t> keep;
  std::vector<ViewSummary> changed;
  std::vector<Symbol> removed_predicates;
  keep.reserve(cur->views.size());
  for (size_t i = 0; i < cur->views.size(); ++i) {
    const Symbol head = cur->views[i].head().predicate();
    if (doomed.count(head) > 0) {
      changed.push_back(SummarizeView(cur->views[i]));
      removed_predicates.push_back(head);
    } else {
      keep.push_back(i);
    }
  }
  const size_t removed = cur->views.size() - keep.size();
  if (removed == 0) return 0;  // nothing matched: no fence, no new snapshot
  const uint64_t delta_epoch = cache_->RecordDelta(std::move(changed));
  auto snapshot = std::make_shared<ViewSnapshot>();
  snapshot->views.reserve(keep.size());
  for (size_t i : keep) snapshot->views.push_back(cur->views[i]);
  snapshot->instances = cur->instances;
  for (Symbol predicate : removed_predicates) {
    snapshot->instances.Remove(predicate);
  }
  snapshot->epoch = cur->epoch;
  snapshot->delta_epoch = delta_epoch;
  if (options_.core_cover.use_view_index) {
    snapshot->index = cur->index != nullptr
                          ? cur->index->WithRemoved(keep)
                          : std::make_shared<ViewIndex>(snapshot->views);
  }
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(snapshot);
  return removed;
}

Relation ViewPlanner::Execute(const PlanChoice& choice) const {
  return ExecutePlan(choice.physical, CurrentSnapshot()->instances).answer;
}

std::optional<Relation> ViewPlanner::Answer(
    const ConjunctiveQuery& query) const {
  // Plan and execute against ONE pinned snapshot so the answer is computed
  // over the same instances the plan was costed on.
  const std::shared_ptr<const ViewSnapshot> snapshot = CurrentSnapshot();
  PlanResult result =
      PlanInternal(*snapshot, query, CostModel::kM2, TraceContext{}, nullptr);
  if (!result.ok()) return std::nullopt;
  return ExecutePlan(result.choice->physical, snapshot->instances).answer;
}

PlanCacheCounters ViewPlanner::cache_counters() const {
  return cache_->counters();
}

size_t ViewPlanner::cache_size() const { return cache_->size(); }

uint64_t ViewPlanner::cache_epoch() const { return cache_->epoch(); }

uint64_t ViewPlanner::delta_epoch() const { return cache_->delta_epoch(); }

}  // namespace vbr
