#include "planner/service.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/json.h"
#include "common/metrics.h"
#include "planner/snapshot.h"

namespace vbr {

namespace {

// The brown-out ladder's service-time instruments, resolved once.
struct ServiceMetrics {
  Counter* submitted;
  Counter* admitted;
  Counter* rejected;
  Counter* completed;
  Counter* shed;
  Counter* failed;
  Counter* retries;
  Counter* probes;
  Counter* deadline_misses;
  Counter* cache_only_hits;
  Counter* model_demotions;
  Histogram* queue_wait_us;
  Histogram* queue_wait_ms;
  Histogram* serve_us;

  static const ServiceMetrics& Get() {
    static const ServiceMetrics metrics = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      ServiceMetrics m;
      m.submitted = registry.GetCounter("service.submitted");
      m.admitted = registry.GetCounter("service.admitted");
      m.rejected = registry.GetCounter("service.rejected");
      m.completed = registry.GetCounter("service.completed");
      m.shed = registry.GetCounter("service.shed");
      m.failed = registry.GetCounter("service.failed");
      m.retries = registry.GetCounter("service.retries");
      m.probes = registry.GetCounter("service.probes");
      m.deadline_misses = registry.GetCounter("service.deadline_misses");
      m.cache_only_hits = registry.GetCounter("service.cache_only_hits");
      m.model_demotions = registry.GetCounter("service.model_demotions");
      m.queue_wait_us = registry.GetHistogram("service.queue_wait_us");
      // Millisecond-resolution twin of queue_wait_us, recorded for EVERY
      // dequeued request (served, expired, or shutdown-shed) so the
      // saturation bench can read queue pressure without instrumenting
      // callers.
      m.queue_wait_ms = registry.GetHistogram("service.queue_wait_ms");
      m.serve_us = registry.GetHistogram("service.serve_us");
      return m;
    }();
    return metrics;
  }
};

// The stricter of two limits, where 0 means "unlimited".
double StricterMs(double a, double b) {
  if (a <= 0) return b;
  if (b <= 0) return a;
  return std::min(a, b);
}

uint64_t StricterUnits(uint64_t a, uint64_t b) {
  if (a == 0) return b;
  if (b == 0) return a;
  return std::min(a, b);
}

}  // namespace

const char* PlanningService::ServiceStatusName(ServiceStatus status) {
  switch (status) {
    case ServiceStatus::kOk:
      return "ok";
    case ServiceStatus::kRejected:
      return "rejected";
    case ServiceStatus::kShed:
      return "shed";
    case ServiceStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

const char* PlanningService::RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kQueueFull:
      return "queue_full";
    case RejectReason::kDeadlineUnmeetable:
      return "deadline_unmeetable";
    case RejectReason::kOverloaded:
      return "overloaded";
    case RejectReason::kShuttingDown:
      return "shutting_down";
  }
  return "unknown";
}

std::string PlanningService::Stats::ToString() const {
  std::ostringstream out;
  out << "service.submitted " << submitted << "\n"
      << "service.admitted " << admitted << "\n"
      << "service.completed " << completed << "\n"
      << "service.shed " << shed << "\n"
      << "service.failed " << failed << "\n"
      << "service.rejected " << rejected << "\n"
      << "service.rejected_queue_full " << rejected_queue_full << "\n"
      << "service.rejected_deadline " << rejected_deadline << "\n"
      << "service.rejected_overload " << rejected_overload << "\n"
      << "service.rejected_shutdown " << rejected_shutdown << "\n"
      << "service.retries " << retries << "\n"
      << "service.probes " << probes << "\n"
      << "service.deadline_misses " << deadline_misses << "\n"
      << "service.cache_only_hits " << cache_only_hits << "\n"
      << "service.model_demotions " << model_demotions << "\n"
      << "service.queue_depth " << queue_depth << "\n"
      << "service.breaker_level " << breaker_level << "\n"
      << "service.breaker_trips " << breaker_trips << "\n"
      << "service.breaker_recoveries " << breaker_recoveries << "\n"
      << "service.service_time_estimate_ms " << service_time_estimate_ms
      << "\n";
  return out.str();
}

std::string PlanningService::Stats::ToJson() const {
  std::ostringstream out;
  out << "{\"submitted\":" << submitted << ",\"admitted\":" << admitted
      << ",\"completed\":" << completed << ",\"shed\":" << shed
      << ",\"failed\":" << failed << ",\"rejected\":" << rejected
      << ",\"rejected_queue_full\":" << rejected_queue_full
      << ",\"rejected_deadline\":" << rejected_deadline
      << ",\"rejected_overload\":" << rejected_overload
      << ",\"rejected_shutdown\":" << rejected_shutdown
      << ",\"retries\":" << retries << ",\"probes\":" << probes
      << ",\"deadline_misses\":" << deadline_misses
      << ",\"cache_only_hits\":" << cache_only_hits
      << ",\"model_demotions\":" << model_demotions
      << ",\"queue_depth\":" << queue_depth
      << ",\"breaker_level\":" << breaker_level
      << ",\"breaker_trips\":" << breaker_trips
      << ",\"breaker_recoveries\":" << breaker_recoveries
      << ",\"service_time_estimate_ms\":" << service_time_estimate_ms << "}";
  return out.str();
}

std::string PlanningService::PlanResponse::ToJson() const {
  std::string s = "{";
  s += "\"service_status\":\"" + std::string(ServiceStatusName(status)) + "\"";
  s += ",\"reject_reason\":\"" + std::string(RejectReasonName(reject_reason)) +
       "\"";
  s += ",\"attempts\":" + std::to_string(attempts);
  s += ",\"service_level\":" + std::to_string(service_level);
  s += ",\"served_from_cache_only\":" +
       std::string(served_from_cache_only ? "true" : "false");
  s += ",\"model_demoted\":" + std::string(model_demoted ? "true" : "false");
  s += ",\"queue_wait_ms\":" + std::to_string(queue_wait_ms);
  s += ",\"error\":\"" + JsonEscape(error) + "\"";
  s += ",\"result\":";
  s += status == ServiceStatus::kOk ? result.ToJson() : "null";
  s += "}";
  return s;
}

PlanningService::PlanningService(const ViewPlanner* planner, Options options)
    : planner_(planner),
      options_(std::move(options)),
      breaker_(options_.breaker) {
  VBR_CHECK_MSG(planner_ != nullptr, "service needs a planner");
  VBR_CHECK_MSG(options_.num_workers >= 1, "service needs a worker");
  VBR_CHECK_MSG(options_.max_queue >= 1, "service needs a queue slot");
  VBR_CHECK_MSG(options_.retry.max_attempts >= 1,
                "retry.max_attempts counts the first attempt");
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

PlanningService::~PlanningService() { Shutdown(DrainMode::kDrain); }

void PlanningService::Fulfill(Request& request, PlanResponse response) {
  if (request.callback) {
    request.callback(std::move(response));
  } else {
    request.promise.set_value(std::move(response));
  }
}

std::future<PlanningService::PlanResponse> PlanningService::Submit(
    PlanRequest request) {
  return SubmitInternal(std::move(request), nullptr);
}

void PlanningService::SubmitWithCallback(
    PlanRequest request, std::function<void(PlanResponse)> done) {
  VBR_CHECK_MSG(done != nullptr, "SubmitWithCallback needs a callback");
  SubmitInternal(std::move(request), std::move(done));
}

std::future<PlanningService::PlanResponse> PlanningService::SubmitInternal(
    PlanRequest request, std::function<void(PlanResponse)> done) {
  const ServiceMetrics& metrics = ServiceMetrics::Get();
  metrics.submitted->Increment();
  if (options_.request_log != nullptr) {
    // Record the request's OWN options, pre-merge, so a replay through a
    // differently-configured service still submits what the client asked.
    options_.request_log->Append(request.query, request.options);
  }
  // The promise/future pair is only armed for future-style submissions;
  // callback submissions leave the future in a default (invalid) state the
  // caller never sees.
  std::promise<PlanResponse> promise;
  std::future<PlanResponse> future;
  if (done == nullptr) future = promise.get_future();

  RejectReason reject = RejectReason::kNone;
  bool probe = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (stopping_) {
      reject = RejectReason::kShuttingDown;
    } else {
      switch (breaker_.Admit()) {
        case CircuitBreaker::Admission::kAdmit:
          break;
        case CircuitBreaker::Admission::kProbe:
          probe = true;
          break;
        case CircuitBreaker::Admission::kReject:
          reject = RejectReason::kOverloaded;
          break;
      }
    }
    if (reject == RejectReason::kNone && request.options.deadline_ms > 0) {
      // Provably-unmeetable deadline: with `queue_depth` requests ahead and
      // num_workers servers, this request waits roughly
      // ceil(depth / workers) service times before its own begins.
      const double estimate = options_.assumed_service_ms > 0
                                  ? options_.assumed_service_ms
                                  : (ewma_valid_ ? ewma_service_ms_ : 0);
      if (estimate > 0) {
        const double ahead = static_cast<double>(
            queue_.size() / options_.num_workers + 1);
        if (ahead * estimate > request.options.deadline_ms) {
          reject = RejectReason::kDeadlineUnmeetable;
        }
      }
    }
    if (reject == RejectReason::kNone && queue_.size() >= options_.max_queue) {
      reject = RejectReason::kQueueFull;
    }

    if (reject == RejectReason::kNone) {
      ++stats_.admitted;
      if (probe) ++stats_.probes;
      auto queued = std::make_unique<Request>();
      queued->request = std::move(request);
      queued->promise = std::move(promise);
      queued->callback = std::move(done);
      queued->probe = probe;
      queued->id = next_id_++;
      queue_.push_back(std::move(queued));
      VBR_CHECK(queue_.size() <= options_.max_queue);
      metrics.admitted->Increment();
      if (probe) metrics.probes->Increment();
      cv_.notify_one();
      return future;
    }

    ++stats_.rejected;
    switch (reject) {
      case RejectReason::kQueueFull:
        ++stats_.rejected_queue_full;
        break;
      case RejectReason::kDeadlineUnmeetable:
        ++stats_.rejected_deadline;
        break;
      case RejectReason::kOverloaded:
        ++stats_.rejected_overload;
        break;
      case RejectReason::kShuttingDown:
        ++stats_.rejected_shutdown;
        break;
      case RejectReason::kNone:
        break;
    }
  }
  metrics.rejected->Increment();
  // Rejections are NOT recorded in the breaker: a breaker fed by its own
  // rejections can never observe recovery.
  PlanResponse response;
  response.status = ServiceStatus::kRejected;
  response.reject_reason = reject;
  response.error = RejectReasonName(reject);
  if (done != nullptr) {
    // Rejected callback submissions complete inline on the caller's thread.
    done(std::move(response));
  } else {
    promise.set_value(std::move(response));
  }
  return future;
}

PlanningService::PlanResponse PlanningService::Plan(PlanRequest request) {
  return Submit(std::move(request)).get();
}

PlanningService::PlanResponse PlanningService::Plan(ConjunctiveQuery query,
                                                    CostModel model) {
  PlanRequest request;
  request.query = std::move(query);
  request.options.model = model;
  return Plan(std::move(request));
}

void PlanningService::WorkerLoop() {
  for (;;) {
    std::unique_ptr<Request> request;
    bool shed_pending = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      request = std::move(queue_.front());
      queue_.pop_front();
      shed_pending = stopping_ && drain_mode_ == DrainMode::kShedPending;
    }
    // Every dequeued request records its queue wait, whatever its fate —
    // the ms histogram is the saturation bench's queue-pressure signal.
    ServiceMetrics::Get().queue_wait_ms->Record(
        static_cast<uint64_t>(request->queued.ElapsedMillis()));
    if (shed_pending) {
      // Shutdown policy, not a health signal: do not feed the breaker.
      Shed(*request, "shutdown shed the pending queue",
           /*record_failure=*/false);
    } else {
      Serve(*request);
    }
  }
}

uint32_t PlanningService::EffectiveLevel() const {
  // Requests that reach a worker were admitted (possibly as probes), so the
  // reject rung never executes; clamp to the rung below it.
  return std::min(breaker_.level(), breaker_.reject_level() - 1);
}

ResourceLimits PlanningService::AttemptLimits(
    uint32_t level, double remaining_ms,
    const PlanRequestOptions& request) const {
  // Service-wide cap tightened by the request's own budget: a client can
  // narrow its request but never widen the operator's limits.
  ResourceLimits limits = options_.budget;
  limits.work_limit = StricterUnits(limits.work_limit, request.work_limit);
  limits.memory_limit_bytes =
      StricterUnits(limits.memory_limit_bytes, request.memory_limit_bytes);
  limits.search_node_cap =
      StricterUnits(limits.search_node_cap, request.search_node_cap);
  if (level >= 2) {
    const ResourceLimits& shrunken = options_.brownout_budget;
    limits.deadline_ms = StricterMs(limits.deadline_ms, shrunken.deadline_ms);
    limits.work_limit = StricterUnits(limits.work_limit, shrunken.work_limit);
    limits.memory_limit_bytes =
        StricterUnits(limits.memory_limit_bytes, shrunken.memory_limit_bytes);
    limits.search_node_cap =
        StricterUnits(limits.search_node_cap, shrunken.search_node_cap);
  }
  if (remaining_ms > 0) {
    limits.deadline_ms = StricterMs(limits.deadline_ms, remaining_ms);
  }
  return limits;
}

void PlanningService::Shed(Request& request, const std::string& why,
                           bool record_failure) {
  PlanResponse response;
  response.status = ServiceStatus::kShed;
  response.queue_wait_ms = request.queued.ElapsedMillis();
  response.error = why;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.shed;
  }
  ServiceMetrics::Get().shed->Increment();
  if (record_failure) breaker_.RecordFailure();
  Fulfill(request, std::move(response));
}

void PlanningService::Serve(Request& request) {
  const ServiceMetrics& metrics = ServiceMetrics::Get();
  const double waited_ms = request.queued.ElapsedMillis();
  metrics.queue_wait_us->Record(static_cast<uint64_t>(waited_ms * 1000.0));
  const double deadline_ms = request.request.options.deadline_ms;
  if (deadline_ms > 0 && waited_ms >= deadline_ms) {
    // Too late to be useful; shedding now is cheaper than planning a result
    // nobody is waiting for. Queue-deadline misses are a genuine overload
    // signal, so they DO feed the breaker.
    Shed(request, "deadline expired while queued", /*record_failure=*/true);
    return;
  }

  const Timer serve_timer;
  const uint32_t level = EffectiveLevel();
  PlanResponse response;
  response.service_level = level;
  response.queue_wait_ms = waited_ms;

  // Rung 1: shed tracing (and EXPLAIN-style extras) before planning work.
  TraceContext trace;
  std::optional<TraceSpan> span;
  if (request.request.trace != nullptr && level < 1) {
    span.emplace(request.request.trace, "service.request");
    span->AddAttribute("level", static_cast<uint64_t>(level));
    span->AddAttribute("model", CostModelName(request.request.options.model));
    if (request.probe) span->AddAttribute("probe", true);
    trace = span->context();
  }

  CostModel model = request.request.options.model;
  bool served = false;
  // Rung 3: cached-or-M1-only. Warm traffic is still answered (a cache hit
  // re-costs but never searches); cold traffic is demoted to M1, the
  // instance-independent model with the cheapest costing loop.
  if (level >= 3) {
    if (std::optional<ViewPlanner::PlanResult> cached =
            planner_->TryPlanFromCache(request.request.query, model)) {
      response.result = std::move(*cached);
      response.served_from_cache_only = true;
      served = true;
      metrics.cache_only_hits->Increment();
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.cache_only_hits;
    } else if (model != CostModel::kM1) {
      model = CostModel::kM1;
      response.model_demoted = true;
      metrics.model_demotions->Increment();
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.model_demotions;
    }
  }

  uint32_t attempts = 0;
  if (!served) {
    for (;;) {
      ++attempts;
      const double remaining_ms =
          deadline_ms > 0
              ? std::max(0.001, deadline_ms - request.queued.ElapsedMillis())
              : 0;
      const ResourceLimits limits =
          AttemptLimits(level, remaining_ms, request.request.options);
      // Rung 2 (and the deadline) act through the governor installed here;
      // the planner's own Options::budget is typically unlimited in service
      // deployments, so this governor is the one its pipeline observes.
      std::optional<ResourceGovernor> governor;
      std::optional<GovernorScope> scope;
      if (!limits.unlimited()) {
        governor.emplace(limits);
        scope.emplace(&*governor);
      }
      response.result = planner_->Plan(request.request.query, model, trace);
      const bool transient =
          response.result.status == PlanStatus::kBudgetExhausted &&
          response.result.exhaustion.kind == BudgetKind::kInjected;
      if (!transient || attempts >= options_.retry.max_attempts) break;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.retries;
      }
      metrics.retries->Increment();
      const double delay_ms =
          options_.retry.DelayMs(attempts, options_.retry_seed + request.id);
      if (options_.sleep_ms) {
        options_.sleep_ms(delay_ms);
      } else if (delay_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
      }
    }
  }
  response.attempts = attempts;

  // Terminal classification. A transient (injected) fault that survived
  // every retry is a service FAILURE; genuine budget exhaustion is an
  // answer (the caller gets the planner's account), though it still feeds
  // the breaker as a degradation signal.
  const bool persistent_fault =
      !served && response.result.status == PlanStatus::kBudgetExhausted &&
      response.result.exhaustion.kind == BudgetKind::kInjected;
  bool breaker_failure;
  if (persistent_fault) {
    response.status = ServiceStatus::kFailed;
    response.error = "transient fault persisted across " +
                     std::to_string(attempts) + " attempts: " +
                     response.result.error;
    breaker_failure = true;
  } else {
    response.status = ServiceStatus::kOk;
    breaker_failure =
        response.result.status == PlanStatus::kBudgetExhausted;
  }
  const double total_ms = request.queued.ElapsedMillis();
  const bool missed_deadline = deadline_ms > 0 && total_ms > deadline_ms;
  if (missed_deadline) breaker_failure = true;

  const double serve_ms = serve_timer.ElapsedMillis();
  metrics.serve_us->Record(static_cast<uint64_t>(serve_ms * 1000.0));
  if (missed_deadline) metrics.deadline_misses->Increment();
  (response.status == ServiceStatus::kOk ? metrics.completed
                                         : metrics.failed)
      ->Increment();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (response.status == ServiceStatus::kOk) {
      ++stats_.completed;
    } else {
      ++stats_.failed;
    }
    if (missed_deadline) ++stats_.deadline_misses;
    // EWMA of observed service times, feeding the admission estimate.
    ewma_service_ms_ =
        ewma_valid_ ? 0.8 * ewma_service_ms_ + 0.2 * serve_ms : serve_ms;
    ewma_valid_ = true;
  }
  if (breaker_failure) {
    breaker_.RecordFailure();
  } else {
    breaker_.RecordSuccess();
  }

  if (span) {
    span->AddAttribute("status", ServiceStatusName(response.status));
    span->AddAttribute("attempts", static_cast<uint64_t>(attempts));
    if (response.status == ServiceStatus::kOk) {
      span->AddAttribute("plan_status",
                         PlanStatusName(response.result.status));
    }
    // Flush before fulfilling the promise: once the future is ready the
    // caller may tear the sink down.
    span.reset();
  }
  Fulfill(request, std::move(response));
}

void PlanningService::Shutdown(DrainMode mode) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      stopping_ = true;
      drain_mode_ = mode;  // first caller's policy wins
    }
  }
  cv_.notify_all();
  // joinable() goes false after the first join, so a second Shutdown (the
  // destructor, typically) passes through without re-joining.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  VBR_CHECK_MSG(queue_.empty(), "workers exited with requests still queued");
}

PlanningService::Stats PlanningService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats snapshot = stats_;
  snapshot.queue_depth = queue_.size();
  snapshot.breaker_level = breaker_.level();
  snapshot.breaker_trips = breaker_.trips();
  snapshot.breaker_recoveries = breaker_.recoveries();
  snapshot.service_time_estimate_ms = ewma_valid_ ? ewma_service_ms_ : 0;
  return snapshot;
}

}  // namespace vbr
