#include "planner/plan_cache.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace vbr {

std::optional<EquivalenceCertificate> CachedPlan::certificate(
    size_t index) const {
  std::lock_guard<std::mutex> lock(cert_mu_);
  if (index >= certificates_.size()) return std::nullopt;
  return certificates_[index];
}

void CachedPlan::StoreCertificate(size_t index,
                                  EquivalenceCertificate certificate) const {
  std::lock_guard<std::mutex> lock(cert_mu_);
  if (certificates_.size() < rewritings.size()) {
    certificates_.resize(rewritings.size());
  }
  VBR_CHECK(index < certificates_.size());
  if (!certificates_[index].has_value()) {
    certificates_[index] = std::move(certificate);
  }
}

PlanCache::PlanCache(size_t capacity, size_t num_shards)
    : capacity_(std::max<size_t>(capacity, 1)),
      shard_capacity_(std::max<size_t>(
          capacity_ / std::max<size_t>(std::min(num_shards, capacity_), 1),
          1)),
      shards_(std::max<size_t>(std::min(num_shards, capacity_), 1)) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  hits_.global = registry.GetCounter("planner.cache.hits");
  misses_.global = registry.GetCounter("planner.cache.misses");
  insertions_.global = registry.GetCounter("planner.cache.insertions");
  evictions_.global = registry.GetCounter("planner.cache.evictions");
}

void PlanCache::RecordDedupHit() { hits_.Increment(); }

void PlanCache::Erase(Shard& shard, std::list<Node>::iterator it) {
  const uint64_t hash = it->entry->fingerprint.hash;
  auto [begin, end] = shard.index.equal_range(hash);
  for (auto idx = begin; idx != end; ++idx) {
    if (idx->second == it) {
      shard.index.erase(idx);
      break;
    }
  }
  shard.lru.erase(it);
}

PlanCache::EntryPtr PlanCache::Lookup(
    const QueryFingerprint& fp, CostModel model,
    const ConjunctiveQuery& minimized,
    std::optional<Substitution>* fallback_transport, uint64_t epoch) {
  fallback_transport->reset();
  if (epoch == kCurrentEpoch) epoch = this->epoch();
  Shard& shard = ShardFor(fp.hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  const uint64_t current = this->epoch();
  auto [begin, end] = shard.index.equal_range(fp.hash);
  for (auto idx = begin; idx != end;) {
    const auto it = idx->second;
    if (it->epoch != epoch) {
      ++idx;  // advance before Erase invalidates this index iterator
      if (it->epoch != current) {
        // Straggler from before a view-set change; drop it. (An entry from
        // the CURRENT epoch is kept even when the caller is pinned to an
        // older snapshot — it is valid for everyone else.)
        evictions_.Increment();
        Erase(shard, it);
      }
      continue;
    }
    if (it->model == model) {
      bool match = it->entry->fingerprint.canonical == fp.canonical;
      if (!match && (!fp.exact || !it->entry->fingerprint.exact)) {
        // Inexact labeling on either side: the canonical strings may
        // disagree even for isomorphic queries, so decide by search.
        auto iso = FindIsomorphism(it->entry->minimized, minimized);
        if (iso.has_value()) {
          *fallback_transport = std::move(iso);
          match = true;
        }
      }
      if (match) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it);
        hits_.Increment();
        return it->entry;
      }
    }
    ++idx;
  }
  misses_.Increment();
  return nullptr;
}

void PlanCache::Insert(CostModel model, EntryPtr entry, uint64_t epoch) {
  VBR_CHECK(entry != nullptr);
  if (epoch == kCurrentEpoch) {
    epoch = this->epoch();
  } else if (epoch != this->epoch()) {
    // The planning run raced a ReplaceViews: its outcome describes a
    // retired view set, so caching it would serve stale plans.
    return;
  }
  const uint64_t hash = entry->fingerprint.hash;
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  // Refresh an existing node for the same key rather than duplicating it.
  auto [begin, end] = shard.index.equal_range(hash);
  for (auto idx = begin; idx != end; ++idx) {
    const auto it = idx->second;
    if (it->model == model && it->epoch == epoch &&
        it->entry->fingerprint.canonical == entry->fingerprint.canonical) {
      it->entry = std::move(entry);
      shard.lru.splice(shard.lru.begin(), shard.lru, it);
      return;
    }
  }
  shard.lru.push_front(Node{model, epoch, std::move(entry)});
  shard.index.emplace(hash, shard.lru.begin());
  insertions_.Increment();
  while (shard.lru.size() > shard_capacity_) {
    evictions_.Increment();
    Erase(shard, std::prev(shard.lru.end()));
  }
}

std::vector<std::pair<CostModel, PlanCache::EntryPtr>>
PlanCache::ExportEntries() const {
  const uint64_t current = epoch();
  std::vector<std::pair<CostModel, EntryPtr>> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    // Front = most recently used; walk back-to-front for coldest-first.
    for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
      if (it->epoch != current) continue;
      out.emplace_back(it->model, it->entry);
    }
  }
  return out;
}

uint64_t PlanCache::BumpEpoch() {
  const uint64_t next = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  // Purge eagerly so invalidated entries stop occupying capacity. Lookup
  // also skips (and drops) any straggler inserted around the bump.
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    evictions_.Add(shard.lru.size());
    shard.index.clear();
    shard.lru.clear();
  }
  return next;
}

size_t PlanCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

PlanCacheCounters PlanCache::counters() const {
  PlanCacheCounters c;
  c.hits = hits_.local.value();
  c.misses = misses_.local.value();
  c.insertions = insertions_.local.value();
  c.evictions = evictions_.local.value();
  return c;
}

void PlanCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.index.clear();
    shard.lru.clear();
  }
}

}  // namespace vbr
