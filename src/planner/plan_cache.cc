#include "planner/plan_cache.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace vbr {

std::optional<EquivalenceCertificate> CachedPlan::certificate(
    size_t index) const {
  std::lock_guard<std::mutex> lock(cert_mu_);
  if (index >= certificates_.size()) return std::nullopt;
  return certificates_[index];
}

void CachedPlan::StoreCertificate(size_t index,
                                  EquivalenceCertificate certificate) const {
  std::lock_guard<std::mutex> lock(cert_mu_);
  if (certificates_.size() < rewritings.size()) {
    certificates_.resize(rewritings.size());
  }
  VBR_CHECK(index < certificates_.size());
  if (!certificates_[index].has_value()) {
    certificates_[index] = std::move(certificate);
  }
}

PlanCache::PlanCache(size_t capacity, size_t num_shards)
    : capacity_(std::max<size_t>(capacity, 1)),
      shard_capacity_(std::max<size_t>(
          capacity_ / std::max<size_t>(std::min(num_shards, capacity_), 1),
          1)),
      shards_(std::max<size_t>(std::min(num_shards, capacity_), 1)) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  hits_.global = registry.GetCounter("planner.cache.hits");
  misses_.global = registry.GetCounter("planner.cache.misses");
  insertions_.global = registry.GetCounter("planner.cache.insertions");
  evictions_.global = registry.GetCounter("planner.cache.evictions");
}

void PlanCache::RecordDedupHit() { hits_.Increment(); }

void PlanCache::Erase(Shard& shard, std::list<Node>::iterator it) {
  const uint64_t hash = it->entry->fingerprint.hash;
  auto [begin, end] = shard.index.equal_range(hash);
  for (auto idx = begin; idx != end; ++idx) {
    if (idx->second == it) {
      shard.index.erase(idx);
      break;
    }
  }
  shard.lru.erase(it);
}

bool PlanCache::EntryValidAcrossDeltas(const CachedPlan& entry, uint64_t a,
                                       uint64_t b) const {
  if (a == b) return true;
  const uint64_t lo = std::min(a, b);
  const uint64_t hi = std::max(a, b);
  std::lock_guard<std::mutex> lock(fence_mu_);
  // Part of the (lo, hi] range predates the retained fence history: the
  // changed views are unknown, so the entry must read as invalidated.
  if (lo < evicted_fences_upto_) return false;
  std::optional<QueryBodySummary> q;
  for (const DeltaFence& fence : fences_) {
    if (fence.id <= lo || fence.id > hi) continue;
    if (!q.has_value()) q = SummarizeQueryBody(entry.minimized);
    for (const ViewSummary& changed : fence.changed) {
      // A changed view that is a kCoverAll candidate for the entry's
      // minimized query could appear in (or newly enable) a rewriting;
      // anything else provably contributes no view tuple, so the cached
      // outcome is identical on both sides of the fence. The minimized
      // query's summary is renaming-invariant, so testing the cached
      // canonical-space copy is exact. (MiniCon-fallback outcomes are
      // never cached — planner.cc — so kCoverAll is the right mode.)
      if (ViewMayContribute(changed, *q, CandidateMode::kCoverAll)) {
        return false;
      }
    }
  }
  return true;
}

PlanCache::EntryPtr PlanCache::Lookup(
    const QueryFingerprint& fp, CostModel model,
    const ConjunctiveQuery& minimized,
    std::optional<Substitution>* fallback_transport, uint64_t epoch,
    uint64_t delta_epoch) {
  fallback_transport->reset();
  if (epoch == kCurrentEpoch) epoch = this->epoch();
  if (delta_epoch == kCurrentDeltaEpoch) delta_epoch = this->delta_epoch();
  Shard& shard = ShardFor(fp.hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  const uint64_t current = this->epoch();
  const uint64_t current_delta = this->delta_epoch();
  auto [begin, end] = shard.index.equal_range(fp.hash);
  for (auto idx = begin; idx != end;) {
    const auto it = idx->second;
    if (it->epoch != epoch) {
      ++idx;  // advance before Erase invalidates this index iterator
      if (it->epoch != current) {
        // Straggler from before a view-set change; drop it. (An entry from
        // the CURRENT epoch is kept even when the caller is pinned to an
        // older snapshot — it is valid for everyone else.)
        evictions_.Increment();
        Erase(shard, it);
      }
      continue;
    }
    if (it->model == model) {
      bool match = it->entry->fingerprint.canonical == fp.canonical;
      if (!match && (!fp.exact || !it->entry->fingerprint.exact)) {
        // Inexact labeling on either side: the canonical strings may
        // disagree even for isomorphic queries, so decide by search.
        auto iso = FindIsomorphism(it->entry->minimized, minimized);
        if (iso.has_value()) {
          *fallback_transport = std::move(iso);
          match = true;
        }
      }
      if (match &&
          !EntryValidAcrossDeltas(*it->entry, it->delta_epoch, delta_epoch)) {
        // A delta between the entry's catalog and the caller's could have
        // changed this query's candidate set: not servable here.
        fallback_transport->reset();
        ++idx;
        if (!EntryValidAcrossDeltas(*it->entry, it->delta_epoch,
                                    current_delta)) {
          // ... and not servable to anyone at the current delta epoch
          // either — permanently stale, drop it. (Kept when only the
          // CALLER is pinned behind the delta; the entry still serves
          // everyone else.)
          evictions_.Increment();
          Erase(shard, it);
        }
        continue;
      }
      if (match) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it);
        hits_.Increment();
        return it->entry;
      }
    }
    ++idx;
  }
  misses_.Increment();
  return nullptr;
}

void PlanCache::Insert(CostModel model, EntryPtr entry, uint64_t epoch,
                       uint64_t delta_epoch) {
  VBR_CHECK(entry != nullptr);
  if (epoch == kCurrentEpoch) {
    epoch = this->epoch();
  } else if (epoch != this->epoch()) {
    // The planning run raced a ReplaceViews: its outcome describes a
    // retired view set, so caching it would serve stale plans.
    return;
  }
  if (delta_epoch == kCurrentDeltaEpoch) delta_epoch = this->delta_epoch();
  const uint64_t hash = entry->fingerprint.hash;
  Shard& shard = ShardFor(hash);
  std::lock_guard<std::mutex> lock(shard.mu);
  // Refresh an existing node for the same key rather than duplicating it.
  auto [begin, end] = shard.index.equal_range(hash);
  for (auto idx = begin; idx != end; ++idx) {
    const auto it = idx->second;
    if (it->model == model && it->epoch == epoch &&
        it->entry->fingerprint.canonical == entry->fingerprint.canonical) {
      // Entry and its delta epoch move together: stamping the old content
      // with the new delta epoch (or vice versa) would launder a stale
      // plan past the fence check.
      it->entry = std::move(entry);
      it->delta_epoch = delta_epoch;
      shard.lru.splice(shard.lru.begin(), shard.lru, it);
      return;
    }
  }
  shard.lru.push_front(Node{model, epoch, delta_epoch, std::move(entry)});
  shard.index.emplace(hash, shard.lru.begin());
  insertions_.Increment();
  while (shard.lru.size() > shard_capacity_) {
    evictions_.Increment();
    Erase(shard, std::prev(shard.lru.end()));
  }
}

std::vector<std::pair<CostModel, PlanCache::EntryPtr>>
PlanCache::ExportEntries() const {
  const uint64_t current = epoch();
  const uint64_t current_delta = delta_epoch();
  std::vector<std::pair<CostModel, EntryPtr>> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    // Front = most recently used; walk back-to-front for coldest-first.
    for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
      if (it->epoch != current) continue;
      // A fence-stale entry Lookup would refuse to serve must not escape
      // into a snapshot (it would resurrect on load with a fresh delta
      // epoch and no fence history to convict it).
      if (!EntryValidAcrossDeltas(*it->entry, it->delta_epoch,
                                  current_delta)) {
        continue;
      }
      out.emplace_back(it->model, it->entry);
    }
  }
  return out;
}

uint64_t PlanCache::RecordDelta(std::vector<ViewSummary> changed_views) {
  std::lock_guard<std::mutex> lock(fence_mu_);
  const uint64_t next =
      delta_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  fences_.push_back(DeltaFence{next, std::move(changed_views)});
  while (fences_.size() > kMaxDeltaFences) {
    evicted_fences_upto_ = fences_.front().id;
    fences_.pop_front();
  }
  return next;
}

void PlanCache::AdvanceDeltaEpochTo(uint64_t delta_epoch) {
  std::lock_guard<std::mutex> lock(fence_mu_);
  uint64_t cur = delta_epoch_.load(std::memory_order_acquire);
  while (cur < delta_epoch &&
         !delta_epoch_.compare_exchange_weak(cur, delta_epoch,
                                             std::memory_order_acq_rel)) {
  }
}

uint64_t PlanCache::BumpEpoch() {
  const uint64_t next = epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  // Purge eagerly so invalidated entries stop occupying capacity. Lookup
  // also skips (and drops) any straggler inserted around the bump.
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    evictions_.Add(shard.lru.size());
    shard.index.clear();
    shard.lru.clear();
  }
  return next;
}

size_t PlanCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

PlanCacheCounters PlanCache::counters() const {
  PlanCacheCounters c;
  c.hits = hits_.local.value();
  c.misses = misses_.local.value();
  c.insertions = insertions_.local.value();
  c.evictions = evictions_.local.value();
  return c;
}

void PlanCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.index.clear();
    shard.lru.clear();
  }
}

}  // namespace vbr
