#ifndef VBR_PLANNER_REQUEST_OPTIONS_H_
#define VBR_PLANNER_REQUEST_OPTIONS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/budget.h"
#include "common/json.h"
#include "cost/cost_model.h"

namespace vbr {

// The one transport-neutral description of HOW a single planning request
// should be served: which cost model, how long it may run, and how much
// work/memory it may consume. Every entry point consumes the same struct —
// in-process ViewPlanner::Plan / PlanningService::Submit, vbr_cli flags,
// the binary wire protocol (net/frame.h), and the HTTP /plan endpoint —
// replacing the per-surface option structs that used to drift apart
// (ViewPlanner::Options' request budget, PlanningService::PlanRequest's
// model/deadline pair, ad-hoc CLI flag plumbing).
//
// All limits are "0 = unset": an unset field inherits the consumer's
// default (the planner's Options::budget, the service's Options::budget,
// the server's request_defaults), and when both sides set a field the
// STRICTER one wins — a client can always narrow its own request, never
// widen a server-side cap.
struct PlanRequestOptions {
  CostModel model = CostModel::kM2;
  // Wall-clock deadline measured from submission, ms; 0 = none. At the
  // service this feeds admission control, queue expiry, and the governor;
  // in-process it bounds the single Plan call.
  double deadline_ms = 0;
  // Work-unit budget (common/budget.h), 0 = unlimited.
  uint64_t work_limit = 0;
  // Tracked-allocation budget in bytes, 0 = unlimited.
  uint64_t memory_limit_bytes = 0;
  // Per-backtracking-search node cap, 0 = derived (see ResourceLimits).
  uint64_t search_node_cap = 0;

  bool operator==(const PlanRequestOptions&) const = default;

  // The governor limits these options describe (deadline included).
  ResourceLimits limits() const;

  // True when every budget field is unset (model aside).
  bool unlimited() const {
    return deadline_ms <= 0 && work_limit == 0 && memory_limit_bytes == 0 &&
           search_node_cap == 0;
  }

  // Field-wise merge with a second options struct acting as the default /
  // cap: unset fields inherit `other`'s value; fields set on both sides
  // take the stricter (smaller) one. `model` is not merged — the request's
  // model always stands.
  PlanRequestOptions StricterOf(const PlanRequestOptions& other) const;

  // One canonical JSON dialect, shared by the CLI, the HTTP endpoint, and
  // tests:
  //   {"model":"M2","deadline_ms":50,"work_limit":100000,
  //    "memory_limit_bytes":0,"search_node_cap":0}
  std::string ToJson() const;

  // Parses the dialect above. Absent members keep their defaults; unknown
  // members are rejected (the wire must not silently drop a limit a client
  // believes it set). On failure returns nullopt and fills `error`.
  static std::optional<PlanRequestOptions> FromJson(const JsonValue& value,
                                                    std::string* error);
  static std::optional<PlanRequestOptions> FromJsonText(std::string_view text,
                                                        std::string* error);
};

}  // namespace vbr

#endif  // VBR_PLANNER_REQUEST_OPTIONS_H_
