#include "rewrite/set_cover.h"

#include <algorithm>
#include <bit>
#include <set>

#include "common/check.h"

namespace vbr {

namespace {

// DFS on the lowest uncovered element: every minimal cover contains, for the
// lowest uncovered element, some set covering it, so branching over those
// sets reaches every minimal (hence every minimum) cover.
class CoverSearch {
 public:
  CoverSearch(uint64_t universe, const std::vector<uint64_t>& sets)
      : universe_(universe), sets_(sets) {
    for (size_t i = 0; i < sets_.size(); ++i) {
      if (sets_[i] != 0) nonempty_.push_back(i);
    }
  }

  // Enumerates covers of size exactly `depth_limit`, adding sorted index
  // vectors to `out` (deduplicated). Returns false if `max_out` was hit.
  bool EnumerateAtDepth(size_t depth_limit, size_t max_out,
                        std::set<std::vector<size_t>>* out) {
    depth_limit_ = depth_limit;
    max_out_ = max_out;
    out_ = out;
    chosen_.clear();
    return Dfs(universe_, /*require_exact=*/true);
  }

  // Enumerates all covers reached by the lowest-element branching with no
  // depth limit; the caller filters for minimality.
  bool EnumerateAll(size_t depth_limit, size_t max_out,
                    std::set<std::vector<size_t>>* out) {
    depth_limit_ = depth_limit;
    max_out_ = max_out;
    out_ = out;
    chosen_.clear();
    return Dfs(universe_, /*require_exact=*/false);
  }

 private:
  bool Dfs(uint64_t uncovered, bool require_exact) {
    if (uncovered == 0) {
      if (!require_exact || chosen_.size() == depth_limit_) {
        std::vector<size_t> cover = chosen_;
        std::sort(cover.begin(), cover.end());
        out_->insert(std::move(cover));
        if (out_->size() >= max_out_) return false;
      }
      return true;
    }
    if (chosen_.size() >= depth_limit_) return true;
    if (require_exact) {
      // Optimistic bound: each remaining pick covers all remaining elements
      // of some largest set; cheap bound via max popcount.
      size_t remaining = depth_limit_ - chosen_.size();
      size_t max_cover = 0;
      for (size_t i : nonempty_) {
        max_cover = std::max(
            max_cover,
            static_cast<size_t>(std::popcount(sets_[i] & uncovered)));
      }
      if (max_cover * remaining <
          static_cast<size_t>(std::popcount(uncovered))) {
        return true;
      }
    }
    const uint64_t lowest = uncovered & (~uncovered + 1);
    for (size_t i : nonempty_) {
      if ((sets_[i] & lowest) == 0) continue;
      chosen_.push_back(i);
      const bool keep_going = Dfs(uncovered & ~sets_[i], require_exact);
      chosen_.pop_back();
      if (!keep_going) return false;
    }
    return true;
  }

  const uint64_t universe_;
  const std::vector<uint64_t>& sets_;
  std::vector<size_t> nonempty_;
  size_t depth_limit_ = 0;
  size_t max_out_ = 0;
  std::set<std::vector<size_t>>* out_ = nullptr;
  std::vector<size_t> chosen_;
};

bool IsMinimalCover(uint64_t universe, const std::vector<uint64_t>& sets,
                    const std::vector<size_t>& cover) {
  for (size_t skip = 0; skip < cover.size(); ++skip) {
    uint64_t covered = 0;
    for (size_t j = 0; j < cover.size(); ++j) {
      if (j != skip) covered |= sets[cover[j]];
    }
    if ((covered & universe) == universe) return false;
  }
  return true;
}

}  // namespace

MinimumCoversResult FindAllMinimumCovers(uint64_t universe,
                                         const std::vector<uint64_t>& sets,
                                         size_t max_covers) {
  MinimumCoversResult result;
  if (universe == 0) {
    result.feasible = true;
    result.min_size = 0;
    result.covers.push_back({});
    return result;
  }
  // Infeasible unless the union covers the universe.
  uint64_t all = 0;
  for (uint64_t s : sets) all |= s;
  if ((all & universe) != universe) return result;

  CoverSearch search(universe, sets);
  const size_t max_depth =
      std::min<size_t>(sets.size(),
                       static_cast<size_t>(std::popcount(universe)));
  for (size_t k = 1; k <= max_depth; ++k) {
    std::set<std::vector<size_t>> found;
    const bool completed = search.EnumerateAtDepth(k, max_covers, &found);
    if (!found.empty()) {
      result.feasible = true;
      result.min_size = k;
      result.covers.assign(found.begin(), found.end());
      result.truncated = !completed;
      return result;
    }
  }
  VBR_CHECK_MSG(false, "set cover feasibility check disagreed with search");
  return result;
}

std::vector<std::vector<size_t>> FindAllMinimalCovers(
    uint64_t universe, const std::vector<uint64_t>& sets, size_t max_covers,
    bool* truncated) {
  std::set<std::vector<size_t>> found;
  if (universe == 0) {
    if (truncated != nullptr) *truncated = false;
    return {{}};
  }
  CoverSearch search(universe, sets);
  const bool completed =
      search.EnumerateAll(sets.size(), max_covers, &found);
  if (truncated != nullptr) *truncated = !completed;
  std::vector<std::vector<size_t>> result;
  for (const auto& cover : found) {
    if (IsMinimalCover(universe, sets, cover)) result.push_back(cover);
  }
  return result;
}

}  // namespace vbr
