#include "rewrite/set_cover.h"

#include <algorithm>
#include <bit>
#include <set>

#include "common/budget.h"
#include "common/check.h"
#include "common/thread_pool.h"

namespace vbr {

namespace {

// DFS on the lowest uncovered element: every minimal cover contains, for the
// lowest uncovered element, some set covering it, so branching over those
// sets reaches every minimal (hence every minimum) cover.
//
// The first branching level (the sets containing the lowest element of the
// whole universe) splits the search into independent subtrees, which is
// where the parallelism lives: each top-level branch explores its subtree
// into private state, and the branch outputs are merged in branch order.
// Because the serial DFS visits branch 0 entirely before branch 1, the
// merged discovery order equals the serial discovery order, making results
// (and cap truncation) independent of the thread count.
class CoverSearch {
 public:
  CoverSearch(uint64_t universe, const std::vector<uint64_t>& sets,
              ThreadPool* pool)
      : universe_(universe), sets_(sets), pool_(pool) {
    for (size_t i = 0; i < sets_.size(); ++i) {
      if (sets_[i] != 0) nonempty_.push_back(i);
    }
  }

  // Enumerates covers in serial depth-first discovery order, deduplicated,
  // capped at `max_out` distinct covers. With `require_exact`, only covers
  // of size exactly `depth_limit` are recorded (with the optimistic bound
  // pruning); otherwise every cover the branching reaches within
  // `depth_limit` picks is recorded and the caller filters for minimality.
  // Sets *truncated iff the distinct count reached the cap.
  // Sets *aborted when the governor stopped any branch early; found covers
  // remain genuine (each was verified complete when recorded).
  std::vector<std::vector<size_t>> Enumerate(size_t depth_limit,
                                             bool require_exact,
                                             size_t max_out, bool* truncated,
                                             size_t* branch_tasks,
                                             bool* aborted) {
    *truncated = false;
    if (universe_ == 0 || depth_limit == 0 || max_out == 0) return {};
    const uint64_t lowest = universe_ & (~universe_ + 1);
    std::vector<size_t> branch_sets;
    for (size_t i : nonempty_) {
      if ((sets_[i] & lowest) != 0) branch_sets.push_back(i);
    }
    if (branch_tasks != nullptr) *branch_tasks += branch_sets.size();

    std::vector<Branch> branches(branch_sets.size());
    const auto run_branch = [&](size_t b) {
      Branch& branch = branches[b];
      branch.chosen.push_back(branch_sets[b]);
      Dfs(&branch, universe_ & ~sets_[branch_sets[b]], depth_limit,
          require_exact, max_out);
    };
    if (pool_ != nullptr && branch_sets.size() > 1) {
      pool_->ParallelFor(branch_sets.size(), run_branch);
    } else {
      for (size_t b = 0; b < branch_sets.size(); ++b) run_branch(b);
    }
    if (governor_ != nullptr) {
      // Per-branch node counts are schedule-independent (each branch runs to
      // completion or to its deterministic cap), so this total — charged at
      // the barrier after the parallel stage — is too.
      uint64_t nodes = 0;
      for (const Branch& branch : branches) {
        nodes += branch.nodes;
        if (branch.aborted) *aborted = true;
      }
      if (nodes > 0) governor_->ChargeWork(nodes);
    }

    // Merge in branch order with global deduplication; stop at the cap
    // exactly where the serial enumeration would have stopped.
    std::set<std::vector<size_t>> seen;
    std::vector<std::vector<size_t>> out;
    for (const Branch& branch : branches) {
      for (const std::vector<size_t>& cover : branch.found) {
        if (seen.insert(cover).second) {
          out.push_back(cover);
          if (out.size() >= max_out) {
            *truncated = true;
            return out;
          }
        }
      }
    }
    return out;
  }

 private:
  struct Branch {
    std::vector<size_t> chosen;
    // Covers in discovery order, deduplicated within the branch (the merge
    // deduplicates across branches).
    std::vector<std::vector<size_t>> found;
    std::set<std::vector<size_t>> seen;
    uint64_t nodes = 0;
    bool aborted = false;
  };

  // Returns false when the branch hit its cap (no more output wanted).
  bool Dfs(Branch* branch, uint64_t uncovered, size_t depth_limit,
           bool require_exact, size_t max_out) const {
    if (governor_ != nullptr) {
      ++branch->nodes;
      // The cap is per branch and identical for every branch, so where each
      // branch stops does not depend on the schedule; KeepGoing only
      // observes the deadline and injected faults.
      if ((node_cap_ != 0 && branch->nodes > node_cap_) ||
          (branch->nodes % 64 == 0 &&
           !governor_->KeepGoing("corecover.set_cover"))) {
        branch->aborted = true;
        return false;
      }
    }
    if (uncovered == 0) {
      if (!require_exact || branch->chosen.size() == depth_limit) {
        std::vector<size_t> cover = branch->chosen;
        std::sort(cover.begin(), cover.end());
        if (branch->seen.insert(cover).second) {
          branch->found.push_back(std::move(cover));
          if (branch->found.size() >= max_out) return false;
        }
      }
      return true;
    }
    if (branch->chosen.size() >= depth_limit) return true;
    if (require_exact) {
      // Optimistic bound: each remaining pick covers all remaining elements
      // of some largest set; cheap bound via max popcount.
      const size_t remaining = depth_limit - branch->chosen.size();
      size_t max_cover = 0;
      for (size_t i : nonempty_) {
        max_cover = std::max(
            max_cover,
            static_cast<size_t>(std::popcount(sets_[i] & uncovered)));
      }
      if (max_cover * remaining <
          static_cast<size_t>(std::popcount(uncovered))) {
        return true;
      }
    }
    const uint64_t lowest = uncovered & (~uncovered + 1);
    for (size_t i : nonempty_) {
      if ((sets_[i] & lowest) == 0) continue;
      branch->chosen.push_back(i);
      const bool keep_going =
          Dfs(branch, uncovered & ~sets_[i], depth_limit, require_exact,
              max_out);
      branch->chosen.pop_back();
      if (!keep_going) return false;
    }
    return true;
  }

  const uint64_t universe_;
  const std::vector<uint64_t>& sets_;
  ThreadPool* const pool_;
  std::vector<size_t> nonempty_;
  ResourceGovernor* const governor_ = ResourceGovernor::Current();
  const uint64_t node_cap_ = governor_ ? governor_->search_node_cap() : 0;
};

bool IsMinimalCover(uint64_t universe, const std::vector<uint64_t>& sets,
                    const std::vector<size_t>& cover) {
  for (size_t skip = 0; skip < cover.size(); ++skip) {
    uint64_t covered = 0;
    for (size_t j = 0; j < cover.size(); ++j) {
      if (j != skip) covered |= sets[cover[j]];
    }
    if ((covered & universe) == universe) return false;
  }
  return true;
}

}  // namespace

MinimumCoversResult FindAllMinimumCovers(uint64_t universe,
                                         const std::vector<uint64_t>& sets,
                                         size_t max_covers, ThreadPool* pool,
                                         size_t* branch_tasks) {
  MinimumCoversResult result;
  if (universe == 0) {
    result.feasible = true;
    result.min_size = 0;
    result.covers.push_back({});
    return result;
  }
  // Infeasible unless the union covers the universe.
  uint64_t all = 0;
  for (uint64_t s : sets) all |= s;
  if ((all & universe) != universe) return result;

  CoverSearch search(universe, sets, pool);
  ResourceGovernor* const governor = ResourceGovernor::Current();
  const size_t max_depth =
      std::min<size_t>(sets.size(),
                       static_cast<size_t>(std::popcount(universe)));
  for (size_t k = 1; k <= max_depth; ++k) {
    // Serial per-cardinality checkpoint: the work total accumulated by
    // depth k-1 is schedule-independent, so a work budget latches here
    // deterministically.
    if (governor != nullptr && !governor->CheckPoint("corecover.set_cover")) {
      result.aborted = true;
      return result;
    }
    bool truncated = false;
    bool aborted = false;
    std::vector<std::vector<size_t>> found =
        search.Enumerate(k, /*require_exact=*/true, max_covers, &truncated,
                         branch_tasks, &aborted);
    if (!found.empty()) {
      result.feasible = true;
      result.min_size = k;
      std::sort(found.begin(), found.end());
      result.covers = std::move(found);
      result.truncated = truncated;
      result.aborted = aborted;
      return result;
    }
    if (aborted) {
      // The search for cardinality k was cut short, so an empty result no
      // longer proves infeasibility at k; stop instead of reporting larger
      // covers as minimum.
      result.aborted = true;
      return result;
    }
  }
  VBR_CHECK_MSG(false, "set cover feasibility check disagreed with search");
  return result;
}

std::vector<std::vector<size_t>> FindAllMinimalCovers(
    uint64_t universe, const std::vector<uint64_t>& sets, size_t max_covers,
    bool* truncated, ThreadPool* pool, size_t* branch_tasks, bool* aborted) {
  if (aborted != nullptr) *aborted = false;
  if (universe == 0) {
    if (truncated != nullptr) *truncated = false;
    return {{}};
  }
  // Serial pre-search checkpoint, mirroring the per-cardinality one in
  // FindAllMinimumCovers: the work accumulated by the earlier stages is
  // schedule-independent, so a work budget latches here deterministically
  // (the in-search KeepGoing only observes deadlines and injected faults).
  ResourceGovernor* const governor = ResourceGovernor::Current();
  if (governor != nullptr && !governor->CheckPoint("corecover.set_cover")) {
    if (truncated != nullptr) *truncated = false;
    if (aborted != nullptr) *aborted = true;
    return {};
  }
  CoverSearch search(universe, sets, pool);
  bool hit_cap = false;
  bool hit_budget = false;
  std::vector<std::vector<size_t>> found =
      search.Enumerate(sets.size(), /*require_exact=*/false, max_covers,
                       &hit_cap, branch_tasks, &hit_budget);
  if (truncated != nullptr) *truncated = hit_cap;
  if (aborted != nullptr) *aborted = hit_budget;
  std::sort(found.begin(), found.end());
  std::vector<std::vector<size_t>> result;
  for (std::vector<size_t>& cover : found) {
    if (IsMinimalCover(universe, sets, cover)) {
      result.push_back(std::move(cover));
    }
  }
  return result;
}

}  // namespace vbr
