#include "rewrite/tuple_core.h"

#include <unordered_map>
#include <unordered_set>

#include "common/budget.h"
#include "common/check.h"
#include "rewrite/expansion.h"

namespace vbr {

namespace {

// Backtracking search for the maximum subgoal set admitting a mapping with
// the three Definition 4.1 properties. The tuple-core is unique (Lemma 4.2),
// so the maximum-cardinality consistent set is the core.
class CoreSearch {
 public:
  CoreSearch(const ConjunctiveQuery& query, const ViewTuple& tuple,
             const ViewSet& views)
      : query_(query) {
    const View& view = views[tuple.view_index];
    std::vector<Term> existentials;
    exp_atoms_ = ExpandViewAtom(tuple.atom, view, &existentials);
    existential_.insert(existentials.begin(), existentials.end());
    for (Term t : tuple.atom.args()) tuple_args_.insert(t);
    for (Term t : query.DistinguishedVariables()) distinguished_.insert(t);
    const size_t n = query.num_subgoals();
    VBR_CHECK_MSG(n <= 64, "queries are limited to 64 subgoals");
    for (size_t i = 0; i < n; ++i) {
      for (Term t : query.subgoal(i).args()) {
        if (t.is_variable()) {
          subgoals_of_var_[t.symbol()] |= (uint64_t{1} << i);
        }
      }
    }
  }

  // An aborted search returns the best complete assignment seen so far. That
  // is a consistent (possibly sub-maximum) subgoal set, so downstream covers
  // built from it are still sound — they can only cover less.
  TupleCore Run() {
    Recurse(0, 0);
    // Remainder of the last chunk (full chunks are charged inside Recurse).
    if (governor_ != nullptr && nodes_ > charged_) {
      governor_->ChargeWork(nodes_ - charged_);
    }
    TupleCore core;
    core.covered_mask = best_mask_;
    for (size_t i = 0; i < query_.num_subgoals(); ++i) {
      if (best_mask_ & (uint64_t{1} << i)) core.covered.push_back(i);
    }
    core.mapping = best_mapping_;
    return core;
  }

 private:
  struct Undo {
    std::vector<Term> bound_vars;
    std::vector<Term> registered_images;
  };

  void Recurse(size_t i, size_t included_count) {
    if (governor_ != nullptr) {
      ++nodes_;
      // Charge in the same 64-node chunks the KeepGoing stride uses, so a
      // long search cannot overshoot the shared work budget by its whole
      // node count (it used to be charged only after the search finished).
      if (aborted_ || (node_cap_ != 0 && nodes_ > node_cap_)) {
        aborted_ = true;
        return;
      }
      if (nodes_ % 64 == 0) {
        governor_->ChargeWork(64);
        charged_ = nodes_;
        if (!governor_->KeepGoing("corecover.tuple_cores")) {
          aborted_ = true;
          return;
        }
      }
    }
    const size_t n = query_.num_subgoals();
    // Bound: even including everything remaining cannot beat the best.
    if (included_count + (n - i) <= best_count_) return;
    if (i == n) {
      best_count_ = included_count;
      best_mask_ = included_mask_;
      best_mapping_ = mapping_;
      return;
    }
    const uint64_t bit = uint64_t{1} << i;
    // Include branch: try each expansion atom as the target.
    for (const Atom& target : exp_atoms_) {
      if (target.predicate() != query_.subgoal(i).predicate() ||
          target.arity() != query_.subgoal(i).arity()) {
        continue;
      }
      Undo undo;
      const uint64_t saved_must = must_include_;
      if (TryMatch(query_.subgoal(i), target, &undo)) {
        included_mask_ |= bit;
        Recurse(i + 1, included_count + 1);
        included_mask_ &= ~bit;
      }
      must_include_ = saved_must;
      Rollback(undo);
    }
    // Exclude branch, unless property (3) forces inclusion.
    if ((must_include_ & bit) == 0) {
      excluded_mask_ |= bit;
      Recurse(i + 1, included_count);
      excluded_mask_ &= ~bit;
    }
  }

  // Attempts to extend the current mapping so that `source` maps onto
  // `target` under the Definition 4.1 constraints. On failure the caller
  // must still Rollback(undo) (partial bindings may have been recorded).
  bool TryMatch(const Atom& source, const Atom& target, Undo* undo) {
    for (size_t p = 0; p < source.arity(); ++p) {
      const Term s = source.arg(p);
      const Term t = target.arg(p);
      if (s.is_constant()) {
        // Containment mappings fix constants.
        if (s != t) return false;
        if (!RegisterImage(t, s, undo)) return false;
        continue;
      }
      auto it = var_image_.find(s.symbol());
      if (it != var_image_.end()) {
        if (it->second != t) return false;
        continue;
      }
      // Property (1): identity on arguments appearing in the tuple.
      if (tuple_args_.count(s) > 0) {
        if (t != s) return false;
      } else if (distinguished_.count(s) > 0) {
        // Property (2): a distinguished variable must map to a
        // distinguished variable of the expansion; with property (1) this
        // means it must appear in the tuple and map to itself. Not in the
        // tuple => impossible.
        return false;
      }
      // Property (1): injectivity.
      if (!RegisterImage(t, s, undo)) return false;
      // Property (3): mapping onto an existential variable pulls in every
      // subgoal that uses s.
      if (existential_.count(t) > 0) {
        const uint64_t needed = subgoals_of_var_.at(s.symbol());
        if ((needed & excluded_mask_) != 0) return false;
        must_include_ |= needed;
      }
      var_image_.emplace(s.symbol(), t);
      mapping_.Bind(s, t);
      undo->bound_vars.push_back(s);
    }
    return true;
  }

  // Enforces injectivity: each image term may be claimed by at most one
  // source term.
  bool RegisterImage(Term image, Term source, Undo* undo) {
    auto [it, inserted] = image_source_.emplace(image, source);
    if (!inserted) return it->second == source;
    undo->registered_images.push_back(image);
    return true;
  }

  void Rollback(const Undo& undo) {
    for (Term v : undo.bound_vars) {
      var_image_.erase(v.symbol());
      mapping_.Unbind(v);
    }
    for (Term img : undo.registered_images) image_source_.erase(img);
  }

  const ConjunctiveQuery& query_;
  std::vector<Atom> exp_atoms_;
  std::unordered_set<Term, TermHash> existential_;
  std::unordered_set<Term, TermHash> tuple_args_;
  std::unordered_set<Term, TermHash> distinguished_;
  std::unordered_map<Symbol, uint64_t> subgoals_of_var_;

  std::unordered_map<Symbol, Term> var_image_;
  std::unordered_map<Term, Term, TermHash> image_source_;
  Substitution mapping_;
  uint64_t included_mask_ = 0;
  uint64_t excluded_mask_ = 0;
  uint64_t must_include_ = 0;

  uint64_t best_mask_ = 0;
  size_t best_count_ = 0;
  Substitution best_mapping_;

  ResourceGovernor* const governor_ = ResourceGovernor::Current();
  const uint64_t node_cap_ = governor_ ? governor_->search_node_cap() : 0;
  uint64_t nodes_ = 0;
  uint64_t charged_ = 0;
  bool aborted_ = false;
};

}  // namespace

TupleCore ComputeTupleCore(const ConjunctiveQuery& query,
                           const ViewTuple& tuple, const ViewSet& views) {
  VBR_CHECK(tuple.view_index < views.size());
  CoreSearch search(query, tuple, views);
  return search.Run();
}

}  // namespace vbr
