#ifndef VBR_REWRITE_TUPLE_CORE_H_
#define VBR_REWRITE_TUPLE_CORE_H_

#include <cstdint>
#include <vector>

#include "cq/query.h"
#include "cq/substitution.h"
#include "rewrite/view_tuple.h"

namespace vbr {

// The tuple-core of a view tuple (Definition 4.1): the unique maximal set G
// of subgoals of the minimized query Q such that some containment mapping
// phi from G into the tuple's expansion
//
//   (1) is one-to-one on arguments and the identity on arguments of G that
//       appear in the tuple,
//   (2) maps every distinguished variable of Q in G to a distinguished
//       variable of the expansion (hence, with (1), to itself), and
//   (3) whenever a nondistinguished variable of Q maps to an existential
//       variable of the expansion, G contains every query subgoal using it.
//
// Theorem 4.1: a query over view tuples is an equivalent rewriting iff the
// union of its tuples' cores covers all query subgoals, so cores turn
// rewriting generation into set covering.
struct TupleCore {
  // Bitmask over the subgoal indices of the minimized query (bit i set iff
  // subgoal i is covered). The query must therefore have at most 64
  // subgoals, far beyond the paper's sizes (see the contract in
  // set_cover.h; CoreCover reports larger queries as unsupported instead of
  // running the pipeline).
  uint64_t covered_mask = 0;
  // The same set as sorted indices.
  std::vector<size_t> covered;
  // The witnessing mapping from variables of the covered subgoals into the
  // tuple expansion.
  Substitution mapping;

  bool empty() const { return covered_mask == 0; }
  size_t size() const { return covered.size(); }
};

// Computes the tuple-core of `tuple` for `query`. `query` must be minimal
// (CoreCover minimizes first) and have at most 64 subgoals (VBR_CHECKed;
// CoreCover screens oversized queries before calling here); `views` must
// contain the tuple's defining view at `tuple.view_index`.
//
// Thread-safe for concurrent calls: the search state is call-local and the
// only shared touchpoint is fresh-variable interning in the (thread-safe)
// global symbol table.
TupleCore ComputeTupleCore(const ConjunctiveQuery& query,
                           const ViewTuple& tuple, const ViewSet& views);

}  // namespace vbr

#endif  // VBR_REWRITE_TUPLE_CORE_H_
