#include "rewrite/certificate.h"

#include <unordered_map>
#include <unordered_set>

#include "cq/containment.h"
#include "cq/term.h"

namespace vbr {

namespace {

bool FailWith(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

// Re-derives subgoal i's expansion slice positionally and checks it equals
// the stored atoms; records the slice's existential variables.
bool CheckSlice(const Atom& subgoal, const View& view,
                const std::vector<const Atom*>& slice,
                std::unordered_set<Term, TermHash>* existentials,
                std::string* error) {
  if (subgoal.arity() != view.head().arity()) {
    return FailWith(error, "subgoal arity mismatches view head");
  }
  if (slice.size() != view.body().size()) {
    return FailWith(error, "expansion slice size mismatches view body");
  }
  Substitution sigma;
  for (size_t i = 0; i < subgoal.arity(); ++i) {
    const Term hv = view.head().arg(i);
    if (hv.is_constant()) {
      if (hv != subgoal.arg(i)) {
        return FailWith(error, "view head constant mismatch");
      }
      continue;
    }
    if (!sigma.Bind(hv, subgoal.arg(i))) {
      return FailWith(error, "inconsistent head binding");
    }
  }
  for (size_t j = 0; j < slice.size(); ++j) {
    const Atom& pattern = view.body()[j];
    const Atom& actual = *slice[j];
    if (pattern.predicate() != actual.predicate() ||
        pattern.arity() != actual.arity()) {
      return FailWith(error, "expansion atom predicate mismatch");
    }
    for (size_t p = 0; p < pattern.arity(); ++p) {
      const Term t = pattern.arg(p);
      const Term s = actual.arg(p);
      if (t.is_constant()) {
        if (t != s) return FailWith(error, "expansion constant mismatch");
        continue;
      }
      if (auto bound = sigma.Lookup(t)) {
        if (*bound != s) {
          return FailWith(error, "inconsistent expansion binding");
        }
        continue;
      }
      // t is an existential of the view: its image must be a variable that
      // is fresh for this slice.
      if (!s.is_variable()) {
        return FailWith(error, "existential image is not a variable");
      }
      sigma.Bind(t, s);
      if (!existentials->insert(s).second) {
        return FailWith(error, "existential image reused");
      }
    }
  }
  return true;
}

}  // namespace

std::string EquivalenceCertificate::ToString() const {
  std::string s = "query     : " + query.ToString() + "\n";
  s += "rewriting : " + rewriting.ToString() + "\n";
  s += "expansion : " + expansion.query.ToString() + "\n";
  s += "Q -> exp  : " + query_to_expansion.ToString() + "\n";
  s += "exp -> Q  : " + expansion_to_query.ToString() + "\n";
  return s;
}

std::optional<EquivalenceCertificate> CertifyEquivalentRewriting(
    const ConjunctiveQuery& rewriting, const ConjunctiveQuery& query,
    const ViewSet& views) {
  for (const Atom& a : rewriting.body()) {
    if (FindView(views, a.predicate()) == nullptr) return std::nullopt;
  }
  EquivalenceCertificate cert;
  cert.query = query;
  cert.rewriting = rewriting;
  cert.expansion = ExpandRewriting(rewriting, views);
  auto forward = FindContainmentMapping(query, cert.expansion.query);
  if (!forward.has_value()) return std::nullopt;
  auto backward = FindContainmentMapping(cert.expansion.query, query);
  if (!backward.has_value()) return std::nullopt;
  cert.query_to_expansion = std::move(*forward);
  cert.expansion_to_query = std::move(*backward);
  return cert;
}

bool VerifyCertificate(const EquivalenceCertificate& certificate,
                       const ViewSet& views, std::string* error) {
  const ConjunctiveQuery& p = certificate.rewriting;
  const Expansion& exp = certificate.expansion;

  // 1a. Expansion bookkeeping: origins are a monotone labeling of the
  // expansion body by rewriting subgoals.
  if (exp.origin.size() != exp.query.body().size()) {
    return FailWith(error, "origin list length mismatch");
  }
  if (exp.query.head() != p.head()) {
    return FailWith(error, "expansion head differs from rewriting head");
  }
  std::vector<std::vector<const Atom*>> slices(p.num_subgoals());
  for (size_t i = 0; i < exp.origin.size(); ++i) {
    if (exp.origin[i] >= p.num_subgoals()) {
      return FailWith(error, "origin out of range");
    }
    slices[exp.origin[i]].push_back(&exp.query.body()[i]);
  }

  // 1b. Each slice re-derives from its view; existential images are fresh
  // (used in exactly one slice and nowhere in the rewriting).
  std::unordered_set<Term, TermHash> rewriting_terms;
  for (const Atom& a : p.body()) {
    for (Term t : a.args()) rewriting_terms.insert(t);
  }
  for (Term t : p.head().args()) rewriting_terms.insert(t);

  std::unordered_set<Term, TermHash> all_existentials;
  for (size_t i = 0; i < p.num_subgoals(); ++i) {
    const View* view = FindView(views, p.subgoal(i).predicate());
    if (view == nullptr) {
      return FailWith(error, "rewriting subgoal is not a view");
    }
    std::unordered_set<Term, TermHash> slice_existentials;
    if (!CheckSlice(p.subgoal(i), *view, slices[i], &slice_existentials,
                    error)) {
      return false;
    }
    for (Term t : slice_existentials) {
      if (rewriting_terms.count(t) > 0) {
        return FailWith(error, "existential image captured by rewriting");
      }
      if (!all_existentials.insert(t).second) {
        return FailWith(error, "existential image shared across slices");
      }
    }
  }
  // (Cross-slice leaks need no separate pass: every argument of a slice is
  // forced by the positional re-derivation to be either a rewriting
  // argument — disjoint from existential images by the check above — or an
  // existential image registered to that slice, unique across slices.)

  // 2 & 3. The two containment mappings.
  if (!IsContainmentMapping(certificate.query, exp.query,
                            certificate.query_to_expansion)) {
    return FailWith(error, "query -> expansion mapping invalid");
  }
  if (!IsContainmentMapping(exp.query, certificate.query,
                            certificate.expansion_to_query)) {
    return FailWith(error, "expansion -> query mapping invalid");
  }
  return true;
}

}  // namespace vbr
