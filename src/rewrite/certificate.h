#ifndef VBR_REWRITE_CERTIFICATE_H_
#define VBR_REWRITE_CERTIFICATE_H_

#include <optional>
#include <string>
#include <vector>

#include "cq/query.h"
#include "cq/substitution.h"
#include "rewrite/expansion.h"

namespace vbr {

// Checkable equivalence certificates.
//
// CoreCover's correctness rests on Theorem 4.1, but a downstream system
// (say, a view-based security layer) may want evidence it can re-check
// without trusting the search machinery. A certificate packages P, Q, the
// expansion P^exp with its per-subgoal origins, and the two containment
// mappings; VerifyCertificate re-validates all of it with direct,
// search-free checks:
//
//   1. the expansion is a faithful expansion of P over the views
//      (per-subgoal positional re-derivation, no fresh-variable capture),
//   2. query_to_expansion is a containment mapping Q -> P^exp
//      (witnessing Q ⊒ ... i.e. P^exp ⊑ ... see containment.h), and
//   3. expansion_to_query is a containment mapping P^exp -> Q.
//
// Together these prove P^exp ≡ Q, i.e., P is an equivalent rewriting.
struct EquivalenceCertificate {
  ConjunctiveQuery query;
  ConjunctiveQuery rewriting;
  Expansion expansion;
  // Containment mapping from `query` into `expansion.query`.
  Substitution query_to_expansion;
  // Containment mapping from `expansion.query` into `query`.
  Substitution expansion_to_query;

  std::string ToString() const;
};

// Builds a certificate for `rewriting`, or nullopt if it is not an
// equivalent rewriting of `query` using `views`.
std::optional<EquivalenceCertificate> CertifyEquivalentRewriting(
    const ConjunctiveQuery& rewriting, const ConjunctiveQuery& query,
    const ViewSet& views);

// Independently re-checks a certificate. If `error` is non-null, stores the
// first failed check.
bool VerifyCertificate(const EquivalenceCertificate& certificate,
                       const ViewSet& views, std::string* error = nullptr);

}  // namespace vbr

#endif  // VBR_REWRITE_CERTIFICATE_H_
