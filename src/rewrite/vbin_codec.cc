#include "rewrite/vbin_codec.h"

#include <utility>

namespace vbr {

void EncodeExpansion(const Expansion& expansion, vbin::FileWriter* writer) {
  EncodeQuery(expansion.query, writer);
  writer->AppendVarint(expansion.origin.size());
  for (size_t o : expansion.origin) {
    writer->AppendVarint(o);
  }
}

bool DecodeExpansion(vbin::Reader* reader, const vbin::FileView& file,
                     Expansion* out) {
  if (!DecodeQuery(reader, file, &out->query)) return false;
  uint64_t count = 0;
  if (!reader->ReadVarint(&count)) return false;
  if (count > reader->remaining()) {
    reader->Fail("origin count exceeds remaining bytes");
    return false;
  }
  out->origin.clear();
  out->origin.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t value = 0;
    if (!reader->ReadVarint(&value)) return false;
    out->origin.push_back(static_cast<size_t>(value));
  }
  return true;
}

void EncodeCertificate(const EquivalenceCertificate& certificate,
                       vbin::FileWriter* writer) {
  EncodeQuery(certificate.query, writer);
  EncodeQuery(certificate.rewriting, writer);
  EncodeExpansion(certificate.expansion, writer);
  EncodeSubstitution(certificate.query_to_expansion, writer);
  EncodeSubstitution(certificate.expansion_to_query, writer);
}

bool DecodeCertificate(vbin::Reader* reader, const vbin::FileView& file,
                       EquivalenceCertificate* out) {
  return DecodeQuery(reader, file, &out->query) &&
         DecodeQuery(reader, file, &out->rewriting) &&
         DecodeExpansion(reader, file, &out->expansion) &&
         DecodeSubstitution(reader, file, &out->query_to_expansion) &&
         DecodeSubstitution(reader, file, &out->expansion_to_query);
}

void EncodeCoreCoverStats(const CoreCoverStats& stats,
                          vbin::FileWriter* writer) {
  writer->AppendVarint(stats.num_views);
  writer->AppendVarint(stats.num_view_classes);
  writer->AppendVarint(stats.num_view_tuples);
  writer->AppendVarint(stats.num_tuple_classes);
  writer->AppendVarint(stats.num_nonempty_cores);
  writer->AppendVarint(stats.minimum_cover_size);
  writer->AppendF64(stats.minimize_ms);
  writer->AppendF64(stats.view_tuple_ms);
  writer->AppendF64(stats.tuple_core_ms);
  writer->AppendF64(stats.cover_ms);
  writer->AppendF64(stats.total_ms);
  writer->AppendVarint(stats.view_tuple_tasks);
  writer->AppendVarint(stats.tuple_core_tasks);
  writer->AppendVarint(stats.verify_tasks);
  writer->AppendVarint(stats.cover_branch_tasks);
  writer->AppendVarint(stats.threads_used);
  writer->AppendVarint(stats.work_used);
  writer->AppendBool(stats.hit_rewriting_cap);
}

bool DecodeCoreCoverStats(vbin::Reader* reader, CoreCoverStats* out) {
  auto size_field = [reader](size_t* field) {
    uint64_t value = 0;
    if (!reader->ReadVarint(&value)) return false;
    *field = static_cast<size_t>(value);
    return true;
  };
  return size_field(&out->num_views) && size_field(&out->num_view_classes) &&
         size_field(&out->num_view_tuples) &&
         size_field(&out->num_tuple_classes) &&
         size_field(&out->num_nonempty_cores) &&
         size_field(&out->minimum_cover_size) &&
         reader->ReadF64(&out->minimize_ms) &&
         reader->ReadF64(&out->view_tuple_ms) &&
         reader->ReadF64(&out->tuple_core_ms) &&
         reader->ReadF64(&out->cover_ms) && reader->ReadF64(&out->total_ms) &&
         size_field(&out->view_tuple_tasks) &&
         size_field(&out->tuple_core_tasks) && size_field(&out->verify_tasks) &&
         size_field(&out->cover_branch_tasks) &&
         size_field(&out->threads_used) && reader->ReadVarint(&out->work_used) &&
         reader->ReadBool(&out->hit_rewriting_cap);
}

// ---------------------------------------------------------------------------
// Whole files

std::string EncodeCertificateFile(const EquivalenceCertificate& certificate) {
  vbin::FileWriter writer(vbin::FileKind::kCertificate);
  EncodeCertificate(certificate, &writer);
  return std::move(writer).Finish();
}

vbin::Status DecodeCertificateFile(std::string_view bytes,
                                   EquivalenceCertificate* out) {
  vbin::FileView file;
  vbin::Status status =
      vbin::OpenFile(bytes, &file, vbin::FileKind::kCertificate);
  if (!status.ok()) return status;
  vbin::Reader reader(file.body);
  if (!DecodeCertificate(&reader, file, out) || !reader.AtEnd()) {
    if (reader.ok()) reader.Fail("trailing bytes");
    return reader.ToStatus("certificate body");
  }
  return vbin::Status::Ok();
}

std::string EncodePlanFile(const PlanRecord& plan) {
  vbin::FileWriter writer(vbin::FileKind::kPlan);
  EncodeQuery(plan.rewriting, &writer);
  EncodeAtoms(plan.filter_atoms, &writer);
  return std::move(writer).Finish();
}

vbin::Status DecodePlanFile(std::string_view bytes, PlanRecord* out) {
  vbin::FileView file;
  vbin::Status status = vbin::OpenFile(bytes, &file, vbin::FileKind::kPlan);
  if (!status.ok()) return status;
  vbin::Reader reader(file.body);
  if (!DecodeQuery(&reader, file, &out->rewriting) ||
      !DecodeAtoms(&reader, file, &out->filter_atoms) || !reader.AtEnd()) {
    if (reader.ok()) reader.Fail("trailing bytes");
    return reader.ToStatus("plan body");
  }
  return vbin::Status::Ok();
}

}  // namespace vbr
