#ifndef VBR_REWRITE_CANONICAL_DB_H_
#define VBR_REWRITE_CANONICAL_DB_H_

#include <unordered_map>
#include <vector>

#include "cq/query.h"
#include "cq/substitution.h"

namespace vbr {

// The canonical database D_Q of a query (Section 3.3): each body subgoal
// becomes a fact by replacing every variable with a distinct fresh constant.
// Thawing restores those constants back to the original variables.
class CanonicalDatabase {
 public:
  explicit CanonicalDatabase(const ConjunctiveQuery& query);

  // The frozen body atoms (ground facts).
  const std::vector<Atom>& facts() const { return facts_; }

  // The variable -> frozen-constant substitution.
  const Substitution& freeze() const { return freeze_; }

  // Restores frozen constants to the original query variables; other terms
  // pass through.
  Term Thaw(Term t) const;
  Atom Thaw(const Atom& atom) const;

 private:
  std::vector<Atom> facts_;
  Substitution freeze_;
  std::unordered_map<Term, Term, TermHash> thaw_;
};

}  // namespace vbr

#endif  // VBR_REWRITE_CANONICAL_DB_H_
