#include "rewrite/core_cover.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "cq/containment.h"
#include "rewrite/rewriting.h"
#include "rewrite/set_cover.h"

namespace vbr {

namespace {

enum class CoverMode { kMinimum, kMinimal };

CoreCoverResult RunCoreCover(const ConjunctiveQuery& query,
                             const ViewSet& views,
                             const CoreCoverOptions& options,
                             CoverMode mode) {
  VBR_CHECK_MSG(query.IsSafe(), "CoreCover requires a safe query");
  VBR_CHECK_MSG(!query.HasBuiltins(),
                "CoreCover requires a comparison-free query");
  Timer total_timer;
  CoreCoverResult result;
  result.stats.num_views = views.size();

  // Step 1: minimize the query.
  Timer phase_timer;
  result.minimized_query = Minimize(query);
  result.stats.minimize_ms = phase_timer.ElapsedMillis();
  const ConjunctiveQuery& q = result.minimized_query;
  const size_t n = q.num_subgoals();
  VBR_CHECK_MSG(n <= 64, "queries are limited to 64 subgoals");

  // Section 5.2: group equivalent views and keep one representative each.
  phase_timer.Reset();
  ViewSet working_views;
  std::vector<size_t> working_to_original;
  if (options.group_views) {
    const ViewClasses classes = GroupViewsByEquivalence(views);
    result.stats.num_view_classes = classes.num_classes();
    for (size_t rep : classes.representatives) {
      working_views.push_back(views[rep]);
      working_to_original.push_back(rep);
    }
  } else {
    result.stats.num_view_classes = views.size();
    working_views = views;
    for (size_t i = 0; i < views.size(); ++i) {
      working_to_original.push_back(i);
    }
  }

  // Step 2: view tuples on the canonical database.
  std::vector<ViewTuple> tuples = ComputeViewTuples(q, working_views);
  result.stats.view_tuple_ms = phase_timer.ElapsedMillis();
  result.stats.num_view_tuples = tuples.size();

  // Step 3: tuple-cores.
  phase_timer.Reset();
  std::vector<TupleCore> cores;
  cores.reserve(tuples.size());
  for (const ViewTuple& t : tuples) {
    cores.push_back(ComputeTupleCore(q, t, working_views));
  }
  result.stats.tuple_core_ms = phase_timer.ElapsedMillis();

  // Group tuples by core; the cover search runs over one representative per
  // class (or over all tuples when grouping is disabled).
  const ViewTupleClasses tuple_classes = GroupViewTuplesByCore(tuples, cores);
  result.stats.num_tuple_classes = tuple_classes.num_classes();

  result.view_tuples.reserve(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    AnnotatedViewTuple annotated;
    annotated.tuple = tuples[i];
    annotated.tuple.view_index = working_to_original[tuples[i].view_index];
    annotated.core = cores[i];
    annotated.class_id = tuple_classes.class_of[i];
    annotated.is_class_representative =
        tuple_classes.representatives[tuple_classes.class_of[i]] == i;
    if (annotated.core.empty()) result.filter_candidates.push_back(i);
    result.view_tuples.push_back(std::move(annotated));
  }

  std::vector<size_t> candidate_tuples;  // indices into `tuples`
  if (options.group_view_tuples) {
    candidate_tuples = tuple_classes.representatives;
  } else {
    for (size_t i = 0; i < tuples.size(); ++i) candidate_tuples.push_back(i);
  }
  for (size_t i : candidate_tuples) {
    if (!cores[i].empty()) ++result.stats.num_nonempty_cores;
  }

  // Step 4: cover the query subgoals with tuple-cores.
  phase_timer.Reset();
  const uint64_t universe = (n == 64) ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
  std::vector<uint64_t> sets;
  sets.reserve(candidate_tuples.size());
  for (size_t i : candidate_tuples) sets.push_back(cores[i].covered_mask);

  std::vector<std::vector<size_t>> covers;
  if (mode == CoverMode::kMinimum) {
    MinimumCoversResult min_covers =
        FindAllMinimumCovers(universe, sets, options.max_rewritings);
    result.has_rewriting = min_covers.feasible;
    result.stats.minimum_cover_size = min_covers.min_size;
    result.truncated = min_covers.truncated;
    covers = std::move(min_covers.covers);
  } else {
    bool truncated = false;
    covers = FindAllMinimalCovers(universe, sets, options.max_rewritings,
                                  &truncated);
    result.has_rewriting = !covers.empty();
    result.truncated = truncated;
    if (result.has_rewriting) {
      size_t min_size = SIZE_MAX;
      for (const auto& c : covers) min_size = std::min(min_size, c.size());
      result.stats.minimum_cover_size = min_size;
    }
  }
  result.stats.cover_ms = phase_timer.ElapsedMillis();

  for (const std::vector<size_t>& cover : covers) {
    std::vector<Atom> body;
    body.reserve(cover.size());
    for (size_t k : cover) body.push_back(tuples[candidate_tuples[k]].atom);
    ConjunctiveQuery rewriting(q.head(), std::move(body));
    if (options.verify_rewritings) {
      VBR_CHECK_MSG(IsEquivalentRewriting(rewriting, query, views),
                    "CoreCover produced a non-equivalent rewriting");
    }
    result.rewritings.push_back(std::move(rewriting));
  }

  result.stats.total_ms = total_timer.ElapsedMillis();
  return result;
}

}  // namespace

CoreCoverResult CoreCover(const ConjunctiveQuery& query, const ViewSet& views,
                          const CoreCoverOptions& options) {
  return RunCoreCover(query, views, options, CoverMode::kMinimum);
}

CoreCoverResult CoreCoverStar(const ConjunctiveQuery& query,
                              const ViewSet& views,
                              const CoreCoverOptions& options) {
  return RunCoreCover(query, views, options, CoverMode::kMinimal);
}

}  // namespace vbr
