#include "rewrite/core_cover.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "common/budget.h"
#include "common/check.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "cq/containment.h"
#include "rewrite/rewriting.h"
#include "rewrite/set_cover.h"

namespace vbr {

namespace {

enum class CoverMode { kMinimum, kMinimal };

// Accumulates one finished run into the process-wide registry (the per-run
// numbers stay in CoreCoverStats; the registry carries process totals).
void RecordRunMetrics(const CoreCoverResult& result) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  static Counter* const runs = registry.GetCounter("corecover.runs");
  static Counter* const unsupported =
      registry.GetCounter("corecover.unsupported");
  static Counter* const budget_aborts =
      registry.GetCounter("corecover.budget_aborts");
  static Counter* const view_tuples =
      registry.GetCounter("corecover.view_tuples");
  static Counter* const tuple_cores =
      registry.GetCounter("corecover.tuple_cores");
  static Counter* const covers =
      registry.GetCounter("corecover.covers_enumerated");
  static Counter* const candidate_views =
      registry.GetCounter("corecover.candidate_views");
  static Counter* const catalog_views =
      registry.GetCounter("corecover.catalog_views");
  static Histogram* const minimize_us =
      registry.GetHistogram("corecover.stage.minimize_us");
  static Histogram* const view_tuple_us =
      registry.GetHistogram("corecover.stage.view_tuple_us");
  static Histogram* const tuple_core_us =
      registry.GetHistogram("corecover.stage.tuple_core_us");
  static Histogram* const cover_us =
      registry.GetHistogram("corecover.stage.cover_us");
  static Histogram* const total_us =
      registry.GetHistogram("corecover.stage.total_us");
  runs->Increment();
  if (result.status == CoreCoverStatus::kUnsupportedQueryTooLarge) {
    unsupported->Increment();
  }
  if (result.status == CoreCoverStatus::kBudgetExhausted) {
    budget_aborts->Increment();
  }
  view_tuples->Add(result.stats.num_view_tuples);
  candidate_views->Add(result.stats.num_candidate_views);
  catalog_views->Add(result.stats.num_views);
  tuple_cores->Add(result.stats.tuple_core_tasks);
  covers->Add(result.rewritings.size());
  const auto to_us = [](double ms) {
    return ms <= 0 ? uint64_t{0} : static_cast<uint64_t>(ms * 1e3);
  };
  minimize_us->Record(to_us(result.stats.minimize_ms));
  view_tuple_us->Record(to_us(result.stats.view_tuple_ms));
  tuple_core_us->Record(to_us(result.stats.tuple_core_ms));
  cover_us->Record(to_us(result.stats.cover_ms));
  total_us->Record(to_us(result.stats.total_ms));
}

CoreCoverResult RunCoreCover(const ConjunctiveQuery& query,
                             const ViewSet& views,
                             const CoreCoverOptions& options,
                             CoverMode mode) {
  VBR_CHECK_MSG(query.IsSafe(), "CoreCover requires a safe query");
  VBR_CHECK_MSG(!query.HasBuiltins(),
                "CoreCover requires a comparison-free query");
  Timer total_timer;
  CoreCoverResult result;
  result.stats.num_views = views.size();

  TraceSpan run_span(options.trace, "core_cover");
  run_span.AddAttribute("mode",
                        mode == CoverMode::kMinimum ? "minimum" : "minimal");
  run_span.AddAttribute("num_views", static_cast<uint64_t>(views.size()));

  // A num_threads of 1 (or a one-core machine) must reproduce the serial
  // pipeline bit-for-bit, so no pool is created at all in that case and
  // every stage takes its plain serial path.
  const size_t num_threads = options.num_threads == 0
                                 ? ThreadPool::DefaultThreadCount()
                                 : options.num_threads;
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads);
  result.stats.threads_used = num_threads;

  // The run is governed when the caller installed a ResourceGovernor
  // (planner deadlines / budgets, see common/budget.h). Each stage boundary
  // below is a serial checkpoint; a failed checkpoint finalizes the result
  // with whatever sound partial output earlier stages produced.
  ResourceGovernor* const governor = ResourceGovernor::Current();
  const auto budget_ok = [&](const char* site) {
    return governor == nullptr || governor->CheckPoint(site);
  };
  // Stamps budget bookkeeping, the final status, trace attributes, and
  // process metrics. Every return path funnels through here.
  const auto finalize = [&] {
    result.stats.hit_rewriting_cap = result.truncated;
    if (governor != nullptr) {
      result.stats.work_used = governor->work_used();
      if (governor->exhausted() && result.status == CoreCoverStatus::kOk) {
        result.status = CoreCoverStatus::kBudgetExhausted;
        result.exhaustion = governor->exhaustion();
        result.error = std::string("budget exhausted (") +
                       BudgetKindName(result.exhaustion.kind) + " at " +
                       result.exhaustion.site + ")";
      }
    }
    result.stats.total_ms = total_timer.ElapsedMillis();
    const char* status_name = "ok";
    if (result.status == CoreCoverStatus::kUnsupportedQueryTooLarge) {
      status_name = "unsupported_query_too_large";
    } else if (result.status == CoreCoverStatus::kBudgetExhausted) {
      status_name = "budget_exhausted";
    }
    run_span.AddAttribute("status", status_name);
    if (result.status == CoreCoverStatus::kBudgetExhausted) {
      run_span.AddAttribute("budget_kind",
                            BudgetKindName(result.exhaustion.kind));
      run_span.AddAttribute("budget_site", result.exhaustion.site);
    }
    run_span.AddAttribute("has_rewriting", result.has_rewriting);
    run_span.AddAttribute("rewritings",
                          static_cast<uint64_t>(result.rewritings.size()));
    run_span.AddAttribute("truncated", result.truncated);
    RecordRunMetrics(result);
  };

  // Step 1: minimize the query.
  Timer phase_timer;
  {
    TraceSpan span(run_span, "minimize");
    bool minimize_complete = true;
    result.minimized_query = Minimize(query, &minimize_complete);
    // A removal probe aborted by its node cap does not latch the governor
    // itself (node-cap aborts are per-search), so an incomplete — possibly
    // non-minimal — core would otherwise sail through with status kOk,
    // get fingerprinted, and poison the plan cache. Latch here; the flag is
    // deterministic under a pure work budget (node-cap aborts are
    // schedule-independent), and the checkpoint below then reports the run
    // as budget-exhausted.
    if (!minimize_complete && governor != nullptr) {
      governor->NoteExhausted(BudgetKind::kWork, "corecover.minimize");
    }
    span.AddAttribute(
        "subgoals", static_cast<uint64_t>(result.minimized_query.num_subgoals()));
  }
  result.stats.minimize_ms = phase_timer.ElapsedMillis();
  const ConjunctiveQuery& q = result.minimized_query;
  const size_t n = q.num_subgoals();
  if (!budget_ok("corecover.minimize")) {
    finalize();
    return result;
  }
  if (n > 64) {
    // Tuple-cores are uint64_t bitmasks over query subgoals (see the
    // contract in set_cover.h); report the unsupported input instead of
    // aborting the process. (An exhausted budget is handled above: an
    // aborted minimization can leave more than 64 subgoals on a query whose
    // true minimization fits, so that case must read as budget exhaustion,
    // not as an unsupported query.)
    result.status = CoreCoverStatus::kUnsupportedQueryTooLarge;
    result.error = "minimized query has " + std::to_string(n) +
                   " subgoals; the tuple-core bitmask supports at most 64";
    finalize();
    return result;
  }

  // Candidate view selection: drop views that provably produce zero view
  // tuples (kCoverAll summary test — see rewrite/view_index.h for the
  // soundness argument) before the per-view containment work of grouping
  // and tuple generation. Equivalence classes are kept or dropped
  // wholesale (class members share summaries), so grouping below elects
  // the same representatives among survivors and plans are byte-identical
  // with the filter on or off. No budget checkpoint is added here: the
  // summary scan is cheap and a new checkpoint would shift the exhaustion
  // sites that existing budget tests pin.
  phase_timer.Reset();
  ViewSet candidate_views;
  std::vector<size_t> candidate_to_catalog;
  const ViewSet* effective_views = &views;
  const std::vector<size_t>* to_catalog = nullptr;
  if (options.use_view_index) {
    TraceSpan span(run_span, "candidates");
    std::vector<size_t> cands;
    if (options.view_index != nullptr) {
      VBR_CHECK_MSG(options.view_index->num_views() == views.size(),
                    "view_index describes a different catalog");
      cands = options.view_index->Candidates(q, CandidateMode::kCoverAll);
    } else {
      cands = LinearCandidates(views, q, CandidateMode::kCoverAll);
    }
    candidate_views.reserve(cands.size());
    candidate_to_catalog.reserve(cands.size());
    for (size_t i : cands) {
      candidate_views.push_back(views[i]);
      candidate_to_catalog.push_back(i);
    }
    effective_views = &candidate_views;
    to_catalog = &candidate_to_catalog;
    span.AddAttribute("candidates", static_cast<uint64_t>(cands.size()));
    span.AddAttribute("indexed", options.view_index != nullptr);
  }
  result.stats.num_candidate_views = effective_views->size();
  run_span.AddAttribute(
      "candidate_views",
      static_cast<uint64_t>(result.stats.num_candidate_views));

  // Section 5.2: group equivalent views and keep one representative each.
  ViewSet working_views;
  std::vector<size_t> working_to_original;  // original catalog indices
  {
    TraceSpan span(run_span, "group_views");
    if (options.group_views) {
      const ViewClasses classes = GroupViewsByEquivalence(*effective_views);
      result.stats.num_view_classes = classes.num_classes();
      for (size_t rep : classes.representatives) {
        working_views.push_back((*effective_views)[rep]);
        working_to_original.push_back(to_catalog ? (*to_catalog)[rep] : rep);
      }
    } else {
      result.stats.num_view_classes = effective_views->size();
      working_views = *effective_views;
      for (size_t i = 0; i < effective_views->size(); ++i) {
        working_to_original.push_back(to_catalog ? (*to_catalog)[i] : i);
      }
    }
    span.AddAttribute("grouping", options.group_views);
    span.AddAttribute("classes",
                      static_cast<uint64_t>(result.stats.num_view_classes));
  }
  if (!budget_ok("corecover.group_views")) {
    finalize();
    return result;
  }

  // Step 2: view tuples on the canonical database, one task per view.
  result.stats.view_tuple_tasks = working_views.size();
  std::vector<ViewTuple> tuples;
  {
    TraceSpan span(run_span, "view_tuples");
    tuples = ComputeViewTuples(q, working_views, pool.get());
    span.AddAttribute("tuples", static_cast<uint64_t>(tuples.size()));
  }
  result.stats.view_tuple_ms = phase_timer.ElapsedMillis();
  result.stats.num_view_tuples = tuples.size();
  if (!budget_ok("corecover.view_tuples")) {
    finalize();
    return result;
  }

  // Step 3: tuple-cores, one task per tuple, written by tuple index.
  phase_timer.Reset();
  result.stats.tuple_core_tasks = tuples.size();
  std::vector<TupleCore> cores(tuples.size());
  {
    TraceSpan span(run_span, "tuple_cores");
    const auto compute_core = [&](size_t i) {
      cores[i] = ComputeTupleCore(q, tuples[i], working_views);
    };
    if (pool != nullptr) {
      pool->ParallelFor(tuples.size(), compute_core);
    } else {
      for (size_t i = 0; i < tuples.size(); ++i) compute_core(i);
    }
    span.AddAttribute("cores", static_cast<uint64_t>(tuples.size()));
  }
  result.stats.tuple_core_ms = phase_timer.ElapsedMillis();
  if (!budget_ok("corecover.tuple_cores")) {
    finalize();
    return result;
  }

  // Group tuples by core; the cover search runs over one representative per
  // class (or over all tuples when grouping is disabled).
  const ViewTupleClasses tuple_classes = GroupViewTuplesByCore(tuples, cores);
  result.stats.num_tuple_classes = tuple_classes.num_classes();

  result.view_tuples.reserve(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    AnnotatedViewTuple annotated;
    annotated.tuple = tuples[i];
    annotated.tuple.view_index = working_to_original[tuples[i].view_index];
    annotated.core = cores[i];
    annotated.class_id = tuple_classes.class_of[i];
    annotated.is_class_representative =
        tuple_classes.representatives[tuple_classes.class_of[i]] == i;
    if (annotated.core.empty()) result.filter_candidates.push_back(i);
    result.view_tuples.push_back(std::move(annotated));
  }

  std::vector<size_t> candidate_tuples;  // indices into `tuples`
  if (options.group_view_tuples) {
    candidate_tuples = tuple_classes.representatives;
  } else {
    for (size_t i = 0; i < tuples.size(); ++i) candidate_tuples.push_back(i);
  }
  for (size_t i : candidate_tuples) {
    if (!cores[i].empty()) ++result.stats.num_nonempty_cores;
  }

  // Step 4: cover the query subgoals with tuple-cores; the top-level DFS
  // branches are explored in parallel.
  phase_timer.Reset();
  const uint64_t universe = (n == 64) ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
  std::vector<uint64_t> sets;
  sets.reserve(candidate_tuples.size());
  for (size_t i : candidate_tuples) sets.push_back(cores[i].covered_mask);

  std::vector<std::vector<size_t>> covers;
  {
    TraceSpan span(run_span, "set_cover");
    if (mode == CoverMode::kMinimum) {
      MinimumCoversResult min_covers =
          FindAllMinimumCovers(universe, sets, options.max_rewritings,
                               pool.get(), &result.stats.cover_branch_tasks);
      result.has_rewriting = min_covers.feasible;
      result.stats.minimum_cover_size = min_covers.min_size;
      result.truncated = min_covers.truncated;
      covers = std::move(min_covers.covers);
      // An incomplete enumeration must never read as a complete one: a
      // branch stopped by its node cap does not latch the governor itself,
      // so latch here (deterministic under a pure work budget — the aborted
      // flag is schedule-independent).
      if (min_covers.aborted && governor != nullptr) {
        governor->NoteExhausted(BudgetKind::kWork, "corecover.set_cover");
      }
    } else {
      bool truncated = false;
      bool aborted = false;
      covers = FindAllMinimalCovers(universe, sets, options.max_rewritings,
                                    &truncated, pool.get(),
                                    &result.stats.cover_branch_tasks, &aborted);
      result.has_rewriting = !covers.empty();
      result.truncated = truncated;
      if (aborted && governor != nullptr) {
        governor->NoteExhausted(BudgetKind::kWork, "corecover.set_cover");
      }
      if (result.has_rewriting) {
        size_t min_size = SIZE_MAX;
        for (const auto& c : covers) min_size = std::min(min_size, c.size());
        result.stats.minimum_cover_size = min_size;
      }
    }
    span.AddAttribute("covers", static_cast<uint64_t>(covers.size()));
    span.AddAttribute("truncated", result.truncated);
  }
  result.stats.cover_ms = phase_timer.ElapsedMillis();

  for (const std::vector<size_t>& cover : covers) {
    std::vector<Atom> body;
    body.reserve(cover.size());
    for (size_t k : cover) body.push_back(tuples[candidate_tuples[k]].atom);
    result.rewritings.emplace_back(q.head(), std::move(body));
  }

  if (options.verify_rewritings) {
    // One containment check per rewriting; each is an independent
    // homomorphism search.
    TraceSpan span(run_span, "verify");
    result.stats.verify_tasks = result.rewritings.size();
    std::vector<char> failed(result.rewritings.size(), 0);
    const auto verify = [&](size_t i) {
      if (IsEquivalentRewriting(result.rewritings[i], query, views)) return;
      // Under an exhausted budget the equivalence check itself may have been
      // the thing that aborted, so a failure is indistinguishable from an
      // unfinished search: drop the rewriting instead of crashing. With
      // budget to spare, a failure is a genuine algorithmic bug.
      VBR_CHECK_MSG(governor != nullptr && governor->exhausted(),
                    "CoreCover produced a non-equivalent rewriting");
      failed[i] = 1;
    };
    if (pool != nullptr) {
      pool->ParallelFor(result.rewritings.size(), verify);
    } else {
      for (size_t i = 0; i < result.rewritings.size(); ++i) verify(i);
    }
    size_t kept = 0;
    for (size_t i = 0; i < result.rewritings.size(); ++i) {
      if (failed[i]) continue;
      if (kept != i) result.rewritings[kept] = std::move(result.rewritings[i]);
      ++kept;
    }
    result.rewritings.resize(kept);
    span.AddAttribute("verified", static_cast<uint64_t>(kept));
  }

  finalize();
  return result;
}

}  // namespace

CoreCoverResult CoreCover(const ConjunctiveQuery& query, const ViewSet& views,
                          const CoreCoverOptions& options) {
  return RunCoreCover(query, views, options, CoverMode::kMinimum);
}

CoreCoverResult CoreCoverStar(const ConjunctiveQuery& query,
                              const ViewSet& views,
                              const CoreCoverOptions& options) {
  return RunCoreCover(query, views, options, CoverMode::kMinimal);
}

}  // namespace vbr
