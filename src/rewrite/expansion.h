#ifndef VBR_REWRITE_EXPANSION_H_
#define VBR_REWRITE_EXPANSION_H_

#include <optional>
#include <vector>

#include "cq/query.h"

namespace vbr {

// Expansion of a rewriting (Definition 2.2): each view subgoal v(t1,...,tk)
// is replaced by the view's body with head variables substituted by the
// subgoal's arguments and existential variables replaced by fresh variables.

struct Expansion {
  // The expanded query: same head as the rewriting, body over base
  // relations.
  ConjunctiveQuery query;
  // origin[i] is the index of the rewriting subgoal that produced expanded
  // body atom i.
  std::vector<size_t> origin;
};

// Looks up the view definition whose head predicate matches `predicate`.
// Returns nullptr if none matches.
const View* FindView(const ViewSet& views, Symbol predicate);

// Expands `rewriting` over `views`. CHECK-fails if a subgoal's predicate has
// no definition in `views` or its arity mismatches the view head.
Expansion ExpandRewriting(const ConjunctiveQuery& rewriting,
                          const ViewSet& views);

// Expansion of a single view atom: the view body with head variables
// replaced by the atom's arguments and existentials replaced by fresh
// variables. If `out_existentials` is non-null, receives the fresh variables
// introduced (the expansion's nondistinguished variables).
std::vector<Atom> ExpandViewAtom(const Atom& view_atom, const View& view,
                                 std::vector<Term>* out_existentials = nullptr);

}  // namespace vbr

#endif  // VBR_REWRITE_EXPANSION_H_
