#ifndef VBR_REWRITE_REWRITING_H_
#define VBR_REWRITE_REWRITING_H_

#include "cq/query.h"

namespace vbr {

// Tests around equivalent rewritings (Definition 2.3): P is an equivalent
// rewriting of Q using views V iff P uses only view predicates and
// P^exp ≡ Q under the closed-world assumption.

// True iff every subgoal of `p` is over a view predicate defined in `views`.
bool UsesOnlyViews(const ConjunctiveQuery& p, const ViewSet& views);

// True iff `p` is an equivalent rewriting of `query` using `views`.
bool IsEquivalentRewriting(const ConjunctiveQuery& p,
                           const ConjunctiveQuery& query,
                           const ViewSet& views);

// True iff `p`'s expansion is contained in `query` (P^exp ⊑ Q). Since any
// candidate built from view tuples already satisfies Q ⊑ P^exp, this is the
// half that actually needs checking there.
bool ExpansionContainedInQuery(const ConjunctiveQuery& p,
                               const ConjunctiveQuery& query,
                               const ViewSet& views);

}  // namespace vbr

#endif  // VBR_REWRITE_REWRITING_H_
