#ifndef VBR_REWRITE_EQUIVALENCE_CLASSES_H_
#define VBR_REWRITE_EQUIVALENCE_CLASSES_H_

#include <cstddef>
#include <vector>

#include "cq/query.h"
#include "rewrite/tuple_core.h"
#include "rewrite/view_tuple.h"

namespace vbr {

// Section 5.2's concise representation: views that are equivalent as queries
// always hold identical relations under the closed-world assumption, so one
// representative per class suffices; likewise view tuples with identical
// tuple-cores are interchangeable in rewritings (Theorem 4.1), so covering
// runs over core classes. This is what makes CoreCover's running time
// independent of the raw number of views (Section 7).

struct ViewClasses {
  // class_of[i] is the equivalence-class id of views[i]; ids are dense,
  // ordered by first occurrence.
  std::vector<size_t> class_of;
  // representatives[c] is the index of the first view in class c.
  std::vector<size_t> representatives;

  size_t num_classes() const { return representatives.size(); }
};

// Groups `views` by equivalence as queries. Pairwise equivalence tests run
// only within buckets of a sound signature (head arity plus the predicate
// multiset of the minimized body), so the common all-different case costs
// one minimization per view.
ViewClasses GroupViewsByEquivalence(const ViewSet& views);

struct ViewTupleClasses {
  // class_of[i] is the class id of tuple i (dense, by first occurrence).
  std::vector<size_t> class_of;
  // representatives[c] indexes the first tuple of class c.
  std::vector<size_t> representatives;

  size_t num_classes() const { return representatives.size(); }
};

// Groups view tuples by identical tuple-core (covered subgoal set).
// `cores[i]` must be the core of `tuples[i]`. All empty-core tuples form one
// class.
ViewTupleClasses GroupViewTuplesByCore(const std::vector<ViewTuple>& tuples,
                                       const std::vector<TupleCore>& cores);

}  // namespace vbr

#endif  // VBR_REWRITE_EQUIVALENCE_CLASSES_H_
