#include "rewrite/view_index.h"

#include <utility>

#include "cq/signature.h"

namespace vbr {

namespace {

// Shared by view and query summarization: sorted deduplicated body keys plus
// a Bloom mask over body constants. Builtin subgoals participate like any
// other atom — the comparison predicates are interned symbols, so a view
// using "<" can only match a query that also uses "<".
void SummarizeBody(const std::vector<Atom>& body, std::vector<uint64_t>* keys,
                   uint64_t* constant_bloom) {
  keys->clear();
  keys->reserve(body.size());
  *constant_bloom = 0;
  for (const Atom& a : body) {
    keys->push_back(BodyKey(a.predicate(), a.arity()));
    for (const Term& t : a.args()) {
      if (t.is_constant()) *constant_bloom |= SymbolBloomBit(t.symbol());
    }
  }
  std::sort(keys->begin(), keys->end());
  keys->erase(std::unique(keys->begin(), keys->end()), keys->end());
}

}  // namespace

ViewSummary SummarizeView(const View& view) {
  ViewSummary s;
  SummarizeBody(view.body(), &s.keys, &s.constant_bloom);
  return s;
}

QueryBodySummary SummarizeQueryBody(const ConjunctiveQuery& query) {
  QueryBodySummary s;
  SummarizeBody(query.body(), &s.keys, &s.constant_bloom);
  return s;
}

bool ViewMayContribute(const ViewSummary& view, const QueryBodySummary& query,
                       CandidateMode mode) {
  if (mode == CandidateMode::kAnyOverlap) {
    // At least one shared (predicate, arity); both key lists are sorted.
    auto vi = view.keys.begin();
    auto qi = query.keys.begin();
    while (vi != view.keys.end() && qi != query.keys.end()) {
      if (*vi == *qi) return true;
      if (*vi < *qi) {
        ++vi;
      } else {
        ++qi;
      }
    }
    return false;
  }
  // kCoverAll: every view key among the query keys, every view constant
  // (possibly) among the query constants.
  if ((view.constant_bloom & ~query.constant_bloom) != 0) return false;
  return std::includes(query.keys.begin(), query.keys.end(),
                       view.keys.begin(), view.keys.end());
}

std::vector<size_t> LinearCandidates(const ViewSet& views,
                                     const ConjunctiveQuery& query,
                                     CandidateMode mode) {
  const QueryBodySummary q = SummarizeQueryBody(query);
  std::vector<size_t> out;
  for (size_t i = 0; i < views.size(); ++i) {
    if (ViewMayContribute(SummarizeView(views[i]), q, mode)) out.push_back(i);
  }
  return out;
}

std::vector<size_t> SelectCandidates(const ViewSet& views,
                                     const ConjunctiveQuery& query,
                                     CandidateMode mode,
                                     const CandidateFilterOptions& filter) {
  if (!filter.enabled) {
    std::vector<size_t> all(views.size());
    for (size_t i = 0; i < views.size(); ++i) all[i] = i;
    return all;
  }
  if (filter.index != nullptr) return filter.index->Candidates(query, mode);
  return LinearCandidates(views, query, mode);
}

ViewIndex::ViewIndex(const ViewSet& views) {
  summaries_.reserve(views.size());
  for (const View& v : views) summaries_.push_back(SummarizeView(v));
  AppendPostings(0);
}

void ViewIndex::AppendPostings(size_t first_view) {
  for (size_t i = first_view; i < summaries_.size(); ++i) {
    const uint32_t id = static_cast<uint32_t>(i);
    if (summaries_[i].keys.empty()) {
      empty_body_views_.push_back(id);
      continue;
    }
    for (uint64_t key : summaries_[i].keys) postings_[key].push_back(id);
  }
}

std::vector<size_t> ViewIndex::Candidates(const ConjunctiveQuery& query,
                                          CandidateMode mode) const {
  return Candidates(SummarizeQueryBody(query), mode);
}

std::vector<size_t> ViewIndex::Candidates(const QueryBodySummary& query,
                                          CandidateMode mode) const {
  // Gather every posting hit for the query's keys. A view appears once per
  // key it shares with the query, so after sorting, run lengths are exactly
  // the shared-key counts — and because view keys are deduplicated subsets
  // of the postings, count == keys.size() is the subset test.
  std::vector<uint32_t> hits;
  for (uint64_t key : query.keys) {
    auto it = postings_.find(key);
    if (it == postings_.end()) continue;
    hits.insert(hits.end(), it->second.begin(), it->second.end());
  }
  std::sort(hits.begin(), hits.end());

  std::vector<size_t> out;
  if (mode == CandidateMode::kAnyOverlap) {
    // Any shared key qualifies; empty-body views share nothing and are
    // excluded (an MCD needs a view atom to cover a query subgoal).
    for (size_t i = 0; i < hits.size();) {
      size_t j = i + 1;
      while (j < hits.size() && hits[j] == hits[i]) ++j;
      out.push_back(hits[i]);
      i = j;
    }
    return out;
  }

  // kCoverAll: hit count must equal the view's full key count, plus the
  // constant-Bloom subset test. Empty-body views pass vacuously and are
  // merged back in ascending id order.
  auto empty_it = empty_body_views_.begin();
  auto emit_empty_below = [&](uint32_t bound) {
    while (empty_it != empty_body_views_.end() && *empty_it < bound) {
      if ((summaries_[*empty_it].constant_bloom & ~query.constant_bloom) == 0) {
        out.push_back(*empty_it);
      }
      ++empty_it;
    }
  };
  for (size_t i = 0; i < hits.size();) {
    size_t j = i + 1;
    while (j < hits.size() && hits[j] == hits[i]) ++j;
    const uint32_t id = hits[i];
    emit_empty_below(id);
    const ViewSummary& s = summaries_[id];
    if (j - i == s.keys.size() &&
        (s.constant_bloom & ~query.constant_bloom) == 0) {
      out.push_back(id);
    }
    i = j;
  }
  emit_empty_below(static_cast<uint32_t>(summaries_.size()));
  return out;
}

std::shared_ptr<const ViewIndex> ViewIndex::WithAdded(
    const ViewSet& added) const {
  auto next = std::shared_ptr<ViewIndex>(new ViewIndex());
  next->summaries_ = summaries_;
  next->postings_ = postings_;
  next->empty_body_views_ = empty_body_views_;
  next->summaries_.reserve(summaries_.size() + added.size());
  for (const View& v : added) next->summaries_.push_back(SummarizeView(v));
  next->AppendPostings(summaries_.size());
  return next;
}

std::shared_ptr<const ViewIndex> ViewIndex::WithRemoved(
    const std::vector<size_t>& keep) const {
  auto next = std::shared_ptr<ViewIndex>(new ViewIndex());
  next->summaries_.reserve(keep.size());
  for (size_t id : keep) next->summaries_.push_back(summaries_[id]);
  next->AppendPostings(0);
  return next;
}

}  // namespace vbr
