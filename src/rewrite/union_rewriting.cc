#include "rewrite/union_rewriting.h"

#include "common/check.h"
#include "cq/containment.h"
#include "engine/evaluator.h"
#include "rewrite/expansion.h"

namespace vbr {

UnionQuery::UnionQuery(std::vector<ConjunctiveQuery> disjuncts)
    : disjuncts_(std::move(disjuncts)) {
  VBR_CHECK_MSG(!disjuncts_.empty(), "a union query needs >= 1 disjunct");
  for (const ConjunctiveQuery& d : disjuncts_) {
    VBR_CHECK_MSG(d.head().arity() == disjuncts_.front().head().arity(),
                  "union disjuncts must share head arity");
  }
}

size_t UnionQuery::head_arity() const {
  return disjuncts_.front().head().arity();
}

size_t UnionQuery::TotalSubgoals() const {
  size_t total = 0;
  for (const ConjunctiveQuery& d : disjuncts_) total += d.num_subgoals();
  return total;
}

std::string UnionQuery::ToString() const {
  std::string s;
  for (size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i > 0) s += "  UNION  ";
    s += disjuncts_[i].ToString();
  }
  return s;
}

Relation EvaluateUnion(const UnionQuery& u, const Database& db) {
  Relation result(u.head_arity());
  for (const ConjunctiveQuery& d : u.disjuncts()) {
    const Relation part = EvaluateQuery(d, db);
    for (size_t i = 0; i < part.size(); ++i) result.Insert(part.row(i));
  }
  return result;
}

bool IsContainedIn(const UnionQuery& u1, const UnionQuery& u2) {
  // Sagiv-Yannakakis: each disjunct of u1 must be contained in some
  // disjunct of u2 (comparison-free CQs).
  for (const ConjunctiveQuery& d1 : u1.disjuncts()) {
    bool contained = false;
    for (const ConjunctiveQuery& d2 : u2.disjuncts()) {
      if (IsContainedIn(d1, d2)) {
        contained = true;
        break;
      }
    }
    if (!contained) return false;
  }
  return true;
}

bool AreEquivalent(const UnionQuery& u1, const UnionQuery& u2) {
  return IsContainedIn(u1, u2) && IsContainedIn(u2, u1);
}

UnionQuery ExpandUnionRewriting(const UnionQuery& p, const ViewSet& views) {
  std::vector<ConjunctiveQuery> expanded;
  expanded.reserve(p.num_disjuncts());
  for (const ConjunctiveQuery& d : p.disjuncts()) {
    expanded.push_back(ExpandRewriting(d, views).query);
  }
  return UnionQuery(std::move(expanded));
}

bool IsEquivalentUnionRewriting(const UnionQuery& p,
                                const ConjunctiveQuery& query,
                                const ViewSet& views) {
  for (const View& v : views) {
    VBR_CHECK_MSG(!v.HasBuiltins(),
                  "symbolic union equivalence needs comparison-free views");
  }
  const UnionQuery expanded = ExpandUnionRewriting(p, views);
  return AreEquivalent(expanded, UnionQuery({query}));
}

}  // namespace vbr
