#ifndef VBR_REWRITE_SET_COVER_H_
#define VBR_REWRITE_SET_COVER_H_

#include <stddef.h>

#include <cstdint>
#include <vector>

namespace vbr {

class ThreadPool;

// Exact set covering over a universe of at most 64 elements, used by
// CoreCover to cover query subgoals with tuple-cores (Section 4.2) and by
// CoreCover* to enumerate all minimal covers (Section 5.1). Sets are
// bitmasks; a cover is a sorted list of set indices.
//
// CONTRACT — the 64-element cap: universes and sets are uint64_t bitmasks,
// so element indices must be < 64. This is what limits the whole CoreCover
// pipeline to minimized queries of at most 64 subgoals (tuple-cores are
// masks over query subgoals, see tuple_core.h). CoreCover reports larger
// queries as CoreCoverStatus::kUnsupportedQueryTooLarge instead of running;
// direct callers of these functions must enforce the cap themselves.
//
// Both enumerations branch, for the lowest uncovered element, over every set
// containing it. The top-level branches are independent and may be explored
// in parallel by passing a ThreadPool; results are merged in branch order,
// which reproduces the serial depth-first discovery order exactly, so the
// output (including which covers survive a `max_covers` truncation) is
// byte-identical for every thread count. `branch_tasks`, when non-null, is
// incremented by the number of top-level branches explored (a deterministic
// work counter surfaced in CoreCoverStats).

struct MinimumCoversResult {
  // True if some cover exists.
  bool feasible = false;
  // Cardinality of a minimum cover (0 only for an empty universe).
  size_t min_size = 0;
  // All distinct covers of cardinality min_size, each sorted ascending,
  // capped at max_covers.
  std::vector<std::vector<size_t>> covers;
  // True if the cap truncated the enumeration.
  bool truncated = false;
  // True if the thread's ResourceGovernor stopped the search early. Every
  // returned cover is still a genuine cover, but the enumeration may be
  // incomplete and `covers` may not be of globally minimum cardinality.
  bool aborted = false;
};

// All minimum-cardinality covers of `universe` by `sets`.
MinimumCoversResult FindAllMinimumCovers(uint64_t universe,
                                         const std::vector<uint64_t>& sets,
                                         size_t max_covers = 1024,
                                         ThreadPool* pool = nullptr,
                                         size_t* branch_tasks = nullptr);

// All minimal (irredundant) covers: covers from which no set can be removed.
// Every minimum cover is minimal; minimal covers of larger cardinality are
// the extra logical plans CoreCover* passes to the M2 optimizer.
// `aborted`, when non-null, is set iff the thread's ResourceGovernor stopped
// the enumeration early (returned covers are genuine but possibly not all).
std::vector<std::vector<size_t>> FindAllMinimalCovers(
    uint64_t universe, const std::vector<uint64_t>& sets,
    size_t max_covers = 4096, bool* truncated = nullptr,
    ThreadPool* pool = nullptr, size_t* branch_tasks = nullptr,
    bool* aborted = nullptr);

}  // namespace vbr

#endif  // VBR_REWRITE_SET_COVER_H_
