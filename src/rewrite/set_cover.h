#ifndef VBR_REWRITE_SET_COVER_H_
#define VBR_REWRITE_SET_COVER_H_

#include <stddef.h>

#include <cstdint>
#include <vector>

namespace vbr {

// Exact set covering over a universe of at most 64 elements, used by
// CoreCover to cover query subgoals with tuple-cores (Section 4.2) and by
// CoreCover* to enumerate all minimal covers (Section 5.1). Sets are
// bitmasks; a cover is a sorted list of set indices.

struct MinimumCoversResult {
  // True if some cover exists.
  bool feasible = false;
  // Cardinality of a minimum cover (0 only for an empty universe).
  size_t min_size = 0;
  // All distinct covers of cardinality min_size, each sorted ascending,
  // capped at max_covers.
  std::vector<std::vector<size_t>> covers;
  // True if the cap truncated the enumeration.
  bool truncated = false;
};

// All minimum-cardinality covers of `universe` by `sets`.
MinimumCoversResult FindAllMinimumCovers(uint64_t universe,
                                         const std::vector<uint64_t>& sets,
                                         size_t max_covers = 1024);

// All minimal (irredundant) covers: covers from which no set can be removed.
// Every minimum cover is minimal; minimal covers of larger cardinality are
// the extra logical plans CoreCover* passes to the M2 optimizer.
std::vector<std::vector<size_t>> FindAllMinimalCovers(
    uint64_t universe, const std::vector<uint64_t>& sets,
    size_t max_covers = 4096, bool* truncated = nullptr);

}  // namespace vbr

#endif  // VBR_REWRITE_SET_COVER_H_
