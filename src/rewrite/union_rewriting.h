#ifndef VBR_REWRITE_UNION_REWRITING_H_
#define VBR_REWRITE_UNION_REWRITING_H_

#include <string>
#include <vector>

#include "cq/query.h"
#include "engine/database.h"

namespace vbr {

// Section 8 extension: when views carry built-in comparison predicates, a
// rewriting of a conjunctive query can be a UNION of conjunctive queries.
// This module provides union queries, their evaluation, containment and
// equivalence for the comparison-free fragment (Sagiv-Yannakakis: a CQ is
// contained in a union iff it is contained in some disjunct), and the
// cost-shape accounting the paper's closing example discusses (P1: two
// disjuncts of two subgoals vs P2: one disjunct of three).
//
// Symbolic equivalence with comparisons is Pi^p_2-hard and out of scope;
// rewritings over comparison-bearing views are validated operationally (see
// tests/rewrite/union_rewriting_test.cc), which the closed-world setting
// makes meaningful.

class UnionQuery {
 public:
  UnionQuery() = default;
  explicit UnionQuery(std::vector<ConjunctiveQuery> disjuncts);

  const std::vector<ConjunctiveQuery>& disjuncts() const { return disjuncts_; }
  size_t num_disjuncts() const { return disjuncts_.size(); }

  // Head arity shared by all disjuncts.
  size_t head_arity() const;

  // Total subgoal count across disjuncts (M1-style size measure).
  size_t TotalSubgoals() const;

  std::string ToString() const;

 private:
  std::vector<ConjunctiveQuery> disjuncts_;
};

// Set-union of the disjunct answers.
Relation EvaluateUnion(const UnionQuery& u, const Database& db);

// Containment / equivalence for comparison-free unions.
bool IsContainedIn(const UnionQuery& u1, const UnionQuery& u2);
bool AreEquivalent(const UnionQuery& u1, const UnionQuery& u2);

// Expands every disjunct over the views (disjunct bodies must use only view
// predicates; view bodies may contain comparisons).
UnionQuery ExpandUnionRewriting(const UnionQuery& p, const ViewSet& views);

// Equivalence of a union rewriting against a conjunctive query, decided
// symbolically. Requires every involved view to be comparison-free
// (VBR_CHECKed); use operational validation otherwise.
bool IsEquivalentUnionRewriting(const UnionQuery& p,
                                const ConjunctiveQuery& query,
                                const ViewSet& views);

}  // namespace vbr

#endif  // VBR_REWRITE_UNION_REWRITING_H_
