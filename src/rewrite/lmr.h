#ifndef VBR_REWRITE_LMR_H_
#define VBR_REWRITE_LMR_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "cq/query.h"

namespace vbr {

// Section 3's structural taxonomy of rewritings (Figure 1):
//
//   minimal rewriting      — no redundant subgoal as a query;
//   locally minimal (LMR)  — no subgoal can be dropped while the expansion
//                            stays equivalent to the query;
//   containment minimal    — an LMR properly containing no other LMR;
//   globally minimal (GMR) — fewest subgoals overall.
//
// Lemma 3.1 orders LMRs: containment implies no more subgoals, which is why
// the CMRs (the bottom of the partial order) contain a GMR.

// True iff `p` is an equivalent rewriting of `query` and removing any single
// subgoal breaks equivalence. (Single-subgoal checks suffice: removing
// subgoals only relaxes the expansion, so if P minus a set stays equivalent
// then so does P minus any single element of it.)
bool IsLocallyMinimalRewriting(const ConjunctiveQuery& p,
                               const ConjunctiveQuery& query,
                               const ViewSet& views);

// Greedily removes subgoals (leftmost first, restarting after each removal)
// while the expansion stays equivalent to `query`. `p` must be an equivalent
// rewriting; the result is an LMR.
ConjunctiveQuery MakeLocallyMinimal(const ConjunctiveQuery& p,
                                    const ConjunctiveQuery& query,
                                    const ViewSet& views);

// Enumerates the LMRs among queries built from subsets of the view tuples
// T(Q, V) of size at most `max_subgoals` (Theorem 3.1 bounds useful
// rewritings by the number of query subgoals). Intended for structure
// exploration on small inputs; cost is exponential in the number of view
// tuples.
std::vector<ConjunctiveQuery> EnumerateLmrsOverViewTuples(
    const ConjunctiveQuery& query, const ViewSet& views, size_t max_subgoals,
    size_t max_results = 256);

// Edges of the proper-containment partial order among `rewritings`:
// (i, j) present iff rewritings[i] is properly contained in rewritings[j]
// as queries. Together with Lemma 3.1 this reconstructs Figure 2.
std::vector<std::pair<size_t, size_t>> ProperContainmentEdges(
    const std::vector<ConjunctiveQuery>& rewritings);

// Indices of the containment-minimal rewritings among `lmrs`: those with no
// other entry properly contained in them.
std::vector<size_t> ContainmentMinimalIndices(
    const std::vector<ConjunctiveQuery>& lmrs);

}  // namespace vbr

#endif  // VBR_REWRITE_LMR_H_
