// VBIN value codecs for the rewrite-layer types: expansions, equivalence
// certificates, CoreCover stats, and whole-plan files.  Builds on the CQ
// codecs (cq/vbin_codec.h); the same determinism and bounds-checking rules
// apply.
#ifndef VBR_REWRITE_VBIN_CODEC_H_
#define VBR_REWRITE_VBIN_CODEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/vbin.h"
#include "cq/vbin_codec.h"
#include "rewrite/certificate.h"
#include "rewrite/core_cover.h"
#include "rewrite/expansion.h"

namespace vbr {

void EncodeExpansion(const Expansion& expansion, vbin::FileWriter* writer);
bool DecodeExpansion(vbin::Reader* reader, const vbin::FileView& file,
                     Expansion* out);

void EncodeCertificate(const EquivalenceCertificate& certificate,
                       vbin::FileWriter* writer);
bool DecodeCertificate(vbin::Reader* reader, const vbin::FileView& file,
                       EquivalenceCertificate* out);

void EncodeCoreCoverStats(const CoreCoverStats& stats,
                          vbin::FileWriter* writer);
bool DecodeCoreCoverStats(vbin::Reader* reader, CoreCoverStats* out);

// -- Whole-file conveniences -------------------------------------------------

// kCertificate file: one EquivalenceCertificate.
std::string EncodeCertificateFile(const EquivalenceCertificate& certificate);
vbin::Status DecodeCertificateFile(std::string_view bytes,
                                   EquivalenceCertificate* out);

// kPlan file: a chosen rewriting plus the filter atoms appended to it.
struct PlanRecord {
  ConjunctiveQuery rewriting;
  std::vector<Atom> filter_atoms;

  friend bool operator==(const PlanRecord&, const PlanRecord&) = default;
};
std::string EncodePlanFile(const PlanRecord& plan);
vbin::Status DecodePlanFile(std::string_view bytes, PlanRecord* out);

}  // namespace vbr

#endif  // VBR_REWRITE_VBIN_CODEC_H_
