#include "rewrite/lmr.h"

#include <algorithm>
#include <bit>
#include <string>
#include <unordered_set>

#include "common/check.h"
#include "cq/containment.h"
#include "rewrite/rewriting.h"
#include "rewrite/view_tuple.h"

namespace vbr {

bool IsLocallyMinimalRewriting(const ConjunctiveQuery& p,
                               const ConjunctiveQuery& query,
                               const ViewSet& views) {
  if (!IsEquivalentRewriting(p, query, views)) return false;
  for (size_t i = 0; i < p.num_subgoals(); ++i) {
    const ConjunctiveQuery candidate = p.WithoutSubgoal(i);
    if (!candidate.IsSafe()) continue;
    // Dropping a subgoal relaxes the expansion, so equivalence reduces to
    // the contained direction.
    if (ExpansionContainedInQuery(candidate, query, views)) return false;
  }
  return true;
}

ConjunctiveQuery MakeLocallyMinimal(const ConjunctiveQuery& p,
                                    const ConjunctiveQuery& query,
                                    const ViewSet& views) {
  VBR_CHECK_MSG(IsEquivalentRewriting(p, query, views),
                "MakeLocallyMinimal requires an equivalent rewriting");
  ConjunctiveQuery current = p;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < current.num_subgoals(); ++i) {
      const ConjunctiveQuery candidate = current.WithoutSubgoal(i);
      if (!candidate.IsSafe()) continue;
      if (ExpansionContainedInQuery(candidate, query, views)) {
        current = candidate;
        changed = true;
        break;
      }
    }
  }
  return current;
}

std::vector<ConjunctiveQuery> EnumerateLmrsOverViewTuples(
    const ConjunctiveQuery& query, const ViewSet& views, size_t max_subgoals,
    size_t max_results) {
  const std::vector<ViewTuple> tuples = ComputeViewTuples(query, views);
  std::vector<ConjunctiveQuery> results;
  std::unordered_set<std::string> seen;  // canonical text of sorted bodies

  // Enumerate subsets by increasing size via bitmask iteration (tuple counts
  // here are small by design).
  VBR_CHECK_MSG(tuples.size() <= 20,
                "LMR enumeration is for small exploratory inputs");
  const size_t limit = size_t{1} << tuples.size();
  for (size_t mask = 1; mask < limit && results.size() < max_results;
       ++mask) {
    const size_t size = static_cast<size_t>(std::popcount(mask));
    if (size > max_subgoals) continue;
    std::vector<Atom> body;
    for (size_t i = 0; i < tuples.size(); ++i) {
      if (mask & (size_t{1} << i)) body.push_back(tuples[i].atom);
    }
    ConjunctiveQuery candidate(query.head(), std::move(body));
    if (!candidate.IsSafe()) continue;
    if (!IsLocallyMinimalRewriting(candidate, query, views)) continue;
    // Deduplicate by order-insensitive body text.
    std::vector<std::string> parts;
    for (const Atom& a : candidate.body()) parts.push_back(a.ToString());
    std::sort(parts.begin(), parts.end());
    std::string key;
    for (const std::string& s : parts) key += s + ";";
    if (seen.insert(key).second) results.push_back(std::move(candidate));
  }
  return results;
}

std::vector<std::pair<size_t, size_t>> ProperContainmentEdges(
    const std::vector<ConjunctiveQuery>& rewritings) {
  std::vector<std::pair<size_t, size_t>> edges;
  for (size_t i = 0; i < rewritings.size(); ++i) {
    for (size_t j = 0; j < rewritings.size(); ++j) {
      if (i == j) continue;
      if (IsProperlyContainedIn(rewritings[i], rewritings[j])) {
        edges.emplace_back(i, j);
      }
    }
  }
  return edges;
}

std::vector<size_t> ContainmentMinimalIndices(
    const std::vector<ConjunctiveQuery>& lmrs) {
  std::vector<size_t> result;
  for (size_t i = 0; i < lmrs.size(); ++i) {
    bool has_smaller = false;
    for (size_t j = 0; j < lmrs.size() && !has_smaller; ++j) {
      if (i != j && IsProperlyContainedIn(lmrs[j], lmrs[i])) {
        has_smaller = true;
      }
    }
    if (!has_smaller) result.push_back(i);
  }
  return result;
}

}  // namespace vbr
