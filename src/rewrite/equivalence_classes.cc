#include "rewrite/equivalence_classes.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/check.h"
#include "cq/containment.h"

namespace vbr {

namespace {

// A sound signature: equivalent queries have equal signatures. The body
// predicate multiset is taken from the minimized query (cores of equivalent
// queries are isomorphic).
struct ViewSignature {
  size_t head_arity;
  std::vector<std::pair<Symbol, size_t>> body_predicates;  // sorted

  bool operator<(const ViewSignature& other) const {
    if (head_arity != other.head_arity) return head_arity < other.head_arity;
    return body_predicates < other.body_predicates;
  }
};

ViewSignature SignatureOf(const ConjunctiveQuery& minimized) {
  ViewSignature sig;
  sig.head_arity = minimized.head().arity();
  for (const Atom& a : minimized.body()) {
    sig.body_predicates.emplace_back(a.predicate(), a.arity());
  }
  std::sort(sig.body_predicates.begin(), sig.body_predicates.end());
  return sig;
}

}  // namespace

ViewClasses GroupViewsByEquivalence(const ViewSet& views) {
  ViewClasses result;
  result.class_of.assign(views.size(), 0);

  std::vector<ConjunctiveQuery> minimized;
  minimized.reserve(views.size());
  for (const View& v : views) minimized.push_back(Minimize(v));

  // Bucket by signature; compare pairwise within buckets.
  std::map<ViewSignature, std::vector<size_t>> buckets;
  for (size_t i = 0; i < views.size(); ++i) {
    buckets[SignatureOf(minimized[i])].push_back(i);
  }

  std::vector<size_t> class_rep;  // class id -> representative view index.
  for (auto& [sig, members] : buckets) {
    std::vector<size_t> local_classes;  // class ids present in this bucket.
    for (size_t i : members) {
      bool placed = false;
      for (size_t c : local_classes) {
        if (AreEquivalent(minimized[i], minimized[class_rep[c]])) {
          result.class_of[i] = c;
          placed = true;
          break;
        }
      }
      if (!placed) {
        const size_t c = class_rep.size();
        class_rep.push_back(i);
        local_classes.push_back(c);
        result.class_of[i] = c;
      }
    }
  }
  // Re-number classes by first occurrence for deterministic output.
  std::vector<size_t> renumber(class_rep.size(), SIZE_MAX);
  size_t next = 0;
  for (size_t i = 0; i < views.size(); ++i) {
    size_t& r = renumber[result.class_of[i]];
    if (r == SIZE_MAX) r = next++;
  }
  result.representatives.assign(next, SIZE_MAX);
  for (size_t i = 0; i < views.size(); ++i) {
    result.class_of[i] = renumber[result.class_of[i]];
    if (result.representatives[result.class_of[i]] == SIZE_MAX) {
      result.representatives[result.class_of[i]] = i;
    }
  }
  return result;
}

ViewTupleClasses GroupViewTuplesByCore(const std::vector<ViewTuple>& tuples,
                                       const std::vector<TupleCore>& cores) {
  VBR_CHECK(tuples.size() == cores.size());
  ViewTupleClasses result;
  result.class_of.assign(tuples.size(), 0);
  std::unordered_map<uint64_t, size_t> class_of_mask;
  for (size_t i = 0; i < tuples.size(); ++i) {
    auto [it, inserted] =
        class_of_mask.emplace(cores[i].covered_mask, result.num_classes());
    if (inserted) result.representatives.push_back(i);
    result.class_of[i] = it->second;
  }
  return result;
}

}  // namespace vbr
