#include "rewrite/view_tuple.h"

#include <unordered_set>

#include "common/budget.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "cq/homomorphism.h"

namespace vbr {

namespace {

// Tuples of one view on the canonical database, deduplicated per view. Runs
// concurrently for distinct views: it only reads the shared canonical
// database and interns symbols (thread-safe).
std::vector<ViewTuple> TuplesOfView(const CanonicalDatabase& canonical,
                                    const AtomIndex& facts_index,
                                    const View& view, size_t view_index) {
  VBR_CHECK_MSG(view.IsSafe(), "view definitions must be safe");
  VBR_CHECK_MSG(!view.HasBuiltins(),
                "view tuples require comparison-free views");
  std::vector<ViewTuple> result;
  std::unordered_set<Atom, AtomHash> seen;
  ResourceGovernor* const governor = ResourceGovernor::Current();
  ForEachHomomorphism(
      view.body(), facts_index, {}, [&](const Substitution& h) {
        const Atom tuple = canonical.Thaw(h.Apply(view.head()));
        if (seen.insert(tuple).second) {
          result.push_back(ViewTuple{tuple, view_index});
          // Every generated tuple is governed work; an aborted enumeration
          // leaves a prefix of genuine tuples, which downstream stages may
          // only under-cover with.
          if (governor != nullptr) {
            governor->ChargeWork(1);
            return governor->KeepGoing("corecover.view_tuples");
          }
        }
        return true;
      });
  return result;
}

}  // namespace

std::vector<ViewTuple> ComputeViewTuples(const ConjunctiveQuery& query,
                                         const ViewSet& views,
                                         ThreadPool* pool) {
  const CanonicalDatabase canonical(query);
  // One index over the canonical facts, shared read-only by every view's
  // search (the per-view per-predicate hash rebuild used to dominate this
  // stage for large view sets).
  const AtomIndex facts_index(canonical.facts());
  std::vector<std::vector<ViewTuple>> per_view(views.size());
  const auto compute = [&](size_t vi) {
    per_view[vi] = TuplesOfView(canonical, facts_index, views[vi], vi);
  };
  if (pool != nullptr) {
    pool->ParallelFor(views.size(), compute);
  } else {
    for (size_t vi = 0; vi < views.size(); ++vi) compute(vi);
  }
  // Concatenate in view order: output is independent of the thread count.
  std::vector<ViewTuple> result;
  for (std::vector<ViewTuple>& tuples : per_view) {
    result.insert(result.end(), std::make_move_iterator(tuples.begin()),
                  std::make_move_iterator(tuples.end()));
  }
  return result;
}

}  // namespace vbr
