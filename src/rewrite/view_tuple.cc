#include "rewrite/view_tuple.h"

#include <unordered_set>

#include "common/check.h"
#include "cq/homomorphism.h"

namespace vbr {

std::vector<ViewTuple> ComputeViewTuples(const ConjunctiveQuery& query,
                                         const ViewSet& views) {
  const CanonicalDatabase canonical(query);
  std::vector<ViewTuple> result;
  for (size_t vi = 0; vi < views.size(); ++vi) {
    const View& view = views[vi];
    VBR_CHECK_MSG(view.IsSafe(), "view definitions must be safe");
    VBR_CHECK_MSG(!view.HasBuiltins(),
                  "view tuples require comparison-free views");
    std::unordered_set<Atom, AtomHash> seen;
    ForEachHomomorphism(
        view.body(), canonical.facts(), {}, [&](const Substitution& h) {
          const Atom tuple = canonical.Thaw(h.Apply(view.head()));
          if (seen.insert(tuple).second) {
            result.push_back(ViewTuple{tuple, vi});
          }
          return true;
        });
  }
  return result;
}

}  // namespace vbr
