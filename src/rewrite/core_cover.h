#ifndef VBR_REWRITE_CORE_COVER_H_
#define VBR_REWRITE_CORE_COVER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/trace.h"
#include "cq/query.h"
#include "rewrite/equivalence_classes.h"
#include "rewrite/tuple_core.h"
#include "rewrite/view_index.h"
#include "rewrite/view_tuple.h"

namespace vbr {

// The CoreCover algorithm (Section 4, Figure 4) and its CoreCover* variant
// (Section 5):
//
//   1. Minimize the query.
//   2. Compute the view tuples T(Q, V) on the canonical database.
//   3. Compute each tuple's tuple-core.
//   4. CoreCover: cover the query subgoals with a minimum number of
//      tuple-cores; each cover is a globally-minimal rewriting (GMR) — an
//      optimal rewriting under cost model M1.
//      CoreCover*: enumerate all minimal covers instead; these are all the
//      minimal rewritings over view tuples, the search space that is
//      guaranteed to contain an M2-optimal rewriting (Theorem 5.1).
//      Empty-core tuples are reported as filter candidates the optimizer may
//      add (rewriting P3 in the car-loc-part example).

// Outcome of a CoreCover / CoreCoverStar run.
enum class CoreCoverStatus {
  kOk = 0,
  // The minimized query has more subgoals than the 64-bit tuple-core
  // bitmask supports (see the contract in set_cover.h). The pipeline did
  // not run; the result carries the minimized query, an explanatory
  // `error`, and no rewritings.
  kUnsupportedQueryTooLarge,
  // The thread's ResourceGovernor (common/budget.h) ran out mid-pipeline.
  // The result carries everything completed before the budget died — every
  // returned rewriting corresponds to a genuine cover of genuine view tuples
  // — but the enumeration is incomplete: rewritings may be missing and the
  // returned ones may not be minimum. `result.exhaustion` says which budget
  // died and at which check site.
  kBudgetExhausted,
};

struct CoreCoverOptions {
  // Section 5.2: collapse views equivalent as queries to one representative
  // before computing view tuples.
  bool group_views = true;
  // Section 5.2: run the covering over tuple-core equivalence classes. The
  // returned rewritings use the class representatives; swap any member of
  // the same class to obtain further rewritings.
  bool group_view_tuples = true;
  // Cap on the number of rewritings returned.
  size_t max_rewritings = 1024;
  // Candidate view selection: restrict the pipeline to views that can
  // possibly contribute a view tuple (kCoverAll summary test) before any
  // per-view containment work runs. Sound — excluded views provably
  // produce zero tuples — so plans are byte-identical on or off; the
  // property suite pins that. `view_index` optionally supplies a prebuilt
  // index over `views` (the planner shares one per catalog snapshot);
  // when null the filter falls back to a linear summary scan, which still
  // skips the per-view minimization work of grouping.
  bool use_view_index = true;
  const ViewIndex* view_index = nullptr;
  // Debug cross-check: verify every returned rewriting's expansion is
  // equivalent to the query (Theorem 4.1 makes this redundant; tests use
  // it).
  bool verify_rewritings = false;
  // Worker threads for the parallel stages (view-tuple generation,
  // tuple-core computation, rewriting verification, top-level set-cover
  // branches). 0 means std::thread::hardware_concurrency(); 1 runs the
  // pre-threading serial code path bit-for-bit. Results are deterministic
  // and identical for every value (see DESIGN.md "Threading model").
  size_t num_threads = 0;
  // When a sink is attached, the run emits a "core_cover" span (a child of
  // trace.parent_id) with one child span per pipeline stage: minimize,
  // group_views, view_tuples, tuple_cores, set_cover, and verify. Inert by
  // default; the traced code costs one branch per stage when inert.
  TraceContext trace;
};

struct CoreCoverStats {
  size_t num_views = 0;
  // Views surviving candidate selection (== num_views when the filter is
  // off). The views-considered-vs-catalog-size ratio that makes catalog
  // scaling observable.
  size_t num_candidate_views = 0;
  size_t num_view_classes = 0;
  size_t num_view_tuples = 0;       // after view grouping, before tuple grouping
  size_t num_tuple_classes = 0;
  size_t num_nonempty_cores = 0;    // among class representatives
  size_t minimum_cover_size = 0;    // 0 when no rewriting exists
  double minimize_ms = 0;
  double view_tuple_ms = 0;
  double tuple_core_ms = 0;
  double cover_ms = 0;
  double total_ms = 0;
  // Parallel-stage bookkeeping: how many tasks each stage dispatched. These
  // are counts of logical work items, deterministic and independent of
  // num_threads (the M2/M3 optimizers and the determinism suite rely on
  // that), unlike the wall-clock timings above.
  size_t view_tuple_tasks = 0;
  size_t tuple_core_tasks = 0;
  size_t verify_tasks = 0;
  size_t cover_branch_tasks = 0;
  // The resolved thread count the run used (num_threads, with 0 resolved to
  // the hardware concurrency).
  size_t threads_used = 1;
  // Governed work units charged to the run's ResourceGovernor (0 when the
  // run was ungoverned). Deterministic under a pure work budget.
  uint64_t work_used = 0;
  // True iff max_rewritings truncated the cover enumeration — the same
  // condition as CoreCoverResult::truncated, surfaced here so stats
  // consumers (Explain, metrics) cannot miss a silent cap.
  bool hit_rewriting_cap = false;
};

// One tuple of T(Q, V) with its core and class metadata.
struct AnnotatedViewTuple {
  ViewTuple tuple;
  TupleCore core;
  size_t class_id = 0;
  bool is_class_representative = false;
};

struct CoreCoverResult {
  // kOk unless the input is outside the supported fragment (e.g. more than
  // 64 subgoals after minimization). Unsupported inputs yield an empty
  // result with `error` set instead of aborting the process.
  CoreCoverStatus status = CoreCoverStatus::kOk;
  // Human-readable detail when status != kOk.
  std::string error;
  // True if at least one equivalent rewriting exists.
  bool has_rewriting = false;
  // The minimized query the machinery ran on (subgoal indices in cores
  // refer to this query's body).
  ConjunctiveQuery minimized_query;
  // The rewritings: all GMRs for CoreCover, all minimal rewritings over
  // view tuples for CoreCoverStar (capped by max_rewritings).
  std::vector<ConjunctiveQuery> rewritings;
  // Every view tuple with its core. Tuples of non-representative views are
  // not computed when group_views is set.
  std::vector<AnnotatedViewTuple> view_tuples;
  // Indices (into view_tuples) of empty-core tuples: candidate filtering
  // subgoals for the M2 optimizer.
  std::vector<size_t> filter_candidates;
  CoreCoverStats stats;
  bool truncated = false;
  // Which budget died and where, when status == kBudgetExhausted.
  BudgetExhaustion exhaustion;

  bool ok() const { return status == CoreCoverStatus::kOk; }
};

// Globally-minimal rewritings (optimal under M1).
CoreCoverResult CoreCover(const ConjunctiveQuery& query, const ViewSet& views,
                          const CoreCoverOptions& options = {});

// All minimal rewritings over view tuples (the M2 search space).
CoreCoverResult CoreCoverStar(const ConjunctiveQuery& query,
                              const ViewSet& views,
                              const CoreCoverOptions& options = {});

}  // namespace vbr

#endif  // VBR_REWRITE_CORE_COVER_H_
