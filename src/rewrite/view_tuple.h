#ifndef VBR_REWRITE_VIEW_TUPLE_H_
#define VBR_REWRITE_VIEW_TUPLE_H_

#include <cstddef>
#include <vector>

#include "cq/query.h"
#include "rewrite/canonical_db.h"

namespace vbr {

class ThreadPool;

// A view tuple (Section 3.3): a tuple the view produces on the query's
// canonical database, with frozen constants restored to query variables.
// Lemma 3.2 shows every rewriting can be transformed to one whose subgoals
// are all view tuples, so these atoms are the building blocks of the search
// space.
struct ViewTuple {
  // The tuple as an atom over the view predicate; arguments are terms of
  // the (minimized) query.
  Atom atom;
  // Index of the defining view in the ViewSet passed to ComputeViewTuples.
  size_t view_index = 0;
};

// Computes T(Q, V): applies each view definition in `views` to the canonical
// database of `query` (which must be minimized by the caller for the
// CoreCover pipeline, though any safe query works) and thaws the results.
// Duplicate tuples from one view are deduplicated; the same atom produced by
// two different views yields two entries (they reference different view
// relations).
//
// With a non-null `pool`, the per-view homomorphism searches run in
// parallel; results are concatenated in view order, so the output is
// identical for every thread count.
std::vector<ViewTuple> ComputeViewTuples(const ConjunctiveQuery& query,
                                         const ViewSet& views,
                                         ThreadPool* pool = nullptr);

}  // namespace vbr

#endif  // VBR_REWRITE_VIEW_TUPLE_H_
