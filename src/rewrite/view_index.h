#ifndef VBR_REWRITE_VIEW_INDEX_H_
#define VBR_REWRITE_VIEW_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cq/query.h"

namespace vbr {

// Sub-linear candidate view selection (DESIGN.md "View catalog indexing").
//
// Every rewriting algorithm in this codebase starts by asking, per view,
// "can this view contribute anything to this query?" — and at catalog
// scale (10^5-10^6 views) even asking the question linearly caps
// throughput: CoreCover minimizes every view while grouping equivalence
// classes, MiniCon builds a per-view atom index, Bucket computes view
// tuples per view. The ViewIndex answers the question for the whole
// catalog at once: views are keyed by the (predicate, arity) shapes of
// their body atoms, and a query retrieves exactly the views whose shapes
// are compatible, in time proportional to the CANDIDATES rather than the
// catalog.
//
// Soundness (why a filtered run plans byte-identically to a full scan):
//
//  * kCoverAll (CoreCover, Bucket): a view contributes a view tuple only
//    if its body maps homomorphically into the query's canonical database,
//    whose facts are the frozen query body atoms. A homomorphism preserves
//    (predicate, arity) and fixes constants, and frozen constants are
//    FRESH symbols that can never equal a view constant — so every body
//    key of a contributing view appears among the query's body keys, and
//    every view constant appears among the query's constants. Views
//    failing either test produce zero tuples; dropping them changes
//    nothing downstream.
//  * kAnyOverlap (MiniCon): an MCD exists only if some query subgoal maps
//    onto some view body atom of the same (predicate, arity). Constants
//    are NOT filtered: MiniCon lets a query constant select on a view
//    variable (AttachConstant), so only shape overlap is sound here.
//  * Equivalence-class atomicity: views equivalent as queries have equal
//    body key sets and equal constant sets (containment mappings preserve
//    predicates and fix constants, in both directions), so the filter
//    keeps or drops every class wholesale and GroupViewsByEquivalence
//    elects the same representatives among survivors.
//
// Both properties are pinned by tests/property/view_index_equivalence_test
// against the unfiltered pipeline.

// Which necessary condition the candidate set realizes.
enum class CandidateMode {
  // Views whose body keys are a subset of the query's body keys and whose
  // constants all appear in the query (CoreCover / Bucket view tuples).
  kCoverAll,
  // Views sharing at least one body key with the query (MiniCon MCDs).
  kAnyOverlap,
};

// One view's index entry: the sorted, deduplicated (predicate, arity) keys
// of its body and a Bloom mask over its body constants. Invariant under
// variable renaming, and identical for all members of a view equivalence
// class — which is what makes candidate filtering class-atomic.
struct ViewSummary {
  std::vector<uint64_t> keys;
  uint64_t constant_bloom = 0;
};

// The same summary for a query body (the minimized query, in the pipeline).
struct QueryBodySummary {
  std::vector<uint64_t> keys;
  uint64_t constant_bloom = 0;
};

// (predicate, arity) packed into one posting key.
inline uint64_t BodyKey(Symbol predicate, size_t arity) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(predicate)) << 32) |
         static_cast<uint32_t>(arity);
}

ViewSummary SummarizeView(const View& view);
QueryBodySummary SummarizeQueryBody(const ConjunctiveQuery& query);

// The single candidate predicate both the index and the linear fallback
// evaluate — one definition, so the two retrieval paths cannot diverge.
bool ViewMayContribute(const ViewSummary& view, const QueryBodySummary& query,
                       CandidateMode mode);

// Linear reference implementation: summarize every view and test it.
// Produces EXACTLY the candidate set ViewIndex::Candidates returns (the
// property suite compares them); used when no prebuilt index is at hand.
std::vector<size_t> LinearCandidates(const ViewSet& views,
                                     const ConjunctiveQuery& query,
                                     CandidateMode mode);

class ViewIndex;

// How an algorithm taking a catalog should select candidates: on/off, and
// optionally a prebuilt index over exactly that catalog (the planner passes
// the snapshot's). Default-constructed == filter on, linear summary scan.
struct CandidateFilterOptions {
  bool enabled = true;
  const ViewIndex* index = nullptr;
};

// Candidate views of `views` for `query` under `mode`, honoring `filter`:
// all views when disabled, `filter.index->Candidates` when an index is
// supplied (it must describe `views`), LinearCandidates otherwise.
std::vector<size_t> SelectCandidates(const ViewSet& views,
                                     const ConjunctiveQuery& query,
                                     CandidateMode mode,
                                     const CandidateFilterOptions& filter);

// An immutable inverted index over one view catalog: body key -> sorted
// view ids. Built once per catalog generation and shared read-only across
// requests (the planner hangs one off each RCU ViewSnapshot); delta
// mutations derive a patched copy via WithAdded / WithRemoved without
// re-summarizing unchanged views.
class ViewIndex {
 public:
  explicit ViewIndex(const ViewSet& views);

  size_t num_views() const { return summaries_.size(); }
  const ViewSummary& summary(size_t view) const { return summaries_[view]; }

  // Candidate view indices for `query` under `mode`, sorted ascending —
  // ascending order preserves catalog order, which downstream grouping and
  // tuple generation rely on for byte-identical plans. Cost is
  // O(candidates + postings touched), independent of catalog size.
  std::vector<size_t> Candidates(const ConjunctiveQuery& query,
                                 CandidateMode mode) const;
  std::vector<size_t> Candidates(const QueryBodySummary& query,
                                 CandidateMode mode) const;

  // A new index describing this catalog with `added` appended (their ids
  // continue the current numbering). Summaries of existing views are
  // shared, postings are extended in place on the copy.
  std::shared_ptr<const ViewIndex> WithAdded(const ViewSet& added) const;

  // A new index over the subset of views in `keep` (ascending original
  // ids); kept views are renumbered 0..keep.size()-1 in order. Summaries
  // are reused; postings are rebuilt from them.
  std::shared_ptr<const ViewIndex> WithRemoved(
      const std::vector<size_t>& keep) const;

 private:
  ViewIndex() = default;

  void AppendPostings(size_t first_view);

  std::vector<ViewSummary> summaries_;
  // Body key -> ascending view ids. Ids are 32-bit: the catalog cap this
  // index exists for (10^6) is far below 2^32.
  std::unordered_map<uint64_t, std::vector<uint32_t>> postings_;
  // Views with an empty body have no postings but trivially pass the
  // kCoverAll subset test; kept separately (ascending) and merged in.
  std::vector<uint32_t> empty_body_views_;
};

}  // namespace vbr

#endif  // VBR_REWRITE_VIEW_INDEX_H_
