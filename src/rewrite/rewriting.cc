#include "rewrite/rewriting.h"

#include "cq/containment.h"
#include "rewrite/expansion.h"

namespace vbr {

bool UsesOnlyViews(const ConjunctiveQuery& p, const ViewSet& views) {
  for (const Atom& a : p.body()) {
    if (FindView(views, a.predicate()) == nullptr) return false;
  }
  return true;
}

bool IsEquivalentRewriting(const ConjunctiveQuery& p,
                           const ConjunctiveQuery& query,
                           const ViewSet& views) {
  if (!UsesOnlyViews(p, views)) return false;
  const Expansion exp = ExpandRewriting(p, views);
  return AreEquivalent(exp.query, query);
}

bool ExpansionContainedInQuery(const ConjunctiveQuery& p,
                               const ConjunctiveQuery& query,
                               const ViewSet& views) {
  const Expansion exp = ExpandRewriting(p, views);
  return IsContainedIn(exp.query, query);
}

}  // namespace vbr
