#include "rewrite/canonical_db.h"

#include "common/check.h"
#include "cq/term.h"

namespace vbr {

CanonicalDatabase::CanonicalDatabase(const ConjunctiveQuery& query) {
  VBR_CHECK_MSG(!query.HasBuiltins(),
                "canonical databases require comparison-free queries");
  for (Term v : query.Variables()) {
    const Term frozen = FreshConst("c");
    freeze_.Bind(v, frozen);
    thaw_.emplace(frozen, v);
  }
  facts_.reserve(query.num_subgoals());
  for (const Atom& a : query.body()) {
    facts_.push_back(freeze_.Apply(a));
  }
}

Term CanonicalDatabase::Thaw(Term t) const {
  auto it = thaw_.find(t);
  return it == thaw_.end() ? t : it->second;
}

Atom CanonicalDatabase::Thaw(const Atom& atom) const {
  std::vector<Term> args;
  args.reserve(atom.arity());
  for (Term t : atom.args()) args.push_back(Thaw(t));
  return Atom(atom.predicate(), std::move(args));
}

}  // namespace vbr
