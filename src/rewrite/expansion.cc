#include "rewrite/expansion.h"

#include "common/check.h"
#include "cq/substitution.h"
#include "cq/term.h"

namespace vbr {

const View* FindView(const ViewSet& views, Symbol predicate) {
  for (const View& v : views) {
    if (v.head().predicate() == predicate) return &v;
  }
  return nullptr;
}

std::vector<Atom> ExpandViewAtom(const Atom& view_atom, const View& view,
                                 std::vector<Term>* out_existentials) {
  VBR_CHECK_MSG(view_atom.arity() == view.head().arity(),
                "view atom arity mismatches view definition");
  Substitution subst;
  // Head variables map to the atom's arguments. A repeated head variable
  // must receive equal arguments; the paper's views have distinct head
  // variables, but we support the general case by equating through the
  // first occurrence (later occurrences must then match under Bind).
  for (size_t i = 0; i < view_atom.arity(); ++i) {
    const Term head_term = view.head().arg(i);
    const Term arg = view_atom.arg(i);
    if (head_term.is_variable()) {
      VBR_CHECK_MSG(subst.Bind(head_term, arg),
                    "repeated view head variable bound to unequal arguments");
    } else {
      VBR_CHECK_MSG(head_term == arg,
                    "view head constant mismatches atom argument");
    }
  }
  // Existential variables become globally fresh.
  for (Term t : view.Variables()) {
    if (!subst.IsBound(t)) {
      const Term fresh = FreshVar("E");
      subst.Bind(t, fresh);
      if (out_existentials != nullptr) out_existentials->push_back(fresh);
    }
  }
  return subst.Apply(view.body());
}

Expansion ExpandRewriting(const ConjunctiveQuery& rewriting,
                          const ViewSet& views) {
  Expansion result;
  std::vector<Atom> body;
  for (size_t i = 0; i < rewriting.num_subgoals(); ++i) {
    const Atom& subgoal = rewriting.subgoal(i);
    const View* view = FindView(views, subgoal.predicate());
    VBR_CHECK_MSG(view != nullptr, "rewriting uses an undefined view");
    for (Atom& a : ExpandViewAtom(subgoal, *view)) {
      body.push_back(std::move(a));
      result.origin.push_back(i);
    }
  }
  result.query = rewriting.WithBody(std::move(body));
  return result;
}

}  // namespace vbr
