// A minimal readiness multiplexer over poll(2).  The plan server runs a
// single IO thread around one Poller; epoll would scale further but poll
// keeps the code portable (macOS/BSD CI) and the server's connection counts
// are bounded by admission control anyway.
#ifndef VBR_NET_POLLER_H_
#define VBR_NET_POLLER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vbr::net {

// What a watched descriptor is waiting for / what it got.
struct PollEvents {
  bool readable = false;
  bool writable = false;
  // Set on wait results only: hangup or error on the descriptor.
  bool closed = false;
};

struct PollEntry {
  int fd = -1;
  PollEvents events;
};

// Why Wait returned.  kTimeout and kInterrupted are benign (re-wait);
// kError means poll(2) itself failed — a loop that ignores it spins hot on
// a persistent errno (e.g. EINVAL from an fd limit), so callers should at
// least log last_error() once.
enum class PollStatus : uint8_t { kReady, kTimeout, kInterrupted, kError };

class Poller {
 public:
  // Registers fd (or updates its interest set if already watched).
  void Watch(int fd, bool want_read, bool want_write);
  void Forget(int fd);
  size_t watched() const { return entries_.size(); }

  // Blocks up to timeout_ms (-1 = forever) and returns the descriptors with
  // pending events.  Returns an empty vector on timeout, EINTR, or error;
  // *status (when non-null) says which, and last_error() holds the errno of
  // the most recent kError.
  std::vector<PollEntry> Wait(int timeout_ms, PollStatus* status = nullptr);

  int last_error() const { return last_errno_; }

 private:
  std::vector<PollEntry> entries_;
  int last_errno_ = 0;
};

}  // namespace vbr::net

#endif  // VBR_NET_POLLER_H_
