// A minimal readiness multiplexer over poll(2).  The plan server runs a
// single IO thread around one Poller; epoll would scale further but poll
// keeps the code portable (macOS/BSD CI) and the server's connection counts
// are bounded by admission control anyway.
#ifndef VBR_NET_POLLER_H_
#define VBR_NET_POLLER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vbr::net {

// What a watched descriptor is waiting for / what it got.
struct PollEvents {
  bool readable = false;
  bool writable = false;
  // Set on wait results only: hangup or error on the descriptor.
  bool closed = false;
};

struct PollEntry {
  int fd = -1;
  PollEvents events;
};

class Poller {
 public:
  // Registers fd (or updates its interest set if already watched).
  void Watch(int fd, bool want_read, bool want_write);
  void Forget(int fd);
  size_t watched() const { return entries_.size(); }

  // Blocks up to timeout_ms (-1 = forever) and returns the descriptors with
  // pending events.  Returns an empty vector on timeout or EINTR.
  std::vector<PollEntry> Wait(int timeout_ms);

 private:
  std::vector<PollEntry> entries_;
};

}  // namespace vbr::net

#endif  // VBR_NET_POLLER_H_
