// Thin POSIX socket helpers shared by the plan server, the load generator,
// and the wire-path tests.  Everything here is a free function over raw file
// descriptors plus one RAII wrapper (OwnedFd); the event loop lives in
// poller.h and the framing in frame.h.
//
// All sockets handed out by this header are non-blocking unless noted, and
// writes use MSG_NOSIGNAL so a peer that disconnects mid-response surfaces
// as EPIPE instead of killing the process with SIGPIPE.
#ifndef VBR_NET_SOCKET_H_
#define VBR_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace vbr::net {

// Closes the descriptor on destruction.  Movable, not copyable.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  OwnedFd(OwnedFd&& other) noexcept : fd_(other.release()) {}
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) {
      reset(other.release());
    }
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;
  ~OwnedFd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

// Result of a non-blocking read/write attempt.
enum class IoStatus : uint8_t {
  kOk,        // made progress; `n` bytes transferred
  kWouldBlock,  // no progress right now; retry after the poller says ready
  kEof,       // orderly shutdown by the peer (reads only)
  kError,     // hard error; connection should be dropped
};

struct IoResult {
  IoStatus status = IoStatus::kError;
  size_t n = 0;
};

// Opens a TCP listener bound to host:port with SO_REUSEADDR, non-blocking,
// backlog 128.  port == 0 picks an ephemeral port (read it back with
// LocalPort).  Returns an invalid OwnedFd and fills *error on failure.
OwnedFd ListenTcp(const std::string& host, uint16_t port, std::string* error);

// Blocking connect to host:port; the returned socket is then switched to
// non-blocking mode.  Used by clients (loadgen, tests) where connection
// establishment latency is uninteresting.
OwnedFd ConnectTcp(const std::string& host, uint16_t port, std::string* error);

// Non-blocking connect that gives up after timeout_ms (poll on POLLOUT,
// then SO_ERROR).  Used by the resilient client, where a black-holed SYN
// must not stall the retry loop.
OwnedFd ConnectTcpTimeout(const std::string& host, uint16_t port,
                          int timeout_ms, std::string* error);

// Accepts one pending connection from a non-blocking listener.  Returns an
// invalid fd when the accept queue is empty (EAGAIN) or on error.
OwnedFd AcceptConn(int listener_fd);

// The port a bound socket actually listens on (resolves port-0 binds).
// Returns 0 on error.
uint16_t LocalPort(int fd);

bool SetNonBlocking(int fd, std::string* error);

// One non-blocking read into buf.  kOk means result.n > 0 bytes were read.
IoResult ReadSome(int fd, void* buf, size_t len);

// One non-blocking send (MSG_NOSIGNAL).  kOk means result.n > 0 bytes went
// out; a peer reset surfaces as kError, never SIGPIPE.
IoResult WriteSome(int fd, const void* buf, size_t len);

// Writes the whole buffer on a socket, spinning on EAGAIN with a short
// poll.  Only for client-side helpers/tests where blocking is acceptable.
bool WriteAll(int fd, const void* buf, size_t len);

// Reads exactly len bytes, blocking via poll until available or the peer
// closes.  Only for client-side helpers/tests.
bool ReadAll(int fd, void* buf, size_t len);

// A connected AF_UNIX socket pair (both ends non-blocking); used as the
// event-loop wakeup channel.  Returns false and fills *error on failure.
bool SocketPair(OwnedFd* a, OwnedFd* b, std::string* error);

}  // namespace vbr::net

#endif  // VBR_NET_SOCKET_H_
