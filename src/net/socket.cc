#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstring>

#include "net/chaos_socket.h"

namespace vbr::net {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool ParseHost(const std::string& host, in_addr* out) {
  if (host.empty() || host == "0.0.0.0") {
    out->s_addr = htonl(INADDR_ANY);
    return true;
  }
  if (host == "localhost") {
    out->s_addr = htonl(INADDR_LOOPBACK);
    return true;
  }
  return ::inet_pton(AF_INET, host.c_str(), out) == 1;
}

}  // namespace

void OwnedFd::reset(int fd) {
  if (fd_ >= 0) {
    // Untrack before close: once the kernel reuses this fd number the
    // chaos layer must not perturb the unrelated new owner.
    if (ChaosSocket::enabled()) ChaosSocket::Untrack(fd_);
    ::close(fd_);
  }
  fd_ = fd;
}

bool SetNonBlocking(int fd, std::string* error) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    if (error != nullptr) *error = Errno("fcntl(O_NONBLOCK)");
    return false;
  }
  return true;
}

OwnedFd ListenTcp(const std::string& host, uint16_t port, std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (!ParseHost(host, &addr.sin_addr)) {
    if (error != nullptr) *error = "unparseable IPv4 host: " + host;
    return OwnedFd();
  }
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error != nullptr) *error = Errno("socket");
    return OwnedFd();
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error != nullptr) *error = Errno("bind");
    return OwnedFd();
  }
  if (::listen(fd.get(), 128) < 0) {
    if (error != nullptr) *error = Errno("listen");
    return OwnedFd();
  }
  if (!SetNonBlocking(fd.get(), error)) return OwnedFd();
  return fd;
}

namespace {

bool ResolveConnectAddr(const std::string& host, uint16_t port,
                        sockaddr_in* addr, std::string* error) {
  *addr = sockaddr_in{};
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  in_addr parsed{};
  if (!ParseHost(host, &parsed)) {
    if (error != nullptr) *error = "unparseable IPv4 host: " + host;
    return false;
  }
  // "any" is not a connectable address; treat it as loopback for clients.
  addr->sin_addr.s_addr = parsed.s_addr == htonl(INADDR_ANY)
                              ? htonl(INADDR_LOOPBACK)
                              : parsed.s_addr;
  return true;
}

}  // namespace

OwnedFd ConnectTcp(const std::string& host, uint16_t port, std::string* error) {
  sockaddr_in addr{};
  if (!ResolveConnectAddr(host, port, &addr, error)) return OwnedFd();
  if (ChaosSocket::enabled() && ChaosSocket::OnConnect()) {
    if (error != nullptr) *error = "chaos: injected connect failure";
    return OwnedFd();
  }
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error != nullptr) *error = Errno("socket");
    return OwnedFd();
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (error != nullptr) *error = Errno("connect");
    return OwnedFd();
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (!SetNonBlocking(fd.get(), error)) return OwnedFd();
  if (ChaosSocket::enabled()) ChaosSocket::Track(fd.get());
  return fd;
}

OwnedFd ConnectTcpTimeout(const std::string& host, uint16_t port,
                          int timeout_ms, std::string* error) {
  sockaddr_in addr{};
  if (!ResolveConnectAddr(host, port, &addr, error)) return OwnedFd();
  if (ChaosSocket::enabled() && ChaosSocket::OnConnect()) {
    if (error != nullptr) *error = "chaos: injected connect failure";
    return OwnedFd();
  }
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error != nullptr) *error = Errno("socket");
    return OwnedFd();
  }
  if (!SetNonBlocking(fd.get(), error)) return OwnedFd();
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (errno != EINPROGRESS) {
      if (error != nullptr) *error = Errno("connect");
      return OwnedFd();
    }
    pollfd pfd{fd.get(), POLLOUT, 0};
    int n;
    do {
      n = ::poll(&pfd, 1, timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
      if (error != nullptr) {
        *error = n == 0 ? "connect: timed out" : Errno("poll");
      }
      return OwnedFd();
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &so_error, &len) < 0 ||
        so_error != 0) {
      if (error != nullptr) {
        errno = so_error != 0 ? so_error : errno;
        *error = Errno("connect");
      }
      return OwnedFd();
    }
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (ChaosSocket::enabled()) ChaosSocket::Track(fd.get());
  return fd;
}

OwnedFd AcceptConn(int listener_fd) {
  const int fd = ::accept(listener_fd, nullptr, nullptr);
  if (fd < 0) return OwnedFd();
  std::string error;
  if (!SetNonBlocking(fd, &error)) {
    ::close(fd);
    return OwnedFd();
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (ChaosSocket::enabled()) {
    if (ChaosSocket::OnAccept(fd)) {
      ::close(fd);  // OnAccept armed SO_LINGER(0): the client sees an RST.
      return OwnedFd();
    }
    ChaosSocket::Track(fd);
  }
  return OwnedFd(fd);
}

uint16_t LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

IoResult ReadSome(int fd, void* buf, size_t len) {
  if (ChaosSocket::enabled()) {
    const ChaosVerdict verdict = ChaosSocket::BeforeRead(fd, len);
    if (verdict.forced.has_value()) return *verdict.forced;
    if (verdict.max_len < len) len = verdict.max_len;
  }
  while (true) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n > 0) return {IoStatus::kOk, static_cast<size_t>(n)};
    if (n == 0) return {IoStatus::kEof, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
  }
}

IoResult WriteSome(int fd, const void* buf, size_t len) {
  if (ChaosSocket::enabled()) {
    const ChaosVerdict verdict = ChaosSocket::BeforeWrite(fd, len);
    if (verdict.forced.has_value()) return *verdict.forced;
    if (verdict.max_len < len) len = verdict.max_len;
  }
  while (true) {
    const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n >= 0) return {IoStatus::kOk, static_cast<size_t>(n)};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
  }
}

bool WriteAll(int fd, const void* buf, size_t len) {
  const char* p = static_cast<const char*>(buf);
  while (len > 0) {
    const IoResult r = WriteSome(fd, p, len);
    if (r.status == IoStatus::kOk) {
      p += r.n;
      len -= r.n;
      continue;
    }
    if (r.status == IoStatus::kWouldBlock) {
      pollfd pfd{fd, POLLOUT, 0};
      ::poll(&pfd, 1, 1000);
      continue;
    }
    return false;
  }
  return true;
}

bool ReadAll(int fd, void* buf, size_t len) {
  char* p = static_cast<char*>(buf);
  while (len > 0) {
    const IoResult r = ReadSome(fd, p, len);
    if (r.status == IoStatus::kOk) {
      p += r.n;
      len -= r.n;
      continue;
    }
    if (r.status == IoStatus::kWouldBlock) {
      pollfd pfd{fd, POLLIN, 0};
      ::poll(&pfd, 1, 1000);
      continue;
    }
    return false;  // EOF or error before len bytes arrived.
  }
  return true;
}

bool SocketPair(OwnedFd* a, OwnedFd* b, std::string* error) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) {
    if (error != nullptr) *error = Errno("socketpair");
    return false;
  }
  a->reset(fds[0]);
  b->reset(fds[1]);
  return SetNonBlocking(a->get(), error) && SetNonBlocking(b->get(), error);
}

}  // namespace vbr::net
