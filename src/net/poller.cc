#include "net/poller.h"

#include <errno.h>
#include <poll.h>

#include <algorithm>

namespace vbr::net {

void Poller::Watch(int fd, bool want_read, bool want_write) {
  for (PollEntry& entry : entries_) {
    if (entry.fd == fd) {
      entry.events.readable = want_read;
      entry.events.writable = want_write;
      return;
    }
  }
  entries_.push_back({fd, {want_read, want_write, false}});
}

void Poller::Forget(int fd) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [fd](const PollEntry& e) { return e.fd == fd; }),
                 entries_.end());
}

std::vector<PollEntry> Poller::Wait(int timeout_ms, PollStatus* status) {
  std::vector<pollfd> fds;
  fds.reserve(entries_.size());
  for (const PollEntry& entry : entries_) {
    short events = 0;
    if (entry.events.readable) events |= POLLIN;
    if (entry.events.writable) events |= POLLOUT;
    fds.push_back({entry.fd, events, 0});
  }
  std::vector<PollEntry> ready;
  const int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n <= 0) {
    if (status != nullptr) {
      if (n == 0) {
        *status = PollStatus::kTimeout;
      } else if (errno == EINTR) {
        *status = PollStatus::kInterrupted;
      } else {
        last_errno_ = errno;
        *status = PollStatus::kError;
      }
    } else if (n < 0 && errno != EINTR) {
      last_errno_ = errno;
    }
    return ready;
  }
  if (status != nullptr) *status = PollStatus::kReady;
  for (const pollfd& pfd : fds) {
    if (pfd.revents == 0) continue;
    PollEntry entry;
    entry.fd = pfd.fd;
    entry.events.readable = (pfd.revents & POLLIN) != 0;
    entry.events.writable = (pfd.revents & POLLOUT) != 0;
    entry.events.closed = (pfd.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
    ready.push_back(entry);
  }
  return ready;
}

}  // namespace vbr::net
