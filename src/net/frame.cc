#include "net/frame.h"

#include <cmath>
#include <cstring>

namespace vbr::net {

namespace {

// Little-endian primitive writers.  memcpy of the value assumes a
// little-endian host (x86-64 / aarch64, the supported targets); the tests
// round-trip through these same helpers so skew would be caught in CI on
// any big-endian port.
void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutU16(std::string* out, uint16_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutF64(std::string* out, double v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

// Bounds-checked little-endian reader over a payload.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ok() const { return ok_; }
  bool exhausted() const { return pos_ == data_.size(); }

  uint8_t U8() { return ReadScalar<uint8_t>(); }
  uint16_t U16() { return ReadScalar<uint16_t>(); }
  uint32_t U32() { return ReadScalar<uint32_t>(); }
  uint64_t U64() { return ReadScalar<uint64_t>(); }
  double F64() { return ReadScalar<double>(); }

  std::string String() {
    const uint32_t len = U32();
    if (!ok_ || data_.size() - pos_ < len) {
      ok_ = false;
      return {};
    }
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

 private:
  template <typename T>
  T ReadScalar() {
    T v{};
    if (!ok_ || data_.size() - pos_ < sizeof(T)) {
      ok_ = false;
      return v;
    }
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Wire cost-model codes are 1-based so that a zeroed payload is invalid.
uint8_t ModelCode(CostModel model) {
  switch (model) {
    case CostModel::kM1:
      return 1;
    case CostModel::kM2:
      return 2;
    case CostModel::kM3:
      return 3;
  }
  return 0;
}

bool ModelFromCode(uint8_t code, CostModel* out) {
  switch (code) {
    case 1:
      *out = CostModel::kM1;
      return true;
    case 2:
      *out = CostModel::kM2;
      return true;
    case 3:
      *out = CostModel::kM3;
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "ok";
    case WireStatus::kRejected:
      return "rejected";
    case WireStatus::kShed:
      return "shed";
    case WireStatus::kFailed:
      return "failed";
    case WireStatus::kBadRequest:
      return "bad_request";
    case WireStatus::kUnsupportedVersion:
      return "unsupported_version";
    case WireStatus::kUnknownHandle:
      return "unknown_handle";
  }
  return "unknown";
}

const char* DecodeStatusName(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk:
      return "ok";
    case DecodeStatus::kNeedMore:
      return "need_more";
    case DecodeStatus::kTooLarge:
      return "too_large";
    case DecodeStatus::kMalformed:
      return "malformed";
    case DecodeStatus::kVersionSkew:
      return "version_skew";
    case DecodeStatus::kBadKind:
      return "bad_kind";
  }
  return "unknown";
}

void EncodePlanRequest(const PlanRequestFrame& frame, std::string* out) {
  std::string payload;
  PutU8(&payload, kProtocolVersion);
  PutU8(&payload, static_cast<uint8_t>(FrameKind::kPlanRequest));
  uint16_t flags = 0;
  if (frame.query_is_handle) flags |= kFlagQueryIsHandle;
  if (frame.want_certificate) flags |= kFlagWantCertificate;
  PutU16(&payload, flags);
  PutU64(&payload, frame.request_id);
  PutU8(&payload, ModelCode(frame.options.model));
  PutF64(&payload, frame.options.deadline_ms);
  PutU64(&payload, frame.options.work_limit);
  PutU64(&payload, frame.options.memory_limit_bytes);
  PutU64(&payload, frame.options.search_node_cap);
  if (frame.query_is_handle) {
    std::string handle_bytes;
    PutU64(&handle_bytes, frame.query_handle);
    PutString(&payload, handle_bytes);
  } else {
    PutString(&payload, frame.query_text);
  }
  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

void EncodePlanResponse(const PlanResponseFrame& frame, std::string* out) {
  std::string payload;
  PutU8(&payload, kProtocolVersion);
  PutU8(&payload, static_cast<uint8_t>(FrameKind::kPlanResponse));
  uint16_t flags = 0;
  if (frame.cache_hit) flags |= kFlagCacheHit;
  if (frame.degraded) flags |= kFlagDegraded;
  if (frame.served_from_cache_only) flags |= kFlagServedFromCacheOnly;
  if (frame.model_demoted) flags |= kFlagModelDemoted;
  PutU16(&payload, flags);
  PutU64(&payload, frame.request_id);
  PutU8(&payload, static_cast<uint8_t>(frame.status));
  PutU8(&payload, frame.reject_reason);
  PutU8(&payload, frame.plan_status);
  PutU8(&payload, frame.attempts);
  PutU32(&payload, frame.service_level);
  PutF64(&payload, frame.queue_wait_ms);
  PutU64(&payload, frame.cost);
  PutU64(&payload, frame.query_handle);
  PutString(&payload, frame.rewriting);
  PutString(&payload, frame.certificate);
  PutString(&payload, frame.error);
  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
}

DecodeStatus ExtractFrame(std::string_view buffer, uint32_t max_payload,
                          std::string_view* payload, size_t* consumed) {
  if (buffer.size() < sizeof(uint32_t)) return DecodeStatus::kNeedMore;
  uint32_t len = 0;
  std::memcpy(&len, buffer.data(), sizeof(len));
  if (len > max_payload) return DecodeStatus::kTooLarge;
  if (buffer.size() - sizeof(uint32_t) < len) return DecodeStatus::kNeedMore;
  *payload = buffer.substr(sizeof(uint32_t), len);
  *consumed = sizeof(uint32_t) + len;
  return DecodeStatus::kOk;
}

DecodeStatus DecodePlanRequest(std::string_view payload,
                               PlanRequestFrame* out) {
  Reader r(payload);
  const uint8_t version = r.U8();
  const uint8_t kind = r.U8();
  const uint16_t flags = r.U16();
  out->request_id = r.U64();
  if (!r.ok()) return DecodeStatus::kMalformed;
  if (version > kProtocolVersion) return DecodeStatus::kVersionSkew;
  if (kind != static_cast<uint8_t>(FrameKind::kPlanRequest)) {
    return DecodeStatus::kBadKind;
  }
  out->query_is_handle = (flags & kFlagQueryIsHandle) != 0;
  out->want_certificate = (flags & kFlagWantCertificate) != 0;
  const uint8_t model_code = r.U8();
  out->options.deadline_ms = r.F64();
  out->options.work_limit = r.U64();
  out->options.memory_limit_bytes = r.U64();
  out->options.search_node_cap = r.U64();
  const std::string query = r.String();
  if (!r.ok() || !r.exhausted()) return DecodeStatus::kMalformed;
  if (!ModelFromCode(model_code, &out->options.model)) {
    return DecodeStatus::kMalformed;
  }
  // Reject non-finite deadlines: they would poison the admission estimate.
  if (!std::isfinite(out->options.deadline_ms) ||
      out->options.deadline_ms < 0) {
    return DecodeStatus::kMalformed;
  }
  if (out->query_is_handle) {
    if (query.size() != sizeof(uint64_t)) return DecodeStatus::kMalformed;
    std::memcpy(&out->query_handle, query.data(), sizeof(uint64_t));
    out->query_text.clear();
  } else {
    out->query_text = query;
    out->query_handle = 0;
  }
  return DecodeStatus::kOk;
}

DecodeStatus DecodePlanResponse(std::string_view payload,
                                PlanResponseFrame* out) {
  Reader r(payload);
  const uint8_t version = r.U8();
  const uint8_t kind = r.U8();
  const uint16_t flags = r.U16();
  out->request_id = r.U64();
  if (!r.ok()) return DecodeStatus::kMalformed;
  if (version > kProtocolVersion) return DecodeStatus::kVersionSkew;
  if (kind != static_cast<uint8_t>(FrameKind::kPlanResponse)) {
    return DecodeStatus::kBadKind;
  }
  out->cache_hit = (flags & kFlagCacheHit) != 0;
  out->degraded = (flags & kFlagDegraded) != 0;
  out->served_from_cache_only = (flags & kFlagServedFromCacheOnly) != 0;
  out->model_demoted = (flags & kFlagModelDemoted) != 0;
  const uint8_t status = r.U8();
  out->reject_reason = r.U8();
  out->plan_status = r.U8();
  out->attempts = r.U8();
  out->service_level = r.U32();
  out->queue_wait_ms = r.F64();
  out->cost = r.U64();
  out->query_handle = r.U64();
  out->rewriting = r.String();
  out->certificate = r.String();
  out->error = r.String();
  if (!r.ok() || !r.exhausted()) return DecodeStatus::kMalformed;
  if (status > static_cast<uint8_t>(WireStatus::kUnknownHandle)) {
    return DecodeStatus::kMalformed;
  }
  out->status = static_cast<WireStatus>(status);
  return DecodeStatus::kOk;
}

uint64_t HashQueryText(std::string_view text) {
  uint64_t h = 14695981039346656037ull;  // FNV-1a 64 offset basis
  for (const char c : text) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;  // FNV-1a 64 prime
  }
  return h;
}

}  // namespace vbr::net
