// The compact binary wire protocol for plan requests/responses.
//
// Every frame on the wire is a u32 little-endian payload length followed by
// the payload.  Payloads start with a u8 protocol version and a u8 frame
// kind; everything after that is kind-specific.  See docs/PROTOCOL.md for
// the byte-exact layout and the versioning rules.
//
// The codec is transport-agnostic and allocation-light: encoding appends to
// a std::string, decoding reads from a std::string_view over the
// connection's receive buffer and never takes ownership.  Both sides use
// the same functions, which is what the round-trip property tests in
// tests/net/frame_test.cc exercise.
#ifndef VBR_NET_FRAME_H_
#define VBR_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "planner/request_options.h"

namespace vbr::net {

inline constexpr uint8_t kProtocolVersion = 1;

// Payload ceiling: queries are small; anything past this is a corrupt
// length prefix or an abusive client, and the connection is dropped.
inline constexpr uint32_t kDefaultMaxPayload = 1 << 20;  // 1 MiB

enum class FrameKind : uint8_t {
  kPlanRequest = 1,
  kPlanResponse = 2,
};

// Service-level disposition of a request as seen on the wire.  The first
// four mirror PlanningService::ServiceStatus one-to-one; the rest are
// produced by the server's protocol layer itself.
enum class WireStatus : uint8_t {
  kOk = 0,
  kRejected = 1,  // admission control said no; reject_reason says why
  kShed = 2,
  kFailed = 3,
  kBadRequest = 4,           // unparseable query text or malformed options
  kUnsupportedVersion = 5,   // frame version ahead of the server
  kUnknownHandle = 6,        // fingerprint not in the server's handle map
};

const char* WireStatusName(WireStatus status);

// Request flag bits.
inline constexpr uint16_t kFlagQueryIsHandle = 1u << 0;
inline constexpr uint16_t kFlagWantCertificate = 1u << 1;

// Response flag bits.
inline constexpr uint16_t kFlagCacheHit = 1u << 0;
inline constexpr uint16_t kFlagDegraded = 1u << 1;
inline constexpr uint16_t kFlagServedFromCacheOnly = 1u << 2;
inline constexpr uint16_t kFlagModelDemoted = 1u << 3;

// A decoded plan request.  `query_text` holds the datalog source unless
// `query_is_handle` is set, in which case `query_handle` identifies a query
// the server has already seen (HashQueryText of the exact text).
struct PlanRequestFrame {
  uint64_t request_id = 0;
  bool query_is_handle = false;
  bool want_certificate = false;
  PlanRequestOptions options;
  std::string query_text;
  uint64_t query_handle = 0;
};

// A decoded plan response.  `plan_status` carries the planner-level
// PlanStatus (meaningful only when status == kOk); `query_handle` is the
// server-issued fingerprint clients may send instead of text next time.
struct PlanResponseFrame {
  uint64_t request_id = 0;
  WireStatus status = WireStatus::kBadRequest;
  uint8_t reject_reason = 0;   // PlanningService::RejectReason
  uint8_t plan_status = 0;     // vbr::PlanStatus
  uint8_t attempts = 0;
  uint32_t service_level = 0;
  bool cache_hit = false;
  bool degraded = false;
  bool served_from_cache_only = false;
  bool model_demoted = false;
  double queue_wait_ms = 0;
  uint64_t cost = 0;
  uint64_t query_handle = 0;
  std::string rewriting;    // the chosen rewriting, ToString form
  std::string certificate;  // containment certificate (when requested)
  std::string error;
};

enum class DecodeStatus : uint8_t {
  kOk = 0,
  kNeedMore,     // buffer does not yet hold a complete frame
  kTooLarge,     // length prefix exceeds the payload ceiling
  kMalformed,    // structurally invalid payload
  kVersionSkew,  // payload version newer than this codec
  kBadKind,      // unknown frame kind for this decode call
};

const char* DecodeStatusName(DecodeStatus status);

// Appends one complete frame (length prefix + payload) to *out.
void EncodePlanRequest(const PlanRequestFrame& frame, std::string* out);
void EncodePlanResponse(const PlanResponseFrame& frame, std::string* out);

// Splits the next length-prefixed payload off `buffer`.  On kOk, *payload
// aliases buffer and *consumed is the total frame size (4 + payload len) to
// drop from the front of the receive buffer.  kNeedMore means keep reading;
// kTooLarge means drop the connection.
DecodeStatus ExtractFrame(std::string_view buffer, uint32_t max_payload,
                          std::string_view* payload, size_t* consumed);

// Decodes one extracted payload.  kVersionSkew/kBadKind/kMalformed leave
// *out partially filled except request_id, which is recovered when the
// fixed header was intact (so errors can be correlated with a request).
DecodeStatus DecodePlanRequest(std::string_view payload,
                               PlanRequestFrame* out);
DecodeStatus DecodePlanResponse(std::string_view payload,
                                PlanResponseFrame* out);

// The server-issued query fingerprint: FNV-1a 64 over the exact query
// text.  Stable across runs; NOT a canonical fingerprint (whitespace
// matters) — it is a cache handle, not an identity.
uint64_t HashQueryText(std::string_view text);

}  // namespace vbr::net

#endif  // VBR_NET_FRAME_H_
