// Deterministic socket-level chaos: a seeded fault-injecting layer under
// the socket primitives in net/socket.h.
//
// The in-process planner already survives injected compute faults (the
// Nth-crossing FaultRegistry in common/fault_injection.h).  This header
// extends the same discipline to I/O: when the layer is enabled, every
// read/write/accept/connect on a TRACKED descriptor consults a seeded
// schedule and may be perturbed with one of the failure modes a hostile
// network produces —
//
//   - short reads / short writes   (the kernel transferred one byte)
//   - spurious EAGAIN              (readiness lied; poll and retry)
//   - delayed flushes              (the write stalls before completing)
//   - mid-stream disconnects       (shutdown(2); the peer sees EOF/RST)
//   - post-accept resets           (client vanished before the first byte)
//   - connect failures             (SYN lost, route flapped)
//
// Determinism.  Each operation kind keeps its own crossing counter, and
// the decision for crossing n is a pure function splitmix64(seed, site, n)
// of the enabled ChaosOptions — a single-threaded client replays the exact
// same fault schedule from the same seed, and a multi-threaded soak
// replays the same fault MIX.  On top of the seeded schedule, every
// crossing also consults the global FaultRegistry at the sites
// "chaos.read", "chaos.write", "chaos.accept", "chaos.connect", so a test
// can force a specific fault at exactly the Nth crossing with
// FaultRegistry::Arm(site, FaultKind::kStageAbort, n) — kStageAbort maps
// to the site's terminal fault (disconnect / reset / connect failure).
//
// Scope.  Faults apply only to descriptors the layer tracks: sockets
// returned by AcceptConn and ConnectTcp[Timeout] while the layer is
// enabled.  The server's internal wakeup socketpair and any fd opened
// while the layer is off are never perturbed.  Closing a descriptor
// (OwnedFd::reset) untracks it, so fd-number reuse cannot leak chaos onto
// an innocent connection.
//
// Cost.  Disabled (the default), every hook is one relaxed atomic load —
// bench_service_net throughput is the pinned regression gate.
#ifndef VBR_NET_CHAOS_SOCKET_H_
#define VBR_NET_CHAOS_SOCKET_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>

#include "net/socket.h"

namespace vbr::net {

// Per-operation fault rates in percent [0, 100] of crossings.  The rates
// are evaluated in the declared order; at most one fault fires per
// operation.
struct ChaosOptions {
  uint64_t seed = 1;

  // Read side (tracked fds only).
  int read_disconnect_pct = 0;  // shutdown(2) the socket, return kError
  int read_eagain_pct = 0;      // spurious kWouldBlock, no syscall
  int short_read_pct = 0;       // clamp the read to a single byte

  // Write side.
  int write_disconnect_pct = 0;  // shutdown(2) mid-frame, return kError
  int write_eagain_pct = 0;      // spurious kWouldBlock, no syscall
  int short_write_pct = 0;       // clamp the write to a single byte
  int write_delay_pct = 0;       // sleep delay_us, then write normally

  // Connection lifecycle.
  int accept_reset_pct = 0;   // RST the just-accepted connection
  int connect_fail_pct = 0;   // fail ConnectTcp[Timeout] outright

  int delay_us = 200;  // length of an injected write delay

  // The canonical soak mix used by chaos_soak_test and vbr_loadgen
  // --chaos: every failure mode enabled at rates that keep a resilient
  // client making progress (aggregate fault rate ~15% of operations).
  static ChaosOptions Soak(uint64_t seed);
};

// What an interposed operation should do (internal contract between this
// layer and socket.cc, exposed for the unit tests).
struct ChaosVerdict {
  // When set, the operation returns this result without any syscall (the
  // disconnect verdicts shutdown(2) the fd first).
  std::optional<IoResult> forced;
  // Otherwise the operation proceeds with len clamped to this many bytes.
  size_t max_len = SIZE_MAX;
};

// Process-global chaos layer.  All members are static: the layer models
// the one network the process talks through.
class ChaosSocket {
 public:
  // Counters of injected faults since Enable (relaxed; exact once the
  // sockets quiesce).
  struct Stats {
    uint64_t short_reads = 0;
    uint64_t short_writes = 0;
    uint64_t read_eagains = 0;
    uint64_t write_eagains = 0;
    uint64_t write_delays = 0;
    uint64_t read_disconnects = 0;
    uint64_t write_disconnects = 0;
    uint64_t accept_resets = 0;
    uint64_t connect_failures = 0;

    uint64_t disconnects() const {
      return read_disconnects + write_disconnects + accept_resets;
    }
  };

  // Enabling resets the crossing counters, fault stats, and tracked set,
  // so every Enable starts an identical schedule for the given options.
  static void Enable(const ChaosOptions& options);
  static void Disable();
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static Stats stats();

  // Descriptor tracking (socket.cc calls these; tests may too).
  static void Track(int fd);
  static void Untrack(int fd);
  static bool IsTracked(int fd);

  // Interposition points, called by the socket primitives when enabled().
  // BeforeRead/BeforeWrite return the verdict for this crossing;
  // OnAccept returns true when the accepted fd must be reset-closed;
  // OnConnect returns true when the connect attempt must fail.
  static ChaosVerdict BeforeRead(int fd, size_t len);
  static ChaosVerdict BeforeWrite(int fd, size_t len);
  static bool OnAccept(int fd);
  static bool OnConnect();

 private:
  static std::atomic<bool> enabled_;
};

}  // namespace vbr::net

#endif  // VBR_NET_CHAOS_SOCKET_H_
