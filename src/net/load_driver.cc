#include "net/load_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <thread>

#include "net/socket.h"

namespace vbr::net {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

// Per-request bookkeeping, indexed by global request id.  answered uses an
// atomic counter so duplicate detection is exact under concurrency.
struct Ledger {
  explicit Ledger(size_t n)
      : send_time(n), latency_ms(n, -1.0), answered(n), by_handle(n, 0) {}
  std::vector<Clock::time_point> send_time;
  std::vector<double> latency_ms;
  std::vector<std::atomic<uint32_t>> answered;
  // 1 when the request went out carrying a handle instead of text (written
  // by the owning sender before the send, read by receivers only after the
  // response arrives).
  std::vector<char> by_handle;
};

// Per-distinct-query handle state (use_handles). Senders read `handle`
// with acquire and switch to the handle path once it is nonzero; receivers
// store the reference response BEFORE publishing the handle, so any
// handle-path response always has a reference to compare against.
struct HandleBook {
  explicit HandleBook(size_t num_queries)
      : handles(num_queries), references(num_queries) {}
  std::vector<std::atomic<uint64_t>> handles;
  std::mutex mu;  // guards references
  std::vector<std::string> references;
};

// The part of a response that identifies THE PLAN — equal for a text and a
// handle request of the same query. Transport-level fields (cache_hit,
// queue wait, request id) legitimately differ and stay out.
std::string PlanPayloadKey(const PlanResponseFrame& response) {
  return std::to_string(response.plan_status) + "|" +
         std::to_string(response.cost) + "|" + response.rewriting + "|" +
         response.certificate;
}

void FillLatencyPercentiles(const Ledger& ledger, LoadReport* report) {
  std::vector<double> latencies;
  latencies.reserve(report->received);
  for (const double l : ledger.latency_ms) {
    if (l >= 0) latencies.push_back(l);
  }
  std::sort(latencies.begin(), latencies.end());
  report->p50_ms = Percentile(latencies, 0.50);
  report->p90_ms = Percentile(latencies, 0.90);
  report->p99_ms = Percentile(latencies, 0.99);
  report->max_ms = latencies.empty() ? 0 : latencies.back();
}

// Closed-loop resilient mode (options.resilient): one ResilientClient per
// connection, one request in flight per client, retries and reconnects
// inside the client.  Accounting invariant: received + lost == sent and
// duplicated == 0, regardless of the fault schedule.
bool RunLoadResilient(const LoadDriverOptions& options, LoadReport* report,
                      std::string* error) {
  const size_t connections = std::max<size_t>(1, options.connections);
  const size_t total = options.total_requests;

  Ledger ledger(total);
  HandleBook handle_book(options.queries.size());
  std::atomic<size_t> sent{0};
  std::atomic<size_t> received{0};
  std::atomic<size_t> duplicated{0};
  std::atomic<size_t> handle_requests{0};
  std::atomic<size_t> handle_mismatches{0};
  std::atomic<size_t> by_status[7] = {};
  std::atomic<size_t> retries{0};
  std::atomic<size_t> reconnects{0};
  std::atomic<size_t> timeouts{0};
  std::atomic<size_t> io_errors{0};

  const Clock::time_point start = Clock::now();
  const double interval_ms = options.qps > 0 ? 1000.0 / options.qps : 0.0;

  std::vector<std::thread> threads;
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      ResilientClientOptions copts = options.resilient_client;
      copts.host = options.host;
      copts.port = options.port;
      // Distinct per-connection schedules that still replay from the seed.
      copts.backoff_seed ^= 0x9e3779b97f4a7c15ULL * (c + 1);
      ResilientClient client(copts);
      for (size_t id = c; id < total; id += connections) {
        if (interval_ms > 0) {
          const Clock::time_point due =
              start + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              interval_ms * static_cast<double>(id)));
          std::this_thread::sleep_until(due);
        }
        PlanRequestFrame frame;
        frame.request_id = id;
        frame.options = options.request;
        frame.want_certificate = options.want_certificate;
        const size_t query_index = id % options.queries.size();
        const uint64_t handle =
            options.use_handles
                ? handle_book.handles[query_index].load(
                      std::memory_order_acquire)
                : 0;
        if (handle != 0) {
          frame.query_is_handle = true;
          frame.query_handle = handle;
          ledger.by_handle[id] = 1;
          handle_requests.fetch_add(1, std::memory_order_relaxed);
        } else {
          frame.query_text = options.queries[query_index];
        }
        ledger.send_time[id] = Clock::now();
        sent.fetch_add(1, std::memory_order_relaxed);
        PlanResponseFrame response;
        std::string call_error;
        if (!client.Call(frame, &response, &call_error)) {
          continue;  // every attempt failed: this id counts as lost
        }
        const uint32_t prior =
            ledger.answered[id].fetch_add(1, std::memory_order_relaxed);
        if (prior > 0) {
          duplicated.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        ledger.latency_ms[id] = MsSince(ledger.send_time[id], Clock::now());
        by_status[static_cast<size_t>(response.status)].fetch_add(
            1, std::memory_order_relaxed);
        if (options.use_handles && response.status == WireStatus::kOk &&
            !response.degraded) {
          if (ledger.by_handle[id]) {
            std::lock_guard<std::mutex> lock(handle_book.mu);
            const std::string& reference =
                handle_book.references[query_index];
            if (!reference.empty() &&
                reference != PlanPayloadKey(response)) {
              handle_mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          } else if (response.query_handle != 0) {
            {
              std::lock_guard<std::mutex> lock(handle_book.mu);
              if (handle_book.references[query_index].empty()) {
                handle_book.references[query_index] =
                    PlanPayloadKey(response);
              }
            }
            uint64_t expected = 0;
            handle_book.handles[query_index].compare_exchange_strong(
                expected, response.query_handle, std::memory_order_release,
                std::memory_order_relaxed);
          }
        }
        received.fetch_add(1, std::memory_order_relaxed);
      }
      const ResilientClient::Stats& cs = client.stats();
      retries.fetch_add(cs.retries, std::memory_order_relaxed);
      reconnects.fetch_add(cs.reconnects, std::memory_order_relaxed);
      timeouts.fetch_add(cs.timeouts, std::memory_order_relaxed);
      io_errors.fetch_add(cs.io_errors, std::memory_order_relaxed);
    });
  }
  for (std::thread& t : threads) t.join();
  const Clock::time_point end = Clock::now();

  (void)error;
  report->sent = sent.load();
  report->received = received.load();
  report->lost = report->sent - report->received;
  report->duplicated = duplicated.load();
  report->decode_errors = 0;
  report->handle_requests = handle_requests.load();
  report->handle_mismatches = handle_mismatches.load();
  for (size_t i = 0; i < 7; ++i) report->by_status[i] = by_status[i].load();
  report->retries = retries.load();
  report->reconnects = reconnects.load();
  report->timeouts = timeouts.load();
  report->io_errors = io_errors.load();
  report->wall_s = MsSince(start, end) / 1000.0;
  report->achieved_qps =
      report->wall_s > 0
          ? static_cast<double>(report->received) / report->wall_s
          : 0;
  FillLatencyPercentiles(ledger, report);
  return true;
}

}  // namespace

std::string LoadReport::ToString() const {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "sent=%zu received=%zu lost=%zu dup=%zu decode_errors=%zu | "
      "ok=%zu rejected=%zu shed=%zu failed=%zu bad=%zu | "
      "handle_reqs=%zu handle_mismatch=%zu | "
      "retries=%zu reconnects=%zu timeouts=%zu io_errors=%zu | "
      "wall=%.2fs achieved=%.0f qps | "
      "p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms",
      sent, received, lost, duplicated, decode_errors, by_status[0],
      by_status[1], by_status[2], by_status[3],
      by_status[4] + by_status[5] + by_status[6], handle_requests,
      handle_mismatches, retries, reconnects, timeouts, io_errors, wall_s,
      achieved_qps, p50_ms, p90_ms, p99_ms, max_ms);
  return std::string(buf);
}

bool RunLoad(const LoadDriverOptions& options, LoadReport* report,
             std::string* error) {
  if (options.queries.empty()) {
    if (error != nullptr) *error = "load driver needs at least one query";
    return false;
  }
  if (options.resilient) return RunLoadResilient(options, report, error);
  const size_t connections = std::max<size_t>(1, options.connections);
  const size_t total = options.total_requests;

  std::vector<OwnedFd> sockets;
  sockets.reserve(connections);
  for (size_t i = 0; i < connections; ++i) {
    OwnedFd fd = ConnectTcp(options.host, options.port, error);
    if (!fd.valid()) return false;
    sockets.push_back(std::move(fd));
  }

  Ledger ledger(total);
  HandleBook handle_book(options.queries.size());
  std::atomic<size_t> sent{0};
  std::atomic<size_t> received{0};
  std::atomic<size_t> duplicated{0};
  std::atomic<size_t> decode_errors{0};
  std::atomic<size_t> handle_requests{0};
  std::atomic<size_t> handle_mismatches{0};
  std::atomic<size_t> by_status[7] = {};
  std::atomic<bool> drain_deadline_passed{false};

  const Clock::time_point start = Clock::now();
  const double interval_ms =
      options.qps > 0 ? 1000.0 / options.qps : 0.0;

  // Senders: connection c owns global indices c, c+connections, ...
  std::vector<std::thread> threads;
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      std::string wire;
      for (size_t id = c; id < total; id += connections) {
        if (interval_ms > 0) {
          const Clock::time_point due =
              start + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double, std::milli>(
                              interval_ms * static_cast<double>(id)));
          std::this_thread::sleep_until(due);
        }
        PlanRequestFrame frame;
        frame.request_id = id;
        frame.options = options.request;
        frame.want_certificate = options.want_certificate;
        const size_t query_index = id % options.queries.size();
        const uint64_t handle =
            options.use_handles
                ? handle_book.handles[query_index].load(
                      std::memory_order_acquire)
                : 0;
        if (handle != 0) {
          frame.query_is_handle = true;
          frame.query_handle = handle;
          ledger.by_handle[id] = 1;
          handle_requests.fetch_add(1, std::memory_order_relaxed);
        } else {
          frame.query_text = options.queries[query_index];
        }
        wire.clear();
        EncodePlanRequest(frame, &wire);
        ledger.send_time[id] = Clock::now();
        sent.fetch_add(1, std::memory_order_relaxed);
        if (!WriteAll(sockets[c].get(), wire.data(), wire.size())) {
          return;  // server dropped us; remaining ids count as lost
        }
      }
    });
  }

  // Receivers: one per connection, stop once every id this connection owns
  // is answered or the drain deadline passes.
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      const size_t owned =
          total == 0 ? 0 : (total - c + connections - 1) / connections;
      size_t answered_here = 0;
      std::string buffer;
      char chunk[16 * 1024];
      while (answered_here < owned) {
        if (drain_deadline_passed.load(std::memory_order_relaxed)) return;
        const IoResult r = ReadSome(sockets[c].get(), chunk, sizeof(chunk));
        if (r.status == IoStatus::kWouldBlock) {
          // Short sleep keeps the drain-deadline check responsive.
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        if (r.status != IoStatus::kOk) return;  // EOF / error
        buffer.append(chunk, r.n);
        while (true) {
          std::string_view payload;
          size_t consumed = 0;
          const DecodeStatus es =
              ExtractFrame(buffer, kDefaultMaxPayload, &payload, &consumed);
          if (es == DecodeStatus::kNeedMore) break;
          if (es != DecodeStatus::kOk) {
            decode_errors.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          PlanResponseFrame response;
          const DecodeStatus ds = DecodePlanResponse(payload, &response);
          buffer.erase(0, consumed);
          if (ds != DecodeStatus::kOk) {
            decode_errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          const uint64_t id = response.request_id;
          if (id >= total) {
            decode_errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          const uint32_t prior = ledger.answered[id].fetch_add(
              1, std::memory_order_relaxed);
          if (prior > 0) {
            duplicated.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          ledger.latency_ms[id] = MsSince(ledger.send_time[id], Clock::now());
          by_status[static_cast<size_t>(response.status)].fetch_add(
              1, std::memory_order_relaxed);
          if (options.use_handles && response.status == WireStatus::kOk &&
              !response.degraded) {
            const size_t query_index = id % options.queries.size();
            if (ledger.by_handle[id]) {
              // Handle path: must match the stored text-path response.
              std::lock_guard<std::mutex> lock(handle_book.mu);
              const std::string& reference =
                  handle_book.references[query_index];
              if (!reference.empty() &&
                  reference != PlanPayloadKey(response)) {
                handle_mismatches.fetch_add(1, std::memory_order_relaxed);
              }
            } else if (response.query_handle != 0) {
              // Text path: store the reference FIRST, then publish the
              // handle so no handle request can outrun its reference.
              {
                std::lock_guard<std::mutex> lock(handle_book.mu);
                if (handle_book.references[query_index].empty()) {
                  handle_book.references[query_index] =
                      PlanPayloadKey(response);
                }
              }
              uint64_t expected = 0;
              handle_book.handles[query_index].compare_exchange_strong(
                  expected, response.query_handle,
                  std::memory_order_release, std::memory_order_relaxed);
            }
          }
          received.fetch_add(1, std::memory_order_relaxed);
          ++answered_here;
        }
      }
    });
  }

  // Watchdog: give receivers drain_timeout_ms past the moment everything
  // was sent, then cut them loose.
  std::thread watchdog([&] {
    while (sent.load(std::memory_order_relaxed) < total) {
      if (received.load(std::memory_order_relaxed) +
              decode_errors.load(std::memory_order_relaxed) >=
          total) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    const Clock::time_point cutoff =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               options.drain_timeout_ms));
    while (Clock::now() < cutoff &&
           received.load(std::memory_order_relaxed) < total) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    drain_deadline_passed.store(true, std::memory_order_relaxed);
  });

  for (std::thread& t : threads) t.join();
  drain_deadline_passed.store(true, std::memory_order_relaxed);
  watchdog.join();
  const Clock::time_point end = Clock::now();

  report->sent = sent.load();
  report->received = received.load();
  report->lost = report->sent - report->received;
  report->duplicated = duplicated.load();
  report->decode_errors = decode_errors.load();
  report->handle_requests = handle_requests.load();
  report->handle_mismatches = handle_mismatches.load();
  for (size_t i = 0; i < 7; ++i) report->by_status[i] = by_status[i].load();
  report->wall_s = MsSince(start, end) / 1000.0;
  report->achieved_qps =
      report->wall_s > 0 ? static_cast<double>(report->received) /
                               report->wall_s
                         : 0;

  FillLatencyPercentiles(ledger, report);
  return true;
}

}  // namespace vbr::net
