// A deliberately small HTTP/1.1 subset for the debug endpoint: enough to
// parse `POST /plan` and `GET /explain?...` from well-behaved tools (curl,
// browsers, the tests) and to emit well-formed responses.  Not a general
// web server: no chunked transfer encoding, no multi-line headers, one
// request in flight per connection.
#ifndef VBR_NET_HTTP_H_
#define VBR_NET_HTTP_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace vbr::net {

struct HttpRequest {
  std::string method;   // "GET", "POST", ... (uppercase as sent)
  std::string path;     // target path, URL-decoded, query string stripped
  // Query parameters, URL-decoded.  Last occurrence of a repeated key wins.
  std::map<std::string, std::string> params;
  // Header names lowercased; values trimmed of surrounding whitespace.
  std::map<std::string, std::string> headers;
  std::string body;
  bool keep_alive = true;
};

enum class HttpParseStatus : uint8_t {
  kOk = 0,
  kNeedMore,  // headers or body incomplete; keep reading
  kBad,       // malformed request line/headers; respond 400 and close
  kTooLarge,  // headers+body exceed the configured cap; respond 413, close
};

// Parses one request from the front of `buffer`.  On kOk fills *out and
// sets *consumed to the bytes to drop from the receive buffer.  Requests
// with a body require Content-Length (chunked encoding is kBad).
HttpParseStatus ParseHttpRequest(std::string_view buffer, size_t max_bytes,
                                 HttpRequest* out, size_t* consumed);

// Serializes a response with Content-Length and Connection headers.
std::string BuildHttpResponse(int status_code, std::string_view content_type,
                              std::string_view body, bool keep_alive);

// Percent-decoding; '+' decodes to space (form/query convention).
std::string UrlDecode(std::string_view in);

}  // namespace vbr::net

#endif  // VBR_NET_HTTP_H_
