// A fault-tolerant blocking client for the binary plan protocol.
//
// The plain wire helpers (ConnectTcp + WriteAll/ReadAll) give up on the
// first short read; this client survives the failures chaos_socket.h
// injects and hostile networks produce for real: connect timeouts,
// mid-frame disconnects, stalled responses.  On any failure it closes the
// connection, clears its receive buffer (a half-frame from a dead
// incarnation must never desynchronize the next one), sleeps a jittered
// backoff, reconnects, and RESENDS the request.
//
// Resending is safe because plan requests are idempotent: planning is a
// pure function of (query, options) and the server's cache plus query
// handles make the resubmission exact — the server may plan twice, but both
// responses are byte-identical and the client consumes exactly one.  See
// docs/PROTOCOL.md "Retry & idempotency".  The one caveat: a request_id is
// never reused across attempts of DIFFERENT requests, and responses whose
// request_id does not match the in-flight request are discarded as stale.
#ifndef VBR_NET_RESILIENT_CLIENT_H_
#define VBR_NET_RESILIENT_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/backoff.h"
#include "net/frame.h"
#include "net/socket.h"

namespace vbr::net {

struct ResilientClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int connect_timeout_ms = 1000;
  // Per-attempt deadline covering send + wait-for-response.
  int request_timeout_ms = 2000;
  // Total attempts per Call (connect + send + receive each count once).
  int max_attempts = 8;
  // Reconnect/retry delay schedule; seeded so chaos runs replay.
  BackoffPolicy backoff{/*max_attempts=*/8, /*base_ms=*/1.0,
                        /*multiplier=*/2.0, /*max_ms=*/50.0,
                        /*jitter=*/0.5};
  uint64_t backoff_seed = 1;
};

class ResilientClient {
 public:
  struct Stats {
    uint64_t connects = 0;    // successful connection establishments
    uint64_t reconnects = 0;  // connects after the first
    uint64_t retries = 0;     // request resends (attempts beyond the first)
    uint64_t timeouts = 0;    // per-attempt deadlines that expired
    uint64_t io_errors = 0;   // send/recv failures (incl. injected)
    uint64_t stale_responses = 0;  // discarded mismatched request_ids
  };

  explicit ResilientClient(ResilientClientOptions options)
      : options_(std::move(options)) {}

  // Sends one request and blocks until its response arrives or attempts
  // run out.  Returns false and fills *error only when every attempt
  // failed; the caller decides whether that counts as "lost".
  bool Call(const PlanRequestFrame& request, PlanResponseFrame* response,
            std::string* error);

  bool connected() const { return fd_.valid(); }
  void Close() {
    fd_.reset();
    rx_.clear();
  }
  const Stats& stats() const { return stats_; }
  const ResilientClientOptions& options() const { return options_; }

 private:
  bool EnsureConnected(std::string* error);
  // One attempt: send the encoded frame and wait for the matching
  // response within deadline_ms.  Any failure closes the connection.
  bool Attempt(const std::string& encoded, uint64_t request_id,
               PlanResponseFrame* response, std::string* error);

  ResilientClientOptions options_;
  OwnedFd fd_;
  std::string rx_;
  Stats stats_;
};

}  // namespace vbr::net

#endif  // VBR_NET_RESILIENT_CLIENT_H_
