#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace vbr::net {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string Lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

void ParseQueryString(std::string_view query,
                      std::map<std::string, std::string>* params) {
  while (!query.empty()) {
    const size_t amp = query.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view()
                                          : query.substr(amp + 1);
    if (pair.empty()) continue;
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      (*params)[UrlDecode(pair)] = "";
    } else {
      (*params)[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
    }
  }
}

const char* ReasonPhrase(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Status";
  }
}

}  // namespace

std::string UrlDecode(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '+') {
      out.push_back(' ');
    } else if (in[i] == '%' && i + 2 < in.size()) {
      const int hi = HexDigit(in[i + 1]);
      const int lo = HexDigit(in[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back('%');
      }
    } else {
      out.push_back(in[i]);
    }
  }
  return out;
}

HttpParseStatus ParseHttpRequest(std::string_view buffer, size_t max_bytes,
                                 HttpRequest* out, size_t* consumed) {
  const size_t header_end = buffer.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    return buffer.size() > max_bytes ? HttpParseStatus::kTooLarge
                                     : HttpParseStatus::kNeedMore;
  }
  const std::string_view head = buffer.substr(0, header_end);

  // Request line: METHOD SP target SP HTTP/1.x
  const size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return HttpParseStatus::kBad;
  }
  const std::string_view version = request_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return HttpParseStatus::kBad;
  }
  HttpRequest request;
  request.method = std::string(request_line.substr(0, sp1));
  const std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t qmark = target.find('?');
  request.path = UrlDecode(target.substr(0, qmark));
  if (qmark != std::string_view::npos) {
    ParseQueryString(target.substr(qmark + 1), &request.params);
  }

  // Headers.
  std::string_view rest = line_end == std::string_view::npos
                              ? std::string_view()
                              : head.substr(line_end + 2);
  while (!rest.empty()) {
    const size_t eol = rest.find("\r\n");
    const std::string_view line =
        eol == std::string_view::npos ? rest : rest.substr(0, eol);
    rest = eol == std::string_view::npos ? std::string_view()
                                         : rest.substr(eol + 2);
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) return HttpParseStatus::kBad;
    request.headers[Lower(Trim(line.substr(0, colon)))] =
        std::string(Trim(line.substr(colon + 1)));
  }

  // Body: Content-Length only.
  size_t body_len = 0;
  if (const auto it = request.headers.find("transfer-encoding");
      it != request.headers.end()) {
    return HttpParseStatus::kBad;  // chunked not supported
  }
  if (const auto it = request.headers.find("content-length");
      it != request.headers.end()) {
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0') {
      return HttpParseStatus::kBad;
    }
    // Bound before computing `total`: an ERANGE-clamped or near-SIZE_MAX
    // value would wrap the addition below, bypass the cap, and desync
    // *consumed from the bytes actually consumed.
    if (errno == ERANGE || v > max_bytes) return HttpParseStatus::kTooLarge;
    body_len = static_cast<size_t>(v);
  }
  const size_t total = header_end + 4 + body_len;
  if (total > max_bytes) return HttpParseStatus::kTooLarge;
  if (buffer.size() < total) return HttpParseStatus::kNeedMore;
  request.body = std::string(buffer.substr(header_end + 4, body_len));

  request.keep_alive = version == "HTTP/1.1";
  if (const auto it = request.headers.find("connection");
      it != request.headers.end()) {
    const std::string value = Lower(it->second);
    if (value == "close") request.keep_alive = false;
    if (value == "keep-alive") request.keep_alive = true;
  }

  *out = std::move(request);
  *consumed = total;
  return HttpParseStatus::kOk;
}

std::string BuildHttpResponse(int status_code, std::string_view content_type,
                              std::string_view body, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(status_code) + " " +
                    ReasonPhrase(status_code) + "\r\n";
  out += "Content-Type: " + std::string(content_type) + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out.append(body.data(), body.size());
  return out;
}

}  // namespace vbr::net
