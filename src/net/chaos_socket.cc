#include "net/chaos_socket.h"

#include <sys/socket.h>

#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "common/fault_injection.h"

namespace vbr::net {

namespace {

// splitmix64 finalizer: the decision for crossing n of a site is a pure
// function of (seed, site salt, n), so schedules replay from the seed.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

constexpr uint64_t kReadSalt = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kWriteSalt = 0xc2b2ae3d27d4eb4fULL;
constexpr uint64_t kAcceptSalt = 0x165667b19e3779f9ULL;
constexpr uint64_t kConnectSalt = 0x27d4eb2f165667c5ULL;

struct ChaosState {
  ChaosOptions options;
  std::atomic<uint64_t> read_crossings{0};
  std::atomic<uint64_t> write_crossings{0};
  std::atomic<uint64_t> accept_crossings{0};
  std::atomic<uint64_t> connect_crossings{0};

  std::atomic<uint64_t> short_reads{0};
  std::atomic<uint64_t> short_writes{0};
  std::atomic<uint64_t> read_eagains{0};
  std::atomic<uint64_t> write_eagains{0};
  std::atomic<uint64_t> write_delays{0};
  std::atomic<uint64_t> read_disconnects{0};
  std::atomic<uint64_t> write_disconnects{0};
  std::atomic<uint64_t> accept_resets{0};
  std::atomic<uint64_t> connect_failures{0};

  std::mutex tracked_mu;
  std::unordered_set<int> tracked;
};

ChaosState& State() {
  static ChaosState* const state = new ChaosState();
  return *state;
}

// Picks this crossing's fault: percent thresholds are evaluated in order
// over one uniform draw in [0, 100), so at most one fault fires and the
// aggregate fault rate is the sum of the rates.
enum class Pick : uint8_t { kNone, kDisconnect, kEagain, kShort, kDelay };

Pick Draw(uint64_t salt, uint64_t crossing, int disconnect_pct,
          int eagain_pct, int short_pct, int delay_pct) {
  const ChaosOptions& o = State().options;
  const uint64_t z = Mix64(o.seed ^ salt ^ (crossing * 0xd1342543de82ef95ULL));
  const int roll = static_cast<int>(z % 100);
  int bound = disconnect_pct;
  if (roll < bound) return Pick::kDisconnect;
  bound += eagain_pct;
  if (roll < bound) return Pick::kEagain;
  bound += short_pct;
  if (roll < bound) return Pick::kShort;
  bound += delay_pct;
  if (roll < bound) return Pick::kDelay;
  return Pick::kNone;
}

// The peer observes the disconnect immediately: shutdown(2) tears the
// stream down without releasing the fd number, so the owner's eventual
// close(2) stays the only close and fd reuse cannot be confused.
IoResult InjectDisconnect(int fd) {
  ::shutdown(fd, SHUT_RDWR);
  return {IoStatus::kError, 0};
}

}  // namespace

std::atomic<bool> ChaosSocket::enabled_{false};

ChaosOptions ChaosOptions::Soak(uint64_t seed) {
  ChaosOptions o;
  o.seed = seed;
  o.read_disconnect_pct = 1;
  o.read_eagain_pct = 4;
  o.short_read_pct = 6;
  o.write_disconnect_pct = 1;
  o.write_eagain_pct = 4;
  o.short_write_pct = 6;
  o.write_delay_pct = 2;
  o.accept_reset_pct = 5;
  o.connect_fail_pct = 5;
  o.delay_us = 200;
  return o;
}

void ChaosSocket::Enable(const ChaosOptions& options) {
  ChaosState& state = State();
  {
    std::lock_guard<std::mutex> lock(state.tracked_mu);
    state.tracked.clear();
  }
  state.options = options;
  state.read_crossings.store(0);
  state.write_crossings.store(0);
  state.accept_crossings.store(0);
  state.connect_crossings.store(0);
  state.short_reads.store(0);
  state.short_writes.store(0);
  state.read_eagains.store(0);
  state.write_eagains.store(0);
  state.write_delays.store(0);
  state.read_disconnects.store(0);
  state.write_disconnects.store(0);
  state.accept_resets.store(0);
  state.connect_failures.store(0);
  enabled_.store(true, std::memory_order_release);
}

void ChaosSocket::Disable() {
  enabled_.store(false, std::memory_order_release);
  ChaosState& state = State();
  std::lock_guard<std::mutex> lock(state.tracked_mu);
  state.tracked.clear();
}

ChaosSocket::Stats ChaosSocket::stats() {
  ChaosState& state = State();
  Stats s;
  s.short_reads = state.short_reads.load(std::memory_order_relaxed);
  s.short_writes = state.short_writes.load(std::memory_order_relaxed);
  s.read_eagains = state.read_eagains.load(std::memory_order_relaxed);
  s.write_eagains = state.write_eagains.load(std::memory_order_relaxed);
  s.write_delays = state.write_delays.load(std::memory_order_relaxed);
  s.read_disconnects = state.read_disconnects.load(std::memory_order_relaxed);
  s.write_disconnects =
      state.write_disconnects.load(std::memory_order_relaxed);
  s.accept_resets = state.accept_resets.load(std::memory_order_relaxed);
  s.connect_failures =
      state.connect_failures.load(std::memory_order_relaxed);
  return s;
}

void ChaosSocket::Track(int fd) {
  if (fd < 0) return;
  ChaosState& state = State();
  std::lock_guard<std::mutex> lock(state.tracked_mu);
  state.tracked.insert(fd);
}

void ChaosSocket::Untrack(int fd) {
  ChaosState& state = State();
  std::lock_guard<std::mutex> lock(state.tracked_mu);
  state.tracked.erase(fd);
}

bool ChaosSocket::IsTracked(int fd) {
  ChaosState& state = State();
  std::lock_guard<std::mutex> lock(state.tracked_mu);
  return state.tracked.count(fd) > 0;
}

ChaosVerdict ChaosSocket::BeforeRead(int fd, size_t len) {
  ChaosVerdict verdict;
  if (!IsTracked(fd)) return verdict;
  ChaosState& state = State();
  const uint64_t n =
      state.read_crossings.fetch_add(1, std::memory_order_relaxed);
  // An armed registry fault overrides the seeded schedule at its crossing.
  if (FaultCheck("chaos.read").has_value()) {
    state.read_disconnects.fetch_add(1, std::memory_order_relaxed);
    verdict.forced = InjectDisconnect(fd);
    return verdict;
  }
  const ChaosOptions& o = state.options;
  switch (Draw(kReadSalt, n, o.read_disconnect_pct, o.read_eagain_pct,
               o.short_read_pct, 0)) {
    case Pick::kDisconnect:
      state.read_disconnects.fetch_add(1, std::memory_order_relaxed);
      verdict.forced = InjectDisconnect(fd);
      break;
    case Pick::kEagain:
      state.read_eagains.fetch_add(1, std::memory_order_relaxed);
      verdict.forced = IoResult{IoStatus::kWouldBlock, 0};
      break;
    case Pick::kShort:
      if (len > 1) {
        state.short_reads.fetch_add(1, std::memory_order_relaxed);
        verdict.max_len = 1;
      }
      break;
    default:
      break;
  }
  return verdict;
}

ChaosVerdict ChaosSocket::BeforeWrite(int fd, size_t len) {
  ChaosVerdict verdict;
  if (!IsTracked(fd)) return verdict;
  ChaosState& state = State();
  const uint64_t n =
      state.write_crossings.fetch_add(1, std::memory_order_relaxed);
  if (FaultCheck("chaos.write").has_value()) {
    state.write_disconnects.fetch_add(1, std::memory_order_relaxed);
    verdict.forced = InjectDisconnect(fd);
    return verdict;
  }
  const ChaosOptions& o = state.options;
  switch (Draw(kWriteSalt, n, o.write_disconnect_pct, o.write_eagain_pct,
               o.short_write_pct, o.write_delay_pct)) {
    case Pick::kDisconnect:
      state.write_disconnects.fetch_add(1, std::memory_order_relaxed);
      verdict.forced = InjectDisconnect(fd);
      break;
    case Pick::kEagain:
      state.write_eagains.fetch_add(1, std::memory_order_relaxed);
      verdict.forced = IoResult{IoStatus::kWouldBlock, 0};
      break;
    case Pick::kShort:
      if (len > 1) {
        state.short_writes.fetch_add(1, std::memory_order_relaxed);
        verdict.max_len = 1;
      }
      break;
    case Pick::kDelay:
      state.write_delays.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(
          std::chrono::microseconds(state.options.delay_us));
      break;
    default:
      break;
  }
  return verdict;
}

bool ChaosSocket::OnAccept(int fd) {
  ChaosState& state = State();
  const uint64_t n =
      state.accept_crossings.fetch_add(1, std::memory_order_relaxed);
  bool reset = FaultCheck("chaos.accept").has_value();
  if (!reset) {
    reset = Draw(kAcceptSalt, n, state.options.accept_reset_pct, 0, 0, 0) ==
            Pick::kDisconnect;
  }
  if (reset) {
    state.accept_resets.fetch_add(1, std::memory_order_relaxed);
    // SO_LINGER(0) turns the close into an RST, which is what a client
    // that vanished between connect and accept looks like.
    const linger hard{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    return true;
  }
  return false;
}

bool ChaosSocket::OnConnect() {
  ChaosState& state = State();
  const uint64_t n =
      state.connect_crossings.fetch_add(1, std::memory_order_relaxed);
  bool fail = FaultCheck("chaos.connect").has_value();
  if (!fail) {
    fail = Draw(kConnectSalt, n, state.options.connect_fail_pct, 0, 0, 0) ==
           Pick::kDisconnect;
  }
  if (fail) {
    state.connect_failures.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

}  // namespace vbr::net
