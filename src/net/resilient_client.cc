#include "net/resilient_client.h"

#include <poll.h>

#include <chrono>
#include <thread>

namespace vbr::net {

namespace {

using Clock = std::chrono::steady_clock;

int RemainingMs(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return static_cast<int>(left.count());
}

// Waits for readiness, bounded by the attempt deadline.  Returns false
// when the deadline passed before the fd became ready.
bool PollUntil(int fd, short events, Clock::time_point deadline) {
  while (true) {
    const int left = RemainingMs(deadline);
    if (left <= 0) return false;
    pollfd pfd{fd, events, 0};
    const int n = ::poll(&pfd, 1, left);
    if (n > 0) return true;
    if (n == 0) return false;
    // EINTR: re-poll with the recomputed remaining budget.
  }
}

}  // namespace

bool ResilientClient::EnsureConnected(std::string* error) {
  if (fd_.valid()) return true;
  rx_.clear();
  fd_ = ConnectTcpTimeout(options_.host, options_.port,
                          options_.connect_timeout_ms, error);
  if (!fd_.valid()) return false;
  ++stats_.connects;
  if (stats_.connects > 1) ++stats_.reconnects;
  return true;
}

bool ResilientClient::Attempt(const std::string& encoded, uint64_t request_id,
                              PlanResponseFrame* response,
                              std::string* error) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.request_timeout_ms);

  // Send the whole frame, polling for writability under the deadline.
  size_t sent = 0;
  while (sent < encoded.size()) {
    const IoResult r =
        WriteSome(fd_.get(), encoded.data() + sent, encoded.size() - sent);
    if (r.status == IoStatus::kOk) {
      sent += r.n;
      continue;
    }
    if (r.status == IoStatus::kWouldBlock) {
      if (!PollUntil(fd_.get(), POLLOUT, deadline)) {
        ++stats_.timeouts;
        *error = "send timed out";
        return false;
      }
      continue;
    }
    ++stats_.io_errors;
    *error = "send failed";
    return false;
  }

  // Read frames until the one answering this request arrives.
  char buf[4096];
  while (true) {
    std::string_view payload;
    size_t consumed = 0;
    const DecodeStatus ds =
        ExtractFrame(rx_, kDefaultMaxPayload, &payload, &consumed);
    if (ds == DecodeStatus::kOk) {
      PlanResponseFrame frame;
      const DecodeStatus body = DecodePlanResponse(payload, &frame);
      rx_.erase(0, consumed);
      if (body != DecodeStatus::kOk) {
        ++stats_.io_errors;
        *error = std::string("undecodable response: ") +
                 DecodeStatusName(body);
        return false;
      }
      if (frame.request_id != request_id) {
        // A response to an attempt this client already gave up on.
        ++stats_.stale_responses;
        continue;
      }
      *response = std::move(frame);
      return true;
    }
    if (ds != DecodeStatus::kNeedMore) {
      ++stats_.io_errors;
      *error = std::string("corrupt stream: ") + DecodeStatusName(ds);
      return false;
    }
    const IoResult r = ReadSome(fd_.get(), buf, sizeof(buf));
    if (r.status == IoStatus::kOk) {
      rx_.append(buf, r.n);
      continue;
    }
    if (r.status == IoStatus::kWouldBlock) {
      if (!PollUntil(fd_.get(), POLLIN, deadline)) {
        ++stats_.timeouts;
        *error = "response timed out";
        return false;
      }
      continue;
    }
    ++stats_.io_errors;
    *error = r.status == IoStatus::kEof ? "connection closed by server"
                                        : "recv failed";
    return false;
  }
}

bool ResilientClient::Call(const PlanRequestFrame& request,
                           PlanResponseFrame* response, std::string* error) {
  std::string encoded;
  EncodePlanRequest(request, &encoded);
  std::string last_error = "no attempts made";
  const int attempts = options_.max_attempts < 1 ? 1 : options_.max_attempts;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      ++stats_.retries;
      const double delay_ms = options_.backoff.DelayMs(
          static_cast<uint32_t>(attempt - 1),
          options_.backoff_seed ^ request.request_id);
      if (delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            delay_ms));
      }
    }
    if (!EnsureConnected(&last_error)) continue;
    if (Attempt(encoded, request.request_id, response, &last_error)) {
      return true;
    }
    // Failed attempt: drop the connection so a half-sent request or a
    // half-read frame cannot bleed into the next incarnation.
    Close();
  }
  if (error != nullptr) *error = last_error;
  return false;
}

}  // namespace vbr::net
