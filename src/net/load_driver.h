// Open-loop load driver for the binary plan protocol, shared by the
// vbr_loadgen example and bench_service_net.
//
// Open-loop means the send schedule is absolute: request k is due at
// start + k/qps regardless of whether earlier responses have arrived, so a
// saturated server accumulates queueing delay instead of silently slowing
// the offered rate (the coordinated-omission trap of closed-loop drivers).
// Each connection runs a sender and a receiver thread; request ids are
// globally unique, so lost and duplicated responses are detected exactly.
#ifndef VBR_NET_LOAD_DRIVER_H_
#define VBR_NET_LOAD_DRIVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/resilient_client.h"
#include "planner/request_options.h"

namespace vbr::net {

struct LoadDriverOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  size_t connections = 4;
  // Aggregate offered rate across all connections. <= 0 floods (no pacing,
  // still open-loop: senders never wait for responses).
  double qps = 0;
  size_t total_requests = 1000;
  // Queries are assigned round-robin by global request index.
  std::vector<std::string> queries;
  // Per-request options put on the wire (model, deadline, budget).
  PlanRequestOptions request;
  bool want_certificate = false;
  // Client-side handle caching: once a query's first kOk response arrives,
  // later requests for the SAME query send the server-issued handle
  // (kFlagQueryIsHandle) instead of the text. The driver remembers the
  // text-path response per query and byte-compares every non-degraded
  // kOk handle-path response against it (rewriting, certificate, planner
  // status, cost) — a divergence counts in LoadReport::handle_mismatches.
  bool use_handles = false;
  // How long the receivers keep draining after the last send before
  // declaring the remaining requests lost.
  double drain_timeout_ms = 5000;
  // Closed-loop resilient mode: each connection drives one request at a
  // time through a ResilientClient (timeouts, reconnects, idempotent
  // retries).  The open-loop schedule and the sender/receiver split do not
  // survive a flaky transport; this mode does — it is what --chaos uses.
  // A request whose attempts all fail counts as lost; duplicates cannot
  // occur (the client consumes exactly one response per request).
  bool resilient = false;
  // host/port/backoff_seed are overridden per connection from the fields
  // above; the rest (timeouts, max_attempts, backoff) apply as given.
  ResilientClientOptions resilient_client;
};

struct LoadReport {
  size_t sent = 0;
  size_t received = 0;
  size_t lost = 0;        // sent, never answered within the drain timeout
  size_t duplicated = 0;  // answered more than once (protocol bug if != 0)
  size_t decode_errors = 0;
  // Handle caching (use_handles): how many requests went out by handle,
  // and how many handle-path responses diverged from the stored text-path
  // response for the same query (0 on a correct server).
  size_t handle_requests = 0;
  size_t handle_mismatches = 0;
  // Responses by WireStatus (indexed by the enum's numeric value).
  size_t by_status[7] = {0, 0, 0, 0, 0, 0, 0};
  // Resilient mode only: transport recoveries summed across connections.
  size_t retries = 0;
  size_t reconnects = 0;
  size_t timeouts = 0;
  size_t io_errors = 0;
  double wall_s = 0;
  double achieved_qps = 0;  // received / wall_s
  // Latency percentiles over answered requests, milliseconds.
  double p50_ms = 0;
  double p90_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;

  size_t ok() const { return by_status[0]; }
  size_t shed_or_rejected() const {
    return by_status[1] + by_status[2];
  }
  std::string ToString() const;
};

// Runs the workload; returns false and fills *error when the connections
// cannot be established.  Thread-safe with respect to the server.
bool RunLoad(const LoadDriverOptions& options, LoadReport* report,
             std::string* error);

}  // namespace vbr::net

#endif  // VBR_NET_LOAD_DRIVER_H_
