#ifndef VBR_COMMON_TIMER_H_
#define VBR_COMMON_TIMER_H_

#include <chrono>

namespace vbr {

// Wall-clock stopwatch used by the experiment harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace vbr

#endif  // VBR_COMMON_TIMER_H_
