#ifndef VBR_COMMON_BACKOFF_H_
#define VBR_COMMON_BACKOFF_H_

#include <algorithm>
#include <cstdint>

namespace vbr {

// Jittered exponential retry backoff.
//
// DelayMs is a pure function of (policy, attempt, seed): the exponential
// schedule base * multiplier^(attempt-1), capped at max_ms, with the top
// `jitter` fraction randomized by a splitmix64 hash of (seed, attempt).
// There is no hidden state and no clock, so retry schedules are exactly
// reproducible from the request's seed — the PlanningService uses the
// request's admission sequence number, which makes every retry delay in a
// deterministic test replayable (see tests/common/backoff_test.cc).
struct BackoffPolicy {
  // Total attempts, including the first; 1 disables retries entirely.
  uint32_t max_attempts = 3;
  // Delay before the first retry (attempt 1 in DelayMs terms).
  double base_ms = 1.0;
  double multiplier = 2.0;
  // Cap applied before jitter.
  double max_ms = 100.0;
  // Fraction of the capped delay that is randomized: the delay spans
  // [(1 - jitter) * d, d]. 0 = fully deterministic schedule.
  double jitter = 0.5;

  // Delay before retry number `attempt` (1-based; attempt 0 returns 0).
  double DelayMs(uint32_t attempt, uint64_t seed) const {
    if (attempt == 0) return 0;
    double d = base_ms;
    for (uint32_t i = 1; i < attempt && d < max_ms; ++i) d *= multiplier;
    d = std::min(d, max_ms);
    if (jitter <= 0) return d;
    // splitmix64 over (seed, attempt); uniform in [0, 1).
    uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (attempt + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const double u =
        static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
    const double j = std::min(jitter, 1.0);
    return d * (1.0 - j) + d * j * u;
  }
};

}  // namespace vbr

#endif  // VBR_COMMON_BACKOFF_H_
