#include "common/circuit_breaker.h"

#include "common/check.h"

namespace vbr {

CircuitBreaker::CircuitBreaker(const CircuitBreakerOptions& options)
    : options_(options), outcomes_(options.window, false) {
  VBR_CHECK_MSG(options.window > 0, "breaker window must be positive");
  VBR_CHECK_MSG(options.num_levels >= 2,
                "breaker needs at least a healthy and a reject level");
  VBR_CHECK_MSG(options.probe_interval >= 1,
                "probe_interval must be at least 1");
}

void CircuitBreaker::Record(bool failure) {
  std::lock_guard<std::mutex> lock(mu_);
  if (filled_ == outcomes_.size()) {
    // Overwrite the oldest outcome.
    if (outcomes_[next_slot_]) --failures_;
  } else {
    ++filled_;
  }
  outcomes_[next_slot_] = failure;
  if (failure) ++failures_;
  next_slot_ = (next_slot_ + 1) % outcomes_.size();
  ++since_move_;

  if (filled_ < options_.min_samples || since_move_ < options_.cooldown) {
    return;
  }
  const double rate =
      static_cast<double>(failures_) / static_cast<double>(filled_);
  const uint32_t level = level_.load(std::memory_order_relaxed);
  uint32_t next = level;
  if (rate >= options_.trip_threshold && level + 1 < options_.num_levels) {
    next = level + 1;
    trips_.fetch_add(1, std::memory_order_relaxed);
  } else if (rate <= options_.clear_threshold && level > 0) {
    next = level - 1;
    recoveries_.fetch_add(1, std::memory_order_relaxed);
  }
  if (next != level) {
    level_.store(next, std::memory_order_release);
    // A fresh window per level: outcomes observed under the old service
    // level do not describe the new one.
    std::fill(outcomes_.begin(), outcomes_.end(), false);
    filled_ = 0;
    failures_ = 0;
    since_move_ = 0;
  }
}

CircuitBreaker::Admission CircuitBreaker::Admit() {
  if (level_.load(std::memory_order_acquire) != reject_level()) {
    return Admission::kAdmit;
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Re-check under the lock (the level may have just moved).
  if (level_.load(std::memory_order_relaxed) != reject_level()) {
    return Admission::kAdmit;
  }
  if (++probe_counter_ >= options_.probe_interval) {
    probe_counter_ = 0;
    return Admission::kProbe;
  }
  return Admission::kReject;
}

double CircuitBreaker::failure_rate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return filled_ == 0
             ? 0.0
             : static_cast<double>(failures_) / static_cast<double>(filled_);
}

}  // namespace vbr
