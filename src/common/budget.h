#ifndef VBR_COMMON_BUDGET_H_
#define VBR_COMMON_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace vbr {

// Resource-governed planning (see DESIGN.md "Resource governance").
//
// CoreCover's set-cover enumeration, the homomorphism searches it bottoms
// out in, and the M2/M3 optimizers are worst-case exponential, so a
// production planner must be able to bound one planning request by a
// wall-clock deadline, a work budget, and a memory budget. The
// ResourceGovernor carries those limits; the pipeline checks it
// cooperatively and winds down — it NEVER aborts the process. Aborted
// searches always report "not found", which every consumer treats as the
// conservative direction (a kept subgoal, a smaller tuple-core, a missing
// cover): exhaustion can hide rewritings but can never certify a wrong one.
//
// The governor is installed for the current thread with the RAII
// GovernorScope; ThreadPool::ParallelFor re-installs the caller's governor
// inside every pool task, so work already in flight on pool threads observes
// the same budget without any API plumbing.
//
// Determinism contract (tests/property/budget_determinism_test.cc): under a
// pure WORK budget (no deadline), governed results are byte-identical across
// thread counts and runs. Two rules make that hold:
//
//  1. Decisions that consult the shared work counter happen only at SERIAL
//     checkpoints (CheckPoint) — stage boundaries in CoreCover, the
//     per-candidate costing loop — where the accumulated total is
//     schedule-independent. Parallel hot loops use KeepGoing(), which never
//     latches on work.
//  2. An individual backtracking search is bounded by the deterministic
//     per-search node cap (search_node_cap), identical for every search
//     regardless of scheduling.
//
// Deadline checks may fire anywhere (KeepGoing included); wall-clock
// outcomes are explicitly not deterministic.

enum class BudgetKind {
  kNone = 0,
  kDeadline,  // wall-clock deadline passed
  kWork,      // cumulative work limit reached (or injected kBudgetExhausted)
  kMemory,    // tracked memory limit reached (or injected kAllocFailure)
  kInjected,  // forced by an injected kStageAbort fault
};

const char* BudgetKindName(BudgetKind kind);

struct ResourceLimits {
  // Wall-clock deadline for the governed region, 0 = unlimited.
  double deadline_ms = 0;
  // Cumulative work-unit limit, 0 = unlimited. One unit is roughly one
  // containment-mapping attempt, one view tuple generated, one set-cover or
  // tuple-core search node expanded, or one M2 subset costed.
  uint64_t work_limit = 0;
  // Tracked-allocation limit (intermediate join results), 0 = unlimited.
  uint64_t memory_limit_bytes = 0;
  // Node cap for one backtracking search (homomorphism, tuple-core, one
  // set-cover branch). 0 derives it: work_limit when a work budget is set,
  // otherwise unlimited.
  uint64_t search_node_cap = 0;

  bool unlimited() const {
    return deadline_ms <= 0 && work_limit == 0 && memory_limit_bytes == 0 &&
           search_node_cap == 0;
  }
};

// Where and why a budget died.
struct BudgetExhaustion {
  BudgetKind kind = BudgetKind::kNone;
  std::string site;
};

class ResourceGovernor {
 public:
  explicit ResourceGovernor(const ResourceLimits& limits);

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  // ---- Accounting (no abort decision) ----

  // Adds `n` work units to the shared counter.
  void ChargeWork(uint64_t n) {
    work_used_.fetch_add(n, std::memory_order_relaxed);
  }

  // Tracks `bytes` of governed allocation; latches kMemory exhaustion at
  // `site` when the total crosses the limit. Returns false when exhausted.
  bool ChargeMemory(uint64_t bytes, const char* site);
  void ReleaseMemory(uint64_t bytes) {
    memory_used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  // ---- Cooperative checks ----

  // Deterministic checkpoint for SERIAL pipeline points (stage boundaries,
  // per-candidate costing): latches exhaustion on the work counter, the
  // memory counter, the deadline, and injected faults. Returns true to
  // continue.
  bool CheckPoint(const char* site);

  // Cheap cooperative check for hot loops, safe on pool threads: observes
  // already-latched exhaustion, the deadline (clock reads amortized), and
  // injected faults — never latches on the work counter (that would make
  // parallel outcomes schedule-dependent). Returns true to continue.
  bool KeepGoing(const char* site);

  // First-wins exhaustion latch (used by the checks above and by fault
  // injection mapping).
  void NoteExhausted(BudgetKind kind, const char* site);

  // ---- Introspection ----

  bool exhausted() const {
    return kind_.load(std::memory_order_acquire) !=
           static_cast<int>(BudgetKind::kNone);
  }
  BudgetKind kind() const {
    return static_cast<BudgetKind>(kind_.load(std::memory_order_acquire));
  }
  // Snapshot of kind + site (site is stable once exhausted() is true).
  BudgetExhaustion exhaustion() const;

  uint64_t work_used() const {
    return work_used_.load(std::memory_order_relaxed);
  }
  uint64_t memory_used() const {
    return memory_used_.load(std::memory_order_relaxed);
  }
  // Deterministic per-search node cap (see ResourceLimits::search_node_cap);
  // 0 = unlimited.
  uint64_t search_node_cap() const { return search_node_cap_; }
  const ResourceLimits& limits() const { return limits_; }

  double elapsed_ms() const;
  // Wall-clock left before the deadline; a large positive value when no
  // deadline is set, clamped at 0 once passed.
  double remaining_ms() const;

  // The governor installed for the calling thread, or nullptr. Ungoverned
  // code paths cost exactly this thread-local load and a null check.
  static ResourceGovernor* Current();

 private:
  friend class GovernorScope;

  bool CheckDeadlineNow(const char* site);
  bool ConsultFaults(const char* site);

  const ResourceLimits limits_;
  const uint64_t search_node_cap_;
  const std::chrono::steady_clock::time_point start_;
  const std::chrono::steady_clock::time_point deadline_;  // start_ if none
  std::atomic<uint64_t> work_used_{0};
  std::atomic<uint64_t> memory_used_{0};
  std::atomic<uint32_t> deadline_ticks_{0};  // amortizes clock reads
  std::atomic<int> kind_{static_cast<int>(BudgetKind::kNone)};
  mutable std::mutex site_mu_;
  std::string site_;  // guarded by site_mu_, written once
};

// Installs `governor` as the calling thread's current governor for the
// scope's lifetime; nests (the previous governor is restored on exit).
// Installing nullptr shields a region from an outer governor — the planner
// uses that to run grace-budget certification under a fresh governor.
class GovernorScope {
 public:
  explicit GovernorScope(ResourceGovernor* governor);
  ~GovernorScope();

  GovernorScope(const GovernorScope&) = delete;
  GovernorScope& operator=(const GovernorScope&) = delete;

 private:
  ResourceGovernor* previous_;
};

}  // namespace vbr

#endif  // VBR_COMMON_BUDGET_H_
