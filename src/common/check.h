#ifndef VBR_COMMON_CHECK_H_
#define VBR_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Lightweight assertion macros. The library does not throw exceptions;
// internal invariant violations terminate with a source location.
//
// VBR_CHECK is always on; use it for cheap invariants and API contract
// violations. VBR_DCHECK compiles away in NDEBUG builds; use it inside hot
// loops.

#define VBR_CHECK(cond)                                                  \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "VBR_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                     \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#define VBR_CHECK_MSG(cond, msg)                                         \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "VBR_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, (msg));                    \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#ifdef NDEBUG
#define VBR_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define VBR_DCHECK(cond) VBR_CHECK(cond)
#endif

#endif  // VBR_COMMON_CHECK_H_
