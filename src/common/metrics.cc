#include "common/metrics.h"

#include <bit>
#include <cstdio>

#include "common/check.h"
#include "common/json.h"

namespace vbr {

void Histogram::Record(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  out.min = out.count == 0 ? 0 : min_.load(std::memory_order_relaxed);
  out.max = max_.load(std::memory_order_relaxed);
  for (size_t b = 0; b < kNumBuckets; ++b) {
    const uint64_t n = buckets_[b].load(std::memory_order_relaxed);
    if (n == 0) continue;
    const uint64_t bound = b == 0 ? 0 : (b >= 64 ? UINT64_MAX : (uint64_t{1} << b) - 1);
    out.buckets.emplace_back(bound, n);
  }
  return out;
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (size_t b = 0; b < kNumBuckets; ++b) {
    buckets_[b].store(0, std::memory_order_relaxed);
  }
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const CounterSnapshot& c : counters) {
    out += c.name + " " + std::to_string(c.value) + "\n";
  }
  for (const HistogramSnapshot& h : histograms) {
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer),
                  "%s count=%llu sum=%llu mean=%.1f min=%llu max=%llu\n",
                  h.name.c_str(),
                  static_cast<unsigned long long>(h.data.count),
                  static_cast<unsigned long long>(h.data.sum), h.data.Mean(),
                  static_cast<unsigned long long>(h.data.min),
                  static_cast<unsigned long long>(h.data.max));
    out += buffer;
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out += ',';
    out += "\"" + JsonEscape(counters[i].name) +
           "\":" + std::to_string(counters[i].value);
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < histograms.size(); ++i) {
    if (i > 0) out += ',';
    const Histogram::Snapshot& s = histograms[i].data;
    out += "\"" + JsonEscape(histograms[i].name) + "\":{";
    out += "\"count\":" + std::to_string(s.count);
    out += ",\"sum\":" + std::to_string(s.sum);
    out += ",\"min\":" + std::to_string(s.min);
    out += ",\"max\":" + std::to_string(s.max);
    out += ",\"buckets\":[";
    for (size_t b = 0; b < s.buckets.size(); ++b) {
      if (b > 0) out += ',';
      out += "[" + std::to_string(s.buckets[b].first) + "," +
             std::to_string(s.buckets[b].second) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  VBR_CHECK_MSG(histograms_.find(name) == histograms_.end(),
                "metric name already registered as a histogram");
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second.get();
  return counters_.emplace(std::string(name), std::make_unique<Counter>())
      .first->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  VBR_CHECK_MSG(counters_.find(name) == counters_.end(),
                "metric name already registered as a counter");
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second.get();
  return histograms_.emplace(std::string(name), std::make_unique<Histogram>())
      .first->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.push_back({name, counter->value()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.histograms.push_back({name, histogram->snapshot()});
  }
  return out;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace vbr
