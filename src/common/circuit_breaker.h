#ifndef VBR_COMMON_CIRCUIT_BREAKER_H_
#define VBR_COMMON_CIRCUIT_BREAKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace vbr {

// A multi-level circuit breaker driving the PlanningService's brown-out
// ladder (see DESIGN.md "Serving and overload").
//
// Classic circuit breakers are binary (closed / open); planning degrades
// more gracefully than that, because the paper's cost-model hierarchy gives
// a ladder of cheaper service levels before outright rejection: full
// planning -> shed tracing -> shrunken budgets -> cached-or-M1-only ->
// reject. The breaker tracks a sliding window of request outcomes and walks
// the ladder one rung at a time: sustained failure (budget exhaustion,
// deadline misses) escalates, sustained success de-escalates.
//
// Determinism: the level is a pure function of the outcome SEQUENCE — the
// breaker reads no clock and no RNG. Cooldown between level moves is
// counted in outcomes, not seconds, so a test that feeds a fixed outcome
// sequence observes a fixed level trajectory. Recovery needs traffic, not
// time: at the top (reject) level every `probe_interval`-th admission is
// let through as a probe (the half-open state), so the window keeps
// receiving genuine outcomes and the breaker can walk back down.
//
// Thread safety: Record* and Admit take a mutex (the window is shared
// state); level() is a lock-free atomic read for hot-path checks.

struct CircuitBreakerOptions {
  // Sliding outcome window size.
  size_t window = 64;
  // Minimum outcomes in the window before the failure rate is acted on.
  size_t min_samples = 16;
  // Failure rate at or above which the breaker escalates one level.
  double trip_threshold = 0.5;
  // Failure rate at or below which it de-escalates one level.
  double clear_threshold = 0.1;
  // Outcomes that must accrue after a level move before the next move
  // (prevents one bad window from sprinting to the top).
  size_t cooldown = 16;
  // Number of ladder levels; level 0 = healthy, num_levels - 1 = reject.
  uint32_t num_levels = 5;
  // At the reject level, every probe_interval-th Admit() is allowed
  // through as a half-open probe. Must be >= 1.
  size_t probe_interval = 8;
};

class CircuitBreaker {
 public:
  enum class Admission {
    kAdmit = 0,  // below the reject level: serve (possibly degraded)
    kProbe,      // at the reject level, but selected as a half-open probe
    kReject,     // at the reject level: shed
  };

  explicit CircuitBreaker(const CircuitBreakerOptions& options);

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  // Feeds one planning outcome into the window and applies the ladder
  // rules. Shed / rejected requests must NOT be recorded (a breaker fed by
  // its own rejections never recovers).
  void RecordSuccess() { Record(false); }
  void RecordFailure() { Record(true); }

  // Admission decision for one request at the current level.
  Admission Admit();

  // Current ladder level: 0 = full service, num_levels - 1 = reject.
  uint32_t level() const { return level_.load(std::memory_order_acquire); }
  uint32_t reject_level() const { return options_.num_levels - 1; }

  // Cumulative level escalations / de-escalations.
  uint64_t trips() const { return trips_.load(std::memory_order_relaxed); }
  uint64_t recoveries() const {
    return recoveries_.load(std::memory_order_relaxed);
  }

  // Failure rate over the current window (0 when empty).
  double failure_rate() const;

  const CircuitBreakerOptions& options() const { return options_; }

 private:
  void Record(bool failure);

  const CircuitBreakerOptions options_;
  std::atomic<uint32_t> level_{0};
  std::atomic<uint64_t> trips_{0};
  std::atomic<uint64_t> recoveries_{0};

  mutable std::mutex mu_;
  // Ring buffer of the last `window` outcomes (true = failure).
  std::vector<bool> outcomes_;     // guarded by mu_
  size_t next_slot_ = 0;           // guarded by mu_
  size_t filled_ = 0;              // guarded by mu_
  size_t failures_ = 0;            // guarded by mu_
  size_t since_move_ = 0;          // outcomes since the last level move
  size_t probe_counter_ = 0;       // guarded by mu_
};

}  // namespace vbr

#endif  // VBR_COMMON_CIRCUIT_BREAKER_H_
