#include "common/budget.h"

#include "common/fault_injection.h"

namespace vbr {
namespace {

thread_local ResourceGovernor* g_current_governor = nullptr;

// KeepGoing() reads the clock once per this many calls; deadlines therefore
// overshoot by a bounded amount of hot-loop work, not by a syscall per node.
constexpr uint32_t kDeadlineCheckStride = 256;

BudgetKind BudgetKindForFault(FaultKind fault) {
  switch (fault) {
    case FaultKind::kBudgetExhausted:
      return BudgetKind::kWork;
    case FaultKind::kAllocFailure:
      return BudgetKind::kMemory;
    case FaultKind::kStageAbort:
      return BudgetKind::kInjected;
  }
  return BudgetKind::kInjected;
}

uint64_t DeriveSearchNodeCap(const ResourceLimits& limits) {
  if (limits.search_node_cap != 0) return limits.search_node_cap;
  // A single backtracking search should never consume more nodes than the
  // whole run's work budget allows.
  return limits.work_limit;
}

}  // namespace

const char* BudgetKindName(BudgetKind kind) {
  switch (kind) {
    case BudgetKind::kNone:
      return "none";
    case BudgetKind::kDeadline:
      return "deadline";
    case BudgetKind::kWork:
      return "work";
    case BudgetKind::kMemory:
      return "memory";
    case BudgetKind::kInjected:
      return "injected";
  }
  return "?";
}

ResourceGovernor::ResourceGovernor(const ResourceLimits& limits)
    : limits_(limits),
      search_node_cap_(DeriveSearchNodeCap(limits)),
      start_(std::chrono::steady_clock::now()),
      deadline_(limits.deadline_ms > 0
                    ? start_ + std::chrono::duration_cast<
                                   std::chrono::steady_clock::duration>(
                                   std::chrono::duration<double, std::milli>(
                                       limits.deadline_ms))
                    : start_) {}

bool ResourceGovernor::ChargeMemory(uint64_t bytes, const char* site) {
  uint64_t total =
      memory_used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (limits_.memory_limit_bytes != 0 && total > limits_.memory_limit_bytes) {
    NoteExhausted(BudgetKind::kMemory, site);
  }
  return !exhausted();
}

bool ResourceGovernor::CheckPoint(const char* site) {
  if (exhausted()) return false;
  if (!ConsultFaults(site)) return false;
  if (limits_.work_limit != 0 && work_used() > limits_.work_limit) {
    NoteExhausted(BudgetKind::kWork, site);
    return false;
  }
  if (limits_.memory_limit_bytes != 0 &&
      memory_used() > limits_.memory_limit_bytes) {
    NoteExhausted(BudgetKind::kMemory, site);
    return false;
  }
  if (limits_.deadline_ms > 0 && !CheckDeadlineNow(site)) return false;
  return true;
}

bool ResourceGovernor::KeepGoing(const char* site) {
  if (exhausted()) return false;
  if (!ConsultFaults(site)) return false;
  // Intentionally no work-counter check here: hot loops run on pool threads,
  // and latching on the shared counter mid-flight would make pure-work-budget
  // outcomes depend on scheduling. The deadline is inherently timing-based,
  // so checking it here loses nothing.
  if (limits_.deadline_ms > 0) {
    uint32_t tick =
        deadline_ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (tick % kDeadlineCheckStride == 0 && !CheckDeadlineNow(site)) {
      return false;
    }
  }
  return true;
}

void ResourceGovernor::NoteExhausted(BudgetKind kind, const char* site) {
  int expected = static_cast<int>(BudgetKind::kNone);
  if (kind_.compare_exchange_strong(expected, static_cast<int>(kind),
                                    std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(site_mu_);
    site_ = site;
  }
}

BudgetExhaustion ResourceGovernor::exhaustion() const {
  BudgetExhaustion out;
  out.kind = kind();
  if (out.kind != BudgetKind::kNone) {
    std::lock_guard<std::mutex> lock(site_mu_);
    out.site = site_;
  }
  return out;
}

double ResourceGovernor::elapsed_ms() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

double ResourceGovernor::remaining_ms() const {
  if (limits_.deadline_ms <= 0) return 1e18;
  double left = std::chrono::duration<double, std::milli>(
                    deadline_ - std::chrono::steady_clock::now())
                    .count();
  return left > 0 ? left : 0;
}

ResourceGovernor* ResourceGovernor::Current() { return g_current_governor; }

bool ResourceGovernor::CheckDeadlineNow(const char* site) {
  if (std::chrono::steady_clock::now() >= deadline_) {
    NoteExhausted(BudgetKind::kDeadline, site);
    return false;
  }
  return true;
}

bool ResourceGovernor::ConsultFaults(const char* site) {
  if (auto fault = FaultCheck(site)) {
    NoteExhausted(BudgetKindForFault(*fault), site);
    return false;
  }
  return true;
}

GovernorScope::GovernorScope(ResourceGovernor* governor)
    : previous_(g_current_governor) {
  g_current_governor = governor;
}

GovernorScope::~GovernorScope() { g_current_governor = previous_; }

}  // namespace vbr
