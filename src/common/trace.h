#ifndef VBR_COMMON_TRACE_H_
#define VBR_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vbr {

// Structured stage tracing for the planning pipeline.
//
// A caller that wants to see WHY a plan came out the way it did passes a
// TraceSink into the entry point (ViewPlanner::Plan, CoreCover,
// OptimizeOrderM2, ...); the pipeline then emits a tree of scoped spans —
// one per stage, with start/stop timestamps, the emitting thread, and
// key-value attributes — into the sink. With no sink attached every span is
// inert: the TraceSpan constructor sees the null sink and returns before
// touching the clock, so the traced code paths cost one predictable branch
// (the "null-sink early return" flavor of zero overhead; see DESIGN.md
// "Observability" for measurements).
//
// Spans form an explicit tree: a child is opened from its parent span (or
// from a TraceContext carrying the parent's id across a call boundary), so
// the hierarchy survives hops between pool threads, where thread-local
// nesting would not.

// A finished span as delivered to the sink.
struct TraceEvent {
  // Identifier of this span, unique within its sink, and of the enclosing
  // span (0 = root).
  uint64_t id = 0;
  uint64_t parent_id = 0;
  std::string name;
  // Nanoseconds since the sink-defined epoch (MemoryTraceSink: its
  // construction time).
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  // Hash of the emitting std::thread::id (stable within a process run).
  uint64_t thread_id = 0;
  std::vector<std::pair<std::string, std::string>> attributes;
};

// Receives finished spans. Implementations must tolerate concurrent
// OnSpanEnd calls: parallel pipeline stages emit from pool threads.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  // Called once per span, at scope exit. Children finish before their
  // parent, so a sink sees leaves first.
  virtual void OnSpanEnd(TraceEvent event) = 0;

  // Issues a fresh span id (ids are per-sink, starting at 1).
  uint64_t NextSpanId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  // Nanoseconds since this sink's epoch.
  virtual uint64_t NowNs() const;

 protected:
  TraceSink();

 private:
  std::atomic<uint64_t> next_id_{1};
  uint64_t epoch_ns_ = 0;
};

// A (sink, parent span id) pair for handing a trace position across a call
// boundary, e.g. from the planner into CoreCover via CoreCoverOptions. A
// default-constructed context is inert.
struct TraceContext {
  TraceSink* sink = nullptr;
  uint64_t parent_id = 0;

  bool active() const { return sink != nullptr; }
};

// RAII scoped span. Opening with a null sink (or inert context) produces an
// inert span: every member function early-returns without reading the clock
// or allocating.
class TraceSpan {
 public:
  // A root span (parent id 0) on `sink`.
  TraceSpan(TraceSink* sink, std::string_view name);
  // A child of `parent` (inert if `parent` is inert).
  TraceSpan(const TraceSpan& parent, std::string_view name);
  // A child of the span identified by `context`.
  TraceSpan(const TraceContext& context, std::string_view name);

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan();

  bool active() const { return sink_ != nullptr; }
  uint64_t id() const { return id_; }

  // The context under which to open children of this span.
  TraceContext context() const { return TraceContext{sink_, id_}; }

  // Attaches a key-value attribute. Values are stored as strings; numeric
  // overloads format on the caller's thread (only when active).
  void AddAttribute(std::string_view key, std::string_view value);
  void AddAttribute(std::string_view key, const char* value);
  void AddAttribute(std::string_view key, uint64_t value);
  void AddAttribute(std::string_view key, double value);
  void AddAttribute(std::string_view key, bool value);

  // Ends the span now (idempotent; the destructor is then a no-op).
  void End();

 private:
  TraceSpan(TraceSink* sink, uint64_t parent_id, std::string_view name);

  TraceSink* sink_ = nullptr;
  uint64_t id_ = 0;
  TraceEvent event_;
};

// A sink that buffers spans in memory and can render them as an indented
// text tree or as JSON. Thread-safe.
class MemoryTraceSink : public TraceSink {
 public:
  MemoryTraceSink() = default;

  void OnSpanEnd(TraceEvent event) override;

  // Snapshot of the finished spans, in completion order.
  std::vector<TraceEvent> spans() const;

  size_t size() const;
  void Clear();

  // Indented span tree, one line per span:
  //   plan  2.31ms  [model=M2 cache=miss]
  //     core_cover  2.02ms
  //       minimize  0.08ms
  // Roots are spans whose parent never arrived (or parent_id 0).
  std::string ToText() const;

  // JSON array of span objects: [{"id":1,"parent":0,"name":"plan",
  // "start_ns":..,"end_ns":..,"thread":..,"attributes":{...}},...].
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

}  // namespace vbr

#endif  // VBR_COMMON_TRACE_H_
