#ifndef VBR_COMMON_METRICS_H_
#define VBR_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace vbr {

// A process-wide registry of named counters and histograms.
//
// Every layer of the planning pipeline reports into the global registry:
// CoreCover stage counts and wall times, containment checks, plan-cache
// hits/misses/insertions/evictions, planner calls. The registry is the
// uniform export surface (text + JSON snapshots) that replaced the ad-hoc
// std::atomic members previously private to PlanCache; per-run structs like
// CoreCoverStats remain as RETURN values, while the registry accumulates
// process totals across runs, planners, and threads.
//
// Usage pattern on hot paths: resolve the instrument once (construction, or
// a function-local static) and keep the pointer — instruments are never
// destroyed or relocated for the life of the process.
//
//   static Counter* checks =
//       MetricsRegistry::Global().GetCounter("cq.containment_checks");
//   checks->Increment();
//
// Metric names are dot-separated lowercase ("planner.cache.hits"). See
// DESIGN.md "Observability" for the full name inventory.

// A monotonically increasing atomic counter.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment() { Add(1); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A histogram of non-negative integer samples over exponential power-of-two
// buckets: bucket b counts samples with bit_width(value) == b, i.e. bucket 0
// holds value 0, bucket b>0 holds [2^(b-1), 2^b). Tracks count, sum, min,
// and max exactly. Wall-time histograms record MICROSECONDS.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 65;  // bit_width of uint64_t is 0..64

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value);

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;  // 0 when count == 0
    uint64_t max = 0;
    // Non-empty buckets only, as (bucket upper bound, count) pairs in
    // increasing bound order; bound 0 is the exact-zero bucket.
    std::vector<std::pair<uint64_t, uint64_t>> buckets;

    double Mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
  };
  Snapshot snapshot() const;
  void Reset();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
};

struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  Histogram::Snapshot data;
};

struct MetricsSnapshot {
  // Sorted by name.
  std::vector<CounterSnapshot> counters;
  std::vector<HistogramSnapshot> histograms;

  // "name value" lines for counters; histograms add count/sum/mean/min/max:
  //   planner.cache.hits 42
  //   corecover.stage.total_us count=10 sum=5321 mean=532.1 min=21 max=2103
  std::string ToText() const;
  // {"counters":{"name":value,...},"histograms":{"name":{"count":..,...}}}
  std::string ToJson() const;
};

// The registry. Instruments are created on first use and live forever;
// GetCounter / GetHistogram return stable pointers and may be called
// concurrently. Requesting the same name with a different instrument kind
// CHECK-fails.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Registries are independently constructible for tests; production code
  // uses Global().
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // A consistent-enough snapshot (each instrument is read atomically;
  // cross-instrument skew is possible under concurrent updates).
  MetricsSnapshot Snapshot() const;

  // Zeroes every registered instrument (names stay registered). Tests only:
  // racy against concurrent writers by design.
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace vbr

#endif  // VBR_COMMON_METRICS_H_
