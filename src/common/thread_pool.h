#ifndef VBR_COMMON_THREAD_POOL_H_
#define VBR_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/budget.h"

namespace vbr {

// A fixed-size thread pool with a blocking ParallelFor, used by the rewrite
// pipeline to parallelize its embarrassingly-parallel stages (view-tuple
// generation, tuple-core computation, rewriting verification, top-level
// set-cover branches).
//
// Design notes:
//  * No work stealing: one shared atomic index per ParallelFor call hands
//    out loop indices. The per-task work in the pipeline is large enough
//    (a homomorphism search or a DFS branch) that contention on one counter
//    is irrelevant, and the scheme keeps the pool small and auditable.
//  * Deterministic results are the CALLER's contract: index-to-thread
//    assignment is nondeterministic, so callers write their output into a
//    pre-sized slot per index (results[i] from body(i)); every merge then
//    happens in index order and the outcome is independent of the thread
//    count and the schedule.
//  * The calling thread participates, so a pool constructed with
//    num_threads == 1 spawns no workers and ParallelFor degenerates to a
//    plain serial loop — bit-for-bit the single-threaded behavior.
//  * ParallelFor calls from inside a pool task run serially inline rather
//    than deadlocking; the pipeline never nests parallel stages, but the
//    guard makes nesting safe.
//  * The library does not use exceptions (see common/check.h), so task
//    bodies are assumed not to throw.
class ThreadPool {
 public:
  // Spawns `num_threads - 1` workers (the caller is the remaining thread).
  // 0 means DefaultThreadCount().
  explicit ThreadPool(size_t num_threads) {
    const size_t n = num_threads == 0 ? DefaultThreadCount() : num_threads;
    workers_.reserve(n - 1);
    for (size_t i = 1; i < n; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
      ++generation_;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  // Total threads that execute tasks (workers plus the calling thread).
  size_t num_threads() const { return workers_.size() + 1; }

  static size_t DefaultThreadCount() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
  }

  // Invokes body(i) for every i in [0, n), distributing indices over the
  // pool, and blocks until all invocations completed. Concurrent external
  // callers are serialized; a call from inside a pool task runs inline.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body) {
    if (n == 0) return;
    if (workers_.empty() || n == 1 || in_pool_task_) {
      for (size_t i = 0; i < n; ++i) body(i);
      return;
    }
    std::lock_guard<std::mutex> serialize(for_mu_);
    auto state = std::make_shared<ForState>();
    state->body = &body;
    state->n = n;
    // Propagate the caller's resource governor into the pool: workers install
    // it around the loop body, so budget checks inside tasks already in
    // flight observe the same budget as the serial pipeline around them.
    state->governor = ResourceGovernor::Current();
    {
      std::lock_guard<std::mutex> lock(mu_);
      state_ = state;
      ++generation_;
    }
    cv_.notify_all();
    RunTasks(*state);
    {
      std::unique_lock<std::mutex> lock(state->mu);
      state->done.wait(lock, [&] { return state->completed == state->n; });
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      state_.reset();
    }
  }

 private:
  // Shared state of one ParallelFor call. Heap-allocated and shared_ptr-held
  // by every participating thread so a straggler that wakes up after the
  // caller returned touches live memory.
  struct ForState {
    const std::function<void(size_t)>* body = nullptr;
    size_t n = 0;
    ResourceGovernor* governor = nullptr;  // the ParallelFor caller's governor
    std::atomic<size_t> next{0};
    std::mutex mu;
    size_t completed = 0;  // guarded by mu
    std::condition_variable done;
  };

  void RunTasks(ForState& s) {
    GovernorScope scope(s.governor);
    size_t finished = 0;
    for (size_t i; (i = s.next.fetch_add(1, std::memory_order_relaxed)) < s.n;) {
      (*s.body)(i);
      ++finished;
    }
    if (finished > 0) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.completed += finished;
      if (s.completed == s.n) s.done.notify_all();
    }
  }

  void WorkerLoop() {
    in_pool_task_ = true;
    uint64_t seen = 0;
    while (true) {
      std::shared_ptr<ForState> state;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_) return;
        seen = generation_;
        state = state_;
      }
      if (state != nullptr) RunTasks(*state);
    }
  }

  std::vector<std::thread> workers_;
  std::mutex for_mu_;  // serializes external ParallelFor calls
  std::mutex mu_;      // guards state_, generation_, shutdown_
  std::condition_variable cv_;
  std::shared_ptr<ForState> state_;
  uint64_t generation_ = 0;
  bool shutdown_ = false;

  static thread_local bool in_pool_task_;
};

inline thread_local bool ThreadPool::in_pool_task_ = false;

}  // namespace vbr

#endif  // VBR_COMMON_THREAD_POOL_H_
