// VBIN: the persistent binary container format.
//
// Everything the planner persists — queries, view sets, plans,
// certificates, cache snapshots, request-log records — is a VBIN file:
//
//   +------+----+----+-------+---------------+==================+------+
//   | VBIN | u8 | u8 |  u16  | section table | section payloads | u32  |
//   |magic |ver |kind| rsvd  |               |                  | CRC32|
//   +------+----+----+-------+---------------+==================+------+
//
// Design points (docs/FORMAT.md is the byte-exact spec):
//   - varint (unsigned LEB128) integers everywhere except the fixed
//     header and the CRC trailer;
//   - an interned string pool section, so symbol NAMES (never
//     process-local Symbol ids) are stored once and referenced by index;
//   - a section table (tag + length per section) so readers can skip
//     sections they do not understand — forward compatibility without
//     version bumps;
//   - a CRC32 trailer over everything before it, so torn writes and
//     bit rot are detected before any decoding happens;
//   - decoding NEVER aborts: every reader path is bounds-checked and
//     returns vbin::Status.  Hostile inputs (huge varints, lying section
//     tables, truncation) are fuzz targets, not crashes.
//
// This header is the container layer only.  Value codecs for the CQ and
// rewrite types live next to the types (src/cq/vbin_codec.h,
// src/rewrite/vbin_codec.h); the cache snapshot and request log live in
// src/planner/snapshot.h.
#ifndef VBR_COMMON_VBIN_H_
#define VBR_COMMON_VBIN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vbr::vbin {

inline constexpr char kMagic[4] = {'V', 'B', 'I', 'N'};
// Bumped only when the CONTAINER layout changes (header/sections/CRC).
// Body payloads carry their own version varint where they need one.
inline constexpr uint8_t kContainerVersion = 1;

// What the body section holds.  A decoder checks the kind before touching
// the body, so feeding a certificate file to the query decoder is a clean
// status, not garbage.
enum class FileKind : uint8_t {
  kQuery = 1,
  kProgram = 2,        // ordered list of rules (view sets, workloads)
  kPlan = 3,           // a rewriting + its filter atoms
  kCertificate = 4,    // EquivalenceCertificate
  kCacheSnapshot = 5,  // ViewPlanner plan-cache snapshot
  kRequestLog = 6,     // one request-log record (query + options)
};

// Section tags.  Unknown tags are skipped on read.
inline constexpr uint64_t kSectionStringPool = 1;
inline constexpr uint64_t kSectionBody = 2;

// Decode outcome.  ok() == empty error.  Every failure message names the
// offending construct ("crc mismatch", "varint overflow", ...).
struct Status {
  std::string error;

  bool ok() const { return error.empty(); }
  static Status Ok() { return Status{}; }
  static Status Error(std::string message) { return Status{std::move(message)}; }
};

// CRC32 (IEEE 802.3, polynomial 0xEDB88320, bit-reflected), the zlib
// convention.  `seed` chains incremental updates.
uint32_t Crc32(std::string_view bytes, uint32_t seed = 0);

// ---------------------------------------------------------------------------
// Primitive encoding

// Appends unsigned LEB128.
void AppendVarint(std::string& out, uint64_t value);
// Appends the 8-byte little-endian bit pattern (exact round trip, NaN and
// all — doubles are never formatted as text).
void AppendF64(std::string& out, double value);
void AppendU8(std::string& out, uint8_t value);
void AppendU32(std::string& out, uint32_t value);
// varint length + raw bytes.
void AppendBytes(std::string& out, std::string_view bytes);

// Bounds-checked cursor over a byte range.  Every Read* returns false on
// truncation/overflow and latches an error message; once failed, all
// subsequent reads fail (so call sites may chain unchecked and test once).
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool ReadVarint(uint64_t* value);
  bool ReadF64(double* value);
  bool ReadU8(uint8_t* value);
  bool ReadU32(uint32_t* value);
  // Points into the underlying buffer (no copy).
  bool ReadBytes(std::string_view* bytes);
  bool ReadBool(bool* value);  // u8, must be 0 or 1

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }
  // Remaining unread bytes.
  size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }
  // Latches a decode error from a higher layer (value codecs).
  void Fail(std::string message);

  Status ToStatus(std::string_view context) const;

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// File writer

// Builds one VBIN file: intern strings, append body primitives, Finish().
//
//   FileWriter w(FileKind::kQuery);
//   w.AppendVarint(w.Intern(name));
//   ...
//   std::string file = std::move(w).Finish();
//
// Interning is order-sensitive on purpose: the pool records first-use
// order, so encoding the same value always yields the same bytes — the
// round-trip identity the differential harness asserts.
class FileWriter {
 public:
  explicit FileWriter(FileKind kind) : kind_(kind) {}

  // Returns the pool index for `s`, interning on first use.
  uint64_t Intern(std::string_view s);

  void AppendVarint(uint64_t value) { vbin::AppendVarint(body_, value); }
  void AppendF64(double value) { vbin::AppendF64(body_, value); }
  void AppendU8(uint8_t value) { vbin::AppendU8(body_, value); }
  void AppendBytes(std::string_view bytes) { vbin::AppendBytes(body_, bytes); }
  void AppendBool(bool value) { vbin::AppendU8(body_, value ? 1 : 0); }

  // Assembles header + string pool + body + CRC trailer.
  std::string Finish() &&;

 private:
  FileKind kind_;
  std::vector<std::string> pool_;
  // name -> pool index; linear rebuild is fine at our sizes, but a map
  // keeps snapshot encoding O(n).
  std::vector<std::pair<std::string, uint64_t>> index_;
  std::string body_;
};

// ---------------------------------------------------------------------------
// File reader

// A validated view into one VBIN file.  `strings` and `body` point into
// the caller's buffer, which must outlive the FileView.
struct FileView {
  uint8_t container_version = 0;
  FileKind kind = FileKind::kQuery;
  std::vector<std::string_view> strings;
  std::string_view body;

  // Pool lookup used by the value codecs; fails the reader on a bad index
  // instead of throwing.
  bool String(uint64_t index, std::string_view* out, Reader* reader) const;
};

// Validates magic, container version, CRC, and the section table, and
// parses the string pool.  `bytes` must outlive `*out`.  Accepts files
// whose container version is <= ours; newer files are a clean error.
// `expected_kind` of 0 accepts any kind.
Status OpenFile(std::string_view bytes, FileView* out,
                FileKind expected_kind);
Status OpenFileAnyKind(std::string_view bytes, FileView* out);

// ---------------------------------------------------------------------------
// Small file I/O helpers (used by snapshots and logs)

Status ReadWholeFile(const std::string& path, std::string* out);
// Writes via a temp file in the same directory + rename, so readers never
// observe a torn file.
Status WriteFileAtomic(const std::string& path, std::string_view bytes);

}  // namespace vbr::vbin

#endif  // VBR_COMMON_VBIN_H_
